// Example: working with throughput traces — generate synthetic cellular and
// broadband traces, persist/reload them as CSV, rescale, inject variance,
// and inspect the statistics the ABR predictors react to.
#include <cstdio>

#include "net/predictor.h"
#include "net/trace_gen.h"
#include "util/table.h"

using namespace sensei;

int main() {
  auto cellular = net::TraceGenerator::cellular("commute-3g", 1800, 400.0, 77);
  auto broadband = net::TraceGenerator::broadband("home-fcc", 1800, 400.0, 77);

  util::Table table({"trace", "mean Kbps", "sd Kbps", "min", "max"});
  for (const auto& t : {cellular, broadband}) {
    double lo = t.samples_kbps()[0], hi = lo;
    for (double s : t.samples_kbps()) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    table.add_row({t.name(), util::Table::format_double(t.mean_kbps(), 0),
                   util::Table::format_double(t.stddev_kbps(), 0),
                   util::Table::format_double(lo, 0), util::Table::format_double(hi, 0)});
  }
  std::printf("same mean, different character:\n%s\n", table.to_string().c_str());

  // CSV round trip (the bridge to real FCC / HSDPA trace files). The parser
  // validates what real captures get wrong — jumbled timestamps, irregular
  // sampling, junk cells — and reports the offending line instead of
  // silently mistiming every later sample.
  std::string csv = cellular.to_csv();
  auto reloaded = net::ThroughputTrace::from_csv("reloaded", csv);
  std::printf("CSV round trip: %zu samples -> %zu bytes -> %zu samples\n",
              cellular.sample_count(), csv.size(), reloaded.sample_count());
  try {
    net::ThroughputTrace::from_csv("bad", "0,1000\n1,900\n3,800\n");
  } catch (const std::exception& e) {
    std::printf("malformed capture rejected: %s\n", e.what());
  }

  // Finite traces and outages: a captured trace that simply *ends* models a
  // link outage. advance() integrates the transfer exactly and reports
  // whether it could complete at all.
  auto finite = net::ThroughputTrace("capture", {1000.0, 1000.0, 1000.0}, 1.0).as_finite();
  net::TransferResult ok = finite.advance(250000.0, 0.0);   // 2 Mbit in 3 s of capacity
  net::TransferResult dead = finite.advance(250000.0, 2.0); // only 1 s left -> outage
  std::printf("finite trace: 2 Mbit at t=0 -> %.1f s; at t=2 -> %s\n\n", ok.elapsed_s,
              dead.completed ? "completed" : "outage (never completes)");

  // Rescaling and variance injection (the Figure 12b / 17 tools).
  auto scaled = cellular.scaled(0.5);
  auto noisy = cellular.with_noise(600.0, 42);
  std::printf("scaled x0.5: mean %.0f Kbps; +600 Kbps noise: sd %.0f -> %.0f Kbps\n\n",
              scaled.mean_kbps(), cellular.stddev_kbps(), noisy.stddev_kbps());

  // What the predictors make of a bursty stretch.
  net::HarmonicMeanPredictor harmonic(5);
  net::EwmaPredictor ewma(0.3);
  net::ScenarioPredictor scenario(8);
  std::printf("predictor behaviour over the first 12 seconds of %s:\n",
              cellular.name().c_str());
  util::Table pred({"t", "observed", "harmonic", "ewma", "scenario lo/mid/hi"});
  for (size_t t = 0; t < 12; ++t) {
    double kbps = cellular.samples_kbps()[t];
    harmonic.observe(kbps);
    ewma.observe(kbps);
    scenario.observe(kbps);
    auto sc = scenario.scenarios();
    char span[64];
    std::snprintf(span, sizeof(span), "%.0f/%.0f/%.0f", sc[0].kbps, sc[1].kbps,
                  sc[2].kbps);
    pred.add_row({std::to_string(t), util::Table::format_double(kbps, 0),
                  util::Table::format_double(harmonic.predict_kbps(), 0),
                  util::Table::format_double(ewma.predict_kbps(), 0), span});
  }
  std::printf("%s", pred.to_string().c_str());
  return 0;
}
