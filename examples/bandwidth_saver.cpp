// Example: "same QoE, lower bandwidth" (§1's second opportunity).
// Sweeps a trace down in scale and finds the smallest bandwidth at which
// each ABR still reaches a target true QoE — the SENSEI pitch to a content
// provider paying per gigabyte.
#include <algorithm>
#include <cstdio>

#include "abr/registry.h"
#include "core/sensei.h"
#include "media/dataset.h"
#include "net/trace_gen.h"
#include "sim/player.h"
#include "util/stats.h"
#include "util/table.h"

using namespace sensei;

namespace {

double mean_qoe_at_scale(sim::AbrPolicy& policy, const media::EncodedVideo& video,
                         const net::ThroughputTrace& base, double scale,
                         const std::vector<double>& weights,
                         const crowd::GroundTruthQoE& oracle) {
  sim::Player player;
  auto trace = base.scaled(scale);
  auto session = player.stream(video, trace, policy, weights);
  return oracle.score(session.to_rendered(video));
}

}  // namespace

int main() {
  media::EncodedVideo video =
      media::Encoder().encode(media::Dataset::by_name("Wrestling"));
  net::ThroughputTrace base = net::TraceGenerator::broadband("isp", 3500, 700.0, 31);
  crowd::GroundTruthQoE oracle;
  core::Sensei sensei(oracle);
  auto profiled = sensei.profile(video);

  // All three ABRs by registry spec (grammar in abr/registry.h).
  auto bba = abr::make_policy("bba");
  auto fugu = abr::make_policy("fugu");
  auto sensei_fugu = abr::make_policy("sensei-fugu");

  const std::vector<double> scales = {0.25, 0.35, 0.45, 0.55, 0.7, 0.85, 1.0};
  std::printf("QoE of each ABR as the link is scaled down (%s, base %.1f Mbps):\n\n",
              video.source().name().c_str(), base.mean_kbps() / 1000.0);
  util::Table table({"scale", "Mbps", "BBA", "Fugu", "SENSEI"});
  std::vector<double> q_bba, q_fugu, q_sensei;
  const std::vector<double> none;
  for (double s : scales) {
    q_bba.push_back(mean_qoe_at_scale(*bba, video, base, s, none, oracle));
    q_fugu.push_back(mean_qoe_at_scale(*fugu, video, base, s, none, oracle));
    q_sensei.push_back(
        mean_qoe_at_scale(*sensei_fugu, video, base, s, profiled.profile.weights, oracle));
    table.add_row(std::vector<double>{s, base.mean_kbps() * s / 1000.0, q_bba.back(),
                                      q_fugu.back(), q_sensei.back()},
                  3);
  }
  std::printf("%s\n", table.to_string().c_str());

  // Pick a target QoE every ABR reaches at full scale, then report the
  // smallest sufficient scale per ABR.
  double target = 0.95 * std::min({q_bba.back(), q_fugu.back(), q_sensei.back()});
  auto min_scale = [&](const std::vector<double>& qoe) {
    for (size_t i = 0; i < scales.size(); ++i) {
      if (qoe[i] >= target) return scales[i];
    }
    return scales.back();
  };
  double s_bba = min_scale(q_bba), s_fugu = min_scale(q_fugu), s_sensei = min_scale(q_sensei);
  std::printf("target QoE %.3f reached at: BBA %.2fx, Fugu %.2fx, SENSEI %.2fx\n", target,
              s_bba, s_fugu, s_sensei);
  if (s_sensei < s_fugu) {
    std::printf("SENSEI delivers the target with %.0f%% less bandwidth than Fugu\n",
                (1.0 - s_sensei / s_fugu) * 100.0);
  }
  return 0;
}
