// Example: profile a video's dynamic quality sensitivity end to end.
//
// Walks through the Figure 8 pipeline on one video: rendered-video
// scheduling, the simulated MTurk campaign, weight inference, and the
// sensitivity-augmented DASH manifest — with a full cost report, and a
// comparison against the exhaustive (no-pruning) schedule.
#include <algorithm>
#include <cstdio>

#include "core/sensei.h"
#include "crowd/scheduler.h"
#include "media/dataset.h"
#include "util/stats.h"
#include "util/table.h"

using namespace sensei;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "BigBuckBunny";
  media::SourceVideo source = media::Dataset::by_name(name);
  media::EncodedVideo video = media::Encoder().encode(source);
  crowd::GroundTruthQoE oracle;

  std::printf("Profiling %s (%s, %s, %zu chunks)\n\n", source.name().c_str(),
              media::to_string(source.genre()).c_str(), source.length_string().c_str(),
              source.num_chunks());

  // Two-step scheduler (the paper's §4.3 cost pruning).
  crowd::Scheduler scheduler(oracle, crowd::SchedulerConfig(), 5);
  crowd::SensitivityProfile pruned = scheduler.profile(video);
  std::printf("two-step schedule: %zu renderings, %zu ratings, %zu participants\n",
              pruned.renderings_rated, pruned.ratings_collected, pruned.participants);
  std::printf("  step-2 focus chunks (alpha-far from mean): %zu of %zu\n",
              pruned.step2_chunks, video.num_chunks());
  std::printf("  cost $%.2f, campaign latency ~%.0f min\n\n", pruned.cost_usd,
              pruned.elapsed_minutes);

  // Exhaustive baseline for comparison (every chunk x incident combination).
  crowd::SensitivityProfile full = scheduler.profile_exhaustive(video, 30);
  std::printf("exhaustive schedule: %zu renderings, cost $%.2f\n", full.renderings_rated,
              full.cost_usd);
  std::printf("  pruning saves %.1f%% of the crowdsourcing budget\n\n",
              (1.0 - pruned.cost_usd / full.cost_usd) * 100.0);

  // How well did we do? (Uses the hidden ground truth — only possible in
  // simulation; a content provider would validate with held-out ratings.)
  auto s_true = source.true_sensitivity();
  std::printf("weight quality (SRCC vs hidden sensitivity): pruned %.2f, exhaustive %.2f\n\n",
              util::spearman(pruned.weights, s_true),
              util::spearman(full.weights, s_true));

  // The most and least sensitive chunks according to the profile.
  util::Table table({"chunk", "time", "scene kind", "weight"});
  std::vector<std::pair<double, size_t>> ranked;
  for (size_t i = 0; i < pruned.weights.size(); ++i) ranked.push_back({pruned.weights[i], i});
  std::sort(ranked.rbegin(), ranked.rend());
  for (size_t k = 0; k < 3 && k < ranked.size(); ++k) {
    size_t i = ranked[k].second;
    char time[32];
    std::snprintf(time, sizeof(time), "%zu:%02zu", i * 4 / 60, (i * 4) % 60);
    table.add_row({std::to_string(i), time, media::to_string(source.chunk(i).kind),
                   util::Table::format_double(pruned.weights[i], 2)});
  }
  for (size_t k = ranked.size() - 3; k < ranked.size(); ++k) {
    size_t i = ranked[k].second;
    char time[32];
    std::snprintf(time, sizeof(time), "%zu:%02zu", i * 4 / 60, (i * 4) % 60);
    table.add_row({std::to_string(i), time, media::to_string(source.chunk(i).kind),
                   util::Table::format_double(pruned.weights[i], 2)});
  }
  std::printf("top-3 and bottom-3 chunks by inferred sensitivity:\n%s\n",
              table.to_string().c_str());

  // Ship it: the sensitivity-augmented DASH manifest (paper §6).
  sim::Manifest manifest;
  manifest.video_name = source.name();
  manifest.chunk_duration_s = source.chunk_duration_s();
  manifest.num_chunks = video.num_chunks();
  manifest.bitrates_kbps = video.ladder().levels_kbps();
  manifest.weights = pruned.weights;
  std::string xml = manifest.to_xml();
  std::printf("manifest with <SenseiWeights> extension: %zu bytes of MPD XML\n",
              xml.size());
  return 0;
}
