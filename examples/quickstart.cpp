// Quickstart: profile one video's dynamic quality sensitivity, then stream it
// with SENSEI-Fugu vs vanilla Fugu and compare true (oracle) QoE.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "abr/registry.h"
#include "core/sensei.h"
#include "media/dataset.h"
#include "net/trace_gen.h"
#include "qoe/metrics.h"
#include "sim/player.h"
#include "util/table.h"

using namespace sensei;

int main() {
  // 1. A source video from the paper's Table 1 test set and one throughput
  //    trace shaped like the 3G/HSDPA dataset.
  media::SourceVideo source = media::Dataset::by_name("Soccer1");
  media::EncodedVideo video = media::Encoder().encode(source);
  net::ThroughputTrace trace =
      net::TraceGenerator::cellular("demo-cell", 1400, 700.0, 7);

  std::printf("Video: %s (%s, %s, %zu chunks of %.0fs)\n", source.name().c_str(),
              media::to_string(source.genre()).c_str(), source.length_string().c_str(),
              source.num_chunks(), source.chunk_duration_s());
  std::printf("Trace: %s (mean %.0f Kbps)\n\n", trace.name().c_str(), trace.mean_kbps());

  // 2. Profile the video: simulated MTurk raters -> per-chunk weights.
  crowd::GroundTruthQoE oracle;  // stands in for real viewers (see DESIGN.md)
  core::Sensei sensei(oracle);
  core::ProfileOutput profiled = sensei.profile(video);
  std::printf("Profiling: %zu renderings, %zu ratings, %zu participants\n",
              profiled.profile.renderings_rated, profiled.profile.ratings_collected,
              profiled.profile.participants);
  std::printf("Cost: $%.2f (%.1f min of video), elapsed ~%.0f minutes\n\n",
              profiled.profile.cost_usd, source.duration_s() / 60.0,
              profiled.profile.elapsed_minutes);

  // 3. Stream with each ABR and score the outcome with the oracle. The
  //    timeline engine attaches the exact trajectory to every session, so
  //    stall placement (SENSEI's whole premise) is read off it directly.
  sim::Player player;
  util::Table table({"ABR", "outcome", "true QoE", "mean Kbps", "rebuffer s", "stalls",
                     "first stall @", "switches"});

  auto evaluate = [&](sim::AbrPolicy& policy, const std::vector<double>& weights) {
    sim::SessionResult session = player.stream(video, trace, policy, weights);
    double qoe = oracle.score(session.to_rendered(video));
    qoe::StallProfile stalls = qoe::stall_profile(*session.timeline());
    // Surface how the session ended: on an outage the link died mid-stream,
    // the session truncated, and the QoE below covers only the delivered
    // prefix — printing it unlabeled would overstate the experience.
    std::string outcome =
        session.outcome() == sim::SessionOutcome::kOutage
            ? "OUTAGE@" + std::to_string(session.chunks().size()) + "/" +
                  std::to_string(video.num_chunks())
            : std::string("completed");
    table.add_row({policy.name(), outcome, util::Table::format_double(qoe, 3),
                   util::Table::format_double(session.mean_bitrate_kbps(), 0),
                   util::Table::format_double(session.total_rebuffer_s(), 1),
                   std::to_string(stalls.stall_event_count),
                   stalls.first_stall_wall_s < 0.0
                       ? std::string("-")
                       : util::Table::format_double(stalls.first_stall_wall_s, 1) + "s",
                   std::to_string(session.switch_count())});
    return qoe;
  };

  // Both controllers come from the policy registry (spec grammar in
  // abr/registry.h) — the same strings work in the benches and the fleet.
  auto fugu = abr::make_policy("fugu");
  auto sensei_fugu = abr::make_policy("sensei-fugu");
  double base = evaluate(*fugu, {});
  double ours = evaluate(*sensei_fugu, profiled.profile.weights);

  std::printf("%s\n", table.to_string().c_str());
  std::printf("SENSEI-Fugu QoE gain over Fugu: %+.1f%%\n",
              base > 0 ? (ours - base) / base * 100.0 : 0.0);
  return 0;
}
