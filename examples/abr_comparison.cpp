// Example: stream one video over one trace with every ABR in the library and
// compare the sessions chunk by chunk — the paper's Figure 11 scenarios
// (trading current quality for future high-sensitivity chunks) show up in
// the per-chunk log.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "abr/registry.h"
#include "core/sensei.h"
#include "media/dataset.h"
#include "net/trace_gen.h"
#include "sim/player.h"
#include "util/table.h"

using namespace sensei;

int main(int argc, char** argv) {
  const std::string video_name = argc > 1 ? argv[1] : "Basket1";
  const double mean_kbps = argc > 2 ? std::atof(argv[2]) : 1300.0;

  media::SourceVideo source = media::Dataset::by_name(video_name);
  media::EncodedVideo video = media::Encoder().encode(source);
  net::ThroughputTrace trace =
      net::TraceGenerator::cellular("demo", mean_kbps, 700.0, 11);
  crowd::GroundTruthQoE oracle;

  // Profile once; SENSEI variants consume the weights.
  core::Sensei sensei(oracle);
  auto profiled = sensei.profile(video);

  sim::Player player;
  util::Table summary(
      {"ABR", "outcome", "true QoE", "mean Kbps", "rebuffer s", "scheduled s", "switches"});

  // Every ABR in the library, by registry spec (grammar in abr/registry.h);
  // only the SENSEI variant consumes the sensitivity weights.
  struct Entry {
    const char* spec;
    bool weighted;
    std::unique_ptr<sim::AbrPolicy> policy;
  };
  std::vector<Entry> entries;
  entries.push_back({"bba", false, nullptr});
  entries.push_back({"rate_based", false, nullptr});
  entries.push_back({"fugu", false, nullptr});
  entries.push_back({"sensei-fugu", true, nullptr});
  for (auto& entry : entries) entry.policy = abr::make_policy(entry.spec);

  sim::SessionResult sensei_session, fugu_session;
  for (const auto& entry : entries) {
    auto session = player.stream(video, trace, *entry.policy,
                                 entry.weighted ? profiled.profile.weights
                                                : std::vector<double>{});
    double scheduled = 0.0;
    for (const auto& c : session.chunks()) scheduled += c.scheduled_rebuffer_s;
    // A truncated session's QoE covers only the chunks delivered before the
    // link died — label it so a partial score is never read as a full one.
    std::string outcome = session.outcome() == sim::SessionOutcome::kOutage
                              ? "OUTAGE@" + std::to_string(session.chunks().size()) + "/" +
                                    std::to_string(video.num_chunks())
                              : std::string("completed");
    summary.add_row({entry.policy->name(), outcome,
                     util::Table::format_double(
                         oracle.score(session.to_rendered(video)), 3),
                     util::Table::format_double(session.mean_bitrate_kbps(), 0),
                     util::Table::format_double(session.total_rebuffer_s(), 1),
                     util::Table::format_double(scheduled, 1),
                     std::to_string(session.switch_count())});
    if (std::string(entry.spec) == "sensei-fugu") sensei_session = session;
    if (std::string(entry.spec) == "fugu") fugu_session = session;
  }
  std::printf("%s (%s) over %s (%.0f Kbps mean)\n\n%s\n", source.name().c_str(),
              source.length_string().c_str(), trace.name().c_str(), trace.mean_kbps(),
              summary.to_string().c_str());

  // Chunk-level view of where the two controllers diverge. Truncated
  // sessions may have different lengths, so only the common prefix is
  // comparable chunk-by-chunk.
  std::printf("chunks where Sensei-Fugu diverges from Fugu "
              "(w = sensitivity weight):\n");
  util::Table diff({"chunk", "w", "Fugu level", "Sensei level", "Sensei stall s"});
  size_t comparable = std::min(sensei_session.chunks().size(), fugu_session.chunks().size());
  for (size_t i = 0; i < comparable; ++i) {
    const auto& a = fugu_session.chunks()[i];
    const auto& b = sensei_session.chunks()[i];
    if (a.level != b.level || b.scheduled_rebuffer_s > 0) {
      diff.add_row({std::to_string(i),
                    util::Table::format_double(profiled.profile.weights[i], 2),
                    std::to_string(a.level), std::to_string(b.level),
                    util::Table::format_double(b.scheduled_rebuffer_s, 1)});
    }
  }
  std::printf("%s", diff.to_string().c_str());
  return 0;
}
