// Whittle-index ABR gates (abr/whittle.h):
//  - config validation at construction;
//  - indexability: the closed-form rung index is monotone nondecreasing in
//    the buffer level, for every rung (the property that makes an
//    index-argmax policy well-posed);
//  - decide() behavior at the extremes: a rich buffer with a healthy
//    forecast selects the top rung, a starved buffer the floor;
//  - degenerate single-rung ladders stream to completion at level 0.
#include "abr/whittle.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "media/dataset.h"
#include "net/trace_gen.h"
#include "sim/player.h"

namespace sensei::abr {
namespace {

media::EncodedVideo test_video(double seconds = 120.0) {
  return media::Encoder().encode(
      media::SourceVideo::generate("WhittleVid", media::Genre::kSports, seconds));
}

TEST(Whittle, RejectsNonsenseConfigs) {
  WhittleConfig bad;
  bad.safety = 0.0;
  EXPECT_THROW(WhittleIndexAbr{bad}, std::invalid_argument);
  bad = WhittleConfig();
  bad.safety = -0.5;
  EXPECT_THROW(WhittleIndexAbr{bad}, std::invalid_argument);
  bad = WhittleConfig();
  bad.headroom = -0.1;
  EXPECT_THROW(WhittleIndexAbr{bad}, std::invalid_argument);
  bad = WhittleConfig();
  bad.drain_penalty = -1.0;
  EXPECT_THROW(WhittleIndexAbr{bad}, std::invalid_argument);
  EXPECT_NO_THROW(WhittleIndexAbr{WhittleConfig()});
}

TEST(Whittle, IndexIsMonotoneNondecreasingInBuffer) {
  media::EncodedVideo video = test_video();
  WhittleIndexAbr abr;
  abr.begin_session(video);

  sim::AbrObservation obs;
  obs.video = &video;
  obs.num_chunks = video.num_chunks();

  // Every rung, several chunk/last-level contexts, two budgets: more buffer
  // never lowers a rung's index (both max(0,.) risk terms are nonincreasing
  // in b and everything else is constant in b).
  for (size_t chunk : {size_t{0}, size_t{1}, size_t{7}}) {
    obs.next_chunk = chunk;
    for (size_t last : {size_t{0}, video.ladder().level_count() - 1}) {
      obs.last_level = last;
      for (double budget_kbps : {400.0, 2500.0}) {
        for (size_t level = 0; level < video.ladder().level_count(); ++level) {
          double prev = abr.level_index(obs, level, 0.0, budget_kbps);
          for (double buffer_s = 0.25; buffer_s <= 40.0; buffer_s += 0.25) {
            double index = abr.level_index(obs, level, buffer_s, budget_kbps);
            ASSERT_GE(index, prev) << "level " << level << " buffer " << buffer_s
                                   << " budget " << budget_kbps;
            prev = index;
          }
        }
      }
    }
  }
}

TEST(Whittle, RichBufferSelectsTopRungStarvedBufferTheFloor) {
  media::EncodedVideo video = test_video();
  const size_t top = video.ladder().level_count() - 1;

  // Rich: deep buffer, healthy forecast, already at the top rung — every
  // risk term is zero, so the argmax is pure visual quality: the top rung.
  WhittleIndexAbr rich;
  rich.begin_session(video);
  sim::AbrObservation obs;
  obs.video = &video;
  obs.num_chunks = video.num_chunks();
  obs.next_chunk = 1;
  obs.last_level = top;
  obs.last_throughput_kbps = 6000.0;
  obs.buffer_s = 1000.0;
  EXPECT_EQ(rich.decide(obs).level, top);

  // Starved: empty buffer and a collapsed forecast — stall and drain risk
  // grow with rung size, so the floor wins.
  WhittleIndexAbr starved;
  starved.begin_session(video);
  obs.last_level = 0;
  obs.last_throughput_kbps = 120.0;
  obs.buffer_s = 0.0;
  EXPECT_EQ(starved.decide(obs).level, 0u);
}

TEST(Whittle, SingleRungLadderStreamsToCompletionAtLevelZero) {
  media::EncodedVideo video = media::Encoder(media::BitrateLadder({500.0}))
                                  .encode(media::SourceVideo::generate(
                                      "WhittleMono", media::Genre::kNature, 80.0));
  ASSERT_EQ(video.ladder().level_count(), 1u);

  WhittleIndexAbr abr;
  net::ThroughputTrace trace = net::TraceGenerator::cellular("whittle-cell", 1200, 500.0, 9);
  sim::SessionResult session = sim::Player().stream(video, trace, abr);
  ASSERT_EQ(session.chunks().size(), video.num_chunks());
  for (const auto& chunk : session.chunks()) EXPECT_EQ(chunk.level, 0u);
}

TEST(Whittle, StreamsAFullSessionWithinTheLadder) {
  media::EncodedVideo video = test_video();
  WhittleIndexAbr abr;
  net::ThroughputTrace trace = net::TraceGenerator::cellular("whittle-run", 1600, 600.0, 13);
  sim::SessionResult session = sim::Player().stream(video, trace, abr);
  ASSERT_EQ(session.chunks().size(), video.num_chunks());
  bool above_floor = false;
  for (const auto& chunk : session.chunks()) {
    ASSERT_LT(chunk.level, video.ladder().level_count());
    if (chunk.level > 0) above_floor = true;
  }
  // A ~1.6 Mbps cell comfortably funds rungs above 300 Kbps.
  EXPECT_TRUE(above_floor);
}

}  // namespace
}  // namespace sensei::abr
