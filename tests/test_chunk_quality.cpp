#include "qoe/chunk_quality.h"

#include <gtest/gtest.h>

#include "media/dataset.h"

namespace sensei::qoe {
namespace {

TEST(ChunkQuality, NoIncidentsEqualsVisualQuality) {
  EXPECT_DOUBLE_EQ(chunk_quality(0.8, 0.0, 0.8), 0.8);
}

TEST(ChunkQuality, StallPenaltyMonotoneAndSaturating) {
  EXPECT_DOUBLE_EQ(stall_penalty(0.0), 0.0);
  EXPECT_DOUBLE_EQ(stall_penalty(-1.0), 0.0);
  double p1 = stall_penalty(1.0), p2 = stall_penalty(2.0);
  double p3 = stall_penalty(3.0), p4 = stall_penalty(4.0);
  EXPECT_GT(p1, 0.0);
  EXPECT_GT(p2, p1);
  EXPECT_GT(p4, p3);
  // Saturation: per-second marginal penalty decreases.
  EXPECT_LT(p4 - p3, p2 - p1 + 1e-9);
}

TEST(ChunkQuality, RebufferingHurts) {
  double clean = chunk_quality(0.8, 0.0, 0.8);
  double stalled = chunk_quality(0.8, 1.0, 0.8);
  EXPECT_LT(stalled, clean);
}

TEST(ChunkQuality, SwitchesHurtSymmetrically) {
  double up = chunk_quality(0.8, 0.0, 0.5);
  double down = chunk_quality(0.8, 0.0, 1.1);
  double flat = chunk_quality(0.8, 0.0, 0.8);
  EXPECT_LT(up, flat);
  EXPECT_DOUBLE_EQ(up, down);  // |delta| is the same
}

TEST(ChunkQuality, FloorBoundsCatastrophe) {
  ChunkQualityParams p;
  double q = chunk_quality(0.1, 1000.0, 0.9, p);
  EXPECT_DOUBLE_EQ(q, p.floor);
}

TEST(ChunkQuality, CustomParamsChangeShape) {
  ChunkQualityParams harsh;
  harsh.beta_rebuf = 5.0;
  double soft = chunk_quality(0.8, 1.0, 0.8);
  double hard = chunk_quality(0.8, 1.0, 0.8, harsh);
  EXPECT_LT(hard, soft);
}

TEST(ChunkQuality, VectorOverRenderedVideo) {
  auto video = media::Encoder().encode(media::Dataset::soccer1_clip());
  auto rendered = sim::RenderedVideo::pristine(video).with_rebuffering(3, 1.0);
  auto q = chunk_qualities(rendered);
  ASSERT_EQ(q.size(), rendered.num_chunks());
  // Every entry matches the scalar chunk_quality applied per chunk; complexity
  // varies across chunks, so even pristine neighbours carry small |dvq| terms.
  for (size_t i = 0; i < q.size(); ++i) {
    double prev = i > 0 ? rendered.chunk(i - 1).visual_quality
                        : rendered.chunk(i).visual_quality;
    EXPECT_DOUBLE_EQ(
        q[i], chunk_quality(rendered.chunk(i).visual_quality,
                            rendered.chunk(i).rebuffer_s, prev));
    if (i == 3) EXPECT_LT(q[i], rendered.chunk(i).visual_quality - 0.5);
  }
}

// Parameterized: chunk quality is monotone non-increasing in stall length
// for any stall in a realistic sweep.
class StallSweep : public ::testing::TestWithParam<double> {};

TEST_P(StallSweep, MonotoneInStall) {
  double t = GetParam();
  EXPECT_LE(chunk_quality(0.9, t + 0.5, 0.9), chunk_quality(0.9, t, 0.9));
}

INSTANTIATE_TEST_SUITE_P(Stalls, StallSweep,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0, 4.0, 8.0));

}  // namespace
}  // namespace sensei::qoe
