// Equivalence gate and fixed-semantics regressions for the event-driven
// session timeline (sim/timeline.h).
//
// The gate: on well-behaved traces (no outage) with rtt_s = 0, the timeline
// engine must reproduce the frozen legacy accounting loop bit for bit —
// every ChunkRecord field, the startup delay, and whole ExperimentRunner
// grids at 1 and 4 threads. The regressions pin the *corrected* semantics:
// RTT as dead time excluded from goodput, outages surfaced instead of the
// old fake-success guard, scheduled-pause vs drain ordering, and buffer-cap
// idle accounting.
#include "sim/timeline.h"

#include <gtest/gtest.h>

#include <cmath>

#include "abr/bba.h"
#include "abr/fugu.h"
#include "core/runner.h"
#include "media/dataset.h"
#include "net/trace_gen.h"
#include "qoe/metrics.h"
#include "sim/player.h"
#include "util/rng.h"

namespace sensei::sim {
namespace {

class ScriptedPolicy : public AbrPolicy {
 public:
  explicit ScriptedPolicy(std::vector<AbrDecision> script) : script_(std::move(script)) {}
  const char* name() const override { return "scripted"; }
  AbrDecision decide(const AbrObservation& obs) override {
    last_obs_ = obs;
    return script_[obs.next_chunk % script_.size()];
  }
  AbrObservation last_obs_;

 private:
  std::vector<AbrDecision> script_;
};

void expect_sessions_bit_identical(const SessionResult& a, const SessionResult& b) {
  ASSERT_EQ(a.chunks().size(), b.chunks().size());
  EXPECT_EQ(a.startup_delay_s(), b.startup_delay_s());
  for (size_t i = 0; i < a.chunks().size(); ++i) {
    const auto& x = a.chunks()[i];
    const auto& y = b.chunks()[i];
    SCOPED_TRACE("chunk " + std::to_string(i));
    EXPECT_EQ(x.level, y.level);
    EXPECT_EQ(x.download_start_s, y.download_start_s);
    EXPECT_EQ(x.download_time_s, y.download_time_s);
    EXPECT_EQ(x.rebuffer_s, y.rebuffer_s);
    EXPECT_EQ(x.scheduled_rebuffer_s, y.scheduled_rebuffer_s);
    EXPECT_EQ(x.buffer_after_s, y.buffer_after_s);
    EXPECT_EQ(x.size_bytes, y.size_bytes);
  }
}

// --- the legacy-vs-timeline bit-identity gate ------------------------------

class TimelineEquivalence : public ::testing::Test {
 protected:
  static PlayerConfig engine_config(TimingEngine engine) {
    PlayerConfig config;
    config.rtt_s = 0.0;  // the gate's precondition: no RTT, no outage
    config.engine = engine;
    return config;
  }
};

TEST_F(TimelineEquivalence, BitIdenticalToLegacyOnSeededGrid) {
  // Seeded grid over (video × trace × policy): scripted mixes with
  // scheduled pauses, BBA, and both Fugu planner flavors.
  std::vector<media::EncodedVideo> videos;
  videos.push_back(media::Encoder().encode(
      media::SourceVideo::generate("TlEqA", media::Genre::kSports, 120)));
  videos.push_back(media::Encoder().encode(
      media::SourceVideo::generate("TlEqB", media::Genre::kNature, 180)));
  auto traces = net::TraceGenerator::test_set(500.0);

  util::Rng rng(0x7157a11);
  for (const auto& video : videos) {
    std::vector<double> weights(video.num_chunks(), 1.0);
    for (size_t i = 0; i < weights.size(); i += 5) weights[i] = rng.uniform(0.6, 2.5);

    for (size_t t = 0; t < traces.size(); ++t) {
      for (int policy_kind = 0; policy_kind < 3; ++policy_kind) {
        SCOPED_TRACE(video.source().name() + " trace " + std::to_string(t) + " policy " +
                     std::to_string(policy_kind));
        auto make_policy = [&]() -> std::unique_ptr<AbrPolicy> {
          switch (policy_kind) {
            case 0:
              return std::make_unique<ScriptedPolicy>(std::vector<AbrDecision>{
                  {0, 0.0}, {4, 0.0}, {2, 1.0}, {3, 0.0}, {1, 2.0}});
            case 1:
              return std::make_unique<abr::BbaAbr>();
            default: {
              abr::FuguConfig fugu;
              fugu.use_weights = true;
              fugu.rebuffer_options = {0.0, 1.0, 2.0};
              return std::make_unique<abr::FuguAbr>(fugu);
            }
          }
        };
        auto legacy_policy = make_policy();
        auto timeline_policy = make_policy();
        SessionResult legacy = Player(engine_config(TimingEngine::kLegacy))
                                   .stream(video, traces[t], *legacy_policy, weights);
        SessionResult timeline = Player(engine_config(TimingEngine::kTimeline))
                                     .stream(video, traces[t], *timeline_policy, weights);
        expect_sessions_bit_identical(legacy, timeline);
        EXPECT_EQ(timeline.outcome(), SessionOutcome::kCompleted);
        ASSERT_NE(timeline.timeline(), nullptr);
        EXPECT_EQ(legacy.timeline(), nullptr);
        std::string why;
        EXPECT_TRUE(timeline.timeline()->check_invariants(&why)) << why;
      }
    }
  }
}

TEST_F(TimelineEquivalence, GridBitIdenticalAcrossEnginesAndRunnerThreads) {
  // The ExperimentRunner contract: a (video × trace) grid is bit-identical
  // across engines (at rtt 0) and across worker counts.
  std::vector<media::EncodedVideo> videos;
  videos.push_back(media::Encoder().encode(
      media::SourceVideo::generate("TlGridA", media::Genre::kGaming, 120)));
  videos.push_back(media::Encoder().encode(
      media::SourceVideo::generate("TlGridB", media::Genre::kAnimation, 120)));
  std::vector<net::ThroughputTrace> traces = {
      net::TraceGenerator::cellular("tl-cell", 900, 500.0, 11),
      net::TraceGenerator::broadband("tl-bb", 2800, 500.0, 12),
  };

  auto run = [&](TimingEngine engine, size_t threads) {
    core::ExperimentRunner runner(threads);
    std::vector<SessionResult> out(videos.size() * traces.size());
    runner.for_each(out.size(), [&](size_t i) {
      size_t v = i / traces.size();
      size_t t = i % traces.size();
      abr::FuguConfig fugu;
      fugu.rebuffer_options = {0.0, 1.0};
      abr::FuguAbr policy(fugu);
      out[i] = Player(engine_config(engine)).stream(videos[v], traces[t], policy);
    });
    return out;
  };

  auto base = run(TimingEngine::kLegacy, 1);
  for (auto engine : {TimingEngine::kLegacy, TimingEngine::kTimeline}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      auto got = run(engine, threads);
      ASSERT_EQ(got.size(), base.size());
      for (size_t i = 0; i < base.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i) + " threads " + std::to_string(threads));
        expect_sessions_bit_identical(base[i], got[i]);
      }
    }
  }
}

// --- corrected RTT semantics ----------------------------------------------

TEST(TimelineRtt, RttIsDeadTimeBeforeTheTransfer) {
  // 2 s of dead link then 1000 Kbps. With a 0.5 s RTT the request is issued
  // at t=0, the transfer may only start at t=0.5 and finds zero capacity
  // until t=2. The legacy placement integrated the transfer from t=0 — same
  // result here — but the distinction shows in capacity accounting below.
  net::ThroughputTrace trace("step", {0.0, 0.0, 1000.0}, 1.0);
  // 125000 bytes = 1 Mbit: transfer needs a full second at 1000 Kbps.
  double dl = trace.download_time_s(125000.0, 0.0, 0.5);
  // RTT 0.5 + (wait 1.5 until t=2) + 1 s transfer = 3.0 total.
  EXPECT_NEAR(dl, 3.0, 1e-9);
}

TEST(TimelineRtt, RttConsumesNoTraceCapacity) {
  // 1000 Kbps for 1 s, then dead, then 1000 Kbps again. A 62500-byte chunk
  // (0.5 Mbit) requested at t=0.6 with rtt 0.5: the transfer starts at
  // t=1.1 — inside the dead second — and completes 0.1 s into the third
  // interval. Under the old placement the transfer would have integrated
  // from t=0.6 and "used" 0.4 s of capacity the request never touched.
  net::ThroughputTrace trace("gap", {1000.0, 0.0, 1000.0}, 1.0);
  double dl = trace.download_time_s(62500.0, 0.6, 0.5);
  EXPECT_NEAR(dl, 0.5 + (2.0 - 1.1) + 0.5, 1e-9);
}

TEST(TimelineRtt, GoodputExcludesRtt) {
  // A small chunk whose wire time is comparable to the RTT: the goodput
  // handed to the predictors must be bytes / transfer, not bytes / (rtt +
  // transfer). Constant 8000 Kbps link, 4 Mbit chunks -> 0.5 s transfers.
  auto video = media::Encoder().encode(
      media::SourceVideo::generate("RttGoodput", media::Genre::kSports, 60));
  net::ThroughputTrace trace("flat", std::vector<double>(600, 8000.0), 1.0);
  PlayerConfig config;
  config.rtt_s = 0.25;
  ScriptedPolicy policy({{2, 0.0}});
  SessionResult s = Player(config).stream(video, trace, policy);
  ASSERT_NE(s.timeline(), nullptr);
  for (const auto& c : s.timeline()->chunks()) {
    double wire_s = c.transfer_s;
    ASSERT_GT(wire_s, 0.0);
    double expected_goodput = c.goodput_kbps;
    // goodput == size * 8 / transfer (not the RTT-diluted estimate).
    EXPECT_NEAR(expected_goodput * wire_s,
                s.chunks()[c.chunk].size_bytes * 8.0 / 1000.0, 1e-6);
    EXPECT_EQ(c.rtt_s, 0.25);
    // The wall-clock download time still includes the RTT.
    EXPECT_NEAR(s.chunks()[c.chunk].download_time_s, wire_s + 0.25, 1e-12);
  }
  // The observation stream carries the unbiased estimate.
  EXPECT_NEAR(policy.last_obs_.last_throughput_kbps, 8000.0, 1e-6);
  EXPECT_EQ(policy.last_obs_.last_rtt_s, 0.25);
}

// --- outage semantics ------------------------------------------------------

TEST(TimelineOutage, DeadLoopingTraceTruncatesSession) {
  auto video = media::Encoder().encode(
      media::SourceVideo::generate("Dead", media::Genre::kAnimation, 60));
  net::ThroughputTrace dead("dead", {0.0, 0.0, 0.0}, 1.0);
  ScriptedPolicy policy({{0, 0.0}});
  SessionResult s = Player().stream(video, dead, policy);
  EXPECT_EQ(s.outcome(), SessionOutcome::kOutage);
  EXPECT_TRUE(s.chunks().empty());  // the very first chunk never arrived
  ASSERT_NE(s.timeline(), nullptr);
  EXPECT_EQ(s.timeline()->outcome(), SessionOutcome::kOutage);
  EXPECT_EQ(s.timeline()->outage_chunk(), 0u);
}

TEST(TimelineOutage, MidSessionOutageKeepsCompletedChunks) {
  // Healthy for 60 s, then dead forever (finite trace, non-looping).
  auto video = media::Encoder().encode(
      media::SourceVideo::generate("MidOutage", media::Genre::kAnimation, 240));
  net::ThroughputTrace trace =
      net::ThroughputTrace("cliff", std::vector<double>(60, 4000.0), 1.0).as_finite();
  ScriptedPolicy policy({{2, 0.0}});
  SessionResult s = Player().stream(video, trace, policy);
  EXPECT_EQ(s.outcome(), SessionOutcome::kOutage);
  EXPECT_GT(s.chunks().size(), 0u);
  EXPECT_LT(s.chunks().size(), video.num_chunks());
  ASSERT_NE(s.timeline(), nullptr);
  EXPECT_EQ(s.timeline()->outage_chunk(), s.chunks().size());
  std::string why;
  EXPECT_TRUE(s.timeline()->check_invariants(&why)) << why;
  // Every surviving record is a genuinely completed download.
  for (const auto& c : s.chunks()) EXPECT_TRUE(std::isfinite(c.download_time_s));
}

TEST(TimelineOutage, LongZeroStretchIsAnExactStallNotFakeSuccess) {
  // The old guard walked at most 10,000 intervals and then *returned a
  // finite time as if the chunk had downloaded*. A 12,000 s dead stretch
  // must now yield the exact 12,000+ s stall.
  std::vector<double> samples(12001, 0.0);
  samples[12000] = 8000.0;
  net::ThroughputTrace trace("coma", std::move(samples), 1.0);
  net::TransferResult r = trace.advance(125000.0, 0.0);
  EXPECT_TRUE(r.completed);
  EXPECT_NEAR(r.elapsed_s, 12000.0 + 0.125, 1e-9);
}

// --- scheduled-pause vs drain ordering ------------------------------------

TEST(TimelineOrdering, DrainThenPauseCreditThenChunkAppend) {
  // One chunk at a time over a constant link; hand-computable numbers.
  // tau = 4 s chunks, 1 Mbit at level 0 over 1000 Kbps -> dl = 1 s exactly.
  auto video = media::Encoder().encode(
      media::SourceVideo::generate("Order", media::Genre::kSports, 40));
  double bits0 = video.rep(1, 0).size_bytes * 8.0;
  double kbps = bits0 / 1000.0;  // dl of chunk 1 at level 0 == exactly 1 s
  net::ThroughputTrace trace("flat", std::vector<double>(4000, kbps), 1.0);
  PlayerConfig config;
  config.rtt_s = 0.0;
  config.max_buffer_s = 1000.0;  // cap out of the way
  ScriptedPolicy policy({{0, 0.0}, {0, 1.5}});
  SessionResult s = Player(config).stream(video, trace, policy);
  ASSERT_NE(s.timeline(), nullptr);
  const auto& chunks = s.timeline()->chunks();
  double tau = video.chunk_duration_s();

  // Chunk 1 (script index 1): scheduled 1.5 s pause. The order is pinned:
  // drain dl, then credit the pause, then append tau.
  const auto& c1 = chunks[1];
  double dl1 = s.chunks()[1].download_time_s;
  EXPECT_EQ(c1.scheduled_pause_s, 1.5);
  EXPECT_EQ(c1.stall_s, 0.0);  // buffer (tau) covered the download
  EXPECT_EQ(s.chunks()[1].rebuffer_s, 1.5);  // the pause is charged as stall
  EXPECT_DOUBLE_EQ(c1.buffer_after_s, tau - dl1 + 1.5 + tau);
  std::string why;
  EXPECT_TRUE(s.timeline()->check_invariants(&why)) << why;
}

TEST(TimelineOrdering, UnscheduledStallAnchoredWhereBufferEmptied) {
  // Slow link: each download outlasts the buffer, so every post-startup
  // chunk stalls and the stall onset sits exactly at buffer exhaustion.
  auto video = media::Encoder().encode(
      media::SourceVideo::generate("Anchor", media::Genre::kSports, 80));
  net::ThroughputTrace slow("slow", std::vector<double>(4000, 400.0), 1.0);
  PlayerConfig config;
  config.rtt_s = 0.0;
  ScriptedPolicy policy({{4, 0.0}});
  SessionResult s = Player(config).stream(video, slow, policy);
  ASSERT_NE(s.timeline(), nullptr);
  bool any_stall = false;
  for (const auto& c : s.timeline()->chunks()) {
    if (c.stall_s <= 0.0) continue;
    any_stall = true;
    // Onset = request + what the buffer could cover.
    EXPECT_NEAR(c.stall_start_wall_s, c.request_wall_s + c.buffer_before_s, 1e-9);
    EXPECT_NEAR(c.stall_start_wall_s, c.arrival_wall_s - c.stall_s, 1e-12);
  }
  EXPECT_TRUE(any_stall);
  EXPECT_GT(s.timeline()->first_stall_wall_s(), 0.0);
}

// --- buffer-cap idle accounting -------------------------------------------

TEST(TimelineIdle, IdleAdvancesWallClockAndDrainsToCap) {
  // Fast link + small buffer cap: the player repeatedly idles. Idle spans
  // must advance the wall clock by exactly the excess and leave the buffer
  // at the cap.
  auto video = media::Encoder().encode(
      media::SourceVideo::generate("Idle", media::Genre::kSports, 120));
  net::ThroughputTrace fast("fast", std::vector<double>(2000, 50000.0), 1.0);
  PlayerConfig config;
  config.rtt_s = 0.0;
  config.max_buffer_s = 6.0;  // < 2 * tau forces idling every chunk
  ScriptedPolicy policy({{0, 0.0}});
  SessionResult s = Player(config).stream(video, fast, policy);
  ASSERT_NE(s.timeline(), nullptr);
  const auto& chunks = s.timeline()->chunks();
  double total_idle = 0.0;
  for (size_t i = 1; i < chunks.size(); ++i) {
    const auto& c = chunks[i];
    if (c.idle_s > 0.0) {
      EXPECT_EQ(c.buffer_after_s, 6.0);
      // The next request waits out the idle.
      if (i + 1 < chunks.size()) {
        EXPECT_DOUBLE_EQ(chunks[i + 1].request_wall_s, c.arrival_wall_s + c.idle_s);
      }
    }
    total_idle += c.idle_s;
  }
  EXPECT_GT(total_idle, 0.0);
  EXPECT_DOUBLE_EQ(s.timeline()->total_idle_s(), total_idle);
  std::string why;
  EXPECT_TRUE(s.timeline()->check_invariants(&why)) << why;
}

// --- timeline events and stall attribution --------------------------------

TEST(TimelineEvents, EventsPartitionDownloadWindowsAndCarryOverlays) {
  auto video = media::Encoder().encode(
      media::SourceVideo::generate("Events", media::Genre::kGaming, 80));
  net::ThroughputTrace trace = net::TraceGenerator::cellular("ev-cell", 700, 600.0, 21);
  PlayerConfig config;  // default rtt 0.08 so kRttWait events appear
  ScriptedPolicy policy({{3, 0.0}, {1, 1.0}});
  SessionResult s = Player(config).stream(video, trace, policy);
  ASSERT_NE(s.timeline(), nullptr);
  auto events = s.timeline()->events();
  ASSERT_FALSE(events.empty());

  // Per chunk: rtt + transfer spans must tile [request, arrival].
  for (const auto& c : s.timeline()->chunks()) {
    double covered = 0.0;
    for (const auto& e : events) {
      if (e.chunk != c.chunk) continue;
      if (e.kind == TimelineEventKind::kRttWait || e.kind == TimelineEventKind::kTransfer)
        covered += e.duration_s;
    }
    EXPECT_NEAR(covered, c.arrival_wall_s - c.request_wall_s, 1e-9);
  }
  // Overlay sums must equal the aggregates.
  double stall_sum = 0.0, pause_sum = 0.0;
  for (const auto& e : events) {
    EXPECT_GT(e.duration_s, 0.0);  // zero-length spans are skipped
    if (e.kind == TimelineEventKind::kStall) stall_sum += e.duration_s;
    if (e.kind == TimelineEventKind::kScheduledPause) pause_sum += e.duration_s;
  }
  EXPECT_NEAR(stall_sum, s.timeline()->total_unscheduled_stall_s(), 1e-9);
  EXPECT_NEAR(pause_sum, s.timeline()->total_scheduled_pause_s(), 1e-9);
}

TEST(TimelineEvents, StallProfileMatchesSessionAccounting) {
  auto video = media::Encoder().encode(
      media::SourceVideo::generate("Profile", media::Genre::kSports, 120));
  net::ThroughputTrace slow("slow", std::vector<double>(4000, 500.0), 1.0);
  ScriptedPolicy policy({{4, 0.0}, {2, 1.0}});
  SessionResult s = Player().stream(video, slow, policy);
  ASSERT_NE(s.timeline(), nullptr);
  qoe::StallProfile profile = qoe::stall_profile(*s.timeline());
  ASSERT_EQ(profile.per_chunk_stall_s.size(), s.chunks().size());
  for (size_t i = 0; i < s.chunks().size(); ++i) {
    // Attribution read off the trajectory == the session's per-chunk stall.
    EXPECT_DOUBLE_EQ(profile.per_chunk_stall_s[i], s.chunks()[i].rebuffer_s);
  }
  EXPECT_DOUBLE_EQ(profile.total_stall_s, s.total_rebuffer_s());
  EXPECT_GT(profile.stall_event_count, 0u);
  EXPECT_GT(profile.longest_stall_s, 0.0);
  EXPECT_GE(profile.first_stall_wall_s, 0.0);
  EXPECT_FALSE(profile.ended_in_outage);
}

TEST(TimelineObservation, TrajectoryContextReachesThePolicy) {
  auto video = media::Encoder().encode(
      media::SourceVideo::generate("Ctx", media::Genre::kSports, 120));
  net::ThroughputTrace slow("slow", std::vector<double>(4000, 450.0), 1.0);
  ScriptedPolicy policy({{4, 0.0}});
  SessionResult s = Player().stream(video, slow, policy);
  const auto& obs = policy.last_obs_;
  ASSERT_NE(obs.timeline, nullptr);
  // The observation points at the live timeline: by the time the session
  // returns it has grown to cover every chunk.
  EXPECT_EQ(obs.timeline->chunks().size(), video.num_chunks());
  EXPECT_GT(obs.wall_clock_s, 0.0);
  EXPECT_GT(obs.total_stall_s, 0.0);
  EXPECT_GT(obs.playhead_s, 0.0);
  // Media conservation at the decision point.
  EXPECT_NEAR(obs.playhead_s + obs.buffer_s,
              static_cast<double>(video.num_chunks() - 1) * video.chunk_duration_s(), 1e-6);
  (void)s;
}

}  // namespace
}  // namespace sensei::sim
