#include "ml/mlp.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sensei::ml {
namespace {

TEST(Softmax, NormalizesAndOrders) {
  auto p = softmax({1.0, 2.0, 3.0});
  ASSERT_EQ(p.size(), 3u);
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  auto p = softmax({1000.0, 1001.0});
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  EXPECT_GT(p[1], p[0]);
  EXPECT_FALSE(std::isnan(p[0]));
}

TEST(Mlp, ForwardShapes) {
  util::Rng rng(1);
  Mlp net(4, {{8, Activation::kReLU}, {3, Activation::kSoftmax}}, rng);
  EXPECT_EQ(net.input_dim(), 4u);
  EXPECT_EQ(net.output_dim(), 3u);
  auto out = net.forward({0.1, 0.2, 0.3, 0.4});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NEAR(out[0] + out[1] + out[2], 1.0, 1e-12);
}

TEST(Mlp, BadInputSizeThrows) {
  util::Rng rng(2);
  Mlp net(4, {{2, Activation::kLinear}}, rng);
  EXPECT_THROW(net.forward({1.0}), std::runtime_error);
}

TEST(Mlp, SoftmaxMustBeLast) {
  util::Rng rng(3);
  EXPECT_THROW(Mlp(2, {{3, Activation::kSoftmax}, {2, Activation::kLinear}}, rng),
               std::runtime_error);
}

TEST(Mlp, GradientMatchesNumericalEstimate) {
  // Check dL/dinput-weights via finite differences on a tiny tanh net with
  // squared loss L = 0.5*(y - t)^2.
  util::Rng rng(4);
  Mlp net(2, {{3, Activation::kTanh}, {1, Activation::kLinear}}, rng);
  std::vector<double> x = {0.3, -0.7};
  double target = 0.25;

  auto loss = [&](Mlp& m) {
    double y = m.forward(x)[0];
    return 0.5 * (y - target) * (y - target);
  };

  // Analytic gradient step with tiny lr; compare loss drop to numeric slope.
  double y0 = net.forward(x)[0];
  double l0 = loss(net);
  net.accumulate_gradient(x, {y0 - target});
  net.apply_adam(1e-4, 1);
  double l1 = loss(net);
  EXPECT_LT(l1, l0);  // one step must reduce loss on a smooth problem
}

TEST(Mlp, LearnsLinearRegression) {
  util::Rng rng(5);
  Mlp net(1, {{8, Activation::kTanh}, {1, Activation::kLinear}}, rng);
  util::Rng data_rng(6);
  for (int step = 0; step < 4000; ++step) {
    double x = data_rng.uniform(-1, 1);
    double t = 0.5 * x + 0.2;
    double y = net.forward({x})[0];
    net.accumulate_gradient({x}, {y - t});
    net.apply_adam(3e-3, 1);
  }
  double err = 0.0;
  for (double x = -1.0; x <= 1.0; x += 0.2) {
    err = std::max(err, std::abs(net.forward({x})[0] - (0.5 * x + 0.2)));
  }
  EXPECT_LT(err, 0.08);
}

TEST(Mlp, LearnsXorWithHiddenLayer) {
  util::Rng rng(7);
  Mlp net(2, {{12, Activation::kTanh}, {1, Activation::kLinear}}, rng);
  const std::vector<std::pair<std::vector<double>, double>> data = {
      {{0, 0}, 0}, {{0, 1}, 1}, {{1, 0}, 1}, {{1, 1}, 0}};
  for (int epoch = 0; epoch < 4000; ++epoch) {
    for (const auto& [x, t] : data) {
      double y = net.forward(x)[0];
      net.accumulate_gradient(x, {y - t});
    }
    net.apply_adam(5e-3, data.size());
  }
  for (const auto& [x, t] : data) {
    EXPECT_NEAR(net.forward(x)[0], t, 0.2);
  }
}

TEST(Mlp, ParameterCountFormula) {
  util::Rng rng(8);
  Mlp net(10, {{20, Activation::kReLU}, {5, Activation::kSoftmax}}, rng);
  EXPECT_EQ(net.parameter_count(), 10u * 20 + 20 + 20 * 5 + 5);
  EXPECT_GT(net.parameter_norm(), 0.0);
}

TEST(Mlp, ZeroGradientsKeepsParameters) {
  util::Rng rng(9);
  Mlp net(2, {{4, Activation::kReLU}, {1, Activation::kLinear}}, rng);
  double before = net.parameter_norm();
  net.zero_gradients();
  net.apply_adam(1e-2, 1);  // zero gradient -> Adam moves negligibly
  EXPECT_NEAR(net.parameter_norm(), before, 1e-6);
}

}  // namespace
}  // namespace sensei::ml
