// Policy registry gates (abr/registry.h):
//  - strict spec parsing: grammar acceptance, and position-annotated
//    rejection of every malformed shape;
//  - vocabulary validation: unknown names/keys/values fail naming the
//    accepted alternatives;
//  - canonicalization: defaults explicit, keys sorted, numeric text
//    round-trip-exact; canonical strings are a fixed point of
//    parse -> canonicalize -> to_string, and are insensitive to key order
//    and to spelling defaults out;
//  - the headline contract: a registry-built policy is bit-identical in
//    behavior to a directly constructed one, for every registered name, on
//    seeded session grids at 1 and 4 runner threads (compared with
//    bench_util.h's sessions_differ, the same comparator the bench
//    identity gates use).
#include "abr/registry.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "abr/bba.h"
#include "abr/fugu.h"
#include "abr/pensieve.h"
#include "abr/rate_based.h"
#include "abr/whittle.h"
#include "bench_util.h"
#include "core/runner.h"
#include "media/dataset.h"
#include "net/trace_gen.h"
#include "sim/player.h"

namespace sensei::abr {
namespace {

std::string thrown_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

// ---- parsing ----------------------------------------------------------------

TEST(PolicySpecParse, AcceptsTheGrammar) {
  PolicySpec bare = PolicySpec::parse("bba");
  EXPECT_EQ(bare.name, "bba");
  EXPECT_TRUE(bare.kv.empty());

  PolicySpec full = PolicySpec::parse("fugu:planner=vi,horizon=5");
  EXPECT_EQ(full.name, "fugu");
  ASSERT_EQ(full.kv.size(), 2u);
  // parse() preserves textual order; canonicalize() sorts.
  EXPECT_EQ(full.kv[0].first, "planner");
  EXPECT_EQ(full.kv[0].second, "vi");
  EXPECT_EQ(full.kv[1].first, "horizon");
  EXPECT_EQ(full.kv[1].second, "5");

  PolicySpec dashed = PolicySpec::parse("sensei-fugu-bitrate-only:weight_shrinkage=0.5");
  EXPECT_EQ(dashed.name, "sensei-fugu-bitrate-only");
  ASSERT_NE(dashed.find("weight_shrinkage"), nullptr);
  EXPECT_EQ(*dashed.find("weight_shrinkage"), "0.5");
  EXPECT_EQ(dashed.find("absent"), nullptr);

  EXPECT_EQ(full.to_string(), "fugu:planner=vi,horizon=5");
  EXPECT_EQ(bare.to_string(), "bba");
}

TEST(PolicySpecParse, RejectsMalformedTextWithPositions) {
  struct Case {
    const char* text;
    const char* expect_substring;
  };
  const Case cases[] = {
      {"", "empty policy name at position 0"},
      {":planner=vi", "empty policy name at position 0"},
      {"Fugu", "invalid character 'F' in policy name at position 0"},
      {"fugu!", "invalid character '!' in policy name at position 4"},
      {"fugu:", "empty key=value pair at position 5"},
      {"fugu:planner=vi,", "empty key=value pair at position 16"},
      {"fugu:planner", "missing '=' in key=value pair at position 5"},
      {"fugu:planner=vi,horizon", "missing '=' in key=value pair at position 16"},
      {"fugu:=vi", "empty key at position 5"},
      {"fugu:plan ner=vi", "invalid character ' ' in key at position 9"},
      {"fugu:planner=", "empty value for key 'planner' at position 13"},
      {"fugu:planner=vi,planner=dp", "duplicate key 'planner' at position 16"},
  };
  for (const Case& c : cases) {
    EXPECT_THROW(PolicySpec::parse(c.text), std::runtime_error) << c.text;
    std::string message = thrown_message([&] { PolicySpec::parse(c.text); });
    EXPECT_NE(message.find(c.expect_substring), std::string::npos)
        << "spec \"" << c.text << "\": got \"" << message << "\"";
  }
}

// ---- vocabulary -------------------------------------------------------------

TEST(PolicyRegistry, RegistersTheShippedPolicies) {
  PolicyRegistry& registry = PolicyRegistry::instance();
  for (const char* name : {"bba", "rate_based", "whittle", "fugu", "sensei-fugu",
                           "sensei-fugu-bitrate-only", "pensieve", "sensei-pensieve"}) {
    EXPECT_TRUE(registry.has(name)) << name;
  }
  EXPECT_FALSE(registry.has("mpc"));
  EXPECT_EQ(registry.names().size(), 8u);
}

TEST(PolicyRegistry, RejectsUnknownVocabularyNamingAlternatives) {
  PolicyRegistry& registry = PolicyRegistry::instance();

  std::string message =
      thrown_message([&] { registry.canonicalize(PolicySpec::parse("no-such-policy")); });
  EXPECT_NE(message.find("unknown policy name 'no-such-policy'"), std::string::npos) << message;
  EXPECT_NE(message.find("bba"), std::string::npos) << message;  // lists registered names

  message = thrown_message([&] { registry.canonical_string("bba:nope=1"); });
  EXPECT_NE(message.find("policy 'bba' has no key 'nope'"), std::string::npos) << message;
  EXPECT_NE(message.find("reservoir_s"), std::string::npos) << message;  // lists known keys

  message = thrown_message([&] { registry.canonical_string("fugu:planner=magic"); });
  EXPECT_NE(message.find("not one of"), std::string::npos) << message;
  EXPECT_NE(message.find("exhaustive"), std::string::npos) << message;

  EXPECT_THROW(registry.canonical_string("bba:reservoir_s=abc"), std::runtime_error);
  EXPECT_THROW(registry.canonical_string("bba:reservoir_s=1.5x"), std::runtime_error);
  EXPECT_THROW(registry.canonical_string("bba:reservoir_s=inf"), std::runtime_error);
  EXPECT_THROW(registry.canonical_string("fugu:horizon=-3"), std::runtime_error);
  EXPECT_THROW(registry.canonical_string("fugu:horizon=3.5"), std::runtime_error);
  EXPECT_THROW(registry.make("no-such-policy"), std::runtime_error);
}

// ---- canonicalization -------------------------------------------------------

TEST(PolicyRegistry, CanonicalFormIsSortedExplicitAndAFixedPoint) {
  PolicyRegistry& registry = PolicyRegistry::instance();

  for (const std::string& name : registry.names()) {
    PolicySpec canonical = registry.canonicalize(PolicySpec::parse(name));
    // Every registered key is explicit, in sorted order.
    ASSERT_EQ(canonical.kv.size(), registry.keys(name).size()) << name;
    for (size_t i = 1; i < canonical.kv.size(); ++i) {
      EXPECT_LT(canonical.kv[i - 1].first, canonical.kv[i].first) << name;
    }
    // parse -> canonicalize -> to_string is a fixed point.
    std::string text = canonical.to_string();
    EXPECT_EQ(registry.canonical_string(text), text) << name;
    // A canonical spec canonicalizes to itself, field for field.
    EXPECT_TRUE(registry.canonicalize(canonical) == canonical) << name;
  }

  // Spelling out defaults, in any key order, lands on the bare name's form.
  const std::string bare = registry.canonical_string("bba");
  EXPECT_EQ(registry.canonical_string("bba:cushion_s=20,reservoir_s=5"), bare);
  EXPECT_EQ(registry.canonical_string("bba:reservoir_s=5,cushion_s=20"), bare);
  EXPECT_EQ(registry.canonical_string("bba:reservoir_s=5.0,cushion_s=2e1"), bare);
  EXPECT_NE(registry.canonical_string("bba:reservoir_s=6"), bare);

  // The same configuration in different key orders dedups to one string —
  // the fleet's pooling key.
  EXPECT_EQ(registry.canonical_string("fugu:horizon=5,planner=vi"),
            registry.canonical_string("fugu:planner=vi,horizon=5"));
}

TEST(PolicyRegistry, FormatSpecDoubleRoundTripsExactly) {
  for (double v : {0.0, 1.0, -0.5, 0.1, 0.3, 1.0 / 3.0, 1e-9, 12345.6789, 2e1}) {
    std::string text = format_spec_double(v);
    char* end = nullptr;
    EXPECT_EQ(std::strtod(text.c_str(), &end), v) << text;
    EXPECT_EQ(end, text.c_str() + text.size()) << text;
    // Canonical text is itself a fixed point of reformatting.
    EXPECT_EQ(format_spec_double(std::strtod(text.c_str(), nullptr)), text);
  }
}

// ---- registry == direct construction ---------------------------------------

// The concrete constructor each registered default spec must be
// bit-identical to. This is the *reference* path: config structs assigned
// by hand, no registry involvement.
std::unique_ptr<sim::AbrPolicy> direct_construct(const std::string& spec) {
  if (spec == "bba") return std::make_unique<BbaAbr>();
  if (spec == "rate_based") return std::make_unique<RateBasedAbr>();
  if (spec == "whittle") return std::make_unique<WhittleIndexAbr>();
  if (spec == "fugu") return std::make_unique<FuguAbr>();
  if (spec == "fugu:planner=vi") {
    FuguConfig cfg;
    cfg.planner = PlannerKind::kVi;
    return std::make_unique<FuguAbr>(cfg);
  }
  if (spec == "sensei-fugu") {
    FuguConfig cfg;
    cfg.use_weights = true;
    cfg.rebuffer_options = {0.0, 1.0, 2.0};
    return std::make_unique<FuguAbr>(cfg);
  }
  if (spec == "sensei-fugu-bitrate-only") {
    FuguConfig cfg;
    cfg.use_weights = true;
    return std::make_unique<FuguAbr>(cfg);
  }
  if (spec == "pensieve") return std::make_unique<PensieveAbr>(PensieveConfig(), 41);
  if (spec == "sensei-pensieve") {
    PensieveConfig cfg;
    cfg.sensei_mode = true;
    return std::make_unique<PensieveAbr>(cfg, 42);
  }
  return nullptr;
}

class RegistryIdentity : public ::testing::Test {
 protected:
  RegistryIdentity() {
    media::Encoder encoder;
    videos_.push_back(encoder.encode(
        media::SourceVideo::generate("RegA", media::Genre::kSports, 60)));
    videos_.push_back(encoder.encode(
        media::SourceVideo::generate("RegB", media::Genre::kAnimation, 80)));
    traces_.push_back(net::TraceGenerator::cellular("reg-cell", 1400, 650.0, 17));
    traces_.push_back(net::TraceGenerator::broadband("reg-isp", 3200, 500.0, 18));
    for (const auto& v : videos_) {
      std::vector<double> w(v.num_chunks(), 1.0);
      for (size_t i = 3; i < w.size(); i += 7) w[i] = 2.2;
      weights_.push_back(std::move(w));
    }
  }

  // One seeded (video x trace) grid with a fresh policy per cell.
  std::vector<sim::SessionResult> run_grid(
      const std::function<std::unique_ptr<sim::AbrPolicy>()>& make, bool use_weights,
      size_t threads) const {
    core::ExperimentRunner runner(threads);
    std::vector<sim::SessionResult> out(videos_.size() * traces_.size());
    sim::Player player;
    const std::vector<double> none;
    runner.for_each(out.size(), [&](size_t i) {
      size_t v = i / traces_.size();
      size_t t = i % traces_.size();
      auto policy = make();
      out[i] =
          player.stream(videos_[v], traces_[t], *policy, use_weights ? weights_[v] : none);
    });
    return out;
  }

  std::vector<media::EncodedVideo> videos_;
  std::vector<net::ThroughputTrace> traces_;
  std::vector<std::vector<double>> weights_;
};

TEST_F(RegistryIdentity, RegistryMatchesDirectConstructionOnSeededGrids) {
  // Every registered name at its default spec, plus a non-default planner
  // variant — each compared cell for cell against the hand-built config.
  const char* specs[] = {"bba",
                         "rate_based",
                         "whittle",
                         "fugu",
                         "fugu:planner=vi",
                         "sensei-fugu",
                         "sensei-fugu-bitrate-only",
                         "pensieve",
                         "sensei-pensieve"};
  for (const char* spec : specs) {
    const bool use_weights = std::string(spec).rfind("sensei-", 0) == 0;
    auto registry_make = [spec] { return make_policy(spec); };
    auto direct_make = [spec] { return direct_construct(spec); };
    ASSERT_NE(direct_construct(spec), nullptr) << spec;

    auto direct = run_grid(direct_make, use_weights, 1);
    for (size_t threads : {size_t{1}, size_t{4}}) {
      auto registry = run_grid(registry_make, use_weights, threads);
      ASSERT_EQ(registry.size(), direct.size()) << spec;
      for (size_t i = 0; i < registry.size(); ++i) {
        EXPECT_FALSE(bench::sessions_differ(registry[i], direct[i]))
            << spec << " cell " << i << " threads " << threads;
      }
    }
  }
}

}  // namespace
}  // namespace sensei::abr
