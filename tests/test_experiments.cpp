// core::Experiments caching invariants: the lazily built evaluation fixtures
// must hand out stable references (bench binaries and the parallel grid keep
// pointers into them across many calls) and fail loudly on unknown lookups.
#include "core/experiments.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sensei {
namespace {

using core::Experiments;

TEST(ExperimentsTest, VideosAreCachedAndStable) {
  const auto& first = Experiments::videos();
  const auto& second = Experiments::videos();
  EXPECT_EQ(&first, &second);
  // Table 1's 16-video test set, built exactly once.
  EXPECT_EQ(first.size(), 16u);
  EXPECT_EQ(first.data(), second.data());
}

TEST(ExperimentsTest, TracesAreCachedAndStable) {
  const auto& first = Experiments::traces();
  const auto& second = Experiments::traces();
  EXPECT_EQ(&first, &second);
  // §7.1's 10 evaluation traces, ordered by mean throughput.
  EXPECT_EQ(first.size(), 10u);
  for (size_t t = 1; t < first.size(); ++t) {
    EXPECT_LE(first[t - 1].mean_kbps(), first[t].mean_kbps());
  }
}

TEST(ExperimentsTest, TrainTracesAreDisjointFromEvaluationTraces) {
  const auto& train = Experiments::train_traces();
  EXPECT_EQ(&train, &Experiments::train_traces());
  for (const auto& tr : train) {
    for (const auto& ev : Experiments::traces()) {
      EXPECT_NE(tr.name(), ev.name());
    }
  }
}

TEST(ExperimentsTest, OracleIsASingleton) {
  EXPECT_EQ(&Experiments::oracle(), &Experiments::oracle());
}

TEST(ExperimentsTest, VideoIndexRoundTripsEveryVideo) {
  const auto& videos = Experiments::videos();
  for (size_t v = 0; v < videos.size(); ++v) {
    EXPECT_EQ(Experiments::video_index(videos[v].source().name()), v);
  }
}

TEST(ExperimentsTest, VideoIndexThrowsOnUnknownName) {
  EXPECT_THROW(Experiments::video_index("no-such-video"), std::runtime_error);
  EXPECT_THROW(Experiments::video_index(""), std::runtime_error);
}

TEST(ExperimentsTest, RunIsDeterministicForAFixedCell) {
  const auto& video = Experiments::videos()[0];
  const auto& trace = Experiments::traces()[0];
  abr::BbaAbr bba1, bba2;
  auto a = Experiments::run(video, trace, bba1, {});
  auto b = Experiments::run(video, trace, bba2, {});
  EXPECT_EQ(a.true_qoe, b.true_qoe);
  EXPECT_EQ(a.session.chunks().size(), b.session.chunks().size());
}

}  // namespace
}  // namespace sensei
