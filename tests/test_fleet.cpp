// Fleet simulator gates (sim/fleet.h, sim/workload.h):
//  - the workload generator's statistical and determinism properties;
//  - fleet aggregates bit-identical across ExperimentRunner thread counts
//    and shard counts (the headline contract);
//  - a single-cell fleet reproducing, session for session, what the plain
//    sim::Simulator computes over the identical arrival list — proving the
//    pooled-engine event loop is a recycling of the reference loop, not a
//    different simulator.
#include "sim/fleet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "abr/registry.h"
#include "core/runner.h"
#include "media/dataset.h"
#include "net/trace_gen.h"
#include "sim/session_engine.h"
#include "sim/simulator.h"

namespace sensei::sim {
namespace {

constexpr size_t kNoLimit = static_cast<size_t>(-1);

// ---- workload generator -----------------------------------------------------

TEST(Workload, PoissonStreamIsOrderedSeededAndRateShaped) {
  WorkloadConfig config;
  config.arrival_rate_per_s = 2.0;
  config.arrival_window_s = 500.0;
  config.num_videos = 3;

  WorkloadGenerator gen_a(config, 42);
  WorkloadGenerator gen_b(config, 42);
  WorkloadGenerator gen_c(config, 43);

  SessionArrival a, b, c;
  double prev = 0.0;
  size_t count = 0;
  bool any_seed_difference = false;
  while (gen_a.next(&a)) {
    ASSERT_TRUE(gen_b.next(&b));
    // Same seed -> identical stream, field for field.
    ASSERT_EQ(a.start_s, b.start_s);
    ASSERT_EQ(a.video_index, b.video_index);
    ASSERT_EQ(a.policy_index, b.policy_index);
    ASSERT_EQ(a.chunk_limit, b.chunk_limit);
    if (gen_c.next(&c) && c.start_s != a.start_s) any_seed_difference = true;
    ASSERT_GE(a.start_s, prev);
    ASSERT_LT(a.start_s, config.arrival_window_s);
    ASSERT_LT(a.video_index, config.num_videos);
    prev = a.start_s;
    ++count;
  }
  EXPECT_FALSE(gen_b.next(&b));
  EXPECT_TRUE(any_seed_difference);
  EXPECT_EQ(gen_a.generated(), count);
  // ~1000 expected arrivals; 5 sigma is ~160.
  EXPECT_NEAR(static_cast<double>(count), 1000.0, 160.0);
}

TEST(Workload, DiurnalThinsTowardTheTrough) {
  WorkloadConfig config;
  config.arrival_rate_per_s = 2.0;
  config.arrival_window_s = 600.0;
  config.diurnal_period_s = 600.0;
  config.diurnal_trough = 0.1;

  config.arrivals = ArrivalProcess::kDiurnal;
  WorkloadGenerator diurnal(config, 7);
  SessionArrival a;
  size_t total = 0, first_quarter = 0, mid = 0;
  while (diurnal.next(&a)) {
    ++total;
    if (a.start_s < 150.0) ++first_quarter;
    if (a.start_s >= 225.0 && a.start_s < 375.0) ++mid;
  }
  // The mean acceptance over a full period is (trough + 1) / 2 = 0.55 of
  // the peak-rate candidates; and the curve troughs at t=0, peaks at T/2.
  EXPECT_NEAR(static_cast<double>(total), 0.55 * 1200.0, 180.0);
  EXPECT_GT(mid, first_quarter * 2);
}

TEST(Workload, AbandonmentLimitsAndPolicyMix) {
  WorkloadConfig config;
  config.arrival_rate_per_s = 1.0;
  config.arrival_window_s = 400.0;
  config.abandon_fraction = 1.0;
  config.mean_abandon_chunks = 10.0;
  // Zero-weight entries are never drawn: every arrival is the middle entry.
  config.policy_mix = {{"bba", 0.0}, {"rate_based", 1.0}, {"fugu:planner=vi", 0.0}};

  WorkloadGenerator gen(config, 9);
  ASSERT_EQ(gen.canonical_policy_specs().size(), 3u);
  EXPECT_EQ(gen.canonical_policy_specs()[1],
            abr::PolicyRegistry::instance().canonical_string("rate_based"));
  SessionArrival a;
  double limit_sum = 0.0;
  size_t count = 0;
  while (gen.next(&a)) {
    ASSERT_NE(a.chunk_limit, kNoLimit);
    ASSERT_GE(a.chunk_limit, 1u);
    ASSERT_EQ(a.policy_index, 1u);
    limit_sum += static_cast<double>(a.chunk_limit);
    ++count;
  }
  ASSERT_GT(count, 100u);
  EXPECT_NEAR(limit_sum / static_cast<double>(count), config.mean_abandon_chunks, 3.0);

  config.abandon_fraction = 0.0;
  WorkloadGenerator keeper(config, 9);
  while (keeper.next(&a)) ASSERT_EQ(a.chunk_limit, kNoLimit);
}

TEST(Workload, TraceIsIndependentOfArrivalDraws) {
  WorkloadConfig config;
  WorkloadGenerator fresh(config, 123);
  net::ThroughputTrace before = fresh.make_trace("t");
  SessionArrival a;
  while (fresh.next(&a)) {
  }
  net::ThroughputTrace after = fresh.make_trace("t");
  ASSERT_EQ(before.sample_count(), after.sample_count());
  for (size_t i = 0; i < before.sample_count(); ++i) {
    ASSERT_EQ(before.samples_kbps()[i], after.samples_kbps()[i]);
  }
  // A different seed reshapes the network.
  net::ThroughputTrace other = WorkloadGenerator(config, 124).make_trace("t");
  bool differs = other.sample_count() != before.sample_count();
  for (size_t i = 0; !differs && i < before.sample_count(); ++i) {
    differs = before.samples_kbps()[i] != other.samples_kbps()[i];
  }
  EXPECT_TRUE(differs);
}

TEST(Workload, RejectsNonsenseConfigs) {
  WorkloadConfig bad;
  bad.arrival_rate_per_s = 0.0;
  EXPECT_THROW(WorkloadGenerator(bad, 1), std::runtime_error);
  bad = WorkloadConfig();
  bad.policy_mix = {{"bba", 0.0}, {"rate_based", 0.0}};
  EXPECT_THROW(WorkloadGenerator(bad, 1), std::runtime_error);
  bad = WorkloadConfig();
  bad.policy_mix.clear();
  EXPECT_THROW(WorkloadGenerator(bad, 1), std::runtime_error);
  bad = WorkloadConfig();
  bad.policy_mix = {{"no-such-policy", 1.0}};
  EXPECT_THROW(WorkloadGenerator(bad, 1), std::runtime_error);
  bad = WorkloadConfig();
  bad.policy_mix = {{"bba:bogus_key=1", 1.0}};
  EXPECT_THROW(WorkloadGenerator(bad, 1), std::runtime_error);
  bad = WorkloadConfig();
  bad.diurnal_trough = 1.5;
  EXPECT_THROW(WorkloadGenerator(bad, 1), std::runtime_error);
  bad = WorkloadConfig();
  bad.trace_mean_kbps_max = bad.trace_mean_kbps_min / 2.0;
  EXPECT_THROW(WorkloadGenerator(bad, 1), std::runtime_error);
}

// ---- fleet ------------------------------------------------------------------

class FleetTest : public ::testing::Test {
 protected:
  FleetTest() {
    media::Encoder encoder;
    videos_.push_back(encoder.encode(
        media::SourceVideo::generate("FleetA", media::Genre::kSports, 60)));
    videos_.push_back(encoder.encode(
        media::SourceVideo::generate("FleetB", media::Genre::kNature, 80)));
    for (const auto& v : videos_) video_ptrs_.push_back(&v);
  }

  FleetConfig small_config() const {
    FleetConfig config;
    config.num_cells = 6;
    config.seed = 2024;
    config.workload.arrival_rate_per_s = 0.25;
    config.workload.arrival_window_s = 120.0;
    config.workload.abandon_fraction = 0.3;
    config.workload.mean_abandon_chunks = 8.0;
    return config;
  }

  std::vector<media::EncodedVideo> videos_;
  std::vector<const media::EncodedVideo*> video_ptrs_;
};

TEST_F(FleetTest, AggregatesAreConsistent) {
  FleetConfig config = small_config();
  core::ExperimentRunner runner(2);
  FleetAggregates agg = FleetSimulator(config).run(video_ptrs_, runner);

  EXPECT_EQ(agg.cells, config.num_cells);
  EXPECT_GT(agg.sessions, 20u);
  // One count per unique canonical spec in the default mix, summing to the
  // session total.
  EXPECT_EQ(agg.sessions_by_policy.size(), config.workload.policy_mix.size());
  size_t by_policy_sum = 0;
  for (size_t n : agg.sessions_by_policy) by_policy_sum += n;
  EXPECT_EQ(by_policy_sum, agg.sessions);
  EXPECT_GT(agg.abandoned, 0u);
  EXPECT_GE(agg.peak_concurrent, 1u);
  EXPECT_GT(agg.chunks, agg.sessions);  // nearly every session streams chunks
  EXPECT_LE(agg.session_qoe.count(), agg.sessions);
  EXPECT_EQ(agg.session_qoe.count(), agg.qoe_sketch.count());
  EXPECT_GT(agg.session_bitrate_kbps.mean(), 0.0);
  EXPECT_GE(agg.qoe_sketch.quantile(0.9), agg.qoe_sketch.quantile(0.1));
}

TEST_F(FleetTest, AggregatesBitIdenticalAcrossThreadsAndShards) {
  FleetConfig config = small_config();
  FleetSimulator fleet(config);

  core::ExperimentRunner serial(1);
  FleetAggregates reference = fleet.run(video_ptrs_, serial, 1);

  core::ExperimentRunner parallel(4);
  for (size_t shards : {1u, 2u, 3u, 6u, 99u}) {
    FleetAggregates agg = fleet.run(video_ptrs_, parallel, shards);
    // EXPECT_EQ on doubles: bit-identity, not tolerance, is the contract.
    EXPECT_EQ(agg.sessions, reference.sessions) << "shards=" << shards;
    EXPECT_EQ(agg.chunks, reference.chunks) << "shards=" << shards;
    EXPECT_EQ(agg.outages, reference.outages) << "shards=" << shards;
    EXPECT_EQ(agg.abandoned, reference.abandoned) << "shards=" << shards;
    EXPECT_EQ(agg.peak_concurrent, reference.peak_concurrent) << "shards=" << shards;
    EXPECT_EQ(agg.session_qoe.mean(), reference.session_qoe.mean()) << "shards=" << shards;
    EXPECT_EQ(agg.session_qoe.variance(), reference.session_qoe.variance())
        << "shards=" << shards;
    EXPECT_EQ(agg.session_bitrate_kbps.mean(), reference.session_bitrate_kbps.mean())
        << "shards=" << shards;
    EXPECT_EQ(agg.session_rebuffer_s.mean(), reference.session_rebuffer_s.mean())
        << "shards=" << shards;
    EXPECT_EQ(agg.startup_delay_s.mean(), reference.startup_delay_s.mean())
        << "shards=" << shards;
    for (double q : {0.5, 0.9, 0.99}) {
      EXPECT_EQ(agg.qoe_sketch.quantile(q), reference.qoe_sketch.quantile(q))
          << "shards=" << shards << " q=" << q;
    }
  }
}

// Per-session digest captured from either loop for the equivalence gate.
struct SessionDigest {
  size_t chunks = 0;
  bool outage = false;
  double dl_checksum_s = 0.0;  // sum of download times: a bit-level digest
  double bitrate_sum_kbps = 0.0;

  bool operator==(const SessionDigest& other) const {
    return chunks == other.chunks && outage == other.outage &&
           dl_checksum_s == other.dl_checksum_s && bitrate_sum_kbps == other.bitrate_sum_kbps;
  }
};

SessionDigest digest_records(const std::vector<ChunkRecord>& recs, bool outage) {
  SessionDigest d;
  d.chunks = recs.size();
  d.outage = outage;
  for (const ChunkRecord& r : recs) {
    d.dl_checksum_s += r.download_time_s;
    d.bitrate_sum_kbps += r.bitrate_kbps;
  }
  return d;
}

TEST_F(FleetTest, SingleCellMatchesSimulatorOverIdenticalArrivals) {
  // One cell, fixed link scale so the reference can rebuild the bottleneck.
  FleetConfig config;
  config.num_cells = 1;
  config.seed = 77;
  config.link_scale = 6.0;
  config.workload.arrival_rate_per_s = 0.3;
  config.workload.arrival_window_s = 100.0;
  config.workload.abandon_fraction = 0.4;
  config.workload.mean_abandon_chunks = 6.0;

  // Fleet run, capturing each finished session keyed by its start time
  // (continuous exponential gaps: unique with probability 1).
  std::map<double, SessionDigest> fleet_sessions;
  config.on_session_done = [&](size_t cell, const SessionArrival& arrival,
                               const SessionEngine& engine) {
    ASSERT_EQ(cell, 0u);
    fleet_sessions[arrival.start_s] =
        digest_records(engine.records(), engine.outcome() == SessionOutcome::kOutage);
  };
  core::ExperimentRunner runner(1);
  FleetAggregates agg = FleetSimulator(config).run(video_ptrs_, runner);
  ASSERT_EQ(agg.sessions, fleet_sessions.size());
  ASSERT_GT(agg.sessions, 10u);

  // Reference: regenerate the identical arrival list with the cell's seed
  // and drive it through the plain Simulator on the identical bottleneck.
  WorkloadConfig workload = config.workload;
  workload.num_videos = video_ptrs_.size();
  uint64_t cell_seed = core::ExperimentRunner::task_seed(config.seed, 0);
  WorkloadGenerator gen(workload, cell_seed);
  net::ThroughputTrace trace =
      gen.make_trace("fleet-cell-0").scaled(config.link_scale, "fleet-cell-0");

  std::vector<SessionArrival> arrivals;
  SessionArrival a;
  while (gen.next(&a)) arrivals.push_back(a);
  ASSERT_EQ(arrivals.size(), agg.sessions);

  // Reference policies come from the same registry specs the fleet pools —
  // fresh instances per session, so this also exercises the pooled-vs-fresh
  // equivalence of begin_session() resets.
  const std::vector<std::string>& mix_specs = gen.canonical_policy_specs();
  std::vector<std::unique_ptr<AbrPolicy>> policies;
  std::vector<SessionSpec> specs;
  for (const SessionArrival& arrival : arrivals) {
    policies.push_back(abr::make_policy(mix_specs[arrival.policy_index]));
    SessionSpec spec;
    spec.video = video_ptrs_[arrival.video_index];
    spec.policy = policies.back().get();
    spec.start_s = arrival.start_s;
    spec.chunk_limit = arrival.chunk_limit;
    specs.push_back(spec);
  }
  auto results = Simulator(config.player).run(specs, trace, LinkMode::kShared);

  ASSERT_EQ(results.size(), fleet_sessions.size());
  for (size_t i = 0; i < results.size(); ++i) {
    auto it = fleet_sessions.find(arrivals[i].start_s);
    ASSERT_NE(it, fleet_sessions.end()) << "session " << i;
    SessionDigest expected = digest_records(
        results[i].session.chunks(),
        results[i].session.outcome() == SessionOutcome::kOutage);
    EXPECT_TRUE(it->second == expected)
        << "session " << i << ": chunks " << it->second.chunks << "/" << expected.chunks
        << " dl " << it->second.dl_checksum_s << "/" << expected.dl_checksum_s;
  }
}

}  // namespace
}  // namespace sensei::sim
