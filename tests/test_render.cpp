#include "sim/render.h"

#include <gtest/gtest.h>

#include "media/dataset.h"

namespace sensei::sim {
namespace {

class RenderTest : public ::testing::Test {
 protected:
  media::SourceVideo source_ = media::Dataset::soccer1_clip();
  media::EncodedVideo video_ = media::Encoder().encode(source_);
};

TEST_F(RenderTest, PristineIsTopLevelNoStalls) {
  RenderedVideo p = RenderedVideo::pristine(video_);
  EXPECT_EQ(p.num_chunks(), video_.num_chunks());
  for (size_t i = 0; i < p.num_chunks(); ++i) {
    EXPECT_EQ(p.chunk(i).level, 4u);
    EXPECT_DOUBLE_EQ(p.chunk(i).rebuffer_s, 0.0);
    EXPECT_DOUBLE_EQ(p.chunk(i).bitrate_kbps, 2850);
  }
  EXPECT_DOUBLE_EQ(p.total_rebuffer_s(), 0.0);
  EXPECT_EQ(p.switch_count(), 0u);
  EXPECT_DOUBLE_EQ(p.startup_delay_s(), 0.0);
}

TEST_F(RenderTest, WithRebufferingAddsStallAtChunk) {
  RenderedVideo p = RenderedVideo::pristine(video_);
  RenderedVideo r = p.with_rebuffering(2, 1.5);
  EXPECT_DOUBLE_EQ(r.chunk(2).rebuffer_s, 1.5);
  EXPECT_DOUBLE_EQ(r.total_rebuffer_s(), 1.5);
  // Original is unchanged (value semantics).
  EXPECT_DOUBLE_EQ(p.chunk(2).rebuffer_s, 0.0);
  EXPECT_NE(r.name(), p.name());
}

TEST_F(RenderTest, WithBitrateDropChangesRange) {
  RenderedVideo p = RenderedVideo::pristine(video_);
  RenderedVideo r = p.with_bitrate_drop(1, 2, 0, video_);
  EXPECT_EQ(r.chunk(0).level, 4u);
  EXPECT_EQ(r.chunk(1).level, 0u);
  EXPECT_EQ(r.chunk(2).level, 0u);
  EXPECT_EQ(r.chunk(3).level, 4u);
  EXPECT_EQ(r.switch_count(), 2u);  // 4->0 and 0->4
  EXPECT_GT(r.total_quality_switch_magnitude(), 0.0);
  EXPECT_LT(r.mean_bitrate_kbps(), p.mean_bitrate_kbps());
}

TEST_F(RenderTest, BitrateDropClampsAtEnd) {
  RenderedVideo p = RenderedVideo::pristine(video_);
  RenderedVideo r = p.with_bitrate_drop(p.num_chunks() - 1, 5, 1, video_);
  EXPECT_EQ(r.chunk(p.num_chunks() - 1).level, 1u);
  EXPECT_EQ(r.switch_count(), 1u);
}

TEST_F(RenderTest, WithStartupDelay) {
  RenderedVideo r = RenderedVideo::pristine(video_).with_startup_delay(2.5);
  EXPECT_DOUBLE_EQ(r.startup_delay_s(), 2.5);
}

TEST_F(RenderTest, RebufferSeriesOnePerChunk) {
  auto series = rebuffer_series(video_, 1.0);
  ASSERT_EQ(series.size(), video_.num_chunks());
  for (size_t j = 0; j < series.size(); ++j) {
    EXPECT_DOUBLE_EQ(series[j].total_rebuffer_s(), 1.0);
    EXPECT_DOUBLE_EQ(series[j].chunk(j).rebuffer_s, 1.0);
  }
}

TEST_F(RenderTest, BitrateDropSeries) {
  auto series = bitrate_drop_series(video_, 0, 1);
  ASSERT_EQ(series.size(), video_.num_chunks());
  for (size_t j = 0; j < series.size(); ++j) {
    EXPECT_EQ(series[j].chunk(j).level, 0u);
    EXPECT_DOUBLE_EQ(series[j].total_rebuffer_s(), 0.0);
  }
}

TEST_F(RenderTest, PlaybackDurationAndMeanBitrate) {
  RenderedVideo p = RenderedVideo::pristine(video_);
  EXPECT_DOUBLE_EQ(p.playback_duration_s(), 24.0);  // 6 chunks x 4 s
  EXPECT_DOUBLE_EQ(p.mean_bitrate_kbps(), 2850.0);
}

TEST(Render, MismatchedContentThrows) {
  std::vector<RenderedChunk> chunks(3);
  std::vector<media::ChunkContent> content(2);
  EXPECT_THROW(RenderedVideo("x", 4.0, chunks, content), std::runtime_error);
}

}  // namespace
}  // namespace sensei::sim
