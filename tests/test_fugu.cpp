#include "abr/fugu.h"

#include <gtest/gtest.h>

#include "media/dataset.h"
#include "net/trace_gen.h"
#include "sim/player.h"

namespace sensei::abr {
namespace {

class FuguTest : public ::testing::Test {
 protected:
  media::EncodedVideo video_ = media::Encoder().encode(
      media::SourceVideo::generate("FuguTest", media::Genre::kSports, 120));
  sim::Player player_;
};

TEST_F(FuguTest, AdaptsToLinkSpeed) {
  FuguAbr fugu;
  auto fast = net::ThroughputTrace("fast", std::vector<double>(600, 6000.0));
  auto slow = net::ThroughputTrace("slow", std::vector<double>(600, 500.0));
  auto s_fast = player_.stream(video_, fast, fugu);
  auto s_slow = player_.stream(video_, slow, fugu);
  EXPECT_GT(s_fast.mean_bitrate_kbps(), 2000.0);
  EXPECT_LT(s_slow.mean_bitrate_kbps(), 900.0);
  EXPECT_LT(s_slow.total_rebuffer_s(), 5.0);  // stays sustainable
}

TEST_F(FuguTest, VanillaNeverSchedulesRebuffering) {
  FuguAbr fugu;
  auto trace = net::TraceGenerator::cellular("c", 1200, 600.0, 5);
  auto s = player_.stream(video_, trace, fugu);
  for (const auto& c : s.chunks()) EXPECT_DOUBLE_EQ(c.scheduled_rebuffer_s, 0.0);
}

TEST_F(FuguTest, WeightedVariantRespondsToWeights) {
  // Craft weights with a sharp high-sensitivity region; under a constrained
  // link the weighted controller must allocate relatively more bitrate to
  // the heavy chunks than the unweighted one.
  FuguConfig cfg;
  cfg.use_weights = true;
  FuguAbr sensei_fugu(cfg);
  FuguAbr fugu;

  std::vector<double> weights(video_.num_chunks(), 0.8);
  for (size_t i = 15; i < 21; ++i) weights[i] = 2.5;

  auto trace = net::ThroughputTrace("tight", std::vector<double>(600, 1100.0));
  auto s_plain = player_.stream(video_, trace, fugu);
  auto s_weighted = player_.stream(video_, trace, sensei_fugu, weights);

  double heavy_plain = 0.0, heavy_weighted = 0.0;
  for (size_t i = 15; i < 21; ++i) {
    heavy_plain += s_plain.chunks()[i].bitrate_kbps;
    heavy_weighted += s_weighted.chunks()[i].bitrate_kbps;
  }
  EXPECT_GE(heavy_weighted, heavy_plain);
}

TEST_F(FuguTest, RebufferOptionsOnlyFireWithClearAdvantage) {
  FuguConfig cfg;
  cfg.use_weights = true;
  cfg.rebuffer_options = {0.0, 1.0, 2.0};
  FuguAbr sensei_fugu(cfg);
  // Plenty of bandwidth: a deliberate stall can never be worth it.
  auto fast = net::ThroughputTrace("fast", std::vector<double>(600, 6000.0));
  std::vector<double> weights(video_.num_chunks(), 1.0);
  auto s = player_.stream(video_, fast, sensei_fugu, weights);
  double scheduled = 0.0;
  for (const auto& c : s.chunks()) scheduled += c.scheduled_rebuffer_s;
  EXPECT_DOUBLE_EQ(scheduled, 0.0);
}

TEST_F(FuguTest, HorizonOneIsGreedy) {
  FuguConfig cfg;
  cfg.horizon = 1;
  FuguAbr greedy(cfg);
  auto trace = net::TraceGenerator::broadband("b", 2000, 600.0, 6);
  auto s = player_.stream(video_, trace, greedy);
  EXPECT_EQ(s.chunks().size(), video_.num_chunks());
}

TEST_F(FuguTest, NameReflectsMode) {
  FuguConfig weighted;
  weighted.use_weights = true;
  EXPECT_STREQ(FuguAbr().name(), "Fugu");
  EXPECT_STREQ(FuguAbr(weighted).name(), "Sensei-Fugu");
}

TEST_F(FuguTest, DeterministicDecisions) {
  FuguAbr a, b;
  auto trace = net::TraceGenerator::cellular("c", 1500, 600.0, 7);
  auto sa = player_.stream(video_, trace, a);
  auto sb = player_.stream(video_, trace, b);
  for (size_t i = 0; i < sa.chunks().size(); ++i) {
    EXPECT_EQ(sa.chunks()[i].level, sb.chunks()[i].level);
  }
}

// Parameterized sweep: Fugu completes sessions without pathological stalls
// across the whole evaluation trace set.
class FuguTraceSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(FuguTraceSweep, ReasonableStallBehaviour) {
  auto video = media::Encoder().encode(
      media::SourceVideo::generate("FuguSweep", media::Genre::kGaming, 120));
  auto traces = net::TraceGenerator::test_set(400.0);
  FuguAbr fugu;
  auto s = sim::Player().stream(video, traces[GetParam()], fugu);
  // Total stall below 15% of playback duration on every evaluation trace.
  EXPECT_LT(s.total_rebuffer_s(), 0.15 * video.source().duration_s());
}

INSTANTIATE_TEST_SUITE_P(Traces, FuguTraceSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8, 9));

}  // namespace
}  // namespace sensei::abr
