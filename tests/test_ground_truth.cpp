#include "crowd/ground_truth.h"

#include <gtest/gtest.h>

#include "media/dataset.h"
#include "util/stats.h"

namespace sensei::crowd {
namespace {

class GroundTruthTest : public ::testing::Test {
 protected:
  media::EncodedVideo clip_ = media::Encoder().encode(media::Dataset::soccer1_clip());
  GroundTruthQoE oracle_;
};

TEST_F(GroundTruthTest, PristineScoresHigh) {
  double q = oracle_.score(sim::RenderedVideo::pristine(clip_));
  EXPECT_GT(q, 0.75);
  EXPECT_LE(q, 1.0);
}

TEST_F(GroundTruthTest, ScoresAreInUnitInterval) {
  auto base = sim::RenderedVideo::pristine(clip_);
  for (size_t c = 0; c < clip_.num_chunks(); ++c) {
    double q = oracle_.score(base.with_rebuffering(c, 6.0));
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
  }
}

// The Figure 1 phenomenon: rebuffering during the goal (chunk 3, key moment)
// hurts much more than the same stall during the replay (chunk 5).
TEST_F(GroundTruthTest, KeyMomentStallHurtsMost) {
  auto base = sim::RenderedVideo::pristine(clip_);
  double at_goal = oracle_.score(base.with_rebuffering(3, 1.0));
  double at_replay = oracle_.score(base.with_rebuffering(5, 1.0));
  double at_normal = oracle_.score(base.with_rebuffering(1, 1.0));
  EXPECT_LT(at_goal, at_normal);
  EXPECT_LT(at_goal, at_replay);
  // The paper reports ~40%+ max-min gaps; require a substantial one.
  EXPECT_GT((at_replay - at_goal) / at_goal, 0.25);
}

TEST_F(GroundTruthTest, LongerStallsHurtMore) {
  auto base = sim::RenderedVideo::pristine(clip_);
  double s1 = oracle_.score(base.with_rebuffering(3, 1.0));
  double s4 = oracle_.score(base.with_rebuffering(3, 4.0));
  EXPECT_LT(s4, s1);
}

TEST_F(GroundTruthTest, StartupDelayHasMildPenalty) {
  auto base = sim::RenderedVideo::pristine(clip_);
  double q0 = oracle_.score(base);
  double q5 = oracle_.score(base.with_startup_delay(5.0));
  EXPECT_LT(q5, q0);
  EXPECT_GT(q5, q0 - 0.2);  // much milder than a mid-stream stall
}

// §2.3's "quality sensitivity is inherent to content": the QoE ranking over
// incident positions must agree across incident types (Figures 4 and 5).
TEST_F(GroundTruthTest, IncidentTypeAgnosticRanking) {
  auto base = sim::RenderedVideo::pristine(clip_);
  std::vector<double> q_rebuf1, q_rebuf4, q_drop;
  for (size_t c = 0; c < clip_.num_chunks(); ++c) {
    q_rebuf1.push_back(oracle_.score(base.with_rebuffering(c, 1.0)));
    q_rebuf4.push_back(oracle_.score(base.with_rebuffering(c, 4.0)));
    q_drop.push_back(oracle_.score(base.with_bitrate_drop(c, 1, 0, clip_)));
  }
  EXPECT_GT(util::spearman(q_rebuf1, q_rebuf4), 0.9);
  EXPECT_GT(util::spearman(q_rebuf1, q_drop), 0.7);
}

TEST_F(GroundTruthTest, ComponentsBracketScore) {
  auto degraded = sim::RenderedVideo::pristine(clip_).with_rebuffering(3, 2.0);
  double m = oracle_.weighted_mean(degraded);
  double w = oracle_.worst_memory(degraded);
  double q = oracle_.score(degraded);
  EXPECT_LE(q, std::max(m, w) + 1e-9);
  EXPECT_GE(q, std::min(m, w) - 1e-9);
  EXPECT_LT(w, m);  // the worst memory is worse than the average
}

TEST_F(GroundTruthTest, WorstMemoryDiscountsByAttention) {
  // Same per-chunk damage at a low-sensitivity chunk leaves a milder memory.
  auto base = sim::RenderedVideo::pristine(clip_);
  double w_key = oracle_.worst_memory(base.with_rebuffering(3, 2.0));
  double w_replay = oracle_.worst_memory(base.with_rebuffering(5, 2.0));
  EXPECT_LT(w_key, w_replay);
}

TEST_F(GroundTruthTest, MeanWeightParameterBlends) {
  GroundTruthParams mean_only;
  mean_only.mean_weight = 1.0;
  GroundTruthQoE oracle_mean(mean_only);
  auto degraded = sim::RenderedVideo::pristine(clip_).with_rebuffering(3, 2.0);
  EXPECT_NEAR(oracle_mean.score(degraded), oracle_mean.weighted_mean(degraded), 1e-9);
}

TEST_F(GroundTruthTest, EmptyVideoScoresZero) {
  sim::RenderedVideo empty;
  EXPECT_DOUBLE_EQ(oracle_.score(empty), 0.0);
}

}  // namespace
}  // namespace sensei::crowd
