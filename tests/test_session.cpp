#include "sim/session.h"

#include <gtest/gtest.h>

#include "media/dataset.h"

namespace sensei::sim {
namespace {

SessionResult make_session(const media::EncodedVideo& video) {
  std::vector<ChunkRecord> records;
  for (size_t i = 0; i < 4; ++i) {
    ChunkRecord r;
    r.index = i;
    r.level = i % 2;  // 0,1,0,1 -> 3 switches
    const auto& rep = video.rep(i, r.level);
    r.bitrate_kbps = rep.bitrate_kbps;
    r.size_bytes = rep.size_bytes;
    r.visual_quality = rep.visual_quality;
    r.rebuffer_s = i == 2 ? 2.0 : 0.0;
    records.push_back(r);
  }
  return SessionResult("vid", "trace", 4.0, records, 1.5);
}

class SessionTest : public ::testing::Test {
 protected:
  media::EncodedVideo video_ =
      media::Encoder().encode(media::Dataset::soccer1_clip());
  SessionResult session_ = make_session(video_);
};

TEST_F(SessionTest, SummaryMetrics) {
  EXPECT_DOUBLE_EQ(session_.total_rebuffer_s(), 2.0);
  EXPECT_DOUBLE_EQ(session_.rebuffer_ratio(), 2.0 / (16.0 + 2.0));
  EXPECT_EQ(session_.switch_count(), 3u);
  EXPECT_DOUBLE_EQ(session_.startup_delay_s(), 1.5);
  EXPECT_DOUBLE_EQ(session_.mean_bitrate_kbps(), (300 + 750 + 300 + 750) / 4.0);
  EXPECT_GT(session_.total_bytes(), 0.0);
  EXPECT_GT(session_.mean_visual_quality(), 0.0);
}

TEST_F(SessionTest, ToRenderedPreservesPerChunkData) {
  RenderedVideo r = session_.to_rendered(video_);
  ASSERT_EQ(r.num_chunks(), 4u);
  EXPECT_DOUBLE_EQ(r.startup_delay_s(), 1.5);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(r.chunk(i).level, session_.chunks()[i].level);
    EXPECT_DOUBLE_EQ(r.chunk(i).rebuffer_s, session_.chunks()[i].rebuffer_s);
    EXPECT_DOUBLE_EQ(r.chunk(i).visual_quality, session_.chunks()[i].visual_quality);
    // Content metadata is carried over for the oracle/QoE models.
    EXPECT_DOUBLE_EQ(r.content(i).sensitivity, video_.source().chunk(i).sensitivity);
  }
}

TEST_F(SessionTest, EmptySessionIsSafe) {
  SessionResult empty;
  EXPECT_DOUBLE_EQ(empty.total_rebuffer_s(), 0.0);
  EXPECT_DOUBLE_EQ(empty.rebuffer_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean_bitrate_kbps(), 0.0);
  EXPECT_EQ(empty.switch_count(), 0u);
}

}  // namespace
}  // namespace sensei::sim
