#include "crowd/weights.h"

#include <gtest/gtest.h>

#include "crowd/ground_truth.h"
#include "media/dataset.h"
#include "util/stats.h"

namespace sensei::crowd {
namespace {

class WeightsTest : public ::testing::Test {
 protected:
  media::EncodedVideo clip_ = media::Encoder().encode(media::Dataset::soccer1_clip());
  GroundTruthQoE oracle_;
  sim::RenderedVideo reference_ = sim::RenderedVideo::pristine(clip_);
};

TEST_F(WeightsTest, NormalizeMeanOne) {
  std::vector<double> w = {2.0, 4.0, 6.0};
  normalize_mean_one(w);
  EXPECT_NEAR(util::mean(w), 1.0, 1e-12);
  EXPECT_NEAR(w[2] / w[0], 3.0, 1e-12);

  std::vector<double> zeros = {0.0, 0.0};
  normalize_mean_one(zeros);
  EXPECT_DOUBLE_EQ(zeros[0], 1.0);

  std::vector<double> empty;
  normalize_mean_one(empty);  // no crash
}

TEST_F(WeightsTest, RecoverySensitivityOrderingFromNoiselessMos) {
  // Noiseless MOS straight from the oracle: inference must recover the true
  // sensitivity ordering of the clip.
  auto series = sim::rebuffer_series(clip_, 1.0);
  std::vector<double> mos;
  for (const auto& v : series) mos.push_back(oracle_.score(v));
  auto w = infer_weights(series, mos, reference_, oracle_.score(reference_),
                         clip_.num_chunks());
  ASSERT_EQ(w.size(), clip_.num_chunks());
  EXPECT_NEAR(util::mean(w), 1.0, 1e-9);
  auto s = clip_.source().true_sensitivity();
  EXPECT_GT(util::spearman(w, s), 0.85);
  // The goal chunk carries the largest weight.
  EXPECT_EQ(std::max_element(w.begin(), w.end()) - w.begin(), 3);
}

TEST_F(WeightsTest, MixedIncidentTypesStillRecover) {
  auto series = sim::rebuffer_series(clip_, 1.0);
  auto drops = sim::bitrate_drop_series(clip_, 0, 1);
  series.insert(series.end(), drops.begin(), drops.end());
  std::vector<double> mos;
  for (const auto& v : series) mos.push_back(oracle_.score(v));
  auto w = infer_weights(series, mos, reference_, oracle_.score(reference_),
                         clip_.num_chunks());
  EXPECT_GT(util::spearman(w, clip_.source().true_sensitivity()), 0.8);
}

TEST_F(WeightsTest, UntouchedChunksGetNeutralFill) {
  // Only chunks 0 and 1 receive incidents; others must get the fill value.
  auto base = sim::RenderedVideo::pristine(clip_);
  std::vector<sim::RenderedVideo> videos = {base.with_rebuffering(0, 1.0),
                                            base.with_rebuffering(1, 1.0)};
  std::vector<double> mos = {oracle_.score(videos[0]), oracle_.score(videos[1])};
  auto w = infer_weights(videos, mos, reference_, oracle_.score(reference_),
                         clip_.num_chunks());
  // Chunks 3..5 were untouched; they share one fill value.
  EXPECT_DOUBLE_EQ(w[3], w[4]);
  EXPECT_DOUBLE_EQ(w[4], w[5]);
}

TEST_F(WeightsTest, AllWeightsNonNegative) {
  auto series = sim::rebuffer_series(clip_, 1.0);
  std::vector<double> mos;
  // Adversarial noise: some MOS above the reference.
  for (size_t j = 0; j < series.size(); ++j) {
    mos.push_back(oracle_.score(series[j]) + (j % 2 ? 0.3 : -0.3));
  }
  auto w = infer_weights(series, mos, reference_, oracle_.score(reference_),
                         clip_.num_chunks());
  for (double x : w) EXPECT_GE(x, 0.0);
}

TEST_F(WeightsTest, EmptyInputsGiveUnitWeights) {
  auto w = infer_weights({}, {}, reference_, 1.0, 6);
  ASSERT_EQ(w.size(), 6u);
  for (double x : w) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST_F(WeightsTest, MismatchedInputsThrow) {
  auto series = sim::rebuffer_series(clip_, 1.0);
  std::vector<double> mos(series.size() - 1, 0.5);
  EXPECT_THROW(infer_weights(series, mos, reference_, 1.0, clip_.num_chunks()),
               std::runtime_error);
}

TEST_F(WeightsTest, ClipRenderingsConstrainOnlyCoveredChunks) {
  // Renderings of a 3-chunk clip must not constrain chunks 3..5.
  auto clip_video = clip_.source().clip(0, 3, "head");
  auto clip_encoded = media::Encoder().encode(clip_video);
  auto series = sim::rebuffer_series(clip_encoded, 1.0);
  std::vector<double> mos;
  for (const auto& v : series) mos.push_back(oracle_.score(v));
  auto w = infer_weights(series, mos, reference_, oracle_.score(reference_),
                         clip_.num_chunks());
  ASSERT_EQ(w.size(), 6u);
  EXPECT_DOUBLE_EQ(w[3], w[4]);  // untouched tail shares the fill value
}

}  // namespace
}  // namespace sensei::crowd
