#include "net/trace_gen.h"

#include <gtest/gtest.h>

namespace sensei::net {
namespace {

TEST(TraceGen, CellularMeanNearTarget) {
  auto t = TraceGenerator::cellular("c", 1500, 2000.0, 3);
  EXPECT_NEAR(t.mean_kbps(), 1500, 1500 * 0.25);
  EXPECT_EQ(t.sample_count(), 2000u);
}

TEST(TraceGen, BroadbandMeanNearTarget) {
  auto t = TraceGenerator::broadband("b", 3000, 2000.0, 4);
  EXPECT_NEAR(t.mean_kbps(), 3000, 3000 * 0.15);
}

TEST(TraceGen, CellularIsBurstierThanBroadband) {
  auto c = TraceGenerator::cellular("c", 2000, 3000.0, 5);
  auto b = TraceGenerator::broadband("b", 2000, 3000.0, 5);
  double cv_c = c.stddev_kbps() / c.mean_kbps();
  double cv_b = b.stddev_kbps() / b.mean_kbps();
  EXPECT_GT(cv_c, cv_b);
}

TEST(TraceGen, SamplesArePositive) {
  auto c = TraceGenerator::cellular("c", 400, 1500.0, 6);
  for (double s : c.samples_kbps()) EXPECT_GT(s, 0.0);
  auto b = TraceGenerator::broadband("b", 400, 1500.0, 6);
  for (double s : b.samples_kbps()) EXPECT_GT(s, 0.0);
}

TEST(TraceGen, DeterministicInSeed) {
  auto a = TraceGenerator::cellular("a", 1000, 500.0, 42);
  auto b = TraceGenerator::cellular("b", 1000, 500.0, 42);
  EXPECT_EQ(a.samples_kbps(), b.samples_kbps());
  auto c = TraceGenerator::cellular("c", 1000, 500.0, 43);
  EXPECT_NE(a.samples_kbps(), c.samples_kbps());
}

TEST(TraceGen, TestSetMatchesPaperSetup) {
  auto traces = TraceGenerator::test_set();
  ASSERT_EQ(traces.size(), 10u);  // §7.1: 10 traces
  for (size_t i = 1; i < traces.size(); ++i) {
    // Ordered by increasing mean throughput (Figure 14's x-axis).
    EXPECT_LT(traces[i - 1].mean_kbps(), traces[i].mean_kbps());
  }
  for (const auto& t : traces) {
    // §7.1 restricts means to 0.2..6 Mbps.
    EXPECT_GE(t.mean_kbps(), 200.0);
    EXPECT_LE(t.mean_kbps(), 6000.0);
  }
}

TEST(TraceGen, MotivationSetHasSevenTraces) {
  auto traces = TraceGenerator::motivation_set();
  EXPECT_EQ(traces.size(), 7u);  // §2.2: 7 throughput traces
}

}  // namespace
}  // namespace sensei::net
