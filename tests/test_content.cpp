#include "media/content.h"

#include <gtest/gtest.h>

#include <map>

#include "util/stats.h"

namespace sensei::media {
namespace {

TEST(Content, DeterministicPerName) {
  auto a = generate_content("VideoX", Genre::kSports, 40);
  auto b = generate_content("VideoX", Genre::kSports, 40);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_DOUBLE_EQ(a[i].sensitivity, b[i].sensitivity);
    EXPECT_DOUBLE_EQ(a[i].motion, b[i].motion);
  }
}

TEST(Content, DifferentNamesDiffer) {
  auto a = generate_content("VideoA", Genre::kSports, 60);
  auto b = generate_content("VideoB", Genre::kSports, 60);
  int same = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind == b[i].kind && a[i].sensitivity == b[i].sensitivity) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(Content, RequestedChunkCount) {
  for (size_t n : {1u, 5u, 55u, 149u}) {
    EXPECT_EQ(generate_content("V", Genre::kNature, n).size(), n);
  }
}

TEST(Content, SensitivityWithinKindRange) {
  auto chunks = generate_content("RangeCheck", Genre::kGaming, 200);
  for (const auto& c : chunks) {
    SensitivityRange r = sensitivity_range(c.kind);
    EXPECT_GE(c.sensitivity, r.lo - 1e-9);
    EXPECT_LE(c.sensitivity, r.hi + 1e-9);
  }
}

TEST(Content, FeatureBoundsHold) {
  auto chunks = generate_content("Bounds", Genre::kAnimation, 300);
  for (const auto& c : chunks) {
    EXPECT_GT(c.motion, 0.0);
    EXPECT_LE(c.motion, 1.0);
    EXPECT_GT(c.complexity, 0.0);
    EXPECT_LE(c.complexity, 1.0);
    EXPECT_GT(c.objectness, 0.0);
    EXPECT_LE(c.objectness, 1.0);
    EXPECT_GT(c.sensitivity, 0.0);
    EXPECT_LE(c.sensitivity, 1.0);
  }
}

TEST(Content, KeyMomentsAreMostSensitive) {
  EXPECT_GT(sensitivity_range(SceneKind::kKeyMoment).lo,
            sensitivity_range(SceneKind::kNormal).hi);
  EXPECT_GT(sensitivity_range(SceneKind::kInfoMoment).lo,
            sensitivity_range(SceneKind::kReplay).hi);
  EXPECT_GT(sensitivity_range(SceneKind::kReplay).hi,
            sensitivity_range(SceneKind::kTransitional).hi - 1e-9);
}

// The paper's central observation (§2.3): "dynamicness" is a poor proxy for
// sensitivity. Replays are high-motion yet low-sensitivity; info moments
// (scoreboards) are low-motion yet high-sensitivity.
TEST(Content, MotionSensitivityMismatchExists) {
  auto chunks = generate_content("Mismatch", Genre::kSports, 400);
  double replay_motion = 0.0, info_motion = 0.0;
  double replay_sens = 0.0, info_sens = 0.0;
  int replays = 0, infos = 0;
  for (const auto& c : chunks) {
    if (c.kind == SceneKind::kReplay) {
      replay_motion += c.motion;
      replay_sens += c.sensitivity;
      ++replays;
    } else if (c.kind == SceneKind::kInfoMoment) {
      info_motion += c.motion;
      info_sens += c.sensitivity;
      ++infos;
    }
  }
  ASSERT_GT(replays, 5);
  ASSERT_GT(infos, 5);
  // Replays: more motion, less sensitivity than info moments.
  EXPECT_GT(replay_motion / replays, info_motion / infos);
  EXPECT_LT(replay_sens / replays, info_sens / infos);
}

TEST(Content, NatureIsMostlyTransitional) {
  auto chunks = generate_content("Scenic", Genre::kNature, 400);
  std::map<SceneKind, int> counts;
  for (const auto& c : chunks) ++counts[c.kind];
  EXPECT_GT(counts[SceneKind::kTransitional], counts[SceneKind::kKeyMoment]);
}

TEST(Content, SportsContainKeyMoments) {
  auto chunks = generate_content("Match", Genre::kSports, 400);
  int keys = 0;
  for (const auto& c : chunks) keys += c.kind == SceneKind::kKeyMoment ? 1 : 0;
  EXPECT_GT(keys, 10);
}

TEST(Content, ToStringCoverage) {
  EXPECT_EQ(to_string(Genre::kSports), "Sports");
  EXPECT_EQ(to_string(Genre::kAnimation), "Animation");
  EXPECT_EQ(to_string(SceneKind::kKeyMoment), "key-moment");
  EXPECT_EQ(to_string(SceneKind::kReplay), "replay");
}

// Sensitivity dispersion exists in every genre — the premise of the paper.
class ContentGenreSweep : public ::testing::TestWithParam<Genre> {};

TEST_P(ContentGenreSweep, SensitivityVariesWithinVideo) {
  auto chunks = generate_content("Sweep", GetParam(), 100);
  std::vector<double> s;
  for (const auto& c : chunks) s.push_back(c.sensitivity);
  EXPECT_GT(util::stddev(s), 0.08);
  EXPECT_GT(util::max_of(s) - util::min_of(s), 0.3);
}

INSTANTIATE_TEST_SUITE_P(Genres, ContentGenreSweep,
                         ::testing::Values(Genre::kSports, Genre::kGaming, Genre::kNature,
                                           Genre::kAnimation));

}  // namespace
}  // namespace sensei::media
