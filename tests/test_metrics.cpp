#include "qoe/metrics.h"

#include <gtest/gtest.h>

#include "media/dataset.h"
#include "qoe/ksqi.h"

namespace sensei::qoe {
namespace {

TEST(Metrics, EvaluateModelComputesAllFields) {
  auto video = media::Encoder().encode(media::Dataset::soccer1_clip());
  auto base = sim::RenderedVideo::pristine(video);
  std::vector<sim::RenderedVideo> videos = {base, base.with_rebuffering(3, 2.0),
                                            base.with_rebuffering(1, 4.0)};
  std::vector<double> truth = {0.9, 0.5, 0.4};
  KsqiModel model;
  ModelAccuracy acc = evaluate_model(model, videos, truth);
  EXPECT_EQ(acc.model_name, "KSQI");
  EXPECT_GT(acc.plcc, 0.5);  // KSQI ranks these correctly
  EXPECT_GT(acc.srcc, 0.4);
  EXPECT_GE(acc.mean_relative_error, 0.0);
  EXPECT_GE(acc.rmse, 0.0);
}

TEST(Metrics, DiscordantPairsAllAgree) {
  std::vector<AbrRankingCell> cells = {{{0.5, 0.7, 0.9}, {0.1, 0.2, 0.3}}};
  EXPECT_DOUBLE_EQ(discordant_pair_fraction(cells), 0.0);
}

TEST(Metrics, DiscordantPairsAllDisagree) {
  std::vector<AbrRankingCell> cells = {{{0.5, 0.7}, {0.7, 0.5}}};
  EXPECT_DOUBLE_EQ(discordant_pair_fraction(cells), 1.0);
}

TEST(Metrics, DiscordantPairsMixedCells) {
  std::vector<AbrRankingCell> cells = {
      {{0.5, 0.7}, {0.1, 0.2}},  // concordant
      {{0.5, 0.7}, {0.2, 0.1}},  // discordant
  };
  EXPECT_DOUBLE_EQ(discordant_pair_fraction(cells), 0.5);
}

TEST(Metrics, DiscordantPairsSkipTiesAndBadCells) {
  std::vector<AbrRankingCell> cells = {
      {{0.5, 0.5}, {0.1, 0.2}},       // tie in truth -> skipped
      {{0.5, 0.7}, {0.3, 0.3}},       // tie in prediction -> skipped
      {{0.5, 0.7, 0.9}, {0.1, 0.2}},  // size mismatch -> skipped
  };
  EXPECT_DOUBLE_EQ(discordant_pair_fraction(cells), 0.0);
}

TEST(Metrics, EmptyCellsAreSafe) {
  EXPECT_DOUBLE_EQ(discordant_pair_fraction({}), 0.0);
}

}  // namespace
}  // namespace sensei::qoe
