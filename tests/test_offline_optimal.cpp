#include "abr/offline_optimal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "abr/bba.h"
#include "media/dataset.h"
#include "net/trace_gen.h"
#include "qoe/chunk_quality.h"
#include "sim/player.h"

namespace sensei::abr {
namespace {

double weighted_objective(const sim::SessionResult& session,
                          const std::vector<double>& weights) {
  const auto& chunks = session.chunks();
  double total = 0.0;
  for (size_t i = 0; i < chunks.size(); ++i) {
    double prev = i > 0 ? chunks[i - 1].visual_quality : chunks[i].visual_quality;
    double q = qoe::chunk_quality(chunks[i].visual_quality, chunks[i].rebuffer_s, prev);
    total += (i < weights.size() ? weights[i] : 1.0) * q;
  }
  return total;
}

class OfflineTest : public ::testing::Test {
 protected:
  media::EncodedVideo video_ = media::Encoder().encode(
      media::SourceVideo::generate("OffTest", media::Genre::kSports, 100));
  net::ThroughputTrace trace_ = net::TraceGenerator::broadband("b", 1500, 700.0, 3);
  std::vector<double> ones_ = std::vector<double>(video_.num_chunks(), 1.0);
};

TEST_F(OfflineTest, ProducesCompletePlan) {
  auto s = plan_offline(video_, trace_, ones_);
  EXPECT_EQ(s.chunks().size(), video_.num_chunks());
  for (const auto& c : s.chunks()) {
    EXPECT_LT(c.level, 5u);
    EXPECT_GE(c.rebuffer_s, 0.0);
  }
}

TEST_F(OfflineTest, BeatsOnlineHeuristicOnItsOwnObjective) {
  // With full trace knowledge the planner must score at least as well as an
  // online policy on the objective it optimizes.
  auto planned = plan_offline(video_, trace_, ones_);
  BbaAbr bba;
  auto online = sim::Player().stream(video_, trace_, bba);
  EXPECT_GE(weighted_objective(planned, ones_), weighted_objective(online, ones_) - 0.5);
}

TEST_F(OfflineTest, RespectsBandwidthReality) {
  // On a slow link even the optimum cannot stream top bitrate stall-free;
  // the planner should respond by picking lower levels, not stalling a lot.
  auto slow = net::ThroughputTrace("slow", std::vector<double>(800, 450.0));
  auto s = plan_offline(video_, slow, ones_);
  EXPECT_LT(s.mean_bitrate_kbps(), 900.0);
  EXPECT_LT(s.total_rebuffer_s(), 0.2 * video_.source().duration_s());
}

TEST_F(OfflineTest, UnawareVariantTakesNoScheduledStalls) {
  OfflineConfig cfg;
  cfg.rebuffer_options = {0.0};
  auto s = plan_offline(video_, trace_, ones_, cfg);
  for (const auto& c : s.chunks()) EXPECT_DOUBLE_EQ(c.scheduled_rebuffer_s, 0.0);
}

TEST_F(OfflineTest, AwareBeatsUnawareOnWeightedObjective) {
  std::vector<double> weights = video_.source().true_sensitivity();
  OfflineConfig unaware_cfg;
  unaware_cfg.rebuffer_options = {0.0};
  OfflineConfig aware_cfg;
  aware_cfg.rebuffer_options = {0.0, 1.0, 2.0};
  // Constrain bandwidth so the weights matter.
  auto tight = trace_.scaled(0.5);
  auto unaware = plan_offline(video_, tight, ones_, unaware_cfg);
  auto aware = plan_offline(video_, tight, weights, aware_cfg);
  EXPECT_GE(weighted_objective(aware, weights),
            weighted_objective(unaware, weights) - 0.5);
}

TEST_F(OfflineTest, RebufferOptionsMustStartWithZero) {
  OfflineConfig bad;
  bad.rebuffer_options = {1.0, 2.0};
  EXPECT_THROW(plan_offline(video_, trace_, ones_, bad), std::runtime_error);
  bad.rebuffer_options = {};
  EXPECT_THROW(plan_offline(video_, trace_, ones_, bad), std::runtime_error);
}

TEST_F(OfflineTest, FirstChunkIsStartupNotStall) {
  auto s = plan_offline(video_, trace_, ones_);
  EXPECT_GT(s.startup_delay_s(), 0.0);
  EXPECT_DOUBLE_EQ(s.chunks()[0].rebuffer_s, 0.0);
}

TEST_F(OfflineTest, DeadLinkTruncatesWithOutage) {
  // A finite trace that ends mid-video: the replay must truncate with a
  // typed outage (like the player) instead of accumulating infinite wall
  // clocks through the quantized DP.
  net::ThroughputTrace cliff =
      net::ThroughputTrace("cliff", std::vector<double>(40, 3000.0), 1.0).as_finite();
  auto s = plan_offline(video_, cliff, ones_);
  EXPECT_EQ(s.outcome(), sim::SessionOutcome::kOutage);
  EXPECT_LT(s.chunks().size(), video_.num_chunks());
  for (const auto& c : s.chunks()) {
    EXPECT_TRUE(std::isfinite(c.download_time_s));
    EXPECT_TRUE(std::isfinite(c.rebuffer_s));
  }
}

TEST_F(OfflineTest, MoreBandwidthNeverHurtsMuch) {
  // Quantization allows small wobbles, but doubling bandwidth should never
  // reduce the achieved objective materially.
  auto s1 = plan_offline(video_, trace_.scaled(0.5), ones_);
  auto s2 = plan_offline(video_, trace_, ones_);
  EXPECT_GE(weighted_objective(s2, ones_), weighted_objective(s1, ones_) - 0.5);
}

}  // namespace
}  // namespace sensei::abr
