#include "util/matrix.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sensei::util {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), -2.0);
}

TEST(Matrix, Identity) {
  Matrix id = Matrix::identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id.at(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, Transpose) {
  Matrix m(2, 3);
  int v = 0;
  for (size_t r = 0; r < 2; ++r)
    for (size_t c = 0; c < 3; ++c) m.at(r, c) = ++v;
  Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (size_t r = 0; r < 2; ++r)
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(t.at(c, r), m.at(r, c));
}

TEST(Matrix, MultiplyMatrices) {
  Matrix a(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 3; a.at(1, 1) = 4;
  Matrix b(2, 2);
  b.at(0, 0) = 5; b.at(0, 1) = 6; b.at(1, 0) = 7; b.at(1, 1) = 8;
  Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

TEST(Matrix, MultiplyVector) {
  Matrix a(2, 3);
  for (size_t c = 0; c < 3; ++c) {
    a.at(0, c) = static_cast<double>(c + 1);
    a.at(1, c) = 1.0;
  }
  auto y = a.multiply(std::vector<double>{1, 1, 1});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(Matrix, MultiplyDimsMismatchThrows) {
  Matrix a(2, 3), b(2, 2);
  EXPECT_THROW(a.multiply(b), std::runtime_error);
  EXPECT_THROW(a.multiply(std::vector<double>{1, 2}), std::runtime_error);
}

TEST(Matrix, SolveKnownSystem) {
  Matrix a(2, 2);
  a.at(0, 0) = 2; a.at(0, 1) = 1; a.at(1, 0) = 1; a.at(1, 1) = 3;
  auto x = Matrix::solve(a, {5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 3.0, 1e-10);
}

TEST(Matrix, SolveRequiresPivoting) {
  // Leading zero forces a row swap.
  Matrix a(2, 2);
  a.at(0, 0) = 0; a.at(0, 1) = 1; a.at(1, 0) = 1; a.at(1, 1) = 0;
  auto x = Matrix::solve(a, {2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Matrix, SolveSingularThrows) {
  Matrix a(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 2; a.at(1, 1) = 4;
  EXPECT_THROW(Matrix::solve(a, {1, 2}), std::runtime_error);
}

TEST(Matrix, SolveLargerSystemRoundTrip) {
  // Build a well-conditioned system and verify A x = b after solving.
  const size_t n = 6;
  Matrix a(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) a.at(r, c) = 1.0 / (1.0 + static_cast<double>(r + c));
    a.at(r, r) += 2.0;
  }
  std::vector<double> b(n);
  for (size_t i = 0; i < n; ++i) b[i] = static_cast<double>(i) - 2.0;
  auto x = Matrix::solve(a, b);
  auto back = a.multiply(x);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], b[i], 1e-9);
}

}  // namespace
}  // namespace sensei::util
