#include "ml/lstm.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sensei::ml {
namespace {

TEST(Lstm, PredictIsDeterministic) {
  util::Rng rng(1);
  LstmRegressor lstm(3, 6, rng);
  std::vector<std::vector<double>> seq = {{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}};
  EXPECT_DOUBLE_EQ(lstm.predict(seq), lstm.predict(seq));
}

TEST(Lstm, EmptySequenceReturnsBias) {
  util::Rng rng(2);
  LstmRegressor lstm(3, 6, rng);
  EXPECT_DOUBLE_EQ(lstm.predict({}), 0.0);  // head bias initialized to 0
}

TEST(Lstm, WrongFeatureDimThrows) {
  util::Rng rng(3);
  LstmRegressor lstm(3, 4, rng);
  EXPECT_THROW(lstm.predict({{1.0, 2.0}}), std::runtime_error);
}

TEST(Lstm, TrainStepReducesLossOnSinglePair) {
  util::Rng rng(4);
  LstmRegressor lstm(2, 8, rng);
  std::vector<std::vector<double>> seq = {{0.5, -0.2}, {0.1, 0.9}, {-0.3, 0.4}};
  double first = lstm.train_step(seq, 0.7, 0.02);
  double last = first;
  for (int i = 0; i < 200; ++i) last = lstm.train_step(seq, 0.7, 0.02);
  EXPECT_LT(last, first * 0.05);
  EXPECT_NEAR(lstm.predict(seq), 0.7, 0.05);
}

TEST(Lstm, LearnsSequenceSumTask) {
  // Target = mean of first feature over the sequence: requires memory.
  util::Rng rng(5);
  LstmRegressor lstm(1, 10, rng);
  util::Rng data_rng(6);
  std::vector<std::vector<std::vector<double>>> sequences;
  std::vector<double> targets;
  for (int i = 0; i < 60; ++i) {
    size_t len = 3 + static_cast<size_t>(data_rng.uniform_int(0, 4));
    std::vector<std::vector<double>> seq;
    double total = 0.0;
    for (size_t t = 0; t < len; ++t) {
      double v = data_rng.uniform(0, 1);
      seq.push_back({v});
      total += v;
    }
    sequences.push_back(seq);
    targets.push_back(total / static_cast<double>(len));
  }
  double final_loss = lstm.fit(sequences, targets, 150, 0.01, data_rng);
  EXPECT_LT(final_loss, 0.01);
}

TEST(Lstm, MismatchedDatasetThrows) {
  util::Rng rng(7);
  LstmRegressor lstm(1, 4, rng);
  std::vector<std::vector<std::vector<double>>> seqs(2);
  std::vector<double> targets(3);
  EXPECT_THROW(lstm.fit(seqs, targets, 1, 0.01, rng), std::runtime_error);
}

TEST(Lstm, DistinguishesOrderings) {
  // Train to output 1 for ascending and 0 for descending sequences; an
  // order-insensitive model cannot separate them.
  util::Rng rng(8);
  LstmRegressor lstm(1, 10, rng);
  std::vector<std::vector<std::vector<double>>> seqs;
  std::vector<double> targets;
  for (int i = 0; i < 20; ++i) {
    double base = 0.1 + 0.02 * i;
    seqs.push_back({{base}, {base + 0.3}, {base + 0.6}});
    targets.push_back(1.0);
    seqs.push_back({{base + 0.6}, {base + 0.3}, {base}});
    targets.push_back(0.0);
  }
  lstm.fit(seqs, targets, 250, 0.015, rng);
  EXPECT_GT(lstm.predict({{0.2}, {0.5}, {0.8}}), 0.7);
  EXPECT_LT(lstm.predict({{0.8}, {0.5}, {0.2}}), 0.3);
}

}  // namespace
}  // namespace sensei::ml
