// Kernel-layer gates (util/kernels.h):
//  - scalar-vs-SIMD bitwise identity for every dispatched row kernel, on
//    randomized inputs salted with the FP edge cases (NaN, +/-0, denormals,
//    infinities) and lengths that exercise every lane-count tail;
//  - kernels cross-checked bit-for-bit against the scalar helpers they
//    batch (qoe::chunk_quality, stall_penalty, abr::quantize_kbps,
//    abr::buffer_bucket, WhittleIndexAbr::level_index, the planners' buffer
//    dynamics, net::triangular_scenarios);
//  - end-to-end: a shared-bottleneck multi-session run and a multi-cell
//    fleet run produce byte-identical results under the scalar and SIMD
//    backends — the backend choice is invisible to every consumer.
// When no SIMD backend is compiled/supported the identity tests skip; the
// cross-checks still run against the scalar reference.
#include "util/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "abr/fugu.h"
#include "abr/planner.h"
#include "abr/whittle.h"
#include "core/runner.h"
#include "media/dataset.h"
#include "media/encoder.h"
#include "net/predictor.h"
#include "net/trace_gen.h"
#include "qoe/chunk_quality.h"
#include "sim/fleet.h"
#include "sim/simulator.h"

namespace sensei::util {
namespace {

constexpr size_t kMaxLen = 19;  // covers 1..19: every SSE2/AVX2 tail shape
constexpr int kTrials = 16;

bool bits_equal(const double* a, const double* b, size_t n) {
  return std::memcmp(a, b, n * sizeof(double)) == 0;
}

// Random doubles over several magnitudes, salted with the edge values the
// bit-identity contract explicitly covers.
class ValueGen {
 public:
  explicit ValueGen(uint64_t seed) : rng_(seed) {}

  double next() {
    switch (rng_() % 10) {
      case 0: {
        static const double edges[] = {
            0.0,
            -0.0,
            std::numeric_limits<double>::quiet_NaN(),
            -std::numeric_limits<double>::quiet_NaN(),
            std::numeric_limits<double>::denorm_min(),
            -std::numeric_limits<double>::denorm_min(),
            std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::min(),
            -std::numeric_limits<double>::min(),
        };
        return edges[rng_() % (sizeof(edges) / sizeof(edges[0]))];
      }
      case 1:
        return uniform(-1e-6, 1e-6);
      case 2:
        return uniform(-1e9, 1e9);
      default:
        return uniform(-60.0, 60.0);
    }
  }

  // Strictly finite positive draw (for parameters a NaN would make vacuous).
  double positive(double lo, double hi) { return uniform(lo, hi); }

  // Like next() but never NaN: scalar *parameters* stay NaN-free because two
  // NaNs meeting in a commutable op (x * scale, q + add) select a payload by
  // operand order, which IEEE leaves open and compilers freely commute. Row
  // data still carries NaNs — one-NaN propagation is order-independent.
  double param() {
    switch (rng_() % 10) {
      case 0: {
        static const double edges[] = {
            0.0,
            -0.0,
            std::numeric_limits<double>::denorm_min(),
            -std::numeric_limits<double>::denorm_min(),
            std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::min(),
            -std::numeric_limits<double>::min(),
        };
        return edges[rng_() % (sizeof(edges) / sizeof(edges[0]))];
      }
      case 1:
        return uniform(-1e-6, 1e-6);
      case 2:
        return uniform(-1e9, 1e9);
      default:
        return uniform(-60.0, 60.0);
    }
  }

  void fill(std::vector<double>& v, size_t n) {
    v.resize(n);
    for (size_t i = 0; i < n; ++i) v[i] = next();
  }

 private:
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
  }
  std::mt19937_64 rng_;
};

// Runs `fn` once per backend and asserts the outputs are bitwise equal.
// Restores the auto backend on scope exit so test order cannot leak state.
class KernelIdentity : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kernel_simd_supported()) GTEST_SKIP() << "no SIMD backend on this host";
  }
  void TearDown() override { set_kernel_backend(KernelBackend::kAuto); }
};

TEST(KernelBackend, DispatchNamesAndSetters) {
  EXPECT_TRUE(set_kernel_backend("scalar"));
  EXPECT_STREQ(kernel_backend_name(), "scalar");
  EXPECT_EQ(requested_kernel_backend(), KernelBackend::kScalar);
  EXPECT_FALSE(set_kernel_backend("bogus"));
  EXPECT_FALSE(set_kernel_backend(nullptr));
  EXPECT_EQ(requested_kernel_backend(), KernelBackend::kScalar);  // unchanged
  EXPECT_TRUE(set_kernel_backend("simd"));
  if (kernel_simd_supported()) {
    const std::string name = kernel_backend_name();
    EXPECT_TRUE(name == "avx2" || name == "sse2") << name;
  } else {
    EXPECT_STREQ(kernel_backend_name(), "scalar");
  }
  EXPECT_TRUE(set_kernel_backend("auto"));
  EXPECT_EQ(requested_kernel_backend(), KernelBackend::kAuto);
}

TEST_F(KernelIdentity, DivAddRow) {
  ValueGen gen(11);
  std::vector<double> den, a, b;
  for (size_t n = 1; n <= kMaxLen; ++n) {
    for (int t = 0; t < kTrials; ++t) {
      gen.fill(den, n);
      const double num = gen.param(), floor = gen.param(), add = gen.param();
      a.assign(n, 0.0);
      b.assign(n, 0.0);
      set_kernel_backend(KernelBackend::kScalar);
      kernels::div_add_row(num, den.data(), n, floor, add, a.data());
      set_kernel_backend(KernelBackend::kSimd);
      kernels::div_add_row(num, den.data(), n, floor, add, b.data());
      ASSERT_TRUE(bits_equal(a.data(), b.data(), n)) << "n=" << n << " t=" << t;
    }
  }
}

TEST_F(KernelIdentity, MulDivAndDivScalarRows) {
  ValueGen gen(12);
  std::vector<double> x, a, b;
  for (size_t n = 1; n <= kMaxLen; ++n) {
    for (int t = 0; t < kTrials; ++t) {
      gen.fill(x, n);
      const double scale = gen.param(), den = gen.param();
      a.assign(n, 0.0);
      b.assign(n, 0.0);
      set_kernel_backend(KernelBackend::kScalar);
      kernels::mul_div_row(x.data(), n, scale, den, a.data());
      set_kernel_backend(KernelBackend::kSimd);
      kernels::mul_div_row(x.data(), n, scale, den, b.data());
      ASSERT_TRUE(bits_equal(a.data(), b.data(), n)) << "mul_div n=" << n;
      set_kernel_backend(KernelBackend::kScalar);
      kernels::div_scalar_row(x.data(), n, den, a.data());
      set_kernel_backend(KernelBackend::kSimd);
      kernels::div_scalar_row(x.data(), n, den, b.data());
      ASSERT_TRUE(bits_equal(a.data(), b.data(), n)) << "div_scalar n=" << n;
    }
  }
}

TEST_F(KernelIdentity, StepBufferStallRow) {
  ValueGen gen(13);
  std::vector<double> dl, b1, s1, b2, s2;
  for (size_t n = 1; n <= kMaxLen; ++n) {
    for (int t = 0; t < kTrials; ++t) {
      gen.fill(dl, n);
      const double buf = gen.param(), extra = gen.param(), tau = gen.param(),
                   cap = gen.param();
      b1.assign(n, 0.0);
      s1.assign(n, 0.0);
      b2.assign(n, 0.0);
      s2.assign(n, 0.0);
      set_kernel_backend(KernelBackend::kScalar);
      kernels::step_buffer_stall_row(buf, dl.data(), n, extra, tau, cap, b1.data(),
                                     s1.data());
      set_kernel_backend(KernelBackend::kSimd);
      kernels::step_buffer_stall_row(buf, dl.data(), n, extra, tau, cap, b2.data(),
                                     s2.data());
      ASSERT_TRUE(bits_equal(b1.data(), b2.data(), n)) << "buf n=" << n << " t=" << t;
      ASSERT_TRUE(bits_equal(s1.data(), s2.data(), n)) << "stall n=" << n << " t=" << t;
    }
  }
}

TEST_F(KernelIdentity, ChunkQualityRows) {
  ValueGen gen(14);
  std::vector<double> vq, stall, prev, a, b;
  for (size_t n = 1; n <= kMaxLen; ++n) {
    for (int t = 0; t < kTrials; ++t) {
      gen.fill(vq, n);
      gen.fill(stall, n);
      gen.fill(prev, n);
      const double br = gen.param(), sat = gen.param(), bsw = gen.param(),
                   floor = gen.param();
      const double cvq = gen.param(), cprev = gen.param(), qn = gen.param();
      a.assign(n, 0.0);
      b.assign(n, 0.0);

      set_kernel_backend(KernelBackend::kScalar);
      kernels::chunk_quality_row(vq.data(), stall.data(), prev.data(), n, br, sat, bsw,
                                 floor, a.data());
      set_kernel_backend(KernelBackend::kSimd);
      kernels::chunk_quality_row(vq.data(), stall.data(), prev.data(), n, br, sat, bsw,
                                 floor, b.data());
      ASSERT_TRUE(bits_equal(a.data(), b.data(), n)) << "general n=" << n << " t=" << t;

      set_kernel_backend(KernelBackend::kScalar);
      kernels::chunk_quality_stall_row(cvq, cprev, qn, stall.data(), n, br, sat, bsw,
                                       floor, a.data());
      set_kernel_backend(KernelBackend::kSimd);
      kernels::chunk_quality_stall_row(cvq, cprev, qn, stall.data(), n, br, sat, bsw,
                                       floor, b.data());
      ASSERT_TRUE(bits_equal(a.data(), b.data(), n)) << "stall n=" << n << " t=" << t;

      set_kernel_backend(KernelBackend::kScalar);
      kernels::chunk_quality_nostall_row(vq.data(), n, cprev, bsw, floor, a.data());
      set_kernel_backend(KernelBackend::kSimd);
      kernels::chunk_quality_nostall_row(vq.data(), n, cprev, bsw, floor, b.data());
      ASSERT_TRUE(bits_equal(a.data(), b.data(), n)) << "nostall n=" << n << " t=" << t;

      set_kernel_backend(KernelBackend::kScalar);
      kernels::chunk_quality_nostall_prev_row(cvq, prev.data(), n, bsw, floor, a.data());
      set_kernel_backend(KernelBackend::kSimd);
      kernels::chunk_quality_nostall_prev_row(cvq, prev.data(), n, bsw, floor, b.data());
      ASSERT_TRUE(bits_equal(a.data(), b.data(), n))
          << "nostall_prev n=" << n << " t=" << t;
    }
  }
}

TEST_F(KernelIdentity, WhittleIndexRow) {
  ValueGen gen(15);
  std::vector<double> bytes, vq, prev, a, b;
  for (size_t n = 1; n <= kMaxLen; ++n) {
    for (int t = 0; t < kTrials; ++t) {
      gen.fill(bytes, n);
      gen.fill(vq, n);
      gen.fill(prev, n);
      const double den = gen.param(), buf = gen.param(), hr = gen.param(),
                   drain = gen.param(), br = gen.param(), sat = gen.param(),
                   bsw = gen.param();
      a.assign(n, 0.0);
      b.assign(n, 0.0);
      set_kernel_backend(KernelBackend::kScalar);
      kernels::whittle_index_row(bytes.data(), vq.data(), prev.data(), n, den, buf, hr,
                                 drain, br, sat, bsw, a.data());
      set_kernel_backend(KernelBackend::kSimd);
      kernels::whittle_index_row(bytes.data(), vq.data(), prev.data(), n, den, buf, hr,
                                 drain, br, sat, bsw, b.data());
      ASSERT_TRUE(bits_equal(a.data(), b.data(), n)) << "n=" << n << " t=" << t;
    }
  }
}

TEST_F(KernelIdentity, TriangularFan) {
  ValueGen gen(16);
  std::vector<double> k1, p1, k2, p2;
  for (size_t n = 0; n <= kMaxLen; ++n) {
    for (int t = 0; t < kTrials; ++t) {
      const double center = gen.param(), cv = gen.param(), floor = gen.param();
      k1.assign(n + 1, 0.0);
      p1.assign(n + 1, 0.0);
      k2.assign(n + 1, 0.0);
      p2.assign(n + 1, 0.0);
      set_kernel_backend(KernelBackend::kScalar);
      kernels::triangular_fan(n, center, cv, floor, k1.data(), p1.data());
      set_kernel_backend(KernelBackend::kSimd);
      kernels::triangular_fan(n, center, cv, floor, k2.data(), p2.data());
      ASSERT_TRUE(bits_equal(k1.data(), k2.data(), n)) << "kbps n=" << n << " t=" << t;
      ASSERT_TRUE(bits_equal(p1.data(), p2.data(), n)) << "prob n=" << n << " t=" << t;
    }
  }
}

// ---- cross-checks against the scalar helpers the kernels batch -------------

// Each cross-check runs under every available backend: the kernel must
// reproduce the reference expression bit-for-bit no matter who executes it.
void for_each_backend(const std::function<void(const char*)>& body) {
  set_kernel_backend(KernelBackend::kScalar);
  body("scalar");
  if (kernel_simd_supported()) {
    set_kernel_backend(KernelBackend::kSimd);
    body("simd");
  }
  set_kernel_backend(KernelBackend::kAuto);
}

TEST(KernelCrossCheck, ChunkQualityMatchesQoeHelper) {
  qoe::ChunkQualityParams params;  // the production defaults
  ValueGen gen(21);
  std::vector<double> vq(kMaxLen), stall(kMaxLen), prev(kMaxLen), out(kMaxLen);
  for (size_t i = 0; i < kMaxLen; ++i) {
    vq[i] = gen.positive(0.0, 5.0);
    stall[i] = i % 3 == 0 ? 0.0 : gen.positive(-2.0, 10.0);
    prev[i] = gen.positive(0.0, 5.0);
  }
  for_each_backend([&](const char* backend) {
    kernels::chunk_quality_row(vq.data(), stall.data(), prev.data(), kMaxLen,
                               params.beta_rebuf, params.rebuf_saturation,
                               params.beta_switch, params.floor, out.data());
    for (size_t i = 0; i < kMaxLen; ++i) {
      const double ref = qoe::chunk_quality(vq[i], stall[i], prev[i], params);
      EXPECT_EQ(out[i], ref) << backend << " i=" << i;
    }
    // The fixed-(vq, prev) variant against the same helper, per stall row.
    kernels::chunk_quality_stall_row(
        vq[0], prev[0], qoe::chunk_quality(vq[0], 0.0, prev[0], params), stall.data(),
        kMaxLen, params.beta_rebuf, params.rebuf_saturation, params.beta_switch,
        params.floor, out.data());
    for (size_t i = 0; i < kMaxLen; ++i) {
      const double expect = stall[i] > 0.0
                                ? qoe::chunk_quality(vq[0], stall[i], prev[0], params)
                                : qoe::chunk_quality(vq[0], 0.0, prev[0], params);
      EXPECT_EQ(out[i], expect) << backend << " i=" << i;
    }
  });
}

TEST(KernelCrossCheck, StepBufferMatchesPlannerDynamics) {
  constexpr double kMaxBufferS = 30.0;  // the planners' cap
  ValueGen gen(22);
  std::vector<double> dl(kMaxLen), buf(kMaxLen), stall(kMaxLen);
  for (size_t i = 0; i < kMaxLen; ++i) dl[i] = gen.positive(0.0, 40.0);
  for_each_backend([&](const char* backend) {
    for (double extra : {0.0, 1.5}) {
      const double b0 = 7.25, tau = 2.0;
      kernels::step_buffer_stall_row(b0, dl.data(), kMaxLen, extra, tau, kMaxBufferS,
                                     buf.data(), stall.data());
      for (size_t i = 0; i < kMaxLen; ++i) {
        // The ViPlanner recursion's exact statements.
        double b = b0, s = 0.0;
        if (dl[i] > b) {
          s = dl[i] - b;
          b = 0.0;
        } else {
          b -= dl[i];
        }
        if (extra > 0.0) {
          b += extra;
          s += extra;
        }
        b = std::min(b + tau, kMaxBufferS);
        EXPECT_EQ(buf[i], b) << backend << " i=" << i << " extra=" << extra;
        EXPECT_EQ(stall[i], s) << backend << " i=" << i << " extra=" << extra;
      }
    }
  });
}

TEST(KernelCrossCheck, QuantizeAndBucketMatchPlannerHelpers) {
  ValueGen gen(23);
  std::vector<double> kbps(kMaxLen), buf(kMaxLen), qout(kMaxLen);
  std::vector<uint64_t> bout(kMaxLen);
  for (size_t i = 0; i < kMaxLen; ++i) {
    kbps[i] = gen.positive(-10.0, 20000.0);
    buf[i] = gen.positive(-5.0, 35.0);
  }
  buf[0] = -0.0;  // must land in bucket 0 with +0.0
  buf[1] = 0.0;
  for_each_backend([&](const char* backend) {
    kernels::quantize_kbps_row(kbps.data(), kMaxLen, abr::kViKbpsBinsPerOctave,
                               qout.data());
    kernels::buffer_bucket_row(buf.data(), kMaxLen, abr::kDefaultViBufferQuantumS,
                               bout.data());
    for (size_t i = 0; i < kMaxLen; ++i) {
      EXPECT_EQ(qout[i], abr::quantize_kbps(kbps[i])) << backend << " i=" << i;
      EXPECT_EQ(bout[i], abr::buffer_bucket(buf[i], abr::kDefaultViBufferQuantumS))
          << backend << " i=" << i;
    }
  });
}

TEST(KernelCrossCheck, WhittleRowMatchesLevelIndex) {
  media::EncodedVideo video = media::Encoder().encode(
      media::SourceVideo::generate("KernelWhittle", media::Genre::kSports, 30));
  abr::WhittleIndexAbr wh;
  const abr::WhittleConfig& cfg = wh.config();
  sim::AbrObservation obs;
  obs.video = &video;
  obs.num_chunks = video.num_chunks();
  obs.next_chunk = 3;
  obs.last_level = 1;
  obs.buffer_s = 6.5;
  const double budget_kbps = 2400.0;
  const size_t L = video.ladder().level_count();
  std::vector<double> bytes(L), vq(L), prev(L), idx(L);
  for (size_t l = 0; l < L; ++l) {
    bytes[l] = static_cast<double>(video.size_bytes(obs.next_chunk, l));
    vq[l] = video.visual_quality(obs.next_chunk, l);
    prev[l] = video.visual_quality(obs.next_chunk - 1, obs.last_level);
  }
  for_each_backend([&](const char* backend) {
    kernels::whittle_index_row(bytes.data(), vq.data(), prev.data(), L,
                               budget_kbps * 1000.0, obs.buffer_s, cfg.headroom,
                               cfg.drain_penalty, cfg.chunk.beta_rebuf,
                               cfg.chunk.rebuf_saturation, cfg.chunk.beta_switch,
                               idx.data());
    for (size_t l = 0; l < L; ++l) {
      EXPECT_EQ(idx[l], wh.level_index(obs, l, obs.buffer_s, budget_kbps))
          << backend << " level=" << l;
    }
  });
}

TEST(KernelCrossCheck, TriangularFanMatchesScenarioFan) {
  for_each_backend([&](const char* backend) {
    for (size_t count : {1u, 2u, 5u, 16u}) {
      const auto fan = net::triangular_scenarios(count, 3100.0, 0.4);
      ASSERT_EQ(fan.size(), count);
      std::vector<double> kbps(count), prob(count);
      kernels::triangular_fan(count, 3100.0, 0.4, 30.0, kbps.data(), prob.data());
      const double total = kernels::sum_row(prob.data(), count);
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(fan[i].kbps, kbps[i]) << backend << " count=" << count << " i=" << i;
        EXPECT_EQ(fan[i].probability, prob[i] / total)
            << backend << " count=" << count << " i=" << i;
      }
    }
  });
}

TEST(KernelCrossCheck, OrderPinnedPrimitives) {
  ValueGen gen(24);
  std::vector<double> x(kMaxLen), w(kMaxLen);
  for (size_t i = 0; i < kMaxLen; ++i) {
    x[i] = gen.positive(-10.0, 10.0);
    w[i] = gen.positive(0.0, 1.0);
  }
  x[4] = x[9] = x[12];  // force ties for the argmax tie-break check
  double sum = 0.0, wsum = 0.0;
  size_t best = 0;
  for (size_t i = 0; i < kMaxLen; ++i) {
    sum += x[i];
    wsum += w[i] * x[i];
    if (x[i] > x[best]) best = i;
  }
  for_each_backend([&](const char* backend) {
    EXPECT_EQ(kernels::sum_row(x.data(), kMaxLen), sum) << backend;
    EXPECT_EQ(kernels::weighted_sum_row(w.data(), x.data(), kMaxLen), wsum) << backend;
    EXPECT_EQ(kernels::argmax_strict_row(x.data(), kMaxLen), best) << backend;
    EXPECT_EQ(kernels::argmax_strict_row(x.data(), 0), 0u) << backend;
  });
}

// ---- end-to-end backend invariance ------------------------------------------

class KernelEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kernel_simd_supported()) GTEST_SKIP() << "no SIMD backend on this host";
  }
  void TearDown() override { set_kernel_backend(KernelBackend::kAuto); }
};

// A fig14-style shared-bottleneck grid (vi-Fugu sessions contending on one
// link) must emit bit-identical per-chunk records under both backends.
TEST_F(KernelEndToEnd, MultiSessionRunBackendInvariant) {
  media::EncodedVideo video_a = media::Encoder().encode(
      media::SourceVideo::generate("KernelsA", media::Genre::kSports, 90));
  media::EncodedVideo video_b = media::Encoder().encode(
      media::SourceVideo::generate("KernelsB", media::Genre::kNature, 120));
  net::ThroughputTrace bottleneck =
      net::TraceGenerator::cellular("kernels-e2e", 1700, 400.0, 5).scaled(10.0, "k-x10");

  auto run = [&](KernelBackend backend) {
    set_kernel_backend(backend);
    std::vector<std::unique_ptr<sim::AbrPolicy>> policies;
    std::vector<sim::AbrPolicy*> policy_ptrs;
    for (size_t k = 0; k < 10; ++k) {
      abr::FuguConfig fc;
      fc.planner = k % 2 == 0 ? abr::PlannerKind::kVi : abr::PlannerKind::kDp;
      policies.push_back(std::make_unique<abr::FuguAbr>(fc));
      policy_ptrs.push_back(policies.back().get());
    }
    std::vector<const media::EncodedVideo*> videos = {&video_a, &video_b};
    auto specs = sim::StaggeredSpecs{videos, policy_ptrs, {}, 10, 4.0}.build();
    return sim::Simulator().run(specs, bottleneck, sim::LinkMode::kShared);
  };

  auto scalar = run(KernelBackend::kScalar);
  auto simd = run(KernelBackend::kSimd);
  ASSERT_EQ(scalar.size(), simd.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    const auto& a = scalar[i].session;
    const auto& b = simd[i].session;
    ASSERT_EQ(a.chunks().size(), b.chunks().size()) << "session " << i;
    for (size_t j = 0; j < a.chunks().size(); ++j) {
      SCOPED_TRACE("session " + std::to_string(i) + " chunk " + std::to_string(j));
      EXPECT_EQ(a.chunks()[j].level, b.chunks()[j].level);
      EXPECT_EQ(a.chunks()[j].rebuffer_s, b.chunks()[j].rebuffer_s);
      EXPECT_EQ(a.chunks()[j].download_time_s, b.chunks()[j].download_time_s);
      EXPECT_EQ(a.chunks()[j].buffer_after_s, b.chunks()[j].buffer_after_s);
      EXPECT_EQ(a.chunks()[j].visual_quality, b.chunks()[j].visual_quality);
    }
  }
}

// Fleet aggregates (the resilience/fleet determinism rows feed off these)
// must be bit-identical across backends at 1 and 4 runner threads.
TEST_F(KernelEndToEnd, FleetRunBackendInvariant) {
  std::vector<media::EncodedVideo> videos;
  media::Encoder encoder;
  videos.push_back(
      encoder.encode(media::SourceVideo::generate("KFleetA", media::Genre::kSports, 60)));
  videos.push_back(
      encoder.encode(media::SourceVideo::generate("KFleetB", media::Genre::kNature, 80)));
  std::vector<const media::EncodedVideo*> video_ptrs;
  for (const auto& v : videos) video_ptrs.push_back(&v);

  sim::FleetConfig config;
  config.num_cells = 4;
  config.seed = 515;
  config.workload.arrival_rate_per_s = 0.25;
  config.workload.arrival_window_s = 90.0;
  config.workload.abandon_fraction = 0.3;
  config.workload.mean_abandon_chunks = 8.0;

  auto run = [&](KernelBackend backend, size_t threads) {
    set_kernel_backend(backend);
    core::ExperimentRunner runner(threads);
    return sim::FleetSimulator(config).run(video_ptrs, runner);
  };

  const sim::FleetAggregates ref = run(KernelBackend::kScalar, 1);
  ASSERT_GT(ref.sessions, 10u);
  for (size_t threads : {1u, 4u}) {
    const sim::FleetAggregates agg = run(KernelBackend::kSimd, threads);
    EXPECT_EQ(agg.sessions, ref.sessions) << "threads=" << threads;
    EXPECT_EQ(agg.chunks, ref.chunks) << "threads=" << threads;
    EXPECT_EQ(agg.outages, ref.outages) << "threads=" << threads;
    EXPECT_EQ(agg.session_qoe.mean(), ref.session_qoe.mean()) << "threads=" << threads;
    EXPECT_EQ(agg.session_qoe.variance(), ref.session_qoe.variance())
        << "threads=" << threads;
    EXPECT_EQ(agg.session_bitrate_kbps.mean(), ref.session_bitrate_kbps.mean())
        << "threads=" << threads;
    EXPECT_EQ(agg.session_rebuffer_s.mean(), ref.session_rebuffer_s.mean())
        << "threads=" << threads;
    for (double q : {0.5, 0.9, 0.99}) {
      EXPECT_EQ(agg.qoe_sketch.quantile(q), ref.qoe_sketch.quantile(q))
          << "threads=" << threads << " q=" << q;
    }
  }
}

// The ScenarioPredictor memo (PR 10) must be invisible: scenarios_into on an
// unchanged window replays the exact fan, and a new observation refreshes it.
TEST(KernelCrossCheck, ScenarioPredictorCacheIsTransparent) {
  net::ScenarioPredictor cached(8), plain(8);
  std::vector<net::ThroughputScenario> a, b, c;
  std::mt19937_64 rng(77);
  for (int i = 0; i < 40; ++i) {
    const double kbps = 500.0 + static_cast<double>(rng() % 4000);
    cached.observe(kbps);
    plain.observe(kbps);
    cached.scenarios_into(a);
    cached.scenarios_into(b);  // unchanged window: served from the memo
    plain.scenarios_into(c);
    ASSERT_EQ(a.size(), 3u);
    for (size_t s = 0; s < 3; ++s) {
      EXPECT_EQ(a[s].kbps, b[s].kbps) << i;
      EXPECT_EQ(a[s].probability, b[s].probability) << i;
      EXPECT_EQ(a[s].kbps, c[s].kbps) << i;
      EXPECT_EQ(a[s].probability, c[s].probability) << i;
    }
  }
}

}  // namespace
}  // namespace sensei::util
