#include "cv/cv_models.h"

#include <gtest/gtest.h>

#include "media/dataset.h"
#include "util/stats.h"

namespace sensei::cv {
namespace {

class CvModelsTest : public ::testing::Test {
 protected:
  media::SourceVideo video_ =
      media::SourceVideo::generate("CvTest", media::Genre::kSports, 400);
};

TEST_F(CvModelsTest, ScoresAreNormalized) {
  for (const auto& result : run_all(video_)) {
    ASSERT_EQ(result.scores.size(), video_.num_chunks()) << result.model;
    EXPECT_NEAR(util::min_of(result.scores), 0.0, 1e-9) << result.model;
    EXPECT_NEAR(util::max_of(result.scores), 1.0, 1e-9) << result.model;
  }
}

TEST_F(CvModelsTest, RunAllReturnsThreeModels) {
  auto results = run_all(video_);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].model, "AMVM");
  EXPECT_EQ(results[1].model, "DSN");
  EXPECT_EQ(results[2].model, "video2gif");
}

TEST_F(CvModelsTest, Deterministic) {
  EXPECT_EQ(amvm_scores(video_), amvm_scores(video_));
  EXPECT_EQ(dsn_scores(video_), dsn_scores(video_));
  EXPECT_EQ(video2gif_scores(video_), video2gif_scores(video_));
}

TEST_F(CvModelsTest, AmvmFollowsMotion) {
  auto scores = amvm_scores(video_);
  std::vector<double> motion;
  for (const auto& c : video_.chunks()) motion.push_back(c.motion);
  EXPECT_GT(util::pearson(scores, motion), 0.8);
}

// Appendix D's finding: CV importance does not track true quality
// sensitivity — replays score high (dynamic) while actually insensitive.
TEST_F(CvModelsTest, CvScoresMisalignWithTrueSensitivity) {
  auto s_true = video_.true_sensitivity();
  for (const auto& result : run_all(video_)) {
    double corr = util::spearman(result.scores, s_true);
    EXPECT_LT(corr, 0.55) << result.model << " tracks sensitivity too well";
  }
}

TEST_F(CvModelsTest, ReplayChunksScoreHighOnAmvmButAreInsensitive) {
  auto scores = amvm_scores(video_);
  double replay_score = 0.0, info_score = 0.0;
  double replay_sens = 0.0, info_sens = 0.0;
  int replays = 0, infos = 0;
  for (size_t i = 0; i < video_.num_chunks(); ++i) {
    if (video_.chunk(i).kind == media::SceneKind::kReplay) {
      replay_score += scores[i];
      replay_sens += video_.chunk(i).sensitivity;
      ++replays;
    } else if (video_.chunk(i).kind == media::SceneKind::kInfoMoment) {
      info_score += scores[i];
      info_sens += video_.chunk(i).sensitivity;
      ++infos;
    }
  }
  ASSERT_GT(replays, 0);
  ASSERT_GT(infos, 0);
  // AMVM ranks replays above scoreboards; the viewer does the opposite.
  EXPECT_GT(replay_score / replays, info_score / infos);
  EXPECT_LT(replay_sens / replays, info_sens / infos);
}

TEST_F(CvModelsTest, FigureTwentyVideosWork) {
  for (const char* name : {"Lava", "Tank", "Animal", "Soccer2"}) {
    auto video = media::Dataset::by_name(name);
    auto results = run_all(video);
    EXPECT_EQ(results.size(), 3u);
    for (const auto& r : results) EXPECT_EQ(r.scores.size(), video.num_chunks());
  }
}

}  // namespace
}  // namespace sensei::cv
