// Gates for the multi-session simulator stack: net::SharedLink capacity
// accounting, the sim::Simulator event loop, and — the load-bearing one —
// the Simulator-vs-Player bit-identity gate: a single session driven
// through the event loop on a dedicated link must reproduce Player::stream
// exactly (every ChunkRecord field, every ChunkTrajectory field, outcome,
// startup delay) across policies, looping/finite/outage traces, and
// ExperimentRunner thread counts. That is what licenses reading
// multi-session results as "the same player, under contention".
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "abr/bba.h"
#include "abr/fugu.h"
#include "bench_util.h"
#include "core/experiments.h"
#include "core/runner.h"
#include "media/dataset.h"
#include "net/shared_link.h"
#include "net/trace_gen.h"
#include "sim/player.h"
#include "sim/session_engine.h"
#include "util/rng.h"

namespace sensei::sim {
namespace {

class ScriptedPolicy : public AbrPolicy {
 public:
  explicit ScriptedPolicy(std::vector<AbrDecision> script) : script_(std::move(script)) {}
  const char* name() const override { return "scripted"; }
  AbrDecision decide(const AbrObservation& obs) override {
    return script_[obs.next_chunk % script_.size()];
  }

 private:
  std::vector<AbrDecision> script_;
};

// Full-fidelity comparison: chunk records, trajectory, outcome, startup.
void expect_sessions_identical(const SessionResult& a, const SessionResult& b) {
  ASSERT_EQ(a.chunks().size(), b.chunks().size());
  EXPECT_EQ(a.startup_delay_s(), b.startup_delay_s());
  EXPECT_EQ(a.outcome(), b.outcome());
  EXPECT_EQ(a.video_name(), b.video_name());
  EXPECT_EQ(a.trace_name(), b.trace_name());
  for (size_t i = 0; i < a.chunks().size(); ++i) {
    const ChunkRecord& x = a.chunks()[i];
    const ChunkRecord& y = b.chunks()[i];
    SCOPED_TRACE("chunk " + std::to_string(i));
    EXPECT_EQ(x.level, y.level);
    EXPECT_EQ(x.bitrate_kbps, y.bitrate_kbps);
    EXPECT_EQ(x.size_bytes, y.size_bytes);
    EXPECT_EQ(x.download_start_s, y.download_start_s);
    EXPECT_EQ(x.download_time_s, y.download_time_s);
    EXPECT_EQ(x.rebuffer_s, y.rebuffer_s);
    EXPECT_EQ(x.scheduled_rebuffer_s, y.scheduled_rebuffer_s);
    EXPECT_EQ(x.buffer_after_s, y.buffer_after_s);
    EXPECT_EQ(x.visual_quality, y.visual_quality);
  }
  ASSERT_NE(a.timeline(), nullptr);
  ASSERT_NE(b.timeline(), nullptr);
  const SessionTimeline& ta = *a.timeline();
  const SessionTimeline& tb = *b.timeline();
  EXPECT_EQ(ta.outcome(), tb.outcome());
  if (ta.outcome() == SessionOutcome::kOutage) {
    EXPECT_EQ(ta.outage_chunk(), tb.outage_chunk());
    EXPECT_EQ(ta.outage_wall_s(), tb.outage_wall_s());
  }
  EXPECT_EQ(ta.startup_delay_s(), tb.startup_delay_s());
  ASSERT_EQ(ta.chunks().size(), tb.chunks().size());
  for (size_t i = 0; i < ta.chunks().size(); ++i) {
    const ChunkTrajectory& x = ta.chunks()[i];
    const ChunkTrajectory& y = tb.chunks()[i];
    SCOPED_TRACE("trajectory " + std::to_string(i));
    EXPECT_EQ(x.level, y.level);
    EXPECT_EQ(x.request_wall_s, y.request_wall_s);
    EXPECT_EQ(x.rtt_s, y.rtt_s);
    EXPECT_EQ(x.transfer_s, y.transfer_s);
    EXPECT_EQ(x.arrival_wall_s, y.arrival_wall_s);
    EXPECT_EQ(x.stall_s, y.stall_s);
    EXPECT_EQ(x.stall_start_wall_s, y.stall_start_wall_s);
    EXPECT_EQ(x.scheduled_pause_s, y.scheduled_pause_s);
    EXPECT_EQ(x.idle_s, y.idle_s);
    EXPECT_EQ(x.buffer_before_s, y.buffer_before_s);
    EXPECT_EQ(x.buffer_after_s, y.buffer_after_s);
    EXPECT_EQ(x.playhead_before_s, y.playhead_before_s);
    EXPECT_EQ(x.playhead_after_s, y.playhead_after_s);
    EXPECT_EQ(x.pause_debt_after_s, y.pause_debt_after_s);
    EXPECT_EQ(x.goodput_kbps, y.goodput_kbps);
  }
  // The bench-side gate (bench_multisession's identity section) must agree
  // with this field-by-field comparator: if either ever learns a field the
  // other misses, one of the two checks here trips.
  EXPECT_FALSE(bench::sessions_differ(a, b))
      << "bench::sessions_differ disagrees with the field-by-field gate";
}

// --- net::SharedLink capacity accounting ------------------------------------

TEST(SharedLink, EqualSplitSymmetricTransfersFinishTogether) {
  // Flat 1000 Kbps link, two 1 Mbit transfers from t=0: each sees 500 Kbps,
  // both finish at exactly 2 s having received exactly half the capacity.
  net::ThroughputTrace trace("flat", std::vector<double>(100, 1000.0), 1.0);
  net::SharedLink link(trace);
  size_t a = link.begin(125000.0, 0.0);
  size_t b = link.begin(125000.0, 0.0);
  EXPECT_EQ(link.active_count(), 2u);
  double finish = link.next_completion_s();
  EXPECT_NEAR(finish, 2.0, 1e-9);
  link.advance_to(finish);
  auto completions = link.take_completions();
  ASSERT_EQ(completions.size(), 2u);  // perfect tie: both leave together
  EXPECT_EQ(completions[0].id, a);
  EXPECT_EQ(completions[1].id, b);
  EXPECT_EQ(link.active_count(), 0u);
  EXPECT_NEAR(link.view(a).granted_bits, 1e6, 1e-3);
  EXPECT_NEAR(link.view(b).granted_bits, 1e6, 1e-3);
}

TEST(SharedLink, LastLeaverGetsTheFullLink) {
  // A: 0.5 Mbit, B: 1 Mbit on a flat 1000 Kbps link, both from t=0. Equal
  // split until A leaves at t=1 (A needed 0.5 Mbit at 500 Kbps); B then has
  // 0.5 Mbit left and the whole 1000 Kbps: done at t=1.5.
  net::ThroughputTrace trace("flat", std::vector<double>(100, 1000.0), 1.0);
  net::SharedLink link(trace);
  size_t a = link.begin(62500.0, 0.0);
  size_t b = link.begin(125000.0, 0.0);
  double t1 = link.next_completion_s();
  EXPECT_NEAR(t1, 1.0, 1e-9);
  link.advance_to(t1);
  auto first = link.take_completions();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].id, a);
  EXPECT_EQ(link.active_count(), 1u);
  double t2 = link.next_completion_s();
  EXPECT_NEAR(t2, 1.5, 1e-9);
  link.advance_to(t2);
  auto second = link.take_completions();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].id, b);
  EXPECT_NEAR(link.view(b).finish_s, 1.5, 1e-9);
}

TEST(SharedLink, CapacityConservationUnderChurn) {
  // Varying looping trace, transfers joining and leaving: at every event the
  // bits granted across all transfers must equal the trace capacity of the
  // busy spans (the link is never idle in this schedule) and may never
  // exceed the capacity delivered so far.
  net::ThroughputTrace trace("vary", {1000.0, 2500.0, 400.0, 3000.0, 1200.0, 700.0}, 1.0);
  net::SharedLink link(trace);
  util::Rng rng(0x5ea51);
  link.begin(rng.uniform(2e4, 2e5), 0.0);
  size_t joined = 1;
  const size_t total = 12;
  while (link.active_count() > 0) {
    double completion = link.next_completion_s();
    ASSERT_TRUE(std::isfinite(completion));
    // Sometimes stop short of the completion to exercise partial drains and
    // mid-flight joins.
    double t = completion;
    if (joined < total && rng.chance(0.6)) {
      t = link.now_s() + (completion - link.now_s()) * rng.uniform(0.3, 0.9);
    }
    link.advance_to(t);
    if (joined < total && t < completion) {
      link.begin(rng.uniform(2e4, 2e5), t);
      ++joined;
    }
    link.take_completions();

    double granted = 0.0;
    for (size_t id = 0; id < joined; ++id) granted += link.view(id).granted_bits;
    double budget = link.cumulative_bits(link.now_s());
    EXPECT_LE(granted, budget * (1.0 + 1e-9) + 1e-6);
    // Never idle while active: everything delivered so far was granted.
    EXPECT_NEAR(granted, budget, budget * 1e-9 + 1e-3);
  }
  EXPECT_EQ(joined, total);
  for (size_t id = 0; id < joined; ++id) {
    EXPECT_TRUE(link.view(id).finished);
    EXPECT_EQ(link.view(id).granted_bits, link.view(id).total_bits);
  }
}

TEST(SharedLink, DeadLinkReportsNoCompletion) {
  net::ThroughputTrace cliff =
      net::ThroughputTrace("cliff", std::vector<double>(2, 1000.0), 1.0).as_finite();
  net::SharedLink link(cliff);
  link.begin(125000.0, 0.0);  // 1 Mbit; the finite trace only carries 2 Mbit
  link.begin(500000.0, 0.0);  // 4 Mbit: joint demand exceeds what's left
  double t = link.next_completion_s();
  // First finisher needs 2x its remaining — exactly the 2 Mbit available.
  EXPECT_TRUE(std::isfinite(t));
  link.advance_to(t);
  ASSERT_EQ(link.take_completions().size(), 1u);
  // The survivor needs 3.5 Mbit more from an exhausted finite trace: dead.
  EXPECT_TRUE(std::isinf(link.next_completion_s()));
}

// --- SessionEngine as a stepwise state machine ------------------------------

TEST(SessionEngine, WalksTheDeclaredStates) {
  auto video = media::Encoder().encode(
      media::SourceVideo::generate("EngineWalk", media::Genre::kSports, 40));
  net::ThroughputTrace trace("flat", std::vector<double>(600, 3000.0), 1.0);
  PlayerConfig config;  // default rtt 0.08 keeps kRtt distinct
  ScriptedPolicy policy({{1, 0.0}});
  SessionEngine engine(config, video, trace, policy, {});
  EXPECT_EQ(engine.state(), SessionEngine::State::kRequesting);

  bool saw_rtt = false, saw_transfer = false, saw_arrived = false;
  double last_t = -1.0;
  while (!engine.done()) {
    double t = engine.next_event_time();
    ASSERT_TRUE(std::isfinite(t));
    EXPECT_GE(t, last_t);  // the event clock never runs backwards
    last_t = t;
    engine.step();  // single-step drive: observe even the transient states
    switch (engine.state()) {
      case SessionEngine::State::kRtt: saw_rtt = true; break;
      case SessionEngine::State::kTransferring: saw_transfer = true; break;
      case SessionEngine::State::kArrived: saw_arrived = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_rtt);
  EXPECT_TRUE(saw_transfer);
  EXPECT_TRUE(saw_arrived);
  EXPECT_EQ(engine.state(), SessionEngine::State::kDone);

  // The stepwise drive emitted exactly what the one-shot wrapper emits.
  ScriptedPolicy fresh({{1, 0.0}});
  expect_sessions_identical(engine.take_result(), Player(config).stream(video, trace, fresh));
}

// --- the Simulator-vs-Player bit-identity gate ------------------------------

class SimulatorEquivalence : public ::testing::Test {
 protected:
  static std::vector<net::ThroughputTrace> gate_traces() {
    // Looping evaluation traces plus the outage shapes: a finite cliff that
    // dies mid-session and a dead-from-the-start link.
    std::vector<net::ThroughputTrace> traces = net::TraceGenerator::test_set(500.0);
    traces.push_back(
        net::ThroughputTrace("cliff", std::vector<double>(45, 3500.0), 1.0).as_finite());
    traces.push_back(net::ThroughputTrace("dead", {0.0, 0.0}, 1.0));
    return traces;
  }

  static std::unique_ptr<AbrPolicy> make_policy(int kind) {
    switch (kind) {
      case 0:
        return std::make_unique<ScriptedPolicy>(
            std::vector<AbrDecision>{{0, 0.0}, {4, 0.0}, {2, 1.0}, {3, 0.0}, {1, 2.0}});
      case 1:
        return std::make_unique<abr::BbaAbr>();
      default: {
        abr::FuguConfig fugu;
        fugu.use_weights = true;
        fugu.rebuffer_options = {0.0, 1.0, 2.0};
        return std::make_unique<abr::FuguAbr>(fugu);
      }
    }
  }
};

TEST_F(SimulatorEquivalence, SingleSessionOnDedicatedLinkMatchesPlayerBitForBit) {
  std::vector<media::EncodedVideo> videos;
  videos.push_back(media::Encoder().encode(
      media::SourceVideo::generate("SimEqA", media::Genre::kSports, 120)));
  videos.push_back(media::Encoder().encode(
      media::SourceVideo::generate("SimEqB", media::Genre::kNature, 180)));
  auto traces = gate_traces();
  PlayerConfig config;  // default rtt: the gate holds with RTT in play

  for (const auto& video : videos) {
    std::vector<double> weights(video.num_chunks(), 1.0);
    for (size_t i = 0; i < weights.size(); i += 4) weights[i] = 1.0 + 0.1 * double(i % 7);

    for (size_t t = 0; t < traces.size(); ++t) {
      for (int kind = 0; kind < 3; ++kind) {
        SCOPED_TRACE(video.source().name() + " trace " + traces[t].name() + " policy " +
                     std::to_string(kind));
        auto player_policy = make_policy(kind);
        SessionResult expected =
            Player(config).stream(video, traces[t], *player_policy, weights);

        auto sim_policy = make_policy(kind);
        SessionSpec spec;
        spec.video = &video;
        spec.policy = sim_policy.get();
        spec.weights = &weights;
        auto results = Simulator(config).run({spec}, traces[t], LinkMode::kDedicated);
        ASSERT_EQ(results.size(), 1u);
        expect_sessions_identical(expected, results[0].session);
      }
    }
  }
}

TEST_F(SimulatorEquivalence, InterleavedDedicatedSessionsEachMatchTheirSoloRun) {
  // Three staggered sessions share one event loop but private links: the
  // interleaving must not leak between sessions — each result equals its
  // solo Player run bit for bit.
  auto video = media::Encoder().encode(
      media::SourceVideo::generate("SimIso", media::Genre::kGaming, 120));
  net::ThroughputTrace trace = net::TraceGenerator::cellular("iso-cell", 1100, 600.0, 31);
  PlayerConfig config;

  std::vector<std::unique_ptr<AbrPolicy>> policies;
  std::vector<SessionSpec> specs;
  for (size_t k = 0; k < 3; ++k) {
    policies.push_back(make_policy(static_cast<int>(k)));
    SessionSpec spec;
    spec.video = &video;
    spec.policy = policies.back().get();
    spec.start_s = 3.7 * static_cast<double>(k);
    specs.push_back(spec);
  }
  auto results = Simulator(config).run(specs, trace, LinkMode::kDedicated);
  ASSERT_EQ(results.size(), 3u);

  // NOTE: staggered dedicated sessions read the trace at their own absolute
  // offset, so the solo baseline must start at the same offset. A flat
  // trace removes the offset; here we re-run through the Simulator at the
  // same start instead, exercising determinism of the loop itself.
  for (size_t k = 0; k < 3; ++k) {
    auto fresh = make_policy(static_cast<int>(k));
    SessionSpec spec = specs[k];
    spec.policy = fresh.get();
    auto solo = Simulator(config).run({spec}, trace, LinkMode::kDedicated);
    SCOPED_TRACE("session " + std::to_string(k));
    expect_sessions_identical(solo[0].session, results[k].session);
  }

  // And a session starting at 0 equals the plain Player run exactly.
  auto fresh = make_policy(0);
  SessionSpec spec;
  spec.video = &video;
  spec.policy = fresh.get();
  auto sim0 = Simulator(config).run({spec}, trace, LinkMode::kDedicated);
  auto player_policy = make_policy(0);
  expect_sessions_identical(Player(config).stream(video, trace, *player_policy),
                            sim0[0].session);
}

TEST_F(SimulatorEquivalence, GateHoldsAcrossRunnerThreads) {
  // The gate fanned over ExperimentRunner at 1 and 4 workers: simulator
  // cells are tasks; outputs must be bit-identical to the serial run.
  auto video = media::Encoder().encode(
      media::SourceVideo::generate("SimGrid", media::Genre::kAnimation, 120));
  auto traces = gate_traces();
  PlayerConfig config;

  auto run_cells = [&](size_t threads) {
    core::ExperimentRunner runner(threads);
    std::vector<SessionResult> out(traces.size() * 2);
    runner.for_each(out.size(), [&](size_t i) {
      size_t t = i / 2;
      bool through_simulator = (i % 2) == 1;
      auto policy = make_policy(2);  // Fugu: the stateful, planner-backed one
      if (through_simulator) {
        SessionSpec spec;
        spec.video = &video;
        spec.policy = policy.get();
        out[i] = Simulator(config)
                     .run({spec}, traces[t], LinkMode::kDedicated)[0]
                     .session;
      } else {
        out[i] = Player(config).stream(video, traces[t], *policy);
      }
    });
    return out;
  };

  auto serial = run_cells(1);
  auto parallel = run_cells(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); i += 2) {
    SCOPED_TRACE("trace " + std::to_string(i / 2));
    // Player vs Simulator within a run, and each across thread counts.
    expect_sessions_identical(serial[i], serial[i + 1]);
    expect_sessions_identical(serial[i], parallel[i]);
    expect_sessions_identical(serial[i + 1], parallel[i + 1]);
  }
}

// --- shared-link contention behavior ----------------------------------------

TEST(SimulatorContention, SymmetricSessionsStaySymmetricAndSlower) {
  auto video = media::Encoder().encode(
      media::SourceVideo::generate("SymShare", media::Genre::kSports, 80));
  net::ThroughputTrace trace("flat", std::vector<double>(4000, 2400.0), 1.0);
  PlayerConfig config;

  auto run_shared = [&](size_t n) {
    std::vector<std::unique_ptr<AbrPolicy>> policies;
    std::vector<SessionSpec> specs;
    for (size_t k = 0; k < n; ++k) {
      policies.push_back(std::make_unique<ScriptedPolicy>(
          std::vector<AbrDecision>{{2, 0.0}}));
      SessionSpec spec;
      spec.video = &video;
      spec.policy = policies.back().get();
      specs.push_back(spec);
    }
    return Simulator(config).run(specs, trace, LinkMode::kShared);
  };

  auto solo = run_shared(1);
  auto pair = run_shared(2);
  ASSERT_EQ(pair.size(), 2u);
  // Fairness: indistinguishable viewers get bit-identical sessions.
  expect_sessions_identical(pair[0].session, pair[1].session);
  // Contention: sharing can only slow downloads down.
  ASSERT_EQ(solo[0].session.chunks().size(), pair[0].session.chunks().size());
  double solo_total = 0.0, pair_total = 0.0;
  for (const auto& c : solo[0].session.chunks()) solo_total += c.download_time_s;
  for (const auto& c : pair[0].session.chunks()) pair_total += c.download_time_s;
  EXPECT_GT(pair_total, solo_total * 1.2);
  // On a flat link with one lone session, the shared-link path agrees with
  // the dedicated integrator to numerical precision.
  ScriptedPolicy dedicated_policy({{2, 0.0}});
  SessionResult dedicated = Player(config).stream(video, trace, dedicated_policy);
  ASSERT_EQ(dedicated.chunks().size(), solo[0].session.chunks().size());
  for (size_t i = 0; i < dedicated.chunks().size(); ++i) {
    EXPECT_NEAR(solo[0].session.chunks()[i].download_time_s,
                dedicated.chunks()[i].download_time_s, 1e-6);
  }
}

TEST(SimulatorContention, SharedOutageTruncatesEverySession) {
  auto video = media::Encoder().encode(
      media::SourceVideo::generate("ShareOut", media::Genre::kNature, 240));
  net::ThroughputTrace cliff =
      net::ThroughputTrace("cliff", std::vector<double>(50, 2800.0), 1.0).as_finite();
  PlayerConfig config;

  std::vector<std::unique_ptr<AbrPolicy>> policies;
  std::vector<SessionSpec> specs;
  for (size_t k = 0; k < 3; ++k) {
    policies.push_back(std::make_unique<ScriptedPolicy>(std::vector<AbrDecision>{{3, 0.0}}));
    SessionSpec spec;
    spec.video = &video;
    spec.policy = policies.back().get();
    spec.start_s = 4.0 * static_cast<double>(k);
    specs.push_back(spec);
  }
  auto results = Simulator(config).run(specs, cliff, LinkMode::kShared);
  for (size_t k = 0; k < results.size(); ++k) {
    SCOPED_TRACE("session " + std::to_string(k));
    EXPECT_EQ(results[k].session.outcome(), SessionOutcome::kOutage);
    EXPECT_LT(results[k].session.chunks().size(), video.num_chunks());
    ASSERT_NE(results[k].session.timeline(), nullptr);
    std::string why;
    EXPECT_TRUE(results[k].session.timeline()->check_invariants(&why)) << why;
  }
}

TEST(SimulatorContention, StaggeredArrivalsSeeLessContentionAtTheEdges) {
  // First arrival streams alone for a while: its first chunks download at
  // full speed; mid-flight chunks contend. Sanity of the sharing dynamics.
  auto video = media::Encoder().encode(
      media::SourceVideo::generate("Stagger", media::Genre::kGaming, 120));
  net::ThroughputTrace trace("flat", std::vector<double>(4000, 3000.0), 1.0);
  PlayerConfig config;
  config.rtt_s = 0.0;

  std::vector<std::unique_ptr<AbrPolicy>> policies;
  std::vector<SessionSpec> specs;
  for (size_t k = 0; k < 4; ++k) {
    policies.push_back(std::make_unique<ScriptedPolicy>(std::vector<AbrDecision>{{3, 0.0}}));
    SessionSpec spec;
    spec.video = &video;
    spec.policy = policies.back().get();
    spec.start_s = 2.0 * static_cast<double>(k);
    specs.push_back(spec);
  }
  auto results = Simulator(config).run(specs, trace, LinkMode::kShared);
  const auto& first = results[0].session;
  ASSERT_GT(first.chunks().size(), 8u);
  // Chunk 0 of the first session mostly downloaded before the others
  // arrived (solo or lightly contended); by chunk 6 all four viewers are
  // active and per-session goodput sits near a quarter of the link.
  ASSERT_NE(first.timeline(), nullptr);
  double first_goodput = first.timeline()->chunks()[0].goodput_kbps;
  double mid_goodput = first.timeline()->chunks()[6].goodput_kbps;
  EXPECT_LT(mid_goodput, 1100.0);
  EXPECT_GT(first_goodput, 2.0 * mid_goodput);
}

// --- Experiments multi-session grid across runner threads -------------------

TEST(MultiSessionGrid, BitIdenticalAcrossRunnerThreads) {
  std::vector<core::Experiments::MultiSessionCell> cells;
  for (size_t t = 0; t < 3; ++t) {
    core::Experiments::MultiSessionCell cell;
    cell.trace_index = t;
    cell.num_sessions = 6;
    cell.stagger_s = 5.0;
    cell.mode = t == 1 ? sim::LinkMode::kDedicated : sim::LinkMode::kShared;
    cells.push_back(cell);
  }
  auto factory = [] { return std::make_unique<abr::BbaAbr>(); };

  auto run = [&](size_t threads) {
    core::ExperimentRunner runner(threads);
    return core::Experiments::run_multisession_grid(cells, factory, false, runner);
  };
  auto serial = run(1);
  auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t c = 0; c < serial.size(); ++c) {
    ASSERT_EQ(serial[c].size(), parallel[c].size());
    for (size_t k = 0; k < serial[c].size(); ++k) {
      SCOPED_TRACE("cell " + std::to_string(c) + " session " + std::to_string(k));
      EXPECT_EQ(serial[c][k].start_s, parallel[c][k].start_s);
      expect_sessions_identical(serial[c][k].session, parallel[c][k].session);
    }
  }
}

TEST(RecordTimelineOptOut, ChunkRecordsAreByteIdenticalWithoutATimeline) {
  // record_timeline = false is a pure memory opt-out: no shipped policy
  // reads AbrObservation::timeline, so every decision and every emitted
  // ChunkRecord must stay byte-for-byte what the recording run produced —
  // only SessionResult::timeline() disappears.
  auto video = media::Encoder().encode(
      media::SourceVideo::generate("NoTl", media::Genre::kSports, 120));
  net::ThroughputTrace trace = net::TraceGenerator::cellular("notl-cell", 1300, 500.0, 21);

  for (int kind = 0; kind < 2; ++kind) {
    SCOPED_TRACE(kind == 0 ? "bba" : "fugu");
    auto make = [&]() -> std::unique_ptr<AbrPolicy> {
      if (kind == 0) return std::make_unique<abr::BbaAbr>();
      return std::make_unique<abr::FuguAbr>();
    };
    PlayerConfig recording;
    auto policy_a = make();
    SessionResult with = Player(recording).stream(video, trace, *policy_a);

    PlayerConfig bare;
    bare.record_timeline = false;
    auto policy_b = make();
    SessionResult without = Player(bare).stream(video, trace, *policy_b);

    ASSERT_NE(with.timeline(), nullptr);
    EXPECT_EQ(without.timeline(), nullptr);
    EXPECT_EQ(with.outcome(), without.outcome());
    EXPECT_EQ(with.startup_delay_s(), without.startup_delay_s());
    ASSERT_EQ(with.chunks().size(), without.chunks().size());
    for (size_t i = 0; i < with.chunks().size(); ++i) {
      const ChunkRecord& x = with.chunks()[i];
      const ChunkRecord& y = without.chunks()[i];
      SCOPED_TRACE("chunk " + std::to_string(i));
      EXPECT_EQ(x.index, y.index);
      EXPECT_EQ(x.level, y.level);
      EXPECT_EQ(x.bitrate_kbps, y.bitrate_kbps);
      EXPECT_EQ(x.size_bytes, y.size_bytes);
      EXPECT_EQ(x.download_start_s, y.download_start_s);
      EXPECT_EQ(x.download_time_s, y.download_time_s);
      EXPECT_EQ(x.rebuffer_s, y.rebuffer_s);
      EXPECT_EQ(x.scheduled_rebuffer_s, y.scheduled_rebuffer_s);
      EXPECT_EQ(x.buffer_after_s, y.buffer_after_s);
      EXPECT_EQ(x.visual_quality, y.visual_quality);
    }
  }
}

TEST(ChunkLimit, AbandonedSessionTruncatesAsCompletedAndMatchesPrefix) {
  // A viewer who abandons after k chunks must emit exactly the first k
  // ChunkRecords of the full watch (decisions cannot depend on a limit the
  // ABR never sees) and finish as kCompleted, not kOutage.
  auto video = media::Encoder().encode(
      media::SourceVideo::generate("Abandon", media::Genre::kNature, 120));
  net::ThroughputTrace trace = net::TraceGenerator::broadband("abandon-bb", 2600, 500.0, 22);

  abr::BbaAbr full_policy;
  SessionSpec full_spec;
  full_spec.video = &video;
  full_spec.policy = &full_policy;
  auto full = Simulator().run({full_spec}, trace, LinkMode::kDedicated);

  const size_t limit = 17;
  abr::BbaAbr cut_policy;
  SessionSpec cut_spec;
  cut_spec.video = &video;
  cut_spec.policy = &cut_policy;
  cut_spec.chunk_limit = limit;
  auto cut = Simulator().run({cut_spec}, trace, LinkMode::kDedicated);

  ASSERT_EQ(full[0].session.chunks().size(), video.num_chunks());
  ASSERT_EQ(cut[0].session.chunks().size(), limit);
  EXPECT_EQ(cut[0].session.outcome(), SessionOutcome::kCompleted);
  for (size_t i = 0; i < limit; ++i) {
    SCOPED_TRACE("chunk " + std::to_string(i));
    EXPECT_EQ(full[0].session.chunks()[i].level, cut[0].session.chunks()[i].level);
    EXPECT_EQ(full[0].session.chunks()[i].download_time_s,
              cut[0].session.chunks()[i].download_time_s);
    EXPECT_EQ(full[0].session.chunks()[i].rebuffer_s, cut[0].session.chunks()[i].rebuffer_s);
  }

  // The builder applies one limit to every generated spec.
  abr::BbaAbr p0, p1;
  StaggeredSpecs staggered;
  staggered.videos = {&video};
  staggered.policies = {&p0, &p1};
  staggered.num_sessions = 2;
  staggered.stagger_s = 3.0;
  staggered.chunk_limit = 5;
  auto specs = staggered.build();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].chunk_limit, 5u);
  EXPECT_EQ(specs[1].chunk_limit, 5u);
}

}  // namespace
}  // namespace sensei::sim
