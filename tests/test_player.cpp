#include "sim/player.h"

#include <gtest/gtest.h>

#include "media/dataset.h"
#include "net/trace_gen.h"

namespace sensei::sim {
namespace {

// Scripted policy: plays back a fixed decision list (wrapping).
class ScriptedPolicy : public AbrPolicy {
 public:
  explicit ScriptedPolicy(std::vector<AbrDecision> script) : script_(std::move(script)) {}
  const char* name() const override { return "scripted"; }
  AbrDecision decide(const AbrObservation& obs) override {
    last_obs_ = obs;
    return script_[obs.next_chunk % script_.size()];
  }
  AbrObservation last_obs_;

 private:
  std::vector<AbrDecision> script_;
};

class PlayerTest : public ::testing::Test {
 protected:
  media::EncodedVideo video_ =
      media::Encoder().encode(media::SourceVideo::generate("P", media::Genre::kSports, 120));
  net::ThroughputTrace fast_ = net::ThroughputTrace("fast", std::vector<double>(600, 8000.0));
  net::ThroughputTrace slow_ = net::ThroughputTrace("slow", std::vector<double>(600, 400.0));
  Player player_;
};

TEST_F(PlayerTest, AllChunksDownloaded) {
  ScriptedPolicy policy({{2, 0.0}});
  SessionResult s = player_.stream(video_, fast_, policy);
  EXPECT_EQ(s.chunks().size(), video_.num_chunks());
  for (size_t i = 0; i < s.chunks().size(); ++i) {
    EXPECT_EQ(s.chunks()[i].index, i);
    EXPECT_EQ(s.chunks()[i].level, 2u);
  }
}

TEST_F(PlayerTest, FastLinkNoRebuffering) {
  ScriptedPolicy policy({{4, 0.0}});
  SessionResult s = player_.stream(video_, fast_, policy);
  EXPECT_DOUBLE_EQ(s.total_rebuffer_s(), 0.0);
  EXPECT_GT(s.startup_delay_s(), 0.0);
}

TEST_F(PlayerTest, SlowLinkTopBitrateRebuffers) {
  // 2850 Kbps chunks over a 400 Kbps link must stall.
  ScriptedPolicy policy({{4, 0.0}});
  SessionResult s = player_.stream(video_, slow_, policy);
  EXPECT_GT(s.total_rebuffer_s(), 10.0);
}

TEST_F(PlayerTest, LowestBitrateAvoidsStallsOnSlowLink) {
  // 300 Kbps chunks over 400 Kbps: sustainable after startup.
  ScriptedPolicy policy({{0, 0.0}});
  SessionResult s = player_.stream(video_, slow_, policy);
  EXPECT_LT(s.total_rebuffer_s(), 1.0);
}

TEST_F(PlayerTest, BufferInvariants) {
  PlayerConfig config;
  ScriptedPolicy policy({{3, 0.0}, {1, 0.0}, {4, 0.0}});
  SessionResult s = player_.stream(video_, fast_, policy);
  for (const auto& c : s.chunks()) {
    EXPECT_GE(c.buffer_after_s, 0.0);
    EXPECT_LE(c.buffer_after_s, config.max_buffer_s + 1e-9);
    EXPECT_GE(c.rebuffer_s, 0.0);
    EXPECT_GE(c.download_time_s, 0.0);
  }
}

TEST_F(PlayerTest, WallClockIsMonotone) {
  ScriptedPolicy policy({{2, 0.0}});
  SessionResult s = player_.stream(video_, slow_, policy);
  for (size_t i = 1; i < s.chunks().size(); ++i) {
    EXPECT_GE(s.chunks()[i].download_start_s,
              s.chunks()[i - 1].download_start_s +
                  s.chunks()[i - 1].download_time_s - 1e-9);
  }
}

TEST_F(PlayerTest, ScheduledRebufferCreditsBufferAndCountsAsStall) {
  ScriptedPolicy no_stall({{2, 0.0}});
  ScriptedPolicy with_stall({{2, 0.0}, {2, 1.5}, {2, 0.0}});
  SessionResult a = player_.stream(video_, fast_, no_stall);
  SessionResult b = player_.stream(video_, fast_, with_stall);
  // Scheduled stalls appear in the stall accounting,
  double scheduled_total = 0.0;
  for (const auto& c : b.chunks()) scheduled_total += c.scheduled_rebuffer_s;
  EXPECT_GT(scheduled_total, 0.0);
  EXPECT_GE(b.total_rebuffer_s(), scheduled_total - 1e-9);
  (void)a;
}

TEST_F(PlayerTest, ScheduledRebufferOnFirstChunkBecomesStartup) {
  ScriptedPolicy policy({{2, 2.0}});
  SessionResult s = player_.stream(video_, fast_, policy);
  EXPECT_DOUBLE_EQ(s.chunks()[0].scheduled_rebuffer_s, 0.0);
  EXPECT_DOUBLE_EQ(s.chunks()[0].rebuffer_s, 0.0);
  EXPECT_GT(s.startup_delay_s(), 2.0);  // download + scheduled wait
}

TEST_F(PlayerTest, WeightsSlicedIntoObservations) {
  std::vector<double> weights(video_.num_chunks());
  for (size_t i = 0; i < weights.size(); ++i) weights[i] = static_cast<double>(i);
  ScriptedPolicy policy({{1, 0.0}});
  player_.stream(video_, fast_, policy, weights);
  // After the last decide(), next_chunk == N-1: fewer than horizon weights
  // remain and the slice starts at the chunk's own weight.
  const auto& obs = policy.last_obs_;
  ASSERT_FALSE(obs.future_weights.empty());
  EXPECT_DOUBLE_EQ(obs.future_weights[0], static_cast<double>(video_.num_chunks() - 1));
  EXPECT_LE(obs.future_weights.size(), PlayerConfig().weight_horizon);
}

TEST_F(PlayerTest, NoWeightsMeansEmptySlice) {
  ScriptedPolicy policy({{1, 0.0}});
  player_.stream(video_, fast_, policy);
  EXPECT_TRUE(policy.last_obs_.future_weights.empty());
}

TEST_F(PlayerTest, WrongWeightVectorSizeThrows) {
  std::vector<double> weights(3, 1.0);
  ScriptedPolicy policy({{1, 0.0}});
  EXPECT_THROW(player_.stream(video_, fast_, policy, weights), std::runtime_error);
}

TEST_F(PlayerTest, ThroughputHistoryBounded) {
  ScriptedPolicy policy({{2, 0.0}});
  player_.stream(video_, fast_, policy);
  EXPECT_LE(policy.last_obs_.throughput_history_kbps.size(),
            PlayerConfig().throughput_history_len);
  EXPECT_FALSE(policy.last_obs_.throughput_history_kbps.empty());
}

TEST_F(PlayerTest, OutOfRangeLevelIsClamped) {
  ScriptedPolicy policy({{99, 0.0}});
  SessionResult s = player_.stream(video_, fast_, policy);
  for (const auto& c : s.chunks()) EXPECT_EQ(c.level, 4u);
}

// Property sweep over traces: invariants hold for every trace in the test
// set under a mixed scripted policy.
class PlayerTraceSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PlayerTraceSweep, InvariantsAcrossTraces) {
  auto video = media::Encoder().encode(
      media::SourceVideo::generate("Sweep", media::Genre::kGaming, 120));
  auto traces = net::TraceGenerator::test_set(400.0);
  ScriptedPolicy policy({{0, 0.0}, {2, 0.0}, {4, 0.0}, {1, 1.0}});
  SessionResult s = Player().stream(video, traces[GetParam()], policy);
  EXPECT_EQ(s.chunks().size(), video.num_chunks());
  double total_sched = 0.0;
  for (const auto& c : s.chunks()) {
    EXPECT_GE(c.buffer_after_s, 0.0);
    EXPECT_LE(c.buffer_after_s, PlayerConfig().max_buffer_s + 1e-9);
    EXPECT_GE(c.rebuffer_s, c.scheduled_rebuffer_s - 1e-9);
    total_sched += c.scheduled_rebuffer_s;
  }
  EXPECT_GE(s.total_rebuffer_s(), total_sched - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Traces, PlayerTraceSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8, 9));

}  // namespace
}  // namespace sensei::sim
