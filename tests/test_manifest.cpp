#include "sim/manifest.h"

#include <gtest/gtest.h>

namespace sensei::sim {
namespace {

Manifest sample() {
  Manifest m;
  m.video_name = "Soccer1";
  m.chunk_duration_s = 4.0;
  m.num_chunks = 3;
  m.bitrates_kbps = {300, 750, 1200, 1850, 2850};
  m.weights = {0.8, 1.5, 0.7};
  return m;
}

TEST(Manifest, RoundTripPreservesEverything) {
  Manifest m = sample();
  Manifest back = Manifest::from_xml(m.to_xml());
  EXPECT_EQ(back.video_name, "Soccer1");
  EXPECT_DOUBLE_EQ(back.chunk_duration_s, 4.0);
  EXPECT_EQ(back.num_chunks, 3u);
  ASSERT_EQ(back.bitrates_kbps.size(), 5u);
  EXPECT_DOUBLE_EQ(back.bitrates_kbps[0], 300);
  EXPECT_DOUBLE_EQ(back.bitrates_kbps[4], 2850);
  ASSERT_EQ(back.weights.size(), 3u);
  EXPECT_DOUBLE_EQ(back.weights[1], 1.5);
}

TEST(Manifest, XmlContainsSenseiExtension) {
  std::string xml = sample().to_xml();
  EXPECT_NE(xml.find("<SenseiWeights"), std::string::npos);
  EXPECT_NE(xml.find("<Representation"), std::string::npos);
  EXPECT_NE(xml.find("<MPD"), std::string::npos);
}

TEST(Manifest, WeightlessManifestOmitsExtension) {
  Manifest m = sample();
  m.weights.clear();
  std::string xml = m.to_xml();
  EXPECT_EQ(xml.find("<SenseiWeights"), std::string::npos);
  Manifest back = Manifest::from_xml(xml);
  EXPECT_TRUE(back.weights.empty());
}

TEST(Manifest, EscapesVideoName) {
  Manifest m = sample();
  m.video_name = "A<B>&\"C";
  Manifest back = Manifest::from_xml(m.to_xml());
  EXPECT_EQ(back.video_name, "A<B>&\"C");
}

TEST(Manifest, WeightCountMismatchThrows) {
  Manifest m = sample();
  std::string xml = m.to_xml();
  // Corrupt: claim 4 chunks but provide 3 weights.
  auto pos = xml.find("numChunks=\"3\"");
  ASSERT_NE(pos, std::string::npos);
  xml.replace(pos, 13, "numChunks=\"4\"");
  EXPECT_THROW(Manifest::from_xml(xml), std::runtime_error);
}

TEST(Manifest, MalformedDocumentsThrow) {
  EXPECT_THROW(Manifest::from_xml(""), std::runtime_error);
  EXPECT_THROW(Manifest::from_xml("<MPD></MPD>"), std::runtime_error);
  EXPECT_THROW(Manifest::from_xml("<AdaptationSet name=\"x\">"), std::runtime_error);
}

TEST(Manifest, LadderConstruction) {
  Manifest m = sample();
  media::BitrateLadder ladder = m.ladder();
  EXPECT_EQ(ladder.level_count(), 5u);
  EXPECT_DOUBLE_EQ(ladder.highest_kbps(), 2850);
}

TEST(Manifest, ManyChunksRoundTrip) {
  Manifest m = sample();
  m.num_chunks = 149;
  m.weights.assign(149, 1.0);
  m.weights[77] = 1.9876;
  Manifest back = Manifest::from_xml(m.to_xml());
  ASSERT_EQ(back.weights.size(), 149u);
  EXPECT_NEAR(back.weights[77], 1.9876, 1e-9);
}

}  // namespace
}  // namespace sensei::sim
