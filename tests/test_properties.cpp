// Cross-module property tests: invariants that must hold for every video in
// the Table-1 dataset and for randomized renderings.
#include <gtest/gtest.h>

#include "crowd/ground_truth.h"
#include "crowd/weights.h"
#include "media/dataset.h"
#include "qoe/ksqi.h"
#include "sim/manifest.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sensei {
namespace {

class DatasetSweep : public ::testing::TestWithParam<const char*> {
 protected:
  media::EncodedVideo encoded() const {
    return media::Encoder().encode(media::Dataset::by_name(GetParam()));
  }
};

// Adding any stall anywhere never increases the oracle QoE.
TEST_P(DatasetSweep, OracleMonotoneInStalls) {
  auto video = encoded();
  crowd::GroundTruthQoE oracle;
  auto base = sim::RenderedVideo::pristine(video);
  double q0 = oracle.score(base);
  util::Rng rng = util::Rng::from_string(GetParam(), 0xB0 + 1);
  for (int k = 0; k < 8; ++k) {
    size_t chunk = static_cast<size_t>(
        rng.uniform_int(0, static_cast<int>(video.num_chunks()) - 1));
    double stall = rng.uniform(0.5, 5.0);
    EXPECT_LE(oracle.score(base.with_rebuffering(chunk, stall)), q0 + 1e-9)
        << GetParam() << " chunk " << chunk;
  }
}

// Dropping any chunk's bitrate never increases the oracle QoE... except the
// smoothness term can make a *single* chunk at a slightly lower rung
// preferable is impossible here since pristine has no switches: dropping
// introduces switches AND lowers vq, so QoE must not increase.
TEST_P(DatasetSweep, OracleMonotoneInBitrateDrops) {
  auto video = encoded();
  crowd::GroundTruthQoE oracle;
  auto base = sim::RenderedVideo::pristine(video);
  double q0 = oracle.score(base);
  util::Rng rng = util::Rng::from_string(GetParam(), 77);
  for (int k = 0; k < 8; ++k) {
    size_t chunk = static_cast<size_t>(
        rng.uniform_int(0, static_cast<int>(video.num_chunks()) - 1));
    size_t level = static_cast<size_t>(rng.uniform_int(0, 3));
    EXPECT_LE(oracle.score(base.with_bitrate_drop(chunk, 1, level, video)), q0 + 1e-9);
  }
}

// A stall at the most sensitive chunk hurts at least as much as the same
// stall at the least sensitive chunk — for every video in the dataset.
TEST_P(DatasetSweep, SensitiveChunkStallsHurtMore) {
  auto video = encoded();
  crowd::GroundTruthQoE oracle;
  auto s = video.source().true_sensitivity();
  size_t hi = 0, lo = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] > s[hi]) hi = i;
    if (s[i] < s[lo]) lo = i;
  }
  auto base = sim::RenderedVideo::pristine(video);
  double q_hi = oracle.score(base.with_rebuffering(hi, 2.0));
  double q_lo = oracle.score(base.with_rebuffering(lo, 2.0));
  EXPECT_LE(q_hi, q_lo + 1e-9) << GetParam();
}

// Noiseless weight inference recovers a positive sensitivity correlation on
// every dataset video (with noise the scheduler tests cover looser bounds).
TEST_P(DatasetSweep, NoiselessInferenceRecoversSensitivity) {
  auto video = encoded();
  crowd::GroundTruthQoE oracle;
  auto series = sim::rebuffer_series(video, 1.0);
  auto reference = sim::RenderedVideo::pristine(video);
  std::vector<double> mos;
  for (const auto& v : series) mos.push_back(oracle.score(v));
  auto w = crowd::infer_weights(series, mos, reference, oracle.score(reference),
                                video.num_chunks());
  EXPECT_GT(util::spearman(w, video.source().true_sensitivity()), 0.6) << GetParam();
}

// Manifest XML roundtrip is lossless for every video's profile-shaped data.
TEST_P(DatasetSweep, ManifestRoundTripLossless) {
  auto video = encoded();
  util::Rng rng = util::Rng::from_string(GetParam(), 3);
  sim::Manifest m;
  m.video_name = video.source().name();
  m.chunk_duration_s = video.chunk_duration_s();
  m.num_chunks = video.num_chunks();
  m.bitrates_kbps = video.ladder().levels_kbps();
  for (size_t i = 0; i < m.num_chunks; ++i) m.weights.push_back(rng.uniform(0.2, 2.2));
  sim::Manifest back = sim::Manifest::from_xml(m.to_xml());
  ASSERT_EQ(back.weights.size(), m.weights.size());
  for (size_t i = 0; i < m.weights.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.weights[i], m.weights[i]);
  }
}

// KSQI (position-blind) predicts the same value for a fixed incident
// regardless of where it lands, provided no chunk quality floors out.
TEST_P(DatasetSweep, KsqiPositionBlindness) {
  auto video = encoded();
  qoe::KsqiModel ksqi;
  auto base = sim::RenderedVideo::pristine(video);
  double first = ksqi.raw_score(base.with_rebuffering(1, 0.5));
  for (size_t chunk = 3; chunk < video.num_chunks(); chunk += 7) {
    EXPECT_NEAR(ksqi.raw_score(base.with_rebuffering(chunk, 0.5)), first, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllVideos, DatasetSweep,
                         ::testing::Values("Basket1", "Soccer1", "Basket2", "Soccer2",
                                           "Discus", "Wrestling", "Motor", "Tank", "FPS1",
                                           "FPS2", "Mountain", "Animal", "Space", "Girl",
                                           "Lava", "BigBuckBunny"));

}  // namespace
}  // namespace sensei
