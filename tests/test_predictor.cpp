#include "net/predictor.h"

#include <gtest/gtest.h>

namespace sensei::net {
namespace {

TEST(HarmonicMean, MatchesClosedForm) {
  HarmonicMeanPredictor p(3);
  p.observe(100);
  p.observe(200);
  // Harmonic mean of {100, 200} = 2 / (1/100 + 1/200) = 133.33.
  EXPECT_NEAR(p.predict_kbps(), 2.0 / (0.01 + 0.005), 1e-9);
}

TEST(HarmonicMean, WindowEvictsOldest) {
  HarmonicMeanPredictor p(2);
  p.observe(100);
  p.observe(100);
  p.observe(400);
  // Window holds {100, 400}: hm = 2/(0.01+0.0025) = 160.
  EXPECT_NEAR(p.predict_kbps(), 160.0, 1e-9);
}

TEST(HarmonicMean, RobustToOutliers) {
  HarmonicMeanPredictor p(5);
  for (int i = 0; i < 4; ++i) p.observe(1000);
  p.observe(100000);  // spike
  EXPECT_LT(p.predict_kbps(), 1500);  // harmonic mean barely moves
}

TEST(HarmonicMean, InitialAndReset) {
  HarmonicMeanPredictor p(3, 777.0);
  EXPECT_DOUBLE_EQ(p.predict_kbps(), 777.0);
  p.observe(100);
  p.reset();
  EXPECT_DOUBLE_EQ(p.predict_kbps(), 777.0);
}

TEST(HarmonicMean, GuardsNonPositiveObservations) {
  HarmonicMeanPredictor p(3);
  p.observe(0.0);
  p.observe(-5.0);
  EXPECT_GT(p.predict_kbps(), 0.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  EwmaPredictor p(0.5);
  for (int i = 0; i < 30; ++i) p.observe(2000);
  EXPECT_NEAR(p.predict_kbps(), 2000, 1e-6);
}

TEST(Ewma, FirstObservationSeeds) {
  EwmaPredictor p(0.3, 1000);
  p.observe(500);
  EXPECT_DOUBLE_EQ(p.predict_kbps(), 500);
}

TEST(Ewma, Reset) {
  EwmaPredictor p(0.3, 1234);
  p.observe(500);
  p.reset();
  EXPECT_DOUBLE_EQ(p.predict_kbps(), 1234);
}

TEST(Scenario, ProbabilitiesSumToOne) {
  ScenarioPredictor p;
  p.observe(1000);
  p.observe(1200);
  p.observe(900);
  auto scenarios = p.scenarios();
  ASSERT_EQ(scenarios.size(), 3u);
  double total = 0.0;
  for (const auto& s : scenarios) total += s.probability;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Scenario, SpreadGrowsWithVariance) {
  ScenarioPredictor stable;
  for (double v : {1000.0, 1010.0, 990.0, 1005.0}) stable.observe(v);
  ScenarioPredictor volatile_p;
  for (double v : {400.0, 2200.0, 600.0, 1800.0}) volatile_p.observe(v);

  auto s1 = stable.scenarios();
  auto s2 = volatile_p.scenarios();
  double spread1 = s1.back().kbps - s1.front().kbps;
  double spread2 = s2.back().kbps - s2.front().kbps;
  EXPECT_GT(spread2, spread1);
}

TEST(Scenario, ScenariosBracketPointEstimate) {
  ScenarioPredictor p;
  for (double v : {800.0, 1200.0, 1000.0}) p.observe(v);
  auto scenarios = p.scenarios();
  double point = p.predict_kbps();
  EXPECT_LT(scenarios.front().kbps, point);
  EXPECT_GT(scenarios.back().kbps, point);
  EXPECT_DOUBLE_EQ(scenarios[1].kbps, point);
}

TEST(Scenario, DefaultInterfaceSinglePoint) {
  // Base-class default: one scenario with probability 1.
  HarmonicMeanPredictor p(3, 500);
  auto scenarios = static_cast<ThroughputPredictor&>(p).scenarios();
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_DOUBLE_EQ(scenarios[0].probability, 1.0);
  EXPECT_DOUBLE_EQ(scenarios[0].kbps, 500.0);
}

}  // namespace
}  // namespace sensei::net
