// Equivalence gate for the MPC planner swap: the memoized DpPlanner must
// reproduce the reference ExhaustivePlanner exactly — same (level,
// scheduled_rebuffer) decision and bit-identical value — across a seeded
// grid of observations, weights, and scenario sets, and whole experiment
// grids must stay bit-identical before/after the swap at any thread count.
#include "abr/planner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "abr/fugu.h"
#include "core/experiments.h"
#include "core/runner.h"
#include "media/dataset.h"
#include "net/trace_gen.h"
#include "sim/player.h"
#include "util/rng.h"

namespace sensei::abr {
namespace {

class PlannerEquivalence : public ::testing::Test {
 protected:
  media::EncodedVideo video_ = media::Encoder().encode(
      media::SourceVideo::generate("PlannerEq", media::Genre::kSports, 120));
};

struct GridCase {
  sim::AbrObservation obs;
  std::vector<net::ThroughputScenario> scenarios;
  std::vector<double> rebuffer_options;
  bool use_weights = false;
  size_t horizon = 5;
};

// Seeded grid spanning buffers, positions (incl. end-of-video), levels,
// scenario counts/spreads, weights, and both rebuffer-action sets.
std::vector<GridCase> seeded_grid(const media::EncodedVideo& video, uint64_t seed,
                                  size_t cases_per_combo) {
  util::Rng rng(seed);
  std::vector<GridCase> grid;
  for (size_t horizon : {1, 2, 3, 4, 5}) {
    for (bool use_weights : {false, true}) {
      for (bool stall_actions : {false, true}) {
        for (size_t i = 0; i < cases_per_combo; ++i) {
          GridCase c;
          c.horizon = horizon;
          c.use_weights = use_weights;
          c.rebuffer_options =
              stall_actions ? std::vector<double>{0.0, 1.0, 2.0} : std::vector<double>{0.0};
          c.obs.video = &video;
          c.obs.num_chunks = video.num_chunks();
          // Bias a few cases to the tail so the chunk-exhaustion leaf fires.
          c.obs.next_chunk = rng.chance(0.25)
                                 ? video.num_chunks() - 1 - static_cast<size_t>(
                                       rng.uniform_int(0, 2))
                                 : static_cast<size_t>(rng.uniform_int(
                                       0, static_cast<int>(video.num_chunks()) - 1));
          c.obs.buffer_s = rng.uniform(0.0, 28.0);
          c.obs.last_level = static_cast<size_t>(
              rng.uniform_int(0, static_cast<int>(video.ladder().level_count()) - 1));
          size_t num_scen = rng.chance(0.5) ? 3 : 8;
          c.scenarios = net::triangular_scenarios(num_scen, rng.uniform(250.0, 6500.0),
                                       rng.uniform(0.05, 0.8));
          if (use_weights) {
            for (size_t d = 0; d < horizon; ++d)
              c.obs.future_weights.push_back(rng.uniform(0.5, 2.8));
          }
          grid.push_back(std::move(c));
        }
      }
    }
  }
  return grid;
}

PlanQuery make_query(const GridCase& c) {
  PlanQuery q;
  q.obs = &c.obs;
  q.scenarios = c.scenarios.data();
  q.num_scenarios = c.scenarios.size();
  q.horizon = c.horizon;
  q.rebuffer_options = c.rebuffer_options.data();
  q.num_rebuffer_options = c.rebuffer_options.size();
  q.use_weights = c.use_weights;
  q.weight_shrinkage = 0.8;
  double prev_vq = c.obs.next_chunk > 0
                       ? c.obs.video->visual_quality(c.obs.next_chunk - 1, c.obs.last_level)
                       : c.obs.video->visual_quality(0, 0);
  q.prev_visual_quality = prev_vq;
  return q;
}

TEST_F(PlannerEquivalence, DpMatchesExhaustiveBitIdenticalOnSeededGrid) {
  ExhaustivePlanner reference;
  DpPlanner dp;  // exact merging (quantum 0)
  auto grid = seeded_grid(video_, 0xfeed5eed, 6);
  ASSERT_FALSE(grid.empty());
  for (size_t i = 0; i < grid.size(); ++i) {
    PlanQuery q = make_query(grid[i]);
    PlanResult a = reference.plan(q);
    PlanResult b = dp.plan(q);
    SCOPED_TRACE("case " + std::to_string(i) + " horizon " +
                 std::to_string(grid[i].horizon));
    EXPECT_EQ(a.best_level, b.best_level);
    EXPECT_DOUBLE_EQ(a.best_rebuffer_s, b.best_rebuffer_s);
    EXPECT_DOUBLE_EQ(a.best_value, b.best_value);
    EXPECT_EQ(a.nostall_level, b.nostall_level);
    EXPECT_DOUBLE_EQ(a.nostall_value, b.nostall_value);
  }
}

TEST_F(PlannerEquivalence, QuantizedDpKeepsDecisionsWithinTolerance) {
  // Puffer-style lossy bucketing (unit_buf_length = 0.25 s): decisions must
  // survive the discretization on small horizons, values within a tolerance
  // proportional to the per-step quantization error.
  ExhaustivePlanner reference;
  DpPlanner dp(0.25);
  auto grid = seeded_grid(video_, 0x0ddba11, 4);
  for (size_t i = 0; i < grid.size(); ++i) {
    if (grid[i].horizon > 3) continue;
    PlanQuery q = make_query(grid[i]);
    PlanResult a = reference.plan(q);
    PlanResult b = dp.plan(q);
    SCOPED_TRACE("case " + std::to_string(i));
    EXPECT_EQ(a.best_level, b.best_level);
    EXPECT_DOUBLE_EQ(a.best_rebuffer_s, b.best_rebuffer_s);
    EXPECT_NEAR(a.best_value, b.best_value, 0.5);
  }
}

TEST_F(PlannerEquivalence, DpValueMonotonicInInitialBuffer) {
  // More starting buffer can only help: the optimal lookahead value must be
  // nondecreasing in the observed buffer level, all else equal.
  DpPlanner dp;
  util::Rng rng(0xb0ffe4);
  for (size_t trial = 0; trial < 20; ++trial) {
    GridCase c;
    c.horizon = 5;
    c.rebuffer_options = std::vector<double>{0.0, 1.0, 2.0};
    c.obs.video = &video_;
    c.obs.num_chunks = video_.num_chunks();
    c.obs.next_chunk = static_cast<size_t>(
        rng.uniform_int(0, static_cast<int>(video_.num_chunks()) - 6));
    c.obs.last_level = static_cast<size_t>(rng.uniform_int(0, 4));
    c.scenarios = net::triangular_scenarios(5, rng.uniform(300.0, 5000.0), rng.uniform(0.1, 0.7));
    double prev = -1e18;
    for (double buffer = 0.0; buffer <= 24.0; buffer += 2.0) {
      c.obs.buffer_s = buffer;
      PlanQuery q = make_query(c);
      double value = dp.plan(q).best_value;
      EXPECT_GE(value, prev - 1e-12) << "buffer " << buffer << " trial " << trial;
      prev = value;
    }
  }
}

TEST_F(PlannerEquivalence, SteadyStateHotPathStopsAllocating) {
  DpPlanner dp;
  GridCase c;
  c.horizon = 5;
  c.rebuffer_options = std::vector<double>{0.0, 1.0, 2.0};
  c.use_weights = true;
  c.obs.video = &video_;
  c.obs.num_chunks = video_.num_chunks();
  c.obs.next_chunk = 3;
  c.obs.buffer_s = 7.5;
  c.obs.last_level = 2;
  c.obs.future_weights = {1.4, 0.8, 2.1, 1.0, 0.6};
  c.scenarios = net::triangular_scenarios(8, 2400.0, 0.4);
  // One pass over the observation sweep reaches the arena's high-water
  // mark; a second identical pass must not allocate another byte.
  auto sweep = [&] {
    for (int i = 0; i < 50; ++i) {
      c.obs.buffer_s = 0.5 * static_cast<double>(i % 40);
      c.obs.next_chunk = static_cast<size_t>(i % 20);
      PlanQuery q = make_query(c);
      dp.plan(q);
    }
  };
  sweep();
  size_t warm = dp.arena_bytes();
  sweep();
  EXPECT_EQ(dp.arena_bytes(), warm);
}

TEST_F(PlannerEquivalence, FullSessionsIdenticalAcrossPlanners) {
  auto traces = std::vector<net::ThroughputTrace>{
      net::TraceGenerator::cellular("cell", 1200, 600.0, 5),
      net::TraceGenerator::broadband("bb", 2600, 600.0, 9),
  };
  std::vector<double> weights(video_.num_chunks(), 0.8);
  for (size_t i = 10; i < 16 && i < weights.size(); ++i) weights[i] = 2.4;

  for (bool sensei_mode : {false, true}) {
    for (const auto& trace : traces) {
      FuguConfig dp_cfg, ex_cfg;
      dp_cfg.use_weights = ex_cfg.use_weights = sensei_mode;
      if (sensei_mode) {
        dp_cfg.rebuffer_options = std::vector<double>{0.0, 1.0, 2.0};
        ex_cfg.rebuffer_options = std::vector<double>{0.0, 1.0, 2.0};
      }
      dp_cfg.planner = PlannerKind::kDp;
      ex_cfg.planner = PlannerKind::kExhaustive;
      FuguAbr dp_abr(dp_cfg), ex_abr(ex_cfg);
      sim::Player player;
      auto s_dp = player.stream(video_, trace, dp_abr, sensei_mode ? weights : std::vector<double>{});
      auto s_ex = player.stream(video_, trace, ex_abr, sensei_mode ? weights : std::vector<double>{});
      ASSERT_EQ(s_dp.chunks().size(), s_ex.chunks().size());
      for (size_t i = 0; i < s_dp.chunks().size(); ++i) {
        const auto& a = s_dp.chunks()[i];
        const auto& b = s_ex.chunks()[i];
        EXPECT_EQ(a.level, b.level) << "chunk " << i;
        EXPECT_EQ(a.scheduled_rebuffer_s, b.scheduled_rebuffer_s) << "chunk " << i;
        EXPECT_EQ(a.rebuffer_s, b.rebuffer_s) << "chunk " << i;
        EXPECT_EQ(a.buffer_after_s, b.buffer_after_s) << "chunk " << i;
        EXPECT_EQ(a.download_time_s, b.download_time_s) << "chunk " << i;
      }
    }
  }
}

// ExperimentRunner grids must be bit-identical before/after the planner
// swap, and across thread counts — the end-to-end determinism contract the
// figure benches rely on.
TEST(PlannerGridDeterminism, GridBitIdenticalAcrossPlannersAndThreads) {
  std::vector<media::EncodedVideo> videos;
  videos.push_back(media::Encoder().encode(
      media::SourceVideo::generate("GridEqA", media::Genre::kNature, 120)));
  videos.push_back(media::Encoder().encode(
      media::SourceVideo::generate("GridEqB", media::Genre::kGaming, 120)));
  std::vector<net::ThroughputTrace> traces = {
      net::TraceGenerator::cellular("cellA", 900, 600.0, 3),
      net::TraceGenerator::broadband("bbB", 3000, 600.0, 4),
  };
  std::vector<std::vector<double>> weights;
  for (const auto& v : videos) {
    std::vector<double> w(v.num_chunks(), 1.0);
    for (size_t i = 5; i < w.size(); i += 7) w[i] = 2.2;
    weights.push_back(std::move(w));
  }

  auto run = [&](abr::PlannerKind kind, size_t threads) {
    core::ExperimentRunner runner(threads);
    return core::Experiments::run_grid(
        videos, traces, [kind] { return core::Sensei::make_sensei_fugu({}, kind); },
        weights, runner);
  };

  auto base = run(abr::PlannerKind::kExhaustive, 1);
  for (auto kind : {abr::PlannerKind::kExhaustive, abr::PlannerKind::kDp}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      auto got = run(kind, threads);
      ASSERT_EQ(got.size(), base.size());
      for (size_t i = 0; i < base.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i) + " threads " + std::to_string(threads));
        EXPECT_EQ(got[i].true_qoe, base[i].true_qoe);
        ASSERT_EQ(got[i].session.chunks().size(), base[i].session.chunks().size());
        for (size_t j = 0; j < base[i].session.chunks().size(); ++j) {
          EXPECT_EQ(got[i].session.chunks()[j].level, base[i].session.chunks()[j].level);
          EXPECT_EQ(got[i].session.chunks()[j].rebuffer_s,
                    base[i].session.chunks()[j].rebuffer_s);
          EXPECT_EQ(got[i].session.chunks()[j].scheduled_rebuffer_s,
                    base[i].session.chunks()[j].scheduled_rebuffer_s);
        }
      }
    }
  }
}

// Degenerate queries — an empty lookahead (horizon 0), an empty forecast
// (no scenarios), an empty action set (no rebuffer options), or a position
// at/past the end of the video — must produce the same benign no-op plan
// from every planner: hold the last level (clamped into the ladder), no
// scheduled stall, zero value. A -1e18 "no leaf found" sentinel leaking out
// of any of these was the original bug this pins.
TEST_F(PlannerEquivalence, DegenerateQueriesNoOpAcrossAllPlanners) {
  ExhaustivePlanner exhaustive;
  DpPlanner dp;
  ViPlanner vi;
  Planner* planners[] = {&exhaustive, &dp, &vi};

  auto scenarios = net::triangular_scenarios(3, 1800.0, 0.3);
  const std::vector<double> rebuf = {0.0, 1.0, 2.0};
  const size_t L = video_.ladder().level_count();

  struct Degenerate {
    const char* what;
    size_t horizon;
    size_t num_scenarios;
    size_t num_rebuf;
    size_t next_chunk;
    size_t last_level;
  };
  const Degenerate cases[] = {
      {"horizon 0", 0, 3, 3, 4, 2},
      {"no scenarios", 5, 0, 3, 4, 2},
      {"no rebuffer options", 5, 3, 0, 4, 2},
      {"past end of video", 5, 3, 3, video_.num_chunks(), 2},
      {"level clamp", 0, 3, 3, 4, L + 7},
  };
  for (const auto& c : cases) {
    sim::AbrObservation obs;
    obs.video = &video_;
    obs.num_chunks = video_.num_chunks();
    obs.next_chunk = c.next_chunk;
    obs.buffer_s = 12.0;
    obs.last_level = c.last_level;

    PlanQuery q;
    q.obs = &obs;
    q.scenarios = scenarios.data();
    q.num_scenarios = c.num_scenarios;
    q.horizon = c.horizon;
    q.rebuffer_options = rebuf.data();
    q.num_rebuffer_options = c.num_rebuf;
    q.use_weights = false;
    q.prev_visual_quality = video_.visual_quality(0, 0);

    const size_t expected_level = std::min(c.last_level, L - 1);
    for (Planner* p : planners) {
      SCOPED_TRACE(c.what);
      PlanResult r = p->plan(q);
      EXPECT_EQ(r.best_level, expected_level);
      EXPECT_EQ(r.nostall_level, expected_level);
      EXPECT_DOUBLE_EQ(r.best_rebuffer_s, 0.0);
      EXPECT_DOUBLE_EQ(r.best_value, 0.0);
      EXPECT_DOUBLE_EQ(r.nostall_value, 0.0);
    }
  }
}

// The shared bucketing helper is the single point where every planner's
// buffer discretization happens; its edge behavior (signed zero, negatives,
// NaN, half-bucket edges) is what keeps quantized state keys from splitting
// identical states across platforms.
TEST(BufferBucket, EdgeCases) {
  // Everything at or below zero collapses to bucket 0 — including -0.0 and
  // NaN (the !(x > 0) form is deliberate).
  EXPECT_EQ(buffer_bucket(0.0, 0.25), 0u);
  EXPECT_EQ(buffer_bucket(-0.0, 0.25), 0u);
  EXPECT_EQ(buffer_bucket(-3.7, 0.25), 0u);
  EXPECT_EQ(buffer_bucket(std::nan(""), 0.25), 0u);

  // Round-half-away-from-zero (llround), not floor/truncation: 0.124 of a
  // 0.25 bucket rounds down, 0.126 rounds up, and the 0.125 edge goes up.
  EXPECT_EQ(buffer_bucket(0.124, 0.25), 0u);
  EXPECT_EQ(buffer_bucket(0.125, 0.25), 1u);
  EXPECT_EQ(buffer_bucket(0.126, 0.25), 1u);
  EXPECT_EQ(buffer_bucket(0.374, 0.25), 1u);
  EXPECT_EQ(buffer_bucket(0.376, 0.25), 2u);

  // Exact multiples land on their own bucket at any quantum.
  for (double quantum : {0.25, 0.5, 2.0}) {
    for (uint64_t k = 1; k <= 120; ++k) {
      EXPECT_EQ(buffer_bucket(static_cast<double>(k) * quantum, quantum), k)
          << "k=" << k << " quantum=" << quantum;
    }
  }
}

// quantize_kbps defines the vi tail's forecast bins (and so the PlanBatch
// table key). It must be idempotent, monotone non-decreasing, and clamp the
// degenerate low end to 1 kbps.
TEST(QuantizeKbps, BinSanity) {
  // The sub-1 range collapses to the 1 kbps fixed point.
  EXPECT_DOUBLE_EQ(quantize_kbps(0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantize_kbps(-50.0), 1.0);
  EXPECT_DOUBLE_EQ(quantize_kbps(1.0), 1.0);

  double prev = 0.0;
  for (double k = 1.0; k < 50000.0; k *= 1.07) {
    const double b = quantize_kbps(k);
    // Idempotent: a bin center maps to itself.
    EXPECT_DOUBLE_EQ(quantize_kbps(b), b) << "k=" << k;
    // Monotone non-decreasing in the input.
    EXPECT_GE(b, prev) << "k=" << k;
    // Relative error bounded by half a bin in log space.
    const double half_bin = std::exp2(0.5 / kViKbpsBinsPerOctave);
    EXPECT_LE(b / k, half_bin) << "k=" << k;
    EXPECT_GE(b / k, 1.0 / half_bin) << "k=" << k;
    prev = b;
  }
}

}  // namespace
}  // namespace sensei::abr
