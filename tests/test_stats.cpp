#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace sensei::util {
namespace {

TEST(Stats, MeanAndVariance) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
  EXPECT_DOUBLE_EQ(variance(v), 2.0);
  EXPECT_DOUBLE_EQ(stddev(v), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(sum(v), 15.0);
}

TEST(Stats, EmptyInputsAreSafe) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(variance(empty), 0.0);
  EXPECT_DOUBLE_EQ(min_of(empty), 0.0);
  EXPECT_DOUBLE_EQ(max_of(empty), 0.0);
  EXPECT_DOUBLE_EQ(percentile(empty, 50), 0.0);
  EXPECT_DOUBLE_EQ(pearson(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(spearman(empty, empty), 0.0);
}

TEST(Stats, MinMax) {
  std::vector<double> v = {3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(min_of(v), -1.0);
  EXPECT_DOUBLE_EQ(max_of(v), 7.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v = {0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 12.5), 5.0);  // between first two samples
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> yn = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, yn), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateVarianceIsZero) {
  std::vector<double> x = {1, 1, 1};
  std::vector<double> y = {2, 5, 9};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Stats, RanksWithTies) {
  std::vector<double> v = {10, 20, 20, 30};
  auto r = ranks(v);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, SpearmanMonotonicNonlinear) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {1, 8, 27, 64, 125};  // monotone but nonlinear
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Stats, DiscordantFraction) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> same = {10, 20, 30};
  EXPECT_DOUBLE_EQ(discordant_fraction(x, same), 0.0);
  std::vector<double> reversed = {30, 20, 10};
  EXPECT_DOUBLE_EQ(discordant_fraction(x, reversed), 1.0);
}

TEST(Stats, DiscordantFractionSkipsTies) {
  std::vector<double> x = {1, 1, 2};
  std::vector<double> y = {5, 9, 9};
  // Pairs: (0,1) tie in x, (1,2) tie in y, (0,2) concordant -> 0 discordant.
  EXPECT_DOUBLE_EQ(discordant_fraction(x, y), 0.0);
}

TEST(Stats, MeanRelativeError) {
  std::vector<double> pred = {1.1, 1.8};
  std::vector<double> truth = {1.0, 2.0};
  EXPECT_NEAR(mean_relative_error(pred, truth), (0.1 + 0.1) / 2.0, 1e-12);
}

TEST(Stats, MeanRelativeErrorSkipsZeroTruth) {
  std::vector<double> pred = {1.0, 5.0};
  std::vector<double> truth = {0.0, 4.0};
  EXPECT_NEAR(mean_relative_error(pred, truth), 0.25, 1e-12);
}

TEST(Stats, Rmse) {
  std::vector<double> pred = {1, 2};
  std::vector<double> truth = {2, 4};
  EXPECT_NEAR(rmse(pred, truth), std::sqrt((1.0 + 4.0) / 2.0), 1e-12);
}

TEST(Stats, EmpiricalCdfIsMonotone) {
  auto cdf = empirical_cdf({5, 1, 3, 3});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.front().first, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().first, 5.0);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].first, cdf[i].first);
    EXPECT_LT(cdf[i - 1].second, cdf[i].second);
  }
}

TEST(Stats, Normalize01) {
  auto n = normalize01({2, 4, 6});
  EXPECT_DOUBLE_EQ(n[0], 0.0);
  EXPECT_DOUBLE_EQ(n[1], 0.5);
  EXPECT_DOUBLE_EQ(n[2], 1.0);
  auto c = normalize01({3, 3});
  EXPECT_DOUBLE_EQ(c[0], 0.5);
  EXPECT_DOUBLE_EQ(c[1], 0.5);
}

TEST(Stats, Clamp) {
  EXPECT_DOUBLE_EQ(clamp(5, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0, 1), 0.5);
}

TEST(Stats, AccumulatorMatchesBatch) {
  std::vector<double> v = {1.5, 2.5, -3.0, 4.0, 0.0};
  Accumulator acc;
  for (double x : v) acc.add(x);
  EXPECT_EQ(acc.count(), v.size());
  EXPECT_NEAR(acc.mean(), mean(v), 1e-12);
  EXPECT_NEAR(acc.variance(), variance(v), 1e-12);
}

// Property sweep: spearman of any vector with itself is 1, with its reverse
// is -1 (no ties).
class StatsSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(StatsSeedSweep, SpearmanSelfAndReverse) {
  util::Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<double> v;
  for (int i = 0; i < 50; ++i) v.push_back(rng.uniform());
  EXPECT_NEAR(spearman(v, v), 1.0, 1e-9);
  std::vector<double> neg;
  for (double x : v) neg.push_back(-x);
  EXPECT_NEAR(spearman(v, neg), -1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsSeedSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace sensei::util
