#include "util/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace sensei::util {
namespace {

TEST(Stats, MeanAndVariance) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
  EXPECT_DOUBLE_EQ(variance(v), 2.0);
  EXPECT_DOUBLE_EQ(stddev(v), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(sum(v), 15.0);
}

TEST(Stats, EmptyInputsAreSafe) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(variance(empty), 0.0);
  EXPECT_DOUBLE_EQ(min_of(empty), 0.0);
  EXPECT_DOUBLE_EQ(max_of(empty), 0.0);
  EXPECT_DOUBLE_EQ(percentile(empty, 50), 0.0);
  EXPECT_DOUBLE_EQ(pearson(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(spearman(empty, empty), 0.0);
}

TEST(Stats, MinMax) {
  std::vector<double> v = {3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(min_of(v), -1.0);
  EXPECT_DOUBLE_EQ(max_of(v), 7.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v = {0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 12.5), 5.0);  // between first two samples
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> yn = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, yn), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateVarianceIsZero) {
  std::vector<double> x = {1, 1, 1};
  std::vector<double> y = {2, 5, 9};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Stats, RanksWithTies) {
  std::vector<double> v = {10, 20, 20, 30};
  auto r = ranks(v);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, SpearmanMonotonicNonlinear) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {1, 8, 27, 64, 125};  // monotone but nonlinear
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Stats, DiscordantFraction) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> same = {10, 20, 30};
  EXPECT_DOUBLE_EQ(discordant_fraction(x, same), 0.0);
  std::vector<double> reversed = {30, 20, 10};
  EXPECT_DOUBLE_EQ(discordant_fraction(x, reversed), 1.0);
}

TEST(Stats, DiscordantFractionSkipsTies) {
  std::vector<double> x = {1, 1, 2};
  std::vector<double> y = {5, 9, 9};
  // Pairs: (0,1) tie in x, (1,2) tie in y, (0,2) concordant -> 0 discordant.
  EXPECT_DOUBLE_EQ(discordant_fraction(x, y), 0.0);
}

TEST(Stats, MeanRelativeError) {
  std::vector<double> pred = {1.1, 1.8};
  std::vector<double> truth = {1.0, 2.0};
  EXPECT_NEAR(mean_relative_error(pred, truth), (0.1 + 0.1) / 2.0, 1e-12);
}

TEST(Stats, MeanRelativeErrorSkipsZeroTruth) {
  std::vector<double> pred = {1.0, 5.0};
  std::vector<double> truth = {0.0, 4.0};
  EXPECT_NEAR(mean_relative_error(pred, truth), 0.25, 1e-12);
}

TEST(Stats, Rmse) {
  std::vector<double> pred = {1, 2};
  std::vector<double> truth = {2, 4};
  EXPECT_NEAR(rmse(pred, truth), std::sqrt((1.0 + 4.0) / 2.0), 1e-12);
}

TEST(Stats, EmpiricalCdfIsMonotone) {
  auto cdf = empirical_cdf({5, 1, 3, 3});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.front().first, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().first, 5.0);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].first, cdf[i].first);
    EXPECT_LT(cdf[i - 1].second, cdf[i].second);
  }
}

TEST(Stats, Normalize01) {
  auto n = normalize01({2, 4, 6});
  EXPECT_DOUBLE_EQ(n[0], 0.0);
  EXPECT_DOUBLE_EQ(n[1], 0.5);
  EXPECT_DOUBLE_EQ(n[2], 1.0);
  auto c = normalize01({3, 3});
  EXPECT_DOUBLE_EQ(c[0], 0.5);
  EXPECT_DOUBLE_EQ(c[1], 0.5);
}

TEST(Stats, Clamp) {
  EXPECT_DOUBLE_EQ(clamp(5, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0, 1), 0.5);
}

TEST(Stats, AccumulatorMatchesBatch) {
  std::vector<double> v = {1.5, 2.5, -3.0, 4.0, 0.0};
  Accumulator acc;
  for (double x : v) acc.add(x);
  EXPECT_EQ(acc.count(), v.size());
  EXPECT_NEAR(acc.mean(), mean(v), 1e-12);
  EXPECT_NEAR(acc.variance(), variance(v), 1e-12);
}

// The fleet aggregation primitives: a mergeable Welford accumulator and a
// bounded-memory quantile sketch (util/stats.h).

TEST(MergeableAccumulator, MatchesPlainWelfordBitForBit) {
  util::Rng rng(7);
  Accumulator plain;
  MergeableAccumulator merged;
  for (int i = 0; i < 5000; ++i) {
    double x = rng.normal(3.0, 2.0);
    plain.add(x);
    merged.add(x);
    // Identical update sequence -> identical running state, not merely close.
    ASSERT_EQ(plain.mean(), merged.mean());
    ASSERT_EQ(plain.variance(), merged.variance());
  }
  EXPECT_EQ(plain.count(), merged.count());
}

TEST(MergeableAccumulator, TracksExactExtremes) {
  MergeableAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.min(), 0.0);  // empty
  EXPECT_DOUBLE_EQ(acc.max(), 0.0);
  for (double x : {3.0, -1.5, 7.25, 2.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.min(), -1.5);
  EXPECT_DOUBLE_EQ(acc.max(), 7.25);
}

TEST(MergeableAccumulator, MergeEquivalentToSingleStream) {
  util::Rng rng(11);
  std::vector<double> data;
  for (int i = 0; i < 4096; ++i) data.push_back(rng.uniform() * 100.0 - 20.0);

  Accumulator single;
  for (double x : data) single.add(x);

  // Any contiguous sharding, folded in shard order, must agree with the
  // single stream to floating-point reassociation tolerance — and the
  // extremes exactly.
  for (size_t shards : {1u, 2u, 4u, 7u, 16u}) {
    std::vector<MergeableAccumulator> parts(shards);
    for (size_t i = 0; i < data.size(); ++i) {
      parts[i * shards / data.size()].add(data[i]);
    }
    MergeableAccumulator total;
    for (const auto& p : parts) total.merge(p);
    EXPECT_EQ(total.count(), data.size());
    EXPECT_NEAR(total.mean(), single.mean(), 1e-9 * std::abs(single.mean()));
    EXPECT_NEAR(total.variance(), single.variance(), 1e-9 * single.variance());
    EXPECT_DOUBLE_EQ(total.min(), min_of(data));
    EXPECT_DOUBLE_EQ(total.max(), max_of(data));
  }
}

TEST(MergeableAccumulator, FixedMergeOrderIsDeterministic) {
  // The fleet's bit-identity contract: the same per-part accumulators folded
  // in the same order give the same doubles, however the parts were computed.
  util::Rng rng(13);
  std::vector<MergeableAccumulator> parts(8);
  for (int i = 0; i < 800; ++i) parts[i % 8].add(rng.normal(0.0, 1.0));
  MergeableAccumulator a, b;
  for (const auto& p : parts) a.merge(p);
  for (const auto& p : parts) b.merge(p);
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

// Empirical CDF position of `x` in sorted `data` (rank / n).
double rank_of(const std::vector<double>& sorted_data, double x) {
  auto it = std::lower_bound(sorted_data.begin(), sorted_data.end(), x);
  return static_cast<double>(it - sorted_data.begin()) /
         static_cast<double>(sorted_data.size());
}

TEST(QuantileSketch, RankErrorWithinBound) {
  util::Rng rng(17);
  std::vector<double> data;
  QuantileSketch sketch;
  for (int i = 0; i < 20000; ++i) {
    // A lumpy mixture, so the test exercises uneven densities.
    double x = rng.chance(0.3) ? rng.normal(50.0, 1.0) : rng.uniform() * 100.0;
    data.push_back(x);
    sketch.add(x);
  }
  EXPECT_EQ(sketch.count(), data.size());
  std::sort(data.begin(), data.end());
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), data.front());
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), data.back());
  const double bound = 2.0 / static_cast<double>(QuantileSketch::kCompressed) + 1e-3;
  for (double q : {0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    double est = sketch.quantile(q);
    EXPECT_NEAR(rank_of(data, est), q, bound) << "q=" << q;
  }
}

TEST(QuantileSketch, MergedShardsStayWithinBound) {
  util::Rng rng(19);
  std::vector<double> data;
  std::vector<QuantileSketch> shards(6);
  for (int i = 0; i < 18000; ++i) {
    double x = rng.exponential(0.1);
    data.push_back(x);
    shards[static_cast<size_t>(i) % shards.size()].add(x);
  }
  QuantileSketch total;
  for (const auto& s : shards) total.merge(s);
  EXPECT_EQ(total.count(), data.size());
  std::sort(data.begin(), data.end());
  EXPECT_DOUBLE_EQ(total.min(), data.front());
  EXPECT_DOUBLE_EQ(total.max(), data.back());
  // Merging re-compresses, so allow one extra compression's worth of rank
  // slack over the single-stream bound.
  const double bound = 3.0 / static_cast<double>(QuantileSketch::kCompressed) + 1e-3;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    double est = total.quantile(q);
    EXPECT_NEAR(rank_of(data, est), q, bound) << "q=" << q;
  }
}

TEST(QuantileSketch, FixedMergeOrderIsDeterministic) {
  util::Rng rng(23);
  std::vector<QuantileSketch> parts(5);
  for (int i = 0; i < 3000; ++i) parts[static_cast<size_t>(i) % 5].add(rng.uniform());
  QuantileSketch a, b;
  for (const auto& p : parts) a.merge(p);
  for (const auto& p : parts) b.merge(p);
  for (double q : {0.1, 0.5, 0.9}) EXPECT_EQ(a.quantile(q), b.quantile(q));
}

// Property sweep: spearman of any vector with itself is 1, with its reverse
// is -1 (no ties).
class StatsSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(StatsSeedSweep, SpearmanSelfAndReverse) {
  util::Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<double> v;
  for (int i = 0; i < 50; ++i) v.push_back(rng.uniform());
  EXPECT_NEAR(spearman(v, v), 1.0, 1e-9);
  std::vector<double> neg;
  for (double x : v) neg.push_back(-x);
  EXPECT_NEAR(spearman(v, neg), -1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsSeedSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace sensei::util
