#include "util/table.h"

#include <gtest/gtest.h>

namespace sensei::util {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.add_row(std::vector<std::string>{"alpha", "1"});
  t.add_row(std::vector<std::string>{"beta", "22"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, DoubleRowFormatting) {
  Table t({"a", "b"});
  t.add_row(std::vector<double>{1.23456, 2.0}, 2);
  std::string s = t.to_string();
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("2.00"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row(std::vector<std::string>{"only"});
  EXPECT_NO_THROW(t.to_string());
  EXPECT_NO_THROW(t.to_csv());
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"name", "desc"});
  t.add_row(std::vector<std::string>{"a,b", "say \"hi\""});
  std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvHasHeaderLine) {
  Table t({"x", "y"});
  t.add_row(std::vector<std::string>{"1", "2"});
  std::string csv = t.to_csv();
  EXPECT_EQ(csv.substr(0, 4), "x,y\n");
}

TEST(Table, FormatDoublePrecision) {
  EXPECT_EQ(Table::format_double(3.14159, 2), "3.14");
  EXPECT_EQ(Table::format_double(-1.0, 0), "-1");
}

TEST(Table, BannerContainsTitle) {
  EXPECT_EQ(banner("Figure 1"), "== Figure 1 ==\n");
}

}  // namespace
}  // namespace sensei::util
