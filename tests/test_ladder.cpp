#include "media/ladder.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sensei::media {
namespace {

TEST(Ladder, DefaultMatchesPaper) {
  BitrateLadder ladder;
  ASSERT_EQ(ladder.level_count(), 5u);
  EXPECT_DOUBLE_EQ(ladder.kbps(0), 300);
  EXPECT_DOUBLE_EQ(ladder.kbps(4), 2850);
  EXPECT_DOUBLE_EQ(ladder.lowest_kbps(), 300);
  EXPECT_DOUBLE_EQ(ladder.highest_kbps(), 2850);
}

TEST(Ladder, HighestLevelAtMost) {
  BitrateLadder ladder;
  EXPECT_EQ(ladder.highest_level_at_most(100), 0u);   // below lowest -> 0
  EXPECT_EQ(ladder.highest_level_at_most(300), 0u);
  EXPECT_EQ(ladder.highest_level_at_most(760), 1u);
  EXPECT_EQ(ladder.highest_level_at_most(1850), 3u);
  EXPECT_EQ(ladder.highest_level_at_most(99999), 4u);
}

TEST(Ladder, LevelOf) {
  BitrateLadder ladder;
  EXPECT_EQ(ladder.level_of(1200), 2);
  EXPECT_EQ(ladder.level_of(1201), -1);
}

TEST(Ladder, CustomLadderValidation) {
  EXPECT_THROW(BitrateLadder(std::vector<double>{}), std::runtime_error);
  EXPECT_THROW(BitrateLadder({500, 300}), std::runtime_error);
  BitrateLadder ok({100, 200});
  EXPECT_EQ(ok.level_count(), 2u);
}

}  // namespace
}  // namespace sensei::media
