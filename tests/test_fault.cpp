// net::FaultPlan gates (net/fault.h):
//  - scripted-event validation;
//  - seeded-random realizations: deterministic in the seed, sorted, shaped
//    by the spec, scaled by the intensity knob;
//  - point queries (capacity_factor_at, rtt_extra_s) with overlap semantics
//    (min factor / max extra — faults don't stack);
//  - apply_to_trace materialization: interval scaling snaps outward to the
//    sample grid, looping traces unroll whole periods, finite traces stay
//    finite, names and intervals survive.
#include "net/fault.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "net/trace.h"

namespace sensei::net {
namespace {

FaultEvent make_event(FaultKind kind, double start, double duration, double magnitude) {
  FaultEvent e;
  e.kind = kind;
  e.start_s = start;
  e.duration_s = duration;
  e.magnitude = magnitude;
  return e;
}

TEST(FaultPlan, RejectsMalformedEvents) {
  FaultPlan plan;
  EXPECT_THROW(plan.add(make_event(FaultKind::kOutage, -1.0, 2.0, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(plan.add(make_event(FaultKind::kOutage, 1.0, 0.0, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(plan.add(make_event(FaultKind::kOutage, 1.0, -2.0, 0.0)),
               std::invalid_argument);
  // Collapse factor must be inside (0, 1): 0 is an outage, 1 is a no-op.
  EXPECT_THROW(plan.add(make_event(FaultKind::kCapacityCollapse, 1.0, 2.0, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(plan.add(make_event(FaultKind::kCapacityCollapse, 1.0, 2.0, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(plan.add(make_event(FaultKind::kRttSpike, 1.0, 2.0, -0.5)),
               std::invalid_argument);
  EXPECT_TRUE(plan.empty());
  plan.add(make_event(FaultKind::kCapacityCollapse, 1.0, 2.0, 0.5));
  EXPECT_EQ(plan.events().size(), 1u);
}

TEST(FaultPlan, RandomRealizationIsSeededSortedAndSpecShaped) {
  RandomFaultSpec spec;
  spec.horizon_s = 300.0;
  spec.mean_outages = 4.0;
  spec.mean_collapses = 3.0;
  spec.collapse_factor = 0.2;
  spec.mean_rtt_spikes = 5.0;
  spec.rtt_spike_extra_s = 0.7;

  FaultPlan a = FaultPlan::random(spec, 99);
  FaultPlan b = FaultPlan::random(spec, 99);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].start_s, b.events()[i].start_s);
    EXPECT_EQ(a.events()[i].duration_s, b.events()[i].duration_s);
    EXPECT_EQ(a.events()[i].magnitude, b.events()[i].magnitude);
  }
  ASSERT_GT(a.events().size(), 3u);  // ~12 expected events
  double prev = 0.0;
  for (const FaultEvent& e : a.events()) {
    EXPECT_GE(e.start_s, prev);
    EXPECT_LT(e.start_s, spec.horizon_s);
    EXPECT_GT(e.duration_s, 0.0);
    if (e.kind == FaultKind::kCapacityCollapse) EXPECT_EQ(e.magnitude, 0.2);
    if (e.kind == FaultKind::kRttSpike) EXPECT_EQ(e.magnitude, 0.7);
    prev = e.start_s;
  }
  // A different seed draws a different realization.
  FaultPlan c = FaultPlan::random(spec, 100);
  bool differs = c.events().size() != a.events().size();
  for (size_t i = 0; !differs && i < a.events().size(); ++i) {
    differs = a.events()[i].start_s != c.events()[i].start_s;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, IntensityScalesCountsAndZeroDisables) {
  RandomFaultSpec spec;
  spec.mean_outages = 2.0;
  spec.mean_collapses = 1.0;
  spec.mean_rtt_spikes = 2.0;

  EXPECT_TRUE(spec.scaled(0.0).empty());
  EXPECT_TRUE(FaultPlan::random(spec.scaled(0.0), 7).empty());
  EXPECT_TRUE(RandomFaultSpec().empty());
  EXPECT_TRUE(FaultPlan::random(RandomFaultSpec(), 7).empty());

  // Mean realized counts scale with the knob (shapes untouched): average
  // over seeds to beat Poisson noise.
  size_t at_1 = 0, at_4 = 0;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    at_1 += FaultPlan::random(spec, seed).events().size();
    at_4 += FaultPlan::random(spec.scaled(4.0), seed).events().size();
  }
  double ratio = static_cast<double>(at_4) / static_cast<double>(at_1);
  EXPECT_NEAR(ratio, 4.0, 1.0);
}

TEST(FaultPlan, PointQueriesUseMinFactorAndMaxExtra) {
  FaultPlan plan;
  plan.add(make_event(FaultKind::kCapacityCollapse, 1.0, 4.0, 0.4));
  plan.add(make_event(FaultKind::kOutage, 2.0, 1.0, 0.0));
  plan.add(make_event(FaultKind::kRttSpike, 1.0, 2.0, 0.5));
  plan.add(make_event(FaultKind::kRttSpike, 2.0, 2.0, 0.9));

  EXPECT_EQ(plan.capacity_factor_at(0.5), 1.0);   // before everything
  EXPECT_EQ(plan.capacity_factor_at(1.5), 0.4);   // collapse only
  EXPECT_EQ(plan.capacity_factor_at(2.5), 0.0);   // outage wins inside overlap
  EXPECT_EQ(plan.capacity_factor_at(3.5), 0.4);   // outage over, collapse active
  EXPECT_EQ(plan.capacity_factor_at(5.0), 1.0);   // end is exclusive

  EXPECT_EQ(plan.rtt_extra_s(0.5), 0.0);
  EXPECT_EQ(plan.rtt_extra_s(1.5), 0.5);
  EXPECT_EQ(plan.rtt_extra_s(2.5), 0.9);  // max over overlapping spikes, not sum
  EXPECT_EQ(plan.rtt_extra_s(3.5), 0.9);
  EXPECT_EQ(plan.rtt_extra_s(4.0), 0.0);

  // RTT spikes never affect capacity; capacity faults never affect RTT.
  EXPECT_EQ(plan.capacity_horizon_s(), 5.0);
}

TEST(FaultPlan, ApplyToTraceScalesOverlappedIntervals) {
  ThroughputTrace base("cellA", {1000.0, 2000.0, 3000.0, 4000.0}, 1.0);
  FaultPlan plan;
  plan.add(make_event(FaultKind::kOutage, 1.5, 1.0, 0.0));        // [1.5, 2.5)
  plan.add(make_event(FaultKind::kCapacityCollapse, 0.5, 3.0, 0.25));  // [0.5, 3.5)

  ThroughputTrace faulted = plan.apply_to_trace(base);
  EXPECT_EQ(faulted.name(), "cellA");
  EXPECT_EQ(faulted.interval_s(), 1.0);
  EXPECT_FALSE(faulted.finite());
  ASSERT_EQ(faulted.sample_count(), 4u);
  // Windows snap outward to the 1 s grid; min factor wins in the overlap.
  EXPECT_EQ(faulted.samples_kbps()[0], 250.0);   // collapse only
  EXPECT_EQ(faulted.samples_kbps()[1], 0.0);     // outage ∩ collapse -> outage
  EXPECT_EQ(faulted.samples_kbps()[2], 0.0);
  EXPECT_EQ(faulted.samples_kbps()[3], 1000.0);  // collapse tail [3, 3.5)
}

TEST(FaultPlan, ApplyToTraceUnrollsLoopingTraces) {
  ThroughputTrace base("loop", {1000.0, 2000.0, 3000.0, 4000.0}, 1.0);
  FaultPlan plan;
  plan.add(make_event(FaultKind::kOutage, 5.0, 1.0, 0.0));  // second period

  ThroughputTrace faulted = plan.apply_to_trace(base);
  EXPECT_FALSE(faulted.finite());
  ASSERT_EQ(faulted.sample_count(), 8u);  // ceil(6 / 4) = 2 whole periods
  for (size_t i = 0; i < 8; ++i) {
    double expected = i == 5 ? 0.0 : base.samples_kbps()[i % 4];
    EXPECT_EQ(faulted.samples_kbps()[i], expected) << "sample " << i;
  }
}

TEST(FaultPlan, ApplyToTraceKeepsFiniteTracesFinite) {
  ThroughputTrace base("fin", {1000.0, 2000.0, 3000.0, 4000.0}, 1.0, /*finite=*/true);
  FaultPlan plan;
  plan.add(make_event(FaultKind::kOutage, 5.0, 1.0, 0.0));  // beyond the end

  // A finite trace never unrolls (it has no second period to fault) and a
  // window past its end touches nothing.
  ThroughputTrace faulted = plan.apply_to_trace(base);
  EXPECT_TRUE(faulted.finite());
  ASSERT_EQ(faulted.sample_count(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(faulted.samples_kbps()[i], base.samples_kbps()[i]);
  }

  FaultPlan inside;
  inside.add(make_event(FaultKind::kOutage, 1.0, 1.0, 0.0));
  ThroughputTrace hit = inside.apply_to_trace(base);
  EXPECT_TRUE(hit.finite());
  EXPECT_EQ(hit.samples_kbps()[1], 0.0);
  EXPECT_EQ(hit.samples_kbps()[2], 3000.0);
}

TEST(FaultPlan, ApplyToTraceWithoutCapacityFaultsIsIdentity) {
  ThroughputTrace base("rtt-only", {1500.0, 2500.0}, 1.0);
  FaultPlan plan;
  plan.add(make_event(FaultKind::kRttSpike, 0.0, 10.0, 0.5));
  EXPECT_EQ(plan.capacity_horizon_s(), 0.0);
  ThroughputTrace same = plan.apply_to_trace(base);
  ASSERT_EQ(same.sample_count(), base.sample_count());
  for (size_t i = 0; i < base.sample_count(); ++i) {
    EXPECT_EQ(same.samples_kbps()[i], base.samples_kbps()[i]);
  }

  FaultPlan capacity;
  capacity.add(make_event(FaultKind::kOutage, 0.0, 1.0, 0.0));
  // An empty (default-constructed) trace has nothing to fault; the non-empty
  // constructor rejects empties itself, so the plan's own guard is what a
  // default-constructed trace reaches.
  EXPECT_THROW(capacity.apply_to_trace(ThroughputTrace()), std::invalid_argument);
}

}  // namespace
}  // namespace sensei::net
