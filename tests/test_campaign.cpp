#include "crowd/campaign.h"

#include <gtest/gtest.h>

#include "media/dataset.h"

namespace sensei::crowd {
namespace {

class CampaignTest : public ::testing::Test {
 protected:
  media::EncodedVideo clip_ = media::Encoder().encode(media::Dataset::soccer1_clip());
  GroundTruthQoE oracle_;
  sim::RenderedVideo reference_ = sim::RenderedVideo::pristine(clip_);

  std::vector<sim::RenderedVideo> make_series() {
    return sim::rebuffer_series(clip_, 1.0);
  }
};

TEST_F(CampaignTest, CollectsRequestedRatings) {
  Campaign campaign(oracle_, RaterConfig(), CampaignConfig(), 1);
  auto result = campaign.run(make_series(), reference_, 8);
  ASSERT_EQ(result.mos.size(), clip_.num_chunks());
  for (size_t count : result.rating_counts) EXPECT_GE(count, 8u);
  EXPECT_GT(result.participants_recruited, 0u);
  EXPECT_GT(result.cost_usd, 0.0);
  EXPECT_GT(result.elapsed_minutes, 0.0);
}

TEST_F(CampaignTest, MosTracksOracleOrdering) {
  Campaign campaign(oracle_, RaterConfig(), CampaignConfig(), 2);
  auto series = make_series();
  auto result = campaign.run(series, reference_, 25);
  // The most damaging incident position (the goal, chunk 3) must receive a
  // lower MOS than the least damaging one.
  double goal_mos = result.mos[3];
  double replay_mos = result.mos[5];
  EXPECT_LT(goal_mos, replay_mos);
}

TEST_F(CampaignTest, ReferenceMosIsHigh) {
  Campaign campaign(oracle_, RaterConfig(), CampaignConfig(), 3);
  auto result = campaign.run(make_series(), reference_, 10);
  EXPECT_GT(result.reference_mos, 0.6);
}

TEST_F(CampaignTest, SpammersAreRejected) {
  RaterConfig all_spam;
  all_spam.spammer_fraction = 0.5;
  CampaignConfig cfg;
  cfg.max_participants = 4000;
  Campaign campaign(oracle_, all_spam, cfg, 4);
  auto result = campaign.run(make_series(), reference_, 5);
  // With half the pool spamming, a large share of participants is rejected.
  EXPECT_GT(result.participants_rejected, result.participants_recruited / 4);
}

TEST_F(CampaignTest, CostScalesWithRatingDepth) {
  Campaign c1(oracle_, RaterConfig(), CampaignConfig(), 5);
  Campaign c2(oracle_, RaterConfig(), CampaignConfig(), 5);
  auto cheap = c1.run(make_series(), reference_, 4);
  auto deep = c2.run(make_series(), reference_, 16);
  EXPECT_GT(deep.cost_usd, cheap.cost_usd * 2.5);
}

TEST_F(CampaignTest, CostMatchesHourlyRate) {
  Campaign campaign(oracle_, RaterConfig(), CampaignConfig(), 6);
  auto result = campaign.run(make_series(), reference_, 10);
  // Cost must equal watched minutes at $10/h.
  EXPECT_NEAR(result.cost_usd, result.watched_video_minutes * 10.0 / 60.0, 1e-6);
}

TEST_F(CampaignTest, InvalidArgumentsThrow) {
  Campaign campaign(oracle_, RaterConfig(), CampaignConfig(), 7);
  EXPECT_THROW(campaign.run({}, reference_, 5), std::runtime_error);
  EXPECT_THROW(campaign.run(make_series(), reference_, 0), std::runtime_error);
}

TEST_F(CampaignTest, DeterministicForSeed) {
  Campaign a(oracle_, RaterConfig(), CampaignConfig(), 42);
  Campaign b(oracle_, RaterConfig(), CampaignConfig(), 42);
  auto ra = a.run(make_series(), reference_, 6);
  auto rb = b.run(make_series(), reference_, 6);
  EXPECT_EQ(ra.mos, rb.mos);
  EXPECT_EQ(ra.cost_usd, rb.cost_usd);
}

}  // namespace
}  // namespace sensei::crowd
