// Resilience gates: session recovery (sim/session_engine.cpp timeout /
// retry / backoff states), SharedLink::abort, fleet cell failover, typed
// outcome causes and LivelockError, and the determinism contracts:
//  - fault realizations and fleet aggregates bit-identical across
//    ExperimentRunner thread counts and shard counts;
//  - faults disabled => aggregates bit-identical to the pinned pre-fault
//    baseline (the PR-over-PR no-regression gate);
//  - a seeded fault load from which at least a pinned fraction of disrupted
//    sessions recover.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "abr/registry.h"
#include "core/runner.h"
#include "media/dataset.h"
#include "net/fault.h"
#include "net/shared_link.h"
#include "net/trace.h"
#include "sim/fleet.h"
#include "sim/player.h"
#include "sim/session_engine.h"
#include "sim/simulator.h"
#include "sim/timeline.h"

namespace sensei::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

net::FaultEvent make_event(net::FaultKind kind, double start, double duration,
                           double magnitude) {
  net::FaultEvent e;
  e.kind = kind;
  e.start_s = start;
  e.duration_s = duration;
  e.magnitude = magnitude;
  return e;
}

PlayerConfig resilient_config() {
  PlayerConfig config;
  config.resilience.request_timeout_s = 2.0;
  config.resilience.max_retries = 20;
  config.resilience.backoff_base_s = 0.25;
  config.resilience.backoff_factor = 2.0;
  config.resilience.backoff_max_s = 2.0;
  return config;
}

class ResilienceTest : public ::testing::Test {
 protected:
  ResilienceTest() {
    media::Encoder encoder;
    video_ = std::make_unique<media::EncodedVideo>(encoder.encode(
        media::SourceVideo::generate("ResilVid", media::Genre::kSports, 60)));
  }

  // One session through the Simulator (the reference driver for both link
  // modes), returning its SessionResult.
  SessionResult run_one(const PlayerConfig& config, const net::ThroughputTrace& trace,
                        LinkMode mode, const net::FaultPlan* faults = nullptr,
                        size_t chunk_limit = static_cast<size_t>(-1)) {
    auto policy = abr::make_policy("bba");
    SessionSpec spec;
    spec.video = video_.get();
    spec.policy = policy.get();
    spec.chunk_limit = chunk_limit;
    auto results = Simulator(config).run({spec}, trace, mode, faults);
    return std::move(results[0].session);
  }

  std::unique_ptr<media::EncodedVideo> video_;
};

// ---- engine recovery --------------------------------------------------------

TEST_F(ResilienceTest, DedicatedSessionRetriesThroughAnOutageAndRecovers) {
  // Plenty of capacity outside a 20 s hard outage; a 2 s attempt budget
  // times out inside the window, bounded retries with backoff carry the
  // session across it.
  net::ThroughputTrace trace("steady", std::vector<double>(60, 12000.0), 1.0);
  net::FaultPlan plan;
  plan.add(make_event(net::FaultKind::kOutage, 6.0, 20.0, 0.0));
  net::ThroughputTrace faulted = plan.apply_to_trace(trace);

  SessionResult result = run_one(resilient_config(), faulted, LinkMode::kDedicated);
  EXPECT_EQ(result.outcome(), SessionOutcome::kCompleted);
  EXPECT_EQ(result.outcome_cause(), OutcomeCause::kNone);
  EXPECT_EQ(result.failed_chunk(), video_->num_chunks());
  ASSERT_EQ(result.chunks().size(), video_->num_chunks());

  ASSERT_NE(result.timeline(), nullptr);
  std::string why;
  EXPECT_TRUE(result.timeline()->check_invariants(&why)) << why;
  // The chunk straddling the outage carries its recovery spans: every timed
  // out attempt wastes exactly the request timeout, and the retry count,
  // waste, and backoff all land on the delivering chunk's trajectory.
  size_t retried_chunks = 0, total_retries = 0;
  for (const ChunkTrajectory& c : result.timeline()->chunks()) {
    if (c.retries == 0) {
      EXPECT_EQ(c.retry_wasted_s, 0.0);
      EXPECT_EQ(c.backoff_s, 0.0);
      continue;
    }
    ++retried_chunks;
    total_retries += c.retries;
    EXPECT_EQ(c.retry_wasted_s, static_cast<double>(c.retries) * 2.0);
    EXPECT_GT(c.backoff_s, 0.0);
  }
  EXPECT_GE(retried_chunks, 1u);
  // ~20 s outage / (2 s timeout + <=2 s backoff) -> at least 5 attempts.
  EXPECT_GE(total_retries, 5u);
}

TEST_F(ResilienceTest, RetryBudgetExhaustionIsATypedTimeoutOutage) {
  // A finite trace that simply ends: past 12 s the link is dead forever.
  net::ThroughputTrace trace("dies", std::vector<double>(12, 12000.0), 1.0,
                             /*finite=*/true);
  PlayerConfig config = resilient_config();
  config.resilience.max_retries = 3;

  SessionResult result = run_one(config, trace, LinkMode::kDedicated);
  EXPECT_EQ(result.outcome(), SessionOutcome::kOutage);
  EXPECT_EQ(result.outcome_cause(), OutcomeCause::kTimeoutBudget);
  ASSERT_LT(result.failed_chunk(), video_->num_chunks());
  EXPECT_EQ(result.failed_chunk(), result.chunks().size());
  ASSERT_NE(result.timeline(), nullptr);
  std::string why;
  EXPECT_TRUE(result.timeline()->check_invariants(&why)) << why;

  // Without resilience the same dead link is an immediate kDeadLink outage,
  // at the same chunk.
  SessionResult bare = run_one(PlayerConfig(), trace, LinkMode::kDedicated);
  EXPECT_EQ(bare.outcome(), SessionOutcome::kOutage);
  EXPECT_EQ(bare.outcome_cause(), OutcomeCause::kDeadLink);
  EXPECT_EQ(bare.failed_chunk(), result.failed_chunk());
}

TEST_F(ResilienceTest, SharedSessionsAbortTimedOutTransfersAndRecover) {
  net::ThroughputTrace trace("steady", std::vector<double>(60, 9000.0), 1.0);
  net::FaultPlan plan;
  plan.add(make_event(net::FaultKind::kOutage, 5.0, 15.0, 0.0));
  net::ThroughputTrace faulted = plan.apply_to_trace(trace);

  PlayerConfig config = resilient_config();
  std::vector<std::unique_ptr<AbrPolicy>> policies;
  std::vector<SessionSpec> specs;
  for (size_t k = 0; k < 3; ++k) {
    policies.push_back(abr::make_policy("bba"));
    SessionSpec spec;
    spec.video = video_.get();
    spec.policy = policies.back().get();
    spec.start_s = static_cast<double>(k) * 1.5;
    specs.push_back(spec);
  }
  auto results = Simulator(config).run(specs, faulted, LinkMode::kShared);
  size_t total_retries = 0;
  for (const auto& r : results) {
    EXPECT_EQ(r.session.outcome(), SessionOutcome::kCompleted);
    EXPECT_EQ(r.session.outcome_cause(), OutcomeCause::kNone);
    ASSERT_NE(r.session.timeline(), nullptr);
    std::string why;
    EXPECT_TRUE(r.session.timeline()->check_invariants(&why)) << why;
    for (const ChunkTrajectory& c : r.session.timeline()->chunks()) {
      total_retries += c.retries;
    }
  }
  // All three sessions sat inside the outage; each must have timed out at
  // least once (shared-link aborts exercised) and recovered.
  EXPECT_GE(total_retries, 3u);

  // Determinism: the identical run is bit-identical, chunk for chunk.
  auto again = Simulator(config).run(specs, faulted, LinkMode::kShared);
  ASSERT_EQ(again.size(), results.size());
  for (size_t k = 0; k < results.size(); ++k) {
    const auto& a = results[k].session.chunks();
    const auto& b = again[k].session.chunks();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].download_start_s, b[i].download_start_s);
      EXPECT_EQ(a[i].download_time_s, b[i].download_time_s);
      EXPECT_EQ(a[i].rebuffer_s, b[i].rebuffer_s);
    }
  }
}

TEST_F(ResilienceTest, RttSpikesDelayRequestsWithoutConsumingCapacity) {
  net::ThroughputTrace trace("steady", std::vector<double>(60, 12000.0), 1.0);
  net::FaultPlan plan;
  plan.add(make_event(net::FaultKind::kRttSpike, 0.0, 4.0, 0.4));

  PlayerConfig config;  // resilience disabled: spikes work on their own
  SessionResult spiked = run_one(config, trace, LinkMode::kDedicated, &plan);
  SessionResult clean = run_one(config, trace, LinkMode::kDedicated);
  ASSERT_NE(spiked.timeline(), nullptr);
  std::string why;
  EXPECT_TRUE(spiked.timeline()->check_invariants(&why)) << why;
  // The first request (issued at t=0, inside the spike) pays the extra RTT.
  EXPECT_EQ(spiked.timeline()->chunks()[0].rtt_s, config.rtt_s + 0.4);
  EXPECT_EQ(spiked.startup_delay_s(), clean.startup_delay_s() + 0.4);
  // Chunks requested after the spike window are untouched.
  EXPECT_EQ(spiked.timeline()->chunks().back().rtt_s, config.rtt_s);
}

TEST_F(ResilienceTest, BackoffJitterIsSeededAndDeterministic) {
  net::ThroughputTrace trace("steady", std::vector<double>(60, 12000.0), 1.0);
  net::FaultPlan plan;
  plan.add(make_event(net::FaultKind::kOutage, 6.0, 12.0, 0.0));
  net::ThroughputTrace faulted = plan.apply_to_trace(trace);

  PlayerConfig config = resilient_config();
  config.resilience.backoff_jitter_frac = 0.5;
  config.resilience.jitter_seed = 11;
  SessionResult a = run_one(config, faulted, LinkMode::kDedicated);
  SessionResult b = run_one(config, faulted, LinkMode::kDedicated);
  config.resilience.jitter_seed = 12;
  SessionResult c = run_one(config, faulted, LinkMode::kDedicated);

  ASSERT_EQ(a.chunks().size(), b.chunks().size());
  bool seed_differs = false;
  for (size_t i = 0; i < a.chunks().size(); ++i) {
    EXPECT_EQ(a.chunks()[i].download_time_s, b.chunks()[i].download_time_s);
    if (i < c.chunks().size() &&
        a.chunks()[i].download_time_s != c.chunks()[i].download_time_s) {
      seed_differs = true;
    }
  }
  // A different jitter seed shifts the backoff of the retried chunk, and
  // with it that chunk's recorded download time.
  EXPECT_TRUE(seed_differs);
}

TEST_F(ResilienceTest, AbandonmentAndCompletionCarryTypedCauses) {
  net::ThroughputTrace trace("steady", std::vector<double>(60, 12000.0), 1.0);
  SessionResult full = run_one(PlayerConfig(), trace, LinkMode::kDedicated);
  EXPECT_EQ(full.outcome_cause(), OutcomeCause::kNone);
  EXPECT_EQ(full.failed_chunk(), video_->num_chunks());

  SessionResult left = run_one(PlayerConfig(), trace, LinkMode::kDedicated,
                               nullptr, /*chunk_limit=*/5);
  EXPECT_EQ(left.outcome(), SessionOutcome::kCompleted);
  EXPECT_EQ(left.outcome_cause(), OutcomeCause::kAbandoned);
  EXPECT_EQ(left.failed_chunk(), 5u);
  EXPECT_EQ(left.chunks().size(), 5u);

  EXPECT_EQ(to_string(OutcomeCause::kAbandoned), std::string("abandoned"));
  EXPECT_EQ(to_string(OutcomeCause::kTimeoutBudget), std::string("timeout_budget"));
}

TEST_F(ResilienceTest, RejectsNonsenseResilienceConfigs) {
  net::ThroughputTrace trace("steady", std::vector<double>(10, 8000.0), 1.0);
  auto expect_throws = [&](PlayerConfig config) {
    auto policy = abr::make_policy("bba");
    SessionSpec spec;
    spec.video = video_.get();
    spec.policy = policy.get();
    EXPECT_THROW(Simulator(config).run({spec}, trace, LinkMode::kDedicated),
                 std::runtime_error);
  };
  PlayerConfig bad = resilient_config();
  bad.resilience.request_timeout_s = 0.0;
  expect_throws(bad);
  bad = resilient_config();
  bad.resilience.backoff_base_s = -1.0;
  expect_throws(bad);
  bad = resilient_config();
  bad.resilience.backoff_factor = 0.5;
  expect_throws(bad);
  bad = resilient_config();
  bad.resilience.backoff_jitter_frac = 1.0;
  expect_throws(bad);
}

// ---- SharedLink::abort ------------------------------------------------------

TEST(SharedLinkAbort, FreezesGrantsAndRestoresFullCapacity) {
  net::ThroughputTrace trace("flat", {8000.0}, 1.0);  // 8 Mbps, loops
  net::SharedLink link(trace);
  size_t a = link.begin(1000.0 * 125.0, 0.0);  // 1000 kbit = 1 Mbit
  size_t b = link.begin(1000.0 * 125.0, 0.0);
  // Two equal transfers split 8 Mbps: each finishes 1 Mbit in 0.25 s.
  link.advance_to(0.1);  // each granted 0.4 Mbit so far
  link.abort(a);

  net::SharedLink::TransferView va = link.view(a);
  EXPECT_TRUE(va.aborted);
  EXPECT_FALSE(va.finished);
  EXPECT_EQ(va.finish_s, 0.1);
  EXPECT_NEAR(va.granted_bits, 0.4e6, 1.0);

  // The survivor now owns the full link: remaining 0.6 Mbit at 8 Mbps.
  EXPECT_NEAR(link.next_completion_s(), 0.175, 1e-9);
  link.advance_to(0.2);
  ASSERT_EQ(link.completions_sorted().size(), 1u);
  EXPECT_EQ(link.completions_sorted()[0].id, b);
  EXPECT_NEAR(link.completions_sorted()[0].finish_s, 0.175, 1e-9);

  // Aborting twice, or aborting a finished transfer, is a driver bug.
  EXPECT_THROW(link.abort(a), std::runtime_error);
  EXPECT_THROW(link.abort(b), std::runtime_error);
  EXPECT_THROW(link.abort(999), std::runtime_error);
}

// ---- LivelockError ----------------------------------------------------------

TEST(LivelockErrorTest, NamesLoopStuckSessionAndInstant) {
  LivelockError err("fleet cell 3", 7, 12.5);
  EXPECT_EQ(err.stuck_session(), 7u);
  EXPECT_EQ(err.sim_time_s(), 12.5);
  std::string what = err.what();
  EXPECT_NE(what.find("fleet cell 3"), std::string::npos);
  EXPECT_NE(what.find("stuck session 7"), std::string::npos);
  EXPECT_NE(what.find("12.5"), std::string::npos);
  // Typed, but still catchable where the old sentinel string was.
  const std::runtime_error& base = err;
  EXPECT_NE(std::string(base.what()).find("event loop stalled"), std::string::npos);
}

// ---- fleet ------------------------------------------------------------------

class FleetResilienceTest : public ::testing::Test {
 protected:
  FleetResilienceTest() {
    media::Encoder encoder;
    videos_.push_back(encoder.encode(
        media::SourceVideo::generate("GateA", media::Genre::kSports, 60)));
    videos_.push_back(encoder.encode(
        media::SourceVideo::generate("GateB", media::Genre::kNature, 80)));
    for (const auto& v : videos_) video_ptrs_.push_back(&v);
  }

  FleetConfig gate_config() const {
    FleetConfig config;
    config.num_cells = 5;
    config.seed = 880808;
    config.workload.arrival_rate_per_s = 0.25;
    config.workload.arrival_window_s = 150.0;
    config.workload.abandon_fraction = 0.3;
    config.workload.mean_abandon_chunks = 8.0;
    return config;
  }

  FleetConfig faulty_config() const {
    FleetConfig config = gate_config();
    config.player.resilience.request_timeout_s = 6.0;
    config.player.resilience.max_retries = 4;
    config.player.resilience.backoff_base_s = 0.5;
    config.player.resilience.backoff_max_s = 3.0;
    config.player.resilience.backoff_jitter_frac = 0.1;
    config.player.resilience.jitter_seed = 99;
    config.faults.trace_faults.horizon_s = 250.0;
    config.faults.trace_faults.mean_outages = 3.0;
    config.faults.trace_faults.outage_mean_duration_s = 5.0;
    config.faults.trace_faults.mean_collapses = 2.0;
    config.faults.trace_faults.mean_rtt_spikes = 2.0;
    config.faults.cell_failure_fraction = 0.5;
    config.faults.reconnect_delay_s = 2.0;
    config.faults.fallback_scale = 0.5;
    return config;
  }

  std::vector<media::EncodedVideo> videos_;
  std::vector<const media::EncodedVideo*> video_ptrs_;
};

// Faults disabled => the fleet reproduces the pre-fault aggregates bit for
// bit. The literals below were captured from the PR 8 build (before any
// fault/resilience code existed) for this exact scenario; any drift means
// the disabled path is not actually dormant.
TEST_F(FleetResilienceTest, FaultsDisabledMatchesPinnedPreFaultBaseline) {
  core::ExperimentRunner runner(1);
  FleetAggregates agg = FleetSimulator(gate_config()).run(video_ptrs_, runner);

  EXPECT_EQ(agg.sessions, 197u);
  EXPECT_EQ(agg.chunks, 2843u);
  EXPECT_EQ(agg.outages, 0u);
  EXPECT_EQ(agg.abandoned, 44u);
  EXPECT_EQ(agg.peak_concurrent, 20u);
  EXPECT_EQ(agg.session_qoe.mean(), 0.67758190108500849);
  EXPECT_EQ(agg.session_qoe.variance(), 0.02623444425445743);
  EXPECT_EQ(agg.session_bitrate_kbps.mean(), 1994.9966122428054);
  EXPECT_EQ(agg.session_rebuffer_s.mean(), 0.195820868589412);
  EXPECT_EQ(agg.startup_delay_s.mean(), 0.57925889203777337);
  EXPECT_EQ(agg.qoe_sketch.quantile(0.5), 0.71190363736180806);
  EXPECT_EQ(agg.qoe_sketch.quantile(0.9), 0.84900094431788464);
  EXPECT_EQ(agg.qoe_sketch.quantile(0.99), 0.86903800692220623);
  ASSERT_EQ(agg.sessions_by_policy.size(), 4u);
  EXPECT_EQ(agg.sessions_by_policy[0], 60u);
  EXPECT_EQ(agg.sessions_by_policy[1], 31u);
  EXPECT_EQ(agg.sessions_by_policy[2], 60u);
  EXPECT_EQ(agg.sessions_by_policy[3], 46u);

  // The resilience counters exist but stay zero, and the typed outcome
  // split agrees with the legacy record-count classification.
  EXPECT_EQ(agg.timeouts, 0u);
  EXPECT_EQ(agg.retries, 0u);
  EXPECT_EQ(agg.failovers, 0u);
  EXPECT_EQ(agg.failed_cells, 0u);
  EXPECT_EQ(agg.disrupted_sessions, 0u);
  EXPECT_EQ(agg.recovered_sessions, 0u);
  size_t completed = 0, abandoned = 0;
  for (size_t k = 0; k < 4; ++k) {
    completed += agg.completed_by_policy[k];
    abandoned += agg.abandoned_by_policy[k];
  }
  EXPECT_EQ(abandoned, agg.abandoned);
  EXPECT_EQ(completed + abandoned + agg.outages, agg.sessions);
}

TEST_F(FleetResilienceTest, FaultAggregatesBitIdenticalAcrossThreadsAndShards) {
  FleetSimulator fleet(faulty_config());
  core::ExperimentRunner serial(1);
  FleetAggregates reference = fleet.run(video_ptrs_, serial, 1);
  // The fault load must actually bite for this gate to mean anything.
  ASSERT_GT(reference.timeouts, 0u);
  ASSERT_GT(reference.failed_cells, 0u);

  core::ExperimentRunner parallel(4);
  for (size_t shards : {1u, 2u, 5u, 17u}) {
    FleetAggregates agg = fleet.run(video_ptrs_, parallel, shards);
    EXPECT_EQ(agg.sessions, reference.sessions) << "shards=" << shards;
    EXPECT_EQ(agg.chunks, reference.chunks) << "shards=" << shards;
    EXPECT_EQ(agg.outages, reference.outages) << "shards=" << shards;
    EXPECT_EQ(agg.timeout_outages, reference.timeout_outages) << "shards=" << shards;
    EXPECT_EQ(agg.abandoned, reference.abandoned) << "shards=" << shards;
    EXPECT_EQ(agg.timeouts, reference.timeouts) << "shards=" << shards;
    EXPECT_EQ(agg.retries, reference.retries) << "shards=" << shards;
    EXPECT_EQ(agg.failovers, reference.failovers) << "shards=" << shards;
    EXPECT_EQ(agg.failed_cells, reference.failed_cells) << "shards=" << shards;
    EXPECT_EQ(agg.disrupted_sessions, reference.disrupted_sessions)
        << "shards=" << shards;
    EXPECT_EQ(agg.recovered_sessions, reference.recovered_sessions)
        << "shards=" << shards;
    // EXPECT_EQ on doubles: bit-identity, not tolerance, is the contract.
    EXPECT_EQ(agg.session_qoe.mean(), reference.session_qoe.mean())
        << "shards=" << shards;
    EXPECT_EQ(agg.session_rebuffer_s.mean(), reference.session_rebuffer_s.mean())
        << "shards=" << shards;
    EXPECT_EQ(agg.qoe_sketch.quantile(0.9), reference.qoe_sketch.quantile(0.9))
        << "shards=" << shards;
  }
}

TEST_F(FleetResilienceTest, CellFailoverRehomesSessionsAndMostRecover) {
  FleetConfig config = faulty_config();
  config.faults.trace_faults = net::RandomFaultSpec();  // failover only
  config.faults.cell_failure_fraction = 1.0;            // every cell fails
  config.faults.cell_failure_window_s = 100.0;

  core::ExperimentRunner runner(2);
  FleetAggregates agg = FleetSimulator(config).run(video_ptrs_, runner);

  EXPECT_EQ(agg.failed_cells, config.num_cells);
  ASSERT_GT(agg.failovers, 0u);
  ASSERT_GT(agg.disrupted_sessions, 0u);
  EXPECT_GE(agg.recovered_sessions, agg.failovers / 2);
  // The pinned recovery floor: at least 70% of disrupted sessions survive a
  // cell failure (they re-home to the degraded fallback and stream on).
  double rate = static_cast<double>(agg.recovered_sessions) /
                static_cast<double>(agg.disrupted_sessions);
  EXPECT_GE(rate, 0.7);
  // Accounting stays closed under faults.
  size_t completed = 0, abandoned = 0;
  for (size_t k = 0; k < agg.completed_by_policy.size(); ++k) {
    completed += agg.completed_by_policy[k];
    abandoned += agg.abandoned_by_policy[k];
  }
  EXPECT_EQ(completed + abandoned + agg.outages, agg.sessions);
  EXPECT_EQ(abandoned, agg.abandoned);
}

TEST_F(FleetResilienceTest, SeededFaultLoadMostDisruptedSessionsRecover) {
  core::ExperimentRunner runner(2);
  FleetAggregates agg = FleetSimulator(faulty_config()).run(video_ptrs_, runner);

  ASSERT_GT(agg.timeouts, 0u);
  ASSERT_GT(agg.disrupted_sessions, 0u);
  EXPECT_GE(agg.retries, 1u);
  EXPECT_LE(agg.retries, agg.timeouts);  // each retry answers one timeout
  EXPECT_LE(agg.timeout_outages, agg.outages);
  EXPECT_LE(agg.recovered_sessions, agg.disrupted_sessions);
  double rate = static_cast<double>(agg.recovered_sessions) /
                static_cast<double>(agg.disrupted_sessions);
  EXPECT_GE(rate, 0.7);  // the pinned transient-recovery floor
}

TEST_F(FleetResilienceTest, FleetRejectsNonsenseFaultConfigs) {
  FleetConfig bad = gate_config();
  bad.faults.cell_failure_fraction = 1.5;
  EXPECT_THROW(FleetSimulator{bad}, std::runtime_error);
  bad = gate_config();
  bad.faults.cell_failure_fraction = 0.5;
  bad.faults.fallback_scale = 0.0;
  EXPECT_THROW(FleetSimulator{bad}, std::runtime_error);
  bad = gate_config();
  bad.faults.cell_failure_fraction = 0.5;
  bad.faults.reconnect_delay_s = -1.0;
  EXPECT_THROW(FleetSimulator{bad}, std::runtime_error);
  bad = gate_config();
  bad.faults.cell_failure_fraction = 0.5;
  bad.faults.cell_failure_window_s = kInf;
  EXPECT_THROW(FleetSimulator{bad}, std::runtime_error);
}

}  // namespace
}  // namespace sensei::sim
