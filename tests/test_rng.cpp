#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

#include "util/stats.h"

namespace sensei::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, FromStringIsDeterministicAndSalted) {
  Rng a = Rng::from_string("Soccer1"), b = Rng::from_string("Soccer1");
  EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c = Rng::from_string("Soccer1", 1);
  Rng d = Rng::from_string("Soccer2");
  Rng e = Rng::from_string("Soccer1");
  uint64_t base = e.next_u64();
  EXPECT_NE(c.next_u64(), base);
  EXPECT_NE(d.next_u64(), base);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(9);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.uniform());
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(10);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(2, 5));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(2));
  EXPECT_TRUE(seen.count(5));
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(11);
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
  EXPECT_EQ(rng.uniform_int(5, 2), 5);  // inverted range returns lo
}

TEST(Rng, NormalMoments) {
  Rng rng(12);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(13);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 3.0, 0.1);
}

TEST(Rng, ChanceProbability) {
  Rng rng(14);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(15);
  Accumulator acc;
  for (int i = 0; i < 30000; ++i) acc.add(rng.exponential(5.0));
  EXPECT_NEAR(acc.mean(), 5.0, 0.15);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(16);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 40000.0, 0.25, 0.02);
  EXPECT_NEAR(counts[2] / 40000.0, 0.75, 0.02);
}

TEST(Rng, WeightedIndexDegenerateInputs) {
  Rng rng(17);
  std::vector<double> zero = {0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(zero), 1u);
  std::vector<double> empty;
  EXPECT_EQ(rng.weighted_index(empty), 0u);
  std::vector<double> negative = {-2.0, 1.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weighted_index(negative), 1u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(18);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(19);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

}  // namespace
}  // namespace sensei::util
