#include "util/regression.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sensei::util {
namespace {

TEST(Regression, ExactLinearRecovery) {
  // y = 2*x0 - 1*x1 + 3, noiseless -> OLS recovers coefficients exactly.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    double x0 = rng.uniform(-2, 2), x1 = rng.uniform(-2, 2);
    rows.push_back({x0, x1, 1.0});
    y.push_back(2.0 * x0 - 1.0 * x1 + 3.0);
  }
  auto fit = fit_least_squares(rows, y);
  ASSERT_EQ(fit.coefficients.size(), 3u);
  EXPECT_NEAR(fit.coefficients[0], 2.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], -1.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[2], 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Regression, NoisyFitHasReasonableRSquared) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    double x = rng.uniform(0, 10);
    rows.push_back({x, 1.0});
    y.push_back(1.5 * x + rng.normal(0.0, 0.5));
  }
  auto fit = fit_least_squares(rows, y);
  EXPECT_NEAR(fit.coefficients[0], 1.5, 0.05);
  EXPECT_GT(fit.r_squared, 0.95);
}

TEST(Regression, RidgeShrinksCoefficients) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    double x = rng.uniform(-1, 1);
    rows.push_back({x});
    y.push_back(4.0 * x);
  }
  auto plain = fit_least_squares(rows, y, 0.0);
  auto ridged = fit_least_squares(rows, y, 50.0);
  EXPECT_NEAR(plain.coefficients[0], 4.0, 1e-9);
  EXPECT_LT(ridged.coefficients[0], plain.coefficients[0]);
  EXPECT_GT(ridged.coefficients[0], 0.0);
}

TEST(Regression, EmptyInputsReturnEmpty) {
  auto fit = fit_least_squares(std::vector<std::vector<double>>{}, {});
  EXPECT_TRUE(fit.coefficients.empty());
}

TEST(Regression, RaggedRowsThrow) {
  std::vector<std::vector<double>> rows = {{1.0, 2.0}, {1.0}};
  EXPECT_THROW(fit_least_squares(rows, {1.0, 2.0}), std::runtime_error);
}

TEST(Regression, NonNegativeRecoversPositiveTruth) {
  // True weights all positive: NNLS should match OLS closely.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(8);
  const std::vector<double> truth = {0.5, 2.0, 1.0};
  for (int i = 0; i < 60; ++i) {
    std::vector<double> x = {rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1)};
    double target = 0.0;
    for (size_t k = 0; k < truth.size(); ++k) target += truth[k] * x[k];
    rows.push_back(x);
    y.push_back(target);
  }
  auto w = fit_nonnegative_least_squares(rows, y, 1e-6);
  ASSERT_EQ(w.size(), truth.size());
  for (size_t k = 0; k < truth.size(); ++k) EXPECT_NEAR(w[k], truth[k], 1e-3);
}

TEST(Regression, NonNegativeClampsNegativeTruth) {
  // y = -2*x: the best non-negative coefficient is 0.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 1; i <= 20; ++i) {
    rows.push_back({static_cast<double>(i)});
    y.push_back(-2.0 * i);
  }
  auto w = fit_nonnegative_least_squares(rows, y);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w[0], 0.0);
}

TEST(Regression, NonNegativeHandlesSparseRows) {
  // Diagonal design (each row touches one coordinate) — the structure used
  // by SENSEI's weight inference after differencing.
  std::vector<std::vector<double>> rows = {
      {0.9, 0.0, 0.0}, {0.0, 0.9, 0.0}, {0.0, 0.0, 0.9}};
  std::vector<double> y = {0.45, 0.9, 0.09};
  auto w = fit_nonnegative_least_squares(rows, y, 1e-9, 500);
  EXPECT_NEAR(w[0], 0.5, 1e-5);
  EXPECT_NEAR(w[1], 1.0, 1e-5);
  EXPECT_NEAR(w[2], 0.1, 1e-5);
}

}  // namespace
}  // namespace sensei::util
