#include "crowd/rater.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace sensei::crowd {
namespace {

TEST(Rater, StarsUnitConversionRoundTrips) {
  EXPECT_DOUBLE_EQ(RaterPool::stars_to_unit(1), 0.0);
  EXPECT_DOUBLE_EQ(RaterPool::stars_to_unit(5), 1.0);
  EXPECT_DOUBLE_EQ(RaterPool::stars_to_unit(3), 0.5);
  EXPECT_EQ(RaterPool::unit_to_stars(0.0), 1);
  EXPECT_EQ(RaterPool::unit_to_stars(1.0), 5);
  EXPECT_EQ(RaterPool::unit_to_stars(0.5), 3);
  EXPECT_EQ(RaterPool::unit_to_stars(-2.0), 1);  // clamped
  EXPECT_EQ(RaterPool::unit_to_stars(7.0), 5);
}

TEST(Rater, RecruitAssignsUniqueIds) {
  RaterPool pool;
  Rater a = pool.recruit(), b = pool.recruit();
  EXPECT_NE(a.id, b.id);
}

TEST(Rater, SpammerFractionRoughlyRespected) {
  RaterConfig cfg;
  cfg.spammer_fraction = 0.2;
  RaterPool pool(cfg, 77);
  int spammers = 0;
  for (int i = 0; i < 5000; ++i) spammers += pool.recruit().spammer ? 1 : 0;
  EXPECT_NEAR(spammers / 5000.0, 0.2, 0.02);
}

TEST(Rater, HonestRatingsTrackTrueQoE) {
  RaterConfig cfg;
  cfg.spammer_fraction = 0.0;
  cfg.partial_watch_fraction = 0.0;
  RaterPool pool(cfg, 7);
  double sum_good = 0.0, sum_bad = 0.0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    Rater r = pool.recruit();
    sum_good += pool.rate(r, 0.9).stars;
    sum_bad += pool.rate(r, 0.2).stars;
  }
  EXPECT_GT(sum_good / n, 4.0);
  EXPECT_LT(sum_bad / n, 2.5);
}

TEST(Rater, MosConvergesToTruth) {
  RaterConfig cfg;
  cfg.spammer_fraction = 0.0;
  cfg.partial_watch_fraction = 0.0;
  RaterPool pool(cfg, 8);
  util::Accumulator acc;
  for (int i = 0; i < 3000; ++i) {
    Rater r = pool.recruit();
    acc.add(RaterPool::stars_to_unit(pool.rate(r, 0.6).stars));
  }
  EXPECT_NEAR(acc.mean(), 0.6, 0.03);
}

TEST(Rater, SpammersOftenSkipVideos) {
  RaterConfig cfg;
  cfg.spammer_fraction = 1.0;
  RaterPool pool(cfg, 9);
  int skipped = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    Rater r = pool.recruit();
    if (!pool.rate(r, 0.8).watched_full) ++skipped;
  }
  EXPECT_GT(skipped, n / 3);
}

TEST(Rater, HonestRatersMostlyWatchFully) {
  RaterConfig cfg;
  cfg.spammer_fraction = 0.0;
  cfg.partial_watch_fraction = 0.05;
  RaterPool pool(cfg, 10);
  int skipped = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    Rater r = pool.recruit();
    if (!pool.rate(r, 0.8).watched_full) ++skipped;
  }
  EXPECT_NEAR(skipped / static_cast<double>(n), 0.05, 0.02);
}

TEST(Rater, BiasIsPersistentPerRater) {
  RaterConfig cfg;
  cfg.spammer_fraction = 0.0;
  cfg.partial_watch_fraction = 0.0;
  cfg.bias_stddev = 0.3;  // exaggerate for the test
  cfg.noise_stddev = 0.01;
  RaterPool pool(cfg, 11);
  // A harsh rater stays harsh across many ratings.
  Rater r = pool.recruit();
  util::Accumulator acc;
  for (int i = 0; i < 200; ++i) acc.add(pool.rate(r, 0.5).stars);
  // The mean deviates from the unbiased expectation (3) according to bias.
  EXPECT_NEAR(acc.mean(), 3.0 + 4.0 * r.bias, 0.35);
}

}  // namespace
}  // namespace sensei::crowd
