// Accuracy and sharing gates for the discretized ViPlanner (the lossy
// throughput mode behind fleet-scale Fugu):
//  - its decisions must track the exact DP on a seeded grid, and the
//    end-to-end QoE it achieves must sit within a pinned delta of the exact
//    planner at the default quantum (the headline "discretized vs exact"
//    number next to bench_multisession's 10x sessions/s);
//  - attaching a PlanBatch — the cross-session table/value sharing that
//    produces the speedup — must be bit-invisible: batched and unbatched
//    decide() agree field-for-field, for vi and dp alike, per query and
//    across whole multi-session event loops and thread counts;
//  - the unbatched hot path must stop allocating at steady state, like the
//    DP it sits beside.
#include "abr/planner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "abr/fugu.h"
#include "core/experiments.h"
#include "core/runner.h"
#include "media/dataset.h"
#include "net/trace_gen.h"
#include "qoe/chunk_quality.h"
#include "sim/player.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace sensei::abr {
namespace {

class PlannerAccuracy : public ::testing::Test {
 protected:
  media::EncodedVideo video_ = media::Encoder().encode(
      media::SourceVideo::generate("PlannerAcc", media::Genre::kSports, 120));
};

struct GridCase {
  sim::AbrObservation obs;
  std::vector<net::ThroughputScenario> scenarios;
  std::vector<double> rebuffer_options;
  bool use_weights = false;
  size_t horizon = 5;
};

// Seeded grid spanning buffers, positions, levels, scenario spreads,
// weights, and both rebuffer-action sets (the equivalence-test recipe).
std::vector<GridCase> seeded_grid(const media::EncodedVideo& video, uint64_t seed,
                                  size_t cases_per_combo) {
  util::Rng rng(seed);
  std::vector<GridCase> grid;
  for (size_t horizon : {1, 3, 5}) {
    for (bool use_weights : {false, true}) {
      for (bool stall_actions : {false, true}) {
        for (size_t i = 0; i < cases_per_combo; ++i) {
          GridCase c;
          c.horizon = horizon;
          c.use_weights = use_weights;
          c.rebuffer_options =
              stall_actions ? std::vector<double>{0.0, 1.0, 2.0} : std::vector<double>{0.0};
          c.obs.video = &video;
          c.obs.num_chunks = video.num_chunks();
          c.obs.next_chunk = static_cast<size_t>(
              rng.uniform_int(0, static_cast<int>(video.num_chunks()) - 1));
          c.obs.buffer_s = rng.uniform(0.0, 28.0);
          c.obs.last_level = static_cast<size_t>(
              rng.uniform_int(0, static_cast<int>(video.ladder().level_count()) - 1));
          size_t num_scen = rng.chance(0.5) ? 3 : 8;
          c.scenarios = net::triangular_scenarios(num_scen, rng.uniform(250.0, 6500.0),
                                                  rng.uniform(0.05, 0.8));
          if (use_weights) {
            for (size_t d = 0; d < horizon; ++d)
              c.obs.future_weights.push_back(rng.uniform(0.5, 2.8));
          }
          grid.push_back(std::move(c));
        }
      }
    }
  }
  return grid;
}

PlanQuery make_query(const GridCase& c) {
  PlanQuery q;
  q.obs = &c.obs;
  q.scenarios = c.scenarios.data();
  q.num_scenarios = c.scenarios.size();
  q.horizon = c.horizon;
  q.rebuffer_options = c.rebuffer_options.data();
  q.num_rebuffer_options = c.rebuffer_options.size();
  q.use_weights = c.use_weights;
  q.weight_shrinkage = 0.8;
  q.prev_visual_quality =
      c.obs.next_chunk > 0
          ? c.obs.video->visual_quality(c.obs.next_chunk - 1, c.obs.last_level)
          : c.obs.video->visual_quality(0, 0);
  return q;
}

bool in_menu(double value, const std::vector<double>& menu) {
  for (double m : menu)
    if (m == value) return true;
  return false;
}

// Session-mean chunk quality under the default params: the session-level
// metric the vi-vs-exact delta is pinned on (bench_multisession's
// "qoe_delta_vs_exact" uses the same fold).
double mean_chunk_qoe(const sim::SessionResult& session) {
  const qoe::ChunkQualityParams params;
  double sum = 0.0;
  size_t n = 0;
  double prev_vq = 0.0;
  for (size_t i = 0; i < session.chunks().size(); ++i) {
    const auto& rec = session.chunks()[i];
    double pv = i == 0 ? rec.visual_quality : prev_vq;
    sum += qoe::chunk_quality(rec.visual_quality, rec.rebuffer_s, pv, params);
    prev_vq = rec.visual_quality;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

// The vi planner is lossy by design (buffer buckets, log-binned scenario
// kbps, closed-loop relaxation), so per-decision agreement with the exact
// DP is a rate, not an identity. The floors are deliberately loose — the
// tight contract is the end-to-end QoE delta below — but they would catch
// a planner that stopped looking at its inputs.
TEST_F(PlannerAccuracy, ViDecisionsTrackExactAcrossQuanta) {
  DpPlanner exact;  // quantum 0: bit-identical to the exhaustive reference
  for (double quantum : {0.5, 1.0, kDefaultViBufferQuantumS}) {
    ViPlanner vi(quantum);
    auto grid = seeded_grid(video_, 0xacc0da7a, 5);
    size_t agree = 0;
    for (size_t i = 0; i < grid.size(); ++i) {
      PlanQuery q = make_query(grid[i]);
      PlanResult e = exact.plan(q);
      PlanResult v = vi.plan(q);
      SCOPED_TRACE("case " + std::to_string(i) + " quantum " + std::to_string(quantum));
      // Structural sanity regardless of divergence: the decision must come
      // from the actual menus and the sentinel must never leak.
      EXPECT_LT(v.best_level, video_.ladder().level_count());
      EXPECT_LT(v.nostall_level, video_.ladder().level_count());
      EXPECT_TRUE(in_menu(v.best_rebuffer_s, grid[i].rebuffer_options));
      EXPECT_TRUE(std::isfinite(v.best_value));
      EXPECT_GT(v.best_value, -1e17);
      EXPECT_GE(v.best_value, v.nostall_value);
      if (v.best_level == e.best_level && v.best_rebuffer_s == e.best_rebuffer_s) ++agree;
    }
    double rate = static_cast<double>(agree) / static_cast<double>(grid.size());
    EXPECT_GE(rate, 0.5) << "vi-vs-exact decision agreement collapsed at quantum "
                         << quantum << " (rate " << rate << ")";
  }
}

// End-to-end, the discretization must cost almost nothing: full Fugu
// sessions planned by vi stay within a pinned mean-chunk-QoE delta of the
// exact-DP sessions on both cellular and broadband traces. This is the
// accuracy half of the throughput/accuracy trade bench_multisession pins
// the speed half of.
TEST_F(PlannerAccuracy, ViEndToEndQoeDeltaPinnedAtDefaultQuantum) {
  auto traces = std::vector<net::ThroughputTrace>{
      net::TraceGenerator::cellular("acc-cell", 1400, 600.0, 11),
      net::TraceGenerator::cellular("acc-cell-lo", 700, 600.0, 23),
      net::TraceGenerator::broadband("acc-bb", 2600, 600.0, 7),
  };
  double worst = 0.0;
  for (const auto& trace : traces) {
    FuguConfig dp_cfg, vi_cfg;
    dp_cfg.planner = PlannerKind::kDp;
    vi_cfg.planner = PlannerKind::kVi;
    FuguAbr dp_abr(dp_cfg), vi_abr(vi_cfg);
    sim::Player player;
    auto s_dp = player.stream(video_, trace, dp_abr);
    auto s_vi = player.stream(video_, trace, vi_abr);
    double delta = mean_chunk_qoe(s_vi) - mean_chunk_qoe(s_dp);
    worst = std::max(worst, std::abs(delta));
  }
  // Pinned bound: the discretized planner trades < 0.1 mean chunk QoE
  // (measured ~0.01-0.04 on these traces; chunk QoE spans roughly [-0.5, 4]).
  EXPECT_LE(worst, 0.1);
}

// Attaching a PlanBatch moves tables, never values: per-query decide() must
// be bit-identical with and without the batch, for the vi planner (whose
// whole value table lives in the batch) and the dp planner (whose static
// video tables do). Queries run twice so the second pass exercises warm
// shared tables (pure cache hits) against the unbatched recompute.
TEST_F(PlannerAccuracy, BatchedDecideBitIdenticalToUnbatched) {
  auto grid = seeded_grid(video_, 0xba7c4ed, 4);
  struct Pair {
    std::unique_ptr<Planner> batched, plain;
  };
  PlanBatch batch;
  std::vector<Pair> pairs;
  pairs.push_back({std::make_unique<ViPlanner>(), std::make_unique<ViPlanner>()});
  pairs.push_back({std::make_unique<DpPlanner>(), std::make_unique<DpPlanner>()});
  for (auto& pair : pairs) {
    pair.batched->set_batch(&batch);
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < grid.size(); ++i) {
        PlanQuery q = make_query(grid[i]);
        PlanResult a = pair.batched->plan(q);
        PlanResult b = pair.plain->plan(q);
        SCOPED_TRACE(std::string(pair.batched->name()) + " case " + std::to_string(i) +
                     " pass " + std::to_string(pass));
        EXPECT_EQ(a.best_level, b.best_level);
        EXPECT_EQ(a.best_rebuffer_s, b.best_rebuffer_s);
        EXPECT_EQ(a.best_value, b.best_value);
        EXPECT_EQ(a.nostall_level, b.nostall_level);
        EXPECT_EQ(a.nostall_value, b.nostall_value);
      }
    }
  }
  EXPECT_GT(batch.num_vi_tables(), 0u);
}

// The same invariant at the event-loop level: a multi-session Simulator run
// with share_plan_tables on (the default) must be byte-identical to one
// with it off, for both planner modes — the sharing is purely a speedup.
TEST_F(PlannerAccuracy, SimulatorSharedTablesBitIdentical) {
  media::EncodedVideo video_b = media::Encoder().encode(
      media::SourceVideo::generate("PlannerAccB", media::Genre::kNature, 120));
  net::ThroughputTrace bottleneck =
      net::TraceGenerator::cellular("acc-shared", 1700, 400.0, 5).scaled(12.0, "acc-x12");
  for (auto kind : {PlannerKind::kVi, PlannerKind::kDp}) {
    auto run = [&](bool share) {
      std::vector<std::unique_ptr<sim::AbrPolicy>> policies;
      std::vector<sim::AbrPolicy*> policy_ptrs;
      for (size_t k = 0; k < 12; ++k) {
        FuguConfig fc;
        fc.planner = kind;
        policies.push_back(std::make_unique<FuguAbr>(fc));
        policy_ptrs.push_back(policies.back().get());
      }
      std::vector<const media::EncodedVideo*> videos = {&video_, &video_b};
      auto specs = sim::StaggeredSpecs{videos, policy_ptrs, {}, 12, 4.0}.build();
      sim::PlayerConfig config;
      config.share_plan_tables = share;
      return sim::Simulator(config).run(specs, bottleneck, sim::LinkMode::kShared);
    };
    auto shared = run(true);
    auto plain = run(false);
    ASSERT_EQ(shared.size(), plain.size());
    for (size_t i = 0; i < shared.size(); ++i) {
      const auto& a = shared[i].session;
      const auto& b = plain[i].session;
      ASSERT_EQ(a.chunks().size(), b.chunks().size()) << "session " << i;
      for (size_t j = 0; j < a.chunks().size(); ++j) {
        SCOPED_TRACE("session " + std::to_string(i) + " chunk " + std::to_string(j));
        EXPECT_EQ(a.chunks()[j].level, b.chunks()[j].level);
        EXPECT_EQ(a.chunks()[j].rebuffer_s, b.chunks()[j].rebuffer_s);
        EXPECT_EQ(a.chunks()[j].scheduled_rebuffer_s, b.chunks()[j].scheduled_rebuffer_s);
        EXPECT_EQ(a.chunks()[j].download_time_s, b.chunks()[j].download_time_s);
        EXPECT_EQ(a.chunks()[j].buffer_after_s, b.chunks()[j].buffer_after_s);
      }
    }
  }
}

// Multi-session grids with vi-mode Fugu must stay bit-identical across
// ExperimentRunner thread counts: each cell owns its batch, so parallel
// cells can never share (or race on) planner state.
TEST(PlannerAccuracyGrid, MultisessionGridIdenticalAcrossThreads) {
  std::vector<core::Experiments::MultiSessionCell> cells = {
      {0, 6, 5.0, sim::LinkMode::kShared},
      {1, 6, 5.0, sim::LinkMode::kShared},
      {0, 4, 2.0, sim::LinkMode::kDedicated},
  };
  auto run = [&](size_t threads) {
    core::ExperimentRunner runner(threads);
    return core::Experiments::run_multisession_grid(
        cells,
        [] {
          FuguConfig fc;
          fc.planner = PlannerKind::kVi;
          return std::make_unique<FuguAbr>(fc);
        },
        false, runner);
  };
  auto serial = run(1);
  auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t c = 0; c < serial.size(); ++c) {
    ASSERT_EQ(serial[c].size(), parallel[c].size()) << "cell " << c;
    for (size_t s = 0; s < serial[c].size(); ++s) {
      const auto& a = serial[c][s].session;
      const auto& b = parallel[c][s].session;
      ASSERT_EQ(a.chunks().size(), b.chunks().size());
      for (size_t j = 0; j < a.chunks().size(); ++j) {
        SCOPED_TRACE("cell " + std::to_string(c) + " session " + std::to_string(s) +
                     " chunk " + std::to_string(j));
        EXPECT_EQ(a.chunks()[j].level, b.chunks()[j].level);
        EXPECT_EQ(a.chunks()[j].rebuffer_s, b.chunks()[j].rebuffer_s);
        EXPECT_EQ(a.chunks()[j].download_time_s, b.chunks()[j].download_time_s);
      }
    }
  }
}

// Unbatched vi decide() reuses its arenas: after one warm-up sweep reaches
// the high-water mark, an identical sweep must not allocate another byte
// (the zero-steady-state-allocation contract the DP already obeys).
TEST_F(PlannerAccuracy, ViSteadyStateHotPathStopsAllocating) {
  ViPlanner vi;
  GridCase c;
  c.horizon = 5;
  c.rebuffer_options = std::vector<double>{0.0, 1.0, 2.0};
  c.use_weights = true;
  c.obs.video = &video_;
  c.obs.num_chunks = video_.num_chunks();
  c.obs.future_weights = {1.4, 0.8, 2.1, 1.0, 0.6};
  c.scenarios = net::triangular_scenarios(8, 2400.0, 0.4);
  auto sweep = [&] {
    for (int i = 0; i < 50; ++i) {
      c.obs.buffer_s = 0.5 * static_cast<double>(i % 40);
      c.obs.next_chunk = static_cast<size_t>(i % 20);
      c.obs.last_level = static_cast<size_t>(i % 5);
      PlanQuery q = make_query(c);
      vi.plan(q);
    }
  };
  sweep();
  size_t warm = vi.arena_bytes();
  sweep();
  EXPECT_EQ(vi.arena_bytes(), warm);
}

}  // namespace
}  // namespace sensei::abr
