#include "net/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace sensei::net {
namespace {

TEST(Trace, ConstructionValidation) {
  EXPECT_THROW(ThroughputTrace("x", {}), std::runtime_error);
  EXPECT_THROW(ThroughputTrace("x", {100.0}, 0.0), std::runtime_error);
  EXPECT_THROW(ThroughputTrace("x", {-5.0}), std::runtime_error);
}

TEST(Trace, ThroughputAtAndWrap) {
  ThroughputTrace t("t", {100, 200, 300}, 1.0);
  EXPECT_DOUBLE_EQ(t.throughput_at(0.0), 100);
  EXPECT_DOUBLE_EQ(t.throughput_at(1.5), 200);
  EXPECT_DOUBLE_EQ(t.throughput_at(2.9), 300);
  EXPECT_DOUBLE_EQ(t.throughput_at(3.0), 100);  // wraps
  EXPECT_DOUBLE_EQ(t.throughput_at(7.2), 200);
  EXPECT_DOUBLE_EQ(t.throughput_at(-1.0), 100);  // clamped to start
}

TEST(Trace, MeanAndStddev) {
  ThroughputTrace t("t", {100, 300}, 1.0);
  EXPECT_DOUBLE_EQ(t.mean_kbps(), 200);
  EXPECT_DOUBLE_EQ(t.stddev_kbps(), 100);
  EXPECT_DOUBLE_EQ(t.duration_s(), 2.0);
}

TEST(Trace, DownloadTimeSimpleCase) {
  // Constant 1000 Kbps: 125000 bytes = 1 Mbit -> 1 s + rtt.
  ThroughputTrace t("t", std::vector<double>(10, 1000.0), 1.0);
  EXPECT_NEAR(t.download_time_s(125000, 0.0, 0.08), 1.08, 1e-9);
}

TEST(Trace, DownloadTimeIntegratesSteps) {
  // 1 Mbit to download: first second at 500 Kbps moves 0.5 Mbit, second
  // second at 1000 Kbps moves the rest in 0.5 s.
  ThroughputTrace t("t", {500, 1000, 1000}, 1.0);
  EXPECT_NEAR(t.download_time_s(125000, 0.0, 0.0), 1.5, 1e-9);
}

TEST(Trace, DownloadTimeMidIntervalStart) {
  ThroughputTrace t("t", {1000, 2000}, 1.0);
  // Start at 0.5: 0.5 s at 1000 (0.5 Mbit), then at 2000 the remaining
  // 0.5 Mbit takes 0.25 s.
  EXPECT_NEAR(t.download_time_s(125000, 0.5, 0.0), 0.75, 1e-9);
}

TEST(Trace, DownloadTimeZeroBytes) {
  ThroughputTrace t("t", {1000}, 1.0);
  EXPECT_DOUBLE_EQ(t.download_time_s(0.0, 0.0, 0.08), 0.08);
}

TEST(Trace, DownloadSurvivesZeroThroughputStretch) {
  ThroughputTrace t("t", {0, 0, 1000}, 1.0);
  // Two dead seconds, then 1 s of transfer.
  EXPECT_NEAR(t.download_time_s(125000, 0.0, 0.0), 3.0, 1e-9);
}

TEST(Trace, AllZeroLoopingTraceIsAnOutage) {
  // The old integrator walked 10,000 intervals and then returned a finite
  // time as if the chunk had completed. A dead link must surface as an
  // outage: advance() reports it and download_time_s is unbounded.
  ThroughputTrace t("dead", {0, 0, 0, 0}, 1.0);
  TransferResult r = t.advance(1000.0, 2.5);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(std::isinf(r.elapsed_s));
  EXPECT_TRUE(std::isinf(t.download_time_s(1000.0, 0.0, 0.08)));
}

TEST(Trace, FiniteTraceEndsInOutageMidTransfer) {
  // 2 s of 1000 Kbps, finite: a 0.5 Mbit chunk started at 1.8 can never
  // finish — 0.2 s of capacity remain. Looping, it completes fine.
  ThroughputTrace looping("loop", {1000, 1000}, 1.0);
  ThroughputTrace finite = looping.as_finite();
  EXPECT_TRUE(finite.finite());
  EXPECT_FALSE(looping.finite());
  EXPECT_TRUE(looping.advance(62500.0, 1.8).completed);
  TransferResult r = finite.advance(62500.0, 1.8);
  EXPECT_FALSE(r.completed);
  // Past the end a finite trace reads 0 Kbps; in range both agree.
  EXPECT_DOUBLE_EQ(finite.throughput_at(2.1), 0.0);
  EXPECT_DOUBLE_EQ(looping.throughput_at(2.1), 1000.0);
  EXPECT_DOUBLE_EQ(finite.throughput_at(1.5), 1000.0);
}

TEST(Trace, FiniteTraceCompletesExactlyAtTheEnd) {
  // Exactly enough capacity: 1 Mbit over the last second of a finite trace.
  ThroughputTrace t = ThroughputTrace("edge", {1000.0}, 1.0).as_finite();
  TransferResult r = t.advance(125000.0, 0.0);
  EXPECT_TRUE(r.completed);
  EXPECT_NEAR(r.elapsed_s, 1.0, 1e-12);
  EXPECT_FALSE(t.advance(125001.0, 0.0).completed);
}

TEST(Trace, NonDyadicIntervalBoundariesMakeProgress) {
  // interval_s = 0.1 (real 100 ms captures): at boundaries like t = 4.3,
  // (floor(t/0.1)+1)*0.1 equals t in floating point — the old walk got
  // span 0 and spun forever once the iteration cap was removed. The
  // index-based walk must cross hundreds of such boundaries and finish.
  ThroughputTrace t("fcc-100ms", std::vector<double>(100, 1000.0), 0.1);
  // 10 Mbit at 1000 Kbps: exactly 10 s spanning 100 boundaries, looping.
  TransferResult r = t.advance(1250000.0, 0.0);
  EXPECT_TRUE(r.completed);
  EXPECT_NEAR(r.elapsed_s, 10.0, 1e-6);
  // Start exactly on the troublesome boundary family too.
  TransferResult r2 = t.advance(125000.0, 4.3);
  EXPECT_TRUE(r2.completed);
  EXPECT_NEAR(r2.elapsed_s, 1.0, 1e-6);
  // And an all-zero 100 ms trace still reads as an outage, not a hang.
  ThroughputTrace dead("dead-100ms", std::vector<double>(100, 0.0), 0.1);
  EXPECT_FALSE(dead.advance(1000.0, 4.3).completed);
}

TEST(Trace, NonFiniteWallClockReadsAsDeadLink) {
  // An earlier outage propagates a +inf wall clock into later queries (the
  // frozen legacy engine and the offline planner do exactly this). Those
  // must degrade to "dead link", not undefined index arithmetic.
  ThroughputTrace t("t", {1000, 2000}, 1.0);
  double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(t.throughput_at(inf), 0.0);
  EXPECT_DOUBLE_EQ(t.throughput_at(std::nan("")), 0.0);
  TransferResult r = t.advance(1000.0, inf);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(std::isinf(t.download_time_s(1000.0, inf, 0.08)));
}

TEST(Trace, ConstructionRejectsNonFiniteValues) {
  double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(ThroughputTrace("x", {100.0, inf}), std::runtime_error);
  EXPECT_THROW(ThroughputTrace("x", {std::nan("")}), std::runtime_error);
  EXPECT_THROW(ThroughputTrace("x", {100.0}, std::nan("")), std::runtime_error);
}

TEST(Trace, RttPlacedBeforeTheTransfer) {
  // 1000 Kbps then dead then 1000 Kbps. With rtt = 0.5 the transfer starts
  // at t = 0.5 and only 0.5 s of the first interval's capacity is usable.
  ThroughputTrace t("gap", {1000, 0, 1000}, 1.0);
  // 0.75 Mbit: 0.5 s of capacity in [0.5,1), dead [1,2), 0.25 s into [2,3).
  EXPECT_NEAR(t.download_time_s(93750.0, 0.0, 0.5), 0.5 + 1.75, 1e-9);
  // Zero-byte request still costs the round trip.
  EXPECT_DOUBLE_EQ(t.download_time_s(0.0, 0.0, 0.5), 0.5);
}

TEST(Trace, ScaledMultipliesSamples) {
  ThroughputTrace t("t", {100, 200}, 1.0);
  ThroughputTrace s = t.scaled(0.5, "half");
  EXPECT_EQ(s.name(), "half");
  EXPECT_DOUBLE_EQ(s.mean_kbps(), 75.0);
  EXPECT_THROW(t.scaled(-1.0), std::runtime_error);
}

TEST(Trace, WithNoiseChangesSamplesButKeepsFloor) {
  ThroughputTrace t("t", std::vector<double>(500, 1000.0), 1.0);
  ThroughputTrace n = t.with_noise(400.0, 99, 50.0);
  ASSERT_EQ(n.sample_count(), t.sample_count());
  bool any_diff = false;
  for (size_t i = 0; i < n.sample_count(); ++i) {
    EXPECT_GE(n.samples_kbps()[i], 50.0);
    if (n.samples_kbps()[i] != 1000.0) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
  // Deterministic for the same seed.
  ThroughputTrace n2 = t.with_noise(400.0, 99, 50.0);
  EXPECT_EQ(n.samples_kbps(), n2.samples_kbps());
}

TEST(Trace, CsvRoundTrip) {
  ThroughputTrace t("orig", {123.5, 456.25, 789.0}, 2.0);
  ThroughputTrace back = ThroughputTrace::from_csv("copy", t.to_csv());
  ASSERT_EQ(back.sample_count(), 3u);
  EXPECT_DOUBLE_EQ(back.interval_s(), 2.0);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(back.samples_kbps()[i], t.samples_kbps()[i]);
  }
}

TEST(Trace, FromCsvRejectsEmpty) {
  EXPECT_THROW(ThroughputTrace::from_csv("x", "time_s,throughput_kbps\n"),
               std::runtime_error);
}

TEST(Trace, FromCsvSkipsBlankAndCommentLines) {
  ThroughputTrace t = ThroughputTrace::from_csv(
      "x", "# a captured trace\ntime_s,throughput_kbps\n\n0,100\n  \n1,200\n# tail\n");
  ASSERT_EQ(t.sample_count(), 2u);
  EXPECT_DOUBLE_EQ(t.samples_kbps()[1], 200.0);
  EXPECT_DOUBLE_EQ(t.interval_s(), 1.0);
}

namespace {

// Asserts from_csv throws and the message carries the expected fragment
// (in particular the 1-based line number of the offending row).
void expect_csv_error(const std::string& csv, const std::string& fragment) {
  try {
    ThroughputTrace::from_csv("bad", csv);
    FAIL() << "expected from_csv to throw for: " << csv;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "message '" << e.what() << "' lacks '" << fragment << "'";
  }
}

}  // namespace

TEST(Trace, FromCsvRejectsNonMonotonicTimestampsWithLineNumber) {
  expect_csv_error("time_s,throughput_kbps\n0,100\n2,200\n1,300\n", "line 4");
  expect_csv_error("0,100\n0,200\n", "non-monotonic");
}

TEST(Trace, FromCsvRejectsNonUniformSpacingWithLineNumber) {
  // 0,1,3: the second gap (2 s) disagrees with the first (1 s).
  expect_csv_error("0,100\n1,200\n3,300\n", "non-uniform");
  expect_csv_error("0,100\n1,200\n3,300\n", "line 3");
}

TEST(Trace, FromCsvRejectsMalformedCellsWithLineNumber) {
  expect_csv_error("time_s,throughput_kbps\n0,abc\n", "line 2");
  expect_csv_error("0,100\nnan-ish,200\n", "malformed timestamp");
  expect_csv_error("0,100\n1,\n", "malformed throughput");
  expect_csv_error("just-one-field\n", "expected");
  expect_csv_error("0,100\n1,1.5trailing\n", "line 2");
  expect_csv_error("0,-40\n", "negative");
  // std::stod parses "nan"/"inf"; both must be rejected, not ingested.
  expect_csv_error("0,nan\n1,100\n", "line 1");
  expect_csv_error("0,100\n1,inf\n", "malformed throughput");
  expect_csv_error("0,100\ninf,200\n", "malformed timestamp");
}

}  // namespace
}  // namespace sensei::net
