#include "net/trace.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sensei::net {
namespace {

TEST(Trace, ConstructionValidation) {
  EXPECT_THROW(ThroughputTrace("x", {}), std::runtime_error);
  EXPECT_THROW(ThroughputTrace("x", {100.0}, 0.0), std::runtime_error);
  EXPECT_THROW(ThroughputTrace("x", {-5.0}), std::runtime_error);
}

TEST(Trace, ThroughputAtAndWrap) {
  ThroughputTrace t("t", {100, 200, 300}, 1.0);
  EXPECT_DOUBLE_EQ(t.throughput_at(0.0), 100);
  EXPECT_DOUBLE_EQ(t.throughput_at(1.5), 200);
  EXPECT_DOUBLE_EQ(t.throughput_at(2.9), 300);
  EXPECT_DOUBLE_EQ(t.throughput_at(3.0), 100);  // wraps
  EXPECT_DOUBLE_EQ(t.throughput_at(7.2), 200);
  EXPECT_DOUBLE_EQ(t.throughput_at(-1.0), 100);  // clamped to start
}

TEST(Trace, MeanAndStddev) {
  ThroughputTrace t("t", {100, 300}, 1.0);
  EXPECT_DOUBLE_EQ(t.mean_kbps(), 200);
  EXPECT_DOUBLE_EQ(t.stddev_kbps(), 100);
  EXPECT_DOUBLE_EQ(t.duration_s(), 2.0);
}

TEST(Trace, DownloadTimeSimpleCase) {
  // Constant 1000 Kbps: 125000 bytes = 1 Mbit -> 1 s + rtt.
  ThroughputTrace t("t", std::vector<double>(10, 1000.0), 1.0);
  EXPECT_NEAR(t.download_time_s(125000, 0.0, 0.08), 1.08, 1e-9);
}

TEST(Trace, DownloadTimeIntegratesSteps) {
  // 1 Mbit to download: first second at 500 Kbps moves 0.5 Mbit, second
  // second at 1000 Kbps moves the rest in 0.5 s.
  ThroughputTrace t("t", {500, 1000, 1000}, 1.0);
  EXPECT_NEAR(t.download_time_s(125000, 0.0, 0.0), 1.5, 1e-9);
}

TEST(Trace, DownloadTimeMidIntervalStart) {
  ThroughputTrace t("t", {1000, 2000}, 1.0);
  // Start at 0.5: 0.5 s at 1000 (0.5 Mbit), then at 2000 the remaining
  // 0.5 Mbit takes 0.25 s.
  EXPECT_NEAR(t.download_time_s(125000, 0.5, 0.0), 0.75, 1e-9);
}

TEST(Trace, DownloadTimeZeroBytes) {
  ThroughputTrace t("t", {1000}, 1.0);
  EXPECT_DOUBLE_EQ(t.download_time_s(0.0, 0.0, 0.08), 0.08);
}

TEST(Trace, DownloadSurvivesZeroThroughputStretch) {
  ThroughputTrace t("t", {0, 0, 1000}, 1.0);
  // Two dead seconds, then 1 s of transfer.
  EXPECT_NEAR(t.download_time_s(125000, 0.0, 0.0), 3.0, 1e-9);
}

TEST(Trace, ScaledMultipliesSamples) {
  ThroughputTrace t("t", {100, 200}, 1.0);
  ThroughputTrace s = t.scaled(0.5, "half");
  EXPECT_EQ(s.name(), "half");
  EXPECT_DOUBLE_EQ(s.mean_kbps(), 75.0);
  EXPECT_THROW(t.scaled(-1.0), std::runtime_error);
}

TEST(Trace, WithNoiseChangesSamplesButKeepsFloor) {
  ThroughputTrace t("t", std::vector<double>(500, 1000.0), 1.0);
  ThroughputTrace n = t.with_noise(400.0, 99, 50.0);
  ASSERT_EQ(n.sample_count(), t.sample_count());
  bool any_diff = false;
  for (size_t i = 0; i < n.sample_count(); ++i) {
    EXPECT_GE(n.samples_kbps()[i], 50.0);
    if (n.samples_kbps()[i] != 1000.0) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
  // Deterministic for the same seed.
  ThroughputTrace n2 = t.with_noise(400.0, 99, 50.0);
  EXPECT_EQ(n.samples_kbps(), n2.samples_kbps());
}

TEST(Trace, CsvRoundTrip) {
  ThroughputTrace t("orig", {123.5, 456.25, 789.0}, 2.0);
  ThroughputTrace back = ThroughputTrace::from_csv("copy", t.to_csv());
  ASSERT_EQ(back.sample_count(), 3u);
  EXPECT_DOUBLE_EQ(back.interval_s(), 2.0);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(back.samples_kbps()[i], t.samples_kbps()[i]);
  }
}

TEST(Trace, FromCsvRejectsEmpty) {
  EXPECT_THROW(ThroughputTrace::from_csv("x", "time_s,throughput_kbps\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace sensei::net
