#include "media/dataset.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace sensei::media {
namespace {

TEST(Dataset, Table1HasSixteenEntries) {
  const auto& t = Dataset::table1();
  EXPECT_EQ(t.size(), 16u);
  std::set<std::string> names;
  for (const auto& e : t) names.insert(e.name);
  EXPECT_EQ(names.size(), 16u);  // unique names
}

TEST(Dataset, GenreComposition) {
  int sports = 0, gaming = 0, nature = 0, animation = 0;
  for (const auto& e : Dataset::table1()) {
    switch (e.genre) {
      case Genre::kSports: ++sports; break;
      case Genre::kGaming: ++gaming; break;
      case Genre::kNature: ++nature; break;
      case Genre::kAnimation: ++animation; break;
    }
  }
  EXPECT_EQ(sports, 7);
  EXPECT_EQ(gaming, 3);
  EXPECT_EQ(nature, 3);
  EXPECT_EQ(animation, 3);
}

TEST(Dataset, TestSetGeneratesAllVideos) {
  auto videos = Dataset::test_set();
  ASSERT_EQ(videos.size(), 16u);
  for (size_t i = 0; i < videos.size(); ++i) {
    EXPECT_EQ(videos[i].name(), Dataset::table1()[i].name);
    EXPECT_GT(videos[i].num_chunks(), 0u);
  }
}

TEST(Dataset, KnownLengths) {
  auto soccer1 = Dataset::by_name("Soccer1");
  EXPECT_EQ(soccer1.length_string(), "3:20");
  auto mountain = Dataset::by_name("Mountain");
  EXPECT_EQ(mountain.length_string(), "1:24");
  auto bunny = Dataset::by_name("BigBuckBunny");
  EXPECT_EQ(bunny.length_string(), "9:56");
  EXPECT_EQ(bunny.source_dataset(), "WaterlooSQOE-III");
}

TEST(Dataset, ByNameUnknownThrows) {
  EXPECT_THROW(Dataset::by_name("NoSuchVideo"), std::runtime_error);
}

TEST(Dataset, Soccer1ClipLayout) {
  SourceVideo clip = Dataset::soccer1_clip();
  ASSERT_EQ(clip.num_chunks(), 6u);
  // Figure 1 annotations: normal gameplay, then shoot & goal, then
  // celebrate & replay.
  EXPECT_EQ(clip.chunk(0).kind, SceneKind::kNormal);
  EXPECT_EQ(clip.chunk(3).kind, SceneKind::kKeyMoment);
  EXPECT_EQ(clip.chunk(5).kind, SceneKind::kReplay);
  // The goal is the most sensitive chunk.
  for (size_t i = 0; i < clip.num_chunks(); ++i) {
    if (i != 3) EXPECT_LT(clip.chunk(i).sensitivity, clip.chunk(3).sensitivity);
  }
  // Replay is more dynamic than the goal yet less sensitive (the LSTM-QoE
  // failure case from the paper).
  EXPECT_GT(clip.chunk(4).motion, clip.chunk(3).motion);
  EXPECT_LT(clip.chunk(4).sensitivity, clip.chunk(3).sensitivity);
}

TEST(Dataset, ChunkDurationPropagates) {
  auto videos = Dataset::test_set(2.0);
  EXPECT_DOUBLE_EQ(videos[0].chunk_duration_s(), 2.0);
  EXPECT_EQ(videos[0].num_chunks(), 110u);  // 220 s / 2 s
}

}  // namespace
}  // namespace sensei::media
