#include <gtest/gtest.h>

#include "abr/bba.h"
#include "abr/rate_based.h"
#include "media/dataset.h"
#include "net/trace_gen.h"
#include "sim/player.h"

namespace sensei::abr {
namespace {

sim::AbrObservation make_obs(const media::EncodedVideo& video, double buffer_s,
                             double throughput_kbps = 0.0) {
  sim::AbrObservation obs;
  obs.video = &video;
  obs.next_chunk = 1;
  obs.num_chunks = video.num_chunks();
  obs.buffer_s = buffer_s;
  obs.last_throughput_kbps = throughput_kbps;
  return obs;
}

class AbrBasicTest : public ::testing::Test {
 protected:
  media::EncodedVideo video_ = media::Encoder().encode(
      media::SourceVideo::generate("AbrTest", media::Genre::kSports, 120));
};

TEST_F(AbrBasicTest, BbaReservoirPicksLowest) {
  BbaAbr bba;
  EXPECT_EQ(bba.decide(make_obs(video_, 2.0)).level, 0u);
  EXPECT_EQ(bba.decide(make_obs(video_, 5.0)).level, 0u);
}

TEST_F(AbrBasicTest, BbaCushionPicksHighest) {
  BbaAbr bba;
  EXPECT_EQ(bba.decide(make_obs(video_, 20.0)).level, 4u);
  EXPECT_EQ(bba.decide(make_obs(video_, 29.0)).level, 4u);
}

TEST_F(AbrBasicTest, BbaMapsLinearlyInBetween) {
  BbaAbr bba;
  size_t prev = 0;
  for (double buf = 5.5; buf < 20.0; buf += 1.0) {
    size_t level = bba.decide(make_obs(video_, buf)).level;
    EXPECT_GE(level, prev);  // monotone in buffer
    prev = level;
  }
  EXPECT_EQ(bba.decide(make_obs(video_, 12.5)).level, 2u);  // midpoint -> middle rung
}

TEST_F(AbrBasicTest, BbaNeverSchedulesRebuffering) {
  BbaAbr bba;
  for (double buf : {1.0, 10.0, 25.0}) {
    EXPECT_DOUBLE_EQ(bba.decide(make_obs(video_, buf)).scheduled_rebuffer_s, 0.0);
  }
}

TEST(Bba, InvalidConfigThrows) {
  BbaConfig bad;
  bad.reservoir_s = 10.0;
  bad.cushion_s = 5.0;
  EXPECT_THROW(BbaAbr{bad}, std::runtime_error);
}

TEST_F(AbrBasicTest, RateBasedFollowsThroughput) {
  RateBasedAbr rb;
  rb.begin_session(video_);
  auto obs = make_obs(video_, 10.0, 3000.0);
  // One observation of 3000 Kbps with 0.85 safety -> budget 2550 -> level 3.
  auto d = rb.decide(obs);
  EXPECT_EQ(d.level, 3u);
}

TEST_F(AbrBasicTest, RateBasedConservativeOnSlowLink) {
  RateBasedAbr rb;
  rb.begin_session(video_);
  auto d = rb.decide(make_obs(video_, 10.0, 350.0));
  EXPECT_EQ(d.level, 0u);
}

TEST_F(AbrBasicTest, RateBasedResetsBetweenSessions) {
  RateBasedAbr rb;
  rb.begin_session(video_);
  rb.decide(make_obs(video_, 10.0, 5000.0));
  rb.begin_session(video_);  // predictor reset: falls back to initial estimate
  auto d = rb.decide(make_obs(video_, 10.0, 0.0));
  EXPECT_LE(d.level, 2u);
}

TEST_F(AbrBasicTest, EndToEndSessionsComplete) {
  auto traces = net::TraceGenerator::test_set(300.0);
  sim::Player player;
  BbaAbr bba;
  RateBasedAbr rb;
  for (const auto& trace : {traces[0], traces[5], traces[9]}) {
    auto s1 = player.stream(video_, trace, bba);
    auto s2 = player.stream(video_, trace, rb);
    EXPECT_EQ(s1.chunks().size(), video_.num_chunks());
    EXPECT_EQ(s2.chunks().size(), video_.num_chunks());
  }
}

TEST_F(AbrBasicTest, NamesAreStable) {
  EXPECT_STREQ(BbaAbr().name(), "BBA");
  EXPECT_STREQ(RateBasedAbr().name(), "RateBased");
}

}  // namespace
}  // namespace sensei::abr
