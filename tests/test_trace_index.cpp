// Equivalence gate for the trace-integration swap: the indexed integrator
// (binary search over the cumulative-capacity prefix sums, O(1) period
// skipping) must reproduce the linear reference walker *bit-identically* —
// same elapsed_s, same dead-link classification — across looping, finite,
// all-zero, outage-laden, and non-dyadic-interval traces, for arbitrary
// transfer sizes and start times. TraceCursor (the warm-started session
// handle) must match both. Whole ExperimentRunner grids must not change by
// a bit when the process default flips between the modes.
#include "net/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "abr/bba.h"
#include "abr/fugu.h"
#include "core/experiments.h"
#include "core/runner.h"
#include "media/dataset.h"
#include "net/trace_gen.h"
#include "sim/player.h"
#include "util/rng.h"

namespace sensei::net {
namespace {

// Restores the process-wide integration default on scope exit, so a failing
// test cannot leak walker mode into later suites.
class ScopedIntegration {
 public:
  explicit ScopedIntegration(TraceIntegration mode) : saved_(default_trace_integration()) {
    set_default_trace_integration(mode);
  }
  ~ScopedIntegration() { set_default_trace_integration(saved_); }

 private:
  TraceIntegration saved_;
};

// Trace families the gate sweeps: every shape the integrator branches on.
std::vector<ThroughputTrace> gate_traces() {
  util::Rng rng(0x7ace1dec);
  std::vector<ThroughputTrace> traces;

  traces.push_back(TraceGenerator::cellular("cell", 900, 600.0, 11));
  traces.push_back(TraceGenerator::broadband("bb", 3200, 600.0, 12));
  traces.push_back(TraceGenerator::cellular("cell-finite", 1400, 300.0, 13).as_finite());

  // Zero-run-heavy looping trace: long fades the walker crosses one
  // interval at a time.
  {
    std::vector<double> samples;
    while (samples.size() < 500) {
      size_t run = static_cast<size_t>(rng.uniform_int(1, 40));
      bool fade = rng.chance(0.35);
      for (size_t i = 0; i < run; ++i) {
        samples.push_back(fade ? 0.0 : rng.uniform(50.0, 4000.0));
      }
    }
    traces.push_back(ThroughputTrace("fades", samples, 1.0));
    traces.push_back(ThroughputTrace("fades-finite", std::move(samples), 1.0, true));
  }

  // All-zero: looping (permanent outage) and finite.
  traces.push_back(ThroughputTrace("dead", std::vector<double>(64, 0.0), 1.0));
  traces.push_back(ThroughputTrace("dead-finite", std::vector<double>(64, 0.0), 1.0, true));

  // Dead tail: completes early, outage later (finite), loops around (not).
  {
    std::vector<double> samples(200, 0.0);
    for (size_t i = 0; i < 40; ++i) samples[i] = 2000.0;
    traces.push_back(ThroughputTrace("cliff", samples, 1.0));
    traces.push_back(ThroughputTrace("cliff-finite", std::move(samples), 1.0, true));
  }

  // Non-dyadic 100 ms intervals (FP boundary slivers) and an awkward 0.3 s.
  {
    std::vector<double> ms100(400);
    for (auto& s : ms100) s = rng.chance(0.2) ? 0.0 : rng.uniform(100.0, 6000.0);
    traces.push_back(ThroughputTrace("ms100", std::move(ms100), 0.1));
    std::vector<double> odd(77);
    for (auto& s : odd) s = rng.uniform(0.0, 2500.0);
    traces.push_back(ThroughputTrace("odd-interval", std::move(odd), 0.3));
  }

  // Single-interval loop (every transfer spans whole periods).
  traces.push_back(ThroughputTrace("one", {777.5}, 1.0));
  return traces;
}

// Start times that probe the branchy spots of a given trace.
std::vector<double> gate_starts(const ThroughputTrace& t, util::Rng& rng) {
  double d = t.duration_s();
  std::vector<double> starts = {0.0, -3.0, d, 2.5 * d, 10.0 * d};
  // Exactly on interval boundaries, and a hair before/after.
  for (size_t k : {size_t{1}, t.sample_count() / 2, t.sample_count() - 1}) {
    double b = static_cast<double>(k) * t.interval_s();
    starts.push_back(b);
    starts.push_back(std::nextafter(b, 0.0));
    starts.push_back(std::nextafter(b, 2.0 * d));
  }
  for (int i = 0; i < 12; ++i) starts.push_back(rng.uniform(0.0, 1.5 * d));
  return starts;
}

// Transfer sizes from sub-interval to many-periods scale.
std::vector<double> gate_sizes(const ThroughputTrace& t, util::Rng& rng) {
  double period_bytes = t.mean_kbps() * 1000.0 * t.duration_s() / 8.0;
  std::vector<double> sizes = {0.0, 125.0, 5000.0, 125000.0};
  if (period_bytes > 0.0) {
    sizes.push_back(0.3 * period_bytes);
    sizes.push_back(1.0 * period_bytes);
    sizes.push_back(7.7 * period_bytes);
  } else {
    sizes.push_back(1e6);
  }
  for (int i = 0; i < 8; ++i) sizes.push_back(std::pow(10.0, rng.uniform(2.0, 8.0)));
  return sizes;
}

TEST(TraceIndexGate, AdvanceBitIdenticalToWalkerAcrossFamilies) {
  util::Rng rng(0xb17b17);
  for (const auto& trace : gate_traces()) {
    auto starts = gate_starts(trace, rng);
    auto sizes = gate_sizes(trace, rng);
    for (double start : starts) {
      for (double bytes : sizes) {
        TransferResult a = trace.advance(bytes, start, TraceIntegration::kIndexed);
        TransferResult b = trace.advance(bytes, start, TraceIntegration::kWalker);
        SCOPED_TRACE(trace.name() + " bytes=" + std::to_string(bytes) +
                     " start=" + std::to_string(start));
        EXPECT_EQ(a.completed, b.completed);
        // Exact double equality — the two modes share every float op.
        EXPECT_EQ(a.elapsed_s, b.elapsed_s);

        double da = trace.download_time_s(bytes, start, 0.08, TraceIntegration::kIndexed);
        double db = trace.download_time_s(bytes, start, 0.08, TraceIntegration::kWalker);
        EXPECT_EQ(da, db);
      }
    }
  }
}

TEST(TraceIndexGate, DeadLinkClassificationIdentical) {
  double inf = std::numeric_limits<double>::infinity();
  for (const auto& trace : gate_traces()) {
    for (auto mode : {TraceIntegration::kIndexed, TraceIntegration::kWalker}) {
      SCOPED_TRACE(trace.name());
      // Non-finite clocks always read as dead, in both modes.
      EXPECT_FALSE(trace.advance(1000.0, inf, mode).completed);
      EXPECT_FALSE(trace.advance(1000.0, std::nan(""), mode).completed);
      // A zero-byte transfer is instantaneous even on a dead link.
      EXPECT_TRUE(trace.advance(0.0, 0.0, mode).completed);
    }
  }
  // The permanent-outage families classify as dead from any start.
  ThroughputTrace dead("z", std::vector<double>(16, 0.0), 1.0);
  ThroughputTrace dead_finite = dead.as_finite();
  ThroughputTrace cliff =
      ThroughputTrace("c", {1000.0, 1000.0, 0.0, 0.0}, 1.0).as_finite();
  for (auto mode : {TraceIntegration::kIndexed, TraceIntegration::kWalker}) {
    EXPECT_FALSE(dead.advance(8.0, 3.7, mode).completed);
    EXPECT_FALSE(dead_finite.advance(8.0, 3.7, mode).completed);
    EXPECT_FALSE(cliff.advance(300000.0, 0.0, mode).completed);   // needs 2.4 s capacity
    EXPECT_TRUE(cliff.advance(200000.0, 0.0, mode).completed);    // fits in 1.6 s
    EXPECT_FALSE(cliff.advance(1000.0, 100.0, mode).completed);   // starts past the end
  }
}

TEST(TraceIndexGate, CursorMatchesStatelessAdvance) {
  util::Rng rng(0xcc5c5c);
  for (const auto& trace : gate_traces()) {
    // Monotone wall clock (the player pattern): the cursor's warm start
    // must never change a result.
    TraceCursor cursor(trace, TraceIntegration::kIndexed);
    double clock = 0.0;
    for (int i = 0; i < 64; ++i) {
      double bytes = std::pow(10.0, rng.uniform(2.0, 6.5));
      TransferResult c = cursor.advance(bytes, clock);
      TransferResult a = trace.advance(bytes, clock, TraceIntegration::kIndexed);
      TransferResult w = trace.advance(bytes, clock, TraceIntegration::kWalker);
      SCOPED_TRACE(trace.name() + " i=" + std::to_string(i));
      ASSERT_EQ(c.completed, a.completed);
      ASSERT_EQ(c.elapsed_s, a.elapsed_s);
      ASSERT_EQ(c.elapsed_s, w.elapsed_s);
      if (!c.completed) break;
      clock += c.elapsed_s + rng.uniform(0.0, 2.0);
    }
    // Random-access starts (the offline-DP pattern): hints may be wildly
    // wrong; results still exact.
    TraceCursor jumpy(trace, TraceIntegration::kIndexed);
    for (int i = 0; i < 64; ++i) {
      double bytes = std::pow(10.0, rng.uniform(2.0, 7.0));
      double start = rng.uniform(0.0, 2.0 * trace.duration_s());
      TransferResult c = jumpy.advance(bytes, start);
      TransferResult a = trace.advance(bytes, start, TraceIntegration::kWalker);
      ASSERT_EQ(c.completed, a.completed) << trace.name() << " i=" << i;
      ASSERT_EQ(c.elapsed_s, a.elapsed_s) << trace.name() << " i=" << i;
    }
  }
}

TEST(TraceIndexGate, PrefixIndexIsMonotoneAndConsistent) {
  for (const auto& trace : gate_traces()) {
    const auto& prefix = trace.index().prefix_bits;
    ASSERT_EQ(prefix.size(), trace.sample_count() + 1);
    EXPECT_EQ(prefix[0], 0.0);
    for (size_t k = 0; k < trace.sample_count(); ++k) {
      EXPECT_GE(prefix[k + 1], prefix[k]) << trace.name() << " k=" << k;
      if (trace.samples_kbps()[k] == 0.0) {
        EXPECT_EQ(prefix[k + 1], prefix[k]) << trace.name() << " k=" << k;
      }
    }
  }
}

// Whole experiment grids must be bit-identical with the index on or off,
// at any thread count — the determinism contract the figure benches and
// the CI indexed-vs-walker diff rely on.
TEST(TraceIndexGridDeterminism, GridBitIdenticalAcrossModesAndThreads) {
  std::vector<media::EncodedVideo> videos;
  videos.push_back(media::Encoder().encode(
      media::SourceVideo::generate("IdxGridA", media::Genre::kNature, 120)));
  videos.push_back(media::Encoder().encode(
      media::SourceVideo::generate("IdxGridB", media::Genre::kGaming, 120)));
  std::vector<net::ThroughputTrace> traces = {
      TraceGenerator::cellular("idx-cell", 800, 600.0, 21),
      TraceGenerator::broadband("idx-bb", 2800, 600.0, 22),
  };
  std::vector<std::vector<double>> weights;
  for (const auto& v : videos) {
    std::vector<double> w(v.num_chunks(), 1.0);
    for (size_t i = 3; i < w.size(); i += 5) w[i] = 2.0;
    weights.push_back(std::move(w));
  }

  auto run = [&](TraceIntegration mode, size_t threads, bool fugu) {
    ScopedIntegration scoped(mode);
    core::ExperimentRunner runner(threads);
    if (fugu) {
      return core::Experiments::run_grid(
          videos, traces, [] { return core::Sensei::make_sensei_fugu({}); }, weights, runner);
    }
    return core::Experiments::run_grid(
        videos, traces, [] { return std::make_unique<abr::BbaAbr>(); },
        std::vector<std::vector<double>>{}, runner);
  };

  for (bool fugu : {false, true}) {
    auto base = run(TraceIntegration::kWalker, 1, fugu);
    for (auto mode : {TraceIntegration::kWalker, TraceIntegration::kIndexed}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        auto got = run(mode, threads, fugu);
        ASSERT_EQ(got.size(), base.size());
        for (size_t i = 0; i < base.size(); ++i) {
          SCOPED_TRACE("fugu=" + std::to_string(fugu) + " cell " + std::to_string(i) +
                       " threads " + std::to_string(threads));
          EXPECT_EQ(got[i].true_qoe, base[i].true_qoe);
          ASSERT_EQ(got[i].session.chunks().size(), base[i].session.chunks().size());
          for (size_t j = 0; j < base[i].session.chunks().size(); ++j) {
            const auto& x = got[i].session.chunks()[j];
            const auto& y = base[i].session.chunks()[j];
            EXPECT_EQ(x.level, y.level);
            EXPECT_EQ(x.download_time_s, y.download_time_s);
            EXPECT_EQ(x.rebuffer_s, y.rebuffer_s);
            EXPECT_EQ(x.scheduled_rebuffer_s, y.scheduled_rebuffer_s);
            EXPECT_EQ(x.buffer_after_s, y.buffer_after_s);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace sensei::net
