#include <gtest/gtest.h>

#include "crowd/ground_truth.h"
#include "media/dataset.h"
#include "qoe/ksqi.h"
#include "qoe/lstm_qoe.h"
#include "qoe/p1203.h"
#include "crowd/weights.h"
#include "qoe/sensei_qoe.h"
#include "util/stats.h"

namespace sensei::qoe {
namespace {

// Shared fixture: a training set of degraded renderings with oracle MOS.
class QoeModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    video_ = media::Encoder().encode(
        media::SourceVideo::generate("QoeTrain", media::Genre::kSports, 400));
    crowd::GroundTruthQoE oracle;
    auto base = sim::RenderedVideo::pristine(video_);
    train_videos_.push_back(base);
    for (size_t c = 0; c < video_.num_chunks(); c += 2) {
      train_videos_.push_back(base.with_rebuffering(c, 1.0 + (c % 3)));
      train_videos_.push_back(base.with_bitrate_drop(c, 2, c % 2, video_));
    }
    for (const auto& v : train_videos_) train_mos_.push_back(oracle.score(v));
  }

  media::EncodedVideo video_;
  std::vector<sim::RenderedVideo> train_videos_;
  std::vector<double> train_mos_;
};

TEST_F(QoeModelTest, KsqiPrefersHigherBitrate) {
  KsqiModel model;
  auto high = sim::RenderedVideo::pristine(video_);
  auto low = high.with_bitrate_drop(0, video_.num_chunks(), 0, video_);
  EXPECT_GT(model.predict(high), model.predict(low));
}

TEST_F(QoeModelTest, KsqiPenalizesRebuffering) {
  KsqiModel model;
  auto clean = sim::RenderedVideo::pristine(video_);
  auto stalled = clean.with_rebuffering(5, 4.0);
  EXPECT_GT(model.predict(clean), model.predict(stalled));
}

TEST_F(QoeModelTest, KsqiIsPositionAgnostic) {
  // The defining blindness the paper attacks: same incident, different
  // position, same KSQI score.
  KsqiModel model;
  auto base = sim::RenderedVideo::pristine(video_);
  // 1-second stall keeps per-chunk quality above the floor on every chunk,
  // so the additive mean is exactly position-independent.
  double a = model.predict(base.with_rebuffering(3, 1.0));
  double b = model.predict(base.with_rebuffering(40, 1.0));
  EXPECT_NEAR(a, b, 1e-9);
}

TEST_F(QoeModelTest, KsqiTrainingImprovesCalibration) {
  KsqiModel model;
  auto before = util::mean_relative_error(model.predict_all(train_videos_), train_mos_);
  model.train(train_videos_, train_mos_);
  auto after = util::mean_relative_error(model.predict_all(train_videos_), train_mos_);
  EXPECT_LE(after, before + 1e-9);
  EXPECT_GT(model.scale(), 0.0);
}

TEST_F(QoeModelTest, KsqiPredictionsInUnitRange) {
  KsqiModel model;
  model.train(train_videos_, train_mos_);
  for (const auto& v : train_videos_) {
    double q = model.predict(v);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
  }
}

TEST_F(QoeModelTest, P1203FeatureVectorShape) {
  auto f = P1203Model::features(sim::RenderedVideo::pristine(video_));
  EXPECT_EQ(f.size(), 11u);
  // Pristine: zero stall ratio, zero events, zero switches.
  EXPECT_DOUBLE_EQ(f[3], 0.0);
  EXPECT_DOUBLE_EQ(f[4], 0.0);
  EXPECT_DOUBLE_EQ(f[6], 0.0);
}

TEST_F(QoeModelTest, P1203TrainsAndDiscriminates) {
  P1203Model model;
  model.train(train_videos_, train_mos_);
  auto clean = sim::RenderedVideo::pristine(video_);
  auto bad = clean.with_rebuffering(10, 4.0).with_rebuffering(20, 4.0).with_rebuffering(30,
                                                                                        4.0);
  EXPECT_GT(model.predict(clean), model.predict(bad));
}

TEST_F(QoeModelTest, P1203UntrainedFallback) {
  P1203Model model;
  EXPECT_NEAR(model.predict(sim::RenderedVideo::pristine(video_)), 0.6, 1e-9);
}

TEST_F(QoeModelTest, LstmQoeTrainsToUsefulAccuracy) {
  // Train on session-like compound degradations (the regime the §2.2 study
  // uses); single-incident series barely move MOS on long videos and carry
  // no learnable signal.
  crowd::GroundTruthQoE oracle;
  auto base = sim::RenderedVideo::pristine(video_);
  std::vector<sim::RenderedVideo> sessions;
  std::vector<double> mos;
  for (int k = 0; k < 40; ++k) {
    sim::RenderedVideo v = base;
    int incidents = k % 7;
    for (int j = 0; j < incidents; ++j) {
      size_t chunk = static_cast<size_t>((k * 13 + j * 29) % video_.num_chunks());
      if (j % 2) {
        v = v.with_rebuffering(chunk, 1.0 + j);
      } else {
        v = v.with_bitrate_drop(chunk, 4, j % 2, video_);
      }
    }
    sessions.push_back(v);
    mos.push_back(oracle.score(v));
  }
  LstmQoeModel model(10, 60, 0.01, 26);
  model.train(sessions, mos);
  EXPECT_TRUE(model.trained());
  auto acc = util::pearson(model.predict_all(sessions), mos);
  EXPECT_GT(acc, 0.5);
}

TEST_F(QoeModelTest, LstmQoeFeatureSequenceShape) {
  auto seq = LstmQoeModel::features(sim::RenderedVideo::pristine(video_));
  ASSERT_EQ(seq.size(), video_.num_chunks());
  EXPECT_EQ(seq[0].size(), 5u);
}

TEST_F(QoeModelTest, SenseiModelWithUnitWeightsMatchesKsqi) {
  KsqiModel ksqi;
  SenseiQoeModel sensei(std::vector<double>(video_.num_chunks(), 1.0));
  for (const auto& v : train_videos_) {
    EXPECT_NEAR(sensei.raw_score(v), ksqi.raw_score(v), 1e-9);
  }
}

TEST_F(QoeModelTest, SenseiModelWeightsIncidentPosition) {
  std::vector<double> w(video_.num_chunks(), 1.0);
  w[3] = 2.0;
  w[40] = 0.2;
  crowd::normalize_mean_one(w);
  SenseiQoeModel model(w);
  auto base = sim::RenderedVideo::pristine(video_);
  double hurt_weighty = model.predict(base.with_rebuffering(3, 1.0));
  double hurt_light = model.predict(base.with_rebuffering(40, 1.0));
  EXPECT_LT(hurt_weighty, hurt_light);
}

TEST_F(QoeModelTest, SenseiModelMoreAccurateThanKsqiOnSensitivityData) {
  // Give SENSEI the true sensitivity as weights: it should beat KSQI on the
  // oracle-labelled series (the paper's central accuracy claim).
  std::vector<double> w = video_.source().true_sensitivity();
  crowd::normalize_mean_one(w);
  SenseiQoeModel sensei(w);
  KsqiModel ksqi;
  sensei.train(train_videos_, train_mos_);
  ksqi.train(train_videos_, train_mos_);
  double sensei_plcc = util::pearson(sensei.predict_all(train_videos_), train_mos_);
  double ksqi_plcc = util::pearson(ksqi.predict_all(train_videos_), train_mos_);
  EXPECT_GT(sensei_plcc, ksqi_plcc);
}

TEST_F(QoeModelTest, SenseiModelShortClipFallsBackToUnitWeight) {
  SenseiQoeModel model(std::vector<double>(3, 1.5));  // profile shorter than video
  EXPECT_NO_THROW(model.predict(sim::RenderedVideo::pristine(video_)));
}

TEST(SenseiQoeModel, EmptyWeightsThrow) {
  EXPECT_THROW(SenseiQoeModel(std::vector<double>{}), std::runtime_error);
}

}  // namespace
}  // namespace sensei::qoe
