#include "crowd/scheduler.h"

#include <gtest/gtest.h>

#include "media/dataset.h"
#include "util/stats.h"

namespace sensei::crowd {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  media::EncodedVideo video_ = media::Encoder().encode(
      media::SourceVideo::generate("SchedTest", media::Genre::kSports, 80));
  GroundTruthQoE oracle_;
};

TEST_F(SchedulerTest, ProfileProducesNormalizedWeights) {
  Scheduler scheduler(oracle_, SchedulerConfig(), 1);
  SensitivityProfile p = scheduler.profile(video_);
  ASSERT_EQ(p.weights.size(), video_.num_chunks());
  EXPECT_NEAR(util::mean(p.weights), 1.0, 1e-9);
  for (double w : p.weights) EXPECT_GE(w, 0.0);
}

TEST_F(SchedulerTest, ProfileTracksTrueSensitivity) {
  Scheduler scheduler(oracle_, SchedulerConfig(), 2);
  SensitivityProfile p = scheduler.profile(video_);
  double srcc = util::spearman(p.weights, video_.source().true_sensitivity());
  EXPECT_GT(srcc, 0.35);  // crowdsourced with noise, but clearly informative
}

TEST_F(SchedulerTest, BookkeepingIsConsistent) {
  Scheduler scheduler(oracle_, SchedulerConfig(), 3);
  SensitivityProfile p = scheduler.profile(video_);
  EXPECT_GT(p.cost_usd, 0.0);
  EXPECT_GT(p.elapsed_minutes, 0.0);
  EXPECT_GT(p.participants, 0u);
  // Step 1 publishes one rendering per chunk; step 2 adds more.
  EXPECT_GE(p.renderings_rated, video_.num_chunks());
  EXPECT_GT(p.ratings_collected, 0u);
  EXPECT_LE(p.step2_chunks, video_.num_chunks());
}

TEST_F(SchedulerTest, PruningCutsCostVersusExhaustive) {
  Scheduler scheduler(oracle_, SchedulerConfig(), 4);
  SensitivityProfile pruned = scheduler.profile(video_);
  SensitivityProfile full = scheduler.profile_exhaustive(video_, 30);
  EXPECT_LT(pruned.cost_usd, full.cost_usd * 0.25);  // paper: ~96.7% pruning
  // Both recover the sensitivity signal.
  auto s = video_.source().true_sensitivity();
  EXPECT_GT(util::spearman(full.weights, s), 0.4);
  EXPECT_GT(util::spearman(pruned.weights, s), 0.3);
}

TEST_F(SchedulerTest, AlphaControlsStepTwoSelection) {
  SchedulerConfig tight;
  tight.alpha = 0.5;  // only extreme chunks qualify
  SchedulerConfig loose;
  loose.alpha = 0.0;  // everything qualifies
  Scheduler s1(oracle_, tight, 5);
  Scheduler s2(oracle_, loose, 5);
  SensitivityProfile p1 = s1.profile(video_);
  SensitivityProfile p2 = s2.profile(video_);
  EXPECT_LT(p1.step2_chunks, p2.step2_chunks);
  EXPECT_LT(p1.cost_usd, p2.cost_usd);
}

TEST_F(SchedulerTest, MoreRatersCostMore) {
  SchedulerConfig few;
  few.m1 = 4;
  few.m2 = 2;
  SchedulerConfig many;
  many.m1 = 16;
  many.m2 = 8;
  Scheduler s1(oracle_, few, 6);
  Scheduler s2(oracle_, many, 6);
  EXPECT_LT(s1.profile(video_).cost_usd, s2.profile(video_).cost_usd);
}

TEST_F(SchedulerTest, DeterministicForSeed) {
  Scheduler a(oracle_, SchedulerConfig(), 9);
  Scheduler b(oracle_, SchedulerConfig(), 9);
  EXPECT_EQ(a.profile(video_).weights, b.profile(video_).weights);
}

}  // namespace
}  // namespace sensei::crowd
