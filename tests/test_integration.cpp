// End-to-end integration tests: profile -> manifest -> player -> ABR -> QoE.
#include <gtest/gtest.h>

#include "abr/bba.h"
#include "core/sensei.h"
#include "media/dataset.h"
#include "net/trace_gen.h"
#include "qoe/ksqi.h"
#include "sim/player.h"
#include "util/stats.h"

namespace sensei {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  media::EncodedVideo video_ =
      media::Encoder().encode(media::Dataset::by_name("Soccer1"));
  crowd::GroundTruthQoE oracle_;
};

TEST_F(IntegrationTest, FullPipelineProfileStreamScore) {
  core::Sensei sensei(oracle_, crowd::SchedulerConfig(), 21);
  core::ProfileOutput profiled = sensei.profile(video_);

  // Weights travel through the manifest exactly as a CDN would ship them.
  sim::Manifest manifest = sim::Manifest::from_xml(profiled.manifest.to_xml());

  sim::Player player;
  auto sensei_fugu = core::Sensei::make_sensei_fugu();
  auto fugu = core::Sensei::make_fugu();

  // Average over several constrained cellular traces: single sessions on
  // bursty links are chaotic, the aggregate must be competitive.
  double q_base = 0.0, q_ours = 0.0;
  for (uint64_t seed : {22, 23, 24}) {
    auto trace = net::TraceGenerator::cellular("int-cell", 1200, 700.0, seed);
    auto base = player.stream(video_, trace, *fugu);
    auto ours = player.stream(video_, trace, *sensei_fugu, manifest.weights);
    q_base += oracle_.score(base.to_rendered(video_));
    q_ours += oracle_.score(ours.to_rendered(video_));
    EXPECT_EQ(ours.chunks().size(), video_.num_chunks());
  }
  EXPECT_GT(q_ours, q_base * 0.95);
}

TEST_F(IntegrationTest, ProfiledWeightsAreInformativeAcrossDataset) {
  // Profile three videos of different genres; inferred weights must
  // positively correlate with hidden sensitivity for all of them.
  core::Sensei sensei(oracle_, crowd::SchedulerConfig(), 23);
  for (const char* name : {"Basket1", "Space", "BigBuckBunny"}) {
    auto video = media::Encoder().encode(media::Dataset::by_name(name));
    auto out = sensei.profile(video);
    double srcc =
        util::spearman(out.profile.weights, video.source().true_sensitivity());
    EXPECT_GT(srcc, 0.25) << name;
  }
}

TEST_F(IntegrationTest, SenseiQoeModelBeatsKsqiOnHeldOutSeries) {
  // Train both models on rendered series of one video; evaluate prediction
  // accuracy against oracle scores on a held-out incident type.
  core::Sensei sensei(oracle_, crowd::SchedulerConfig(), 24);
  auto out = sensei.profile(video_);

  auto train = sim::rebuffer_series(video_, 1.0);
  auto test = sim::bitrate_drop_series(video_, 0, 2);
  std::vector<double> train_mos, test_mos;
  for (const auto& v : train) train_mos.push_back(oracle_.score(v));
  for (const auto& v : test) test_mos.push_back(oracle_.score(v));

  qoe::SenseiQoeModel ours(out.profile.weights);
  qoe::KsqiModel ksqi;
  ours.train(train, train_mos);
  ksqi.train(train, train_mos);

  double ours_plcc = util::pearson(ours.predict_all(test), test_mos);
  double ksqi_plcc = util::pearson(ksqi.predict_all(test), test_mos);
  EXPECT_GT(ours_plcc, ksqi_plcc);
}

TEST_F(IntegrationTest, BbaSessionsScoreReasonably) {
  abr::BbaAbr bba;
  sim::Player player;
  auto traces = net::TraceGenerator::test_set(500.0);
  for (size_t t = 2; t < traces.size(); t += 3) {
    auto session = player.stream(video_, traces[t], bba);
    double q = oracle_.score(session.to_rendered(video_));
    EXPECT_GT(q, 0.1);
    EXPECT_LE(q, 1.0);
  }
}

TEST_F(IntegrationTest, WeightHorizonReachesPolicy) {
  // The manifest horizon plumbing: a policy observing weights must see
  // exactly the configured horizon while far from the video end.
  struct Probe : sim::AbrPolicy {
    size_t seen = 0;
    const char* name() const override { return "probe"; }
    sim::AbrDecision decide(const sim::AbrObservation& obs) override {
      if (obs.next_chunk == 10) seen = obs.future_weights.size();
      return {1, 0.0};
    }
  } probe;
  std::vector<double> weights(video_.num_chunks(), 1.0);
  sim::PlayerConfig config;
  config.weight_horizon = 5;
  sim::Player player(config);
  auto trace = net::TraceGenerator::broadband("bb", 3000, 600.0, 25);
  player.stream(video_, trace, probe, weights);
  EXPECT_EQ(probe.seen, 5u);
}

}  // namespace
}  // namespace sensei
