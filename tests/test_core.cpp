#include "core/sensei.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "media/dataset.h"
#include "util/stats.h"

namespace sensei::core {
namespace {

class CoreTest : public ::testing::Test {
 protected:
  media::EncodedVideo video_ = media::Encoder().encode(
      media::SourceVideo::generate("CoreTest", media::Genre::kAnimation, 80));
  crowd::GroundTruthQoE oracle_;
};

TEST_F(CoreTest, ProfileProducesManifestWithWeights) {
  Sensei sensei(oracle_, crowd::SchedulerConfig(), 11);
  ProfileOutput out = sensei.profile(video_);
  EXPECT_EQ(out.manifest.video_name, video_.source().name());
  EXPECT_EQ(out.manifest.num_chunks, video_.num_chunks());
  EXPECT_EQ(out.manifest.weights.size(), video_.num_chunks());
  EXPECT_EQ(out.manifest.bitrates_kbps.size(), 5u);
  EXPECT_NEAR(util::mean(out.profile.weights), 1.0, 1e-9);
  EXPECT_GT(out.profile.cost_usd, 0.0);
}

TEST_F(CoreTest, ManifestSurvivesXmlRoundTrip) {
  Sensei sensei(oracle_, crowd::SchedulerConfig(), 12);
  ProfileOutput out = sensei.profile(video_);
  sim::Manifest parsed = sim::Manifest::from_xml(out.manifest.to_xml());
  ASSERT_EQ(parsed.weights.size(), out.manifest.weights.size());
  for (size_t i = 0; i < parsed.weights.size(); ++i) {
    EXPECT_NEAR(parsed.weights[i], out.manifest.weights[i], 1e-6);
  }
}

TEST_F(CoreTest, QoeModelBuiltFromProfile) {
  Sensei sensei(oracle_, crowd::SchedulerConfig(), 13);
  ProfileOutput out = sensei.profile(video_);
  qoe::SenseiQoeModel model = ProfilingPipeline::make_qoe_model(out);
  EXPECT_EQ(model.weights(), out.profile.weights);
  double q = model.predict(sim::RenderedVideo::pristine(video_));
  EXPECT_GT(q, 0.0);
  EXPECT_LE(q, 1.0);
}

TEST_F(CoreTest, FactoryConfigurations) {
  auto fugu = Sensei::make_fugu();
  EXPECT_FALSE(fugu->config().use_weights);
  EXPECT_EQ(fugu->config().rebuffer_options.size(), 1u);

  auto sensei_fugu = Sensei::make_sensei_fugu();
  EXPECT_TRUE(sensei_fugu->config().use_weights);
  EXPECT_EQ(sensei_fugu->config().rebuffer_options.size(), 3u);

  auto bitrate_only = Sensei::make_sensei_fugu_bitrate_only();
  EXPECT_TRUE(bitrate_only->config().use_weights);
  EXPECT_EQ(bitrate_only->config().rebuffer_options.size(), 1u);

  auto pensieve = Sensei::make_pensieve();
  EXPECT_FALSE(pensieve->config().sensei_mode);
  auto sensei_pensieve = Sensei::make_sensei_pensieve();
  EXPECT_TRUE(sensei_pensieve->config().sensei_mode);
}

TEST_F(CoreTest, ProfilingIsDeterministicPerSeed) {
  Sensei a(oracle_, crowd::SchedulerConfig(), 99);
  Sensei b(oracle_, crowd::SchedulerConfig(), 99);
  EXPECT_EQ(a.profile(video_).profile.weights, b.profile(video_).profile.weights);
}

}  // namespace
}  // namespace sensei::core
