// ExperimentRunner: the parallel fan-out must be a drop-in replacement for
// the serial loop — bit-identical results, task-indexed (never worker-
// indexed) random streams, and clean exception propagation.
#include "core/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "abr/bba.h"
#include "core/experiments.h"

namespace sensei {
namespace {

using core::ExperimentRunner;
using core::Experiments;

TEST(RunnerTest, DefaultsToHardwareConcurrency) {
  ExperimentRunner runner;
  EXPECT_GE(runner.num_threads(), 1u);
}

TEST(RunnerTest, RunsEveryTaskExactlyOnce) {
  ExperimentRunner runner(4);
  constexpr size_t kTasks = 257;  // not a multiple of the worker count
  std::vector<std::atomic<int>> hits(kTasks);
  runner.for_each(kTasks, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(RunnerTest, ZeroTasksIsANoop) {
  ExperimentRunner runner(4);
  bool touched = false;
  runner.for_each(0, [&](size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(RunnerTest, SingleThreadRunsInlineInOrder) {
  ExperimentRunner runner(1);
  EXPECT_EQ(runner.num_threads(), 1u);
  // With one thread the calling thread drains the cursor itself, so tasks
  // observe strict index order — the serial baseline.
  std::vector<size_t> order;
  runner.for_each(16, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(RunnerTest, MapParallelMatchesSerialBitwise) {
  auto task = [](size_t i) {
    // A deterministic but nontrivial float computation per index.
    util::Rng rng(ExperimentRunner::task_seed(99, i));
    double acc = 0.0;
    for (int k = 0; k < 50; ++k) acc += std::sin(rng.uniform() * (1.0 + i));
    return acc;
  };
  ExperimentRunner serial(1);
  ExperimentRunner parallel(4);
  auto a = serial.map(123, task);
  auto b = parallel.map(123, task);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "task " << i;  // exact, not approximate
  }
}

TEST(RunnerTest, TaskSeedDependsOnlyOnBaseSeedAndIndex) {
  EXPECT_EQ(ExperimentRunner::task_seed(1, 7), ExperimentRunner::task_seed(1, 7));
  EXPECT_NE(ExperimentRunner::task_seed(1, 7), ExperimentRunner::task_seed(1, 8));
  EXPECT_NE(ExperimentRunner::task_seed(1, 7), ExperimentRunner::task_seed(2, 7));
  // Consecutive indices must not yield correlated (e.g. offset-by-one) seeds.
  std::set<uint64_t> seeds;
  for (size_t i = 0; i < 100; ++i) seeds.insert(ExperimentRunner::task_seed(42, i));
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(RunnerTest, SeededStreamsAreScheduleIndependent) {
  auto draw_all = [](const ExperimentRunner& runner) {
    std::vector<double> first(64), second(64);
    runner.for_each_seeded(64, 0xABCD, [&](size_t i, util::Rng& rng) {
      first[i] = rng.uniform();
      second[i] = rng.normal();
    });
    std::vector<double> out = first;
    out.insert(out.end(), second.begin(), second.end());
    return out;
  };
  ExperimentRunner serial(1);
  ExperimentRunner parallel(4);
  EXPECT_EQ(draw_all(serial), draw_all(parallel));
}

TEST(RunnerTest, ExceptionPropagatesFromWorkerTask) {
  ExperimentRunner runner(4);
  EXPECT_THROW(runner.for_each(100,
                               [&](size_t i) {
                                 if (i == 57) throw std::runtime_error("task 57 failed");
                               }),
               std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<size_t> done{0};
  runner.for_each(32, [&](size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 32u);
}

TEST(RunnerTest, ExceptionPropagatesWithSingleThread) {
  ExperimentRunner runner(1);
  EXPECT_THROW(
      runner.for_each(8, [&](size_t i) {
        if (i == 3) throw std::invalid_argument("bad task");
      }),
      std::invalid_argument);
}

// --- Experiments::run_grid on top of the runner ----------------------------

class RunnerGridTest : public ::testing::Test {
 protected:
  static std::vector<media::EncodedVideo> grid_videos() {
    const auto& all = Experiments::videos();
    return {all.begin(), all.begin() + 3};
  }
  static std::vector<net::ThroughputTrace> grid_traces() {
    const auto& all = Experiments::traces();
    return {all.begin(), all.begin() + 2};
  }
  static Experiments::PolicyFactory bba_factory() {
    return [] { return std::make_unique<abr::BbaAbr>(); };
  }
};

TEST_F(RunnerGridTest, ParallelGridBitIdenticalToSerial) {
  auto videos = grid_videos();
  auto traces = grid_traces();
  ExperimentRunner serial(1);
  ExperimentRunner parallel(4);
  auto a = Experiments::run_grid(videos, traces, bba_factory(), {}, serial);
  auto b = Experiments::run_grid(videos, traces, bba_factory(), {}, parallel);
  ASSERT_EQ(a.size(), videos.size() * traces.size());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].true_qoe, b[i].true_qoe) << "cell " << i;
    const auto& ca = a[i].session.chunks();
    const auto& cb = b[i].session.chunks();
    ASSERT_EQ(ca.size(), cb.size()) << "cell " << i;
    for (size_t c = 0; c < ca.size(); ++c) {
      EXPECT_EQ(ca[c].level, cb[c].level);
      EXPECT_EQ(ca[c].rebuffer_s, cb[c].rebuffer_s);
      EXPECT_EQ(ca[c].buffer_after_s, cb[c].buffer_after_s);
      EXPECT_EQ(ca[c].visual_quality, cb[c].visual_quality);
    }
  }
}

TEST_F(RunnerGridTest, GridMatchesDirectSerialLoopRowMajor) {
  auto videos = grid_videos();
  auto traces = grid_traces();
  ExperimentRunner parallel(4);
  auto grid = Experiments::run_grid(videos, traces, bba_factory(), {}, parallel);
  for (size_t v = 0; v < videos.size(); ++v) {
    for (size_t t = 0; t < traces.size(); ++t) {
      abr::BbaAbr bba;
      auto direct = Experiments::run(videos[v], traces[t], bba, {});
      const auto& cell = grid[v * traces.size() + t];
      EXPECT_EQ(cell.true_qoe, direct.true_qoe) << "v=" << v << " t=" << t;
      EXPECT_EQ(cell.session.video_name(), direct.session.video_name());
      EXPECT_EQ(cell.session.trace_name(), direct.session.trace_name());
    }
  }
}

TEST_F(RunnerGridTest, MismatchedWeightsThrow) {
  ExperimentRunner runner(2);
  std::vector<std::vector<double>> wrong(grid_videos().size() + 1);
  EXPECT_THROW(
      Experiments::run_grid(grid_videos(), grid_traces(), bba_factory(), wrong, runner),
      std::invalid_argument);
}

TEST_F(RunnerGridTest, PolicyFactoryExceptionPropagates) {
  ExperimentRunner runner(2);
  Experiments::PolicyFactory broken = []() -> std::unique_ptr<sim::AbrPolicy> {
    throw std::runtime_error("factory failed");
  };
  EXPECT_THROW(Experiments::run_grid(grid_videos(), grid_traces(), broken, {}, runner),
               std::runtime_error);
}

}  // namespace
}  // namespace sensei
