#include "media/encoder.h"

#include <gtest/gtest.h>

namespace sensei::media {
namespace {

class EncoderTest : public ::testing::Test {
 protected:
  SourceVideo video_ = SourceVideo::generate("EncTest", Genre::kSports, 80);
  Encoder encoder_;
  EncodedVideo encoded_ = encoder_.encode(video_);
};

TEST_F(EncoderTest, ShapeMatchesSource) {
  EXPECT_EQ(encoded_.num_chunks(), video_.num_chunks());
  EXPECT_EQ(encoded_.ladder().level_count(), 5u);
  EXPECT_DOUBLE_EQ(encoded_.chunk_duration_s(), 4.0);
}

TEST_F(EncoderTest, VisualQualityIncreasesWithBitrate) {
  for (size_t i = 0; i < encoded_.num_chunks(); ++i) {
    for (size_t l = 1; l < 5; ++l) {
      EXPECT_GT(encoded_.visual_quality(i, l), encoded_.visual_quality(i, l - 1));
    }
  }
}

TEST_F(EncoderTest, SizesIncreaseWithBitrate) {
  for (size_t i = 0; i < encoded_.num_chunks(); ++i) {
    for (size_t l = 1; l < 5; ++l) {
      EXPECT_GT(encoded_.size_bytes(i, l), encoded_.size_bytes(i, l - 1));
    }
  }
}

TEST_F(EncoderTest, SizesAreNearNominalBitrate) {
  // VBR factor is clamped to [0.6, 1.5] of nominal.
  for (size_t i = 0; i < encoded_.num_chunks(); ++i) {
    for (size_t l = 0; l < 5; ++l) {
      double nominal = encoded_.ladder().kbps(l) * 1000.0 / 8.0 * 4.0;
      EXPECT_GE(encoded_.size_bytes(i, l), 0.6 * nominal - 1);
      EXPECT_LE(encoded_.size_bytes(i, l), 1.5 * nominal + 1);
    }
  }
}

TEST_F(EncoderTest, EncodingIsDeterministic) {
  EncodedVideo again = encoder_.encode(video_);
  for (size_t i = 0; i < encoded_.num_chunks(); ++i) {
    EXPECT_DOUBLE_EQ(encoded_.size_bytes(i, 2), again.size_bytes(i, 2));
    EXPECT_DOUBLE_EQ(encoded_.visual_quality(i, 2), again.visual_quality(i, 2));
  }
}

TEST(EncoderCurve, QualityDecreasesWithComplexity) {
  double easy = Encoder::visual_quality(1200, 0.2);
  double hard = Encoder::visual_quality(1200, 0.9);
  EXPECT_GT(easy, hard);
}

TEST(EncoderCurve, QualitySaturates) {
  double q1 = Encoder::visual_quality(2850, 0.5);
  double q2 = Encoder::visual_quality(28500, 0.5);
  EXPECT_GT(q2, q1);
  EXPECT_LE(q2, 1.0);
  EXPECT_LT(q2 - q1, 0.2);  // diminishing returns
}

TEST(EncoderCurve, QualityBounds) {
  EXPECT_GE(Encoder::visual_quality(0, 0.5), 0.0);
  EXPECT_LE(Encoder::visual_quality(1e9, 0.01), 1.0);
  // The paper's ladder spans a meaningful range at mid complexity.
  double low = Encoder::visual_quality(300, 0.5);
  double high = Encoder::visual_quality(2850, 0.5);
  EXPECT_LT(low, 0.5);
  EXPECT_GT(high, 0.8);
}

}  // namespace
}  // namespace sensei::media
