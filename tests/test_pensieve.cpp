#include "abr/pensieve.h"

#include "abr/fugu.h"

#include <gtest/gtest.h>

#include "media/dataset.h"
#include "net/trace_gen.h"
#include "qoe/ksqi.h"
#include "sim/player.h"

namespace sensei::abr {
namespace {

class PensieveTest : public ::testing::Test {
 protected:
  media::EncodedVideo video_ = media::Encoder().encode(
      media::SourceVideo::generate("PenTest", media::Genre::kSports, 120));
  sim::Player player_;
};

TEST_F(PensieveTest, FeatureLayoutBaseMode) {
  PensieveAbr policy{PensieveConfig{}, 1};
  EXPECT_EQ(policy.feature_count(), 1u + 1 + 8 + 1 + 5 + 1);
  EXPECT_EQ(policy.action_count(), 5u);
}

TEST_F(PensieveTest, FeatureLayoutSenseiMode) {
  PensieveConfig cfg;
  cfg.sensei_mode = true;
  PensieveAbr policy{cfg, 1};
  EXPECT_EQ(policy.feature_count(), 17u + cfg.weight_horizon);
  EXPECT_EQ(policy.action_count(), 5u + cfg.rebuffer_actions.size());
}

TEST_F(PensieveTest, FeaturizeProducesBoundedValues) {
  PensieveConfig cfg;
  cfg.sensei_mode = true;
  PensieveAbr policy{cfg, 2};
  sim::AbrObservation obs;
  obs.video = &video_;
  obs.next_chunk = 10;
  obs.num_chunks = video_.num_chunks();
  obs.buffer_s = 15.0;
  obs.last_level = 3;
  obs.throughput_history_kbps = {1000, 2000, 1500};
  obs.future_weights = {1.2, 0.8};
  auto f = policy.featurize(obs);
  ASSERT_EQ(f.size(), policy.feature_count());
  for (double v : f) {
    EXPECT_GE(v, -0.01);
    EXPECT_LT(v, 10.0);
  }
  // Missing future weights pad with 1.0.
  EXPECT_DOUBLE_EQ(f[f.size() - 1], 1.0);
  EXPECT_DOUBLE_EQ(f[f.size() - 5], 1.2);
}

TEST_F(PensieveTest, GreedyDecisionsAreDeterministic) {
  PensieveAbr a{PensieveConfig{}, 7};
  PensieveAbr b{PensieveConfig{}, 7};
  auto trace = net::TraceGenerator::broadband("b", 2000, 600.0, 3);
  auto sa = player_.stream(video_, trace, a);
  auto sb = player_.stream(video_, trace, b);
  for (size_t i = 0; i < sa.chunks().size(); ++i) {
    EXPECT_EQ(sa.chunks()[i].level, sb.chunks()[i].level);
  }
}

TEST_F(PensieveTest, TrainingRecordsEpisodes) {
  PensieveAbr policy{PensieveConfig{}, 8};
  policy.set_training(true);
  auto trace = net::TraceGenerator::cellular("c", 1500, 600.0, 4);
  player_.stream(video_, trace, policy);
  EXPECT_EQ(policy.episode().size(), video_.num_chunks());
  policy.set_training(false);
}

TEST_F(PensieveTest, EvaluationDoesNotRecord) {
  PensieveAbr policy{PensieveConfig{}, 9};
  auto trace = net::TraceGenerator::cellular("c", 1500, 600.0, 5);
  player_.stream(video_, trace, policy);
  EXPECT_TRUE(policy.episode().empty());
}

TEST_F(PensieveTest, RebufferActionMaskedOnFirstChunk) {
  PensieveConfig cfg;
  cfg.sensei_mode = true;
  PensieveAbr policy{cfg, 10};
  policy.set_training(true);  // sampling could hit rebuffer actions
  auto trace = net::TraceGenerator::broadband("b", 2500, 600.0, 6);
  std::vector<double> w(video_.num_chunks(), 1.0);
  auto s = player_.stream(video_, trace, policy, w);
  EXPECT_DOUBLE_EQ(s.chunks()[0].scheduled_rebuffer_s, 0.0);
}

TEST_F(PensieveTest, RewardsFromSessionUseWeights) {
  FuguAbr helper;  // any policy; we only need a session
  auto trace = net::TraceGenerator::broadband("b", 2000, 600.0, 7);
  auto session = player_.stream(video_, trace, helper);
  std::vector<double> unit(video_.num_chunks(), 1.0);
  std::vector<double> heavy(video_.num_chunks(), 2.0);
  auto r1 = PensieveTrainer::rewards_from_session(session, unit, {});
  auto r2 = PensieveTrainer::rewards_from_session(session, heavy, {});
  ASSERT_EQ(r1.size(), session.chunks().size());
  for (size_t i = 0; i < r1.size(); ++i) EXPECT_NEAR(r2[i], 2.0 * r1[i], 1e-9);
}

TEST_F(PensieveTest, CloneUpdateMovesPolicyTowardTeacher) {
  PensieveAbr policy{PensieveConfig{}, 11};
  // Build a fixed state and repeatedly clone toward action 3.
  sim::AbrObservation obs;
  obs.video = &video_;
  obs.next_chunk = 5;
  obs.num_chunks = video_.num_chunks();
  obs.buffer_s = 12.0;
  auto features = policy.featurize(obs);
  for (int it = 0; it < 200; ++it) {
    policy.set_training(true);
    policy.mutable_episode().push_back({features, 0});
    policy.clone_update({3}, 5e-3);
    policy.set_training(false);
  }
  // Greedy decision at that state should now be action 3.
  auto d = policy.decide(obs);
  EXPECT_EQ(d.level, 3u);
}

TEST_F(PensieveTest, ShortTrainingRunImprovesReward) {
  // Smoke test that the full trainer loop runs and the trained policy is at
  // least as good as the untrained one on a training trace.
  PensieveAbr policy{PensieveConfig{}, 12};
  std::vector<media::EncodedVideo> videos = {video_};
  std::vector<net::ThroughputTrace> traces = {
      net::TraceGenerator::broadband("t", 1800, 600.0, 8)};

  auto mean_quality = [&](PensieveAbr& p) {
    auto s = player_.stream(video_, traces[0], p);
    return qoe::KsqiModel().raw_score(s.to_rendered(video_));
  };

  double before = mean_quality(policy);
  PensieveTrainer::Options options;
  options.episodes = 600;
  options.bc_episodes = 150;
  options.seed = 13;
  PensieveTrainer::train(policy, videos, traces, {}, options);
  double after = mean_quality(policy);
  EXPECT_GT(after, before - 0.05);  // never catastrophically worse
}

TEST_F(PensieveTest, TrainerValidatesInputs) {
  PensieveAbr policy{PensieveConfig{}, 14};
  std::vector<media::EncodedVideo> videos = {video_};
  std::vector<net::ThroughputTrace> traces;
  EXPECT_THROW(PensieveTrainer::train(policy, videos, traces, {}), std::runtime_error);
  traces.push_back(net::TraceGenerator::broadband("t", 1800, 300.0, 9));
  std::vector<std::vector<double>> bad_weights(3);
  EXPECT_THROW(PensieveTrainer::train(policy, videos, traces, bad_weights),
               std::runtime_error);
}

}  // namespace
}  // namespace sensei::abr
