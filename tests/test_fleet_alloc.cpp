// Steady-state allocation gates for the fleet hot path (this binary has a
// counting global operator new, like tests/test_session_alloc.cpp):
//
//  1. Engine recycling: once a SessionEngine has streamed one session on a
//     recycling SharedLink with record_timeline off, reset() + a full
//     further session performs ZERO heap allocations — the reset-don't-
//     reallocate contract the fleet's free pool is built on.
//  2. Fleet steady state: in a running cell, once concurrency has peaked
//     and the pools are warm, finishing and admitting further sessions
//     allocates nothing — memory is bounded by peak concurrency, not
//     session count.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "abr/bba.h"
#include "core/runner.h"
#include "media/dataset.h"
#include "net/shared_link.h"
#include "net/trace_gen.h"
#include "sim/fleet.h"
#include "sim/session_engine.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sensei::sim {
namespace {

// Drives one shared-link session to completion (the Simulator loop for a
// single engine).
void drive(SessionEngine& engine, net::SharedLink& link) {
  while (!engine.done()) {
    double t = std::min(engine.next_event_time(), link.next_completion_s());
    ASSERT_TRUE(std::isfinite(t));
    link.advance_to(t);
    bool completed = false;
    for (const net::SharedLink::Completion& c : link.completions_sorted()) {
      engine.complete_transfer(c.finish_s);
      completed = true;
    }
    link.clear_completions();
    if (!completed) engine.advance_to(t);
  }
}

TEST(FleetAllocation, RecycledEngineStreamsSessionsWithoutAllocating) {
  media::EncodedVideo video = media::Encoder().encode(
      media::SourceVideo::generate("FleetAlloc", media::Genre::kSports, 120));
  net::ThroughputTrace trace =
      net::TraceGenerator::cellular("fleet-alloc-cell", 2400, 500.0, 5);
  net::SharedLink link(trace, /*recycle_ids=*/true);

  PlayerConfig config;
  config.record_timeline = false;
  abr::BbaAbr bba;
  SessionEngine engine(config, video, link, bba, {}, link.now_s());
  drive(engine, link);  // session 1: growth to high-water capacity
  ASSERT_EQ(engine.records().size(), video.num_chunks());

  for (int repeat = 0; repeat < 3; ++repeat) {
    double start_s = link.now_s();
    std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    engine.reset(video, link, bba, {}, start_s, /*chunk_limit=*/20);
    drive(engine, link);
    std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
    ASSERT_EQ(engine.records().size(), 20u);
    EXPECT_EQ(engine.outcome(), SessionOutcome::kCompleted);
    EXPECT_EQ(after - before, 0u) << "repeat " << repeat;
  }
}

TEST(FleetAllocation, FleetSteadyStateAddsNoPerSessionAllocations) {
  media::Encoder encoder;
  std::vector<media::EncodedVideo> videos;
  videos.push_back(
      encoder.encode(media::SourceVideo::generate("FleetAllocA", media::Genre::kSports, 48)));
  std::vector<const media::EncodedVideo*> video_ptrs = {&videos[0]};

  FleetConfig config;
  config.num_cells = 1;
  config.seed = 31;
  config.workload.arrival_rate_per_s = 1.0;
  config.workload.arrival_window_s = 80.0;
  config.workload.policy_mix = {{"bba", 1.0}};  // BBA only: no planner warm-up noise
  config.workload.abandon_fraction = 0.5;
  config.workload.mean_abandon_chunks = 10.0;

  // Allocation counter sampled at every session retirement. Once the cell
  // has warmed (concurrency peak reached, pools and link at high water),
  // the counter must freeze: sessions keep finishing and being admitted
  // with zero heap traffic.
  std::vector<std::uint64_t> at_retire;
  at_retire.reserve(4096);  // the probe itself must not allocate in the window
  config.on_session_done = [&](size_t, const SessionArrival&, const SessionEngine&) {
    at_retire.push_back(g_allocations.load(std::memory_order_relaxed));
  };
  core::ExperimentRunner runner(1);
  FleetAggregates agg = FleetSimulator(config).run(video_ptrs, runner);
  ASSERT_EQ(agg.sessions, at_retire.size());
  ASSERT_GT(at_retire.size(), 30u);

  // Growth (slots, pools, link bookkeeping, planner buffers) is allowed to
  // finish in the first two thirds; after that the counter must freeze.
  size_t tail_begin = at_retire.size() * 2 / 3;
  for (size_t i = tail_begin; i < at_retire.size(); ++i) {
    EXPECT_EQ(at_retire[i], at_retire[tail_begin]) << "retirement " << i;
  }
}

}  // namespace
}  // namespace sensei::sim
