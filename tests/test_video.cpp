#include "media/video.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sensei::media {
namespace {

TEST(Video, GenerateHasExpectedShape) {
  SourceVideo v = SourceVideo::generate("Clip", Genre::kSports, 220);
  EXPECT_EQ(v.name(), "Clip");
  EXPECT_EQ(v.genre(), Genre::kSports);
  EXPECT_EQ(v.num_chunks(), 55u);  // 220 s / 4 s
  EXPECT_DOUBLE_EQ(v.chunk_duration_s(), 4.0);
  EXPECT_DOUBLE_EQ(v.duration_s(), 220.0);
}

TEST(Video, GenerateRoundsUpPartialChunk) {
  SourceVideo v = SourceVideo::generate("Clip", Genre::kSports, 10);
  EXPECT_EQ(v.num_chunks(), 3u);  // ceil(10/4)
}

TEST(Video, GenerateRejectsBadInputs) {
  EXPECT_THROW(SourceVideo::generate("X", Genre::kSports, 0), std::runtime_error);
  EXPECT_THROW(SourceVideo("X", Genre::kSports, "d", {}, 0.0), std::runtime_error);
}

TEST(Video, TrueSensitivityMatchesChunks) {
  SourceVideo v = SourceVideo::generate("Sens", Genre::kGaming, 60);
  auto s = v.true_sensitivity();
  ASSERT_EQ(s.size(), v.num_chunks());
  for (size_t i = 0; i < s.size(); ++i) EXPECT_DOUBLE_EQ(s[i], v.chunk(i).sensitivity);
}

TEST(Video, LengthString) {
  EXPECT_EQ(SourceVideo::generate("A", Genre::kSports, 220).length_string(), "3:40");
  EXPECT_EQ(SourceVideo::generate("B", Genre::kSports, 84).length_string(), "1:24");
  EXPECT_EQ(SourceVideo::generate("C", Genre::kSports, 596).length_string(), "9:56");
}

TEST(Video, ClipExtractsSubrange) {
  SourceVideo v = SourceVideo::generate("Full", Genre::kNature, 100);
  SourceVideo c = v.clip(3, 5, "Full-clip");
  EXPECT_EQ(c.num_chunks(), 5u);
  EXPECT_EQ(c.name(), "Full-clip");
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(c.chunk(i).sensitivity, v.chunk(3 + i).sensitivity);
  }
}

TEST(Video, ClipOutOfRangeThrows) {
  SourceVideo v = SourceVideo::generate("Full", Genre::kNature, 40);
  EXPECT_THROW(v.clip(8, 5, "bad"), std::runtime_error);
}

TEST(Video, GenerationIsReproducible) {
  SourceVideo a = SourceVideo::generate("Same", Genre::kAnimation, 120);
  SourceVideo b = SourceVideo::generate("Same", Genre::kAnimation, 120);
  ASSERT_EQ(a.num_chunks(), b.num_chunks());
  for (size_t i = 0; i < a.num_chunks(); ++i) {
    EXPECT_DOUBLE_EQ(a.chunk(i).sensitivity, b.chunk(i).sensitivity);
  }
}

}  // namespace
}  // namespace sensei::media
