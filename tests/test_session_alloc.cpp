// Steady-state allocation gate for the session hot path: once the first
// chunk has been decided, streaming a video must not touch the heap — the
// trace cursor reads the prebuilt index, the observation/history/trajectory
// buffers are at their high-water capacity, the predictors run on fixed
// rings, and the MPC planner reuses its grow-only arena.
//
// Measured with a counting global operator new (this test binary only):
// a wrapper policy snapshots the allocation counter at its second decision
// (chunk 1 — per-session setup and first-chunk growth are allowed) and the
// test asserts the counter never moved by the last decision.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "abr/bba.h"
#include "abr/fugu.h"
#include "abr/rate_based.h"
#include "abr/whittle.h"
#include "media/dataset.h"
#include "net/trace_gen.h"
#include "sim/player.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sensei::sim {
namespace {

// Forwards to the wrapped policy while recording the global allocation
// counter at chunk 1 (steady state begins) and at every later decision.
class AllocationProbePolicy : public AbrPolicy {
 public:
  explicit AllocationProbePolicy(AbrPolicy& inner) : inner_(&inner) {}

  const char* name() const override { return inner_->name(); }

  void begin_session(const media::EncodedVideo& video) override {
    inner_->begin_session(video);
    steady_start_ = 0;
    steady_end_ = 0;
    decisions_ = 0;
  }

  AbrDecision decide(const AbrObservation& obs) override {
    AbrDecision d = inner_->decide(obs);
    // Snapshot *after* the inner decision so chunk 1's own decide cost is
    // included in the window.
    std::uint64_t count = g_allocations.load(std::memory_order_relaxed);
    if (obs.next_chunk == 1) steady_start_ = count;
    if (obs.next_chunk >= 1) steady_end_ = count;
    ++decisions_;
    return d;
  }

  // Allocations between the chunk-1 decision and the last decision.
  std::uint64_t steady_state_allocations() const { return steady_end_ - steady_start_; }
  size_t decisions() const { return decisions_; }

 private:
  AbrPolicy* inner_;
  std::uint64_t steady_start_ = 0;
  std::uint64_t steady_end_ = 0;
  size_t decisions_ = 0;
};

class SessionAllocation : public ::testing::Test {
 protected:
  media::EncodedVideo video_ = media::Encoder().encode(
      media::SourceVideo::generate("AllocGate", media::Genre::kSports, 240));
  net::ThroughputTrace trace_ = net::TraceGenerator::cellular("alloc-cell", 1100, 600.0, 31);
};

TEST_F(SessionAllocation, BbaStreamsWithoutAllocatingOnBothEngines) {
  for (auto engine : {TimingEngine::kTimeline, TimingEngine::kLegacy}) {
    abr::BbaAbr bba;
    AllocationProbePolicy probe(bba);
    PlayerConfig config;
    config.engine = engine;
    SessionResult s = Player(config).stream(video_, trace_, probe);
    ASSERT_EQ(s.chunks().size(), video_.num_chunks());
    ASSERT_GT(probe.decisions(), 10u);
    EXPECT_EQ(probe.steady_state_allocations(), 0u)
        << (engine == TimingEngine::kTimeline ? "timeline" : "legacy");
  }
}

TEST_F(SessionAllocation, RateBasedStreamsWithoutAllocatingOnBothEngines) {
  for (auto engine : {TimingEngine::kTimeline, TimingEngine::kLegacy}) {
    abr::RateBasedAbr rate;
    AllocationProbePolicy probe(rate);
    PlayerConfig config;
    config.engine = engine;
    SessionResult s = Player(config).stream(video_, trace_, probe);
    ASSERT_EQ(s.chunks().size(), video_.num_chunks());
    EXPECT_EQ(probe.steady_state_allocations(), 0u)
        << (engine == TimingEngine::kTimeline ? "timeline" : "legacy");
  }
}

TEST_F(SessionAllocation, WhittleStreamsWithoutAllocatingOnBothEngines) {
  // The Whittle index is O(levels) arithmetic per decide over a fixed-ring
  // predictor: allocation-free from the first decision on.
  for (auto engine : {TimingEngine::kTimeline, TimingEngine::kLegacy}) {
    abr::WhittleIndexAbr whittle;
    AllocationProbePolicy probe(whittle);
    PlayerConfig config;
    config.engine = engine;
    SessionResult s = Player(config).stream(video_, trace_, probe);
    ASSERT_EQ(s.chunks().size(), video_.num_chunks());
    EXPECT_EQ(probe.steady_state_allocations(), 0u)
        << (engine == TimingEngine::kTimeline ? "timeline" : "legacy");
  }
}

TEST_F(SessionAllocation, FuguSteadyStateStopsAllocatingOnceArenaIsWarm) {
  // The DP planner's arena is grow-only: the first identical session
  // reaches its high-water mark, so a repeat session must stream without a
  // single allocation after chunk 1.
  for (auto engine : {TimingEngine::kTimeline, TimingEngine::kLegacy}) {
    abr::FuguConfig cfg;
    cfg.use_weights = true;
    cfg.rebuffer_options = {0.0, 1.0, 2.0};
    abr::FuguAbr fugu(cfg);
    AllocationProbePolicy probe(fugu);
    PlayerConfig config;
    config.engine = engine;
    std::vector<double> weights(video_.num_chunks(), 1.0);
    for (size_t i = 4; i < weights.size(); i += 9) weights[i] = 2.3;

    Player player(config);
    player.stream(video_, trace_, probe, weights);  // warm the arena
    SessionResult s = player.stream(video_, trace_, probe, weights);
    ASSERT_EQ(s.chunks().size(), video_.num_chunks());
    EXPECT_EQ(probe.steady_state_allocations(), 0u)
        << (engine == TimingEngine::kTimeline ? "timeline" : "legacy");
  }
}

}  // namespace
}  // namespace sensei::sim
