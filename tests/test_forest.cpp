#include "ml/forest.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace sensei::ml {
namespace {

// Synthetic regression task: y = 2*x0 + step(x1).
std::pair<std::vector<std::vector<double>>, std::vector<double>> make_data(int n,
                                                                           uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < n; ++i) {
    double x0 = rng.uniform(0, 1), x1 = rng.uniform(0, 1), x2 = rng.uniform(0, 1);
    x.push_back({x0, x1, x2});
    y.push_back(2.0 * x0 + (x1 > 0.5 ? 1.0 : 0.0));
  }
  return {x, y};
}

TEST(Forest, UntrainedPredictsZero) {
  RandomForest forest;
  EXPECT_FALSE(forest.trained());
  EXPECT_DOUBLE_EQ(forest.predict({1, 2, 3}), 0.0);
}

TEST(Forest, FitsAndBeatsMeanBaseline) {
  auto [x, y] = make_data(400, 11);
  util::Rng rng(12);
  ForestConfig cfg;
  cfg.num_trees = 40;
  RandomForest forest(cfg);
  forest.fit(x, y, rng);
  EXPECT_TRUE(forest.trained());
  EXPECT_EQ(forest.tree_count(), 40u);

  auto [xt, yt] = make_data(100, 13);
  double ymean = util::mean(y);
  double forest_se = 0.0, baseline_se = 0.0;
  for (size_t i = 0; i < xt.size(); ++i) {
    double p = forest.predict(xt[i]);
    forest_se += (p - yt[i]) * (p - yt[i]);
    baseline_se += (ymean - yt[i]) * (ymean - yt[i]);
  }
  EXPECT_LT(forest_se, baseline_se * 0.25);
}

TEST(Forest, IgnoresIrrelevantFeatureMostly) {
  auto [x, y] = make_data(400, 14);
  util::Rng rng(15);
  RandomForest forest;
  forest.fit(x, y, rng);
  // Perturbing the irrelevant x2 should barely change predictions.
  double diff = 0.0;
  for (int i = 0; i < 50; ++i) {
    std::vector<double> a = x[static_cast<size_t>(i)];
    std::vector<double> b = a;
    b[2] = 1.0 - b[2];
    diff += std::abs(forest.predict(a) - forest.predict(b));
  }
  EXPECT_LT(diff / 50.0, 0.15);
}

TEST(Forest, RespectsMaxDepth) {
  auto [x, y] = make_data(200, 16);
  util::Rng rng(17);
  ForestConfig cfg;
  cfg.num_trees = 1;
  cfg.max_depth = 1;
  cfg.features_per_split = 3;
  RegressionTree tree;
  std::vector<size_t> rows(x.size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  tree.fit(x, y, rows, cfg, rng);
  // Depth-1 tree has at most 3 nodes (root + 2 leaves).
  EXPECT_LE(tree.node_count(), 3u);
}

TEST(Forest, BadDatasetThrows) {
  RandomForest forest;
  util::Rng rng(18);
  EXPECT_THROW(forest.fit({}, {}, rng), std::runtime_error);
  EXPECT_THROW(forest.fit({{1.0}}, {1.0, 2.0}, rng), std::runtime_error);
}

TEST(Forest, DeterministicGivenSeed) {
  auto [x, y] = make_data(150, 19);
  util::Rng rng1(20), rng2(20);
  RandomForest f1, f2;
  f1.fit(x, y, rng1);
  f2.fit(x, y, rng2);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(f1.predict(x[static_cast<size_t>(i)]),
                     f2.predict(x[static_cast<size_t>(i)]));
  }
}

TEST(Forest, ConstantTargetPredictsConstant) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  util::Rng rng(21);
  for (int i = 0; i < 50; ++i) {
    x.push_back({rng.uniform(), rng.uniform()});
    y.push_back(3.5);
  }
  RandomForest forest;
  forest.fit(x, y, rng);
  EXPECT_NEAR(forest.predict({0.5, 0.5}), 3.5, 1e-9);
}

}  // namespace
}  // namespace sensei::ml
