#include "abr/planner.h"

#include <algorithm>
#include <cstring>

#include "util/kernels.h"

namespace sensei::abr {

namespace {

// 30 s buffer cap shared by the planners and the player simulator.
constexpr double kMaxBufferS = 30.0;

// Slack added to the admissible bound before pruning: absorbs rounding
// differences between the bound's fold order and the true evaluation, so a
// subtree that could still *tie* the incumbent is never dropped and the
// reference tie-break is preserved.
constexpr double kBoundSlack = 1e-9;

inline uint64_t splitmix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline uint64_t bits_of(double v) {
  uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

}  // namespace

bool degenerate_plan(const PlanQuery& q, PlanResult* out) {
  const size_t remaining =
      q.obs->next_chunk < q.obs->num_chunks ? q.obs->num_chunks - q.obs->next_chunk : 0;
  const size_t depth = std::min(q.horizon, remaining);
  if (depth > 0 && q.num_scenarios > 0 && q.num_rebuffer_options > 0) return false;
  const size_t levels = q.obs->video->ladder().level_count();
  size_t level = q.obs->last_level;
  if (levels > 0 && level >= levels) level = levels - 1;
  out->best_level = level;
  out->nostall_level = level;
  out->best_rebuffer_s = 0.0;
  out->best_value = 0.0;
  out->nostall_value = 0.0;
  return true;
}

// ---------------------------------------------------------------------------
// PlanBatch
// ---------------------------------------------------------------------------

const PlanBatch::VideoTables& PlanBatch::tables(const media::EncodedVideo& video,
                                                const qoe::ChunkQualityParams& params) {
  for (const auto& t : tables_) {
    if (t->video == &video && t->params.beta_rebuf == params.beta_rebuf &&
        t->params.rebuf_saturation == params.rebuf_saturation &&
        t->params.beta_switch == params.beta_switch && t->params.floor == params.floor) {
      return *t;
    }
  }
  auto t = std::make_unique<VideoTables>();
  t->video = &video;
  t->params = params;
  const size_t L = video.ladder().level_count();
  const size_t n = video.num_chunks();
  t->levels = L;
  t->bits_kb.resize(n * L);
  t->vq.resize(n * L);
  t->qn.resize(n * L * L);
  for (size_t c = 0; c < n; ++c) {
    for (size_t l = 0; l < L; ++l) {
      const auto& rep = video.rep(c, l);
      // Pre-scaled so a planner's download time is bits_kb / kbps + rtt —
      // the same left-associated (size * 8 / 1000) / kbps the unbatched
      // planners evaluate, hence bit-identical.
      t->bits_kb[c * L + l] = rep.size_bytes * 8.0 / 1000.0;
      t->vq[c * L + l] = rep.visual_quality;
    }
  }
  for (size_t c = 1; c < n; ++c) {
    for (size_t l = 0; l < L; ++l) {
      for (size_t p = 0; p < L; ++p) {
        t->qn[(c * L + l) * L + p] =
            qoe::chunk_quality(t->vq[c * L + l], 0.0, t->vq[(c - 1) * L + p], params);
      }
    }
  }
  tables_.push_back(std::move(t));
  return *tables_.back();
}

PlanBatch::ViValueTable& PlanBatch::vi_table(const media::EncodedVideo& video,
                                             const qoe::ChunkQualityParams& params,
                                             size_t next_chunk, size_t depth_count,
                                             size_t levels, double quantum,
                                             const double* key, size_t key_len,
                                             size_t cell_count, bool* created) {
  // FNV-1a folded a machine word at a time: every keyed field is naturally
  // 8 bytes (pointers, counts, double bit patterns), and the hash only
  // steers the probe — the full compare below decides identity — so the
  // 8x-shorter multiply chain is pure savings on this per-decide path.
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  const auto mix_u64 = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const auto mix_f64 = [&mix_u64](double d) {
    uint64_t u;
    std::memcpy(&u, &d, sizeof(u));
    mix_u64(u);
  };
  mix_u64(reinterpret_cast<uintptr_t>(&video));
  mix_u64(next_chunk);
  mix_u64(depth_count);
  mix_u64(levels);
  mix_f64(quantum);
  mix_f64(params.beta_rebuf);
  mix_f64(params.rebuf_saturation);
  mix_f64(params.beta_switch);
  mix_f64(params.floor);
  for (size_t k = 0; k < key_len; ++k) mix_f64(key[k]);

  // Grow before probing so the insert below always finds an empty slot and
  // the load factor stays under ~0.7.
  if (vi_ht_slot_.empty()) {
    vi_ht_slot_.assign(64, 0);
    vi_ht_hash_.assign(64, 0);
  } else if ((vi_list_.size() + 1) * 10 >= vi_ht_slot_.size() * 7) {
    vi_rehash(vi_ht_slot_.size() * 2);
  }
  const size_t mask = vi_ht_slot_.size() - 1;
  size_t i = splitmix(h) & mask;
  while (vi_ht_slot_[i] != 0) {
    if (vi_ht_hash_[i] == h) {
      ViValueTable& t = *vi_list_[vi_ht_slot_[i] - 1];
      if (t.video == &video && t.next_chunk == next_chunk &&
          t.depth_count == depth_count && t.levels == levels && t.quantum == quantum &&
          t.params.beta_rebuf == params.beta_rebuf &&
          t.params.rebuf_saturation == params.rebuf_saturation &&
          t.params.beta_switch == params.beta_switch && t.params.floor == params.floor &&
          t.key.size() == key_len && std::equal(t.key.begin(), t.key.end(), key)) {
        *created = false;
        return t;
      }
    }
    i = (i + 1) & mask;
  }
  vi_list_.push_back(std::make_unique<ViValueTable>());
  vi_ht_slot_[i] = static_cast<uint32_t>(vi_list_.size());
  vi_ht_hash_[i] = h;
  ViValueTable& t = *vi_list_.back();
  t.video = &video;
  t.params = params;
  t.next_chunk = next_chunk;
  t.depth_count = depth_count;
  t.levels = levels;
  t.quantum = quantum;
  t.key.assign(key, key + key_len);
  t.v.reset(new double[cell_count]);  // uninitialized on purpose, see header
  t.cell_count = cell_count;
  t.filled.assign(cell_count, 0);
  *created = true;
  return t;
}

void PlanBatch::vi_rehash(size_t new_cap) {
  std::vector<uint64_t> old_hash = std::move(vi_ht_hash_);
  std::vector<uint32_t> old_slot = std::move(vi_ht_slot_);
  vi_ht_hash_.assign(new_cap, 0);
  vi_ht_slot_.assign(new_cap, 0);
  const size_t mask = new_cap - 1;
  for (size_t j = 0; j < old_slot.size(); ++j) {
    if (old_slot[j] == 0) continue;
    size_t i = splitmix(old_hash[j]) & mask;
    while (vi_ht_slot_[i] != 0) i = (i + 1) & mask;
    vi_ht_slot_[i] = old_slot[j];
    vi_ht_hash_[i] = old_hash[j];
  }
}

size_t PlanBatch::table_bytes() const {
  size_t b = 0;
  for (const auto& t : tables_) {
    b += (t->bits_kb.capacity() + t->vq.capacity() + t->qn.capacity()) * sizeof(double);
  }
  for (const auto& t : vi_list_) {
    b += (t->key.capacity() + t->cell_count + t->dl.capacity()) * sizeof(double) +
         t->filled.capacity();
  }
  b += vi_ht_hash_.capacity() * sizeof(uint64_t) +
       vi_ht_slot_.capacity() * sizeof(uint32_t);
  return b;
}

// ---------------------------------------------------------------------------
// ExhaustivePlanner: the original Fugu recursion, kept as the equivalence
// baseline. Deliberately NOT optimized (per-node state-vector copies stay):
// it is the "before" side of bench_planner and the reference the DP must
// reproduce bit-for-bit.
// ---------------------------------------------------------------------------

PlanResult ExhaustivePlanner::plan(const PlanQuery& q) {
  if (degenerate_plan(q, &result_)) return result_;
  std::vector<PlanState> states(q.num_scenarios);
  for (auto& st : states) {
    st.buffer_s = q.obs->buffer_s;
    st.prev_vq = q.prev_visual_quality;
  }
  result_ = PlanResult{};
  plan_first_level_ = 0;
  plan_first_rebuffer_ = 0.0;
  walk(q, 0, q.obs->next_chunk, states, 0.0);
  return result_;
}

double ExhaustivePlanner::walk(const PlanQuery& q, size_t depth, size_t chunk,
                               std::vector<PlanState>& states, double prev_weighted_sum) {
  const auto& video = *q.obs->video;
  const size_t levels = video.ladder().level_count();
  const double tau = video.chunk_duration_s();

  if (depth >= q.horizon || chunk >= q.obs->num_chunks) {
    // Leaf: record if this is the best complete plan.
    if (prev_weighted_sum > result_.best_value) {
      result_.best_value = prev_weighted_sum;
      result_.best_level = plan_first_level_;
      result_.best_rebuffer_s = plan_first_rebuffer_;
    }
    if (plan_first_rebuffer_ == 0.0 && prev_weighted_sum > result_.nostall_value) {
      result_.nostall_value = prev_weighted_sum;
      result_.nostall_level = plan_first_level_;
    }
    return prev_weighted_sum;
  }

  // Weight for this horizon step: 1 when weight-unaware or none provided.
  double w = 1.0;
  if (q.use_weights && depth < q.obs->future_weights.size()) {
    w = 1.0 + q.weight_shrinkage * (q.obs->future_weights[depth] - 1.0);
  }

  static const double no_stall[1] = {0.0};
  const double* stall_options = depth == 0 ? q.rebuffer_options : no_stall;
  const size_t stall_count = depth == 0 ? q.num_rebuffer_options : 1;

  double best = -1e18;
  for (size_t level = 0; level < levels; ++level) {
    const auto& rep = video.rep(chunk, level);
    for (size_t si = 0; si < stall_count; ++si) {
      double scheduled = stall_options[si];
      // Advance each scenario independently; expectation over scenarios.
      std::vector<PlanState> next_states = states;
      double expected_q = 0.0;
      double expected_q_nostall = 0.0;
      for (size_t s = 0; s < q.num_scenarios; ++s) {
        double kbps = std::max(1.0, q.scenarios[s].kbps);
        double dl = rep.size_bytes * 8.0 / 1000.0 / kbps + 0.08;
        PlanState& st = next_states[s];
        double stall = 0.0;
        if (dl > st.buffer_s) {
          stall = dl - st.buffer_s;
          st.buffer_s = 0.0;
        } else {
          st.buffer_s -= dl;
        }
        if (scheduled > 0.0) {
          st.buffer_s += scheduled;
          stall += scheduled;
        }
        st.buffer_s = std::min(st.buffer_s + tau, kMaxBufferS);
        double qv = qoe::chunk_quality(rep.visual_quality, stall, st.prev_vq, q.chunk);
        double q_nostall =
            qoe::chunk_quality(rep.visual_quality, 0.0, st.prev_vq, q.chunk);
        st.prev_vq = rep.visual_quality;
        expected_q += q.scenarios[s].probability * qv;
        expected_q_nostall += q.scenarios[s].probability * q_nostall;
      }

      if (depth == 0) {
        plan_first_level_ = level;
        plan_first_rebuffer_ = scheduled;
      }
      // Stall terms are never discounted below neutral: a weight below 1
      // means the viewer cares less about *quality* there, not that stalling
      // is free. Decompose expected_q into its stall-free part and the stall
      // penalty part, and weight them separately.
      double value = walk(q, depth + 1, chunk + 1, next_states,
                          prev_weighted_sum + weighted_step_quality(w, expected_q,
                                                                    expected_q_nostall));
      best = std::max(best, value);
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// DpPlanner
// ---------------------------------------------------------------------------

DpPlanner::DpPlanner(double buffer_quantum_s) : quantum_(buffer_quantum_s) {}

size_t DpPlanner::arena_bytes() const {
  size_t b = 0;
  for (int i = 0; i < 2; ++i) {
    b += bufs_[i].capacity() * sizeof(double);
    b += recs_[i].capacity() * sizeof(StateRec);
  }
  b += (dl_.capacity() + vq_.capacity() + qn_.capacity() + eqn_.capacity() +
        w_.capacity() + root_qn_.capacity() + root_eqn_.capacity() + h_.capacity() +
        child_buf_.capacity() + rollout_[0].capacity() + rollout_[1].capacity()) *
       sizeof(double);
  b += child_key_.capacity() * sizeof(uint64_t) + path_.capacity() * sizeof(uint32_t);
  b += stamp_.capacity() * sizeof(uint64_t) + slot_.capacity() * sizeof(uint32_t);
  return b;
}

void DpPlanner::ensure_hash_capacity(size_t min_slots) {
  size_t want = 64;
  while (want < min_slots) want <<= 1;
  if (stamp_.size() < want) {
    stamp_.assign(want, 0);
    slot_.assign(want, 0);
    round_ = 0;  // fresh stamps are all 0; rounds restart above it
  }
}

// Fills the per-decision tables. Every expression mirrors the exhaustive
// walk operation-for-operation so the folded results are bit-identical; the
// difference is that they are evaluated once per (depth, level[, prev])
// instead of at every tree node.
void DpPlanner::precompute(const PlanQuery& q, size_t depth_count) {
  const auto& video = *q.obs->video;
  const size_t L = video.ladder().level_count();
  const size_t S = q.num_scenarios;

  dl_.resize(depth_count * L * S);
  vq_.resize(depth_count * L);
  qn_.resize(depth_count * L * L);
  eqn_.resize(depth_count * L * L);
  w_.resize(depth_count);
  root_qn_.resize(L);
  root_eqn_.resize(L);
  child_buf_.resize(S);
  child_key_.resize(S);

  // Static tables come from the shared batch when one is attached; the
  // expressions below are the exact ones the batch builder ran (same
  // left-associated scaling, same chunk_quality calls), so both sources
  // yield bit-identical tables and the planner's output never depends on
  // where they live.
  const size_t base = q.obs->next_chunk;
  const PlanBatch::VideoTables* vt =
      batch_ != nullptr ? &batch_->tables(video, q.chunk) : nullptr;

  for (size_t d = 0; d < depth_count; ++d) {
    double w = 1.0;
    if (q.use_weights && d < q.obs->future_weights.size()) {
      w = 1.0 + q.weight_shrinkage * (q.obs->future_weights[d] - 1.0);
    }
    w_[d] = w;

    const size_t chunk = base + d;
    for (size_t l = 0; l < L; ++l) {
      double bits;
      if (vt != nullptr) {
        bits = vt->bits_kb[chunk * L + l];
        vq_[d * L + l] = vt->vq[chunk * L + l];
      } else {
        const auto& rep = video.rep(chunk, l);
        bits = rep.size_bytes * 8.0 / 1000.0;
        vq_[d * L + l] = rep.visual_quality;
      }
      for (size_t s = 0; s < S; ++s) {
        double kbps = std::max(1.0, q.scenarios[s].kbps);
        dl_[(d * L + l) * S + s] = bits / kbps + 0.08;
      }
    }
  }

  for (size_t l = 0; l < L; ++l) {
    double qn = qoe::chunk_quality(vq_[l], 0.0, q.prev_visual_quality, q.chunk);
    double eqn = 0.0;
    for (size_t s = 0; s < S; ++s) eqn += q.scenarios[s].probability * qn;
    root_qn_[l] = qn;
    root_eqn_[l] = eqn;
  }
  for (size_t d = 1; d < depth_count; ++d) {
    const size_t chunk = base + d;
    for (size_t l = 0; l < L; ++l) {
      for (size_t p = 0; p < L; ++p) {
        double qn = vt != nullptr
                        ? vt->qn[(chunk * L + l) * L + p]
                        : qoe::chunk_quality(vq_[d * L + l], 0.0, vq_[(d - 1) * L + p], q.chunk);
        double eqn = 0.0;
        for (size_t s = 0; s < S; ++s) eqn += q.scenarios[s].probability * qn;
        qn_[(d * L + l) * L + p] = qn;
        eqn_[(d * L + l) * L + p] = eqn;
      }
    }
  }

  // Stall-free relaxation bound, computed backwards. A step's contribution
  // is w * E[q_nostall] + max(w, 1) * (E[q] - E[q_nostall]) with the second
  // term <= 0, so w * eqn upper-bounds it; maximizing over levels bounds
  // any continuation from (depth, prev level).
  h_.resize((depth_count + 1) * L);
  for (size_t p = 0; p < L; ++p) h_[depth_count * L + p] = 0.0;
  for (size_t d = depth_count; d-- > 1;) {
    for (size_t p = 0; p < L; ++p) {
      double best = -1e18;
      for (size_t l = 0; l < L; ++l) {
        double v = w_[d] * eqn_[(d * L + l) * L + p] + h_[(d + 1) * L + l];
        if (v > best) best = v;
      }
      h_[d * L + p] = best;
    }
  }
}

PlanResult DpPlanner::plan(const PlanQuery& q) {
  const auto& video = *q.obs->video;
  const size_t L = video.ladder().level_count();
  const size_t S = q.num_scenarios;
  const double tau = video.chunk_duration_s();
  const size_t remaining =
      q.obs->next_chunk < q.obs->num_chunks ? q.obs->num_chunks - q.obs->next_chunk : 0;
  const size_t D = std::min(q.horizon, remaining);

  PlanResult result;
  if (degenerate_plan(q, &result)) return result;
  precompute(q, D);

  uint64_t best_rank = kNoRank;
  uint64_t best_ns_rank = kNoRank;

  // Pruning with the stall-free bound is only sound when the stall penalty
  // actually penalizes (the default and every sane configuration).
  const bool prune_ok = q.chunk.beta_rebuf >= 0.0 && q.chunk.rebuf_saturation >= 0.0;

  // Advances every scenario one step (same dynamics and fold order as the
  // exhaustive walk; no-stall quality served from the tables) and returns
  // the expected quality. Writes the post-step buffers to `out`.
  const auto step_expected_q = [&](size_t d, size_t level, double prev_vq_val, double qn,
                                   double sched, const double* in, double* out) {
    const double* dl_row = &dl_[(d * L + level) * S];
    const double vq = vq_[d * L + level];
    double expected_q = 0.0;
    for (size_t s = 0; s < S; ++s) {
      double b = in[s];
      double dl = dl_row[s];
      double stall = 0.0;
      if (dl > b) {
        stall = dl - b;
        b = 0.0;
      } else {
        b -= dl;
      }
      if (sched > 0.0) {
        b += sched;
        stall += sched;
      }
      b = std::min(b + tau, kMaxBufferS);
      out[s] = b;
      double qv = stall > 0.0 ? qoe::chunk_quality(vq, stall, prev_vq_val, q.chunk) : qn;
      expected_q += q.scenarios[s].probability * qv;
    }
    return expected_q;
  };

  // (max value, min rank) fold reproduces "first strictly-better leaf wins"
  // of the depth-first reference.
  const auto fold_leaf = [&](const StateRec& cand) {
    if (cand.value > result.best_value ||
        (cand.value == result.best_value && cand.rank < best_rank)) {
      result.best_value = cand.value;
      result.best_level = cand.first_level;
      result.best_rebuffer_s = q.rebuffer_options[cand.first_sched];
      best_rank = cand.rank;
    }
    if (cand.ns_rank != kNoRank &&
        (cand.ns_value > result.nostall_value ||
         (cand.ns_value == result.nostall_value && cand.ns_rank < best_ns_rank))) {
      result.nostall_value = cand.ns_value;
      result.nostall_level = cand.ns_level;
      best_ns_rank = cand.ns_rank;
    }
  };

  // Evaluates one concrete level path (first action uses rebuffer option 0)
  // through the true dynamics and folds it as an exact incumbent leaf. The
  // stronger the incumbent, the harder the bound prunes.
  const auto fold_rollout = [&](const uint32_t* path) {
    rollout_[0].assign(S, q.obs->buffer_s);
    rollout_[1].resize(S);
    double val = 0.0;
    uint64_t rank = 0;
    for (size_t d = 0; d < D; ++d) {
      const size_t level = path[d];
      const size_t stall_count = d == 0 ? q.num_rebuffer_options : 1;
      const double sched = d == 0 ? q.rebuffer_options[0] : 0.0;
      const size_t prev = d == 0 ? 0 : path[d - 1];
      const double prev_vq_val =
          d == 0 ? q.prev_visual_quality : vq_[(d - 1) * L + prev];
      const double qn = d == 0 ? root_qn_[level] : qn_[(d * L + level) * L + prev];
      const double eqn = d == 0 ? root_eqn_[level] : eqn_[(d * L + level) * L + prev];
      double expected_q = step_expected_q(d, level, prev_vq_val, qn, sched,
                                          rollout_[d % 2].data(), rollout_[1 - d % 2].data());
      val = val + weighted_step_quality(w_[d], expected_q, eqn);
      rank = rank * static_cast<uint64_t>(L * stall_count) +
             static_cast<uint64_t>(level * stall_count);
    }
    StateRec leaf;
    leaf.value = val;
    leaf.rank = rank;
    leaf.first_level = path[0];
    leaf.first_sched = 0;
    if (q.rebuffer_options[0] == 0.0) {
      leaf.ns_value = val;
      leaf.ns_rank = rank;
      leaf.ns_level = path[0];
    } else {
      leaf.ns_rank = kNoRank;
    }
    fold_leaf(leaf);
  };

  // Seed incumbents: for every first level, greedily follow the argmax path
  // of the stall-free bound; plus the all-lowest-level path, which is close
  // to optimal exactly where the stall-free relaxation is loose (tight
  // links). All are real leaves, so folding them is always sound.
  if (q.num_rebuffer_options > 0) {
    path_.resize(D);
    for (size_t l0 = 0; l0 < L; ++l0) {
      path_[0] = static_cast<uint32_t>(l0);
      for (size_t d = 1; d < D; ++d) {
        const size_t prev = path_[d - 1];
        double best = -1e18;
        size_t arg = 0;
        for (size_t l = 0; l < L; ++l) {
          double v = w_[d] * eqn_[(d * L + l) * L + prev] + h_[(d + 1) * L + l];
          if (v > best) {
            best = v;
            arg = l;
          }
        }
        path_[d] = static_cast<uint32_t>(arg);
      }
      fold_rollout(path_.data());
    }
    std::fill(path_.begin(), path_.end(), 0u);
    fold_rollout(path_.data());
  }

  // Root: one state, all scenarios at the observed buffer level.
  size_t cur = 0;
  bufs_[cur].assign(S, q.obs->buffer_s);
  recs_[cur].assign(1, StateRec{});

  const auto key_of = [this](double v) -> uint64_t {
    if (quantum_ > 0.0) return buffer_bucket(v, quantum_);
    return bits_of(v);
  };

  for (size_t d = 0; d < D; ++d) {
    const size_t nxt = 1 - cur;
    const size_t stall_count = d == 0 ? q.num_rebuffer_options : 1;
    const uint64_t branch = static_cast<uint64_t>(L * stall_count);
    const size_t parent_count = recs_[cur].size();
    const bool leaf_depth = d + 1 == D;

    size_t mask = 0;
    if (!leaf_depth) {
      recs_[nxt].clear();
      bufs_[nxt].clear();
      // Worst case every child is distinct; saturate the estimate so a long
      // horizon cannot demand an absurd table up front (load-factor growth
      // below handles the real count).
      size_t projected = parent_count * L * stall_count;
      ensure_hash_capacity(2 * std::min<size_t>(projected, size_t{1} << 20));
      ++round_;
      mask = stamp_.size() - 1;
    }

    const auto insert_or_merge = [&](const StateRec& cand) {
      for (size_t s = 0; s < S; ++s) child_key_[s] = key_of(child_buf_[s]);
      uint64_t h = splitmix(cand.last_level + 0x9e37ull);
      for (size_t s = 0; s < S; ++s) h = splitmix(h ^ child_key_[s]);
      size_t i = static_cast<size_t>(h) & mask;
      while (stamp_[i] == round_) {
        StateRec& ex = recs_[nxt][slot_[i]];
        bool same = ex.last_level == cand.last_level;
        if (same) {
          const double* eb = &bufs_[nxt][static_cast<size_t>(slot_[i]) * S];
          for (size_t s = 0; s < S; ++s) {
            if (key_of(eb[s]) != child_key_[s]) {
              same = false;
              break;
            }
          }
        }
        if (same) {
          // Identical continuation: keep the better prefix. Ranks encode the
          // exhaustive walk's leaf visit order, so ties break identically.
          if (cand.value > ex.value || (cand.value == ex.value && cand.rank < ex.rank)) {
            ex.value = cand.value;
            ex.rank = cand.rank;
            ex.first_level = cand.first_level;
            ex.first_sched = cand.first_sched;
          }
          if (cand.ns_rank != kNoRank &&
              (ex.ns_rank == kNoRank || cand.ns_value > ex.ns_value ||
               (cand.ns_value == ex.ns_value && cand.ns_rank < ex.ns_rank))) {
            ex.ns_value = cand.ns_value;
            ex.ns_rank = cand.ns_rank;
            ex.ns_level = cand.ns_level;
          }
          return;
        }
        i = (i + 1) & mask;
      }
      // Fresh state: append to the arena and claim the slot.
      stamp_[i] = round_;
      slot_[i] = static_cast<uint32_t>(recs_[nxt].size());
      recs_[nxt].push_back(cand);
      bufs_[nxt].insert(bufs_[nxt].end(), child_buf_.begin(), child_buf_.end());

      // Grow + rehash when half full so probes stay short. Steady state
      // re-uses the high-water table with no allocation.
      if (2 * recs_[nxt].size() >= stamp_.size()) {
        ensure_hash_capacity(2 * stamp_.size());
        ++round_;
        mask = stamp_.size() - 1;
        for (size_t r = 0; r < recs_[nxt].size(); ++r) {
          const StateRec& rec = recs_[nxt][r];
          const double* rb = &bufs_[nxt][r * S];
          uint64_t rh = splitmix(rec.last_level + 0x9e37ull);
          for (size_t s = 0; s < S; ++s) rh = splitmix(rh ^ key_of(rb[s]));
          size_t j = static_cast<size_t>(rh) & mask;
          while (stamp_[j] == round_) j = (j + 1) & mask;
          stamp_[j] = round_;
          slot_[j] = static_cast<uint32_t>(r);
        }
      }
    };

    for (size_t pi = 0; pi < parent_count; ++pi) {
      const StateRec parent = recs_[cur][pi];  // by value: arena may reallocate
      const double* pb = &bufs_[cur][pi * S];
      const double prev_vq =
          d == 0 ? q.prev_visual_quality : vq_[(d - 1) * L + parent.last_level];

      for (size_t level = 0; level < L; ++level) {
        const double qn =
            d == 0 ? root_qn_[level] : qn_[(d * L + level) * L + parent.last_level];
        const double eqn =
            d == 0 ? root_eqn_[level] : eqn_[(d * L + level) * L + parent.last_level];
        const double hb =
            (leaf_depth ? 0.0 : h_[(d + 1) * L + level]) + kBoundSlack;
        // Pre-dynamics prune: w * eqn upper-bounds the step contribution,
        // so a hopeless action is rejected before its scenario loop runs.
        const double ub = parent.value + w_[d] * eqn + hb;
        const double ns_ub = parent.ns_value + w_[d] * eqn + hb;

        for (size_t si = 0; si < stall_count; ++si) {
          const double scheduled = d == 0 ? q.rebuffer_options[si] : 0.0;
          if (prune_ok) {
            bool useful = ub >= result.best_value;
            if (!useful) {
              const bool has_ns =
                  d == 0 ? scheduled == 0.0 : parent.ns_rank != kNoRank;
              useful = has_ns && ns_ub >= result.nostall_value;
            }
            if (!useful) continue;
          }
          const double expected_q =
              step_expected_q(d, level, prev_vq, qn, scheduled, pb, child_buf_.data());
          const double contribution = weighted_step_quality(w_[d], expected_q, eqn);

          StateRec cand;
          cand.last_level = static_cast<uint32_t>(level);
          const uint64_t action = static_cast<uint64_t>(level * stall_count + si);
          if (d == 0) {
            cand.value = contribution;  // parent value is 0 at the root
            cand.rank = action;
            cand.first_level = static_cast<uint32_t>(level);
            cand.first_sched = static_cast<uint32_t>(si);
            if (scheduled == 0.0) {
              cand.ns_value = cand.value;
              cand.ns_rank = cand.rank;
              cand.ns_level = static_cast<uint32_t>(level);
            } else {
              cand.ns_rank = kNoRank;
            }
          } else {
            cand.value = parent.value + contribution;
            cand.rank = parent.rank * branch + action;
            cand.first_level = parent.first_level;
            cand.first_sched = parent.first_sched;
            if (parent.ns_rank != kNoRank) {
              cand.ns_value = parent.ns_value + contribution;
              cand.ns_rank = parent.ns_rank * branch + action;
              cand.ns_level = parent.ns_level;
            } else {
              cand.ns_rank = kNoRank;
            }
          }
          if (leaf_depth) {
            fold_leaf(cand);
            continue;
          }

          // Post-dynamics prune, tighter than the pre-check: drop the state
          // when even a stall-free completion of the *actual* prefix value
          // cannot strictly beat the incumbents.
          if (prune_ok) {
            bool useful = cand.value + hb >= result.best_value;
            if (!useful && cand.ns_rank != kNoRank) {
              useful = cand.ns_value + hb >= result.nostall_value;
            }
            if (!useful) continue;
          }
          insert_or_merge(cand);
        }
      }
    }
    if (!leaf_depth) cur = nxt;
  }
  return result;
}

// ---------------------------------------------------------------------------
// ViPlanner
// ---------------------------------------------------------------------------

ViPlanner::ViPlanner(double buffer_quantum_s)
    : quantum_(buffer_quantum_s > 0.0 ? buffer_quantum_s : kDefaultViBufferQuantumS) {}

size_t ViPlanner::arena_bytes() const {
  return (local_bits_.capacity() + local_vq_.capacity() + local_qn_.capacity() +
          local_dl_.capacity() + prob_.capacity() + w_.capacity() + root_qn_.capacity() +
          root_dl_.capacity() + exact_kbps_.capacity() + qkbps_.capacity() +
          key_.capacity() + width_.capacity() + v_.capacity() + row_b_.capacity() +
          row_stall_.capacity() + row_qv_.capacity()) *
             sizeof(double) +
         (vstamp_.capacity() + bcount_.capacity() + off_.capacity()) * sizeof(uint64_t);
}

void ViPlanner::precompute(const PlanQuery& q, size_t depth_count) {
  const auto& video = *q.obs->video;
  const size_t L = video.ladder().level_count();
  const size_t S = q.num_scenarios;
  const size_t base = q.obs->next_chunk;

  if (batch_ != nullptr) {
    const PlanBatch::VideoTables& vt = batch_->tables(video, q.chunk);
    bits_tab_ = &vt.bits_kb[base * L];
    vq_tab_ = &vt.vq[base * L];
    qn_tab_ = &vt.qn[base * L * L];
  } else {
    local_bits_.resize(depth_count * L);
    local_vq_.resize(depth_count * L);
    local_qn_.resize(depth_count * L * L);
    for (size_t d = 0; d < depth_count; ++d) {
      const size_t chunk = base + d;
      for (size_t l = 0; l < L; ++l) {
        const auto& rep = video.rep(chunk, l);
        local_bits_[d * L + l] = rep.size_bytes * 8.0 / 1000.0;
        local_vq_[d * L + l] = rep.visual_quality;
      }
    }
    for (size_t d = 1; d < depth_count; ++d) {
      // Row kernel over the previous-level axis: vq is fixed per (d, l) and
      // stall is 0, so qn[p] = max(floor, vq - bsw * |vq - prev_vq[p]|) —
      // the zero stall-penalty term drops out bit-exactly (x - 0.0 == x).
      for (size_t l = 0; l < L; ++l) {
        util::kernels::chunk_quality_nostall_prev_row(
            local_vq_[d * L + l], &local_vq_[(d - 1) * L], L, bsw_, floor_,
            &local_qn_[(d * L + l) * L]);
      }
    }
    bits_tab_ = local_bits_.data();
    vq_tab_ = local_vq_.data();
    qn_tab_ = local_qn_.data();
  }

  // The planner's actual throughput inputs are the quantized scenarios: the
  // same discretization whether or not a batch is attached, so attaching
  // can only move where tables live, never what they hold. A caller that
  // already quantized its forecasts (FuguAbr does, once per decision) hands
  // them over instead of paying the log2/exp2 bins again here.
  exact_kbps_.resize(S);
  qkbps_.resize(S);
  prob_.resize(S);
  for (size_t s = 0; s < S; ++s) {
    exact_kbps_[s] = q.scenarios[s].kbps;
    prob_[s] = q.scenarios[s].probability;
  }
  if (q.quantized_kbps != nullptr) {
    std::copy(q.quantized_kbps, q.quantized_kbps + S, qkbps_.begin());
  } else {
    util::kernels::quantize_kbps_row(exact_kbps_.data(), S, kViKbpsBinsPerOctave,
                                     qkbps_.data());
  }

  w_.resize(depth_count);
  for (size_t d = 0; d < depth_count; ++d) {
    double w = 1.0;
    if (q.use_weights && d < q.obs->future_weights.size()) {
      w = 1.0 + q.weight_shrinkage * (q.obs->future_weights[d] - 1.0);
    }
    w_[d] = w;
  }

  root_qn_.resize(L);
  util::kernels::chunk_quality_nostall_row(vq_tab_, L, q.prev_visual_quality, bsw_,
                                           floor_, root_qn_.data());

  // The root step is evaluated with the *exact* forecasts: the immediate
  // stall/no-stall tradeoff is the decision's dominant term, and judging it
  // on kbps rounded up a bin would schedule real stalls. Only the value
  // table (depths >= 1) lives on the quantized scenarios, mirroring the
  // buffer axis where depth 0 is continuous and resolution coarsens with
  // depth. Recomputed per decision, so it costs L x S divisions — part of
  // the irreducible root work, never the shared table.
  root_dl_.resize(L * S);
  for (size_t l = 0; l < L; ++l) {
    util::kernels::div_add_row(bits_tab_[l], exact_kbps_.data(), S, 1.0, 0.08,
                               &root_dl_[l * S]);
  }
}

void ViPlanner::fill_dl(double* dl) const {
  for (size_t d = 0; d < D_; ++d) {
    for (size_t l = 0; l < L_; ++l) {
      util::kernels::div_add_row(bits_tab_[d * L_ + l], qkbps_.data(), S_, 1.0, 0.08,
                                 &dl[(d * L_ + l) * S_]);
    }
  }
}

// Continuation value of depths [depth, D) when the buffer sits at
// `buffer_s` (bucketed here, at depth's own resolution) and the previous
// chunk played at `prev_level`. Closed-loop: each scenario contributes the
// value of its *own* post-step buffer, so deeper choices adapt to the
// realized throughput (the source of the pinned delta vs the open-loop
// exact planners). A step's contribution uses the same quality/stall
// decomposition as weighted_step_quality, folded per scenario:
// w * qn + max(w, 1) * (qv - qn).
double ViPlanner::value_of(size_t depth, double buffer_s, size_t prev_level) {
  if (depth >= D_) return 0.0;
  const double width = width_[depth];
  const size_t bucket = static_cast<size_t>(buffer_bucket(buffer_s, width));
  const size_t idx = off_[depth] + bucket * L_ + prev_level;
  if (filled_ != nullptr) {
    if (filled_[idx]) return v_cells_[idx];
  } else if (vstamp_[idx] == round_) {
    return v_cells_[idx];
  }

  const double b0 = static_cast<double>(bucket) * width;
  const double prev_vq = vq_tab_[(depth - 1) * L_ + prev_level];
  const double w = w_[depth];
  const double wstall = std::max(w, 1.0);
  double best = -1e18;
  if (S_ < util::kernels::kInlineRowCutoff) {
    // Narrow forecasts (the Fugu default is 3 scenarios) keep everything in
    // registers: this fused loop is the exact composition of the two row
    // kernels below — same step/penalty/select expressions in the same
    // order — so both paths produce identical bits; the kernels just add
    // row stores the recursion would immediately reload at these widths.
    for (size_t l = 0; l < L_; ++l) {
      const double vqv = vq_tab_[depth * L_ + l];
      const double qn = qn_tab_[(depth * L_ + l) * L_ + prev_level];
      const double* dl_row = &dl_tab_[(depth * L_ + l) * S_];
      double acc = 0.0;
      for (size_t s = 0; s < S_; ++s) {
        double b = b0;
        const double dl = dl_row[s];
        double stall = 0.0;
        if (dl > b) {
          stall = dl - b;
          b = 0.0;
        } else {
          b -= dl;
        }
        b = std::min(b + tau_, kMaxBufferS);
        const double qv =
            stall > 0.0 ? qoe::chunk_quality(vqv, stall, prev_vq, q_->chunk) : qn;
        acc += prob_[s] * (w * qn + wstall * (qv - qn) + value_of(depth + 1, b, l));
      }
      if (acc > best) best = acc;
    }
  } else {
    // SoA sweep: one buffer/stall step kernel plus one chunk-quality kernel
    // per candidate level, over the scenario row, then a sequential fold
    // (probability weighting and the recursion must keep the scalar order).
    double* row_b = &row_b_[depth * S_];
    double* row_stall = &row_stall_[depth * S_];
    double* row_qv = &row_qv_[depth * S_];
    for (size_t l = 0; l < L_; ++l) {
      const double qn = qn_tab_[(depth * L_ + l) * L_ + prev_level];
      util::kernels::step_buffer_stall_row(b0, &dl_tab_[(depth * L_ + l) * S_], S_, 0.0,
                                           tau_, kMaxBufferS, row_b, row_stall);
      util::kernels::chunk_quality_stall_row(vq_tab_[depth * L_ + l], prev_vq, qn,
                                             row_stall, S_, br_, sat_, bsw_, floor_,
                                             row_qv);
      double acc = 0.0;
      for (size_t s = 0; s < S_; ++s) {
        acc += prob_[s] *
               (w * qn + wstall * (row_qv[s] - qn) + value_of(depth + 1, row_b[s], l));
      }
      if (acc > best) best = acc;
    }
  }
  if (filled_ != nullptr) {
    filled_[idx] = 1;
  } else {
    vstamp_[idx] = round_;
  }
  v_cells_[idx] = best;
  return best;
}

PlanResult ViPlanner::plan(const PlanQuery& q) {
  PlanResult result;
  if (degenerate_plan(q, &result)) return result;

  const auto& video = *q.obs->video;
  const size_t remaining = q.obs->num_chunks - q.obs->next_chunk;  // > 0 here
  q_ = &q;
  D_ = std::min(q.horizon, remaining);
  L_ = video.ladder().level_count();
  S_ = q.num_scenarios;
  tau_ = video.chunk_duration_s();
  br_ = q.chunk.beta_rebuf;
  sat_ = q.chunk.rebuf_saturation;
  bsw_ = q.chunk.beta_switch;
  floor_ = q.chunk.floor;
  if (row_b_.size() < D_ * S_) {
    row_b_.resize(D_ * S_);
    row_stall_.resize(D_ * S_);
    row_qv_.resize(D_ * S_);
  }

  // Multi-resolution grid: the root is evaluated at the continuous observed
  // buffer; depth d >= 1 lives on buckets of width quantum * 2^(d-1). The
  // dynamics cap the buffer at kMaxBufferS, so its bucket bounds each axis.
  width_.assign(D_, 0.0);
  bcount_.assign(D_, 0);
  off_.assign(D_, 0);
  cells_ = 0;
  double wd = quantum_;
  for (size_t d = 1; d < D_; ++d) {
    width_[d] = wd;
    bcount_[d] = static_cast<size_t>(buffer_bucket(kMaxBufferS, wd)) + 1;
    off_[d] = cells_;
    cells_ += bcount_[d] * L_;
    wd *= 2.0;
  }

  precompute(q, D_);

  if (batch_ != nullptr) {
    // Shared mode: the whole value table (and the dl rows it was built
    // from) lives in the batch, keyed by the discretized decision context.
    // Any session that lands on the same key reuses every filled cell.
    key_.clear();
    for (size_t s = 0; s < S_; ++s) {
      key_.push_back(qkbps_[s]);
      key_.push_back(prob_[s]);
    }
    if (q.use_weights) key_.insert(key_.end(), w_.begin(), w_.end());
    // Successor shortcut first: a steady session decides chunk n then
    // n + 1 under an unchanged discretized context, so the table it needs
    // is usually the one linked from the table it just used. The link is a
    // hint — trust it only after re-verifying the complete identity the
    // hash-table compare would have checked.
    PlanBatch::ViValueTable* vt = nullptr;
    if (last_vt_ != nullptr && last_vt_->succ != nullptr) {
      PlanBatch::ViValueTable* c = last_vt_->succ;
      if (c->video == &video && c->next_chunk == q.obs->next_chunk &&
          c->depth_count == D_ && c->levels == L_ && c->quantum == quantum_ &&
          c->params.beta_rebuf == q.chunk.beta_rebuf &&
          c->params.rebuf_saturation == q.chunk.rebuf_saturation &&
          c->params.beta_switch == q.chunk.beta_switch &&
          c->params.floor == q.chunk.floor && c->key.size() == key_.size() &&
          std::equal(c->key.begin(), c->key.end(), key_.begin())) {
        vt = c;
      }
    }
    if (vt == nullptr) {
      bool created = false;
      vt = &batch_->vi_table(video, q.chunk, q.obs->next_chunk, D_, L_, quantum_,
                             key_.data(), key_.size(), cells_, &created);
      if (created) {
        vt->dl.resize(D_ * L_ * S_);
        fill_dl(vt->dl.data());
      }
      if (last_vt_ != nullptr && last_vt_->video == &video &&
          last_vt_->next_chunk + 1 == q.obs->next_chunk) {
        last_vt_->succ = vt;
      }
    }
    last_vt_ = vt;
    dl_tab_ = vt->dl.data();
    v_cells_ = vt->v.get();
    filled_ = vt->filled.data();
  } else {
    local_dl_.resize(D_ * L_ * S_);
    fill_dl(local_dl_.data());
    dl_tab_ = local_dl_.data();
    if (v_.size() < cells_) {
      v_.resize(cells_);
      vstamp_.resize(cells_, 0);
    }
    ++round_;  // no cell carries this stamp yet: the table is logically clear
    v_cells_ = v_.data();
    filled_ = nullptr;
  }

  const double w0 = w_[0];
  const double wstall0 = std::max(w0, 1.0);
  const bool fused_root = S_ < util::kernels::kInlineRowCutoff;
  // Depth-1 memo read with the hit path inlined: the root fold makes L*S of
  // these, and funneling every one through the recursive value_of call kept
  // the loads serialized behind call/return; inline, the out-of-order core
  // overlaps the (usually cold) cell fetches across iterations. The bucket
  // expression is value_of's own, so hit or miss, the bits are the same.
  const double width1 = D_ > 1 ? width_[1] : 1.0;
  const size_t base1 = D_ > 1 ? off_[1] : 0;
  const auto depth1_value = [&](double b, size_t level) -> double {
    if (D_ <= 1) return 0.0;
    const size_t idx =
        base1 + static_cast<size_t>(buffer_bucket(b, width1)) * L_ + level;
    if (filled_ != nullptr) {
      if (filled_[idx]) return v_cells_[idx];
    } else if (vstamp_[idx] == round_) {
      return v_cells_[idx];
    }
    return value_of(1, b, level);
  };
  // Root rows live in the depth-0 scratch slice (value_of starts at 1).
  double* row_b = row_b_.data();
  double* row_stall = row_stall_.data();
  double* row_qv = row_qv_.data();
  for (size_t level = 0; level < L_; ++level) {
    const double qn = root_qn_[level];
    const double vqv = vq_tab_[level];
    const double* dl_row = &root_dl_[level * S_];
    for (size_t si = 0; si < q.num_rebuffer_options; ++si) {
      const double scheduled = q.rebuffer_options[si];
      double acc = 0.0;
      if (fused_root) {
        // Register-resident twin of the kernel pair below (see value_of):
        // identical expressions and order, so identical bits.
        for (size_t s = 0; s < S_; ++s) {
          double b = q.obs->buffer_s;
          const double dl = dl_row[s];
          double stall = 0.0;
          if (dl > b) {
            stall = dl - b;
            b = 0.0;
          } else {
            b -= dl;
          }
          if (scheduled > 0.0) {
            b += scheduled;
            stall += scheduled;
          }
          b = std::min(b + tau_, kMaxBufferS);
          const double qv =
              stall > 0.0
                  ? qoe::chunk_quality(vqv, stall, q.prev_visual_quality, q.chunk)
                  : qn;
          acc += prob_[s] * (w0 * qn + wstall0 * (qv - qn) + depth1_value(b, level));
        }
      } else {
        // Folding the scheduled-rebuffer branch into the kernel's additive
        // term is exact: a non-positive option contributes +0.0, and both the
        // stall and the pre-tau buffer are non-negative there.
        const double extra = scheduled > 0.0 ? scheduled : 0.0;
        util::kernels::step_buffer_stall_row(q.obs->buffer_s, &root_dl_[level * S_], S_,
                                             extra, tau_, kMaxBufferS, row_b, row_stall);
        util::kernels::chunk_quality_stall_row(vq_tab_[level], q.prev_visual_quality, qn,
                                               row_stall, S_, br_, sat_, bsw_, floor_,
                                               row_qv);
        for (size_t s = 0; s < S_; ++s) {
          acc += prob_[s] * (w0 * qn + wstall0 * (row_qv[s] - qn) +
                             depth1_value(row_b[s], level));
        }
      }
      // Strict improvement only: level-major, stall-option-minor iteration
      // reproduces the exact planners' first-strictly-better tie-break.
      if (acc > result.best_value) {
        result.best_value = acc;
        result.best_level = level;
        result.best_rebuffer_s = scheduled;
      }
      if (scheduled == 0.0 && acc > result.nostall_value) {
        result.nostall_value = acc;
        result.nostall_level = level;
      }
    }
  }
  // Drop the borrowed pointers: a detached batch must not leave the planner
  // dangling into freed tables at the next (unbatched) decide().
  q_ = nullptr;
  dl_tab_ = nullptr;
  v_cells_ = nullptr;
  filled_ = nullptr;
  return result;
}

std::unique_ptr<Planner> make_planner(PlannerKind kind, double dp_buffer_quantum_s) {
  switch (kind) {
    case PlannerKind::kExhaustive:
      return std::make_unique<ExhaustivePlanner>();
    case PlannerKind::kVi:
      return std::make_unique<ViPlanner>(dp_buffer_quantum_s);
    case PlannerKind::kDp:
    default:
      return std::make_unique<DpPlanner>(dp_buffer_quantum_s);
  }
}

}  // namespace sensei::abr
