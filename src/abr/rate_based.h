// Rate-based adaptation: picks the highest rung sustainable under the
// harmonic-mean throughput estimate with a safety margin. Included as the
// classic second baseline family (§8 groups ABRs into buffer- and
// rate-based).
#pragma once

#include "net/predictor.h"
#include "sim/player.h"

namespace sensei::abr {

struct RateBasedConfig {
  double safety = 0.85;   // use this fraction of the predicted throughput
  size_t window = 5;
};

class RateBasedAbr : public sim::AbrPolicy {
 public:
  explicit RateBasedAbr(RateBasedConfig config = RateBasedConfig());

  const char* name() const override { return "RateBased"; }
  void begin_session(const media::EncodedVideo& video) override;
  sim::AbrDecision decide(const sim::AbrObservation& obs) override;

 private:
  RateBasedConfig config_;
  net::HarmonicMeanPredictor predictor_;
};

}  // namespace sensei::abr
