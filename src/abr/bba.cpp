#include "abr/bba.h"

#include <cmath>
#include <stdexcept>

namespace sensei::abr {

BbaAbr::BbaAbr(BbaConfig config) : config_(config) {
  if (config_.cushion_s <= config_.reservoir_s)
    throw std::runtime_error("bba: cushion must exceed reservoir");
}

sim::AbrDecision BbaAbr::decide(const sim::AbrObservation& obs) {
  const size_t top = obs.video->ladder().level_count() - 1;
  sim::AbrDecision d;
  if (obs.buffer_s <= config_.reservoir_s) {
    d.level = 0;
  } else if (obs.buffer_s >= config_.cushion_s) {
    d.level = top;
  } else {
    double frac = (obs.buffer_s - config_.reservoir_s) /
                  (config_.cushion_s - config_.reservoir_s);
    d.level = static_cast<size_t>(std::floor(frac * static_cast<double>(top + 1)));
    if (d.level > top) d.level = top;
  }
  return d;
}

}  // namespace sensei::abr
