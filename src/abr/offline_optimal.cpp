#include "abr/offline_optimal.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sensei::abr {

namespace {

struct DpContext {
  const media::EncodedVideo* video = nullptr;
  // Cursor over the trace's cumulative-capacity index: every DP node's
  // download-time probe locates its finishing interval by warm-started
  // binary search instead of an O(n) interval walk.
  net::TraceCursor link;
  const std::vector<double>* weights = nullptr;
  const OfflineConfig* config = nullptr;
  size_t n = 0;            // chunks
  size_t levels = 0;
  size_t time_buckets = 0;
  size_t buffer_buckets = 0;
  double tau = 4.0;

  // Memo tables (value function, best action, download-time cache) live in
  // the caller-provided scratch so repeated plans reuse one allocation.
  // Indexing: ((chunk * time_buckets + t) * buffer_buckets + b) * levels +
  // last_level for states; (chunk * levels + level) * time_buckets + t for
  // the download cache.
  OfflineScratch* s = nullptr;

  size_t state_index(size_t chunk, size_t t, size_t b, size_t last) const {
    return ((chunk * time_buckets + t) * buffer_buckets + b) * levels + last;
  }

  double download_time(size_t chunk, size_t level, size_t t_bucket) {
    size_t idx = (chunk * levels + level) * time_buckets + t_bucket;
    if (!s->dl_cached[idx]) {
      double t = static_cast<double>(t_bucket) * config->time_quantum_s;
      s->dl_cache[idx] = static_cast<float>(
          link.download_time_s(video->size_bytes(chunk, level), t));
      s->dl_cached[idx] = 1;
    }
    return s->dl_cache[idx];
  }

  size_t clamp_time(double t) const {
    // An outage upstream yields t = +inf; lround(inf) is unspecified, so
    // pin it to the horizon's last bucket explicitly.
    if (!std::isfinite(t)) return time_buckets - 1;
    auto bucket = static_cast<long>(std::lround(t / config->time_quantum_s));
    if (bucket < 0) bucket = 0;
    if (bucket >= static_cast<long>(time_buckets)) bucket = static_cast<long>(time_buckets) - 1;
    return static_cast<size_t>(bucket);
  }

  size_t clamp_buffer(double b) const {
    auto bucket = static_cast<long>(std::lround(b / config->buffer_quantum_s));
    if (bucket < 0) bucket = 0;
    if (bucket >= static_cast<long>(buffer_buckets))
      bucket = static_cast<long>(buffer_buckets) - 1;
    return static_cast<size_t>(bucket);
  }
};

double solve(DpContext& ctx, size_t chunk, size_t t_bucket, size_t b_bucket, size_t last) {
  if (chunk >= ctx.n) return 0.0;
  size_t idx = ctx.state_index(chunk, t_bucket, b_bucket, last);
  if (ctx.s->visited[idx]) return ctx.s->value[idx];

  const OfflineConfig& cfg = *ctx.config;
  const size_t stall_count = cfg.rebuffer_options.size();
  double buffer = static_cast<double>(b_bucket) * cfg.buffer_quantum_s;
  double prev_vq = chunk > 0 ? ctx.video->visual_quality(chunk - 1, last)
                             : ctx.video->visual_quality(0, 0);
  double w = chunk < ctx.weights->size() ? (*ctx.weights)[chunk] : 1.0;

  double best = -1e30;
  uint16_t best_act = 0;
  for (size_t level = 0; level < ctx.levels; ++level) {
    double dl = ctx.download_time(chunk, level, t_bucket);
    double vq = ctx.video->visual_quality(chunk, level);
    for (size_t si = 0; si < stall_count; ++si) {
      // The first chunk's download is startup, not a stall; scheduled stalls
      // are pointless there.
      double scheduled = chunk == 0 ? 0.0 : cfg.rebuffer_options[si];
      if (chunk == 0 && si > 0) continue;

      double t = static_cast<double>(t_bucket) * cfg.time_quantum_s + dl;
      double buf = buffer;
      double stall = 0.0;
      if (chunk == 0) {
        buf = ctx.tau;
      } else {
        if (dl > buf) {
          stall = dl - buf;
          buf = 0.0;
        } else {
          buf -= dl;
        }
        if (scheduled > 0.0) {
          buf += scheduled;
          stall += scheduled;
        }
        buf += ctx.tau;
      }
      if (buf > cfg.max_buffer_s) {
        t += buf - cfg.max_buffer_s;
        buf = cfg.max_buffer_s;
      }

      double q = qoe::chunk_quality(vq, stall, chunk == 0 ? vq : prev_vq, cfg.chunk);
      double value = w * q + solve(ctx, chunk + 1, ctx.clamp_time(t), ctx.clamp_buffer(buf),
                                   level);
      if (value > best) {
        best = value;
        best_act = static_cast<uint16_t>(level * stall_count + si);
      }
    }
  }

  ctx.s->value[idx] = static_cast<float>(best);
  ctx.s->best_action[idx] = best_act;
  ctx.s->visited[idx] = 1;
  return best;
}

}  // namespace

sim::SessionResult plan_offline(const media::EncodedVideo& video,
                                const net::ThroughputTrace& trace,
                                const std::vector<double>& weights,
                                const OfflineConfig& config) {
  OfflineScratch scratch;
  return plan_offline(video, trace, weights, config, scratch);
}

sim::SessionResult plan_offline(const media::EncodedVideo& video,
                                const net::ThroughputTrace& trace,
                                const std::vector<double>& weights,
                                const OfflineConfig& config, OfflineScratch& scratch) {
  if (video.num_chunks() == 0) throw std::runtime_error("offline: empty video");
  if (config.rebuffer_options.empty() || config.rebuffer_options[0] != 0.0)
    throw std::runtime_error("offline: rebuffer options must start with 0");

  DpContext ctx;
  ctx.s = &scratch;
  ctx.video = &video;
  ctx.link = net::TraceCursor(trace);
  ctx.weights = &weights;
  ctx.config = &config;
  ctx.n = video.num_chunks();
  ctx.levels = video.ladder().level_count();
  ctx.tau = video.chunk_duration_s();
  double max_time = video.source().duration_s() + config.horizon_slack_s;
  ctx.time_buckets = static_cast<size_t>(max_time / config.time_quantum_s) + 2;
  ctx.buffer_buckets = static_cast<size_t>(config.max_buffer_s / config.buffer_quantum_s) + 2;

  // assign() keeps capacity: with a shared scratch, repeat plans of
  // same-shaped sessions allocate nothing.
  size_t states = ctx.n * ctx.time_buckets * ctx.buffer_buckets * ctx.levels;
  scratch.value.assign(states, 0.0f);
  scratch.visited.assign(states, 0);
  scratch.best_action.assign(states, 0);
  scratch.dl_cache.assign(ctx.n * ctx.levels * ctx.time_buckets, 0.0f);
  scratch.dl_cached.assign(ctx.n * ctx.levels * ctx.time_buckets, 0);

  solve(ctx, 0, 0, 0, 0);

  // Replay the optimal policy exactly (continuous dynamics, quantized lookup).
  const size_t stall_count = config.rebuffer_options.size();
  double t = 0.0, buffer = 0.0, startup = 0.0;
  size_t last = 0;
  std::vector<sim::ChunkRecord> records;
  records.reserve(ctx.n);
  for (size_t chunk = 0; chunk < ctx.n; ++chunk) {
    size_t t_bucket = ctx.clamp_time(t);
    size_t b_bucket = ctx.clamp_buffer(buffer);
    // The continuous replay can drift off the quantized grid into states the
    // backward pass never reached; solve them on demand.
    solve(ctx, chunk, t_bucket, b_bucket, last);
    size_t idx = ctx.state_index(chunk, t_bucket, b_bucket, last);
    uint16_t act = ctx.s->best_action[idx];
    size_t level = act / stall_count;
    double scheduled = chunk == 0 ? 0.0 : config.rebuffer_options[act % stall_count];

    sim::ChunkRecord rec;
    rec.index = chunk;
    rec.level = level;
    const auto& rep = video.rep(chunk, level);
    rec.bitrate_kbps = rep.bitrate_kbps;
    rec.size_bytes = rep.size_bytes;
    rec.visual_quality = rep.visual_quality;
    rec.download_start_s = t;

    double dl = ctx.link.download_time_s(rep.size_bytes, t);
    if (!std::isfinite(dl)) {
      // The link died mid-plan: truncate like the player does and surface
      // the outage instead of accumulating infinite wall clocks.
      sim::SessionResult truncated(video.source().name(), trace.name() + "-offline", ctx.tau,
                                   std::move(records), startup);
      truncated.set_outcome(sim::SessionOutcome::kOutage);
      return truncated;
    }
    rec.download_time_s = dl;
    t += dl;
    double stall = 0.0;
    if (chunk == 0) {
      startup = dl;
      buffer = ctx.tau;
    } else {
      if (dl > buffer) {
        stall = dl - buffer;
        buffer = 0.0;
      } else {
        buffer -= dl;
      }
      if (scheduled > 0.0) {
        buffer += scheduled;
        stall += scheduled;
      }
      buffer += ctx.tau;
    }
    if (buffer > config.max_buffer_s) {
      t += buffer - config.max_buffer_s;
      buffer = config.max_buffer_s;
    }
    rec.rebuffer_s = stall;
    rec.scheduled_rebuffer_s = chunk == 0 ? 0.0 : scheduled;
    rec.buffer_after_s = buffer;
    records.push_back(rec);
    last = level;
  }

  return sim::SessionResult(video.source().name(), trace.name() + "-offline", ctx.tau,
                            std::move(records), startup);
}

}  // namespace sensei::abr
