#include "abr/pensieve.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "abr/bba.h"
#include "util/stats.h"

namespace sensei::abr {

namespace {
constexpr size_t kLadderLevels = 5;  // feature layout assumes the paper's ladder
}

PensieveAbr::PensieveAbr(PensieveConfig config, uint64_t seed)
    : config_(config), rng_(seed) {
  size_t input = feature_count();
  actor_ = ml::Mlp(input,
                   {{config_.hidden_units, ml::Activation::kReLU},
                    {action_count(), ml::Activation::kSoftmax}},
                   rng_);
  critic_ = ml::Mlp(input,
                    {{config_.hidden_units, ml::Activation::kReLU},
                     {1, ml::Activation::kLinear}},
                    rng_);
}

size_t PensieveAbr::action_count() const {
  return kLadderLevels + (config_.sensei_mode ? config_.rebuffer_actions.size() : 0);
}

size_t PensieveAbr::feature_count() const {
  // last level (1) + buffer (1) + throughput taps + last download time (1)
  // + next chunk sizes (5) + remaining fraction (1) [+ future weights].
  return 1 + 1 + config_.throughput_taps + 1 + kLadderLevels + 1 +
         (config_.sensei_mode ? config_.weight_horizon : 0);
}

std::vector<double> PensieveAbr::featurize(const sim::AbrObservation& obs) const {
  const auto& video = *obs.video;
  const size_t levels = video.ladder().level_count();
  std::vector<double> f;
  f.reserve(feature_count());

  f.push_back(static_cast<double>(obs.last_level) / static_cast<double>(levels - 1));
  f.push_back(obs.buffer_s / 20.0);

  // Most recent `taps` throughput samples, oldest first, zero-padded.
  const auto& hist = obs.throughput_history_kbps;
  for (size_t k = 0; k < config_.throughput_taps; ++k) {
    if (hist.size() + k >= config_.throughput_taps) {
      f.push_back(hist[hist.size() - config_.throughput_taps + k] / 5000.0);
    } else {
      f.push_back(0.0);
    }
  }
  f.push_back(obs.last_download_time_s / 10.0);

  for (size_t l = 0; l < kLadderLevels; ++l) {
    if (obs.next_chunk < video.num_chunks() && l < levels) {
      f.push_back(video.size_bytes(obs.next_chunk, l) / 4.0e6);
    } else {
      f.push_back(0.0);
    }
  }
  f.push_back(obs.num_chunks > 0
                  ? static_cast<double>(obs.num_chunks - obs.next_chunk) /
                        static_cast<double>(obs.num_chunks)
                  : 0.0);

  if (config_.sensei_mode) {
    for (size_t k = 0; k < config_.weight_horizon; ++k) {
      f.push_back(k < obs.future_weights.size() ? obs.future_weights[k] : 1.0);
    }
  }
  if (f.size() != feature_count()) throw std::runtime_error("pensieve: feature layout bug");
  return f;
}

void PensieveAbr::begin_session(const media::EncodedVideo& video) {
  (void)video;
  episode_.clear();
}

sim::AbrDecision PensieveAbr::decide(const sim::AbrObservation& obs) {
  std::vector<double> features = featurize(obs);
  std::vector<double> probs = actor_.forward(features);

  size_t action;
  if (training_) {
    // Exploration floor: mix the sampling distribution with uniform so high
    // bitrates keep getting sampled even after the policy sharpens.
    std::vector<double> sampling = probs;
    double mix = config_.explore_mix * entropy_scale_;
    for (double& p : sampling) {
      p = (1.0 - mix) * p + mix / static_cast<double>(sampling.size());
    }
    action = rng_.weighted_index(sampling);
  } else {
    action = static_cast<size_t>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
  }
  // A scheduled stall on the very first chunk only delays startup; mask it.
  if (obs.next_chunk == 0 && action >= kLadderLevels) action = kLadderLevels - 1;

  if (training_) episode_.push_back({features, action});

  sim::AbrDecision d;
  if (action < kLadderLevels) {
    d.level = std::min(action, obs.video->ladder().level_count() - 1);
  } else {
    // Rebuffer action: keep the previous level, pause playback.
    d.level = obs.last_level;
    d.scheduled_rebuffer_s = config_.rebuffer_actions[action - kLadderLevels];
  }
  return d;
}

void PensieveAbr::update_from_episode(const std::vector<double>& rewards) {
  if (episode_.empty() || rewards.size() != episode_.size()) return;

  // Discounted returns.
  std::vector<double> returns(rewards.size());
  double g = 0.0;
  for (size_t t = rewards.size(); t-- > 0;) {
    g = rewards[t] + config_.gamma * g;
    returns[t] = g;
  }

  // Per-episode advantage normalization keeps gradient scale independent of
  // the (large, video-length-dependent) return magnitudes.
  std::vector<double> advantages(returns.size());
  for (size_t t = 0; t < episode_.size(); ++t) {
    advantages[t] = returns[t] - critic_.forward(episode_[t].features)[0];
  }
  double adv_mean = util::mean(advantages);
  double adv_sd = util::stddev(advantages);
  if (adv_sd < 1e-6) adv_sd = 1.0;

  const size_t actions = action_count();
  for (size_t t = 0; t < episode_.size(); ++t) {
    const auto& step = episode_[t];
    double value = critic_.forward(step.features)[0];
    double advantage = (advantages[t] - adv_mean) / adv_sd;

    // Actor: policy gradient with entropy regularization. For a softmax head
    // the gradient w.r.t. logits of -log pi(a) * A is (p - onehot_a) * A;
    // entropy bonus adds beta * (p .* (log p + H)).
    std::vector<double> probs = actor_.forward(step.features);
    double entropy = 0.0;
    for (double p : probs) {
      if (p > 1e-12) entropy -= p * std::log(p);
    }
    std::vector<double> dlogits(actions, 0.0);
    for (size_t a = 0; a < actions; ++a) {
      double grad_pg = (probs[a] - (a == step.action ? 1.0 : 0.0)) * advantage;
      double grad_entropy = 0.0;
      if (probs[a] > 1e-12) {
        grad_entropy = config_.entropy_beta * entropy_scale_ * probs[a] *
                       (std::log(probs[a]) + entropy);
      }
      dlogits[a] = grad_pg + grad_entropy;
    }
    actor_.accumulate_gradient(step.features, dlogits);

    // Critic: squared error toward the return (clipped so one catastrophic
    // episode cannot destabilize the value net).
    double verr = util::clamp(value - returns[t], -10.0, 10.0);
    critic_.accumulate_gradient(step.features, {verr});
  }
  actor_.apply_adam(config_.actor_lr, episode_.size());
  critic_.apply_adam(config_.critic_lr, episode_.size());
  episode_.clear();
}

void PensieveAbr::clone_update(const std::vector<size_t>& teacher_actions, double lr) {
  if (episode_.empty() || teacher_actions.size() != episode_.size()) {
    episode_.clear();
    return;
  }
  const size_t actions = action_count();
  for (size_t t = 0; t < episode_.size(); ++t) {
    std::vector<double> probs = actor_.forward(episode_[t].features);
    std::vector<double> dlogits(actions, 0.0);
    for (size_t a = 0; a < actions; ++a) {
      dlogits[a] = probs[a] - (a == teacher_actions[t] ? 1.0 : 0.0);
    }
    actor_.accumulate_gradient(episode_[t].features, dlogits);
  }
  actor_.apply_adam(lr, episode_.size());
  episode_.clear();
}

std::vector<double> PensieveTrainer::rewards_from_session(
    const sim::SessionResult& session, const std::vector<double>& weights,
    const qoe::ChunkQualityParams& params) {
  const auto& chunks = session.chunks();
  std::vector<double> rewards;
  rewards.reserve(chunks.size());
  for (size_t i = 0; i < chunks.size(); ++i) {
    double prev_vq = i > 0 ? chunks[i - 1].visual_quality : chunks[i].visual_quality;
    double q = qoe::chunk_quality(chunks[i].visual_quality, chunks[i].rebuffer_s, prev_vq,
                                  params);
    double w = i < weights.size() ? weights[i] : 1.0;
    rewards.push_back(w * q);
  }
  return rewards;
}

void PensieveTrainer::train(PensieveAbr& policy,
                            const std::vector<media::EncodedVideo>& videos,
                            const std::vector<net::ThroughputTrace>& traces,
                            const std::vector<std::vector<double>>& weights_per_video) {
  train(policy, videos, traces, weights_per_video, Options());
}

void PensieveTrainer::train(PensieveAbr& policy,
                            const std::vector<media::EncodedVideo>& videos,
                            const std::vector<net::ThroughputTrace>& traces,
                            const std::vector<std::vector<double>>& weights_per_video,
                            Options options) {
  if (videos.empty() || traces.empty()) throw std::runtime_error("pensieve: empty train set");
  if (!weights_per_video.empty() && weights_per_video.size() != videos.size())
    throw std::runtime_error("pensieve: weights/videos mismatch");

  util::Rng rng(options.seed);
  sim::Player player(options.player);

  qoe::ChunkQualityParams reward_params = policy.config().chunk;
  reward_params.floor = policy.config().training_reward_floor;

  // --- Phase 1: behaviour-cloning warm start from BBA. ---
  // A shim policy lets BBA drive the session while recording the student's
  // feature vector and the teacher's action at every step.
  struct CloningShim : sim::AbrPolicy {
    PensieveAbr* student = nullptr;
    BbaAbr teacher;
    std::vector<std::vector<double>> features;
    std::vector<size_t> actions;
    const char* name() const override { return "bc-shim"; }
    sim::AbrDecision decide(const sim::AbrObservation& obs) override {
      sim::AbrDecision d = teacher.decide(obs);
      features.push_back(student->featurize(obs));
      actions.push_back(d.level);
      return d;
    }
  };
  const std::vector<double> no_weights;
  for (int ep = 0; ep < options.bc_episodes; ++ep) {
    size_t vi = static_cast<size_t>(rng.uniform_int(0, static_cast<int>(videos.size()) - 1));
    size_t ti = static_cast<size_t>(rng.uniform_int(0, static_cast<int>(traces.size()) - 1));
    const std::vector<double>& w =
        weights_per_video.empty() ? no_weights : weights_per_video[vi];
    CloningShim shim;
    shim.student = &policy;
    player.stream(videos[vi], traces[ti], shim, w);
    // Feed the recorded trajectory through the student's supervised update.
    policy.set_training(true);
    policy.begin_session(videos[vi]);
    for (auto& f : shim.features) policy.mutable_episode().push_back({std::move(f), 0});
    policy.clone_update(shim.actions, 2e-3);
    policy.set_training(false);
  }

  policy.set_training(true);

  const std::vector<double> empty;
  for (int ep = 0; ep < options.episodes; ++ep) {
    // Anneal exploration/entropy linearly to zero over training.
    policy.set_entropy_scale(1.0 - static_cast<double>(ep) /
                                       static_cast<double>(options.episodes));
    size_t vi = static_cast<size_t>(rng.uniform_int(0, static_cast<int>(videos.size()) - 1));
    size_t ti = static_cast<size_t>(rng.uniform_int(0, static_cast<int>(traces.size()) - 1));
    const std::vector<double>& w =
        weights_per_video.empty() ? empty : weights_per_video[vi];

    sim::SessionResult session = player.stream(videos[vi], traces[ti], policy, w);
    std::vector<double> rewards = rewards_from_session(session, w, reward_params);
    policy.update_from_episode(rewards);
  }
  policy.set_training(false);
  policy.set_entropy_scale(1.0);
}

}  // namespace sensei::abr
