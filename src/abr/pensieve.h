// Pensieve-style deep-RL ABR (Mao et al., SIGCOMM'17), re-implemented on our
// own ml:: substrate: an MLP actor-critic trained with advantage policy
// gradients over simulated sessions.
//
// The SENSEI variation (§5.2) is selected by Config::sensei_mode: the state
// gains the sensitivity weights of the next h chunks, the action set gains
// scheduled rebuffering levels ({1, 2} s at chunk boundaries), and the
// training reward weights each chunk's quality by its sensitivity weight.
#pragma once

#include <memory>
#include <vector>

#include "ml/mlp.h"
#include "net/trace.h"
#include "qoe/chunk_quality.h"
#include "sim/player.h"

namespace sensei::abr {

struct PensieveConfig {
  bool sensei_mode = false;       // weights in state + rebuffer actions + weighted reward
  size_t weight_horizon = 5;      // h: future weights visible in the state
  size_t throughput_taps = 8;     // past-throughput taps in the state
  size_t hidden_units = 48;
  double entropy_beta = 0.015;    // exploration bonus during training
  double explore_mix = 0.10;      // uniform mixing of the sampling policy
  double gamma = 0.97;            // discount
  double actor_lr = 1e-3;
  double critic_lr = 1e-3;
  std::vector<double> rebuffer_actions = {1.0, 2.0};  // seconds, sensei_mode only
  qoe::ChunkQualityParams chunk;
  // Training rewards drop the per-chunk quality floor so catastrophic stalls
  // stay strongly penalized (the floor exists for bounded QoE *scoring*, but
  // it flattens the learning signal exactly where RL must feel it).
  double training_reward_floor = -4.0;
};

class PensieveAbr : public sim::AbrPolicy {
 public:
  explicit PensieveAbr(PensieveConfig config = PensieveConfig(), uint64_t seed = 41);

  const char* name() const override {
    return config_.sensei_mode ? "Sensei-Pensieve" : "Pensieve";
  }
  void begin_session(const media::EncodedVideo& video) override;
  sim::AbrDecision decide(const sim::AbrObservation& obs) override;

  // Training-mode switches action selection from argmax to sampling and
  // records the episode trajectory.
  void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  struct Step {
    std::vector<double> features;
    size_t action = 0;
  };
  const std::vector<Step>& episode() const { return episode_; }
  std::vector<Step>& mutable_episode() { return episode_; }

  // Policy-gradient update from per-step rewards of the last episode.
  void update_from_episode(const std::vector<double>& rewards);

  // Supervised (cross-entropy) update of the actor toward teacher actions,
  // used for behaviour-cloning warm starts. Consumes the recorded episode.
  void clone_update(const std::vector<size_t>& teacher_actions, double lr);

  // Scales entropy regularization (the trainer anneals it to 0 over
  // training so the policy can sharpen late).
  void set_entropy_scale(double scale) { entropy_scale_ = scale; }

  size_t action_count() const;
  size_t feature_count() const;
  std::vector<double> featurize(const sim::AbrObservation& obs) const;

  const PensieveConfig& config() const { return config_; }

 private:
  PensieveConfig config_;
  util::Rng rng_;
  ml::Mlp actor_;
  ml::Mlp critic_;
  bool training_ = false;
  double entropy_scale_ = 1.0;
  std::vector<Step> episode_;
};

// Trains a policy over (video, trace) pairs. When `weights_per_video` is
// provided (SENSEI mode), rewards are reweighted and weights are passed to
// the player so they appear in the state.
struct PensieveTrainer {
  struct Options {
    int episodes = 400;
    // Behaviour-cloning warm start: before policy-gradient training, the
    // actor imitates BBA for this many episodes. Cheap, and it spares RL the
    // long random-exploration phase that destabilizes small-batch REINFORCE.
    int bc_episodes = 300;
    uint64_t seed = 77;
    sim::PlayerConfig player;
  };

  // weights_per_video: either empty, or one weight vector per video.
  static void train(PensieveAbr& policy, const std::vector<media::EncodedVideo>& videos,
                    const std::vector<net::ThroughputTrace>& traces,
                    const std::vector<std::vector<double>>& weights_per_video,
                    Options options);
  static void train(PensieveAbr& policy, const std::vector<media::EncodedVideo>& videos,
                    const std::vector<net::ThroughputTrace>& traces,
                    const std::vector<std::vector<double>>& weights_per_video);

  // Per-chunk training rewards reconstructed from a finished session.
  static std::vector<double> rewards_from_session(const sim::SessionResult& session,
                                                  const std::vector<double>& weights,
                                                  const qoe::ChunkQualityParams& params);
};

}  // namespace sensei::abr
