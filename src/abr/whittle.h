// DAS-IP-style Whittle-index ABR (Singh & Kumar, "Dynamic Adaptive
// Streaming using Index-Based Learning Algorithms" — see PAPERS.md).
//
// The restless-bandit view: each rung of the ladder is an arm whose
// activation cost is the download time it would steal from the buffer, and
// the Whittle index of a rung is the net per-chunk quality the policy would
// collect by pulling it *now*, given the current buffer level and a point
// throughput forecast. We specialize the index to the deterministic-fluid
// limit (point forecast, linear drain), which collapses it to a closed
// form per rung:
//
//   I_l(b) = vq_l
//            - beta_switch * |vq_l - vq_prev|
//            - beta_rebuf  * pen(max(0, T_l - b))            (stall risk)
//            - drain_penalty * max(0, headroom*T_l - (b - T_l))  (drain risk)
//
// where T_l is the predicted download time of rung l and pen() is the
// shared saturating stall penalty (qoe/chunk_quality.h). The stall term
// charges the part of the download the buffer cannot cover; the drain term
// charges choices that land the post-download buffer under a headroom
// proportional to the download time, which is what makes the index back
// off *before* it is staring at an empty buffer. Both max(0, ·) terms are
// nonincreasing in b, so the index is monotone nondecreasing in buffer —
// the indexability property the tests pin.
//
// decide() is an argmax over rungs — one whittle_index_row kernel call over
// the ladder (util/kernels) followed by a strict argmax: O(levels), zero
// steady-state heap allocation, no lookahead recursion — near-MPC quality
// at BBA-like cost, which is why the fleet workload mix uses it as the
// cheap default (sim/workload.h).
#pragma once

#include <vector>

#include "net/predictor.h"
#include "qoe/chunk_quality.h"
#include "sim/player.h"

namespace sensei::abr {

struct WhittleConfig {
  double safety = 0.9;         // use this fraction of the predicted throughput
  size_t window = 8;           // harmonic-mean predictor taps
  double headroom = 0.5;       // post-download buffer floor, in download times
  double drain_penalty = 0.6;  // cost per second of headroom shortfall
  qoe::ChunkQualityParams chunk;
};

class WhittleIndexAbr : public sim::AbrPolicy {
 public:
  explicit WhittleIndexAbr(WhittleConfig config = WhittleConfig());

  const char* name() const override { return "Whittle"; }
  void begin_session(const media::EncodedVideo& video) override;
  sim::AbrDecision decide(const sim::AbrObservation& obs) override;

  // The closed-form index of one rung at buffer level `buffer_s` under
  // throughput budget `budget_kbps` (already safety-scaled). Exposed so
  // tests can pin monotonicity in buffer directly.
  double level_index(const sim::AbrObservation& obs, size_t level, double buffer_s,
                     double budget_kbps) const;

  const WhittleConfig& config() const { return config_; }

 private:
  WhittleConfig config_;
  net::HarmonicMeanPredictor predictor_;
  // SoA scratch rows over the ladder for decide()'s index kernel (sized to
  // the level count on first use, reused across decisions).
  std::vector<double> row_bytes_;
  std::vector<double> row_vq_;
  std::vector<double> row_prev_;
  std::vector<double> row_idx_;
};

}  // namespace sensei::abr
