// MPC lookahead planners behind Fugu/SENSEI-Fugu (paper Eq. 3 / Eq. 4).
//
// Both planners maximize the same objective: the expected sum, over a
// discrete throughput-scenario distribution, of per-chunk qualities across
// the next `horizon` chunks, optionally weighted by per-chunk sensitivity
// and extended with a scheduled-rebuffering action for the first chunk.
//
//  - ExhaustivePlanner is the reference realization: a depth-first walk of
//    the full (levels x rebuffer_options)^horizon decision tree, advancing a
//    heap-allocated per-scenario state vector at every node. Exponential in
//    the horizon; kept as the equivalence baseline behind a config flag.
//
//  - DpPlanner is the production planner: a breadth-first dynamic program
//    over the *reachable* joint states (last level, per-scenario buffers),
//    in the style of Puffer's value iteration (Yan et al., NSDI'20) —
//    round-stamped flat hash slots instead of per-decision clearing, a
//    fixed-capacity arena reused across decide() calls (zero steady-state
//    heap allocation), and per-(depth, level) download-time / quality tables
//    precomputed once per decision instead of at every tree node. States
//    that coincide (exactly, or within `buffer_quantum_s` buckets when > 0)
//    are merged, which collapses the tree wherever the buffer saturates at
//    its floor or cap. On top of the merge, an admissible bound prunes the
//    fan-out: the stall-free relaxation H(d, level) — a tiny L x horizon
//    value iteration over the precomputed quality tables — upper-bounds any
//    continuation, and a greedy rollout of its argmax path seeds an exact
//    incumbent; a state is dropped when value + H cannot *strictly* beat
//    the incumbent (ties are kept, so the depth-first tie-break of the
//    reference planner is preserved bit-for-bit).
//
// With buffer_quantum_s == 0 (the default) merging only unifies bitwise-
// identical states, and every arithmetic expression mirrors the exhaustive
// recursion operation-for-operation, so the DP returns *bit-identical*
// values and decisions — the equivalence gate in
// tests/test_planner_equivalence.cpp asserts exactly that. A positive
// quantum trades exactness for polynomially-bounded state growth
// (Puffer's unit_buf_length), which is the right regime for horizons
// beyond ~8 chunks.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/predictor.h"
#include "qoe/chunk_quality.h"
#include "sim/player.h"

namespace sensei::abr {

enum class PlannerKind {
  kDp,          // memoized reachable-state DP (default)
  kExhaustive,  // reference exhaustive recursion
};

// Default buffer discretization for DpPlanner state merging (seconds).
// 0 = exact (bitwise) merging.
inline constexpr double kDefaultDpBufferQuantumS = 0.0;

// One lookahead request. Pointers reference caller-owned storage and must
// stay valid for the duration of plan().
struct PlanQuery {
  const sim::AbrObservation* obs = nullptr;
  const net::ThroughputScenario* scenarios = nullptr;
  size_t num_scenarios = 0;
  size_t horizon = 0;
  // Scheduled-rebuffer choices for the *first* step (deeper steps always
  // use 0, as in the paper's SENSEI-Fugu).
  const double* rebuffer_options = nullptr;
  size_t num_rebuffer_options = 0;
  bool use_weights = false;
  double weight_shrinkage = 0.0;
  qoe::ChunkQualityParams chunk;
  // Visual quality of the previously played chunk (seeds the smoothness
  // penalty of the first lookahead step).
  double prev_visual_quality = 0.0;
};

struct PlanResult {
  size_t best_level = 0;
  double best_rebuffer_s = 0.0;
  double best_value = -1e18;
  // Best plan whose first action schedules no rebuffering, tracked
  // separately so the caller can apply its rebuffer margin.
  size_t nostall_level = 0;
  double nostall_value = -1e18;
};

// Splits a step's expected quality into its stall-free part (weighted by w)
// and the stall penalty part (weighted by max(w, 1)): a low sensitivity
// weight discounts the *quality* of a chunk, never the pain of stalling.
inline double weighted_step_quality(double w, double expected_q, double expected_q_nostall) {
  double stall_part = expected_q - expected_q_nostall;  // <= 0
  return w * expected_q_nostall + std::max(w, 1.0) * stall_part;
}

class Planner {
 public:
  virtual ~Planner() = default;
  virtual const char* name() const = 0;
  virtual PlanResult plan(const PlanQuery& query) = 0;
};

// The original Fugu recursion, verbatim: the correctness baseline the DP is
// gated against, and the "before" side of bench_planner.
class ExhaustivePlanner : public Planner {
 public:
  const char* name() const override { return "exhaustive"; }
  PlanResult plan(const PlanQuery& query) override;

 private:
  struct PlanState {
    double buffer_s = 0.0;
    double prev_vq = 0.0;
  };

  double walk(const PlanQuery& q, size_t depth, size_t chunk,
              std::vector<PlanState>& states, double prev_weighted_sum);

  // Best first action found by the current walk, tracked separately for
  // stall-free plans so the caller can apply the rebuffer margin.
  PlanResult result_;
  size_t plan_first_level_ = 0;
  double plan_first_rebuffer_ = 0.0;
};

class DpPlanner : public Planner {
 public:
  explicit DpPlanner(double buffer_quantum_s = 0.0);

  const char* name() const override { return "dp"; }
  PlanResult plan(const PlanQuery& query) override;

  // Bytes currently owned by the arenas/tables — exposed so tests and
  // benches can assert the steady-state hot path stops allocating.
  size_t arena_bytes() const;

 private:
  // Per-state bookkeeping. The state identity is (last_level, buffers);
  // records carry the best prefix reaching the state, plus the best prefix
  // whose first action scheduled no stall. Ranks encode the depth-first
  // visit order of the exhaustive walk so ties resolve identically.
  struct StateRec {
    double value = 0.0;
    double ns_value = 0.0;
    uint64_t rank = 0;
    uint64_t ns_rank = 0;  // kNoRank when no stall-free prefix reaches here
    uint32_t first_level = 0;
    uint32_t first_sched = 0;  // index into rebuffer_options
    uint32_t ns_level = 0;
    uint32_t last_level = 0;
  };
  static constexpr uint64_t kNoRank = ~0ull;

  void precompute(const PlanQuery& q, size_t depth_count);
  void ensure_hash_capacity(size_t min_slots);

  double quantum_;

  // Precomputed per-decision tables (indexed [depth][level][...]).
  std::vector<double> dl_;       // expected download time per scenario
  std::vector<double> vq_;       // visual quality
  std::vector<double> qn_;       // no-stall chunk quality per prev level
  std::vector<double> eqn_;      // probability-folded no-stall quality
  std::vector<double> w_;        // per-depth sensitivity weight
  std::vector<double> root_qn_;  // depth-0 no-stall quality per level
  std::vector<double> root_eqn_;
  // Stall-free relaxation bound: h_[d * L + p] is the best possible
  // contribution of depths [d, D) given the previous level is p, assuming
  // no scenario ever stalls. Admissible (stalls only lower quality).
  std::vector<double> h_;

  // Double-buffered state arenas: buffers are [state][scenario] flat.
  std::vector<double> bufs_[2];
  std::vector<StateRec> recs_[2];
  std::vector<double> child_buf_;     // scratch for one candidate child
  std::vector<uint64_t> child_key_;   // quantized/bit keys of child_buf_
  std::vector<uint32_t> path_;        // argmax path of the bound (incumbent)
  std::vector<double> rollout_[2];    // incumbent rollout buffers

  // Round-stamped open-addressing hash over next-depth states: a slot is
  // live iff stamp_[i] == round_, so no clearing between depths/decisions.
  std::vector<uint64_t> stamp_;
  std::vector<uint32_t> slot_;
  uint64_t round_ = 0;
};

std::unique_ptr<Planner> make_planner(PlannerKind kind, double dp_buffer_quantum_s = 0.0);

}  // namespace sensei::abr
