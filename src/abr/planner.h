// MPC lookahead planners behind Fugu/SENSEI-Fugu (paper Eq. 3 / Eq. 4).
//
// Both planners maximize the same objective: the expected sum, over a
// discrete throughput-scenario distribution, of per-chunk qualities across
// the next `horizon` chunks, optionally weighted by per-chunk sensitivity
// and extended with a scheduled-rebuffering action for the first chunk.
//
//  - ExhaustivePlanner is the reference realization: a depth-first walk of
//    the full (levels x rebuffer_options)^horizon decision tree, advancing a
//    heap-allocated per-scenario state vector at every node. Exponential in
//    the horizon; kept as the equivalence baseline behind a config flag.
//
//  - DpPlanner is the production planner: a breadth-first dynamic program
//    over the *reachable* joint states (last level, per-scenario buffers),
//    in the style of Puffer's value iteration (Yan et al., NSDI'20) —
//    round-stamped flat hash slots instead of per-decision clearing, a
//    fixed-capacity arena reused across decide() calls (zero steady-state
//    heap allocation), and per-(depth, level) download-time / quality tables
//    precomputed once per decision instead of at every tree node. States
//    that coincide (exactly, or within `buffer_quantum_s` buckets when > 0)
//    are merged, which collapses the tree wherever the buffer saturates at
//    its floor or cap. On top of the merge, an admissible bound prunes the
//    fan-out: the stall-free relaxation H(d, level) — a tiny L x horizon
//    value iteration over the precomputed quality tables — upper-bounds any
//    continuation, and a greedy rollout of its argmax path seeds an exact
//    incumbent; a state is dropped when value + H cannot *strictly* beat
//    the incumbent (ties are kept, so the depth-first tie-break of the
//    reference planner is preserved bit-for-bit).
//
// With buffer_quantum_s == 0 (the default) merging only unifies bitwise-
// identical states, and every arithmetic expression mirrors the exhaustive
// recursion operation-for-operation, so the DP returns *bit-identical*
// values and decisions — the equivalence gate in
// tests/test_planner_equivalence.cpp asserts exactly that. A positive
// quantum trades exactness for polynomially-bounded state growth
// (Puffer's unit_buf_length), which is the right regime for horizons
// beyond ~8 chunks.
//
//  - ViPlanner is the throughput planner: Puffer's discretized value
//    iteration (Yan et al., NSDI'20), taken further on three axes.
//    (1) The buffer axis is bucketed into `buffer_quantum_s` bins at the
//    first lookahead step and the bin width doubles with each deeper step
//    (multi-resolution: the forecast is most uncertain exactly where the
//    grid is coarsest), so the [depth][dis_buf][level] value table holds a
//    few hundred cells instead of thousands. (2) The throughput scenarios
//    themselves are discretized into relative (log-spaced) bins, so nearby
//    forecasts plan on identical inputs — but only for the lookahead tail:
//    the root step is always evaluated on the exact forecasts, so the
//    immediate stall/no-stall tradeoff is never misjudged by a bin that
//    rounded the throughput up. (3) Values are memoized lazily
//    from the root — round-stamped, no hashing, zero steady-state
//    allocation — and, when a PlanBatch is attached, the whole value table
//    is shared across sessions keyed by (video, chunk, horizon, discretized
//    scenarios, weights): concurrent viewers with similar forecasts at the
//    same chunk reuse each other's lookahead instead of re-iterating it.
//    The relaxation is closed-loop: deeper decisions may adapt to the
//    throughput scenario realized so far (the exact planners commit to one
//    open-loop level sequence shared by every scenario), so its values and
//    occasionally its decisions differ from the exact DP; the accuracy
//    harness (tests/test_planner_accuracy.cpp) pins the end-to-end QoE
//    delta at the default quantum. Decide cost is bounded by the (shared)
//    table size instead of the reachable joint-state fan-out, which is what
//    makes Fugu viable at fleet scale (see bench_multisession).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/predictor.h"
#include "qoe/chunk_quality.h"
#include "sim/player.h"

namespace sensei::abr {

enum class PlannerKind {
  kDp,          // memoized reachable-state DP (default)
  kExhaustive,  // reference exhaustive recursion
  kVi,          // discretized value iteration (Puffer-style, lossy)
};

// Default buffer discretization for DpPlanner state merging (seconds).
// 0 = exact (bitwise) merging.
inline constexpr double kDefaultDpBufferQuantumS = 0.0;

// Default buffer bucket width for ViPlanner (Puffer's UNIT_BUF_LENGTH) at
// the first lookahead step; the width doubles with each deeper step.
inline constexpr double kDefaultViBufferQuantumS = 2.0;

// Relative (log2-spaced) throughput discretization for ViPlanner's lookahead
// tail: scenario kbps snaps to 2^(k / kViKbpsBinsPerOctave) bins (at 0.5
// bins per octave each bin spans a 4x range), so nearby forecasts plan on
// identical inputs. The bins are deliberately coarse — tolerable because the
// root step plans on the *exact* kbps, so discretization error only biases
// which trajectory the tail prefers, never whether the immediate chunk
// stalls. This is part of the vi discretization semantics — applied whether
// or not a PlanBatch is attached, which is what keeps batched and
// per-session decide() bit-identical — and it is the hook that lets a
// PlanBatch share whole value tables across sessions whose predictors land
// in the same bins.
inline constexpr double kViKbpsBinsPerOctave = 0.5;
inline double quantize_kbps(double kbps) {
  const double k = std::max(1.0, kbps);
  return std::exp2(
      static_cast<double>(std::llround(std::log2(k) * kViKbpsBinsPerOctave)) /
      kViKbpsBinsPerOctave);
}

// The one buffer-discretization rule every planner shares: round to the
// nearest `quantum_s` bucket with std::llround (round-half-away-from-zero —
// never floor or a float->int truncation, which disagree around bucket
// edges and on negative inputs and would split states across platforms).
// Everything at or below zero — including -0.0, which must not land in a
// different bucket than +0.0 — maps to bucket 0, matching the dynamics'
// buffer floor. The caller guarantees quantum_s > 0.
inline uint64_t buffer_bucket(double buffer_s, double quantum_s) {
  if (!(buffer_s > 0.0)) return 0;  // negatives, -0.0, NaN -> the floor bucket
  return static_cast<uint64_t>(std::llround(buffer_s / quantum_s));
}

// One lookahead request. Pointers reference caller-owned storage and must
// stay valid for the duration of plan().
struct PlanQuery {
  const sim::AbrObservation* obs = nullptr;
  const net::ThroughputScenario* scenarios = nullptr;
  size_t num_scenarios = 0;
  size_t horizon = 0;
  // Scheduled-rebuffer choices for the *first* step (deeper steps always
  // use 0, as in the paper's SENSEI-Fugu).
  const double* rebuffer_options = nullptr;
  size_t num_rebuffer_options = 0;
  bool use_weights = false;
  double weight_shrinkage = 0.0;
  qoe::ChunkQualityParams chunk;
  // Visual quality of the previously played chunk (seeds the smoothness
  // penalty of the first lookahead step).
  double prev_visual_quality = 0.0;
  // Optional caller-precomputed quantized forecasts, length num_scenarios:
  // quantized_kbps[s] must equal quantize_kbps(scenarios[s].kbps). When set,
  // ViPlanner reads them instead of re-deriving the log2/exp2 bins per
  // decide(); when null it computes them itself — identical either way.
  const double* quantized_kbps = nullptr;
};

struct PlanResult {
  size_t best_level = 0;
  double best_rebuffer_s = 0.0;
  double best_value = -1e18;
  // Best plan whose first action schedules no rebuffering, tracked
  // separately so the caller can apply its rebuffer margin.
  size_t nostall_level = 0;
  double nostall_value = -1e18;
};

// Degenerate queries — an effective horizon of zero (horizon == 0 or no
// chunks remain), an empty scenario set, or an empty rebuffer_options list —
// have no decision tree to search, and every planner answers them with the
// same defined no-op plan instead of leaking the -1e18 sentinel to callers:
// stay at the observation's current level (clamped into the ladder), sched-
// ule no rebuffering, value 0 for both the best and the no-stall plan.
// Returns true (with *out filled) when `query` is degenerate.
bool degenerate_plan(const PlanQuery& query, PlanResult* out);

// Splits a step's expected quality into its stall-free part (weighted by w)
// and the stall penalty part (weighted by max(w, 1)): a low sensitivity
// weight discounts the *quality* of a chunk, never the pain of stalling.
inline double weighted_step_quality(double w, double expected_q, double expected_q_nostall) {
  double stall_part = expected_q - expected_q_nostall;  // <= 0
  return w * expected_q_nostall + std::max(w, 1.0) * stall_part;
}

// Cross-session pool of the per-video planning tables that do not depend on
// a session's predictor state: chunk sizes pre-scaled to the download-time
// units the planners use, visual qualities, and the no-stall chunk quality
// for every (chunk, level, previous level) triple. One sim::Simulator run
// owns one PlanBatch and attaches it to every session's policy
// (AbrPolicy::attach_plan_batch), so N concurrent Fugu sessions streaming
// the same ladder build these tables once instead of N times per decision.
// Tables are built lazily per (video, chunk-quality params) pair and the
// planners read them through the exact expressions they would otherwise
// compute locally, so batched and per-session decide() are bit-identical
// (tests/test_planner_accuracy.cpp pins this). Not thread-safe: a batch
// belongs to one event loop, never to concurrent ExperimentRunner cells.
class PlanBatch {
 public:
  struct VideoTables {
    const media::EncodedVideo* video = nullptr;
    qoe::ChunkQualityParams params;
    size_t levels = 0;
    // Flat [chunk * levels + level] rows over the whole video.
    std::vector<double> bits_kb;  // size_bytes * 8 / 1000 (download time = bits_kb / kbps)
    std::vector<double> vq;       // visual quality
    // No-stall chunk quality per previous level, [(chunk * L + level) * L + prev];
    // rows for chunk 0 are unused (the root step uses the observed prev quality).
    std::vector<double> qn;
  };

  // Returns (building on first use) the tables for `video` under `params`.
  // The reference stays valid for the batch's lifetime.
  const VideoTables& tables(const media::EncodedVideo& video,
                            const qoe::ChunkQualityParams& params);

  // One shared discretized-VI value table (ViPlanner). Every cell of the VI
  // table is root-independent — it depends only on the discretized decision
  // context (video window, horizon, quantized scenarios, weights, params),
  // never on the querying session's observed buffer — so once filled a cell
  // is immutable and any session planning the same context reuses it.
  struct ViValueTable {
    // Identity, verified field-for-field on lookup (the hash only routes).
    const media::EncodedVideo* video = nullptr;
    qoe::ChunkQualityParams params;
    size_t next_chunk = 0;
    size_t depth_count = 0;
    size_t levels = 0;
    double quantum = 0.0;
    // Quantized kbps + probability per scenario, then effective per-depth
    // weights when the query uses them.
    std::vector<double> key;
    // Lazily filled value cells (multi-resolution [depth][bucket][level]
    // layout, see ViPlanner) and the expected download-time rows
    // [(d * L + l) * S + s] derived from the quantized scenarios. The value
    // array is deliberately *uninitialized* at creation: every read is
    // guarded by `filled`, and zeroing (plus first-touching) ~20KB of cells
    // the lazy recursion may never reach dominated the table-create path.
    std::unique_ptr<double[]> v;
    size_t cell_count = 0;
    std::vector<uint8_t> filled;
    std::vector<double> dl;
    // Intrusive successor hint: the table a planner moved to for this
    // video's next chunk right after using this one. Steady sessions walk
    // chunk n -> n+1 with an unchanged discretized context, so following
    // the link (and re-verifying the full identity — it is a hint, never a
    // key) skips the hash + probe. Entries are append-only unique_ptrs, so
    // the pointer stays valid for the batch's lifetime.
    ViValueTable* succ = nullptr;
  };

  // Returns the shared VI table for the given discretized context, creating
  // it (v/filled sized to `cell_count`, zeroed) on first use; `*created`
  // tells the caller to finish initialization (the dl rows). The reference
  // stays valid for the batch's lifetime.
  ViValueTable& vi_table(const media::EncodedVideo& video,
                         const qoe::ChunkQualityParams& params, size_t next_chunk,
                         size_t depth_count, size_t levels, double quantum,
                         const double* key, size_t key_len, size_t cell_count,
                         bool* created);

  size_t num_videos() const { return tables_.size(); }
  size_t num_vi_tables() const { return vi_list_.size(); }
  size_t table_bytes() const;

 private:
  void vi_rehash(size_t new_cap);

  std::vector<std::unique_ptr<VideoTables>> tables_;
  // Open-addressed (linear-probe, power-of-2) hash routing into vi_list_:
  // a slot holds entry index + 1 (0 = empty) beside the entry's full hash.
  // A probe hit compares the stored hash first, then the entry's complete
  // identity, so a hash collision can never alias two contexts onto one
  // table — it just probes on. Replaces the per-hash chain vectors of an
  // unordered_map, whose node + chain-vector allocations dominated the
  // vi_table miss path at fleet scale.
  std::vector<std::unique_ptr<ViValueTable>> vi_list_;
  std::vector<uint64_t> vi_ht_hash_;
  std::vector<uint32_t> vi_ht_slot_;
};

class Planner {
 public:
  virtual ~Planner() = default;
  virtual const char* name() const = 0;
  virtual PlanResult plan(const PlanQuery& query) = 0;
  // Attaches (nullptr detaches) a shared table pool; planners that can read
  // their static per-video tables from it do, others ignore it. Attaching
  // never changes any planner's output, only where the tables live.
  virtual void set_batch(PlanBatch* batch) { (void)batch; }
};

// The original Fugu recursion, verbatim: the correctness baseline the DP is
// gated against, and the "before" side of bench_planner.
class ExhaustivePlanner : public Planner {
 public:
  const char* name() const override { return "exhaustive"; }
  PlanResult plan(const PlanQuery& query) override;

 private:
  struct PlanState {
    double buffer_s = 0.0;
    double prev_vq = 0.0;
  };

  double walk(const PlanQuery& q, size_t depth, size_t chunk,
              std::vector<PlanState>& states, double prev_weighted_sum);

  // Best first action found by the current walk, tracked separately for
  // stall-free plans so the caller can apply the rebuffer margin.
  PlanResult result_;
  size_t plan_first_level_ = 0;
  double plan_first_rebuffer_ = 0.0;
};

class DpPlanner : public Planner {
 public:
  explicit DpPlanner(double buffer_quantum_s = 0.0);

  const char* name() const override { return "dp"; }
  PlanResult plan(const PlanQuery& query) override;
  void set_batch(PlanBatch* batch) override { batch_ = batch; }

  // Bytes currently owned by the arenas/tables — exposed so tests and
  // benches can assert the steady-state hot path stops allocating.
  size_t arena_bytes() const;

 private:
  // Per-state bookkeeping. The state identity is (last_level, buffers);
  // records carry the best prefix reaching the state, plus the best prefix
  // whose first action scheduled no stall. Ranks encode the depth-first
  // visit order of the exhaustive walk so ties resolve identically.
  struct StateRec {
    double value = 0.0;
    double ns_value = 0.0;
    uint64_t rank = 0;
    uint64_t ns_rank = 0;  // kNoRank when no stall-free prefix reaches here
    uint32_t first_level = 0;
    uint32_t first_sched = 0;  // index into rebuffer_options
    uint32_t ns_level = 0;
    uint32_t last_level = 0;
  };
  static constexpr uint64_t kNoRank = ~0ull;

  void precompute(const PlanQuery& q, size_t depth_count);
  void ensure_hash_capacity(size_t min_slots);

  double quantum_;
  PlanBatch* batch_ = nullptr;

  // Precomputed per-decision tables (indexed [depth][level][...]).
  std::vector<double> dl_;       // expected download time per scenario
  std::vector<double> vq_;       // visual quality
  std::vector<double> qn_;       // no-stall chunk quality per prev level
  std::vector<double> eqn_;      // probability-folded no-stall quality
  std::vector<double> w_;        // per-depth sensitivity weight
  std::vector<double> root_qn_;  // depth-0 no-stall quality per level
  std::vector<double> root_eqn_;
  // Stall-free relaxation bound: h_[d * L + p] is the best possible
  // contribution of depths [d, D) given the previous level is p, assuming
  // no scenario ever stalls. Admissible (stalls only lower quality).
  std::vector<double> h_;

  // Double-buffered state arenas: buffers are [state][scenario] flat.
  std::vector<double> bufs_[2];
  std::vector<StateRec> recs_[2];
  std::vector<double> child_buf_;     // scratch for one candidate child
  std::vector<uint64_t> child_key_;   // quantized/bit keys of child_buf_
  std::vector<uint32_t> path_;        // argmax path of the bound (incumbent)
  std::vector<double> rollout_[2];    // incumbent rollout buffers

  // Round-stamped open-addressing hash over next-depth states: a slot is
  // live iff stamp_[i] == round_, so no clearing between depths/decisions.
  std::vector<uint64_t> stamp_;
  std::vector<uint32_t> slot_;
  uint64_t round_ = 0;
};

// Puffer-style discretized value iteration (see the file header). The
// lookahead value of (depth, discretized buffer, previous level) is memoized
// in a flat multi-resolution table — the bucket width starts at quantum_s
// and doubles with each deeper step. Values are computed lazily from the
// root, so only buckets actually reachable from the observed buffer are
// evaluated. Unbatched, the table lives in a local round-stamped arena (a
// slot is live iff its stamp equals the current decide()'s round — nothing
// is cleared between decisions, zero steady-state allocation). With a
// PlanBatch attached, the table is the shared per-context ViValueTable and
// survives across sessions and decisions: a cache hit reduces decide() to
// the root evaluation.
class ViPlanner : public Planner {
 public:
  // quantum_s <= 0 selects the default bucket width.
  explicit ViPlanner(double buffer_quantum_s = kDefaultViBufferQuantumS);

  const char* name() const override { return "vi"; }
  PlanResult plan(const PlanQuery& query) override;
  void set_batch(PlanBatch* batch) override {
    batch_ = batch;
    last_vt_ = nullptr;  // table pointers are only valid within one batch
  }

  double quantum_s() const { return quantum_; }
  size_t arena_bytes() const;

 private:
  void precompute(const PlanQuery& q, size_t depth_count);
  void fill_dl(double* dl) const;
  double value_of(size_t depth, double buffer_s, size_t prev_level);

  double quantum_;
  PlanBatch* batch_ = nullptr;
  // The shared table the previous batched plan() used — seed of the
  // ViValueTable::succ successor shortcut. Cleared on every batch change.
  PlanBatch::ViValueTable* last_vt_ = nullptr;

  // Per-decide context (set by plan(), read by value_of).
  const PlanQuery* q_ = nullptr;
  size_t D_ = 0, L_ = 0, S_ = 0;
  double tau_ = 0.0;

  // Multi-resolution grid geometry for depths [1, D): bucket width per
  // depth, bucket count per depth, and the cell offset of each depth's
  // [bucket][level] slab in the value table.
  std::vector<double> width_;
  std::vector<size_t> bcount_;
  std::vector<size_t> off_;
  size_t cells_ = 0;

  // The exact and quantized forecast kbps (quantize_kbps bins) as
  // contiguous rows — the planner's actual throughput inputs, batched or
  // not — and the cache key the quantized row induces.
  std::vector<double> exact_kbps_;
  std::vector<double> qkbps_;
  std::vector<double> key_;

  // Static tables for the lookahead window: pointers into the shared
  // PlanBatch when attached, else into the local_* arenas filled with the
  // identical values. Layout is [d * L + l] (vq, bits) and
  // [(d * L + l) * L + p] (qn), d relative to the window start.
  const double* bits_tab_ = nullptr;
  const double* vq_tab_ = nullptr;
  const double* qn_tab_ = nullptr;
  std::vector<double> local_bits_;
  std::vector<double> local_vq_;
  std::vector<double> local_qn_;

  // Per-decide scenario state, SoA so the inner scenario loops stream over
  // contiguous rows: expected download times per (depth, level) — shared
  // table rows on a batch hit, else the local arena — and probabilities.
  const double* dl_tab_ = nullptr;  // [(d * L + l) * S + s]
  std::vector<double> local_dl_;
  std::vector<double> prob_;  // [s]
  std::vector<double> w_;     // per-depth sensitivity weight
  std::vector<double> root_qn_;
  std::vector<double> root_dl_;  // depth-0 download times on *exact* kbps

  // Per-depth scratch rows [depth * S + s] for the SoA step kernels
  // (util/kernels): post-step buffer, stall seconds, and stalled chunk
  // quality for one candidate level across all scenarios. Each depth owns
  // its slice because the recursion at depth d + 1 fills rows d + 1 while
  // depth d's rows are still being folded; the root uses slice 0 (value_of
  // starts at depth 1).
  std::vector<double> row_b_;
  std::vector<double> row_stall_;
  std::vector<double> row_qv_;
  // Chunk-quality params cached as scalars for the kernel calls.
  double br_ = 0.0, sat_ = 0.0, bsw_ = 0.0, floor_ = 0.0;

  // Value cells for this decide(): either the shared ViValueTable (filled_
  // non-null, filled-flag liveness) or the local round-stamped arena.
  double* v_cells_ = nullptr;
  uint8_t* filled_ = nullptr;
  std::vector<double> v_;
  std::vector<uint64_t> vstamp_;
  uint64_t round_ = 0;
};

std::unique_ptr<Planner> make_planner(PlannerKind kind, double dp_buffer_quantum_s = 0.0);

}  // namespace sensei::abr
