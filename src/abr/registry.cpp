#include "abr/registry.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <stdexcept>

#include "abr/bba.h"
#include "abr/fugu.h"
#include "abr/pensieve.h"
#include "abr/rate_based.h"
#include "abr/whittle.h"

namespace sensei::abr {

namespace {

bool is_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '-';
}
bool is_key_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
}

[[noreturn]] void spec_error(const std::string& text, size_t pos, const std::string& what) {
  throw std::runtime_error("policy spec \"" + text + "\": " + what + " at position " +
                           std::to_string(pos));
}

// Full-consumption finite strtod; false on trailing garbage / empty / inf/nan.
bool parse_finite_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  if (!std::isfinite(v)) return false;
  out = v;
  return true;
}

bool parse_size(const std::string& text, size_t& out) {
  if (text.empty()) return false;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
  }
  char* end = nullptr;
  unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  out = static_cast<size_t>(v);
  return true;
}

std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += ", ";
    out += parts[i];
  }
  return out;
}

// --- canonical-spec accessors (keys are guaranteed present/valid) ----------

const std::string& spec_value(const PolicySpec& spec, const char* key) {
  const std::string* v = spec.find(key);
  if (!v) {
    throw std::logic_error("canonical spec for '" + spec.name + "' is missing key '" + key + "'");
  }
  return *v;
}

double spec_double(const PolicySpec& spec, const char* key) {
  double v = 0.0;
  parse_finite_double(spec_value(spec, key), v);
  return v;
}

size_t spec_size(const PolicySpec& spec, const char* key) {
  size_t v = 0;
  parse_size(spec_value(spec, key), v);
  return v;
}

qoe::ChunkQualityParams chunk_params_from(const PolicySpec& spec) {
  qoe::ChunkQualityParams p;
  p.beta_rebuf = spec_double(spec, "beta_rebuf");
  p.rebuf_saturation = spec_double(spec, "rebuf_saturation");
  p.beta_switch = spec_double(spec, "beta_switch");
  p.floor = spec_double(spec, "floor");
  return p;
}

PlannerKind planner_from(const PolicySpec& spec) {
  const std::string& v = spec_value(spec, "planner");
  if (v == "dp") return PlannerKind::kDp;
  if (v == "exhaustive") return PlannerKind::kExhaustive;
  return PlannerKind::kVi;
}

using KeyInfo = PolicyRegistry::KeyInfo;
using KeyType = PolicyRegistry::KeyType;

// The shared ChunkQualityParams surface (qoe/chunk_quality.h defaults).
std::vector<KeyInfo> chunk_keys() {
  return {
      {"beta_rebuf", KeyType::kDouble, "1.1", {}},
      {"rebuf_saturation", KeyType::kDouble, "0.3", {}},
      {"beta_switch", KeyType::kDouble, "0.4", {}},
      {"floor", KeyType::kDouble, "-0.5", {}},
  };
}

std::vector<KeyInfo> fugu_keys() {
  std::vector<KeyInfo> keys = chunk_keys();
  keys.push_back({"planner", KeyType::kEnum, "dp", {"dp", "exhaustive", "vi"}});
  keys.push_back({"horizon", KeyType::kSize, "5", {}});
  keys.push_back({"predictor_window", KeyType::kSize, "8", {}});
  keys.push_back({"dp_buffer_quantum_s", KeyType::kDouble, "0", {}});
  keys.push_back({"rebuffer_margin", KeyType::kDouble, "0.35", {}});
  keys.push_back({"weight_shrinkage", KeyType::kDouble, "0.8", {}});
  return keys;
}

std::vector<KeyInfo> pensieve_keys(const char* default_seed) {
  std::vector<KeyInfo> keys = chunk_keys();
  keys.push_back({"seed", KeyType::kSize, default_seed, {}});
  return keys;
}

// One factory per fugu variant: the variant name fixes use_weights and the
// scheduled-rebuffering action set (core/sensei.h §5.2), the spec keys fix
// everything else. Field-for-field identical to direct FuguConfig
// construction — the bit-identity contract.
PolicyRegistry::Factory fugu_factory(bool use_weights, std::vector<double> rebuffer_options) {
  return [use_weights, rebuffer_options](const PolicySpec& spec) {
    FuguConfig cfg;
    cfg.horizon = spec_size(spec, "horizon");
    cfg.predictor_window = spec_size(spec, "predictor_window");
    cfg.chunk = chunk_params_from(spec);
    cfg.use_weights = use_weights;
    cfg.weight_shrinkage = spec_double(spec, "weight_shrinkage");
    cfg.rebuffer_options = rebuffer_options;
    cfg.rebuffer_margin = spec_double(spec, "rebuffer_margin");
    cfg.planner = planner_from(spec);
    cfg.dp_buffer_quantum_s = spec_double(spec, "dp_buffer_quantum_s");
    return std::unique_ptr<sim::AbrPolicy>(std::make_unique<FuguAbr>(cfg));
  };
}

PolicyRegistry::Factory pensieve_factory(bool sensei_mode) {
  return [sensei_mode](const PolicySpec& spec) {
    PensieveConfig cfg;
    cfg.sensei_mode = sensei_mode;
    cfg.chunk = chunk_params_from(spec);
    return std::unique_ptr<sim::AbrPolicy>(
        std::make_unique<PensieveAbr>(cfg, static_cast<uint64_t>(spec_size(spec, "seed"))));
  };
}

}  // namespace

// --- PolicySpec ------------------------------------------------------------

PolicySpec PolicySpec::parse(const std::string& text) {
  PolicySpec spec;
  size_t colon = text.find(':');
  size_t name_end = colon == std::string::npos ? text.size() : colon;
  if (name_end == 0) spec_error(text, 0, "empty policy name");
  for (size_t i = 0; i < name_end; ++i) {
    if (!is_name_char(text[i])) {
      spec_error(text, i, std::string("invalid character '") + text[i] + "' in policy name");
    }
  }
  spec.name = text.substr(0, name_end);
  if (colon == std::string::npos) return spec;

  size_t pos = colon + 1;
  while (true) {
    size_t comma = text.find(',', pos);
    size_t pair_end = comma == std::string::npos ? text.size() : comma;
    if (pair_end == pos) spec_error(text, pos, "empty key=value pair");
    size_t eq = text.find('=', pos);
    if (eq == std::string::npos || eq >= pair_end) {
      spec_error(text, pos, "missing '=' in key=value pair");
    }
    if (eq == pos) spec_error(text, pos, "empty key");
    for (size_t i = pos; i < eq; ++i) {
      if (!is_key_char(text[i])) {
        spec_error(text, i, std::string("invalid character '") + text[i] + "' in key");
      }
    }
    std::string key = text.substr(pos, eq - pos);
    if (eq + 1 == pair_end) spec_error(text, eq + 1, "empty value for key '" + key + "'");
    std::string value = text.substr(eq + 1, pair_end - eq - 1);
    if (spec.find(key) != nullptr) spec_error(text, pos, "duplicate key '" + key + "'");
    spec.kv.emplace_back(std::move(key), std::move(value));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return spec;
}

std::string PolicySpec::to_string() const {
  std::string out = name;
  for (size_t i = 0; i < kv.size(); ++i) {
    out += i == 0 ? ':' : ',';
    out += kv[i].first;
    out += '=';
    out += kv[i].second;
  }
  return out;
}

const std::string* PolicySpec::find(const std::string& key) const {
  for (const auto& [k, v] : kv) {
    if (k == key) return &v;
  }
  return nullptr;
}

// --- PolicyRegistry --------------------------------------------------------

PolicyRegistry& PolicyRegistry::instance() {
  // Built fully inside the constructor and only read afterwards, so the
  // magic-static initialization is the synchronization point.
  static PolicyRegistry registry;
  return registry;
}

PolicyRegistry::PolicyRegistry() {
  register_policy("bba",
                  {{"reservoir_s", KeyType::kDouble, "5", {}},
                   {"cushion_s", KeyType::kDouble, "20", {}}},
                  [](const PolicySpec& spec) {
                    BbaConfig cfg;
                    cfg.reservoir_s = spec_double(spec, "reservoir_s");
                    cfg.cushion_s = spec_double(spec, "cushion_s");
                    return std::unique_ptr<sim::AbrPolicy>(std::make_unique<BbaAbr>(cfg));
                  });
  register_policy("rate_based",
                  {{"safety", KeyType::kDouble, "0.85", {}},
                   {"window", KeyType::kSize, "5", {}}},
                  [](const PolicySpec& spec) {
                    RateBasedConfig cfg;
                    cfg.safety = spec_double(spec, "safety");
                    cfg.window = spec_size(spec, "window");
                    return std::unique_ptr<sim::AbrPolicy>(std::make_unique<RateBasedAbr>(cfg));
                  });
  register_policy("whittle",
                  [] {
                    std::vector<KeyInfo> keys = chunk_keys();
                    keys.push_back({"safety", KeyType::kDouble, "0.9", {}});
                    keys.push_back({"window", KeyType::kSize, "8", {}});
                    keys.push_back({"headroom", KeyType::kDouble, "0.5", {}});
                    keys.push_back({"drain_penalty", KeyType::kDouble, "0.6", {}});
                    return keys;
                  }(),
                  [](const PolicySpec& spec) {
                    WhittleConfig cfg;
                    cfg.safety = spec_double(spec, "safety");
                    cfg.window = spec_size(spec, "window");
                    cfg.headroom = spec_double(spec, "headroom");
                    cfg.drain_penalty = spec_double(spec, "drain_penalty");
                    cfg.chunk = chunk_params_from(spec);
                    return std::unique_ptr<sim::AbrPolicy>(
                        std::make_unique<WhittleIndexAbr>(cfg));
                  });
  // The fugu family: one FuguAbr, three names. The name fixes the SENSEI
  // delta (weighted objective, scheduled-rebuffering options); see
  // core/sensei.h.
  register_policy("fugu", fugu_keys(), fugu_factory(false, {0.0}));
  register_policy("sensei-fugu", fugu_keys(), fugu_factory(true, {0.0, 1.0, 2.0}));
  register_policy("sensei-fugu-bitrate-only", fugu_keys(), fugu_factory(true, {0.0}));
  // Registry-built Pensieve nets are freshly initialized from the seed, NOT
  // trained. Experiments::policy_factory overlays its cached trained
  // instances for the "pensieve"/"sensei-pensieve" names.
  register_policy("pensieve", pensieve_keys("41"), pensieve_factory(false));
  register_policy("sensei-pensieve", pensieve_keys("42"), pensieve_factory(true));
}

void PolicyRegistry::register_policy(const std::string& name, std::vector<KeyInfo> keys,
                                     Factory factory) {
  if (name.empty()) throw std::invalid_argument("register_policy: empty name");
  for (char c : name) {
    if (!is_name_char(c)) {
      throw std::invalid_argument("register_policy: invalid policy name '" + name + "'");
    }
  }
  std::sort(keys.begin(), keys.end(),
            [](const KeyInfo& a, const KeyInfo& b) { return a.key < b.key; });
  for (size_t i = 0; i < keys.size(); ++i) {
    const KeyInfo& info = keys[i];
    if (i > 0 && keys[i - 1].key == info.key) {
      throw std::invalid_argument("register_policy: duplicate key '" + info.key + "' for '" +
                                  name + "'");
    }
    for (char c : info.key) {
      if (!is_key_char(c)) {
        throw std::invalid_argument("register_policy: invalid key '" + info.key + "' for '" +
                                    name + "'");
      }
    }
    // Defaults must pass their own type check (and, for doubles, be in
    // canonical text form) so canonicalize() can splice them in verbatim.
    double d = 0.0;
    size_t s = 0;
    bool ok = false;
    switch (info.type) {
      case KeyType::kDouble:
        ok = parse_finite_double(info.default_value, d) && format_spec_double(d) == info.default_value;
        break;
      case KeyType::kSize:
        ok = parse_size(info.default_value, s) && std::to_string(s) == info.default_value;
        break;
      case KeyType::kEnum:
        ok = std::find(info.enum_values.begin(), info.enum_values.end(), info.default_value) !=
             info.enum_values.end();
        break;
    }
    if (!ok) {
      throw std::invalid_argument("register_policy: non-canonical default \"" +
                                  info.default_value + "\" for key '" + info.key + "' of '" +
                                  name + "'");
    }
  }
  entries_[name] = Entry{std::move(keys), std::move(factory)};
}

bool PolicyRegistry::has(const std::string& name) const {
  return entries_.find(name) != entries_.end();
}

std::vector<std::string> PolicyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

const std::vector<PolicyRegistry::KeyInfo>& PolicyRegistry::keys(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::runtime_error("unknown policy name '" + name + "'; registered: " + join(names()));
  }
  return it->second.keys;
}

PolicySpec PolicyRegistry::canonicalize(const PolicySpec& spec) const {
  auto it = entries_.find(spec.name);
  if (it == entries_.end()) {
    throw std::runtime_error("unknown policy name '" + spec.name +
                             "'; registered: " + join(names()));
  }
  const Entry& entry = it->second;

  // Validate and canonically reformat every provided value.
  std::vector<std::pair<std::string, std::string>> provided;
  provided.reserve(spec.kv.size());
  for (const auto& [key, value] : spec.kv) {
    const KeyInfo* info = nullptr;
    for (const KeyInfo& k : entry.keys) {
      if (k.key == key) {
        info = &k;
        break;
      }
    }
    if (!info) {
      std::vector<std::string> known;
      for (const KeyInfo& k : entry.keys) known.push_back(k.key);
      throw std::runtime_error("policy '" + spec.name + "' has no key '" + key +
                               "'; keys: " + join(known));
    }
    for (const auto& [seen_key, seen_value] : provided) {
      if (seen_key == key) {
        throw std::runtime_error("policy '" + spec.name + "': duplicate key '" + key + "'");
      }
    }
    std::string canonical_value;
    switch (info->type) {
      case KeyType::kDouble: {
        double v = 0.0;
        if (!parse_finite_double(value, v)) {
          throw std::runtime_error("policy '" + spec.name + "' key '" + key +
                                   "': expected a finite number, got \"" + value + "\"");
        }
        canonical_value = format_spec_double(v);
        break;
      }
      case KeyType::kSize: {
        size_t v = 0;
        if (!parse_size(value, v)) {
          throw std::runtime_error("policy '" + spec.name + "' key '" + key +
                                   "': expected a non-negative integer, got \"" + value + "\"");
        }
        canonical_value = std::to_string(v);
        break;
      }
      case KeyType::kEnum: {
        if (std::find(info->enum_values.begin(), info->enum_values.end(), value) ==
            info->enum_values.end()) {
          throw std::runtime_error("policy '" + spec.name + "' key '" + key + "': \"" + value +
                                   "\" is not one of " + join(info->enum_values));
        }
        canonical_value = value;
        break;
      }
    }
    provided.emplace_back(key, std::move(canonical_value));
  }

  // Canonical form: every registered key, in sorted order (entry.keys is
  // sorted at registration), defaults made explicit.
  PolicySpec canonical;
  canonical.name = spec.name;
  canonical.kv.reserve(entry.keys.size());
  for (const KeyInfo& info : entry.keys) {
    const std::string* value = nullptr;
    for (const auto& [key, v] : provided) {
      if (key == info.key) {
        value = &v;
        break;
      }
    }
    canonical.kv.emplace_back(info.key, value ? *value : info.default_value);
  }
  return canonical;
}

std::string PolicyRegistry::canonical_string(const std::string& spec_text) const {
  return canonicalize(PolicySpec::parse(spec_text)).to_string();
}

std::unique_ptr<sim::AbrPolicy> PolicyRegistry::make(const PolicySpec& spec) const {
  PolicySpec canonical = canonicalize(spec);
  return entries_.at(canonical.name).factory(canonical);
}

std::unique_ptr<sim::AbrPolicy> PolicyRegistry::make(const std::string& spec_text) const {
  return make(PolicySpec::parse(spec_text));
}

std::unique_ptr<sim::AbrPolicy> make_policy(const std::string& spec_text) {
  return PolicyRegistry::instance().make(spec_text);
}

std::string format_spec_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  if (std::strtod(buf, nullptr) == value) return buf;
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace sensei::abr
