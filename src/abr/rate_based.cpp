#include "abr/rate_based.h"

namespace sensei::abr {

RateBasedAbr::RateBasedAbr(RateBasedConfig config)
    : config_(config), predictor_(config.window) {}

void RateBasedAbr::begin_session(const media::EncodedVideo& video) {
  (void)video;
  predictor_.reset();
}

sim::AbrDecision RateBasedAbr::decide(const sim::AbrObservation& obs) {
  if (obs.last_throughput_kbps > 0.0) predictor_.observe(obs.last_throughput_kbps);
  double budget_kbps = config_.safety * predictor_.predict_kbps();
  sim::AbrDecision d;
  d.level = obs.video->ladder().highest_level_at_most(budget_kbps);
  return d;
}

}  // namespace sensei::abr
