#include "abr/whittle.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sensei::abr {

WhittleIndexAbr::WhittleIndexAbr(WhittleConfig config)
    : config_(config), predictor_(config.window) {
  if (config_.safety <= 0.0) throw std::invalid_argument("WhittleConfig: safety must be > 0");
  if (config_.headroom < 0.0) throw std::invalid_argument("WhittleConfig: headroom must be >= 0");
  if (config_.drain_penalty < 0.0) {
    throw std::invalid_argument("WhittleConfig: drain_penalty must be >= 0");
  }
}

void WhittleIndexAbr::begin_session(const media::EncodedVideo& video) {
  (void)video;
  predictor_.reset();
}

double WhittleIndexAbr::level_index(const sim::AbrObservation& obs, size_t level,
                                    double buffer_s, double budget_kbps) const {
  const media::EncodedVideo& video = *obs.video;
  // Predicted download time of this rung at the safety-scaled budget.
  double bits = video.size_bytes(obs.next_chunk, level) * 8.0;
  double download_s = bits / (budget_kbps * 1000.0);

  double vq = video.visual_quality(obs.next_chunk, level);
  double vq_prev =
      obs.next_chunk > 0 ? video.visual_quality(obs.next_chunk - 1, obs.last_level) : vq;

  // Stall risk: the part of the download the buffer cannot cover, priced by
  // the same saturating penalty the QoE model charges for a real stall.
  double uncovered_s = std::max(0.0, download_s - buffer_s);
  // Drain risk: post-download buffer below headroom * download time. This
  // fires earlier than the stall term, so the index de-escalates while
  // there is still buffer to protect.
  double shortfall_s = std::max(0.0, config_.headroom * download_s - (buffer_s - download_s));

  return vq - config_.chunk.beta_switch * std::abs(vq - vq_prev) -
         config_.chunk.beta_rebuf * qoe::stall_penalty(uncovered_s, config_.chunk) -
         config_.drain_penalty * shortfall_s;
}

sim::AbrDecision WhittleIndexAbr::decide(const sim::AbrObservation& obs) {
  if (obs.last_throughput_kbps > 0.0) predictor_.observe(obs.last_throughput_kbps);
  double budget_kbps = config_.safety * predictor_.predict_kbps();
  sim::AbrDecision d;
  if (!(budget_kbps > 0.0)) return d;  // degenerate forecast: lowest rung

  size_t levels = obs.video->ladder().level_count();
  size_t best = 0;
  double best_index = level_index(obs, 0, obs.buffer_s, budget_kbps);
  for (size_t l = 1; l < levels; ++l) {
    double index = level_index(obs, l, obs.buffer_s, budget_kbps);
    // Strictly greater: ties keep the lowest (cheapest) rung.
    if (index > best_index) {
      best = l;
      best_index = index;
    }
  }
  d.level = best;
  return d;
}

}  // namespace sensei::abr
