#include "abr/whittle.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/kernels.h"

namespace sensei::abr {

WhittleIndexAbr::WhittleIndexAbr(WhittleConfig config)
    : config_(config), predictor_(config.window) {
  if (config_.safety <= 0.0) throw std::invalid_argument("WhittleConfig: safety must be > 0");
  if (config_.headroom < 0.0) throw std::invalid_argument("WhittleConfig: headroom must be >= 0");
  if (config_.drain_penalty < 0.0) {
    throw std::invalid_argument("WhittleConfig: drain_penalty must be >= 0");
  }
}

void WhittleIndexAbr::begin_session(const media::EncodedVideo& video) {
  (void)video;
  predictor_.reset();
}

double WhittleIndexAbr::level_index(const sim::AbrObservation& obs, size_t level,
                                    double buffer_s, double budget_kbps) const {
  const media::EncodedVideo& video = *obs.video;
  // Predicted download time of this rung at the safety-scaled budget.
  double bits = video.size_bytes(obs.next_chunk, level) * 8.0;
  double download_s = bits / (budget_kbps * 1000.0);

  double vq = video.visual_quality(obs.next_chunk, level);
  double vq_prev =
      obs.next_chunk > 0 ? video.visual_quality(obs.next_chunk - 1, obs.last_level) : vq;

  // Stall risk: the part of the download the buffer cannot cover, priced by
  // the same saturating penalty the QoE model charges for a real stall.
  double uncovered_s = std::max(0.0, download_s - buffer_s);
  // Drain risk: post-download buffer below headroom * download time. This
  // fires earlier than the stall term, so the index de-escalates while
  // there is still buffer to protect.
  double shortfall_s = std::max(0.0, config_.headroom * download_s - (buffer_s - download_s));

  return vq - config_.chunk.beta_switch * std::abs(vq - vq_prev) -
         config_.chunk.beta_rebuf * qoe::stall_penalty(uncovered_s, config_.chunk) -
         config_.drain_penalty * shortfall_s;
}

sim::AbrDecision WhittleIndexAbr::decide(const sim::AbrObservation& obs) {
  if (obs.last_throughput_kbps > 0.0) predictor_.observe(obs.last_throughput_kbps);
  double budget_kbps = config_.safety * predictor_.predict_kbps();
  sim::AbrDecision d;
  if (!(budget_kbps > 0.0)) return d;  // degenerate forecast: lowest rung

  // One index kernel over the whole ladder, lane for lane the level_index
  // expression, then a strict argmax (ties keep the lowest rung) — exactly
  // the scalar loop this replaces.
  const media::EncodedVideo& video = *obs.video;
  const size_t levels = video.ladder().level_count();
  if (row_bytes_.size() < levels) {
    row_bytes_.resize(levels);
    row_vq_.resize(levels);
    row_prev_.resize(levels);
    row_idx_.resize(levels);
  }
  for (size_t l = 0; l < levels; ++l) {
    row_bytes_[l] = static_cast<double>(video.size_bytes(obs.next_chunk, l));
    row_vq_[l] = video.visual_quality(obs.next_chunk, l);
  }
  if (obs.next_chunk > 0) {
    const double prev = video.visual_quality(obs.next_chunk - 1, obs.last_level);
    std::fill(row_prev_.begin(), row_prev_.begin() + levels, prev);
  } else {
    // First chunk: level_index seeds the smoothness term with the rung's
    // own quality, so the previous-quality row is the quality row itself.
    std::copy(row_vq_.begin(), row_vq_.begin() + levels, row_prev_.begin());
  }
  const double den = budget_kbps * 1000.0;
  util::kernels::whittle_index_row(row_bytes_.data(), row_vq_.data(), row_prev_.data(),
                                   levels, den, obs.buffer_s, config_.headroom,
                                   config_.drain_penalty, config_.chunk.beta_rebuf,
                                   config_.chunk.rebuf_saturation,
                                   config_.chunk.beta_switch, row_idx_.data());
  d.level = util::kernels::argmax_strict_row(row_idx_.data(), levels);
  return d;
}

}  // namespace sensei::abr
