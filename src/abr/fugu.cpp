#include "abr/fugu.h"

namespace sensei::abr {

FuguAbr::FuguAbr(FuguConfig config)
    : config_(std::move(config)),
      predictor_(config_.predictor_window),
      planner_(make_planner(config_.planner, config_.dp_buffer_quantum_s)) {}

FuguAbr::FuguAbr(const FuguAbr& other)
    : config_(other.config_),
      predictor_(other.predictor_),
      planner_(make_planner(other.config_.planner, other.config_.dp_buffer_quantum_s)) {}

FuguAbr& FuguAbr::operator=(const FuguAbr& other) {
  if (this != &other) {
    config_ = other.config_;
    predictor_ = other.predictor_;
    planner_ = make_planner(config_.planner, config_.dp_buffer_quantum_s);
  }
  return *this;
}

void FuguAbr::begin_session(const media::EncodedVideo& video) {
  (void)video;
  predictor_.reset();
}

sim::AbrDecision FuguAbr::decide(const sim::AbrObservation& obs) {
  if (obs.last_throughput_kbps > 0.0) predictor_.observe(obs.last_throughput_kbps);
  predictor_.scenarios_into(scenario_buf_);

  double prev_vq = obs.next_chunk > 0
                       ? obs.video->visual_quality(obs.next_chunk - 1, obs.last_level)
                       : obs.video->visual_quality(0, 0);

  PlanQuery q;
  q.obs = &obs;
  q.scenarios = scenario_buf_.data();
  q.num_scenarios = scenario_buf_.size();
  q.horizon = config_.horizon;
  q.rebuffer_options = config_.rebuffer_options.data();
  q.num_rebuffer_options = config_.rebuffer_options.size();
  q.use_weights = config_.use_weights;
  q.weight_shrinkage = config_.weight_shrinkage;
  q.chunk = config_.chunk;
  q.prev_visual_quality = prev_vq;

  PlanResult r = planner_->plan(q);

  sim::AbrDecision d;
  if (r.best_rebuffer_s > 0.0 &&
      r.best_value < r.nostall_value + config_.rebuffer_margin) {
    d.level = r.nostall_level;
    d.scheduled_rebuffer_s = 0.0;
  } else {
    d.level = r.best_level;
    d.scheduled_rebuffer_s = r.best_rebuffer_s;
  }
  return d;
}

}  // namespace sensei::abr
