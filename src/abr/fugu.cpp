#include "abr/fugu.h"

#include <algorithm>

namespace sensei::abr {

namespace {

// Splits a step's expected quality into its stall-free part (weighted by w)
// and the stall penalty part (weighted by max(w, 1)): a low sensitivity
// weight discounts the *quality* of a chunk, never the pain of stalling.
double weighted_step_quality(double w, double expected_q, double expected_q_nostall) {
  double stall_part = expected_q - expected_q_nostall;  // <= 0
  return w * expected_q_nostall + std::max(w, 1.0) * stall_part;
}

}  // namespace

FuguAbr::FuguAbr(FuguConfig config)
    : config_(config), predictor_(config.predictor_window) {}

void FuguAbr::begin_session(const media::EncodedVideo& video) {
  (void)video;
  predictor_.reset();
}

double FuguAbr::plan(const sim::AbrObservation& obs,
                     const std::vector<net::ThroughputScenario>& scenarios, size_t depth,
                     size_t chunk, std::vector<PlanState>& states,
                     double prev_weighted_sum) {
  const auto& video = *obs.video;
  const size_t levels = video.ladder().level_count();
  const double tau = video.chunk_duration_s();

  if (depth >= config_.horizon || chunk >= obs.num_chunks) {
    // Leaf: record if this is the best complete plan.
    if (prev_weighted_sum > best_value_) {
      best_value_ = prev_weighted_sum;
      best_first_level_ = plan_first_level_;
      best_first_rebuffer_ = plan_first_rebuffer_;
    }
    if (plan_first_rebuffer_ == 0.0 && prev_weighted_sum > best_nostall_value_) {
      best_nostall_value_ = prev_weighted_sum;
      best_nostall_level_ = plan_first_level_;
    }
    return prev_weighted_sum;
  }

  // Weight for this horizon step: 1 when weight-unaware or none provided.
  double w = 1.0;
  if (config_.use_weights && depth < obs.future_weights.size()) {
    w = 1.0 + config_.weight_shrinkage * (obs.future_weights[depth] - 1.0);
  }

  const std::vector<double> no_stall = {0.0};
  const std::vector<double>& stall_options =
      depth == 0 ? config_.rebuffer_options : no_stall;

  double best = -1e18;
  for (size_t level = 0; level < levels; ++level) {
    const auto& rep = video.rep(chunk, level);
    for (double scheduled : stall_options) {
      // Advance each scenario independently; expectation over scenarios.
      std::vector<PlanState> next_states = states;
      double expected_q = 0.0;
      double expected_q_nostall = 0.0;
      for (size_t s = 0; s < scenarios.size(); ++s) {
        double kbps = std::max(1.0, scenarios[s].kbps);
        double dl = rep.size_bytes * 8.0 / 1000.0 / kbps + 0.08;
        PlanState& st = next_states[s];
        double stall = 0.0;
        if (dl > st.buffer_s) {
          stall = dl - st.buffer_s;
          st.buffer_s = 0.0;
        } else {
          st.buffer_s -= dl;
        }
        if (scheduled > 0.0) {
          st.buffer_s += scheduled;
          stall += scheduled;
        }
        st.buffer_s = std::min(st.buffer_s + tau, 30.0);
        double q = qoe::chunk_quality(rep.visual_quality, stall, st.prev_vq, config_.chunk);
        double q_nostall =
            qoe::chunk_quality(rep.visual_quality, 0.0, st.prev_vq, config_.chunk);
        st.prev_vq = rep.visual_quality;
        expected_q += scenarios[s].probability * q;
        expected_q_nostall += scenarios[s].probability * q_nostall;
      }

      if (depth == 0) {
        plan_first_level_ = level;
        plan_first_rebuffer_ = scheduled;
      }
      // Stall terms are never discounted below neutral: a weight below 1
      // means the viewer cares less about *quality* there, not that stalling
      // is free. Decompose expected_q into its stall-free part and the stall
      // penalty part, and weight them separately.
      double value = plan(obs, scenarios, depth + 1, chunk + 1, next_states,
                          prev_weighted_sum + weighted_step_quality(w, expected_q,
                                                                    expected_q_nostall));
      best = std::max(best, value);
    }
  }
  return best;
}

sim::AbrDecision FuguAbr::decide(const sim::AbrObservation& obs) {
  if (obs.last_throughput_kbps > 0.0) predictor_.observe(obs.last_throughput_kbps);
  auto scenarios = predictor_.scenarios();

  std::vector<PlanState> states(scenarios.size());
  double prev_vq = obs.next_chunk > 0
                       ? obs.video->visual_quality(obs.next_chunk - 1, obs.last_level)
                       : obs.video->visual_quality(0, 0);
  for (auto& st : states) {
    st.buffer_s = obs.buffer_s;
    st.prev_vq = prev_vq;
  }

  best_value_ = -1e18;
  best_nostall_value_ = -1e18;
  best_first_level_ = 0;
  best_nostall_level_ = 0;
  best_first_rebuffer_ = 0.0;
  plan(obs, scenarios, 0, obs.next_chunk, states, 0.0);

  sim::AbrDecision d;
  if (best_first_rebuffer_ > 0.0 &&
      best_value_ < best_nostall_value_ + config_.rebuffer_margin) {
    d.level = best_nostall_level_;
    d.scheduled_rebuffer_s = 0.0;
  } else {
    d.level = best_first_level_;
    d.scheduled_rebuffer_s = best_first_rebuffer_;
  }
  return d;
}

}  // namespace sensei::abr
