#include "abr/fugu.h"

#include "util/kernels.h"

namespace sensei::abr {

FuguAbr::FuguAbr(FuguConfig config)
    : config_(std::move(config)),
      predictor_(config_.predictor_window),
      planner_(make_planner(config_.planner, config_.dp_buffer_quantum_s)) {}

FuguAbr::FuguAbr(const FuguAbr& other)
    : config_(other.config_),
      predictor_(other.predictor_),
      planner_(make_planner(other.config_.planner, other.config_.dp_buffer_quantum_s)) {}

FuguAbr& FuguAbr::operator=(const FuguAbr& other) {
  if (this != &other) {
    config_ = other.config_;
    predictor_ = other.predictor_;
    planner_ = make_planner(config_.planner, config_.dp_buffer_quantum_s);
  }
  return *this;
}

void FuguAbr::begin_session(const media::EncodedVideo& video) {
  (void)video;
  predictor_.reset();
}

sim::AbrDecision FuguAbr::decide(const sim::AbrObservation& obs) {
  if (obs.last_throughput_kbps > 0.0) predictor_.observe(obs.last_throughput_kbps);
  predictor_.scenarios_into(scenario_buf_);

  // Quantize the forecast once per decision; the vi planner consumes the
  // table directly (other planners ignore it).
  const size_t S = scenario_buf_.size();
  kbps_buf_.resize(S);
  quantized_buf_.resize(S);
  for (size_t s = 0; s < S; ++s) kbps_buf_[s] = scenario_buf_[s].kbps;
  util::kernels::quantize_kbps_row(kbps_buf_.data(), S, kViKbpsBinsPerOctave,
                                   quantized_buf_.data());

  double prev_vq = obs.next_chunk > 0
                       ? obs.video->visual_quality(obs.next_chunk - 1, obs.last_level)
                       : obs.video->visual_quality(0, 0);

  PlanQuery q;
  q.obs = &obs;
  q.scenarios = scenario_buf_.data();
  q.num_scenarios = scenario_buf_.size();
  q.horizon = config_.horizon;
  q.rebuffer_options = config_.rebuffer_options.data();
  q.num_rebuffer_options = config_.rebuffer_options.size();
  q.use_weights = config_.use_weights;
  q.weight_shrinkage = config_.weight_shrinkage;
  q.chunk = config_.chunk;
  q.prev_visual_quality = prev_vq;
  q.quantized_kbps = quantized_buf_.data();

  PlanResult r = planner_->plan(q);

  sim::AbrDecision d;
  if (r.best_rebuffer_s > 0.0 &&
      r.best_value < r.nostall_value + config_.rebuffer_margin) {
    d.level = r.nostall_level;
    d.scheduled_rebuffer_s = 0.0;
  } else {
    d.level = r.best_level;
    d.scheduled_rebuffer_s = r.best_rebuffer_s;
  }
  return d;
}

}  // namespace sensei::abr
