// Fugu-style model-predictive ABR (Yan et al., NSDI'20), re-implemented as
// described in the paper's §5.2: before downloading chunk i it considers a
// probabilistic throughput forecast, simulates the buffer over the next h
// chunks for every candidate bitrate sequence, and picks the sequence
// maximizing the expected sum of per-chunk quality q(b_j, t_j) (Eq. 3). Only
// the first decision is acted upon; the controller replans every chunk.
//
// The weighted variant (Eq. 4) and the scheduled-rebuffering action are
// added by SENSEI-Fugu in src/core; this class keeps the vanilla objective.
//
// The lookahead itself is delegated to abr::Planner (src/abr/planner.h):
// the memoized DpPlanner by default, or the reference ExhaustivePlanner
// behind `FuguConfig::planner` — both return identical decisions (see
// tests/test_planner_equivalence.cpp); the DP is simply much faster.
#pragma once

#include "abr/planner.h"
#include "net/predictor.h"
#include "qoe/chunk_quality.h"
#include "sim/player.h"

namespace sensei::abr {

struct FuguConfig {
  size_t horizon = 5;
  size_t predictor_window = 8;
  qoe::ChunkQualityParams chunk;
  // When true, the expected objective weights each chunk's quality by the
  // sensitivity weights offered in the observation (used by SENSEI-Fugu).
  bool use_weights = false;
  // Crowdsourced weights are noisy estimates; the objective uses
  // w' = 1 + shrinkage * (w - 1), shrinking toward indifference so the
  // controller does not over-commit to mis-profiled chunks.
  double weight_shrinkage = 0.8;
  // Scheduled rebuffering options evaluated for the *next* chunk (seconds).
  // Vanilla Fugu uses {0}; SENSEI-Fugu passes {0,1,2}.
  std::vector<double> rebuffer_options = {0.0};
  // A deliberate stall is taken only when its planned objective beats the
  // best stall-free plan by this margin. Throughput scenarios overstate
  // stall risk often enough that an un-gated rebuffer action loses QoE.
  double rebuffer_margin = 0.35;
  // Which lookahead engine realizes the objective. kDp (default) is the
  // memoized dynamic program; kExhaustive is the reference recursion; kVi
  // is the discretized value iteration — lossy but an order of magnitude
  // faster, the fleet-scale mode (see planner.h).
  PlannerKind planner = PlannerKind::kDp;
  // Buffer discretization in seconds, interpreted per planner. kDp: state
  // merging quantum — 0 (default) merges only bit-identical states,
  // guaranteeing decisions identical to the exhaustive planner; > 0 enables
  // Puffer-style lossy bucketing (unit_buf_length). kVi: the value-table
  // bucket width — <= 0 selects kDefaultViBufferQuantumS (0.25 s).
  double dp_buffer_quantum_s = 0.0;
};

class FuguAbr : public sim::AbrPolicy {
 public:
  explicit FuguAbr(FuguConfig config = FuguConfig());
  FuguAbr(const FuguAbr& other);
  FuguAbr& operator=(const FuguAbr& other);

  const char* name() const override { return config_.use_weights ? "Sensei-Fugu" : "Fugu"; }
  void begin_session(const media::EncodedVideo& video) override;
  sim::AbrDecision decide(const sim::AbrObservation& obs) override;
  // Forwarded to the planner. Deliberately NOT copied by the copy
  // operations above (they rebuild planner_ from config), so a policy
  // cloned out of a Simulator run never carries a dangling batch pointer.
  void attach_plan_batch(PlanBatch* batch) override { planner_->set_batch(batch); }

  const FuguConfig& config() const { return config_; }
  const Planner& planner() const { return *planner_; }

 private:
  FuguConfig config_;
  net::ScenarioPredictor predictor_;
  std::unique_ptr<Planner> planner_;
  // Scenario buffer refilled in place every decision (no per-decide heap
  // allocation once warm), plus the per-decision quantized-forecast table
  // (quantize_kbps over the scenario kbps) handed to the planner through
  // PlanQuery::quantized_kbps so ViPlanner skips the log2/exp2 re-derive.
  std::vector<net::ThroughputScenario> scenario_buf_;
  std::vector<double> kbps_buf_;
  std::vector<double> quantized_buf_;
};

}  // namespace sensei::abr
