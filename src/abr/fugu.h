// Fugu-style model-predictive ABR (Yan et al., NSDI'20), re-implemented as
// described in the paper's §5.2: before downloading chunk i it considers a
// probabilistic throughput forecast, simulates the buffer over the next h
// chunks for every candidate bitrate sequence, and picks the sequence
// maximizing the expected sum of per-chunk quality q(b_j, t_j) (Eq. 3). Only
// the first decision is acted upon; the controller replans every chunk.
//
// The weighted variant (Eq. 4) and the scheduled-rebuffering action are
// added by SENSEI-Fugu in src/core; this class keeps the vanilla objective.
#pragma once

#include "net/predictor.h"
#include "qoe/chunk_quality.h"
#include "sim/player.h"

namespace sensei::abr {

struct FuguConfig {
  size_t horizon = 5;
  size_t predictor_window = 8;
  qoe::ChunkQualityParams chunk;
  // When true, the expected objective weights each chunk's quality by the
  // sensitivity weights offered in the observation (used by SENSEI-Fugu).
  bool use_weights = false;
  // Crowdsourced weights are noisy estimates; the objective uses
  // w' = 1 + shrinkage * (w - 1), shrinking toward indifference so the
  // controller does not over-commit to mis-profiled chunks.
  double weight_shrinkage = 0.8;
  // Scheduled rebuffering options evaluated for the *next* chunk (seconds).
  // Vanilla Fugu uses {0}; SENSEI-Fugu passes {0,1,2}.
  std::vector<double> rebuffer_options = {0.0};
  // A deliberate stall is taken only when its planned objective beats the
  // best stall-free plan by this margin. Throughput scenarios overstate
  // stall risk often enough that an un-gated rebuffer action loses QoE.
  double rebuffer_margin = 0.35;
};

class FuguAbr : public sim::AbrPolicy {
 public:
  explicit FuguAbr(FuguConfig config = FuguConfig());

  const char* name() const override { return config_.use_weights ? "Sensei-Fugu" : "Fugu"; }
  void begin_session(const media::EncodedVideo& video) override;
  sim::AbrDecision decide(const sim::AbrObservation& obs) override;

  const FuguConfig& config() const { return config_; }

 private:
  struct PlanState {
    double buffer_s = 0.0;
    double prev_vq = 0.0;
  };

  // Expected objective of choosing `level` (+ scheduled stall on the first
  // step) then continuing greedily-optimal via recursion.
  double plan(const sim::AbrObservation& obs,
              const std::vector<net::ThroughputScenario>& scenarios, size_t depth,
              size_t chunk, std::vector<PlanState>& states, double prev_weighted_sum);

  FuguConfig config_;
  net::ScenarioPredictor predictor_;
  // Best first action found by the last plan() walk, tracked separately for
  // stall-free plans so the rebuffer margin can be applied.
  size_t best_first_level_ = 0;
  double best_first_rebuffer_ = 0.0;
  double best_value_ = 0.0;
  size_t best_nostall_level_ = 0;
  double best_nostall_value_ = 0.0;
  size_t plan_first_level_ = 0;
  double plan_first_rebuffer_ = 0.0;
};

}  // namespace sensei::abr
