// Config-driven ABR policy construction: one registry mapping a policy name
// plus typed key/value options to a factory, in the shape of Puffer's
// `ABRAlgo(name, config)` constructors — so benches, the fleet simulator,
// and scenario grids are driven by spec *strings* instead of recompiled
// factory lambdas.
//
// Spec grammar (one line):
//   spec  := name [":" pair ("," pair)*]
//   pair  := key "=" value
//   name  := [a-z0-9_-]+        key := [a-z0-9_]+       value := [^,]+
//
//   "bba"                        "fugu:planner=vi"
//   "fugu:planner=dp,horizon=5"  "whittle:safety=0.85"
//
// Parsing is strict: an empty name/key/value, a missing '=', a stray
// separator, or a duplicate key fails with the offending position in the
// message; an unknown name, unknown key, or malformed/out-of-vocabulary
// value fails naming the policy, the key, and the accepted alternatives.
//
// Canonicalization. `canonicalize()` validates a spec against the
// registered key table and returns the *canonical* form: every key present
// (defaults made explicit), keys sorted, numeric values reformatted to a
// fixed round-trip-exact text. Canonical specs are therefore equality
// comparable — two specs denote the same policy configuration iff their
// canonical strings match — which is what the fleet keys its policy pools
// on and what makes `parse(to_string(s))` a fixed point.
//
// Bit-identity. A registry factory assigns exactly the fields a direct
// config-struct construction assigns, and canonical value texts parse back
// to the exact default doubles, so a registry-built policy is bit-identical
// in behavior to a directly constructed one (gated across every registered
// name by tests/test_registry.cpp on seeded session grids).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/player.h"

namespace sensei::abr {

// A parsed policy spec: a registered name plus key/value options. `kv`
// order is the textual order after parse() and sorted-key order after
// PolicyRegistry::canonicalize().
struct PolicySpec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> kv;

  // Strict parse of the grammar above; throws std::runtime_error with the
  // character position of the first offense. Purely syntactic — name/key/
  // value vocabulary is checked by PolicyRegistry::canonicalize().
  static PolicySpec parse(const std::string& text);

  // The textual form, in the current kv order ("name" or "name:k=v,...").
  std::string to_string() const;

  // Value of `key`, or nullptr when absent.
  const std::string* find(const std::string& key) const;

  bool operator==(const PolicySpec& other) const {
    return name == other.name && kv == other.kv;
  }
};

class PolicyRegistry {
 public:
  enum class KeyType {
    kDouble,  // strtod, full consumption, finite
    kSize,    // non-negative integer
    kEnum,    // one of KeyInfo::enum_values
  };

  struct KeyInfo {
    std::string key;
    KeyType type = KeyType::kDouble;
    std::string default_value;               // canonical text of the default
    std::vector<std::string> enum_values;    // kEnum only
  };

  // Receives the *canonical* spec (every key present and validated).
  using Factory = std::function<std::unique_ptr<sim::AbrPolicy>(const PolicySpec&)>;

  // The process-wide registry, with every shipped policy registered.
  static PolicyRegistry& instance();

  // Registers (or replaces) a policy. Key defaults must themselves pass the
  // key's type check; throws otherwise.
  void register_policy(const std::string& name, std::vector<KeyInfo> keys, Factory factory);

  bool has(const std::string& name) const;
  std::vector<std::string> names() const;
  const std::vector<KeyInfo>& keys(const std::string& name) const;

  // Validates `spec` and returns the canonical form: defaults made
  // explicit, keys sorted, values reformatted. Throws on unknown name,
  // unknown key, or malformed value.
  PolicySpec canonicalize(const PolicySpec& spec) const;
  // parse + canonicalize + to_string: the pooling/dedup key for a spec text.
  std::string canonical_string(const std::string& spec_text) const;

  // Builds the policy a (canonicalized) spec denotes.
  std::unique_ptr<sim::AbrPolicy> make(const PolicySpec& spec) const;
  std::unique_ptr<sim::AbrPolicy> make(const std::string& spec_text) const;

 private:
  PolicyRegistry();  // registers the built-in policies

  struct Entry {
    std::vector<KeyInfo> keys;  // sorted by key
    Factory factory;
  };
  std::map<std::string, Entry> entries_;
};

// Shorthand for PolicyRegistry::instance().make(spec_text).
std::unique_ptr<sim::AbrPolicy> make_policy(const std::string& spec_text);

// Canonical text of a double for spec values: the shortest printf form that
// strtod's back to the exact same bits ("%g", widening to "%.17g" when %g
// loses precision). Used by canonicalize() and by callers that assemble
// specs from config structs (core::Sensei's factory wrappers).
std::string format_spec_double(double value);

}  // namespace sensei::abr
