// Offline-optimal bitrate planning with full trace knowledge (§2.4's
// idealized experiment, Figure 6).
//
// Dynamic program over (chunk index, quantized wall-clock time, quantized
// buffer, last level). The objective is the (optionally sensitivity-
// weighted) sum of per-chunk qualities; the sensitivity-aware variant may
// also insert scheduled rebuffering at chunk boundaries. This eliminates the
// throughput-prediction confound exactly as the paper's clean experiment
// does: both variants see the whole trace in advance and differ only in the
// QoE objective they maximize.
#pragma once

#include <cstdint>
#include <vector>

#include "net/trace.h"
#include "qoe/chunk_quality.h"
#include "sim/session.h"

namespace sensei::abr {

struct OfflineConfig {
  double time_quantum_s = 2.0;
  double buffer_quantum_s = 2.0;
  double max_buffer_s = 30.0;
  double horizon_slack_s = 400.0;  // extra wall-clock room beyond video length
  qoe::ChunkQualityParams chunk;
  // Scheduled stalls available at each chunk boundary (aware variant passes
  // {0,1,2}; the unaware variant uses {0}).
  std::vector<double> rebuffer_options = {0.0};
};

// Reusable workspace for plan_offline. The memo tables span
// chunks x time-buckets x buffer-buckets x levels (tens of MB for long
// videos); batch callers that plan many sessions — Figure 6 / 18 style
// sweeps — pass one scratch across calls so each session reuses the
// high-water allocation instead of reallocating and faulting fresh pages.
struct OfflineScratch {
  std::vector<float> value;
  std::vector<uint8_t> visited;
  std::vector<uint16_t> best_action;
  std::vector<float> dl_cache;
  std::vector<uint8_t> dl_cached;
};

// Plans bitrates (and stalls) for `video` over `trace` maximizing
// sum_i w_i q_i. Pass all-ones weights for the sensitivity-unaware variant.
// Returns the resulting session as if it were streamed.
sim::SessionResult plan_offline(const media::EncodedVideo& video,
                                const net::ThroughputTrace& trace,
                                const std::vector<double>& weights,
                                const OfflineConfig& config = OfflineConfig());

// Scratch-reusing overload for batch planners.
sim::SessionResult plan_offline(const media::EncodedVideo& video,
                                const net::ThroughputTrace& trace,
                                const std::vector<double>& weights,
                                const OfflineConfig& config, OfflineScratch& scratch);

}  // namespace sensei::abr
