// Buffer-Based Adaptation (BBA, Huang et al., SIGCOMM'14).
//
// Maps the current buffer occupancy linearly onto the bitrate ladder between
// a reservoir (below which it plays the lowest rung) and a cushion (above
// which it plays the highest). No throughput model, no QoE objective — the
// paper's weakest baseline.
#pragma once

#include "sim/player.h"

namespace sensei::abr {

struct BbaConfig {
  double reservoir_s = 5.0;
  double cushion_s = 20.0;  // upper edge of the linear map
};

class BbaAbr : public sim::AbrPolicy {
 public:
  explicit BbaAbr(BbaConfig config = BbaConfig());

  const char* name() const override { return "BBA"; }
  sim::AbrDecision decide(const sim::AbrObservation& obs) override;

 private:
  BbaConfig config_;
};

}  // namespace sensei::abr
