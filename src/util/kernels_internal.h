// Internal dispatch table for util/kernels: one function pointer per
// vectorized row kernel. The scalar reference lives in kernels.cpp; the
// SSE2 and AVX2 tables live in their own translation units (the AVX2 one
// is compiled with -mavx2, so nothing outside it may inline its code) and
// are surfaced through the two factory functions below, which return
// nullptr when the backend is not compiled for this target.
#pragma once

#include <cstddef>

namespace sensei::util::detail {

struct KernelOps {
  void (*div_add_row)(double num, const double* den, size_t n, double den_floor,
                      double add, double* out);
  void (*mul_div_row)(const double* x, size_t n, double scale, double den, double* out);
  void (*div_scalar_row)(const double* x, size_t n, double den, double* out);
  void (*step_buffer_stall_row)(double buffer_s, const double* dl, size_t n,
                                double extra_s, double tau_s, double cap_s,
                                double* buf_out, double* stall_out);
  void (*chunk_quality_stall_row)(double vq, double prev_vq, double nostall_q,
                                  const double* stall, size_t n, double br, double sat,
                                  double bsw, double floor, double* out);
  void (*chunk_quality_row)(const double* vq, const double* stall, const double* prev_vq,
                            size_t n, double br, double sat, double bsw, double floor,
                            double* out);
  void (*chunk_quality_nostall_row)(const double* vq, size_t n, double prev_vq,
                                    double bsw, double floor, double* out);
  void (*chunk_quality_nostall_prev_row)(double vq, const double* prev_vq, size_t n,
                                         double bsw, double floor, double* out);
  void (*whittle_index_row)(const double* size_bytes, const double* vq,
                            const double* prev_vq, size_t n, double den, double buffer_s,
                            double headroom, double drain, double br, double sat,
                            double bsw, double* out);
  void (*triangular_fan)(size_t count, double center, double cv, double floor_kbps,
                         double* kbps, double* prob);
};

const KernelOps* sse2_ops();
const KernelOps* avx2_ops();

}  // namespace sensei::util::detail
