#include "util/matrix.h"

#include <cmath>
#include <stdexcept>

namespace sensei::util {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  if (cols_ != other.rows_) throw std::runtime_error("matrix dims mismatch");
  Matrix out(rows_, other.cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = at(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) out.at(r, c) += a * other.at(k, c);
    }
  }
  return out;
}

std::vector<double> Matrix::multiply(const std::vector<double>& v) const {
  if (cols_ != v.size()) throw std::runtime_error("matrix-vector dims mismatch");
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += at(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

std::vector<double> Matrix::solve(Matrix a, std::vector<double> b) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) throw std::runtime_error("solve: dims mismatch");
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) pivot = r;
    }
    if (std::abs(a.at(pivot, col)) < 1e-12) throw std::runtime_error("solve: singular matrix");
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a.at(pivot, c), a.at(col, c));
      std::swap(b[pivot], b[col]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      double f = a.at(r, col) / a.at(col, col);
      if (f == 0.0) continue;
      for (size_t c = col; c < n; ++c) a.at(r, c) -= f * a.at(col, c);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (size_t c = i + 1; c < n; ++c) acc -= a.at(i, c) * x[c];
    x[i] = acc / a.at(i, i);
  }
  return x;
}

}  // namespace sensei::util
