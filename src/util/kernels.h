// Runtime-dispatched SIMD kernel layer for the hot inner rows.
//
// The planners, the Whittle index, the scenario generators, and the fleet
// aggregate fold all spend their time in the same half-dozen elementwise
// rows: download times (a divide per scenario), post-step buffer/stall
// dynamics (two selects and a clamp), the saturating chunk-quality
// expression, and the per-rung index map. This header exposes each of
// those rows as a batched kernel with a scalar reference implementation
// and SSE2/AVX2 variants selected at runtime (`__builtin_cpu_supports`),
// behind the SENSEI_ENABLE_SIMD build option.
//
// Bit-identity discipline
// -----------------------
// Every backend must produce bit-identical output for identical input —
// the repo's determinism gates (fig14 grid, fleet rows, the pinned PR 8
// resilience literals) all double as correctness gates for this layer, and
// tests/test_kernels.cpp pins randomized scalar-vs-SIMD equivalence
// including NaN / signed-zero / denormal edges. The rules that make this
// hold:
//
//  * Only *elementwise* maps are vectorized. Lane i of the SIMD path
//    evaluates exactly the scalar expression for element i: IEEE-exact
//    add/sub/mul/div, |x| as a sign-bit mask (bitwise std::abs), and
//    std::min/std::max emulated with an explicit compare+select that
//    reproduces their exact NaN and +/-0 semantics ((a < b) ? b : a —
//    never the asymmetric minpd/maxpd instruction forms).
//  * No FP contraction: multiply-then-add sequences stay two rounded
//    operations in every backend (explicit mul/add intrinsics, never FMA).
//  * Order-sensitive reductions (sequential sums, first-strict-max argmax)
//    and transcendental maps (the log2/exp2 kbps quantizer, llround bucket
//    maps) intentionally share ONE implementation across backends: a
//    lane-parallel reduction tree or a polynomial log2 could not match the
//    scalar fold bit-for-bit, so these primitives gain their speed from
//    batching (one call per row instead of one call per element), not from
//    lanes.
//
// Small rows bypass dispatch entirely: below kInlineRowCutoff the public
// wrappers run the inline reference loop in place. A 3-scenario planner row
// costs less than the indirect call that would fetch it, and the vector
// kernels fall through to their scalar tails at those lengths anyway, so
// the fast path changes no bits — the reference implementations below ARE
// the scalar backend (the dispatch table points at them).
//
// Backend selection: `auto` (default) resolves to AVX2 when compiled in
// and supported by the CPU, else SSE2 on x86-64, else scalar; `scalar`
// forces the reference path (what a SENSEI_ENABLE_SIMD=OFF build always
// runs); `simd` forces the best vector path and falls back to scalar when
// none exists. set_kernel_backend is meant for test/bench setup, not for
// concurrent use while kernels are executing.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace sensei::util {

enum class KernelBackend {
  kScalar,
  kSimd,
  kAuto,
};

// Selects the backend. The string form accepts "scalar" | "simd" | "auto"
// (returns false and leaves the selection unchanged on anything else).
void set_kernel_backend(KernelBackend backend);
bool set_kernel_backend(const char* name);

// The requested selection (default kAuto).
KernelBackend requested_kernel_backend();

// The *resolved* backend the vectorized kernels currently run on:
// "scalar", "sse2", or "avx2".
const char* kernel_backend_name();

// True when the build compiled the SIMD translation units
// (SENSEI_ENABLE_SIMD, x86-64 target).
bool kernel_simd_compiled();

// True when the running CPU supports the best compiled vector path.
bool kernel_simd_supported();

namespace kernels {

// Rows shorter than this run the inline reference loop instead of the
// dispatched kernel: one AVX2 vector width of work does not amortize an
// atomic load plus an indirect call, and the vector kernels would execute
// their scalar tails there anyway, so the bits are identical either way.
inline constexpr size_t kInlineRowCutoff = 8;

// ---------------------------------------------------------------------------
// Reference implementations. These are the semantics: every SIMD lane must
// reproduce these expressions bit-for-bit (see kernels_simd.inc). Ternary
// min/max spells out the exact std::min/std::max operand order so the
// select-based vector forms have an unambiguous contract to match. The
// dispatch table's scalar backend points at these same functions.
// ---------------------------------------------------------------------------
namespace ref {

// out[i] = num / max(den_floor, den[i]) + add
inline void div_add_row(double num, const double* den, size_t n, double den_floor,
                        double add, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const double d = den_floor < den[i] ? den[i] : den_floor;  // max(den_floor, den)
    out[i] = num / d + add;
  }
}

// out[i] = (x[i] * scale) / den
inline void mul_div_row(const double* x, size_t n, double scale, double den, double* out) {
  for (size_t i = 0; i < n; ++i) out[i] = (x[i] * scale) / den;
}

// out[i] = x[i] / den
inline void div_scalar_row(const double* x, size_t n, double den, double* out) {
  for (size_t i = 0; i < n; ++i) out[i] = x[i] / den;
}

inline void step_buffer_stall_row(double buffer_s, const double* dl, size_t n,
                                  double extra_s, double tau_s, double cap_s,
                                  double* buf_out, double* stall_out) {
  for (size_t i = 0; i < n; ++i) {
    const double d = dl[i];
    const bool over = d > buffer_s;
    const double stall = (over ? d - buffer_s : 0.0) + extra_s;
    double b = (over ? 0.0 : buffer_s - d) + extra_s;
    b += tau_s;
    buf_out[i] = cap_s < b ? cap_s : b;  // min(b, cap)
    stall_out[i] = stall;
  }
}

inline void chunk_quality_stall_row(double vq, double prev_vq, double nostall_q,
                                    const double* stall, size_t n, double br, double sat,
                                    double bsw, double floor, double* out) {
  const double kq = bsw * std::fabs(vq - prev_vq);
  for (size_t i = 0; i < n; ++i) {
    const double s = stall[i];
    const double pen = s / (1.0 + sat * s);
    double q = vq - br * pen - kq;
    q = floor < q ? q : floor;  // max(floor, q)
    out[i] = s > 0.0 ? q : nostall_q;
  }
}

inline void chunk_quality_row(const double* vq, const double* stall,
                              const double* prev_vq, size_t n, double br, double sat,
                              double bsw, double floor, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const double s = stall[i];
    const double pen = s <= 0.0 ? 0.0 : s / (1.0 + sat * s);
    const double q = vq[i] - br * pen - bsw * std::fabs(vq[i] - prev_vq[i]);
    out[i] = floor < q ? q : floor;
  }
}

inline void chunk_quality_nostall_row(const double* vq, size_t n, double prev_vq,
                                      double bsw, double floor, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const double q = vq[i] - bsw * std::fabs(vq[i] - prev_vq);
    out[i] = floor < q ? q : floor;
  }
}

inline void chunk_quality_nostall_prev_row(double vq, const double* prev_vq, size_t n,
                                           double bsw, double floor, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const double q = vq - bsw * std::fabs(vq - prev_vq[i]);
    out[i] = floor < q ? q : floor;
  }
}

inline void whittle_index_row(const double* size_bytes, const double* vq,
                              const double* prev_vq, size_t n, double den,
                              double buffer_s, double headroom, double drain, double br,
                              double sat, double bsw, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const double dl = (size_bytes[i] * 8.0) / den;
    const double ad = std::fabs(vq[i] - prev_vq[i]);
    const double unc_raw = dl - buffer_s;
    const double unc = 0.0 < unc_raw ? unc_raw : 0.0;  // max(0, .)
    const double pen = unc <= 0.0 ? 0.0 : unc / (1.0 + sat * unc);
    const double short_raw = headroom * dl - (buffer_s - dl);
    const double shortfall = 0.0 < short_raw ? short_raw : 0.0;
    out[i] = vq[i] - bsw * ad - br * pen - drain * shortfall;
  }
}

inline void triangular_fan(size_t count, double center, double cv, double floor_kbps,
                           double* kbps, double* prob) {
  const double span = count > 1 ? static_cast<double>(count - 1) : 1.0;
  for (size_t i = 0; i < count; ++i) {
    const double pos = count == 1 ? 0.0 : -1.0 + 2.0 * static_cast<double>(i) / span;
    const double p = 1.0 + (1.0 - std::fabs(pos));
    const double k = center * (1.0 + cv * pos);
    kbps[i] = floor_kbps < k ? k : floor_kbps;  // max(floor_kbps, k)
    prob[i] = p;
  }
}

}  // namespace ref

// Out-of-line dispatched forms (kernels.cpp): resolve the active backend
// table and forward. The public wrappers below call these only for rows at
// or above kInlineRowCutoff.
namespace dispatch {
void div_add_row(double num, const double* den, size_t n, double den_floor, double add,
                 double* out);
void mul_div_row(const double* x, size_t n, double scale, double den, double* out);
void div_scalar_row(const double* x, size_t n, double den, double* out);
void step_buffer_stall_row(double buffer_s, const double* dl, size_t n, double extra_s,
                           double tau_s, double cap_s, double* buf_out, double* stall_out);
void chunk_quality_stall_row(double vq, double prev_vq, double nostall_q,
                             const double* stall, size_t n, double br, double sat,
                             double bsw, double floor, double* out);
void chunk_quality_row(const double* vq, const double* stall, const double* prev_vq,
                       size_t n, double br, double sat, double bsw, double floor,
                       double* out);
void chunk_quality_nostall_row(const double* vq, size_t n, double prev_vq, double bsw,
                               double floor, double* out);
void chunk_quality_nostall_prev_row(double vq, const double* prev_vq, size_t n,
                                    double bsw, double floor, double* out);
void whittle_index_row(const double* size_bytes, const double* vq, const double* prev_vq,
                       size_t n, double den, double buffer_s, double headroom,
                       double drain, double br, double sat, double bsw, double* out);
void triangular_fan(size_t count, double center, double cv, double floor_kbps,
                    double* kbps, double* prob);
}  // namespace dispatch

// --- vectorized elementwise rows (scalar / sse2 / avx2 dispatch) --------

// out[i] = num / max(den_floor, den[i]) + add
// The planner download-time row: bits_kb / clamped-kbps + RTT.
inline void div_add_row(double num, const double* den, size_t n, double den_floor,
                        double add, double* out) {
  if (n < kInlineRowCutoff) return ref::div_add_row(num, den, n, den_floor, add, out);
  dispatch::div_add_row(num, den, n, den_floor, add, out);
}

// out[i] = (x[i] * scale) / den
// The Whittle download-time row: (size_bytes * 8) / (budget_kbps * 1000).
inline void mul_div_row(const double* x, size_t n, double scale, double den, double* out) {
  if (n < kInlineRowCutoff) return ref::mul_div_row(x, n, scale, den, out);
  dispatch::mul_div_row(x, n, scale, den, out);
}

// out[i] = x[i] / den  (probability normalization)
inline void div_scalar_row(const double* x, size_t n, double den, double* out) {
  if (n < kInlineRowCutoff) return ref::div_scalar_row(x, n, den, out);
  dispatch::div_scalar_row(x, n, den, out);
}

// Post-step buffer dynamics across scenarios, branchless:
//   over      = dl[i] > buffer_s
//   stall     = (over ? dl[i] - buffer_s : 0) + extra_s
//   b         = (over ? 0 : buffer_s - dl[i]) + extra_s
//   buf_out   = min(b + tau_s, cap_s)
//   stall_out = stall
// `extra_s` folds the planners' scheduled-rebuffer branch: callers pass the
// scheduled stall when it is > 0, else 0.0 (adding 0.0 is exact here —
// both addends are guaranteed non-negative).
inline void step_buffer_stall_row(double buffer_s, const double* dl, size_t n,
                                  double extra_s, double tau_s, double cap_s,
                                  double* buf_out, double* stall_out) {
  if (n < kInlineRowCutoff) {
    return ref::step_buffer_stall_row(buffer_s, dl, n, extra_s, tau_s, cap_s, buf_out,
                                      stall_out);
  }
  dispatch::step_buffer_stall_row(buffer_s, dl, n, extra_s, tau_s, cap_s, buf_out,
                                  stall_out);
}

// The planner's per-scenario chunk-quality select:
//   out[i] = stall[i] > 0
//              ? max(floor, vq - br * (stall[i] / (1 + sat * stall[i]))
//                            - bsw * |vq - prev_vq|)
//              : nostall_q
// (the `stall > 0 ? chunk_quality(...) : qn` fold of ViPlanner/DpPlanner).
inline void chunk_quality_stall_row(double vq, double prev_vq, double nostall_q,
                                    const double* stall, size_t n, double br, double sat,
                                    double bsw, double floor, double* out) {
  if (n < kInlineRowCutoff) {
    return ref::chunk_quality_stall_row(vq, prev_vq, nostall_q, stall, n, br, sat, bsw,
                                        floor, out);
  }
  dispatch::chunk_quality_stall_row(vq, prev_vq, nostall_q, stall, n, br, sat, bsw,
                                    floor, out);
}

// General elementwise qoe::chunk_quality over parallel arrays:
//   pen    = stall[i] <= 0 ? 0 : stall[i] / (1 + sat * stall[i])
//   out[i] = max(floor, vq[i] - br * pen - bsw * |vq[i] - prev_vq[i]|)
// The fleet retire() per-record fold uses this with prev_vq = vq shifted
// by one record.
inline void chunk_quality_row(const double* vq, const double* stall,
                              const double* prev_vq, size_t n, double br, double sat,
                              double bsw, double floor, double* out) {
  if (n < kInlineRowCutoff) {
    return ref::chunk_quality_row(vq, stall, prev_vq, n, br, sat, bsw, floor, out);
  }
  dispatch::chunk_quality_row(vq, stall, prev_vq, n, br, sat, bsw, floor, out);
}

// No-stall chunk quality, visual quality varying (root_qn_ rows):
//   out[i] = max(floor, vq[i] - bsw * |vq[i] - prev_vq|)
inline void chunk_quality_nostall_row(const double* vq, size_t n, double prev_vq,
                                      double bsw, double floor, double* out) {
  if (n < kInlineRowCutoff) {
    return ref::chunk_quality_nostall_row(vq, n, prev_vq, bsw, floor, out);
  }
  dispatch::chunk_quality_nostall_row(vq, n, prev_vq, bsw, floor, out);
}

// No-stall chunk quality, previous level varying (the PlanBatch qn table's
// contiguous axis): out[i] = max(floor, vq - bsw * |vq - prev_vq[i]|)
inline void chunk_quality_nostall_prev_row(double vq, const double* prev_vq, size_t n,
                                           double bsw, double floor, double* out) {
  if (n < kInlineRowCutoff) {
    return ref::chunk_quality_nostall_prev_row(vq, prev_vq, n, bsw, floor, out);
  }
  dispatch::chunk_quality_nostall_prev_row(vq, prev_vq, n, bsw, floor, out);
}

// The DAS-IP Whittle index of every rung in one call (abr/whittle.h):
//   dl     = (size_bytes[i] * 8) / den        (den = budget_kbps * 1000)
//   unc    = max(0, dl - buffer_s)
//   pen    = unc <= 0 ? 0 : unc / (1 + sat * unc)
//   short  = max(0, headroom * dl - (buffer_s - dl))
//   out[i] = vq[i] - bsw * |vq[i] - prev_vq[i]| - br * pen - drain * short
inline void whittle_index_row(const double* size_bytes, const double* vq,
                              const double* prev_vq, size_t n, double den,
                              double buffer_s, double headroom, double drain, double br,
                              double sat, double bsw, double* out) {
  if (n < kInlineRowCutoff) {
    return ref::whittle_index_row(size_bytes, vq, prev_vq, n, den, buffer_s, headroom,
                                  drain, br, sat, bsw, out);
  }
  dispatch::whittle_index_row(size_bytes, vq, prev_vq, n, den, buffer_s, headroom, drain,
                              br, sat, bsw, out);
}

// The triangular scenario fan (net::triangular_scenarios), probabilities
// unnormalized (callers fold with sum_row + div_scalar_row):
//   pos     = count == 1 ? 0 : -1 + 2 * i / (count - 1)
//   prob[i] = 1 + (1 - |pos|)
//   kbps[i] = max(floor_kbps, center * (1 + cv * pos))
inline void triangular_fan(size_t count, double center, double cv, double floor_kbps,
                           double* kbps, double* prob) {
  if (count < kInlineRowCutoff) {
    return ref::triangular_fan(count, center, cv, floor_kbps, kbps, prob);
  }
  dispatch::triangular_fan(count, center, cv, floor_kbps, kbps, prob);
}

// --- order-pinned / transcendental primitives (one shared path) ---------
// A lane-parallel fold or polynomial transcendental could not match the
// sequential scalar result bit-for-bit, so these gain speed from batching
// (one call per row), never from lanes — inline, no dispatch at all.

// Sequential left-to-right sum (the aggregate folds' pinned order).
inline double sum_row(const double* x, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += x[i];
  return acc;
}

// Sequential left-to-right multiply-add reduction: sum_i w[i] * x[i],
// two rounded ops per element (never fused) — the probability-weighted
// value folds over level tables.
inline double weighted_sum_row(const double* w, const double* x, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += w[i] * x[i];
  return acc;
}

// First index attaining the strict maximum (ties keep the lowest index,
// NaNs never win) — the planners' and the Whittle policy's argmax
// semantics, evaluated branchlessly.
inline size_t argmax_strict_row(const double* x, size_t n) {
  if (n == 0) return 0;
  size_t best = 0;
  double best_v = x[0];
  for (size_t i = 1; i < n; ++i) {
    const bool gt = x[i] > best_v;
    best_v = gt ? x[i] : best_v;
    best = gt ? i : best;
  }
  return best;
}

// Relative log2-binned kbps quantizer (abr::quantize_kbps batched):
//   out[i] = exp2(llround(log2(max(1, kbps[i])) * bins_per_octave)
//                 / bins_per_octave)
inline void quantize_kbps_row(const double* kbps, size_t n, double bins_per_octave,
                              double* out) {
  for (size_t i = 0; i < n; ++i) {
    const double k = 1.0 < kbps[i] ? kbps[i] : 1.0;  // max(1, kbps)
    out[i] = std::exp2(
        static_cast<double>(std::llround(std::log2(k) * bins_per_octave)) /
        bins_per_octave);
  }
}

// Buffer bucket map (abr::buffer_bucket batched): llround(buf / quantum),
// everything at or below zero (and NaN) to bucket 0.
inline void buffer_bucket_row(const double* buffer_s, size_t n, double quantum_s,
                              uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = !(buffer_s[i] > 0.0)
                 ? 0
                 : static_cast<uint64_t>(std::llround(buffer_s[i] / quantum_s));
  }
}

}  // namespace kernels
}  // namespace sensei::util
