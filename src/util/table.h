// Plain-text table and CSV emitters used by the bench binaries to print the
// rows/series the paper's tables and figures report.
#pragma once

#include <string>
#include <vector>

namespace sensei::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Convenience: formats doubles with the given precision.
  void add_row(const std::vector<double>& cells, int precision = 3);

  size_t row_count() const { return rows_.size(); }

  // Renders an aligned ASCII table.
  std::string to_string() const;
  // Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  static std::string format_double(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a one-line section banner, used to delimit figure panels in bench
// stdout (e.g. "== Figure 12a: CDF of QoE gains over BBA ==").
std::string banner(const std::string& title);

}  // namespace sensei::util
