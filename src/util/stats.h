// Descriptive statistics and correlation/rank metrics used throughout the
// evaluation harness: PLCC (Pearson), SRCC (Spearman), discordant-pair
// fraction, percentiles and empirical CDFs.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace sensei::util {

double mean(const std::vector<double>& v);
double variance(const std::vector<double>& v);  // population variance
double stddev(const std::vector<double>& v);
double min_of(const std::vector<double>& v);
double max_of(const std::vector<double>& v);
double sum(const std::vector<double>& v);

// Linear-interpolated percentile, p in [0,100]. Empty input -> 0.
double percentile(std::vector<double> v, double p);
double median(std::vector<double> v);

// Pearson linear correlation coefficient. Returns 0 when either input is
// degenerate (zero variance) or sizes mismatch.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

// Spearman rank correlation: Pearson over fractional (tie-averaged) ranks.
double spearman(const std::vector<double>& x, const std::vector<double>& y);

// Fractional ranks (1-based, ties share the average rank).
std::vector<double> ranks(const std::vector<double>& v);

// Fraction of pairs (i, j) whose order differs between x and y.
// Ties in either vector are skipped (neither concordant nor discordant).
double discordant_fraction(const std::vector<double>& x, const std::vector<double>& y);

// Mean of |pred - truth| / |truth| over entries with |truth| > eps.
double mean_relative_error(const std::vector<double>& pred, const std::vector<double>& truth);

// Root-mean-square error.
double rmse(const std::vector<double>& pred, const std::vector<double>& truth);

// Empirical CDF evaluated at the sorted sample points.
// Returns (value, cumulative fraction) pairs suitable for plotting.
std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> v);

// Min-max normalization into [0,1]; constant input maps to all 0.5.
std::vector<double> normalize01(const std::vector<double>& v);

// Clamps x into [lo, hi].
double clamp(double x, double lo, double hi);

// Simple online accumulator for mean/variance (Welford).
class Accumulator {
 public:
  void add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population
  double stddev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace sensei::util
