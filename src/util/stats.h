// Descriptive statistics and correlation/rank metrics used throughout the
// evaluation harness: PLCC (Pearson), SRCC (Spearman), discordant-pair
// fraction, percentiles and empirical CDFs.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace sensei::util {

double mean(const std::vector<double>& v);
double variance(const std::vector<double>& v);  // population variance
double stddev(const std::vector<double>& v);
double min_of(const std::vector<double>& v);
double max_of(const std::vector<double>& v);
double sum(const std::vector<double>& v);

// Linear-interpolated percentile, p in [0,100]. Empty input -> 0.
double percentile(std::vector<double> v, double p);
double median(std::vector<double> v);

// Pearson linear correlation coefficient. Returns 0 when either input is
// degenerate (zero variance) or sizes mismatch.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

// Spearman rank correlation: Pearson over fractional (tie-averaged) ranks.
double spearman(const std::vector<double>& x, const std::vector<double>& y);

// Fractional ranks (1-based, ties share the average rank).
std::vector<double> ranks(const std::vector<double>& v);

// Fraction of pairs (i, j) whose order differs between x and y.
// Ties in either vector are skipped (neither concordant nor discordant).
double discordant_fraction(const std::vector<double>& x, const std::vector<double>& y);

// Mean of |pred - truth| / |truth| over entries with |truth| > eps.
double mean_relative_error(const std::vector<double>& pred, const std::vector<double>& truth);

// Root-mean-square error.
double rmse(const std::vector<double>& pred, const std::vector<double>& truth);

// Empirical CDF evaluated at the sorted sample points.
// Returns (value, cumulative fraction) pairs suitable for plotting.
std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> v);

// Min-max normalization into [0,1]; constant input maps to all 0.5.
std::vector<double> normalize01(const std::vector<double>& v);

// Clamps x into [lo, hi].
double clamp(double x, double lo, double hi);

// Simple online accumulator for mean/variance (Welford).
class Accumulator {
 public:
  void add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population
  double stddev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Mergeable Welford accumulator with exact min/max: the streaming-aggregation
// primitive of the fleet simulator. add() performs the identical update
// sequence to Accumulator (same expressions, same order — bit-identical
// running state); merge() is Chan et al.'s pairwise combination. Merging is
// deterministic for a fixed merge order, which is how the fleet keeps its
// aggregates bit-identical across thread and shard counts: per-cell
// accumulators are filled single-threaded and folded serially in cell order.
class MergeableAccumulator {
 public:
  void add(double x);
  void merge(const MergeableAccumulator& other);
  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Bounded-memory mergeable quantile sketch (centroid digest).
//
// A fixed-capacity array of (value, weight) centroids; when it fills, a
// deterministic compression sorts the centroids and coalesces them into
// kCompressed equal-weight buckets (weighted-mean value per bucket). Exact
// min/max are tracked on the side, so the tail queries quantile(0)/(1) are
// exact. quantile(q) interpolates linearly between centroid midpoints —
// rank error is bounded by the largest bucket weight, ~2/kCompressed of the
// population (tests pin <= 2/kCompressed against exact percentiles).
//
// All storage is reserved at construction: add() and merge() never allocate
// (the fleet hot-path discipline; quantile(), a report-time call, sorts a
// local copy and may). Deterministic: compression decisions depend only on
// the values seen, so a fixed add/merge order yields a bit-identical sketch
// regardless of thread or shard count.
class QuantileSketch {
 public:
  QuantileSketch();
  void add(double x);
  void merge(const QuantileSketch& other);
  size_t count() const { return n_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  // q in [0, 1]; q <= 0 and q >= 1 return the exact extremes. Empty -> 0.
  double quantile(double q) const;

  // Compression geometry, public so tests can state the error bound in
  // terms of the implementation's own constants.
  static constexpr size_t kCompressed = 64;   // centroids after compression
  static constexpr size_t kCapacity = 192;    // buffered centroids before one

 private:
  struct Centroid {
    double value = 0.0;
    double weight = 0.0;
  };
  void compress();

  std::vector<Centroid> centroids_;
  std::vector<Centroid> scratch_;  // compression target, capacity reserved
  size_t n_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sensei::util
