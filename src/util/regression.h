// Ordinary least squares / ridge regression.
//
// Used for (a) inferring SENSEI per-chunk sensitivity weights from MOS
// ratings (paper Eq. 2: Q_j = sum_i w_i q_ij, solved over rendered videos j),
// and (b) fitting the KSQI-style linear QoE model.
#pragma once

#include <vector>

#include "util/matrix.h"

namespace sensei::util {

struct RegressionResult {
  std::vector<double> coefficients;
  double r_squared = 0.0;
};

// Fits y ~ X * beta (no intercept column is added; callers append a constant
// feature themselves if they want one). `ridge_lambda` adds L2 regularization,
// which keeps the normal equations well conditioned when rows are few or
// collinear — the common case in the crowdsourcing scheduler's first step.
RegressionResult fit_least_squares(const Matrix& x, const std::vector<double>& y,
                                   double ridge_lambda = 0.0);

// Convenience overload over row vectors.
RegressionResult fit_least_squares(const std::vector<std::vector<double>>& rows,
                                   const std::vector<double>& y, double ridge_lambda = 0.0);

// Fits constrained non-negative coefficients by projected coordinate descent.
// Sensitivity weights are by definition non-negative; negative OLS solutions
// are artifacts of rating noise.
std::vector<double> fit_nonnegative_least_squares(const std::vector<std::vector<double>>& rows,
                                                  const std::vector<double>& y,
                                                  double ridge_lambda = 0.0,
                                                  int iterations = 200);

}  // namespace sensei::util
