#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sensei::util {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double min_of(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
}

double max_of(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
}

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  double pos = clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double median(std::vector<double> v) { return percentile(std::move(v), 50.0); }

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  double mx = mean(x), my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(const std::vector<double>& v) {
  const size_t n = v.size();
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> r(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) ++j;
    // Average rank for the tie group [i, j] (1-based ranks).
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) r[idx[k]] = avg;
    i = j + 1;
  }
  return r;
}

double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  return pearson(ranks(x), ranks(y));
}

double discordant_fraction(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  size_t discordant = 0, comparable = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    for (size_t j = i + 1; j < x.size(); ++j) {
      double dx = x[i] - x[j], dy = y[i] - y[j];
      if (dx == 0.0 || dy == 0.0) continue;
      ++comparable;
      if ((dx > 0) != (dy > 0)) ++discordant;
    }
  }
  if (comparable == 0) return 0.0;
  return static_cast<double>(discordant) / static_cast<double>(comparable);
}

double mean_relative_error(const std::vector<double>& pred, const std::vector<double>& truth) {
  if (pred.size() != truth.size() || pred.empty()) return 0.0;
  constexpr double kEps = 1e-9;
  double acc = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (std::abs(truth[i]) <= kEps) continue;
    acc += std::abs(pred[i] - truth[i]) / std::abs(truth[i]);
    ++n;
  }
  return n ? acc / static_cast<double>(n) : 0.0;
}

double rmse(const std::vector<double>& pred, const std::vector<double>& truth) {
  if (pred.size() != truth.size() || pred.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    double d = pred[i] - truth[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(pred.size()));
}

std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  std::vector<std::pair<double, double>> cdf;
  cdf.reserve(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    cdf.emplace_back(v[i], static_cast<double>(i + 1) / static_cast<double>(v.size()));
  }
  return cdf;
}

std::vector<double> normalize01(const std::vector<double>& v) {
  if (v.empty()) return {};
  double lo = min_of(v), hi = max_of(v);
  std::vector<double> out(v.size());
  if (hi - lo <= 0.0) {
    std::fill(out.begin(), out.end(), 0.5);
    return out;
  }
  for (size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - lo) / (hi - lo);
  return out;
}

double clamp(double x, double lo, double hi) { return std::min(hi, std::max(lo, x)); }

void Accumulator::add(double x) {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

}  // namespace sensei::util
