#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sensei::util {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double min_of(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
}

double max_of(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
}

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  double pos = clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double median(std::vector<double> v) { return percentile(std::move(v), 50.0); }

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  double mx = mean(x), my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(const std::vector<double>& v) {
  const size_t n = v.size();
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> r(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) ++j;
    // Average rank for the tie group [i, j] (1-based ranks).
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) r[idx[k]] = avg;
    i = j + 1;
  }
  return r;
}

double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  return pearson(ranks(x), ranks(y));
}

double discordant_fraction(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  size_t discordant = 0, comparable = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    for (size_t j = i + 1; j < x.size(); ++j) {
      double dx = x[i] - x[j], dy = y[i] - y[j];
      if (dx == 0.0 || dy == 0.0) continue;
      ++comparable;
      if ((dx > 0) != (dy > 0)) ++discordant;
    }
  }
  if (comparable == 0) return 0.0;
  return static_cast<double>(discordant) / static_cast<double>(comparable);
}

double mean_relative_error(const std::vector<double>& pred, const std::vector<double>& truth) {
  if (pred.size() != truth.size() || pred.empty()) return 0.0;
  constexpr double kEps = 1e-9;
  double acc = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (std::abs(truth[i]) <= kEps) continue;
    acc += std::abs(pred[i] - truth[i]) / std::abs(truth[i]);
    ++n;
  }
  return n ? acc / static_cast<double>(n) : 0.0;
}

double rmse(const std::vector<double>& pred, const std::vector<double>& truth) {
  if (pred.size() != truth.size() || pred.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    double d = pred[i] - truth[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(pred.size()));
}

std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  std::vector<std::pair<double, double>> cdf;
  cdf.reserve(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    cdf.emplace_back(v[i], static_cast<double>(i + 1) / static_cast<double>(v.size()));
  }
  return cdf;
}

std::vector<double> normalize01(const std::vector<double>& v) {
  if (v.empty()) return {};
  double lo = min_of(v), hi = max_of(v);
  std::vector<double> out(v.size());
  if (hi - lo <= 0.0) {
    std::fill(out.begin(), out.end(), 0.5);
    return out;
  }
  for (size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - lo) / (hi - lo);
  return out;
}

double clamp(double x, double lo, double hi) { return std::min(hi, std::max(lo, x)); }

void Accumulator::add(double x) {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void MergeableAccumulator::add(double x) {
  // The identical update sequence to Accumulator::add — the equivalence the
  // tests pin (same running mean_/m2_ bit for bit).
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
}

void MergeableAccumulator::merge(const MergeableAccumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. pairwise combination of (n, mean, M2).
  double na = static_cast<double>(n_);
  double nb = static_cast<double>(other.n_);
  double delta = other.mean_ - mean_;
  mean_ += delta * (nb / (na + nb));
  m2_ += other.m2_ + delta * delta * (na * nb / (na + nb));
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double MergeableAccumulator::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double MergeableAccumulator::stddev() const { return std::sqrt(variance()); }

QuantileSketch::QuantileSketch() {
  // Everything add()/merge() can ever need, reserved up front: the buffer
  // itself plus one whole incoming sketch appended before a compression.
  centroids_.reserve(kCapacity + kCapacity);
  scratch_.reserve(kCompressed + 1);
}

void QuantileSketch::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  centroids_.push_back({x, 1.0});
  if (centroids_.size() >= kCapacity) compress();
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  n_ += other.n_;
  centroids_.insert(centroids_.end(), other.centroids_.begin(), other.centroids_.end());
  if (centroids_.size() >= kCapacity) compress();
}

void QuantileSketch::compress() {
  if (centroids_.size() <= kCompressed) return;
  // (value, weight) sort: a total, input-determined order — the whole
  // compression is then a pure function of the multiset seen so far.
  std::sort(centroids_.begin(), centroids_.end(), [](const Centroid& a, const Centroid& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.weight < b.weight;
  });
  double total = 0.0;
  for (const Centroid& c : centroids_) total += c.weight;
  scratch_.clear();
  // Greedy equal-weight bucketing: emit a merged centroid each time the
  // cumulative weight crosses the next bucket boundary k * total / B.
  double cum = 0.0, acc_w = 0.0, acc_vw = 0.0;
  size_t bucket = 1;
  const double step = total / static_cast<double>(kCompressed);
  for (const Centroid& c : centroids_) {
    cum += c.weight;
    acc_w += c.weight;
    acc_vw += c.value * c.weight;
    if (cum >= static_cast<double>(bucket) * step - 1e-9 * total) {
      scratch_.push_back({acc_vw / acc_w, acc_w});
      acc_w = acc_vw = 0.0;
      while (static_cast<double>(bucket) * step <= cum + 1e-9 * total) ++bucket;
    }
  }
  if (acc_w > 0.0) scratch_.push_back({acc_vw / acc_w, acc_w});
  centroids_.swap(scratch_);  // both keep their reserved capacity
}

double QuantileSketch::quantile(double q) const {
  if (n_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  std::vector<Centroid> cs = centroids_;  // report-time call: copying is fine
  std::sort(cs.begin(), cs.end(), [](const Centroid& a, const Centroid& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.weight < b.weight;
  });
  double total = 0.0;
  for (const Centroid& c : cs) total += c.weight;
  double rank = q * total;
  // Each centroid occupies a weight-span of the rank axis; interpolate
  // between consecutive centroid midpoints (and the exact extremes at the
  // ends), the standard digest query.
  double cum = 0.0;
  double prev_mid = 0.0;
  double prev_val = min_;
  for (const Centroid& c : cs) {
    double mid = cum + c.weight / 2.0;
    if (rank <= mid) {
      double span = mid - prev_mid;
      double frac = span > 0.0 ? (rank - prev_mid) / span : 1.0;
      return prev_val + (c.value - prev_val) * frac;
    }
    prev_mid = mid;
    prev_val = c.value;
    cum += c.weight;
  }
  double span = total - prev_mid;
  double frac = span > 0.0 ? (rank - prev_mid) / span : 1.0;
  return prev_val + (max_ - prev_val) * frac;
}

}  // namespace sensei::util
