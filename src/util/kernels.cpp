#include "util/kernels.h"

#include <atomic>
#include <cstring>

#include "util/kernels_internal.h"

namespace sensei::util {
namespace {

using detail::KernelOps;

// The scalar backend IS the inline reference implementation set from
// kernels.h — one source of truth for the semantics every SIMD lane must
// reproduce.
constexpr KernelOps kScalarOps = {
    &kernels::ref::div_add_row,
    &kernels::ref::mul_div_row,
    &kernels::ref::div_scalar_row,
    &kernels::ref::step_buffer_stall_row,
    &kernels::ref::chunk_quality_stall_row,
    &kernels::ref::chunk_quality_row,
    &kernels::ref::chunk_quality_nostall_row,
    &kernels::ref::chunk_quality_nostall_prev_row,
    &kernels::ref::whittle_index_row,
    &kernels::ref::triangular_fan,
};

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

struct Resolved {
  const KernelOps* ops;
  const char* name;
};

Resolved resolve_simd() {
#if defined(__x86_64__)
  const KernelOps* avx2 = detail::avx2_ops();
  if (avx2 != nullptr && __builtin_cpu_supports("avx2")) return {avx2, "avx2"};
#endif
  const KernelOps* sse2 = detail::sse2_ops();
  if (sse2 != nullptr) return {sse2, "sse2"};
  return {&kScalarOps, "scalar"};
}

Resolved resolve(KernelBackend backend) {
  if (backend == KernelBackend::kScalar) return {&kScalarOps, "scalar"};
  return resolve_simd();  // kSimd and kAuto both take the best vector path
}

std::atomic<KernelBackend> g_requested{KernelBackend::kAuto};
std::atomic<const char*> g_name{nullptr};
std::atomic<const KernelOps*> g_ops{nullptr};

const KernelOps& active() {
  const KernelOps* ops = g_ops.load(std::memory_order_acquire);
  if (ops == nullptr) {
    const Resolved r = resolve(g_requested.load(std::memory_order_relaxed));
    g_name.store(r.name, std::memory_order_relaxed);
    g_ops.store(r.ops, std::memory_order_release);
    ops = r.ops;
  }
  return *ops;
}

}  // namespace

void set_kernel_backend(KernelBackend backend) {
  const Resolved r = resolve(backend);
  g_requested.store(backend, std::memory_order_relaxed);
  g_name.store(r.name, std::memory_order_relaxed);
  g_ops.store(r.ops, std::memory_order_release);
}

bool set_kernel_backend(const char* name) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    set_kernel_backend(KernelBackend::kScalar);
    return true;
  }
  if (std::strcmp(name, "simd") == 0) {
    set_kernel_backend(KernelBackend::kSimd);
    return true;
  }
  if (std::strcmp(name, "auto") == 0) {
    set_kernel_backend(KernelBackend::kAuto);
    return true;
  }
  return false;
}

KernelBackend requested_kernel_backend() {
  return g_requested.load(std::memory_order_relaxed);
}

const char* kernel_backend_name() {
  active();  // resolve on first query
  return g_name.load(std::memory_order_relaxed);
}

bool kernel_simd_compiled() {
  return detail::avx2_ops() != nullptr || detail::sse2_ops() != nullptr;
}

bool kernel_simd_supported() { return resolve_simd().ops != &kScalarOps; }

namespace kernels::dispatch {

void div_add_row(double num, const double* den, size_t n, double den_floor, double add,
                 double* out) {
  active().div_add_row(num, den, n, den_floor, add, out);
}

void mul_div_row(const double* x, size_t n, double scale, double den, double* out) {
  active().mul_div_row(x, n, scale, den, out);
}

void div_scalar_row(const double* x, size_t n, double den, double* out) {
  active().div_scalar_row(x, n, den, out);
}

void step_buffer_stall_row(double buffer_s, const double* dl, size_t n, double extra_s,
                           double tau_s, double cap_s, double* buf_out,
                           double* stall_out) {
  active().step_buffer_stall_row(buffer_s, dl, n, extra_s, tau_s, cap_s, buf_out,
                                 stall_out);
}

void chunk_quality_stall_row(double vq, double prev_vq, double nostall_q,
                             const double* stall, size_t n, double br, double sat,
                             double bsw, double floor, double* out) {
  active().chunk_quality_stall_row(vq, prev_vq, nostall_q, stall, n, br, sat, bsw, floor,
                                   out);
}

void chunk_quality_row(const double* vq, const double* stall, const double* prev_vq,
                       size_t n, double br, double sat, double bsw, double floor,
                       double* out) {
  active().chunk_quality_row(vq, stall, prev_vq, n, br, sat, bsw, floor, out);
}

void chunk_quality_nostall_row(const double* vq, size_t n, double prev_vq, double bsw,
                               double floor, double* out) {
  active().chunk_quality_nostall_row(vq, n, prev_vq, bsw, floor, out);
}

void chunk_quality_nostall_prev_row(double vq, const double* prev_vq, size_t n,
                                    double bsw, double floor, double* out) {
  active().chunk_quality_nostall_prev_row(vq, prev_vq, n, bsw, floor, out);
}

void whittle_index_row(const double* size_bytes, const double* vq, const double* prev_vq,
                       size_t n, double den, double buffer_s, double headroom,
                       double drain, double br, double sat, double bsw, double* out) {
  active().whittle_index_row(size_bytes, vq, prev_vq, n, den, buffer_s, headroom, drain,
                             br, sat, bsw, out);
}

void triangular_fan(size_t count, double center, double cv, double floor_kbps,
                    double* kbps, double* prob) {
  active().triangular_fan(count, center, cv, floor_kbps, kbps, prob);
}

}  // namespace kernels::dispatch
}  // namespace sensei::util
