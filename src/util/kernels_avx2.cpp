// AVX2 backend for util/kernels. This translation unit is compiled with
// -mavx2 (see CMakeLists); it must stay self-contained — nothing here may
// be inlined into code that runs before the runtime cpu check, which is
// why the table is only reachable through the avx2_ops() factory.
#include "util/kernels_internal.h"

#if defined(SENSEI_ENABLE_SIMD) && defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

#include <cmath>

namespace sensei::util::detail {
namespace {

struct V {
  using R = __m256d;
  static constexpr size_t W = 4;
  static R load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, R v) { _mm256_storeu_pd(p, v); }
  static R set1(double x) { return _mm256_set1_pd(x); }
  static R add(R a, R b) { return _mm256_add_pd(a, b); }
  static R sub(R a, R b) { return _mm256_sub_pd(a, b); }
  static R mul(R a, R b) { return _mm256_mul_pd(a, b); }
  static R div(R a, R b) { return _mm256_div_pd(a, b); }
  static R lt(R a, R b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static R le(R a, R b) { return _mm256_cmp_pd(a, b, _CMP_LE_OQ); }
  static R gt(R a, R b) { return _mm256_cmp_pd(a, b, _CMP_GT_OQ); }
  // blendv keys on the sign bit; compare masks are all-ones/all-zeros.
  static R select(R mask, R if_true, R if_false) {
    return _mm256_blendv_pd(if_false, if_true, mask);
  }
  static R abs(R x) { return _mm256_andnot_pd(_mm256_set1_pd(-0.0), x); }
  static R iota() { return _mm256_set_pd(3.0, 2.0, 1.0, 0.0); }
};

#include "util/kernels_simd.inc"

constexpr KernelOps kOps = {
    &v_div_add_row<V>,
    &v_mul_div_row<V>,
    &v_div_scalar_row<V>,
    &v_step_buffer_stall_row<V>,
    &v_chunk_quality_stall_row<V>,
    &v_chunk_quality_row<V>,
    &v_chunk_quality_nostall_row<V>,
    &v_chunk_quality_nostall_prev_row<V>,
    &v_whittle_index_row<V>,
    &v_triangular_fan<V>,
};

}  // namespace

const KernelOps* avx2_ops() { return &kOps; }

}  // namespace sensei::util::detail

#else

namespace sensei::util::detail {
const KernelOps* avx2_ops() { return nullptr; }
}  // namespace sensei::util::detail

#endif
