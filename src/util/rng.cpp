#include "util/rng.h"

#include <cmath>

namespace sensei::util {

namespace {

// splitmix64: used to expand a single seed into the four xoshiro words.
uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// FNV-1a, stable across platforms (std::hash is not guaranteed stable).
uint64_t fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

uint64_t mix_seed(uint64_t seed, uint64_t salt) {
  uint64_t s = salt;
  uint64_t x = seed ^ splitmix64(s);
  return splitmix64(x);
}

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& w : state_) w = splitmix64(x);
}

Rng Rng::from_string(std::string_view name, uint64_t salt) {
  return Rng(fnv1a(name) ^ (salt * 0x9e3779b97f4a7c15ULL + 0x3c6ef372fe94f82aULL));
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
  if (hi <= lo) return lo;
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(next_u64() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::chance(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

size_t Rng::poisson(double mean) {
  if (!(mean > 0.0)) return 0;
  // Knuth's product method underflows for exp(-mean) == 0; split large means
  // in two (Poisson is additive), keeping the distribution exact.
  if (mean > 60.0) return poisson(mean * 0.5) + poisson(mean * 0.5);
  const double threshold = std::exp(-mean);
  size_t k = 0;
  double product = uniform();
  while (product > threshold) {
    ++k;
    product *= uniform();
  }
  return k;
}

size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0 || weights.empty()) {
    return weights.empty() ? 0 : weights.size() - 1;
  }
  double target = uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace sensei::util
