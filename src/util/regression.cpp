#include "util/regression.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.h"

namespace sensei::util {

RegressionResult fit_least_squares(const Matrix& x, const std::vector<double>& y,
                                   double ridge_lambda) {
  if (x.rows() != y.size()) throw std::runtime_error("regression: rows != y size");
  if (x.rows() == 0 || x.cols() == 0) return {};
  Matrix xt = x.transpose();
  Matrix xtx = xt.multiply(x);
  for (size_t i = 0; i < xtx.rows(); ++i) xtx.at(i, i) += ridge_lambda;
  std::vector<double> xty = xt.multiply(y);
  RegressionResult result;
  result.coefficients = Matrix::solve(xtx, xty);

  std::vector<double> pred = x.multiply(result.coefficients);
  double ss_res = 0.0, ss_tot = 0.0;
  double ym = mean(y);
  for (size_t i = 0; i < y.size(); ++i) {
    ss_res += (y[i] - pred[i]) * (y[i] - pred[i]);
    ss_tot += (y[i] - ym) * (y[i] - ym);
  }
  result.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
  return result;
}

RegressionResult fit_least_squares(const std::vector<std::vector<double>>& rows,
                                   const std::vector<double>& y, double ridge_lambda) {
  if (rows.empty()) return {};
  Matrix x(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != rows[0].size()) throw std::runtime_error("regression: ragged rows");
    for (size_t c = 0; c < rows[r].size(); ++c) x.at(r, c) = rows[r][c];
  }
  return fit_least_squares(x, y, ridge_lambda);
}

std::vector<double> fit_nonnegative_least_squares(const std::vector<std::vector<double>>& rows,
                                                  const std::vector<double>& y,
                                                  double ridge_lambda, int iterations) {
  if (rows.empty() || rows[0].empty()) return {};
  const size_t n = rows.size();
  const size_t d = rows[0].size();

  // Precompute Gram matrix G = X^T X + lambda I and c = X^T y.
  std::vector<std::vector<double>> g(d, std::vector<double>(d, 0.0));
  std::vector<double> c(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < d; ++a) {
      c[a] += rows[i][a] * y[i];
      for (size_t b = 0; b < d; ++b) g[a][b] += rows[i][a] * rows[i][b];
    }
  }
  for (size_t a = 0; a < d; ++a) g[a][a] += ridge_lambda;

  // Coordinate descent with projection onto [0, inf).
  std::vector<double> w(d, 0.5);
  for (int it = 0; it < iterations; ++it) {
    for (size_t a = 0; a < d; ++a) {
      if (g[a][a] <= 0.0) continue;
      double grad = c[a];
      for (size_t b = 0; b < d; ++b) {
        if (b != a) grad -= g[a][b] * w[b];
      }
      w[a] = std::max(0.0, grad / g[a][a]);
    }
  }
  return w;
}

}  // namespace sensei::util
