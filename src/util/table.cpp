#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sensei::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double v : cells) out.push_back(format_double(v, precision));
  add_row(std::move(out));
}

std::string Table::format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      os << cell << std::string(widths[c] - cell.size(), ' ');
      os << (c + 1 < headers_.size() ? "  " : "");
    }
    os << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (size_t c = 0; c < headers_.size(); ++c)
    os << escape(headers_[c]) << (c + 1 < headers_.size() ? "," : "");
  os << '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < headers_.size(); ++c)
      os << (c < row.size() ? escape(row[c]) : "") << (c + 1 < headers_.size() ? "," : "");
    os << '\n';
  }
  return os.str();
}

std::string banner(const std::string& title) {
  return "== " + title + " ==\n";
}

}  // namespace sensei::util
