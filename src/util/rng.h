// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component of the reproduction (content models, traces,
// rater noise, RL exploration) draws from a seeded Rng so that tests and
// benches are bit-for-bit repeatable across runs and machines.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace sensei::util {

// Derives an independent seed from (seed, salt) via splitmix64 mixing — the
// same construction core::ExperimentRunner::task_seed uses to give each grid
// task its own stream. Use it whenever one base seed must fan out into
// decoupled streams (per-cell fault plans, per-session jitter) without any
// stream's draw order affecting another.
uint64_t mix_seed(uint64_t seed, uint64_t salt);

// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm).
// Chosen over std::mt19937 for speed and for a guaranteed stable stream
// across standard-library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Derives a seed from a string (e.g. a video name) so each entity gets an
  // independent but reproducible stream.
  static Rng from_string(std::string_view name, uint64_t salt = 0);

  uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);
  // Standard normal via Box-Muller (cached second value).
  double normal();
  double normal(double mean, double stddev);
  // Bernoulli trial.
  bool chance(double p);
  // Exponential with given mean.
  double exponential(double mean);
  // Poisson with given mean (0 for mean <= 0). Knuth's product method; means
  // above ~60 split recursively so exp(-mean) never underflows.
  size_t poisson(double mean);

  // Samples an index according to non-negative weights (unnormalized).
  // Returns weights.size()-1 on degenerate input (all zero).
  size_t weighted_index(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(uniform_int(0, static_cast<int>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sensei::util
