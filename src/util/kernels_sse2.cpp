// SSE2 backend for util/kernels (baseline on x86-64, no extra ISA flags).
#include "util/kernels_internal.h"

#if defined(SENSEI_ENABLE_SIMD) && defined(__x86_64__) && defined(__SSE2__)

#include <emmintrin.h>

#include <cmath>

namespace sensei::util::detail {
namespace {

struct V {
  using R = __m128d;
  static constexpr size_t W = 2;
  static R load(const double* p) { return _mm_loadu_pd(p); }
  static void store(double* p, R v) { _mm_storeu_pd(p, v); }
  static R set1(double x) { return _mm_set1_pd(x); }
  static R add(R a, R b) { return _mm_add_pd(a, b); }
  static R sub(R a, R b) { return _mm_sub_pd(a, b); }
  static R mul(R a, R b) { return _mm_mul_pd(a, b); }
  static R div(R a, R b) { return _mm_div_pd(a, b); }
  static R lt(R a, R b) { return _mm_cmplt_pd(a, b); }
  static R le(R a, R b) { return _mm_cmple_pd(a, b); }
  static R gt(R a, R b) { return _mm_cmpgt_pd(a, b); }
  // mask lanes are all-ones/all-zeros from the compares above.
  static R select(R mask, R if_true, R if_false) {
    return _mm_or_pd(_mm_and_pd(mask, if_true), _mm_andnot_pd(mask, if_false));
  }
  static R abs(R x) { return _mm_andnot_pd(_mm_set1_pd(-0.0), x); }
  static R iota() { return _mm_set_pd(1.0, 0.0); }
};

#include "util/kernels_simd.inc"

constexpr KernelOps kOps = {
    &v_div_add_row<V>,
    &v_mul_div_row<V>,
    &v_div_scalar_row<V>,
    &v_step_buffer_stall_row<V>,
    &v_chunk_quality_stall_row<V>,
    &v_chunk_quality_row<V>,
    &v_chunk_quality_nostall_row<V>,
    &v_chunk_quality_nostall_prev_row<V>,
    &v_whittle_index_row<V>,
    &v_triangular_fan<V>,
};

}  // namespace

const KernelOps* sse2_ops() { return &kOps; }

}  // namespace sensei::util::detail

#else

namespace sensei::util::detail {
const KernelOps* sse2_ops() { return nullptr; }
}  // namespace sensei::util::detail

#endif
