// Small dense matrix used by the regression and ML substrates.
// Row-major storage; only the operations the project needs.
#pragma once

#include <cstddef>
#include <vector>

namespace sensei::util {

class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  static Matrix identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  Matrix transpose() const;
  Matrix multiply(const Matrix& other) const;
  std::vector<double> multiply(const std::vector<double>& v) const;

  // Solves A x = b via Gaussian elimination with partial pivoting.
  // Throws std::runtime_error on a (numerically) singular system.
  static std::vector<double> solve(Matrix a, std::vector<double> b);

  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace sensei::util
