#include "media/ladder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sensei::media {

BitrateLadder::BitrateLadder() : levels_{300, 750, 1200, 1850, 2850} {}

BitrateLadder::BitrateLadder(std::vector<double> levels_kbps) : levels_(std::move(levels_kbps)) {
  if (levels_.empty()) throw std::runtime_error("ladder: no levels");
  if (!std::is_sorted(levels_.begin(), levels_.end()))
    throw std::runtime_error("ladder: levels must ascend");
}

size_t BitrateLadder::highest_level_at_most(double kbps) const {
  size_t best = 0;
  for (size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i] <= kbps) best = i;
  }
  return best;
}

int BitrateLadder::level_of(double kbps) const {
  for (size_t i = 0; i < levels_.size(); ++i) {
    if (std::abs(levels_[i] - kbps) < 1e-9) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace sensei::media
