// The 16-video test set of the paper's Table 1 (names, genres, lengths and
// source datasets reproduced; content is synthesized — see DESIGN.md §1).
#pragma once

#include <string>
#include <vector>

#include "media/video.h"

namespace sensei::media {

struct DatasetEntry {
  std::string name;
  Genre genre;
  double duration_s;
  std::string source_dataset;
  std::string description;  // Figure 19 caption
};

class Dataset {
 public:
  // Table 1 metadata.
  static const std::vector<DatasetEntry>& table1();

  // Generates the full 16-video test set.
  static std::vector<SourceVideo> test_set(double chunk_duration_s = 4.0);

  // Generates one video of the test set by name; throws if unknown.
  static SourceVideo by_name(const std::string& name, double chunk_duration_s = 4.0);

  // The 25-second Soccer1 clip of Figure 1 with a hand-authored scene layout:
  // chunks 0-2 normal gameplay, chunk 3 shoot & goal (key moment),
  // chunks 4-5 celebrate & replay. (At 4 s chunks: ~25 s total.)
  static SourceVideo soccer1_clip();

 private:
  static SourceVideo generate_entry(const DatasetEntry& e, double chunk_duration_s);
};

}  // namespace sensei::media
