// Source-video model: a named, genre-tagged sequence of content chunks.
#pragma once

#include <string>
#include <vector>

#include "media/content.h"

namespace sensei::media {

class SourceVideo {
 public:
  SourceVideo() = default;
  SourceVideo(std::string name, Genre genre, std::string source_dataset,
              std::vector<ChunkContent> chunks, double chunk_duration_s = 4.0);

  // Generates a synthetic video of `duration_s` seconds; the content stream is
  // deterministic in `name`.
  static SourceVideo generate(const std::string& name, Genre genre, double duration_s,
                              const std::string& source_dataset = "synthetic",
                              double chunk_duration_s = 4.0);

  const std::string& name() const { return name_; }
  Genre genre() const { return genre_; }
  const std::string& source_dataset() const { return source_dataset_; }
  double chunk_duration_s() const { return chunk_duration_s_; }
  size_t num_chunks() const { return chunks_.size(); }
  double duration_s() const { return chunk_duration_s_ * static_cast<double>(chunks_.size()); }
  const ChunkContent& chunk(size_t i) const { return chunks_.at(i); }
  const std::vector<ChunkContent>& chunks() const { return chunks_; }

  // Mutable access for tests and for building hand-crafted clips (Figure 1).
  std::vector<ChunkContent>& mutable_chunks() { return chunks_; }

  // The hidden per-chunk sensitivity vector (only the ground-truth oracle and
  // evaluation code may peek at this; SENSEI itself must infer it).
  std::vector<double> true_sensitivity() const;

  // Duration rendered as M:SS, as in the paper's Table 1.
  std::string length_string() const;

  // Returns the sub-clip covering chunks [first, first+count).
  SourceVideo clip(size_t first, size_t count, const std::string& clip_name) const;

 private:
  std::string name_;
  Genre genre_ = Genre::kSports;
  std::string source_dataset_;
  double chunk_duration_s_ = 4.0;
  std::vector<ChunkContent> chunks_;
};

}  // namespace sensei::media
