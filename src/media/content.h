// Synthetic per-chunk content model.
//
// The paper's experiments consume two things from a real video: how hard each
// chunk is to encode (sizes, visual quality vs bitrate) and the latent
// per-chunk *quality sensitivity* of viewers (§2.3). We model both directly.
//
// Scene kinds encode the paper's taxonomy of attention (§2.3 "Sources of
// dynamic quality sensitivity"):
//  - kKeyMoment:    storyline climax (goal, buzzer beater) — highest sensitivity.
//  - kInfoMoment:   information the viewer must read (scoreboard, loot) —
//                   high sensitivity but LOW motion.
//  - kTransitional: scenic filler (universe background) — lowest sensitivity.
//  - kReplay:       replays/ads/quick scans — HIGH motion but low sensitivity.
//  - kNormal:       regular gameplay/footage — medium sensitivity.
//
// kInfoMoment and kReplay deliberately break the motion<->sensitivity
// correlation; this is the property that makes motion-based heuristics
// (LSTM-QoE's "dynamic scenes", the Appendix-D CV models) mispredict, exactly
// as the paper reports for Soccer1.
#pragma once

#include <string>
#include <vector>

#include "util/rng.h"

namespace sensei::media {

enum class Genre { kSports, kGaming, kNature, kAnimation };

enum class SceneKind { kNormal, kKeyMoment, kInfoMoment, kTransitional, kReplay };

std::string to_string(Genre g);
std::string to_string(SceneKind k);

struct ChunkContent {
  SceneKind kind = SceneKind::kNormal;
  double motion = 0.5;       // [0,1] temporal activity (what CV/LSTM models see)
  double complexity = 0.5;   // [0,1] spatial encoding difficulty
  double objectness = 0.5;   // [0,1] salient-object density (what CV models see)
  double sensitivity = 0.5;  // (0,1] latent true quality sensitivity (hidden)
};

// Generates a chunk sequence for a video of the given genre. Deterministic
// for a given (name, genre, chunk count): each video gets its own RNG stream.
std::vector<ChunkContent> generate_content(const std::string& name, Genre genre,
                                           size_t num_chunks);

// Per-kind sensitivity ranges (exposed for tests and the ground-truth oracle).
struct SensitivityRange {
  double lo = 0.0;
  double hi = 0.0;
};
SensitivityRange sensitivity_range(SceneKind kind);

}  // namespace sensei::media
