#include "media/video.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace sensei::media {

SourceVideo::SourceVideo(std::string name, Genre genre, std::string source_dataset,
                         std::vector<ChunkContent> chunks, double chunk_duration_s)
    : name_(std::move(name)),
      genre_(genre),
      source_dataset_(std::move(source_dataset)),
      chunk_duration_s_(chunk_duration_s),
      chunks_(std::move(chunks)) {
  if (chunk_duration_s_ <= 0.0) throw std::runtime_error("video: chunk duration must be > 0");
}

SourceVideo SourceVideo::generate(const std::string& name, Genre genre, double duration_s,
                                  const std::string& source_dataset, double chunk_duration_s) {
  if (duration_s <= 0.0) throw std::runtime_error("video: duration must be > 0");
  auto num_chunks = static_cast<size_t>(std::ceil(duration_s / chunk_duration_s));
  return SourceVideo(name, genre, source_dataset, generate_content(name, genre, num_chunks),
                     chunk_duration_s);
}

std::vector<double> SourceVideo::true_sensitivity() const {
  std::vector<double> s;
  s.reserve(chunks_.size());
  for (const auto& c : chunks_) s.push_back(c.sensitivity);
  return s;
}

std::string SourceVideo::length_string() const {
  int total = static_cast<int>(std::lround(duration_s()));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d:%02d", total / 60, total % 60);
  return buf;
}

SourceVideo SourceVideo::clip(size_t first, size_t count, const std::string& clip_name) const {
  if (first + count > chunks_.size()) throw std::runtime_error("video: clip out of range");
  std::vector<ChunkContent> sub(chunks_.begin() + static_cast<long>(first),
                                chunks_.begin() + static_cast<long>(first + count));
  return SourceVideo(clip_name, genre_, source_dataset_, std::move(sub), chunk_duration_s_);
}

}  // namespace sensei::media
