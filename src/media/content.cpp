#include "media/content.h"

#include <stdexcept>

#include "util/stats.h"

namespace sensei::media {

using util::Rng;

std::string to_string(Genre g) {
  switch (g) {
    case Genre::kSports: return "Sports";
    case Genre::kGaming: return "Gaming";
    case Genre::kNature: return "Nature";
    case Genre::kAnimation: return "Animation";
  }
  return "?";
}

std::string to_string(SceneKind k) {
  switch (k) {
    case SceneKind::kNormal: return "normal";
    case SceneKind::kKeyMoment: return "key-moment";
    case SceneKind::kInfoMoment: return "info-moment";
    case SceneKind::kTransitional: return "transitional";
    case SceneKind::kReplay: return "replay";
  }
  return "?";
}

SensitivityRange sensitivity_range(SceneKind kind) {
  switch (kind) {
    case SceneKind::kKeyMoment: return {0.85, 1.0};
    case SceneKind::kInfoMoment: return {0.70, 0.88};
    case SceneKind::kNormal: return {0.40, 0.62};
    case SceneKind::kReplay: return {0.28, 0.45};
    case SceneKind::kTransitional: return {0.20, 0.38};
  }
  return {0.4, 0.6};
}

namespace {

// Motion / complexity / objectness profiles per scene kind. Mean values;
// per-chunk jitter is added on top.
struct KindProfile {
  double motion;
  double complexity;
  double objectness;
};

KindProfile kind_profile(SceneKind kind, Genre genre) {
  const bool animated = genre == Genre::kAnimation;
  switch (kind) {
    case SceneKind::kKeyMoment: return {0.72, animated ? 0.55 : 0.68, 0.70};
    case SceneKind::kInfoMoment: return {0.18, 0.35, 0.45};  // static scoreboard
    case SceneKind::kNormal: return {0.50, 0.55, 0.55};
    case SceneKind::kReplay: return {0.85, 0.75, 0.80};  // most dynamic on screen
    case SceneKind::kTransitional: return {0.15, animated ? 0.30 : 0.40, 0.25};
  }
  return {0.5, 0.5, 0.5};
}

// Genre-specific scene grammars: relative dwell probabilities and typical
// segment lengths (in chunks). Sports has goals + scoreboards + replays;
// nature is mostly scenic; gaming mixes fights (key) and looting (info);
// animation follows story arcs with tension build-ups.
struct GenreGrammar {
  // kind -> (probability weight, min segment chunks, max segment chunks)
  struct Entry {
    SceneKind kind;
    double weight;
    int min_len;
    int max_len;
  };
  std::vector<Entry> entries;
};

GenreGrammar grammar_for(Genre genre) {
  switch (genre) {
    case Genre::kSports:
      return {{
          {SceneKind::kNormal, 0.52, 2, 5},
          {SceneKind::kKeyMoment, 0.14, 1, 2},
          {SceneKind::kInfoMoment, 0.10, 1, 1},
          {SceneKind::kReplay, 0.16, 1, 3},
          {SceneKind::kTransitional, 0.08, 1, 2},
      }};
    case Genre::kGaming:
      return {{
          {SceneKind::kNormal, 0.50, 2, 5},
          {SceneKind::kKeyMoment, 0.16, 1, 2},
          {SceneKind::kInfoMoment, 0.14, 1, 2},
          {SceneKind::kReplay, 0.08, 1, 2},
          {SceneKind::kTransitional, 0.12, 1, 3},
      }};
    case Genre::kNature:
      return {{
          {SceneKind::kNormal, 0.30, 2, 4},
          {SceneKind::kKeyMoment, 0.10, 1, 1},
          {SceneKind::kInfoMoment, 0.05, 1, 1},
          {SceneKind::kReplay, 0.05, 1, 1},
          {SceneKind::kTransitional, 0.50, 2, 6},
      }};
    case Genre::kAnimation:
      return {{
          {SceneKind::kNormal, 0.44, 2, 5},
          {SceneKind::kKeyMoment, 0.16, 1, 3},
          {SceneKind::kInfoMoment, 0.08, 1, 1},
          {SceneKind::kReplay, 0.06, 1, 2},
          {SceneKind::kTransitional, 0.26, 1, 4},
      }};
  }
  throw std::runtime_error("unknown genre");
}

ChunkContent make_chunk(SceneKind kind, Genre genre, Rng& rng) {
  ChunkContent c;
  c.kind = kind;
  KindProfile p = kind_profile(kind, genre);
  c.motion = util::clamp(p.motion + rng.normal(0.0, 0.07), 0.02, 1.0);
  c.complexity = util::clamp(p.complexity + rng.normal(0.0, 0.08), 0.05, 1.0);
  c.objectness = util::clamp(p.objectness + rng.normal(0.0, 0.08), 0.02, 1.0);
  SensitivityRange sr = sensitivity_range(kind);
  c.sensitivity = util::clamp(rng.uniform(sr.lo, sr.hi), 0.05, 1.0);
  return c;
}

}  // namespace

std::vector<ChunkContent> generate_content(const std::string& name, Genre genre,
                                           size_t num_chunks) {
  Rng rng = Rng::from_string(name, 0xC0DEC);
  GenreGrammar grammar = grammar_for(genre);

  std::vector<ChunkContent> chunks;
  chunks.reserve(num_chunks);
  SceneKind prev = SceneKind::kNormal;
  while (chunks.size() < num_chunks) {
    std::vector<double> weights;
    weights.reserve(grammar.entries.size());
    for (const auto& e : grammar.entries) {
      // Avoid back-to-back identical non-normal segments; key moments are
      // typically followed by replays/celebrations in sports.
      double w = e.weight;
      if (e.kind == prev && e.kind != SceneKind::kNormal) w *= 0.25;
      if (prev == SceneKind::kKeyMoment && e.kind == SceneKind::kReplay) w *= 3.0;
      weights.push_back(w);
    }
    const auto& entry = grammar.entries[rng.weighted_index(weights)];
    int seg_len = rng.uniform_int(entry.min_len, entry.max_len);
    for (int i = 0; i < seg_len && chunks.size() < num_chunks; ++i) {
      chunks.push_back(make_chunk(entry.kind, genre, rng));
    }
    prev = entry.kind;
  }
  return chunks;
}

}  // namespace sensei::media
