// Encoding bitrate ladder.
//
// The paper encodes 4-second chunks in five H.264 bitrate levels:
// {300, 750, 1200, 1850, 2850} Kbps, matching YouTube's 240p..1080p rungs.
#pragma once

#include <cstddef>
#include <vector>

namespace sensei::media {

class BitrateLadder {
 public:
  // The paper's ladder (Kbps).
  BitrateLadder();
  explicit BitrateLadder(std::vector<double> levels_kbps);

  size_t level_count() const { return levels_.size(); }
  double kbps(size_t level) const { return levels_.at(level); }
  const std::vector<double>& levels_kbps() const { return levels_; }

  double lowest_kbps() const { return levels_.front(); }
  double highest_kbps() const { return levels_.back(); }

  // Highest level whose bitrate does not exceed `kbps`; 0 if none do.
  size_t highest_level_at_most(double kbps) const;
  // Exact level index of a bitrate, or -1 if it is not on the ladder.
  int level_of(double kbps) const;

 private:
  std::vector<double> levels_;  // ascending
};

}  // namespace sensei::media
