// Encoder substrate: turns a SourceVideo into per-chunk, per-bitrate encoded
// representations with (a) realistic VBR chunk sizes and (b) a visual-quality
// proxy standing in for VMAF/SSIM (the paper's pixel-based metrics).
//
// Visual quality follows a saturating log curve of bitrate, discounted by
// chunk complexity: complex (high-motion, high-detail) chunks need more bits
// for the same quality, matching rate-distortion behaviour of H.264.
#pragma once

#include <vector>

#include "media/ladder.h"
#include "media/video.h"

namespace sensei::media {

struct EncodedChunk {
  double bitrate_kbps = 0.0;
  double size_bytes = 0.0;
  double visual_quality = 0.0;  // [0,1], VMAF-like proxy
};

class EncodedVideo {
 public:
  EncodedVideo() = default;
  EncodedVideo(SourceVideo source, BitrateLadder ladder,
               std::vector<std::vector<EncodedChunk>> reps);

  const SourceVideo& source() const { return source_; }
  const BitrateLadder& ladder() const { return ladder_; }
  size_t num_chunks() const { return reps_.size(); }
  double chunk_duration_s() const { return source_.chunk_duration_s(); }

  const EncodedChunk& rep(size_t chunk, size_t level) const { return reps_.at(chunk).at(level); }
  double size_bytes(size_t chunk, size_t level) const { return rep(chunk, level).size_bytes; }
  double visual_quality(size_t chunk, size_t level) const {
    return rep(chunk, level).visual_quality;
  }

 private:
  SourceVideo source_;
  BitrateLadder ladder_;
  std::vector<std::vector<EncodedChunk>> reps_;  // [chunk][level]
};

class Encoder {
 public:
  explicit Encoder(BitrateLadder ladder = BitrateLadder());

  // Deterministic in the source video's name.
  EncodedVideo encode(const SourceVideo& video) const;

  // The visual-quality proxy, exposed so QoE models can reuse the same curve.
  // bitrate in Kbps, complexity in [0,1]; returns [0,1].
  static double visual_quality(double bitrate_kbps, double complexity);

 private:
  BitrateLadder ladder_;
};

}  // namespace sensei::media
