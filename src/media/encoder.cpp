#include "media/encoder.h"

#include <cmath>

#include "util/rng.h"
#include "util/stats.h"

namespace sensei::media {

EncodedVideo::EncodedVideo(SourceVideo source, BitrateLadder ladder,
                           std::vector<std::vector<EncodedChunk>> reps)
    : source_(std::move(source)), ladder_(std::move(ladder)), reps_(std::move(reps)) {}

Encoder::Encoder(BitrateLadder ladder) : ladder_(std::move(ladder)) {}

double Encoder::visual_quality(double bitrate_kbps, double complexity) {
  // Saturating rate-quality curve: q = 1 - exp(-r / r0), where the reference
  // rate r0 grows with complexity. Calibrated so the paper's ladder spans
  // roughly [0.35, 0.97] for a mid-complexity chunk.
  double r0 = 550.0 + 1450.0 * complexity;
  double q = 1.0 - std::exp(-bitrate_kbps / r0);
  return util::clamp(q, 0.0, 1.0);
}

EncodedVideo Encoder::encode(const SourceVideo& video) const {
  util::Rng rng = util::Rng::from_string(video.name(), 0xE2C0DE);
  std::vector<std::vector<EncodedChunk>> reps;
  reps.reserve(video.num_chunks());
  const double tau = video.chunk_duration_s();

  for (size_t i = 0; i < video.num_chunks(); ++i) {
    const ChunkContent& content = video.chunk(i);
    // VBR factor: high-motion chunks overshoot the target bitrate, static
    // chunks undershoot. One draw per chunk shared across levels, as a real
    // encoder's rate control correlates across the ladder.
    double vbr = 1.0 + 0.25 * (content.motion - 0.5) + rng.normal(0.0, 0.06);
    vbr = util::clamp(vbr, 0.6, 1.5);

    std::vector<EncodedChunk> levels;
    levels.reserve(ladder_.level_count());
    for (size_t l = 0; l < ladder_.level_count(); ++l) {
      EncodedChunk ec;
      ec.bitrate_kbps = ladder_.kbps(l);
      ec.size_bytes = ec.bitrate_kbps * 1000.0 / 8.0 * tau * vbr;
      ec.visual_quality = visual_quality(ec.bitrate_kbps, content.complexity);
      levels.push_back(ec);
    }
    reps.push_back(std::move(levels));
  }
  return EncodedVideo(video, ladder_, std::move(reps));
}

}  // namespace sensei::media
