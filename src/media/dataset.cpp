#include "media/dataset.h"

#include <stdexcept>

#include "util/stats.h"

namespace sensei::media {

const std::vector<DatasetEntry>& Dataset::table1() {
  static const std::vector<DatasetEntry> kTable = {
      {"Basket1", Genre::kSports, 220, "LIVE-MOBILE", "A buzzer beater in a basketball game"},
      {"Soccer1", Genre::kSports, 200, "LIVE-NFLX-II", "A goal after a failed shoot"},
      {"Basket2", Genre::kSports, 220, "YouTube-UGC",
       "A free throw followed by a one-on-one defense"},
      {"Soccer2", Genre::kSports, 220, "YouTube-UGC", "Presenting the scoreboard after a goal"},
      {"Discus", Genre::kSports, 220, "YouTube-UGC", "A man throwing a discus"},
      {"Wrestling", Genre::kSports, 220, "YouTube-UGC", "Two wrestling players"},
      {"Motor", Genre::kSports, 220, "YouTube-UGC", "Motor racing"},
      {"Tank", Genre::kGaming, 220, "YouTube-UGC", "A tank attacking a house"},
      {"FPS1", Genre::kGaming, 220, "YouTube-UGC", "A first-person shooting game"},
      {"FPS2", Genre::kGaming, 220, "YouTube-UGC", "A player robbing supplies"},
      {"Mountain", Genre::kNature, 84, "LIVE-MOBILE", "Mountain scene"},
      {"Animal", Genre::kNature, 220, "YouTube-UGC", "Warthogs that are bathing and grooming"},
      {"Space", Genre::kNature, 220, "YouTube-UGC",
       "A satellite taking pictures of the Earth"},
      {"Girl", Genre::kAnimation, 220, "YouTube-UGC", "A girl falling off the cliff"},
      {"Lava", Genre::kAnimation, 220, "LIVE-NFLX-II", "A lava is waking up"},
      {"BigBuckBunny", Genre::kAnimation, 596, "WaterlooSQOE-III",
       "A rabbit dealing with three tiny bullies"},
  };
  return kTable;
}

SourceVideo Dataset::generate_entry(const DatasetEntry& e, double chunk_duration_s) {
  return SourceVideo::generate(e.name, e.genre, e.duration_s, e.source_dataset,
                               chunk_duration_s);
}

std::vector<SourceVideo> Dataset::test_set(double chunk_duration_s) {
  std::vector<SourceVideo> videos;
  videos.reserve(table1().size());
  for (const auto& e : table1()) videos.push_back(generate_entry(e, chunk_duration_s));
  return videos;
}

SourceVideo Dataset::by_name(const std::string& name, double chunk_duration_s) {
  for (const auto& e : table1()) {
    if (e.name == name) return generate_entry(e, chunk_duration_s);
  }
  throw std::runtime_error("dataset: unknown video " + name);
}

SourceVideo Dataset::soccer1_clip() {
  // Hand-authored 25-second layout matching Figure 1's annotations.
  util::Rng rng = util::Rng::from_string("Soccer1-clip", 7);
  auto make = [&](SceneKind kind, double motion, double sens) {
    ChunkContent c;
    c.kind = kind;
    c.motion = motion;
    c.complexity = util::clamp(0.55 + rng.normal(0.0, 0.05), 0.1, 1.0);
    c.objectness = util::clamp(0.55 + rng.normal(0.0, 0.05), 0.1, 1.0);
    c.sensitivity = sens;
    return c;
  };
  std::vector<ChunkContent> chunks;
  chunks.push_back(make(SceneKind::kNormal, 0.55, 0.52));      // 0-4 s   normal gameplay
  chunks.push_back(make(SceneKind::kNormal, 0.60, 0.55));      // 4-8 s   normal gameplay
  chunks.push_back(make(SceneKind::kNormal, 0.58, 0.48));      // 8-12 s  normal gameplay
  chunks.push_back(make(SceneKind::kKeyMoment, 0.72, 0.97));   // 12-16 s shoot & goal
  chunks.push_back(make(SceneKind::kReplay, 0.88, 0.40));      // 16-20 s celebrate & replay
  chunks.push_back(make(SceneKind::kReplay, 0.85, 0.36));      // 20-24 s celebrate & replay
  return SourceVideo("Soccer1-clip", Genre::kSports, "LIVE-NFLX-II", std::move(chunks), 4.0);
}

}  // namespace sensei::media
