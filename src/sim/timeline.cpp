#include "sim/timeline.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "sim/player.h"
#include "sim/session_engine.h"

namespace sensei::sim {

const char* to_string(TimelineEventKind kind) {
  switch (kind) {
    case TimelineEventKind::kStartupWait: return "startup";
    case TimelineEventKind::kRttWait: return "rtt";
    case TimelineEventKind::kTransfer: return "transfer";
    case TimelineEventKind::kStall: return "stall";
    case TimelineEventKind::kScheduledPause: return "scheduled-pause";
    case TimelineEventKind::kIdle: return "idle";
    case TimelineEventKind::kRetryWait: return "retry-wait";
    case TimelineEventKind::kBackoff: return "backoff";
  }
  return "?";
}

SessionTimeline::SessionTimeline(double chunk_duration_s, double rtt_s)
    : chunk_duration_s_(chunk_duration_s), rtt_s_(rtt_s) {}

void SessionTimeline::mark_outage(size_t chunk, double wall_s) {
  outcome_ = SessionOutcome::kOutage;
  outage_chunk_ = chunk;
  outage_wall_s_ = wall_s;
}

double SessionTimeline::duration_s() const {
  if (chunks_.empty()) return 0.0;
  return chunks_.back().arrival_wall_s + chunks_.back().idle_s;
}

double SessionTimeline::total_stall_s() const {
  double total = 0.0;
  for (const auto& c : chunks_) total += c.stall_s + c.scheduled_pause_s;
  return total;
}

double SessionTimeline::total_unscheduled_stall_s() const {
  double total = 0.0;
  for (const auto& c : chunks_) total += c.stall_s;
  return total;
}

double SessionTimeline::total_scheduled_pause_s() const {
  double total = 0.0;
  for (const auto& c : chunks_) total += c.scheduled_pause_s;
  return total;
}

double SessionTimeline::total_idle_s() const {
  double total = 0.0;
  for (const auto& c : chunks_) total += c.idle_s;
  return total;
}

double SessionTimeline::first_stall_wall_s() const {
  for (const auto& c : chunks_) {
    if (c.stall_s > 0.0) return c.stall_start_wall_s;
  }
  return -1.0;
}

std::vector<TimelineEvent> SessionTimeline::events() const {
  std::vector<TimelineEvent> out;
  for (const auto& c : chunks_) {
    const bool first = c.chunk == 0;
    const double recovery_s = c.retry_wasted_s + c.backoff_s;
    // Buffer levels at the phase boundaries. Before startup completes the
    // buffer holds media but playback has not begun, so nothing drains.
    double post_recovery = first ? 0.0 : std::max(c.buffer_before_s - recovery_s, 0.0);
    double post_rtt = first ? 0.0 : std::max(c.buffer_before_s - (recovery_s + c.rtt_s), 0.0);
    double post_transfer =
        first ? 0.0
              : std::max(c.buffer_before_s - (recovery_s + c.rtt_s + c.transfer_s), 0.0);
    if (first) {
      out.push_back({TimelineEventKind::kStartupWait, c.chunk, c.request_wall_s,
                     startup_delay_s_, 0.0, 0.0});
    }
    // Recovery spans: consolidated totals (waste then backoff) ahead of the
    // delivering attempt — see the TimelineEventKind comment.
    if (c.retry_wasted_s > 0.0) {
      out.push_back({TimelineEventKind::kRetryWait, c.chunk, c.request_wall_s,
                     c.retry_wasted_s, c.buffer_before_s,
                     first ? 0.0 : std::max(c.buffer_before_s - c.retry_wasted_s, 0.0)});
    }
    if (c.backoff_s > 0.0) {
      out.push_back({TimelineEventKind::kBackoff, c.chunk, c.request_wall_s + c.retry_wasted_s,
                     c.backoff_s,
                     first ? 0.0 : std::max(c.buffer_before_s - c.retry_wasted_s, 0.0),
                     post_recovery});
    }
    if (c.rtt_s > 0.0) {
      out.push_back({TimelineEventKind::kRttWait, c.chunk, c.request_wall_s + recovery_s,
                     c.rtt_s, post_recovery, post_rtt});
    }
    if (c.transfer_s > 0.0) {
      out.push_back({TimelineEventKind::kTransfer, c.chunk,
                     c.request_wall_s + recovery_s + c.rtt_s, c.transfer_s, post_rtt,
                     post_transfer});
    }
    if (c.stall_s > 0.0) {
      out.push_back({TimelineEventKind::kStall, c.chunk, c.stall_start_wall_s, c.stall_s,
                     0.0, 0.0});
    }
    if (c.scheduled_pause_s > 0.0) {
      out.push_back({TimelineEventKind::kScheduledPause, c.chunk, c.arrival_wall_s,
                     c.scheduled_pause_s, post_transfer, post_transfer + c.scheduled_pause_s});
    }
    if (c.idle_s > 0.0) {
      out.push_back({TimelineEventKind::kIdle, c.chunk, c.arrival_wall_s, c.idle_s,
                     c.buffer_after_s + c.idle_s, c.buffer_after_s});
    }
  }
  return out;
}

bool SessionTimeline::check_invariants(std::string* why) const {
  auto violate = [&](size_t chunk, const std::string& what) {
    if (why) {
      std::ostringstream os;
      os << "chunk " << chunk << ": " << what;
      *why = os.str();
    }
    return false;
  };
  const double eps = 1e-9;
  double scheduled_cum = 0.0;
  for (size_t i = 0; i < chunks_.size(); ++i) {
    const auto& c = chunks_[i];
    if (c.chunk != i) return violate(i, "non-consecutive chunk index");
    if (c.rtt_s < 0.0 || c.transfer_s < 0.0 || c.stall_s < 0.0 ||
        c.scheduled_pause_s < 0.0 || c.idle_s < 0.0 || c.retry_wasted_s < 0.0 ||
        c.backoff_s < 0.0) {
      return violate(i, "negative span");
    }
    if (c.buffer_before_s < 0.0 || c.buffer_after_s < 0.0) {
      return violate(i, "negative buffer");
    }
    if (c.retries == 0 && c.retry_wasted_s + c.backoff_s > 0.0) {
      return violate(i, "recovery spans recorded without a retry");
    }
    double dl = c.retry_wasted_s + c.backoff_s + c.rtt_s + c.transfer_s;
    if (std::abs(c.arrival_wall_s - (c.request_wall_s + dl)) > eps * (1.0 + c.arrival_wall_s)) {
      return violate(i, "arrival != request + retry waste + backoff + rtt + transfer");
    }
    if (c.stall_s > 0.0 &&
        std::abs(c.stall_start_wall_s - (c.arrival_wall_s - c.stall_s)) >
            eps * (1.0 + c.arrival_wall_s)) {
      return violate(i, "stall not anchored at arrival - stall");
    }
    if (i > 0) {
      const auto& p = chunks_[i - 1];
      if (std::abs(c.request_wall_s - (p.arrival_wall_s + p.idle_s)) >
          eps * (1.0 + c.request_wall_s)) {
        return violate(i, "request does not continue previous chunk's window");
      }
      if (c.buffer_before_s != p.buffer_after_s) {
        return violate(i, "buffer discontinuity between chunks");
      }
      if (c.playhead_before_s != p.playhead_after_s) {
        return violate(i, "playhead discontinuity between chunks");
      }
    }
    // Media conservation. The credited buffer holds stored media *plus* the
    // outstanding pause debt (a pause is credited at decision time but
    // served later), so: rendered + buffer - debt == media arrived.
    scheduled_cum += c.scheduled_pause_s;
    double arrived = static_cast<double>(i + 1) * chunk_duration_s_;
    if (c.pause_debt_after_s < 0.0 || c.pause_debt_after_s > scheduled_cum + eps) {
      return violate(i, "pause debt exceeds scheduled pauses");
    }
    if (std::abs(c.playhead_after_s + c.buffer_after_s - c.pause_debt_after_s - arrived) >
        1e-6 * (1.0 + arrived)) {
      return violate(i, "playhead + buffer - pause debt != media arrived");
    }
    if (c.playhead_after_s + eps < c.playhead_before_s) {
      return violate(i, "playhead moved backwards");
    }
  }
  if (outcome_ == SessionOutcome::kOutage && outage_chunk_ != chunks_.size()) {
    return violate(outage_chunk_, "outage chunk does not follow the last completed chunk");
  }
  return true;
}

// The monolithic accounting loop this function used to carry lives on as
// sim::SessionEngine, an interruptible state machine whose states execute
// the same statements in the same order — run-to-completion streaming is
// now just the degenerate drive of that machine.
SessionResult stream_timeline(const PlayerConfig& config, const media::EncodedVideo& video,
                              const net::ThroughputTrace& trace, AbrPolicy& policy,
                              const std::vector<double>& weights) {
  SessionEngine engine(config, video, trace, policy, weights);
  return engine.run();
}

}  // namespace sensei::sim
