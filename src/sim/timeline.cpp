#include "sim/timeline.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "sim/player.h"

namespace sensei::sim {

const char* to_string(TimelineEventKind kind) {
  switch (kind) {
    case TimelineEventKind::kStartupWait: return "startup";
    case TimelineEventKind::kRttWait: return "rtt";
    case TimelineEventKind::kTransfer: return "transfer";
    case TimelineEventKind::kStall: return "stall";
    case TimelineEventKind::kScheduledPause: return "scheduled-pause";
    case TimelineEventKind::kIdle: return "idle";
  }
  return "?";
}

SessionTimeline::SessionTimeline(double chunk_duration_s, double rtt_s)
    : chunk_duration_s_(chunk_duration_s), rtt_s_(rtt_s) {}

void SessionTimeline::mark_outage(size_t chunk, double wall_s) {
  outcome_ = SessionOutcome::kOutage;
  outage_chunk_ = chunk;
  outage_wall_s_ = wall_s;
}

double SessionTimeline::duration_s() const {
  if (chunks_.empty()) return 0.0;
  return chunks_.back().arrival_wall_s + chunks_.back().idle_s;
}

double SessionTimeline::total_stall_s() const {
  double total = 0.0;
  for (const auto& c : chunks_) total += c.stall_s + c.scheduled_pause_s;
  return total;
}

double SessionTimeline::total_unscheduled_stall_s() const {
  double total = 0.0;
  for (const auto& c : chunks_) total += c.stall_s;
  return total;
}

double SessionTimeline::total_scheduled_pause_s() const {
  double total = 0.0;
  for (const auto& c : chunks_) total += c.scheduled_pause_s;
  return total;
}

double SessionTimeline::total_idle_s() const {
  double total = 0.0;
  for (const auto& c : chunks_) total += c.idle_s;
  return total;
}

double SessionTimeline::first_stall_wall_s() const {
  for (const auto& c : chunks_) {
    if (c.stall_s > 0.0) return c.stall_start_wall_s;
  }
  return -1.0;
}

std::vector<TimelineEvent> SessionTimeline::events() const {
  std::vector<TimelineEvent> out;
  for (const auto& c : chunks_) {
    const bool first = c.chunk == 0;
    // Buffer levels at the phase boundaries. Before startup completes the
    // buffer holds media but playback has not begun, so nothing drains.
    double post_rtt = first ? 0.0 : std::max(c.buffer_before_s - c.rtt_s, 0.0);
    double post_transfer =
        first ? 0.0 : std::max(c.buffer_before_s - (c.rtt_s + c.transfer_s), 0.0);
    if (first) {
      out.push_back({TimelineEventKind::kStartupWait, c.chunk, c.request_wall_s,
                     startup_delay_s_, 0.0, 0.0});
    }
    if (c.rtt_s > 0.0) {
      out.push_back({TimelineEventKind::kRttWait, c.chunk, c.request_wall_s, c.rtt_s,
                     c.buffer_before_s, post_rtt});
    }
    if (c.transfer_s > 0.0) {
      out.push_back({TimelineEventKind::kTransfer, c.chunk, c.request_wall_s + c.rtt_s,
                     c.transfer_s, post_rtt, post_transfer});
    }
    if (c.stall_s > 0.0) {
      out.push_back({TimelineEventKind::kStall, c.chunk, c.stall_start_wall_s, c.stall_s,
                     0.0, 0.0});
    }
    if (c.scheduled_pause_s > 0.0) {
      out.push_back({TimelineEventKind::kScheduledPause, c.chunk, c.arrival_wall_s,
                     c.scheduled_pause_s, post_transfer, post_transfer + c.scheduled_pause_s});
    }
    if (c.idle_s > 0.0) {
      out.push_back({TimelineEventKind::kIdle, c.chunk, c.arrival_wall_s, c.idle_s,
                     c.buffer_after_s + c.idle_s, c.buffer_after_s});
    }
  }
  return out;
}

bool SessionTimeline::check_invariants(std::string* why) const {
  auto violate = [&](size_t chunk, const std::string& what) {
    if (why) {
      std::ostringstream os;
      os << "chunk " << chunk << ": " << what;
      *why = os.str();
    }
    return false;
  };
  const double eps = 1e-9;
  double scheduled_cum = 0.0;
  for (size_t i = 0; i < chunks_.size(); ++i) {
    const auto& c = chunks_[i];
    if (c.chunk != i) return violate(i, "non-consecutive chunk index");
    if (c.rtt_s < 0.0 || c.transfer_s < 0.0 || c.stall_s < 0.0 ||
        c.scheduled_pause_s < 0.0 || c.idle_s < 0.0) {
      return violate(i, "negative span");
    }
    if (c.buffer_before_s < 0.0 || c.buffer_after_s < 0.0) {
      return violate(i, "negative buffer");
    }
    double dl = c.rtt_s + c.transfer_s;
    if (std::abs(c.arrival_wall_s - (c.request_wall_s + dl)) > eps * (1.0 + c.arrival_wall_s)) {
      return violate(i, "arrival != request + rtt + transfer");
    }
    if (c.stall_s > 0.0 &&
        std::abs(c.stall_start_wall_s - (c.arrival_wall_s - c.stall_s)) >
            eps * (1.0 + c.arrival_wall_s)) {
      return violate(i, "stall not anchored at arrival - stall");
    }
    if (i > 0) {
      const auto& p = chunks_[i - 1];
      if (std::abs(c.request_wall_s - (p.arrival_wall_s + p.idle_s)) >
          eps * (1.0 + c.request_wall_s)) {
        return violate(i, "request does not continue previous chunk's window");
      }
      if (c.buffer_before_s != p.buffer_after_s) {
        return violate(i, "buffer discontinuity between chunks");
      }
      if (c.playhead_before_s != p.playhead_after_s) {
        return violate(i, "playhead discontinuity between chunks");
      }
    }
    // Media conservation. The credited buffer holds stored media *plus* the
    // outstanding pause debt (a pause is credited at decision time but
    // served later), so: rendered + buffer - debt == media arrived.
    scheduled_cum += c.scheduled_pause_s;
    double arrived = static_cast<double>(i + 1) * chunk_duration_s_;
    if (c.pause_debt_after_s < 0.0 || c.pause_debt_after_s > scheduled_cum + eps) {
      return violate(i, "pause debt exceeds scheduled pauses");
    }
    if (std::abs(c.playhead_after_s + c.buffer_after_s - c.pause_debt_after_s - arrived) >
        1e-6 * (1.0 + arrived)) {
      return violate(i, "playhead + buffer - pause debt != media arrived");
    }
    if (c.playhead_after_s + eps < c.playhead_before_s) {
      return violate(i, "playhead moved backwards");
    }
  }
  if (outcome_ == SessionOutcome::kOutage && outage_chunk_ != chunks_.size()) {
    return violate(outage_chunk_, "outage chunk does not follow the last completed chunk");
  }
  return true;
}

SessionResult stream_timeline(const PlayerConfig& config, const media::EncodedVideo& video,
                              const net::ThroughputTrace& trace, AbrPolicy& policy,
                              const std::vector<double>& weights) {
  if (video.num_chunks() == 0) throw std::runtime_error("player: empty video");
  if (!weights.empty() && weights.size() != video.num_chunks())
    throw std::runtime_error("player: weight vector size mismatch");

  policy.begin_session(video);

  const double tau = video.chunk_duration_s();
  const size_t n = video.num_chunks();
  const size_t levels = video.ladder().level_count();

  auto timeline = std::make_shared<SessionTimeline>(tau, config.rtt_s);
  timeline->reserve(n);
  // Cursor over the trace's cumulative-capacity index: the session's wall
  // clock advances monotonically, so the finishing-interval search warm-
  // starts from the previous chunk's position.
  net::TraceCursor link(trace);

  double wall_clock_s = 0.0;
  double buffer_s = 0.0;
  double playhead_s = 0.0;
  double pause_debt_s = 0.0;  // scheduled pause seconds not yet served
  double total_stall_s = 0.0;
  double startup_delay_s = 0.0;
  size_t last_level = 0;
  double last_throughput = 0.0;
  double last_download_time = 0.0;
  std::vector<double> history;
  history.reserve(config.throughput_history_len + 1);

  std::vector<ChunkRecord> records;
  records.reserve(n);
  bool outage = false;

  // One observation reused across the loop: its vectors reach their
  // high-water capacity during the first chunks and the per-chunk refills
  // below never touch the heap again.
  AbrObservation obs;
  obs.num_chunks = n;
  obs.video = &video;
  obs.timeline = timeline.get();
  obs.throughput_history_kbps.reserve(config.throughput_history_len + 1);
  obs.future_weights.reserve(config.weight_horizon);

  for (size_t i = 0; i < n; ++i) {
    obs.next_chunk = i;
    obs.buffer_s = buffer_s;
    obs.last_level = last_level;
    obs.last_throughput_kbps = last_throughput;
    obs.last_download_time_s = last_download_time;
    obs.throughput_history_kbps = history;
    if (!weights.empty()) {
      size_t end = std::min(n, i + config.weight_horizon);
      obs.future_weights.assign(weights.begin() + static_cast<long>(i),
                                weights.begin() + static_cast<long>(end));
    }
    obs.wall_clock_s = wall_clock_s;
    obs.playhead_s = playhead_s;
    obs.total_stall_s = total_stall_s;
    obs.last_rtt_s = i > 0 ? config.rtt_s : 0.0;

    AbrDecision decision = policy.decide(obs);
    if (decision.level >= levels) decision.level = levels - 1;
    double scheduled = std::max(0.0, decision.scheduled_rebuffer_s);

    const auto& rep = video.rep(i, decision.level);

    // RTT first (dead wall clock, no trace capacity), then the transfer.
    net::TransferResult transfer = link.advance(rep.size_bytes, wall_clock_s + config.rtt_s);
    if (!transfer.completed) {
      // The link died: this chunk can never arrive. Truncate the session
      // and surface the outage instead of faking a completed download.
      timeline->mark_outage(i, wall_clock_s);
      outage = true;
      break;
    }
    double dl = config.rtt_s + transfer.elapsed_s;

    ChunkRecord rec;
    rec.index = i;
    rec.level = decision.level;
    rec.bitrate_kbps = rep.bitrate_kbps;
    rec.size_bytes = rep.size_bytes;
    rec.visual_quality = rep.visual_quality;
    rec.download_start_s = wall_clock_s;
    rec.download_time_s = dl;

    ChunkTrajectory traj;
    traj.chunk = i;
    traj.level = decision.level;
    traj.request_wall_s = wall_clock_s;
    traj.rtt_s = config.rtt_s;
    traj.transfer_s = transfer.elapsed_s;
    traj.buffer_before_s = buffer_s;
    traj.playhead_before_s = playhead_s;

    wall_clock_s += dl;
    traj.arrival_wall_s = wall_clock_s;

    // Outstanding scheduled-pause debt (from earlier decisions) freezes
    // playback across this download window before anything else can play.
    double pause_served_in_window = std::min(pause_debt_s, dl);
    pause_debt_s -= pause_served_in_window;

    double stall = 0.0;
    if (i == 0) {
      // Startup: the first chunk's download (and any scheduled pre-roll
      // wait) is join latency, not a stall.
      startup_delay_s = dl + scheduled;
      buffer_s = tau;
    } else {
      // Buffer drains in real time across the whole download (RTT wait
      // included — playback does not know the request is still in flight).
      if (dl > buffer_s) {
        stall = dl - buffer_s;
        buffer_s = 0.0;
      } else {
        buffer_s -= dl;
      }
      traj.stall_s = stall;
      if (stall > 0.0) traj.stall_start_wall_s = traj.arrival_wall_s - stall;
      // Scheduled pause: playback halts, downloads continue — the buffer is
      // credited with the pause and the pause is charged as a stall.
      if (scheduled > 0.0) {
        buffer_s += scheduled;
        stall += scheduled;
        traj.scheduled_pause_s = scheduled;
        pause_debt_s += scheduled;
      }
      buffer_s += tau;
    }
    rec.scheduled_rebuffer_s = (i == 0) ? 0.0 : scheduled;
    rec.rebuffer_s = stall;
    total_stall_s += stall;

    // Buffer cap: the client idles (wall clock advances, buffer drains by the
    // same amount) until there is room for the next chunk.
    if (buffer_s > config.max_buffer_s) {
      double idle = buffer_s - config.max_buffer_s;
      wall_clock_s += idle;
      buffer_s = config.max_buffer_s;
      traj.idle_s = idle;
    }
    rec.buffer_after_s = buffer_s;
    traj.buffer_after_s = buffer_s;

    // Idle time also serves outstanding pause debt (the viewer is frozen
    // either way; whatever remains frozen keeps the buffer from draining).
    double idle_play = traj.idle_s;
    if (pause_debt_s > 0.0 && traj.idle_s > 0.0) {
      double served_in_idle = std::min(pause_debt_s, traj.idle_s);
      pause_debt_s -= served_in_idle;
      idle_play = traj.idle_s - served_in_idle;
    }
    traj.pause_debt_after_s = pause_debt_s;

    // Playhead integration: playback runs across the download window except
    // while stalled (buffer empty) or serving scheduled-pause debt, and
    // across whatever idle time is not pause-frozen. The credited buffer
    // always holds stored media + outstanding debt, so this difference is
    // exactly non-negative; in pause-free sessions it reduces to the
    // conservation identity playhead == media arrived - buffer.
    double play_time =
        i == 0 ? 0.0 : std::max(0.0, dl - traj.stall_s - pause_served_in_window);
    playhead_s += play_time + idle_play;
    traj.playhead_after_s = playhead_s;

    // Goodput over the transfer alone — the RTT consumed no link capacity,
    // so folding it in would bias every predictor low on small chunks.
    last_throughput =
        transfer.elapsed_s > 0.0 ? rep.size_bytes * 8.0 / 1000.0 / transfer.elapsed_s : 0.0;
    traj.goodput_kbps = last_throughput;
    last_download_time = dl;
    last_level = decision.level;
    history.push_back(last_throughput);
    if (history.size() > config.throughput_history_len)
      history.erase(history.begin());

    timeline->push_chunk(traj);
    records.push_back(rec);
  }

  timeline->set_startup_delay(startup_delay_s);

  SessionResult result(video.source().name(), trace.name(), tau, std::move(records),
                       startup_delay_s);
  if (outage) result.set_outcome(SessionOutcome::kOutage);
  result.set_timeline(std::move(timeline));
  return result;
}

}  // namespace sensei::sim
