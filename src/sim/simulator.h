// Multi-session simulator: one event loop interleaving N SessionEngines.
//
// This is the scenario family the single-session Player cannot express:
// many concurrent viewers, arriving staggered over a shared clock, either
// each on a private copy of the network (kDedicated — the control case and
// the Player-equivalence gate) or all contending for one bottleneck
// (kShared — a net::SharedLink splitting each instant's trace capacity
// equally across active downloads).
//
// The loop is a textbook discrete-event scheduler over exact times, not
// fixed ticks: an indexed min-heap (sim/event_queue.h) of engine transition
// times plus the shared link's next-completion estimate. Every iteration
// advances the link to the earliest pending instant, delivers completions
// (in join order), then lets every engine with a transition at that instant
// run its chain —
// deterministic by construction: ties break on session index, completions
// land before same-instant joins (the leaver frees its share first, which
// is what makes "last leaver gets the full link" exact at boundaries), and
// no step depends on heap internals.
//
// Equivalence gate (tests/test_simulator.cpp): a single session driven
// through this loop on a dedicated link emits a SessionResult and
// SessionTimeline bit-identical to Player::stream — across policies,
// traces (looping, finite, outage) and ExperimentRunner thread counts —
// because SessionEngine executes the same statements whether it is sliced
// by this scheduler or driven to completion in one call.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "media/encoder.h"
#include "net/trace.h"
#include "sim/player.h"
#include "sim/session.h"

namespace sensei::net {
class FaultPlan;
}

namespace sensei::sim {

// Typed livelock diagnosis: an event loop made no progress across two
// iterations pinned at the same simulated instant, which can never resolve.
// Thrown by Simulator::run and FleetSimulator cells instead of spinning;
// carries the stuck session's index (spec order / cell-local ordinal) and
// the simulated time so the failure names its culprit.
class LivelockError : public std::runtime_error {
 public:
  LivelockError(const std::string& loop, size_t stuck_session, double sim_time_s);
  size_t stuck_session() const { return stuck_session_; }
  double sim_time_s() const { return sim_time_s_; }

 private:
  size_t stuck_session_;
  double sim_time_s_;
};

// How sessions see the network.
enum class LinkMode {
  kDedicated,  // each session integrates the trace privately (no contention)
  kShared,     // all sessions split one net::SharedLink's capacity
};

const char* to_string(LinkMode mode);

// One viewer: a video, a per-session policy instance (never shared across
// sessions — policies carry mutable state), optional sensitivity weights,
// and the absolute arrival time of the first request. All pointers must
// outlive Simulator::run.
struct SessionSpec {
  const media::EncodedVideo* video = nullptr;
  AbrPolicy* policy = nullptr;
  const std::vector<double>* weights = nullptr;  // nullable
  double start_s = 0.0;
  // Viewer abandonment: the session ends (kCompleted) after downloading this
  // many chunks even if the video has more. SIZE_MAX: watches to the end.
  size_t chunk_limit = static_cast<size_t>(-1);
};

struct MultiSessionResult {
  double start_s = 0.0;   // when the session joined the simulation
  SessionResult session;  // timestamps session-relative, as Player emits them
};

class Simulator {
 public:
  explicit Simulator(PlayerConfig config = PlayerConfig());

  const PlayerConfig& config() const { return config_; }

  // Runs every session to completion (or outage) and returns results in
  // spec order. Deterministic: same specs + trace (+ fault plan) -> same
  // results, regardless of how sessions interleave in wall-clock terms.
  // `faults` (nullable) injects a net::FaultPlan: capacity faults are
  // materialized onto the trace before any session starts, RTT spikes are
  // queried by the engines per request. It must outlive the call.
  std::vector<MultiSessionResult> run(const std::vector<SessionSpec>& specs,
                                      const net::ThroughputTrace& trace,
                                      LinkMode mode = LinkMode::kShared,
                                      const net::FaultPlan* faults = nullptr) const;

 private:
  PlayerConfig config_;
};

// Spec builder: N staggered sessions (session k arrives at k * stagger_s),
// cycling videos — each with its paired weights vector, when `weights` is
// non-empty (then it must be videos.size() long) — over the supplied pools;
// `policies` carries one instance per session. Replaces the old
// three-parallel-vector staggered_specs() signature, whose call sites were
// one positional mix-up away from streaming a video under another's
// weights.
struct StaggeredSpecs {
  std::vector<const media::EncodedVideo*> videos;  // cycled round-robin
  std::vector<AbrPolicy*> policies;                // exactly one per session
  std::vector<const std::vector<double>*> weights;  // empty, or 1:1 with videos
  size_t num_sessions = 0;
  double stagger_s = 0.0;
  // Applied to every session (viewer abandonment; SIZE_MAX = full video).
  size_t chunk_limit = static_cast<size_t>(-1);

  std::vector<SessionSpec> build() const;
};

}  // namespace sensei::sim
