// Seeded fleet workload generator: who arrives when, watching what, under
// which policy, on what kind of bottleneck.
//
// A fleet run (sim/fleet.h) is many independent bottleneck cells, each fed a
// stream of session arrivals. This generator produces that stream lazily —
// one SessionArrival at a time, in nondecreasing start order — so a
// million-session run never materializes an arrival list. Everything is
// drawn from one seeded util::Rng in a fixed per-arrival order
// (inter-arrival gap, video, policy, abandonment), which is what makes a
// cell's workload a pure function of (config, seed): the determinism the
// fleet's cross-thread/cross-shard bit-identity gates build on.
//
// Models (standard in trace-driven CDN/ABR studies):
//  - Poisson arrivals: exponential inter-arrival gaps at a fixed rate.
//  - Diurnal arrivals: a thinned Poisson process whose acceptance follows a
//    raised-cosine day curve between a trough fraction and the peak rate.
//  - Abandonment: a fraction of viewers leave early, watching an
//    exponentially distributed number of chunks (at least one).
//  - Policy mix: each viewer runs one abr::PolicyRegistry spec drawn from a
//    weighted mix (any registered policy at any configuration — the default
//    mix pairs the cheap index policies with Fugu's fleet-scale vi planner).
//  - Bottleneck: each cell gets its own net::TraceGenerator trace (cellular
//    or broadband, mean drawn from the paper's 0.2-6 Mbps band) from an
//    independent stream derived off the same seed, so reordering arrival
//    draws can never reshape the network.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/trace.h"
#include "util/rng.h"

namespace sensei::sim {

enum class ArrivalProcess {
  kPoisson,  // constant rate
  kDiurnal,  // raised-cosine day curve, thinned from the peak rate
};

const char* to_string(ArrivalProcess process);

// One entry of the workload's policy mix: a registry spec string (see
// abr/registry.h for the grammar) with a relative draw weight.
struct PolicyMixEntry {
  std::string spec;
  double weight = 1.0;
};

struct WorkloadConfig {
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  // Poisson: the constant arrival rate. Diurnal: the peak (midday) rate;
  // the instantaneous rate swings between trough * peak and peak.
  double arrival_rate_per_s = 0.5;
  // Arrivals occur in [0, arrival_window_s); sessions run to completion.
  double arrival_window_s = 600.0;
  // Diurnal shape: rate(t) = peak * (trough + (1 - trough) *
  // 0.5 * (1 - cos(2 pi t / period))) — t = 0 is the trough.
  double diurnal_period_s = 600.0;
  double diurnal_trough = 0.2;  // trough rate as a fraction of peak, in [0, 1]
  // Viewer abandonment: this fraction of sessions stops after an
  // Exponential(mean_abandon_chunks) number of chunks (>= 1); the rest
  // watch to the end.
  double abandon_fraction = 0.25;
  double mean_abandon_chunks = 20.0;
  // Weighted policy-spec mix viewers draw from. The Whittle index policy is
  // the cheap default workhorse; Fugu runs the discretized-VI planner, the
  // fleet-scale MPC mode.
  std::vector<PolicyMixEntry> policy_mix = {{"bba", 0.3},
                                            {"rate_based", 0.2},
                                            {"whittle", 0.3},
                                            {"fugu:planner=vi", 0.2}};
  // Videos are drawn uniformly from a pool of this size; the fleet maps the
  // index into whatever video set the caller built.
  size_t num_videos = 1;
  // Per-cell bottleneck trace (make_trace): cellular with this probability,
  // broadband otherwise; mean throughput uniform in [min, max] — the
  // paper's evaluation band scaled to per-cell contention.
  double trace_cellular_fraction = 0.5;
  double trace_mean_kbps_min = 1000.0;
  double trace_mean_kbps_max = 6000.0;
  double trace_duration_s = 400.0;  // generated period; traces loop
};

// One viewer, ready to hand to the fleet's session pool.
struct SessionArrival {
  double start_s = 0.0;
  size_t video_index = 0;  // into the caller's video pool
  size_t policy_index = 0;  // into WorkloadConfig::policy_mix
  // Chunks watched before leaving; SIZE_MAX = watches to the end
  // (sim::SessionSpec / SessionEngine semantics).
  size_t chunk_limit = static_cast<size_t>(-1);
};

class WorkloadGenerator {
 public:
  // Throws on nonsensical configs (non-positive rate or window, empty or
  // non-positive policy mix, a policy spec the registry rejects, trough
  // outside [0, 1], empty video pool).
  WorkloadGenerator(const WorkloadConfig& config, uint64_t seed);

  // Writes the next arrival and returns true, or returns false when the
  // arrival window has closed (the stream is exhausted; `out` untouched).
  bool next(SessionArrival* out);

  size_t generated() const { return count_; }
  const WorkloadConfig& config() const { return config_; }

  // Canonical registry spec per policy-mix entry (validated and
  // canonicalized at construction): canonical_policy_specs()[i] is what
  // SessionArrival::policy_index == i denotes. Distinct entries may
  // canonicalize to the same string; pooling layers dedup on it.
  const std::vector<std::string>& canonical_policy_specs() const { return canonical_specs_; }

  // The cell's bottleneck trace, drawn from an independent stream derived
  // from the same seed — calling it any number of times, before or after
  // any number of next() calls, always yields the same trace.
  net::ThroughputTrace make_trace(const std::string& name) const;

 private:
  WorkloadConfig config_;
  util::Rng rng_;
  std::vector<std::string> canonical_specs_;
  std::vector<double> mix_weights_;
  uint64_t seed_ = 0;
  double t_ = 0.0;
  size_t count_ = 0;
};

}  // namespace sensei::sim
