#include "sim/manifest.h"

#include <sstream>
#include <stdexcept>

namespace sensei::sim {

namespace {

std::string escape_xml(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out += ch;
    }
  }
  return out;
}

std::string unescape_xml(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size();) {
    if (s[i] != '&') {
      out += s[i++];
      continue;
    }
    if (s.compare(i, 4, "&lt;") == 0) { out += '<'; i += 4; }
    else if (s.compare(i, 4, "&gt;") == 0) { out += '>'; i += 4; }
    else if (s.compare(i, 5, "&amp;") == 0) { out += '&'; i += 5; }
    else if (s.compare(i, 6, "&quot;") == 0) { out += '"'; i += 6; }
    else { out += s[i++]; }
  }
  return out;
}

// Extracts the text between the first occurrence of `open` and the following
// `close`; returns false if either is missing.
bool extract_between(const std::string& doc, const std::string& open, const std::string& close,
                     std::string* out, size_t from = 0) {
  size_t a = doc.find(open, from);
  if (a == std::string::npos) return false;
  a += open.size();
  size_t b = doc.find(close, a);
  if (b == std::string::npos) return false;
  *out = doc.substr(a, b - a);
  return true;
}

// Extracts the value of attribute `attr` in the first occurrence of tag
// `tag`; returns false if missing.
bool extract_attr(const std::string& doc, const std::string& tag, const std::string& attr,
                  std::string* out, size_t from = 0) {
  size_t t = doc.find("<" + tag, from);
  if (t == std::string::npos) return false;
  size_t end = doc.find('>', t);
  if (end == std::string::npos) return false;
  std::string element = doc.substr(t, end - t);
  size_t a = element.find(attr + "=\"");
  if (a == std::string::npos) return false;
  a += attr.size() + 2;
  size_t b = element.find('"', a);
  if (b == std::string::npos) return false;
  *out = element.substr(a, b - a);
  return true;
}

std::vector<double> parse_number_list(const std::string& text) {
  std::vector<double> values;
  std::istringstream is(text);
  std::string token;
  while (is >> token) {
    values.push_back(std::stod(token));
  }
  return values;
}

}  // namespace

std::string Manifest::to_xml() const {
  std::ostringstream os;
  os.precision(17);  // weights must survive the round trip losslessly
  os << "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n";
  os << "<MPD type=\"static\" mediaPresentationDuration=\"PT"
     << chunk_duration_s * static_cast<double>(num_chunks) << "S\">\n";
  os << "  <Period>\n";
  os << "    <AdaptationSet contentType=\"video\" name=\"" << escape_xml(video_name)
     << "\" chunkDuration=\"" << chunk_duration_s << "\" numChunks=\"" << num_chunks
     << "\">\n";
  for (double b : bitrates_kbps) {
    os << "      <Representation bandwidth=\"" << static_cast<long long>(b * 1000.0)
       << "\"/>\n";
  }
  if (!weights.empty()) {
    // The SENSEI extension: one weight per chunk, space separated.
    os << "      <SenseiWeights count=\"" << weights.size() << "\">";
    for (size_t i = 0; i < weights.size(); ++i) {
      os << (i ? " " : "") << weights[i];
    }
    os << "</SenseiWeights>\n";
  }
  os << "    </AdaptationSet>\n";
  os << "  </Period>\n";
  os << "</MPD>\n";
  return os.str();
}

Manifest Manifest::from_xml(const std::string& xml) {
  Manifest m;
  std::string value;
  if (!extract_attr(xml, "AdaptationSet", "name", &value))
    throw std::runtime_error("manifest: missing AdaptationSet name");
  m.video_name = unescape_xml(value);
  if (!extract_attr(xml, "AdaptationSet", "chunkDuration", &value))
    throw std::runtime_error("manifest: missing chunkDuration");
  m.chunk_duration_s = std::stod(value);
  if (!extract_attr(xml, "AdaptationSet", "numChunks", &value))
    throw std::runtime_error("manifest: missing numChunks");
  m.num_chunks = static_cast<size_t>(std::stoul(value));

  size_t pos = 0;
  while (true) {
    size_t t = xml.find("<Representation", pos);
    if (t == std::string::npos) break;
    std::string bw;
    if (!extract_attr(xml, "Representation", "bandwidth", &bw, t))
      throw std::runtime_error("manifest: representation without bandwidth");
    m.bitrates_kbps.push_back(std::stod(bw) / 1000.0);
    pos = t + 1;
  }
  if (m.bitrates_kbps.empty()) throw std::runtime_error("manifest: no representations");

  std::string weights_text;
  if (extract_between(xml, ">", "</SenseiWeights>", &weights_text,
                      xml.find("<SenseiWeights") != std::string::npos
                          ? xml.find("<SenseiWeights")
                          : std::string::npos)) {
    m.weights = parse_number_list(weights_text);
    if (m.weights.size() != m.num_chunks)
      throw std::runtime_error("manifest: weight count mismatch");
  }
  return m;
}

}  // namespace sensei::sim
