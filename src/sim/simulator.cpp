#include "sim/simulator.h"

#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "abr/planner.h"
#include "net/fault.h"
#include "net/shared_link.h"
#include "sim/event_queue.h"
#include "sim/session_engine.h"

namespace sensei::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

LivelockError::LivelockError(const std::string& loop, size_t stuck_session, double sim_time_s)
    : std::runtime_error(loop + ": event loop stalled (no progress at t=" +
                         std::to_string(sim_time_s) + ", stuck session " +
                         std::to_string(stuck_session) + ")"),
      stuck_session_(stuck_session),
      sim_time_s_(sim_time_s) {}

const char* to_string(LinkMode mode) {
  switch (mode) {
    case LinkMode::kDedicated: return "dedicated";
    case LinkMode::kShared: return "shared";
  }
  return "?";
}

Simulator::Simulator(PlayerConfig config) : config_(config) {
  if (config_.max_buffer_s <= 0.0)
    throw std::runtime_error("simulator: max buffer must be > 0");
}

std::vector<MultiSessionResult> Simulator::run(const std::vector<SessionSpec>& specs,
                                               const net::ThroughputTrace& trace,
                                               LinkMode mode,
                                               const net::FaultPlan* faults) const {
  // Capacity faults are materialized onto the trace before anything runs
  // (net/fault.h); only the RTT spikes need the live plan, via the engines.
  const net::ThroughputTrace* net_trace = &trace;
  net::ThroughputTrace faulted;
  if (faults != nullptr && !faults->empty()) {
    faulted = faults->apply_to_trace(trace);
    net_trace = &faulted;
  }

  const std::vector<double> no_weights;
  std::optional<net::SharedLink> link;
  if (mode == LinkMode::kShared) link.emplace(*net_trace);

  std::vector<std::unique_ptr<SessionEngine>> engines;
  engines.reserve(specs.size());
  for (const SessionSpec& spec : specs) {
    if (spec.video == nullptr || spec.policy == nullptr)
      throw std::runtime_error("simulator: session spec needs a video and a policy");
    // A negative start would be silently clamped to 0 by the trace
    // integrator (misreporting contention), and a NaN start would strand
    // the engine outside the event heap: both fail loudly instead.
    if (!std::isfinite(spec.start_s) || spec.start_s < 0.0)
      throw std::runtime_error("simulator: session start must be finite and >= 0");
    const std::vector<double>& w = spec.weights != nullptr ? *spec.weights : no_weights;
    if (link) {
      engines.push_back(std::make_unique<SessionEngine>(config_, *spec.video, *link,
                                                        *spec.policy, w, spec.start_s));
    } else {
      engines.push_back(std::make_unique<SessionEngine>(config_, *spec.video, *net_trace,
                                                        *spec.policy, w, spec.start_s));
    }
    engines.back()->set_chunk_limit(spec.chunk_limit);
    // Stable per-session jitter identity (spec order); the live plan reaches
    // the engines for RTT spikes (nullptr detaches — the common case).
    engines.back()->set_session_tag(engines.size() - 1);
    engines.back()->set_fault_plan(faults);
  }

  // One pool of static planning tables shared by every session in this run:
  // N concurrent Fugu sessions on the same ladder build their chunk-size /
  // quality tables once instead of N times per decision. Attaching never
  // changes a decision (planners read the exact values they would compute
  // locally), and the guard detaches on every exit — including the livelock
  // throw below — so a policy reused after run() never dangles into a dead
  // batch.
  abr::PlanBatch batch;
  struct BatchGuard {
    std::vector<std::unique_ptr<SessionEngine>>* engines = nullptr;
    ~BatchGuard() {
      if (engines == nullptr) return;
      for (auto& engine : *engines) engine->attach_plan_batch(nullptr);
    }
  } batch_guard;
  if (config_.share_plan_tables) {
    batch_guard.engines = &engines;
    for (auto& engine : engines) engine->attach_plan_batch(&batch);
  }

  // Indexed min-heap of transition times: each engine holds one slot, moved
  // in place as its next_event_time() changes (+infinity leaves the heap).
  // Ties surface in session-index order — the deterministic tie-break the
  // thread-count/diff gates rely on — exactly as the lazy heap this
  // replaces popped them, without its stale-entry rescans (the measured
  // 400 -> 1000-session droop) or its per-push allocations.
  EventQueue events;
  events.ensure_size(engines.size());
  auto push_engine = [&](size_t idx) {
    events.update(idx, engines[idx]->next_event_time());
  };
  for (size_t i = 0; i < engines.size(); ++i) push_engine(i);
  size_t remaining = engines.size();

  // transfer id -> session index, recorded as transfers join the link.
  std::vector<size_t> transfer_owner;
  auto record_join = [&](size_t idx) {
    if (!link || engines[idx]->state() != SessionEngine::State::kTransferring) return;
    size_t id = engines[idx]->transfer_id();
    if (transfer_owner.size() <= id) transfer_owner.resize(id + 1, engines.size());
    transfer_owner[id] = idx;
  };

  double prev_t = -kInf;
  bool prev_was_noop = false;
  while (remaining > 0) {
    double t_engines = events.min_time();
    double t_link = link ? link->next_completion_s() : kInf;
    double t = std::min(t_engines, t_link);

    if (t == kInf) {
      // No event can ever fire again: every unfinished session is waiting on
      // a transfer the shared link can never deliver (dead link). Surface
      // the outage exactly as a dedicated dead link does at request time.
      for (auto& engine : engines) {
        if (!engine->done()) {
          engine->fail_transfer();
          --remaining;
        }
      }
      break;
    }

    size_t processed = 0;
    if (link) {
      // Completions land before same-instant engine events: the leaver
      // frees its share before anyone joining at t sees the link.
      link->advance_to(t);
      for (const net::SharedLink::Completion& completion : link->completions_sorted()) {
        ++processed;
        size_t idx = transfer_owner[completion.id];
        engines[idx]->complete_transfer(completion.finish_s);
        // Re-push unconditionally: a transferring engine parks at its attempt
        // deadline (finite with resilience), and a completion that finishes
        // the session must clear that stale entry or the deadline pops later
        // against a done engine and double-counts the retirement.
        push_engine(idx);
        if (engines[idx]->done()) --remaining;
      }
      link->clear_completions();
    }

    // Every engine transition scheduled at t, in session-index order. A
    // chain may end in a join (kRtt expiring at t with rtt 0), which is
    // legal because the link already sits at t.
    while (!events.empty() && events.min_time() <= t) {
      size_t idx = events.min_index();
      engines[idx]->advance_to(t);
      ++processed;
      push_engine(idx);  // done() or in-flight transfers park at +infinity
      if (engines[idx]->done()) {
        --remaining;
      } else {
        record_join(idx);
      }
    }

    // Livelock sentinel. A no-op iteration is legal once (the link predicted
    // a completion whose drain fell an epsilon short), but time must then
    // move; two stuck iterations at the same instant can never resolve, so
    // fail loudly — naming the stuck session and instant — instead of
    // spinning.
    if (processed == 0 && prev_was_noop && t == prev_t) {
      size_t stuck = engines.size();
      for (size_t i = 0; i < engines.size(); ++i) {
        if (!engines[i]->done()) {
          stuck = i;
          break;
        }
      }
      throw LivelockError("simulator", stuck, t);
    }
    prev_was_noop = processed == 0;
    prev_t = t;
  }

  std::vector<MultiSessionResult> results;
  results.reserve(engines.size());
  for (size_t i = 0; i < engines.size(); ++i) {
    results.push_back({specs[i].start_s, engines[i]->take_result()});
  }
  return results;
}

std::vector<SessionSpec> StaggeredSpecs::build() const {
  if (videos.empty()) throw std::runtime_error("simulator: no videos");
  if (policies.size() != num_sessions)
    throw std::runtime_error("simulator: one policy instance per session is required");
  // Weights are per-video sensitivity vectors: they must pair 1:1 with the
  // video pool and cycle on the same index, or a session would stream one
  // video under another's weights (silently, whenever chunk counts match).
  if (!weights.empty() && weights.size() != videos.size())
    throw std::runtime_error("simulator: weights pool must pair 1:1 with the video pool");
  std::vector<SessionSpec> specs(num_sessions);
  for (size_t k = 0; k < num_sessions; ++k) {
    size_t v = k % videos.size();
    specs[k].video = videos[v];
    specs[k].policy = policies[k];
    specs[k].weights = weights.empty() ? nullptr : weights[v];
    specs[k].start_s = stagger_s * static_cast<double>(k);
    specs[k].chunk_limit = chunk_limit;
  }
  return specs;
}

}  // namespace sensei::sim
