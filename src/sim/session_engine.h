// Resumable streaming-session engine.
//
// SessionEngine is the event-driven session timeline of sim/timeline.h
// decomposed into an explicit, interruptible state machine so a central
// scheduler (sim::Simulator) can interleave many concurrent sessions over a
// shared clock. One engine owns everything the monolithic loop owned — the
// ABR observation buffers, the throughput history ring, the trace cursor,
// the in-flight chunk's record and trajectory — and exposes the session as
// a sequence of timed transitions:
//
//   kRequesting --(decide)--> kRtt --(request dead time)--> kTransferring
//        ^                                                      |
//        |                                              (last byte lands)
//        +------- kArrived (accounting + buffer-cap idle) <-----+
//                     |
//                     +--> kDone (all chunks) / kOutage (link died)
//
// With PlayerConfig::resilience enabled, a request attempt that misses its
// deadline detours through the recovery loop instead of ending the session:
//
//   kRtt/kTransferring --(deadline)--> kTimedOut --> kBackoff --> kRetrying
//                                          |                         |
//                               (budget exhausted)          (re-request, one
//                                          |                 rung lower)
//                                       kOutage  <-----------> kRtt ...
//
// Each failed attempt burns exactly the timeout as wall clock (RTT +
// partial transfer), the backoff wait is exponential with deterministic
// jitter, and the chunk's ChunkTrajectory carries the recovery spans so the
// conservation law (arrival == request + retry waste + backoff + rtt +
// transfer) still holds. kOutage is reached only when the bounded retry
// budget is exhausted (OutcomeCause::kTimeoutBudget) or the link is dead
// with no resilience armed (OutcomeCause::kDeadLink). With the default
// (disabled) ResilienceConfig every expression the engine evaluates is the
// pre-resilience one, bit for bit.
//
// Driving contract: next_event_time() is the absolute simulation time of
// the next self-driven transition; advance_to(t) performs every transition
// scheduled at or before t. On a dedicated link the engine integrates its
// own transfers (a TraceCursor over the trace index), so every state has a
// finite next event. On a net::SharedLink the transfer's finish depends on
// who else is on the link: the engine reports +infinity while
// kTransferring and the driver delivers the link's verdict through
// complete_transfer() / fail_transfer().
//
// Equivalence is the load-bearing property: however advance_to slices the
// session — one call to run(), or thousands of interleaved event-step calls
// from a Simulator — the emitted SessionResult and SessionTimeline are
// bit-identical to the monolithic loop this replaces, because each state
// executes the exact statements (same expressions, same order) of the
// original loop body. Player::stream and stream_timeline are now thin
// run-to-completion wrappers over this class; tests/test_simulator.cpp
// gates Simulator-driven sessions against them, and the legacy-vs-timeline
// gate of tests/test_timeline.cpp pins the numbers themselves.
#pragma once

#include <memory>
#include <vector>

#include "media/encoder.h"
#include "net/trace.h"
#include "sim/player.h"
#include "sim/session.h"
#include "sim/timeline.h"

namespace sensei::net {
class FaultPlan;
class SharedLink;
}

namespace sensei::sim {

class SessionEngine {
 public:
  enum class State {
    kRequesting,    // next chunk's request not yet issued
    kRtt,           // request in flight: dead time, no trace capacity
    kTransferring,  // bytes on the wire
    kArrived,       // chunk landed; serving any buffer-cap idle
    kTimedOut,      // an attempt missed its deadline; retry decision pending
    kBackoff,       // waiting out the retry backoff / failover reconnect
    kRetrying,      // backoff served; the chunk is about to be re-requested
    kDone,          // every chunk downloaded
    kOutage,        // link died / retry budget exhausted; result truncated
  };

  // Dedicated link: the engine integrates `trace` itself. `video`, `trace`,
  // `policy`, and `weights` must outlive the engine (the same lifetimes
  // Player::stream requires of its arguments for the duration of the call).
  // `start_s` places the session's first request on the absolute simulation
  // clock; the emitted timeline stays session-relative, exactly as
  // Player::stream emits it.
  SessionEngine(const PlayerConfig& config, const media::EncodedVideo& video,
                const net::ThroughputTrace& trace, AbrPolicy& policy,
                const std::vector<double>& weights, double start_s = 0.0);

  // Shared link: transfers contend on `link`; the driver owns transfer
  // completion (complete_transfer / fail_transfer).
  SessionEngine(const PlayerConfig& config, const media::EncodedVideo& video,
                net::SharedLink& link, AbrPolicy& policy, const std::vector<double>& weights,
                double start_s = 0.0);

  State state() const { return state_; }
  bool done() const { return state_ == State::kDone || state_ == State::kOutage; }
  double start_s() const { return start_abs_s_; }
  size_t next_chunk() const { return next_chunk_; }

  // Viewer abandonment: end the session (kDone, outcome kCompleted) after
  // `limit` chunks even if the video has more. Clamped to [1, num_chunks];
  // SIZE_MAX (the default) watches to the end. Call before the first
  // transition — the limit is a property of the viewer, not a mid-session
  // control channel.
  void set_chunk_limit(size_t limit);

  // Forwards a shared planning-table pool to the session's policy.
  // sim::Simulator attaches one batch per run and detaches (nullptr) before
  // the run returns, so the policy never outlives the tables it reads.
  void attach_plan_batch(abr::PlanBatch* batch) { policy_->attach_plan_batch(batch); }

  // Identity salt for the deterministic backoff jitter (mixed with the
  // chunk and attempt indices). Drivers set it to the session's stable
  // ordinal so realizations are decorrelated across sessions yet identical
  // across threads/shards. Call before the first transition.
  void set_session_tag(uint64_t tag);

  // Optional fault plan (nullable): the engine queries rtt_extra_s() at
  // each request instant (capacity faults ride the materialized trace, not
  // the engine). `plan` must outlive the session. Call before the first
  // transition; cleared by reset().
  void set_fault_plan(const net::FaultPlan* plan);

  // Absolute time of the next self-driven transition; +infinity when done,
  // or while a shared-link transfer is in flight (the link owns that event).
  double next_event_time() const { return next_event_abs_s_; }

  // Performs every transition scheduled at or before absolute time `t`.
  void advance_to(double t);

  // Performs exactly one transition (the one at next_event_time()) — the
  // single-step drive, for callers that want to observe every state a
  // session passes through, including the transient ones advance_to chains
  // across (a zero-idle kArrived, a zero-RTT kRtt).
  void step();

  // --- shared-link driver interface ---------------------------------------
  // Valid while kTransferring on a shared link: the id link.begin returned.
  size_t transfer_id() const { return transfer_id_; }
  // The link delivered the last byte at absolute time `finish_abs_s`:
  // performs the arrival accounting and re-enters the request loop.
  void complete_transfer(double finish_abs_s);
  // The link can never deliver the in-flight transfer: truncates the
  // session as an outage, exactly as a dedicated dead link does.
  void fail_transfer();

  // Cell failover (fleet): rebind the session to `link`. A request in
  // flight (kRtt / kTransferring) died with the old cell — its span so far
  // is charged as retry waste, the reconnection delay as backoff, and the
  // chunk is re-requested at its current rung on the new link; a failover
  // is not congestion evidence, so it neither drops the rung nor spends the
  // retry budget. Sessions between requests just reconnect. `now_abs_s` is
  // the failover instant (the driver has advanced the engine to it).
  void rehome(net::SharedLink& link, double reconnect_delay_s, double now_abs_s);

  // Drives the session to completion and returns the result. Requires a
  // dedicated link (a shared-link engine waits on its driver).
  SessionResult run();

  // Valid once done(), once: the finished session, identical to what
  // Player::stream would have returned. The SessionResult (strings, record
  // vector) is materialized here, not during the run — fleet callers that
  // fold aggregates straight from records() never pay for it. Throws on a
  // second take (the records move out) and while the session is in flight.
  SessionResult take_result();

  // --- aggregation-without-materialization interface -----------------------
  // Everything a streaming aggregator needs, readable once done() without
  // building a SessionResult. records() is also valid mid-session (the
  // chunks downloaded so far).
  const std::vector<ChunkRecord>& records() const { return records_; }
  SessionOutcome outcome() const {
    return state_ == State::kOutage ? SessionOutcome::kOutage : SessionOutcome::kCompleted;
  }
  // Typed cause behind outcome(): kDeadLink / kTimeoutBudget for outages,
  // kAbandoned for chunk-limited sessions, kNone for full completions.
  OutcomeCause outcome_cause() const {
    if (state_ == State::kOutage) return outage_cause_;
    return end_chunk_ < n_ ? OutcomeCause::kAbandoned : OutcomeCause::kNone;
  }
  // Where the session stopped: the failed chunk (outage) or the first chunk
  // never requested (abandonment / completion).
  size_t failed_chunk() const { return state_ == State::kOutage ? next_chunk_ : end_chunk_; }
  double startup_delay_s() const { return startup_delay_s_; }
  double total_stall_s() const { return total_stall_s_; }
  double wall_clock_s() const { return wall_clock_s_; }

  // --- resilience counters (session-scoped, reset by reset()) -------------
  size_t timeouts() const { return timeouts_; }              // attempts that missed a deadline
  size_t retries() const { return retries_; }                // retry attempts issued
  size_t recovered_chunks() const { return recovered_chunks_; }  // chunks delivered after >=1 reattempt
  size_t failovers() const { return failovers_; }            // rehome() calls on this session

  // Rebinds a finished (or fresh) engine to a new session, reusing every
  // buffer whose capacity the previous sessions grew — the fleet free-pool
  // primitive: after an engine has seen its longest video, reset() performs
  // no allocation when config.record_timeline is false (a fresh timeline is
  // unavoidable when recording: the previous result may still share it).
  // Shared-link form only — fleet cells drive engines through a SharedLink.
  // Same lifetime rules as the constructor; `chunk_limit` as set_chunk_limit.
  void reset(const media::EncodedVideo& video, net::SharedLink& link, AbrPolicy& policy,
             const std::vector<double>& weights, double start_s,
             size_t chunk_limit = static_cast<size_t>(-1));

 private:
  void init(const PlayerConfig& config, const std::vector<double>& weights, double start_s);
  void issue_request();    // kRequesting: decide + integrate (dedicated)
  void issue_retry();      // kRetrying: re-request the in-flight chunk
  void begin_transfer();   // kRtt expiry: first byte may move
  void finish_chunk();     // arrival accounting (the monolithic loop's tail)
  void enter_timed_out();  // the deadline fired: book the wasted attempt
  void resolve_timeout();  // kTimedOut: retry (backoff) or give up (outage)
  void mark_outage();      // truncate at the in-flight chunk
  void finalize();         // end-of-session timeline bookkeeping
  // Attempt plumbing: RTT at an absolute request instant (fault-plan aware)
  // and the deadline for the attempt starting then.
  double request_rtt_s(double attempt_start_abs_s) const;
  void arm_deadline();
  // Backoff before retry `attempt` (1-based): exponential, capped,
  // deterministically jittered from (jitter_seed, session tag, chunk,
  // attempt).
  double backoff_wait_s(size_t attempt) const;

  PlayerConfig config_;
  const media::EncodedVideo* video_ = nullptr;
  AbrPolicy* policy_ = nullptr;
  const std::vector<double>* weights_ = nullptr;  // nullable (weight-unaware)
  net::TraceCursor cursor_;                       // dedicated link
  net::SharedLink* link_ = nullptr;               // shared link

  State state_ = State::kRequesting;
  double start_abs_s_ = 0.0;      // absolute time of the session's epoch
  double next_event_abs_s_ = 0.0;

  // Session accumulators — field for field the monolithic loop's locals.
  double tau_ = 0.0;
  size_t n_ = 0;
  size_t levels_ = 0;
  size_t chunk_limit_ = static_cast<size_t>(-1);  // viewer abandonment (raw)
  size_t end_chunk_ = 0;                          // min(n_, max(1, chunk_limit_))
  double wall_clock_s_ = 0.0;  // session-relative, like the emitted timeline
  double buffer_s_ = 0.0;
  double playhead_s_ = 0.0;
  double pause_debt_s_ = 0.0;
  double total_stall_s_ = 0.0;
  double startup_delay_s_ = 0.0;
  size_t last_level_ = 0;
  double last_throughput_ = 0.0;
  double last_download_time_ = 0.0;
  std::vector<double> history_;
  std::vector<ChunkRecord> records_;
  std::shared_ptr<SessionTimeline> timeline_;
  AbrObservation obs_;
  size_t next_chunk_ = 0;

  // In-flight chunk state, populated at kRequesting and consumed at arrival.
  const media::EncodedChunk* rep_ = nullptr;
  double scheduled_ = 0.0;
  double dl_s_ = 0.0;                 // retry waste + backoff + rtt + transfer wall time
  double transfer_elapsed_s_ = 0.0;   // wire time alone (delivering attempt)
  double transfer_start_abs_s_ = 0.0;
  size_t transfer_id_ = 0;
  ChunkRecord rec_;
  ChunkTrajectory traj_;

  // Resilience state. With the default (disabled) ResilienceConfig:
  // cur_rtt_s_ == config_.rtt_s, deadline_abs_s_ == +inf, and every
  // accumulator stays 0 — the pre-resilience expressions fall out bitwise.
  const net::FaultPlan* faults_ = nullptr;  // nullable; RTT spikes only
  uint64_t session_tag_ = 0;                // jitter identity salt
  double cur_rtt_s_ = 0.0;                  // RTT of the attempt in flight
  double last_rtt_s_ = 0.0;                 // RTT of the last delivered chunk
  double attempt_start_abs_s_ = 0.0;        // when the in-flight attempt was issued
  double deadline_abs_s_ = 0.0;             // attempt start + timeout (+inf disabled)
  bool pending_timeout_ = false;            // dedicated: this attempt cannot beat its deadline
  size_t attempts_failed_ = 0;              // timed-out attempts for the in-flight chunk
  size_t chunk_reattempts_ = 0;             // re-requests (timeout retries + failovers)
  double chunk_retry_wasted_s_ = 0.0;       // wall clock burnt by failed attempts
  double chunk_backoff_s_ = 0.0;            // backoff + reconnect waits
  size_t retry_level_ = 0;                  // rung the next reattempt will request
  OutcomeCause outage_cause_ = OutcomeCause::kDeadLink;
  size_t timeouts_ = 0;
  size_t retries_ = 0;
  size_t recovered_chunks_ = 0;
  size_t failovers_ = 0;

  bool result_taken_ = false;
};

}  // namespace sensei::sim
