#include "sim/session.h"

namespace sensei::sim {

const char* to_string(OutcomeCause cause) {
  switch (cause) {
    case OutcomeCause::kNone:
      return "none";
    case OutcomeCause::kAbandoned:
      return "abandoned";
    case OutcomeCause::kDeadLink:
      return "dead_link";
    case OutcomeCause::kTimeoutBudget:
      return "timeout_budget";
  }
  return "unknown";
}

SessionResult::SessionResult(std::string video_name, std::string trace_name,
                             double chunk_duration_s, std::vector<ChunkRecord> chunks,
                             double startup_delay_s)
    : video_name_(std::move(video_name)),
      trace_name_(std::move(trace_name)),
      chunk_duration_s_(chunk_duration_s),
      chunks_(std::move(chunks)),
      startup_delay_s_(startup_delay_s),
      failed_chunk_(chunks_.size()) {}

double SessionResult::total_rebuffer_s() const {
  double total = 0.0;
  for (const auto& c : chunks_) total += c.rebuffer_s;
  return total;
}

double SessionResult::rebuffer_ratio() const {
  double playback = chunk_duration_s_ * static_cast<double>(chunks_.size());
  double stall = total_rebuffer_s();
  double denom = playback + stall;
  return denom > 0.0 ? stall / denom : 0.0;
}

double SessionResult::mean_bitrate_kbps() const {
  if (chunks_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& c : chunks_) total += c.bitrate_kbps;
  return total / static_cast<double>(chunks_.size());
}

size_t SessionResult::switch_count() const {
  size_t n = 0;
  for (size_t i = 1; i < chunks_.size(); ++i) {
    if (chunks_[i].level != chunks_[i - 1].level) ++n;
  }
  return n;
}

double SessionResult::total_bytes() const {
  double total = 0.0;
  for (const auto& c : chunks_) total += c.size_bytes;
  return total;
}

double SessionResult::mean_visual_quality() const {
  if (chunks_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& c : chunks_) total += c.visual_quality;
  return total / static_cast<double>(chunks_.size());
}

RenderedVideo SessionResult::to_rendered(const media::EncodedVideo& video) const {
  std::vector<RenderedChunk> rendered;
  rendered.reserve(chunks_.size());
  for (const auto& c : chunks_) {
    rendered.push_back({c.level, c.bitrate_kbps, c.visual_quality, c.rebuffer_s});
  }
  std::vector<media::ChunkContent> content(video.source().chunks().begin(),
                                           video.source().chunks().begin() +
                                               static_cast<long>(chunks_.size()));
  return RenderedVideo(video_name_ + "@" + trace_name_, chunk_duration_s_, std::move(rendered),
                       std::move(content), startup_delay_s_);
}

}  // namespace sensei::sim
