#include "sim/session_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "net/fault.h"
#include "net/shared_link.h"
#include "util/rng.h"

namespace sensei::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

SessionEngine::SessionEngine(const PlayerConfig& config, const media::EncodedVideo& video,
                             const net::ThroughputTrace& trace, AbrPolicy& policy,
                             const std::vector<double>& weights, double start_s)
    : video_(&video), policy_(&policy), cursor_(trace) {
  init(config, weights, start_s);
}

SessionEngine::SessionEngine(const PlayerConfig& config, const media::EncodedVideo& video,
                             net::SharedLink& link, AbrPolicy& policy,
                             const std::vector<double>& weights, double start_s)
    : video_(&video), policy_(&policy), link_(&link) {
  init(config, weights, start_s);
}

// Full (re)initialization: every session-scoped field is assigned here, not
// left to member defaults, so reset() can rebind a used engine to a fresh
// session by re-running it. Buffers are cleared, never shrunk — after the
// engine has seen its longest video, a non-recording re-init allocates
// nothing (the fleet free-pool contract, pinned by tests).
void SessionEngine::init(const PlayerConfig& config, const std::vector<double>& weights,
                         double start_s) {
  config_ = config;
  weights_ = weights.empty() ? nullptr : &weights;
  if (video_->num_chunks() == 0) throw std::runtime_error("player: empty video");
  if (weights_ != nullptr && weights_->size() != video_->num_chunks())
    throw std::runtime_error("player: weight vector size mismatch");
  const ResilienceConfig& res = config_.resilience;
  if (res.enabled() && !(res.request_timeout_s > 0.0))
    throw std::runtime_error("player: request timeout must be positive");
  if (res.enabled() &&
      (!(res.backoff_base_s >= 0.0) || !(res.backoff_factor >= 1.0) ||
       !(res.backoff_max_s >= 0.0) || !(res.backoff_jitter_frac >= 0.0) ||
       res.backoff_jitter_frac >= 1.0)) {
    throw std::runtime_error("player: invalid backoff configuration");
  }

  policy_->begin_session(*video_);

  tau_ = video_->chunk_duration_s();
  n_ = video_->num_chunks();
  levels_ = video_->ladder().level_count();
  end_chunk_ = std::min(n_, std::max<size_t>(1, chunk_limit_));

  if (config_.record_timeline) {
    // A fresh timeline per session: the previous session's result may still
    // share the old one (shared_ptr), so it cannot be recycled in place.
    timeline_ = std::make_shared<SessionTimeline>(tau_, config_.rtt_s);
    timeline_->reserve(n_);
  } else {
    timeline_.reset();
  }
  history_.clear();
  history_.reserve(config_.throughput_history_len + 1);
  records_.clear();
  records_.reserve(n_);

  // One observation reused across the session: its vectors reach their
  // high-water capacity during the first chunks and the per-chunk refills
  // never touch the heap again (the monolithic loop's discipline).
  obs_.num_chunks = n_;  // the full video — abandonment is invisible to the ABR
  obs_.video = video_;
  obs_.timeline = timeline_.get();
  obs_.throughput_history_kbps.clear();
  obs_.throughput_history_kbps.reserve(config_.throughput_history_len + 1);
  obs_.future_weights.clear();
  obs_.future_weights.reserve(config_.weight_horizon);

  wall_clock_s_ = 0.0;
  buffer_s_ = 0.0;
  playhead_s_ = 0.0;
  pause_debt_s_ = 0.0;
  total_stall_s_ = 0.0;
  startup_delay_s_ = 0.0;
  last_level_ = 0;
  last_throughput_ = 0.0;
  last_download_time_ = 0.0;
  next_chunk_ = 0;
  rep_ = nullptr;
  scheduled_ = 0.0;
  dl_s_ = 0.0;
  transfer_elapsed_s_ = 0.0;
  transfer_start_abs_s_ = 0.0;
  transfer_id_ = 0;
  faults_ = nullptr;
  session_tag_ = 0;
  cur_rtt_s_ = config_.rtt_s;
  last_rtt_s_ = 0.0;
  attempt_start_abs_s_ = 0.0;
  deadline_abs_s_ = kInf;
  pending_timeout_ = false;
  attempts_failed_ = 0;
  chunk_reattempts_ = 0;
  chunk_retry_wasted_s_ = 0.0;
  chunk_backoff_s_ = 0.0;
  retry_level_ = 0;
  outage_cause_ = OutcomeCause::kDeadLink;
  timeouts_ = 0;
  retries_ = 0;
  recovered_chunks_ = 0;
  failovers_ = 0;
  result_taken_ = false;

  start_abs_s_ = start_s;
  state_ = State::kRequesting;
  next_event_abs_s_ = start_s;
}

void SessionEngine::set_chunk_limit(size_t limit) {
  if (next_chunk_ != 0 || state_ != State::kRequesting)
    throw std::logic_error("session engine: chunk limit must be set before the first transition");
  chunk_limit_ = limit;
  end_chunk_ = std::min(n_, std::max<size_t>(1, limit));
}

void SessionEngine::set_session_tag(uint64_t tag) {
  if (next_chunk_ != 0 || state_ != State::kRequesting)
    throw std::logic_error("session engine: session tag must be set before the first transition");
  session_tag_ = tag;
}

void SessionEngine::set_fault_plan(const net::FaultPlan* plan) {
  if (next_chunk_ != 0 || state_ != State::kRequesting)
    throw std::logic_error("session engine: fault plan must be set before the first transition");
  faults_ = plan;
}

void SessionEngine::reset(const media::EncodedVideo& video, net::SharedLink& link,
                          AbrPolicy& policy, const std::vector<double>& weights,
                          double start_s, size_t chunk_limit) {
  video_ = &video;
  policy_ = &policy;
  link_ = &link;
  chunk_limit_ = chunk_limit;
  init(config_, weights, start_s);
}

void SessionEngine::advance_to(double t) {
  while (!done() && next_event_abs_s_ <= t) step();
}

void SessionEngine::step() {
  switch (state_) {
    case State::kRequesting:
      issue_request();
      break;
    case State::kRtt:
      // A deadline shorter than the RTT fires before the first byte could
      // move: the attempt dies in flight without ever joining the link.
      if (deadline_abs_s_ < transfer_start_abs_s_) {
        enter_timed_out();
      } else {
        begin_transfer();
      }
      break;
    case State::kTransferring:
      if (link_ != nullptr) {
        // A shared-link transfer's finish belongs to the link — the only
        // self-driven event while kTransferring is the attempt's deadline.
        if (!std::isfinite(deadline_abs_s_))
          throw std::logic_error("session engine: a shared-link transfer finishes via the link");
        enter_timed_out();
      } else if (pending_timeout_) {
        // Dedicated: the request-time integration already knew this attempt
        // could not beat its deadline.
        enter_timed_out();
      } else {
        finish_chunk();
      }
      break;
    case State::kTimedOut:
      resolve_timeout();
      break;
    case State::kBackoff:
      // The backoff has been served: re-request at this very instant.
      state_ = State::kRetrying;
      break;
    case State::kRetrying:
      issue_retry();
      break;
    case State::kArrived:
      // The buffer-cap idle (if any) has been served: issue the next
      // request at this very instant.
      state_ = State::kRequesting;
      break;
    case State::kDone:
    case State::kOutage:
      break;
  }
}

double SessionEngine::request_rtt_s(double attempt_start_abs_s) const {
  // With no plan attached this is exactly config_.rtt_s; with one attached
  // but no spike active, + 0.0 is an exact identity.
  return faults_ == nullptr ? config_.rtt_s
                            : config_.rtt_s + faults_->rtt_extra_s(attempt_start_abs_s);
}

void SessionEngine::arm_deadline() {
  deadline_abs_s_ = config_.resilience.enabled()
                        ? attempt_start_abs_s_ + config_.resilience.request_timeout_s
                        : kInf;
}

double SessionEngine::backoff_wait_s(size_t attempt) const {
  const ResilienceConfig& res = config_.resilience;
  // Repeated multiplication, not std::pow — libm rounding is not pinned
  // across platforms, and the attempt count is tiny.
  double wait = res.backoff_base_s;
  for (size_t k = 1; k < attempt; ++k) wait *= res.backoff_factor;
  wait = std::min(wait, res.backoff_max_s);
  if (res.backoff_jitter_frac > 0.0) {
    util::Rng rng(util::mix_seed(util::mix_seed(res.jitter_seed, session_tag_),
                                 (static_cast<uint64_t>(next_chunk_) << 16) ^
                                     static_cast<uint64_t>(attempt)));
    wait *= 1.0 + res.backoff_jitter_frac * (2.0 * rng.uniform() - 1.0);
  }
  return wait;
}

void SessionEngine::issue_request() {
  const size_t i = next_chunk_;
  obs_.next_chunk = i;
  obs_.buffer_s = buffer_s_;
  obs_.last_level = last_level_;
  obs_.last_throughput_kbps = last_throughput_;
  obs_.last_download_time_s = last_download_time_;
  obs_.throughput_history_kbps = history_;
  if (weights_ != nullptr) {
    size_t end = std::min(n_, i + config_.weight_horizon);
    obs_.future_weights.assign(weights_->begin() + static_cast<long>(i),
                               weights_->begin() + static_cast<long>(end));
  }
  obs_.wall_clock_s = wall_clock_s_;
  obs_.playhead_s = playhead_s_;
  obs_.total_stall_s = total_stall_s_;
  obs_.last_rtt_s = i > 0 ? last_rtt_s_ : 0.0;

  AbrDecision decision = policy_->decide(obs_);
  if (decision.level >= levels_) decision.level = levels_ - 1;
  scheduled_ = std::max(0.0, decision.scheduled_rebuffer_s);

  // Fresh chunk: clear the per-chunk recovery accumulators.
  attempts_failed_ = 0;
  chunk_reattempts_ = 0;
  chunk_retry_wasted_s_ = 0.0;
  chunk_backoff_s_ = 0.0;
  retry_level_ = decision.level;
  pending_timeout_ = false;

  rep_ = &video_->rep(i, decision.level);
  // RTT first (dead wall clock, no trace capacity), then the transfer.
  attempt_start_abs_s_ = start_abs_s_ + wall_clock_s_;
  cur_rtt_s_ = request_rtt_s(attempt_start_abs_s_);
  transfer_start_abs_s_ = start_abs_s_ + (wall_clock_s_ + cur_rtt_s_);
  arm_deadline();

  if (link_ == nullptr) {
    // Dedicated link: integrate the whole transfer now, exactly as the
    // monolithic loop did at this point.
    net::TransferResult transfer = cursor_.advance(rep_->size_bytes, transfer_start_abs_s_);
    if (!transfer.completed) {
      if (!config_.resilience.enabled()) {
        // The link died: this chunk can never arrive. Truncate the session
        // and surface the outage instead of faking a completed download.
        mark_outage();
        return;
      }
      // With a deadline armed, a dead link is just an attempt that will
      // time out — the retry path decides whether the session survives.
      pending_timeout_ = true;
    } else {
      transfer_elapsed_s_ = transfer.elapsed_s;
      if (transfer_start_abs_s_ + transfer.elapsed_s > deadline_abs_s_) {
        pending_timeout_ = true;  // completes, but after the deadline
      } else {
        dl_s_ = ((chunk_retry_wasted_s_ + chunk_backoff_s_) + cur_rtt_s_) + transfer_elapsed_s_;
      }
    }
  }

  rec_ = ChunkRecord();
  rec_.index = i;
  rec_.level = decision.level;
  rec_.bitrate_kbps = rep_->bitrate_kbps;
  rec_.size_bytes = rep_->size_bytes;
  rec_.visual_quality = rep_->visual_quality;
  rec_.download_start_s = wall_clock_s_;

  traj_ = ChunkTrajectory();
  traj_.chunk = i;
  traj_.level = decision.level;
  traj_.request_wall_s = wall_clock_s_;
  traj_.buffer_before_s = buffer_s_;
  traj_.playhead_before_s = playhead_s_;

  state_ = State::kRtt;
  next_event_abs_s_ =
      deadline_abs_s_ < transfer_start_abs_s_ ? deadline_abs_s_ : transfer_start_abs_s_;
}

// Re-request of the in-flight chunk after a timeout retry or a failover
// reconnect: same shape as issue_request past the decision point, except no
// new decision is made (the rung is retry_level_) and the attempt starts at
// the backoff's end rather than at a fresh request boundary.
void SessionEngine::issue_retry() {
  const size_t i = next_chunk_;
  rep_ = &video_->rep(i, retry_level_);
  rec_.level = retry_level_;
  rec_.bitrate_kbps = rep_->bitrate_kbps;
  rec_.size_bytes = rep_->size_bytes;
  rec_.visual_quality = rep_->visual_quality;
  traj_.level = retry_level_;

  attempt_start_abs_s_ = next_event_abs_s_;
  cur_rtt_s_ = request_rtt_s(attempt_start_abs_s_);
  transfer_start_abs_s_ = attempt_start_abs_s_ + cur_rtt_s_;
  arm_deadline();
  pending_timeout_ = false;

  if (link_ == nullptr) {
    net::TransferResult transfer = cursor_.advance(rep_->size_bytes, transfer_start_abs_s_);
    if (!transfer.completed) {
      if (!config_.resilience.enabled()) {
        mark_outage();
        return;
      }
      pending_timeout_ = true;
    } else {
      transfer_elapsed_s_ = transfer.elapsed_s;
      if (transfer_start_abs_s_ + transfer.elapsed_s > deadline_abs_s_) {
        pending_timeout_ = true;
      } else {
        dl_s_ = ((chunk_retry_wasted_s_ + chunk_backoff_s_) + cur_rtt_s_) + transfer_elapsed_s_;
      }
    }
  }

  state_ = State::kRtt;
  next_event_abs_s_ =
      deadline_abs_s_ < transfer_start_abs_s_ ? deadline_abs_s_ : transfer_start_abs_s_;
}

void SessionEngine::begin_transfer() {
  if (link_ != nullptr) {
    transfer_id_ = link_->begin(rep_->size_bytes, transfer_start_abs_s_);
    // The link owns the completion event; the engine's only self-driven
    // event is the attempt's deadline (+inf with resilience disabled).
    next_event_abs_s_ = deadline_abs_s_;
  } else if (pending_timeout_) {
    next_event_abs_s_ = deadline_abs_s_;
  } else {
    next_event_abs_s_ = start_abs_s_ + (wall_clock_s_ + dl_s_);
  }
  state_ = State::kTransferring;
}

void SessionEngine::complete_transfer(double finish_abs_s) {
  if (state_ != State::kTransferring || link_ == nullptr)
    throw std::logic_error("session engine: no shared-link transfer in flight");
  transfer_elapsed_s_ = std::max(0.0, finish_abs_s - transfer_start_abs_s_);
  dl_s_ = ((chunk_retry_wasted_s_ + chunk_backoff_s_) + cur_rtt_s_) + transfer_elapsed_s_;
  finish_chunk();
}

void SessionEngine::fail_transfer() {
  if (state_ != State::kTransferring || link_ == nullptr)
    throw std::logic_error("session engine: no shared-link transfer in flight");
  mark_outage();
}

void SessionEngine::enter_timed_out() {
  // The attempt dies at its deadline. Everything since the attempt began —
  // the RTT wait and any partial transfer — is wall clock the viewer spent
  // for nothing: exactly one timeout's worth, charged as retry waste. The
  // link (if joined) drops the transfer; its partial grants stay frozen in
  // the link's accounting.
  if (state_ == State::kTransferring && link_ != nullptr) link_->abort(transfer_id_);
  chunk_retry_wasted_s_ += config_.resilience.request_timeout_s;
  ++attempts_failed_;
  ++timeouts_;
  pending_timeout_ = false;
  state_ = State::kTimedOut;
  // next_event_abs_s_ is already the deadline (now): resolution chains in
  // the same instant's next step.
}

void SessionEngine::resolve_timeout() {
  if (attempts_failed_ > config_.resilience.max_retries) {
    // Retry budget exhausted: the chunk is lost and the session truncates,
    // with the wall clock advanced past everything the failed attempts
    // burned (the viewer gave up *now*, not back at the request).
    outage_cause_ = OutcomeCause::kTimeoutBudget;
    wall_clock_s_ += chunk_retry_wasted_s_ + chunk_backoff_s_;
    mark_outage();
    return;
  }
  // Retry one rung lower (a timeout is congestion evidence), after an
  // exponentially backed-off, deterministically jittered wait.
  if (config_.resilience.retry_lower_rung && retry_level_ > 0) --retry_level_;
  ++retries_;
  ++chunk_reattempts_;
  const double wait = backoff_wait_s(attempts_failed_);
  chunk_backoff_s_ += wait;
  state_ = State::kBackoff;
  next_event_abs_s_ += wait;
}

void SessionEngine::rehome(net::SharedLink& link, double reconnect_delay_s, double now_abs_s) {
  if (link_ == nullptr)
    throw std::logic_error("session engine: rehome requires a shared-link session");
  if (done()) {
    link_ = &link;
    return;
  }
  switch (state_) {
    case State::kTransferring:
      link_->abort(transfer_id_);
      [[fallthrough]];
    case State::kRtt:
      // The in-flight request died with the cell: charge the span since the
      // attempt began as retry waste and the reconnection delay as backoff,
      // then re-request the same rung on the fallback. A failover is not
      // congestion evidence — it neither drops the rung nor spends the
      // retry budget.
      chunk_retry_wasted_s_ += now_abs_s - attempt_start_abs_s_;
      chunk_backoff_s_ += reconnect_delay_s;
      ++chunk_reattempts_;
      retry_level_ = rec_.level;
      pending_timeout_ = false;
      state_ = State::kBackoff;
      next_event_abs_s_ = now_abs_s + reconnect_delay_s;
      break;
    default:
      // Between requests (kRequesting / kArrived / kBackoff): the next
      // attempt simply joins the new link on its existing schedule.
      break;
  }
  ++failovers_;
  link_ = &link;
}

// The arrival accounting: statement for statement the tail of the
// monolithic loop body, so however the session is sliced the emitted
// numbers are bit-identical to run-to-completion streaming.
void SessionEngine::finish_chunk() {
  const size_t i = next_chunk_;
  const double dl = dl_s_;
  rec_.download_time_s = dl;
  traj_.rtt_s = cur_rtt_s_;
  traj_.transfer_s = transfer_elapsed_s_;
  traj_.retry_wasted_s = chunk_retry_wasted_s_;
  traj_.backoff_s = chunk_backoff_s_;
  traj_.retries = chunk_reattempts_;

  wall_clock_s_ += dl;
  traj_.arrival_wall_s = wall_clock_s_;

  // Outstanding scheduled-pause debt (from earlier decisions) freezes
  // playback across this download window before anything else can play.
  double pause_served_in_window = std::min(pause_debt_s_, dl);
  pause_debt_s_ -= pause_served_in_window;

  double stall = 0.0;
  if (i == 0) {
    // Startup: the first chunk's download (and any scheduled pre-roll
    // wait) is join latency, not a stall.
    startup_delay_s_ = dl + scheduled_;
    buffer_s_ = tau_;
  } else {
    // Buffer drains in real time across the whole download (RTT wait
    // included — playback does not know the request is still in flight).
    if (dl > buffer_s_) {
      stall = dl - buffer_s_;
      buffer_s_ = 0.0;
    } else {
      buffer_s_ -= dl;
    }
    traj_.stall_s = stall;
    if (stall > 0.0) traj_.stall_start_wall_s = traj_.arrival_wall_s - stall;
    // Scheduled pause: playback halts, downloads continue — the buffer is
    // credited with the pause and the pause is charged as a stall.
    if (scheduled_ > 0.0) {
      buffer_s_ += scheduled_;
      stall += scheduled_;
      traj_.scheduled_pause_s = scheduled_;
      pause_debt_s_ += scheduled_;
    }
    buffer_s_ += tau_;
  }
  rec_.scheduled_rebuffer_s = (i == 0) ? 0.0 : scheduled_;
  rec_.rebuffer_s = stall;
  total_stall_s_ += stall;

  // Buffer cap: the client idles (wall clock advances, buffer drains by the
  // same amount) until there is room for the next chunk.
  if (buffer_s_ > config_.max_buffer_s) {
    double idle = buffer_s_ - config_.max_buffer_s;
    wall_clock_s_ += idle;
    buffer_s_ = config_.max_buffer_s;
    traj_.idle_s = idle;
  }
  rec_.buffer_after_s = buffer_s_;
  traj_.buffer_after_s = buffer_s_;

  // Idle time also serves outstanding pause debt (the viewer is frozen
  // either way; whatever remains frozen keeps the buffer from draining).
  double idle_play = traj_.idle_s;
  if (pause_debt_s_ > 0.0 && traj_.idle_s > 0.0) {
    double served_in_idle = std::min(pause_debt_s_, traj_.idle_s);
    pause_debt_s_ -= served_in_idle;
    idle_play = traj_.idle_s - served_in_idle;
  }
  traj_.pause_debt_after_s = pause_debt_s_;

  // Playhead integration: playback runs across the download window except
  // while stalled (buffer empty) or serving scheduled-pause debt, and
  // across whatever idle time is not pause-frozen.
  double play_time =
      i == 0 ? 0.0 : std::max(0.0, dl - traj_.stall_s - pause_served_in_window);
  playhead_s_ += play_time + idle_play;
  traj_.playhead_after_s = playhead_s_;

  // Goodput over the transfer alone — the RTT consumed no link capacity,
  // so folding it in would bias every predictor low on small chunks.
  last_throughput_ = transfer_elapsed_s_ > 0.0
                         ? rep_->size_bytes * 8.0 / 1000.0 / transfer_elapsed_s_
                         : 0.0;
  traj_.goodput_kbps = last_throughput_;
  last_download_time_ = dl;
  last_rtt_s_ = cur_rtt_s_;
  last_level_ = rec_.level;
  history_.push_back(last_throughput_);
  if (history_.size() > config_.throughput_history_len) history_.erase(history_.begin());
  if (chunk_reattempts_ > 0) ++recovered_chunks_;

  if (timeline_) timeline_->push_chunk(traj_);
  records_.push_back(rec_);

  ++next_chunk_;
  if (next_chunk_ == end_chunk_) {
    state_ = State::kDone;
    next_event_abs_s_ = kInf;
    finalize();
  } else {
    state_ = State::kArrived;
    next_event_abs_s_ = start_abs_s_ + wall_clock_s_;
  }
}

void SessionEngine::mark_outage() {
  if (timeline_) timeline_->mark_outage(next_chunk_, wall_clock_s_);
  state_ = State::kOutage;
  next_event_abs_s_ = kInf;
  finalize();
}

void SessionEngine::finalize() {
  if (timeline_) timeline_->set_startup_delay(startup_delay_s_);
}

SessionResult SessionEngine::run() {
  if (link_ != nullptr)
    throw std::logic_error("session engine: a shared-link session needs a driver");
  while (!done()) advance_to(next_event_abs_s_);
  return take_result();
}

SessionResult SessionEngine::take_result() {
  if (!done()) throw std::logic_error("session engine: session still in flight");
  // A second take would silently hand back an empty session (the records
  // moved out) that downstream aggregation treats as a valid zero-chunk run.
  if (result_taken_) throw std::logic_error("session engine: result already taken");
  result_taken_ = true;
  const std::string& trace_name =
      link_ != nullptr ? link_->trace().name() : cursor_.trace()->name();
  SessionResult result(video_->source().name(), trace_name, tau_, std::move(records_),
                       startup_delay_s_);
  result.set_outcome(outcome(), outcome_cause(), failed_chunk());
  if (timeline_) result.set_timeline(timeline_);
  return result;
}

}  // namespace sensei::sim
