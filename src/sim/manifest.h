// Sensitivity-augmented DASH manifest.
//
// The paper (§6) distributes per-chunk sensitivity weights by adding an XML
// field under <Representation> in the DASH MPD and teaching the player's
// manifest parser to read it. We reproduce that protocol surface: an
// MPD-shaped XML document carrying the bitrate ladder, chunk duration and a
// <SenseiWeights> element, with a writer and a tolerant parser.
#pragma once

#include <string>
#include <vector>

#include "media/ladder.h"

namespace sensei::sim {

struct Manifest {
  std::string video_name;
  double chunk_duration_s = 4.0;
  size_t num_chunks = 0;
  std::vector<double> bitrates_kbps;   // the representation ladder
  std::vector<double> weights;         // per-chunk sensitivity (empty = none)

  // Serializes to MPD-like XML.
  std::string to_xml() const;

  // Parses a document produced by to_xml (tolerant of whitespace).
  // Throws std::runtime_error on malformed input.
  static Manifest from_xml(const std::string& xml);

  media::BitrateLadder ladder() const { return media::BitrateLadder(bitrates_kbps); }
};

}  // namespace sensei::sim
