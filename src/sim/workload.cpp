#include "sim/workload.h"

#include <cmath>
#include <stdexcept>

#include "abr/registry.h"
#include "net/trace_gen.h"

namespace sensei::sim {

namespace {

// Fixed salts separating the generator's derived streams: the arrival
// stream must not share state with the trace stream, or draw-order changes
// would reshape the network.
constexpr uint64_t kArrivalSalt = 0x5e55e1a5'00000001ULL;
constexpr uint64_t kTraceSalt = 0x5e55e1a5'00000002ULL;

}  // namespace

const char* to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kDiurnal: return "diurnal";
  }
  return "?";
}

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config, uint64_t seed)
    : config_(config), rng_(seed ^ kArrivalSalt), seed_(seed) {
  if (!(config_.arrival_rate_per_s > 0.0))
    throw std::runtime_error("workload: arrival rate must be > 0");
  if (!(config_.arrival_window_s > 0.0))
    throw std::runtime_error("workload: arrival window must be > 0");
  if (config_.arrivals == ArrivalProcess::kDiurnal && !(config_.diurnal_period_s > 0.0))
    throw std::runtime_error("workload: diurnal period must be > 0");
  if (config_.diurnal_trough < 0.0 || config_.diurnal_trough > 1.0)
    throw std::runtime_error("workload: diurnal trough must be in [0, 1]");
  if (config_.abandon_fraction < 0.0 || config_.abandon_fraction > 1.0)
    throw std::runtime_error("workload: abandon fraction must be in [0, 1]");
  if (config_.abandon_fraction > 0.0 && !(config_.mean_abandon_chunks >= 1.0))
    throw std::runtime_error("workload: mean abandon chunks must be >= 1");
  if (config_.policy_mix.empty())
    throw std::runtime_error("workload: policy mix must weight at least one policy");
  // Canonicalize every mix spec now: a typo fails here at construction, not
  // on a worker thread mid-run, and downstream pooling keys on the result.
  const abr::PolicyRegistry& registry = abr::PolicyRegistry::instance();
  canonical_specs_.reserve(config_.policy_mix.size());
  mix_weights_.reserve(config_.policy_mix.size());
  double mix_sum = 0.0;
  for (const PolicyMixEntry& entry : config_.policy_mix) {
    if (entry.weight < 0.0) throw std::runtime_error("workload: policy weights must be >= 0");
    mix_sum += entry.weight;
    canonical_specs_.push_back(registry.canonical_string(entry.spec));
    mix_weights_.push_back(entry.weight);
  }
  if (!(mix_sum > 0.0)) throw std::runtime_error("workload: policy mix must have weight");
  if (config_.num_videos == 0) throw std::runtime_error("workload: empty video pool");
  if (!(config_.trace_mean_kbps_min > 0.0) ||
      config_.trace_mean_kbps_max < config_.trace_mean_kbps_min)
    throw std::runtime_error("workload: trace mean band must be positive and ordered");
  if (config_.trace_cellular_fraction < 0.0 || config_.trace_cellular_fraction > 1.0)
    throw std::runtime_error("workload: cellular fraction must be in [0, 1]");
}

bool WorkloadGenerator::next(SessionArrival* out) {
  // Candidate arrivals come from a Poisson process at the peak rate; the
  // diurnal curve thins them (Lewis-Shedler), which keeps every candidate a
  // fixed two draws (gap, acceptance) so the stream stays reproducible.
  while (true) {
    t_ += rng_.exponential(1.0 / config_.arrival_rate_per_s);
    if (t_ >= config_.arrival_window_s) return false;
    if (config_.arrivals == ArrivalProcess::kPoisson) break;
    double phase = 2.0 * M_PI * t_ / config_.diurnal_period_s;
    double shape = 0.5 * (1.0 - std::cos(phase));
    double accept = config_.diurnal_trough + (1.0 - config_.diurnal_trough) * shape;
    if (rng_.chance(accept)) break;
  }

  out->start_s = t_;
  out->video_index =
      config_.num_videos == 1
          ? 0
          : static_cast<size_t>(rng_.uniform(0.0, static_cast<double>(config_.num_videos)));
  if (out->video_index >= config_.num_videos) out->video_index = config_.num_videos - 1;
  out->policy_index = rng_.weighted_index(mix_weights_);
  if (config_.abandon_fraction > 0.0 && rng_.chance(config_.abandon_fraction)) {
    // At least one chunk: a viewer who leaves before any download is
    // indistinguishable from one who never arrived.
    out->chunk_limit =
        1 + static_cast<size_t>(rng_.exponential(config_.mean_abandon_chunks - 1.0 + 1e-12));
  } else {
    out->chunk_limit = static_cast<size_t>(-1);
  }
  ++count_;
  return true;
}

net::ThroughputTrace WorkloadGenerator::make_trace(const std::string& name) const {
  util::Rng rng(seed_ ^ kTraceSalt);
  bool cellular = rng.chance(config_.trace_cellular_fraction);
  double mean_kbps = rng.uniform(config_.trace_mean_kbps_min, config_.trace_mean_kbps_max);
  uint64_t trace_seed = seed_ ^ (kTraceSalt << 1);
  return cellular ? net::TraceGenerator::cellular(name, mean_kbps, config_.trace_duration_s,
                                                 trace_seed)
                  : net::TraceGenerator::broadband(name, mean_kbps, config_.trace_duration_s,
                                                  trace_seed);
}

}  // namespace sensei::sim
