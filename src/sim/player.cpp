#include "sim/player.h"

#include <algorithm>
#include <stdexcept>

#include "sim/timeline.h"

namespace sensei::sim {

Player::Player(PlayerConfig config) : config_(config) {
  if (config_.max_buffer_s <= 0.0) throw std::runtime_error("player: max buffer must be > 0");
}

SessionResult Player::stream(const media::EncodedVideo& video,
                             const net::ThroughputTrace& trace, AbrPolicy& policy,
                             const std::vector<double>& weights) const {
  if (config_.engine == TimingEngine::kLegacy) {
    return stream_legacy(video, trace, policy, weights);
  }
  return stream_timeline(config_, video, trace, policy, weights);
}

// The pre-timeline accounting loop, kept as the reference for the
// bit-identity equivalence gate (tests/test_timeline.cpp, which runs it at
// rtt_s = 0 on no-outage traces). It keeps two old bugs on purpose: RTT is
// folded into the goodput estimate and a dead link yields unbounded
// download times rather than a typed outage/truncation — and it carries no
// trajectory. Note the trace-level fixes underneath it are global: with
// rtt_s > 0 even this loop sees the corrected RTT placement
// (ThroughputTrace::download_time_s), so it reproduces pre-timeline
// results only at rtt_s = 0.
SessionResult Player::stream_legacy(const media::EncodedVideo& video,
                                    const net::ThroughputTrace& trace, AbrPolicy& policy,
                                    const std::vector<double>& weights) const {
  if (video.num_chunks() == 0) throw std::runtime_error("player: empty video");
  if (!weights.empty() && weights.size() != video.num_chunks())
    throw std::runtime_error("player: weight vector size mismatch");

  policy.begin_session(video);

  const double tau = video.chunk_duration_s();
  const size_t n = video.num_chunks();
  const size_t levels = video.ladder().level_count();

  double wall_clock_s = 0.0;
  double buffer_s = 0.0;
  double startup_delay_s = 0.0;
  size_t last_level = 0;
  double last_throughput = 0.0;
  double last_download_time = 0.0;
  std::vector<double> history;
  history.reserve(config_.throughput_history_len + 1);

  std::vector<ChunkRecord> records;
  records.reserve(n);

  // Shares the timeline engine's allocation discipline: one cursor over the
  // trace index and one observation whose vectors are refilled in place.
  net::TraceCursor link(trace);
  AbrObservation obs;
  obs.num_chunks = n;
  obs.video = &video;
  obs.throughput_history_kbps.reserve(config_.throughput_history_len + 1);
  obs.future_weights.reserve(config_.weight_horizon);

  for (size_t i = 0; i < n; ++i) {
    obs.next_chunk = i;
    obs.buffer_s = buffer_s;
    obs.last_level = last_level;
    obs.last_throughput_kbps = last_throughput;
    obs.last_download_time_s = last_download_time;
    obs.throughput_history_kbps = history;
    if (!weights.empty()) {
      size_t end = std::min(n, i + config_.weight_horizon);
      obs.future_weights.assign(weights.begin() + static_cast<long>(i),
                                weights.begin() + static_cast<long>(end));
    }

    AbrDecision decision = policy.decide(obs);
    if (decision.level >= levels) decision.level = levels - 1;
    double scheduled = std::max(0.0, decision.scheduled_rebuffer_s);

    ChunkRecord rec;
    rec.index = i;
    rec.level = decision.level;
    const auto& rep = video.rep(i, decision.level);
    rec.bitrate_kbps = rep.bitrate_kbps;
    rec.size_bytes = rep.size_bytes;
    rec.visual_quality = rep.visual_quality;
    rec.download_start_s = wall_clock_s;

    double dl = link.download_time_s(rep.size_bytes, wall_clock_s, config_.rtt_s);
    rec.download_time_s = dl;
    wall_clock_s += dl;

    double stall = 0.0;
    if (i == 0) {
      // Startup: the first chunk's download is join latency, not a stall.
      startup_delay_s = dl + scheduled;
      buffer_s = tau;
    } else {
      // Buffer drains while downloading.
      if (dl > buffer_s) {
        stall = dl - buffer_s;
        buffer_s = 0.0;
      } else {
        buffer_s -= dl;
      }
      // Scheduled pause: playback halts, downloads continue — the buffer is
      // credited with the pause and the pause is charged as a stall.
      if (scheduled > 0.0) {
        buffer_s += scheduled;
        stall += scheduled;
      }
      buffer_s += tau;
    }
    rec.scheduled_rebuffer_s = (i == 0) ? 0.0 : scheduled;
    rec.rebuffer_s = stall;

    // Buffer cap: the client idles (wall clock advances, buffer drains by the
    // same amount) until there is room for the next chunk.
    if (buffer_s > config_.max_buffer_s) {
      double idle = buffer_s - config_.max_buffer_s;
      wall_clock_s += idle;
      buffer_s = config_.max_buffer_s;
    }
    rec.buffer_after_s = buffer_s;

    last_throughput = dl > 0.0 ? rep.size_bytes * 8.0 / 1000.0 / dl : 0.0;
    last_download_time = dl;
    last_level = decision.level;
    history.push_back(last_throughput);
    if (history.size() > config_.throughput_history_len)
      history.erase(history.begin());

    records.push_back(rec);
  }

  return SessionResult(video.source().name(), trace.name(), tau, std::move(records),
                       startup_delay_s);
}

}  // namespace sensei::sim
