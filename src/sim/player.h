// DASH-like player simulator.
//
// Event model (standard in ABR simulators such as Pensieve's): chunks are
// downloaded sequentially; while a chunk downloads, the playout buffer drains
// in real time. If it empties, playback stalls (rebuffering). The buffer is
// capped; the player idles when full.
//
// SENSEI's §5 extension is supported natively: a decision may carry a
// *scheduled rebuffering* time. Playback is paused for that long while
// downloads continue — in buffer terms, the buffer level is credited by the
// pause length and the pause is charged to the next chunk's stall time
// (exactly how SENSEI-Pensieve's "increment the buffer state" is described).
//
// Session timing is owned by the exact event-driven timeline engine
// (sim/timeline.h), the default — itself a thin run-to-completion drive of
// the resumable sim::SessionEngine state machine (sim/session_engine.h),
// which sim::Simulator interleaves for multi-session contention scenarios.
// The pre-timeline accounting loop is kept frozen behind
// `PlayerConfig::engine = TimingEngine::kLegacy` purely as the reference
// for the bit-identity equivalence gate (tests/test_timeline.cpp); it
// retains the old bugs by design (RTT folded into the goodput estimate, no
// outage detection, no trajectory).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "media/encoder.h"
#include "net/trace.h"
#include "sim/session.h"
#include "sim/timeline.h"

namespace sensei::abr {
class PlanBatch;  // cross-session planning-table pool (abr/planner.h)
}

namespace sensei::sim {

// What an ABR algorithm sees before choosing the next chunk's rendition.
struct AbrObservation {
  size_t next_chunk = 0;
  size_t num_chunks = 0;
  double buffer_s = 0.0;
  size_t last_level = 0;
  double last_throughput_kbps = 0.0;          // goodput of the last download (RTT excluded)
  double last_download_time_s = 0.0;          // wall time incl. RTT
  std::vector<double> throughput_history_kbps;  // most recent last
  const media::EncodedVideo* video = nullptr;
  // Sensitivity weights for chunks [next_chunk, next_chunk + h); empty when
  // the manifest carries none (weight-unaware ABRs simply ignore it).
  std::vector<double> future_weights;

  // --- session trajectory context (timeline engine only; the legacy
  // engine leaves these at their defaults) ---------------------------------
  double wall_clock_s = 0.0;     // seconds since the session began
  double playhead_s = 0.0;       // media seconds rendered so far
  double total_stall_s = 0.0;    // cumulative stall (unscheduled + scheduled)
  double last_rtt_s = 0.0;       // request dead time of the last download
  // The exact per-chunk trajectory so far (nullptr under the legacy engine).
  const SessionTimeline* timeline = nullptr;
};

struct AbrDecision {
  size_t level = 0;
  // Deliberate playback pause (seconds) taken before this chunk plays.
  double scheduled_rebuffer_s = 0.0;
};

class AbrPolicy {
 public:
  virtual ~AbrPolicy() = default;
  virtual const char* name() const = 0;
  // Called once per session before the first decision.
  virtual void begin_session(const media::EncodedVideo& video) { (void)video; }
  virtual AbrDecision decide(const AbrObservation& obs) = 0;
  // Offers (nullptr revokes) a pool of static planning tables shared across
  // a Simulator run's sessions. Purely an optimization hook: attaching must
  // never change a policy's decisions, and the caller owning the batch
  // detaches it before the batch dies. Policies without planners ignore it.
  virtual void attach_plan_batch(abr::PlanBatch* batch) { (void)batch; }
};

// Per-session recovery behavior: request timeouts, bounded retries with
// exponential backoff + deterministic jitter, and a lower re-request rung on
// retry. The defaults disable every mechanism — an infinite timeout means no
// attempt ever times out, so a default-constructed config reproduces the
// pre-resilience engine bit for bit (no extra float ops, no RNG draws).
struct ResilienceConfig {
  // Wall-clock budget per request attempt, measured from the instant the
  // request is issued (covers RTT + transfer). +infinity disables timeouts.
  double request_timeout_s = std::numeric_limits<double>::infinity();
  // Retries allowed after the first attempt times out. With the budget
  // exhausted the chunk — and the session — ends in kOutage
  // (OutcomeCause::kTimeoutBudget).
  size_t max_retries = 0;
  // Backoff before retry k (1-based): min(base * factor^(k-1), max), then
  // * (1 + jitter_frac * u) with u drawn deterministically in [-1, 1) from
  // (jitter_seed, session tag, chunk, attempt) — identical realizations
  // across threads/shards, decorrelated across sessions.
  double backoff_base_s = 0.5;
  double backoff_factor = 2.0;
  double backoff_max_s = 8.0;
  double backoff_jitter_frac = 0.0;
  uint64_t jitter_seed = 0;
  // Retry one rung lower per failed attempt (floored at rung 0) — a timeout
  // is congestion evidence, so the retry asks for less.
  bool retry_lower_rung = true;

  bool enabled() const {
    return request_timeout_s < std::numeric_limits<double>::infinity();
  }
};

// Which accounting loop realizes the session timing.
enum class TimingEngine {
  kTimeline,  // exact event-driven engine (sim/timeline.h) — the default
  kLegacy,    // frozen pre-timeline loop, kept as the equivalence baseline
};

struct PlayerConfig {
  double max_buffer_s = 30.0;
  double rtt_s = 0.08;
  size_t throughput_history_len = 8;
  // Sensitivity look-ahead horizon handed to the ABR (paper picks h = 5).
  size_t weight_horizon = 5;
  TimingEngine engine = TimingEngine::kTimeline;
  // Multi-session runs only (sim::Simulator): share one abr::PlanBatch of
  // static planning tables across all sessions' policies for the duration
  // of the run. Bit-identical output either way; off exists for A/B tests.
  bool share_plan_tables = true;
  // Record the per-chunk SessionTimeline trajectory. Decisions and the
  // emitted ChunkRecords are byte-identical either way (no shipped policy
  // reads AbrObservation::timeline); opting out skips the per-session
  // timeline allocation entirely — the fleet-scale memory mode. With it off,
  // SessionResult::timeline() is null and AbrObservation::timeline is null.
  bool record_timeline = true;
  // Timeout/retry/backoff recovery; disabled by default (see above).
  ResilienceConfig resilience;
};

class Player {
 public:
  explicit Player(PlayerConfig config = PlayerConfig());

  // Streams `video` over `trace` under `policy`. `weights` (optional) is the
  // per-chunk sensitivity vector distributed via the manifest; slices of it
  // are exposed to the policy each decision. Under the timeline engine the
  // returned session carries the exact trajectory (SessionResult::timeline())
  // and, on a dead link, truncates with SessionOutcome::kOutage.
  SessionResult stream(const media::EncodedVideo& video, const net::ThroughputTrace& trace,
                       AbrPolicy& policy, const std::vector<double>& weights = {}) const;

  const PlayerConfig& config() const { return config_; }

 private:
  SessionResult stream_legacy(const media::EncodedVideo& video,
                              const net::ThroughputTrace& trace, AbrPolicy& policy,
                              const std::vector<double>& weights) const;

  PlayerConfig config_;
};

}  // namespace sensei::sim
