// DASH-like player simulator.
//
// Event model (standard in ABR simulators such as Pensieve's): chunks are
// downloaded sequentially; while a chunk downloads, the playout buffer drains
// in real time. If it empties, playback stalls (rebuffering). The buffer is
// capped; the player idles when full.
//
// SENSEI's §5 extension is supported natively: a decision may carry a
// *scheduled rebuffering* time. Playback is paused for that long while
// downloads continue — in buffer terms, the buffer level is credited by the
// pause length and the pause is charged to the next chunk's stall time
// (exactly how SENSEI-Pensieve's "increment the buffer state" is described).
#pragma once

#include <memory>
#include <vector>

#include "media/encoder.h"
#include "net/trace.h"
#include "sim/session.h"

namespace sensei::sim {

// What an ABR algorithm sees before choosing the next chunk's rendition.
struct AbrObservation {
  size_t next_chunk = 0;
  size_t num_chunks = 0;
  double buffer_s = 0.0;
  size_t last_level = 0;
  double last_throughput_kbps = 0.0;          // measured over the last download
  double last_download_time_s = 0.0;
  std::vector<double> throughput_history_kbps;  // most recent last
  const media::EncodedVideo* video = nullptr;
  // Sensitivity weights for chunks [next_chunk, next_chunk + h); empty when
  // the manifest carries none (weight-unaware ABRs simply ignore it).
  std::vector<double> future_weights;
};

struct AbrDecision {
  size_t level = 0;
  // Deliberate playback pause (seconds) taken before this chunk plays.
  double scheduled_rebuffer_s = 0.0;
};

class AbrPolicy {
 public:
  virtual ~AbrPolicy() = default;
  virtual const char* name() const = 0;
  // Called once per session before the first decision.
  virtual void begin_session(const media::EncodedVideo& video) { (void)video; }
  virtual AbrDecision decide(const AbrObservation& obs) = 0;
};

struct PlayerConfig {
  double max_buffer_s = 30.0;
  double rtt_s = 0.08;
  size_t throughput_history_len = 8;
  // Sensitivity look-ahead horizon handed to the ABR (paper picks h = 5).
  size_t weight_horizon = 5;
};

class Player {
 public:
  explicit Player(PlayerConfig config = PlayerConfig());

  // Streams `video` over `trace` under `policy`. `weights` (optional) is the
  // per-chunk sensitivity vector distributed via the manifest; slices of it
  // are exposed to the policy each decision.
  SessionResult stream(const media::EncodedVideo& video, const net::ThroughputTrace& trace,
                       AbrPolicy& policy, const std::vector<double>& weights = {}) const;

 private:
  PlayerConfig config_;
};

}  // namespace sensei::sim
