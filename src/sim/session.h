// Streaming-session records produced by the player simulator.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "media/encoder.h"
#include "sim/render.h"

namespace sensei::sim {

class SessionTimeline;  // sim/timeline.h

// How a session ended. kOutage: a chunk's download could never complete —
// the link died (all-zero trace stretch with no recovery, or a finite
// trace exhausted mid-transfer) and the session truncates at that chunk.
enum class SessionOutcome { kCompleted, kOutage };

// Why it ended that way — the typed cause behind the coarse outcome.
// kCompleted sessions carry kNone (watched to the end) or kAbandoned (the
// viewer left early by script — fleet workloads' abandon_fraction). kOutage
// sessions carry kDeadLink (the link can never deliver the chunk and no
// retry budget remains untried) or kTimeoutBudget (every attempt timed out
// and the bounded-retry budget is exhausted).
enum class OutcomeCause { kNone, kAbandoned, kDeadLink, kTimeoutBudget };

const char* to_string(OutcomeCause cause);

struct ChunkRecord {
  size_t index = 0;
  size_t level = 0;
  double bitrate_kbps = 0.0;
  double size_bytes = 0.0;
  double download_start_s = 0.0;   // wall clock when the download began
  double download_time_s = 0.0;    // includes RTT
  double rebuffer_s = 0.0;         // total stall before this chunk plays
  double scheduled_rebuffer_s = 0.0;  // portion deliberately initiated by ABR
  double buffer_after_s = 0.0;     // buffer level right after the chunk arrives
  double visual_quality = 0.0;
};

class SessionResult {
 public:
  SessionResult() = default;
  SessionResult(std::string video_name, std::string trace_name, double chunk_duration_s,
                std::vector<ChunkRecord> chunks, double startup_delay_s);

  const std::string& video_name() const { return video_name_; }
  const std::string& trace_name() const { return trace_name_; }
  const std::vector<ChunkRecord>& chunks() const { return chunks_; }
  double startup_delay_s() const { return startup_delay_s_; }
  double chunk_duration_s() const { return chunk_duration_s_; }

  double total_rebuffer_s() const;
  double rebuffer_ratio() const;  // stall time / (stall + playback)
  double mean_bitrate_kbps() const;
  size_t switch_count() const;
  double total_bytes() const;
  double mean_visual_quality() const;

  // Converts the session into the rendered video the viewer saw, for rating
  // by the ground-truth oracle / QoE models.
  RenderedVideo to_rendered(const media::EncodedVideo& video) const;

  // --- exact trajectory (timeline engine) ---------------------------------

  // kOutage when the session was cut short by a dead link; the surviving
  // chunk records cover everything downloaded before the outage.
  SessionOutcome outcome() const { return outcome_; }
  // The coarse setter keeps the legacy mapping (kOutage -> kDeadLink) for
  // callers that predate typed causes (offline optimal, legacy engine).
  void set_outcome(SessionOutcome outcome) {
    outcome_ = outcome;
    outcome_cause_ =
        outcome == SessionOutcome::kOutage ? OutcomeCause::kDeadLink : OutcomeCause::kNone;
  }
  void set_outcome(SessionOutcome outcome, OutcomeCause cause, size_t failed_chunk) {
    outcome_ = outcome;
    outcome_cause_ = cause;
    failed_chunk_ = failed_chunk;
  }

  // Typed cause, and the chunk index where the session stopped: the chunk
  // that failed (outage), the first chunk never requested (abandoned), or
  // the chunk count (watched to the end).
  OutcomeCause outcome_cause() const { return outcome_cause_; }
  size_t failed_chunk() const { return failed_chunk_; }

  // The full playhead/buffer trajectory, when the session was produced by
  // the timeline engine (nullptr from the frozen legacy engine). Shared so
  // copying grid results stays cheap.
  const SessionTimeline* timeline() const { return timeline_.get(); }
  void set_timeline(std::shared_ptr<const SessionTimeline> timeline) {
    timeline_ = std::move(timeline);
  }

 private:
  std::string video_name_;
  std::string trace_name_;
  double chunk_duration_s_ = 4.0;
  std::vector<ChunkRecord> chunks_;
  double startup_delay_s_ = 0.0;
  SessionOutcome outcome_ = SessionOutcome::kCompleted;
  OutcomeCause outcome_cause_ = OutcomeCause::kNone;
  size_t failed_chunk_ = 0;
  std::shared_ptr<const SessionTimeline> timeline_;
};

}  // namespace sensei::sim
