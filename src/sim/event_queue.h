// Indexed min-heap of per-session event times for the discrete-event loops
// (sim::Simulator, sim::FleetSimulator).
//
// The PR 5 scheduler used a lazy std::priority_queue: every engine state
// change pushed a fresh (time, index) entry and stale entries were skipped
// on pop. That keeps the heap 2-3x the live session count (each transition
// chain strands its superseded entries until they surface), every push
// allocates until the high-water mark, and the stale-skip rescan runs on
// the hottest loop in the simulator — the measured cause of the 400 -> 1000
// concurrent-session throughput droop. This queue is the indexed
// alternative: each session holds exactly one slot, keyed by its current
// next_event_time(), moved in place (sift up/down) when the time changes.
// No stale entries, no allocation after the index space is sized, O(log n)
// per update.
//
// Determinism contract (what the bit-identity gates rely on): the minimum
// is totally ordered by (time, index) — among sessions scheduled at the
// same instant the lowest index surfaces first, exactly the tie-break the
// lazy heap's pop order produced. +infinity means "no event" and removes
// the session from the heap.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace sensei::sim {

class EventQueue {
 public:
  EventQueue() = default;

  // Grows the index space to at least `n` sessions (absent from the heap
  // until their first finite update). Never shrinks: fleet cells recycle
  // session slots, so the space is bounded by peak concurrency.
  void ensure_size(size_t n) {
    if (times_.size() < n) {
      times_.resize(n, kInfTime);
      pos_.resize(n, kNone);
    }
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Time and index of the earliest event; min_time() is +infinity when the
  // heap is empty (min_index() is then unspecified).
  double min_time() const { return heap_.empty() ? kInfTime : times_[heap_[0]]; }
  size_t min_index() const { return heap_[0]; }

  // Sets session `idx`'s next event time, inserting, moving, or (+infinity)
  // removing its slot as needed.
  void update(size_t idx, double time) {
    ensure_size(idx + 1);
    const bool present = pos_[idx] != kNone;
    if (time == kInfTime) {
      if (present) remove(idx);
      return;
    }
    double old = times_[idx];
    times_[idx] = time;
    if (!present) {
      pos_[idx] = heap_.size();
      heap_.push_back(idx);
      sift_up(pos_[idx]);
    } else if (time < old) {
      sift_up(pos_[idx]);
    } else if (old < time) {
      sift_down(pos_[idx]);
    }
  }

 private:
  static constexpr double kInfTime = std::numeric_limits<double>::infinity();
  static constexpr size_t kNone = static_cast<size_t>(-1);

  // (time, index) lexicographic order — the deterministic tie-break.
  bool before(size_t a, size_t b) const {
    if (times_[a] != times_[b]) return times_[a] < times_[b];
    return a < b;
  }

  void remove(size_t idx) {
    size_t hole = pos_[idx];
    pos_[idx] = kNone;
    times_[idx] = kInfTime;
    size_t last = heap_.back();
    heap_.pop_back();
    if (last == idx) return;  // removed the tail slot itself
    heap_[hole] = last;
    pos_[last] = hole;
    sift_up(hole);
    sift_down(hole);
  }

  void sift_up(size_t i) {
    while (i > 0) {
      size_t parent = (i - 1) / 2;
      if (!before(heap_[i], heap_[parent])) break;
      swap_slots(i, parent);
      i = parent;
    }
  }

  void sift_down(size_t i) {
    const size_t n = heap_.size();
    while (true) {
      size_t left = 2 * i + 1;
      if (left >= n) break;
      size_t child = left;
      size_t right = left + 1;
      if (right < n && before(heap_[right], heap_[left])) child = right;
      if (!before(heap_[child], heap_[i])) break;
      swap_slots(i, child);
      i = child;
    }
  }

  void swap_slots(size_t a, size_t b) {
    size_t ia = heap_[a], ib = heap_[b];
    heap_[a] = ib;
    heap_[b] = ia;
    pos_[ia] = b;
    pos_[ib] = a;
  }

  std::vector<size_t> heap_;   // session indices, heap-ordered by before()
  std::vector<size_t> pos_;    // session index -> heap position (kNone: absent)
  std::vector<double> times_;  // session index -> next event time
};

}  // namespace sensei::sim
