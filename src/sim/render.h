// Rendered videos: what a viewer actually watches.
//
// A rendered video fixes, per chunk, the bitrate level played and any stall
// immediately preceding the chunk, plus the initial startup delay. It is the
// common currency between the streaming simulator (which produces one from a
// session), the crowdsourcing substrate (raters rate rendered videos), and
// the QoE models (which predict a score for one).
//
// §2.3's "video series" — the same source content with a single low-quality
// incident injected at varying positions — are built with the with_*
// factories below.
#pragma once

#include <string>
#include <vector>

#include "media/encoder.h"

namespace sensei::sim {

struct RenderedChunk {
  size_t level = 0;
  double bitrate_kbps = 0.0;
  double visual_quality = 0.0;
  double rebuffer_s = 0.0;  // stall immediately before this chunk plays
};

class RenderedVideo {
 public:
  RenderedVideo() = default;
  RenderedVideo(std::string name, double chunk_duration_s,
                std::vector<RenderedChunk> chunks,
                std::vector<media::ChunkContent> content, double startup_delay_s = 0.0);

  // The source at its highest bitrate with no stalls (the "reference" video
  // used both as a series baseline and for rater calibration).
  static RenderedVideo pristine(const media::EncodedVideo& video, const std::string& name = "");

  // Copies of this rendering with one injected incident (series factories).
  RenderedVideo with_rebuffering(size_t chunk, double seconds) const;
  RenderedVideo with_bitrate_drop(size_t first_chunk, size_t num_chunks, size_t level,
                                  const media::EncodedVideo& video) const;
  RenderedVideo with_startup_delay(double seconds) const;

  const std::string& name() const { return name_; }
  double chunk_duration_s() const { return chunk_duration_s_; }
  size_t num_chunks() const { return chunks_.size(); }
  const RenderedChunk& chunk(size_t i) const { return chunks_.at(i); }
  const std::vector<RenderedChunk>& chunks() const { return chunks_; }
  const media::ChunkContent& content(size_t i) const { return content_.at(i); }
  const std::vector<media::ChunkContent>& content() const { return content_; }
  double startup_delay_s() const { return startup_delay_s_; }

  double total_rebuffer_s() const;
  double playback_duration_s() const;
  double mean_bitrate_kbps() const;
  // Number of adjacent chunk pairs with different levels.
  size_t switch_count() const;
  // Sum over |vq_i - vq_{i-1}| (smoothness penalty input).
  double total_quality_switch_magnitude() const;

  std::string& mutable_name() { return name_; }
  std::vector<RenderedChunk>& mutable_chunks() { return chunks_; }

 private:
  std::string name_;
  double chunk_duration_s_ = 4.0;
  std::vector<RenderedChunk> chunks_;
  std::vector<media::ChunkContent> content_;
  double startup_delay_s_ = 0.0;
};

// Builds the §2.3 video series: one rendering per chunk position, each with a
// single incident at that position.
std::vector<RenderedVideo> rebuffer_series(const media::EncodedVideo& video, double seconds);
std::vector<RenderedVideo> bitrate_drop_series(const media::EncodedVideo& video,
                                               size_t drop_level, size_t drop_chunks);

}  // namespace sensei::sim
