#include "sim/fleet.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "abr/planner.h"
#include "abr/registry.h"
#include "core/runner.h"
#include "net/shared_link.h"
#include "qoe/chunk_quality.h"
#include "sim/event_queue.h"
#include "sim/session_engine.h"

namespace sensei::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Fleet sessions carry no sensitivity weights; one shared empty vector
// keeps reset() reference-valid without per-session storage.
const std::vector<double> kNoWeights;

}  // namespace

void FleetAggregates::merge(const FleetAggregates& other) {
  cells += other.cells;
  sessions += other.sessions;
  chunks += other.chunks;
  outages += other.outages;
  abandoned += other.abandoned;
  if (sessions_by_policy.size() < other.sessions_by_policy.size()) {
    sessions_by_policy.resize(other.sessions_by_policy.size(), 0);
  }
  for (size_t k = 0; k < other.sessions_by_policy.size(); ++k) {
    sessions_by_policy[k] += other.sessions_by_policy[k];
  }
  peak_concurrent = std::max(peak_concurrent, other.peak_concurrent);
  session_qoe.merge(other.session_qoe);
  session_bitrate_kbps.merge(other.session_bitrate_kbps);
  session_rebuffer_s.merge(other.session_rebuffer_s);
  startup_delay_s.merge(other.startup_delay_s);
  qoe_sketch.merge(other.qoe_sketch);
}

FleetSimulator::FleetSimulator(FleetConfig config) : config_(std::move(config)) {
  if (config_.num_cells == 0) throw std::runtime_error("fleet: need at least one cell");
  if (config_.link_scale < 0.0) throw std::runtime_error("fleet: link scale must be >= 0");
  // Fail config mistakes at construction, not on worker threads mid-run:
  // the generator's constructor runs the full validation suite (including
  // registry validation of every policy spec). num_videos is excluded —
  // run() overrides it with the actual pool size.
  WorkloadConfig probe_config = config_.workload;
  probe_config.num_videos = 1;
  WorkloadGenerator probe(probe_config, 0);

  // Policy pooling tables: mix entries that canonicalize to the same spec
  // share one pool (and one sessions_by_policy slot), keyed in first-
  // occurrence order so the layout is a pure function of the config.
  const std::vector<std::string>& specs = probe.canonical_policy_specs();
  mix_to_pool_.reserve(specs.size());
  for (const std::string& spec : specs) {
    size_t pool = pool_specs_.size();
    for (size_t i = 0; i < pool_specs_.size(); ++i) {
      if (pool_specs_[i] == spec) {
        pool = i;
        break;
      }
    }
    if (pool == pool_specs_.size()) pool_specs_.push_back(spec);
    mix_to_pool_.push_back(pool);
  }
}

FleetAggregates FleetSimulator::run(const std::vector<const media::EncodedVideo*>& videos,
                                    const core::ExperimentRunner& runner,
                                    size_t num_shards) const {
  if (videos.empty()) throw std::runtime_error("fleet: empty video pool");
  for (const media::EncodedVideo* v : videos) {
    if (v == nullptr) throw std::runtime_error("fleet: null video in pool");
  }
  const size_t cells = config_.num_cells;
  if (num_shards == 0 || num_shards > cells) num_shards = cells;

  // Per-cell aggregates land at their cell index; shards are contiguous
  // blocks. Neither the thread count nor the shard count can change what
  // any cell computes or the serial fold below — the bit-identity contract.
  std::vector<FleetAggregates> per_cell(cells);
  runner.for_each(num_shards, [&](size_t shard) {
    size_t begin = shard * cells / num_shards;
    size_t end = (shard + 1) * cells / num_shards;
    for (size_t c = begin; c < end; ++c) per_cell[c] = run_cell(c, videos);
  });

  FleetAggregates total;
  for (const FleetAggregates& cell : per_cell) total.merge(cell);
  return total;
}

FleetAggregates FleetSimulator::run_cell(
    size_t cell, const std::vector<const media::EncodedVideo*>& videos) const {
  WorkloadConfig workload = config_.workload;
  workload.num_videos = videos.size();
  const uint64_t cell_seed = core::ExperimentRunner::task_seed(config_.seed, cell);
  WorkloadGenerator gen(workload, cell_seed);

  // Bottleneck capacity: the generated trace carries a per-viewer-scale
  // mean; scale it to the cell's expected concurrency (Little's law over
  // the mean video duration) unless the config fixes the factor.
  double link_scale = config_.link_scale;
  if (link_scale == 0.0) {
    double mean_duration_s = 0.0;
    for (const media::EncodedVideo* v : videos) {
      mean_duration_s += static_cast<double>(v->num_chunks()) * v->chunk_duration_s();
    }
    mean_duration_s /= static_cast<double>(videos.size());
    link_scale = std::max(1.0, workload.arrival_rate_per_s * mean_duration_s);
  }
  const std::string cell_name = "fleet-cell-" + std::to_string(cell);
  net::ThroughputTrace trace = gen.make_trace(cell_name).scaled(link_scale, cell_name);
  net::SharedLink link(trace, /*recycle_ids=*/true);

  FleetAggregates agg;
  agg.cells = 1;
  agg.sessions_by_policy.assign(pool_specs_.size(), 0);
  const qoe::ChunkQualityParams qoe_params;

  // Session slots: engine + bound policy, recycled across sessions. All
  // vectors below grow to the cell's peak concurrency and stay there.
  struct Slot {
    std::unique_ptr<SessionEngine> engine;  // constructed on first use, reset() after
    std::unique_ptr<AbrPolicy> policy;
    SessionArrival arrival;
  };
  std::vector<Slot> slots;
  std::vector<size_t> free_slots;
  // One policy pool per unique canonical spec (pool_specs_ order).
  std::vector<std::vector<std::unique_ptr<AbrPolicy>>> policy_pool(pool_specs_.size());
  abr::PlanBatch batch;
  EventQueue events;
  std::vector<size_t> transfer_owner;  // transfer id -> slot (ids recycled)

  size_t active = 0;

  auto admit = [&](const SessionArrival& a) -> size_t {
    size_t idx;
    if (!free_slots.empty()) {
      idx = free_slots.back();
      free_slots.pop_back();
    } else {
      idx = slots.size();
      slots.emplace_back();
      // Release paths (retire) must not allocate in steady state, so the
      // free lists get their worst-case capacity (every slot released) here
      // in the growth phase.
      free_slots.reserve(slots.size());
      for (auto& pool : policy_pool) pool.reserve(slots.size());
    }
    Slot& slot = slots[idx];
    slot.arrival = a;
    const size_t pool_idx = mix_to_pool_[a.policy_index];
    auto& pool = policy_pool[pool_idx];
    if (!pool.empty()) {
      slot.policy = std::move(pool.back());
      pool.pop_back();
    } else {
      slot.policy = abr::make_policy(pool_specs_[pool_idx]);
    }
    if (config_.player.share_plan_tables) slot.policy->attach_plan_batch(&batch);
    const media::EncodedVideo& video = *videos[a.video_index];
    if (slot.engine == nullptr) {
      slot.engine = std::make_unique<SessionEngine>(config_.player, video, link,
                                                    *slot.policy, kNoWeights, a.start_s);
      slot.engine->set_chunk_limit(a.chunk_limit);
    } else {
      slot.engine->reset(video, link, *slot.policy, kNoWeights, a.start_s, a.chunk_limit);
    }
    ++active;
    agg.peak_concurrent = std::max(agg.peak_concurrent, active);
    return idx;
  };

  auto retire = [&](size_t idx) {
    Slot& slot = slots[idx];
    const SessionEngine& engine = *slot.engine;
    const std::vector<ChunkRecord>& recs = engine.records();

    ++agg.sessions;
    agg.chunks += recs.size();
    ++agg.sessions_by_policy[mix_to_pool_[slot.arrival.policy_index]];
    const media::EncodedVideo& video = *videos[slot.arrival.video_index];
    if (engine.outcome() == SessionOutcome::kOutage) {
      ++agg.outages;
    } else if (recs.size() < video.num_chunks()) {
      ++agg.abandoned;
    }
    if (!recs.empty()) {
      double qoe_sum = 0.0, bitrate_sum = 0.0;
      for (size_t i = 0; i < recs.size(); ++i) {
        double prev_vq = i > 0 ? recs[i - 1].visual_quality : recs[i].visual_quality;
        qoe_sum +=
            qoe::chunk_quality(recs[i].visual_quality, recs[i].rebuffer_s, prev_vq, qoe_params);
        bitrate_sum += recs[i].bitrate_kbps;
      }
      double mean_qoe = qoe_sum / static_cast<double>(recs.size());
      agg.session_qoe.add(mean_qoe);
      agg.qoe_sketch.add(mean_qoe);
      agg.session_bitrate_kbps.add(bitrate_sum / static_cast<double>(recs.size()));
      agg.session_rebuffer_s.add(engine.total_stall_s());
      agg.startup_delay_s.add(engine.startup_delay_s());
    }
    if (config_.on_session_done) config_.on_session_done(cell, slot.arrival, engine);

    policy_pool[mix_to_pool_[slot.arrival.policy_index]].push_back(std::move(slot.policy));
    free_slots.push_back(idx);
    --active;
  };

  auto record_join = [&](size_t idx) {
    if (slots[idx].engine->state() != SessionEngine::State::kTransferring) return;
    size_t id = slots[idx].engine->transfer_id();
    if (transfer_owner.size() <= id) transfer_owner.resize(id + 1, 0);
    transfer_owner[id] = idx;
  };

  // The sim::Simulator event loop plus an arrival stream: completions land
  // first, then every arrival at t is admitted (its first event is at t),
  // then every engine transition scheduled at t runs in slot order.
  SessionArrival pending;
  bool have_pending = gen.next(&pending);
  double prev_t = -kInf;
  bool prev_was_noop = false;
  while (active > 0 || have_pending) {
    double t = std::min(events.min_time(), link.next_completion_s());
    if (have_pending) t = std::min(t, pending.start_s);

    if (t == kInf) {
      // Dead link, no arrivals left: every active session is stuck on a
      // transfer the link can never deliver. Outage-truncate, slot order.
      for (size_t idx = 0; idx < slots.size(); ++idx) {
        if (slots[idx].engine != nullptr && slots[idx].policy != nullptr &&
            !slots[idx].engine->done()) {
          slots[idx].engine->fail_transfer();
          retire(idx);
        }
      }
      break;
    }

    size_t processed = 0;
    link.advance_to(t);
    for (const net::SharedLink::Completion& completion : link.completions_sorted()) {
      ++processed;
      size_t idx = transfer_owner[completion.id];
      slots[idx].engine->complete_transfer(completion.finish_s);
      if (slots[idx].engine->done()) {
        events.update(idx, kInf);
        retire(idx);
      } else {
        events.update(idx, slots[idx].engine->next_event_time());
      }
    }
    link.clear_completions();

    while (have_pending && pending.start_s <= t) {
      size_t idx = admit(pending);
      events.update(idx, slots[idx].engine->next_event_time());
      have_pending = gen.next(&pending);
      ++processed;
    }

    while (!events.empty() && events.min_time() <= t) {
      size_t idx = events.min_index();
      slots[idx].engine->advance_to(t);
      ++processed;
      events.update(idx, slots[idx].engine->next_event_time());
      if (slots[idx].engine->done()) {
        retire(idx);
      } else {
        record_join(idx);
      }
    }

    // Livelock sentinel, as in sim::Simulator: one no-op instant is legal
    // (an epsilon-short completion estimate), two in a row can never resolve.
    if (processed == 0 && prev_was_noop && t == prev_t) {
      throw std::runtime_error("fleet: cell " + std::to_string(cell) +
                               " event loop stalled at t=" + std::to_string(t));
    }
    prev_was_noop = processed == 0;
    prev_t = t;
  }

  // Detach the shared planning tables before the batch dies with the cell.
  for (auto& pool : policy_pool) {
    for (auto& policy : pool) policy->attach_plan_batch(nullptr);
  }
  return agg;
}

}  // namespace sensei::sim
