#include "sim/fleet.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "abr/planner.h"
#include "abr/registry.h"
#include "core/runner.h"
#include "net/shared_link.h"
#include "qoe/chunk_quality.h"
#include "sim/event_queue.h"
#include "sim/session_engine.h"
#include "sim/simulator.h"
#include "util/kernels.h"
#include "util/rng.h"

namespace sensei::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Fleet sessions carry no sensitivity weights; one shared empty vector
// keeps reset() reference-valid without per-session storage.
const std::vector<double> kNoWeights;

// Salts splitting the cell seed into decoupled fault streams: the trace
// fault plan and the cell-failure draw must not perturb the workload stream
// (or each other), so faults change *what breaks*, never who arrives when.
constexpr uint64_t kTraceFaultSalt = 0xFA01'7F4A'0000'0001ULL;
constexpr uint64_t kCellFailSalt = 0xFA01'7F4A'0000'0002ULL;

}  // namespace

void FleetAggregates::merge(const FleetAggregates& other) {
  cells += other.cells;
  sessions += other.sessions;
  chunks += other.chunks;
  outages += other.outages;
  abandoned += other.abandoned;
  auto add_counts = [](std::vector<size_t>& into, const std::vector<size_t>& from) {
    if (into.size() < from.size()) into.resize(from.size(), 0);
    for (size_t k = 0; k < from.size(); ++k) into[k] += from[k];
  };
  add_counts(sessions_by_policy, other.sessions_by_policy);
  add_counts(completed_by_policy, other.completed_by_policy);
  add_counts(abandoned_by_policy, other.abandoned_by_policy);
  timeouts += other.timeouts;
  retries += other.retries;
  timeout_outages += other.timeout_outages;
  failovers += other.failovers;
  failed_cells += other.failed_cells;
  disrupted_sessions += other.disrupted_sessions;
  recovered_sessions += other.recovered_sessions;
  peak_concurrent = std::max(peak_concurrent, other.peak_concurrent);
  session_qoe.merge(other.session_qoe);
  session_bitrate_kbps.merge(other.session_bitrate_kbps);
  session_rebuffer_s.merge(other.session_rebuffer_s);
  startup_delay_s.merge(other.startup_delay_s);
  qoe_sketch.merge(other.qoe_sketch);
}

FleetSimulator::FleetSimulator(FleetConfig config) : config_(std::move(config)) {
  if (config_.num_cells == 0) throw std::runtime_error("fleet: need at least one cell");
  if (config_.link_scale < 0.0) throw std::runtime_error("fleet: link scale must be >= 0");
  const FleetFaultConfig& faults = config_.faults;
  if (!(faults.cell_failure_fraction >= 0.0) || faults.cell_failure_fraction > 1.0)
    throw std::runtime_error("fleet: cell failure fraction must be in [0, 1]");
  if (faults.cell_failure_fraction > 0.0) {
    if (!(faults.fallback_scale > 0.0) || !std::isfinite(faults.fallback_scale))
      throw std::runtime_error("fleet: fallback scale must be finite and > 0");
    if (!(faults.reconnect_delay_s >= 0.0) || !std::isfinite(faults.reconnect_delay_s))
      throw std::runtime_error("fleet: reconnect delay must be finite and >= 0");
    if (faults.cell_failure_window_s < 0.0 || !std::isfinite(faults.cell_failure_window_s))
      throw std::runtime_error("fleet: cell failure window must be finite and >= 0");
  }
  // Fail config mistakes at construction, not on worker threads mid-run:
  // the generator's constructor runs the full validation suite (including
  // registry validation of every policy spec). num_videos is excluded —
  // run() overrides it with the actual pool size.
  WorkloadConfig probe_config = config_.workload;
  probe_config.num_videos = 1;
  WorkloadGenerator probe(probe_config, 0);

  // Policy pooling tables: mix entries that canonicalize to the same spec
  // share one pool (and one sessions_by_policy slot), keyed in first-
  // occurrence order so the layout is a pure function of the config.
  const std::vector<std::string>& specs = probe.canonical_policy_specs();
  mix_to_pool_.reserve(specs.size());
  for (const std::string& spec : specs) {
    size_t pool = pool_specs_.size();
    for (size_t i = 0; i < pool_specs_.size(); ++i) {
      if (pool_specs_[i] == spec) {
        pool = i;
        break;
      }
    }
    if (pool == pool_specs_.size()) pool_specs_.push_back(spec);
    mix_to_pool_.push_back(pool);
  }
}

FleetAggregates FleetSimulator::run(const std::vector<const media::EncodedVideo*>& videos,
                                    const core::ExperimentRunner& runner,
                                    size_t num_shards) const {
  if (videos.empty()) throw std::runtime_error("fleet: empty video pool");
  for (const media::EncodedVideo* v : videos) {
    if (v == nullptr) throw std::runtime_error("fleet: null video in pool");
  }
  const size_t cells = config_.num_cells;
  if (num_shards == 0 || num_shards > cells) num_shards = cells;

  // Per-cell aggregates land at their cell index; shards are contiguous
  // blocks. Neither the thread count nor the shard count can change what
  // any cell computes or the serial fold below — the bit-identity contract.
  std::vector<FleetAggregates> per_cell(cells);
  runner.for_each(num_shards, [&](size_t shard) {
    size_t begin = shard * cells / num_shards;
    size_t end = (shard + 1) * cells / num_shards;
    for (size_t c = begin; c < end; ++c) per_cell[c] = run_cell(c, videos);
  });

  FleetAggregates total;
  for (const FleetAggregates& cell : per_cell) total.merge(cell);
  return total;
}

FleetAggregates FleetSimulator::run_cell(
    size_t cell, const std::vector<const media::EncodedVideo*>& videos) const {
  WorkloadConfig workload = config_.workload;
  workload.num_videos = videos.size();
  const uint64_t cell_seed = core::ExperimentRunner::task_seed(config_.seed, cell);
  WorkloadGenerator gen(workload, cell_seed);

  // Bottleneck capacity: the generated trace carries a per-viewer-scale
  // mean; scale it to the cell's expected concurrency (Little's law over
  // the mean video duration) unless the config fixes the factor.
  double link_scale = config_.link_scale;
  if (link_scale == 0.0) {
    double mean_duration_s = 0.0;
    for (const media::EncodedVideo* v : videos) {
      mean_duration_s += static_cast<double>(v->num_chunks()) * v->chunk_duration_s();
    }
    mean_duration_s /= static_cast<double>(videos.size());
    link_scale = std::max(1.0, workload.arrival_rate_per_s * mean_duration_s);
  }
  const std::string cell_name = "fleet-cell-" + std::to_string(cell);
  net::ThroughputTrace trace = gen.make_trace(cell_name).scaled(link_scale, cell_name);

  // Fault realization. Every draw comes from its own salted stream off the
  // cell seed, so enabling faults never perturbs the workload (arrivals,
  // videos, policies are unchanged) and realizations are pure functions of
  // (config, cell) — identical across thread and shard counts. The fallback
  // bottleneck is derived from the *clean* cell trace: it is a different
  // physical link, so the primary's capacity faults do not apply to it.
  const FleetFaultConfig& faults = config_.faults;
  net::FaultPlan fault_plan;
  const net::FaultPlan* plan_ptr = nullptr;
  double fail_at_s = kInf;
  std::optional<net::ThroughputTrace> fallback_trace;
  std::optional<net::SharedLink> fallback_link;
  if (faults.cell_failure_fraction > 0.0) {
    util::Rng fail_rng(util::mix_seed(cell_seed, kCellFailSalt));
    if (fail_rng.chance(faults.cell_failure_fraction)) {
      const double window = faults.cell_failure_window_s > 0.0
                                ? faults.cell_failure_window_s
                                : workload.arrival_window_s;
      fail_at_s = fail_rng.uniform(0.0, window);
      fallback_trace.emplace(trace.scaled(faults.fallback_scale, cell_name + "-fallback"));
      fallback_link.emplace(*fallback_trace, /*recycle_ids=*/true);
    }
  }
  if (!faults.trace_faults.empty()) {
    fault_plan = net::FaultPlan::random(faults.trace_faults,
                                        util::mix_seed(cell_seed, kTraceFaultSalt));
    if (!fault_plan.empty()) {
      trace = fault_plan.apply_to_trace(trace);
      plan_ptr = &fault_plan;
    }
  }

  net::SharedLink link(trace, /*recycle_ids=*/true);
  // All admissions and the event loop go through `live`, which repoints to
  // the fallback at the failover instant.
  net::SharedLink* live = &link;

  FleetAggregates agg;
  agg.cells = 1;
  agg.sessions_by_policy.assign(pool_specs_.size(), 0);
  agg.completed_by_policy.assign(pool_specs_.size(), 0);
  agg.abandoned_by_policy.assign(pool_specs_.size(), 0);
  if (fail_at_s < kInf) agg.failed_cells = 1;  // counts the draw, not the hit
  const qoe::ChunkQualityParams qoe_params;

  // Session slots recycled across sessions, laid out as parallel arrays
  // (SoA): the event loop touches engines[] almost exclusively, so slot
  // scans stream over one pointer array instead of striding across
  // {engine, policy, arrival} triples. All vectors below grow to the cell's
  // peak concurrency and stay there.
  std::vector<std::unique_ptr<SessionEngine>> engines;  // constructed on first use
  std::vector<std::unique_ptr<AbrPolicy>> policies;
  std::vector<SessionArrival> arrivals;
  std::vector<size_t> free_slots;
  // Scratch rows for retire()'s per-session QoE fold (chunk_quality_row over
  // the session's records), sized to the longest session seen.
  std::vector<double> rec_vq, rec_stall, rec_prev, rec_q;
  // One policy pool per unique canonical spec (pool_specs_ order).
  std::vector<std::vector<std::unique_ptr<AbrPolicy>>> policy_pool(pool_specs_.size());
  abr::PlanBatch batch;
  EventQueue events;
  std::vector<size_t> transfer_owner;  // transfer id -> slot (ids recycled)

  size_t active = 0;
  uint64_t session_ordinal = 0;  // admission order, for per-session jitter tags

  auto admit = [&](const SessionArrival& a) -> size_t {
    size_t idx;
    if (!free_slots.empty()) {
      idx = free_slots.back();
      free_slots.pop_back();
    } else {
      idx = engines.size();
      engines.emplace_back();
      policies.emplace_back();
      arrivals.emplace_back();
      // Release paths (retire) must not allocate in steady state, so the
      // free lists get their worst-case capacity (every slot released) here
      // in the growth phase.
      free_slots.reserve(engines.size());
      for (auto& pool : policy_pool) pool.reserve(engines.size());
    }
    arrivals[idx] = a;
    const size_t pool_idx = mix_to_pool_[a.policy_index];
    auto& pool = policy_pool[pool_idx];
    if (!pool.empty()) {
      policies[idx] = std::move(pool.back());
      pool.pop_back();
    } else {
      policies[idx] = abr::make_policy(pool_specs_[pool_idx]);
    }
    if (config_.player.share_plan_tables) policies[idx]->attach_plan_batch(&batch);
    const media::EncodedVideo& video = *videos[a.video_index];
    if (engines[idx] == nullptr) {
      engines[idx] = std::make_unique<SessionEngine>(config_.player, video, *live,
                                                     *policies[idx], kNoWeights, a.start_s);
      engines[idx]->set_chunk_limit(a.chunk_limit);
    } else {
      engines[idx]->reset(video, *live, *policies[idx], kNoWeights, a.start_s,
                          a.chunk_limit);
    }
    // Stable jitter identity (admission order, decoupled from slot reuse)
    // and the live fault plan for RTT spikes (nullptr detaches).
    engines[idx]->set_session_tag(util::mix_seed(cell_seed, session_ordinal++));
    engines[idx]->set_fault_plan(plan_ptr);
    ++active;
    agg.peak_concurrent = std::max(agg.peak_concurrent, active);
    return idx;
  };

  auto retire = [&](size_t idx) {
    const SessionEngine& engine = *engines[idx];
    const std::vector<ChunkRecord>& recs = engine.records();

    ++agg.sessions;
    agg.chunks += recs.size();
    const size_t pool_idx = mix_to_pool_[arrivals[idx].policy_index];
    ++agg.sessions_by_policy[pool_idx];
    // Typed outcome split: outage vs viewer abandonment vs full completion,
    // from the engine's cause instead of re-deriving it from record counts.
    switch (engine.outcome_cause()) {
      case OutcomeCause::kAbandoned:
        ++agg.abandoned;
        ++agg.abandoned_by_policy[pool_idx];
        break;
      case OutcomeCause::kNone:
        ++agg.completed_by_policy[pool_idx];
        break;
      case OutcomeCause::kTimeoutBudget:
        ++agg.timeout_outages;
        ++agg.outages;
        break;
      case OutcomeCause::kDeadLink:
        ++agg.outages;
        break;
    }
    agg.timeouts += engine.timeouts();
    agg.retries += engine.retries();
    if (engine.failovers() > 0) ++agg.failovers;
    if (engine.timeouts() > 0 || engine.failovers() > 0) {
      ++agg.disrupted_sessions;
      if (engine.outcome() != SessionOutcome::kOutage) ++agg.recovered_sessions;
    }
    if (!recs.empty()) {
      // SoA fold: gather the record fields into contiguous rows (prev is
      // the quality row shifted by one, first chunk self-seeded), one
      // chunk_quality_row kernel over the session, then sequential sums —
      // the same left-to-right accumulation as the scalar loop it replaces.
      const size_t n = recs.size();
      if (rec_vq.size() < n) {
        rec_vq.resize(n);
        rec_stall.resize(n);
        rec_prev.resize(n);
        rec_q.resize(n);
      }
      double bitrate_sum = 0.0;
      for (size_t i = 0; i < n; ++i) {
        rec_vq[i] = recs[i].visual_quality;
        rec_stall[i] = recs[i].rebuffer_s;
        bitrate_sum += recs[i].bitrate_kbps;
      }
      rec_prev[0] = rec_vq[0];
      std::copy(rec_vq.begin(), rec_vq.begin() + (n - 1), rec_prev.begin() + 1);
      util::kernels::chunk_quality_row(rec_vq.data(), rec_stall.data(), rec_prev.data(),
                                       n, qoe_params.beta_rebuf,
                                       qoe_params.rebuf_saturation,
                                       qoe_params.beta_switch, qoe_params.floor,
                                       rec_q.data());
      double mean_qoe = util::kernels::sum_row(rec_q.data(), n) / static_cast<double>(n);
      agg.session_qoe.add(mean_qoe);
      agg.qoe_sketch.add(mean_qoe);
      agg.session_bitrate_kbps.add(bitrate_sum / static_cast<double>(n));
      agg.session_rebuffer_s.add(engine.total_stall_s());
      agg.startup_delay_s.add(engine.startup_delay_s());
    }
    if (config_.on_session_done) config_.on_session_done(cell, arrivals[idx], engine);

    policy_pool[mix_to_pool_[arrivals[idx].policy_index]].push_back(
        std::move(policies[idx]));
    free_slots.push_back(idx);
    --active;
  };

  auto record_join = [&](size_t idx) {
    if (engines[idx]->state() != SessionEngine::State::kTransferring) return;
    size_t id = engines[idx]->transfer_id();
    if (transfer_owner.size() <= id) transfer_owner.resize(id + 1, 0);
    transfer_owner[id] = idx;
  };

  // The sim::Simulator event loop plus an arrival stream: completions land
  // first, then every arrival at t is admitted (its first event is at t),
  // then every engine transition scheduled at t runs in slot order.
  SessionArrival pending;
  bool have_pending = gen.next(&pending);
  double prev_t = -kInf;
  bool prev_was_noop = false;
  while (active > 0 || have_pending) {
    double t = std::min(events.min_time(), live->next_completion_s());
    if (have_pending) t = std::min(t, pending.start_s);
    t = std::min(t, fail_at_s);

    if (t == kInf) {
      // Dead link, no arrivals left: every active session is stuck on a
      // transfer the link can never deliver. Outage-truncate, slot order.
      for (size_t idx = 0; idx < engines.size(); ++idx) {
        if (engines[idx] != nullptr && policies[idx] != nullptr &&
            !engines[idx]->done()) {
          engines[idx]->fail_transfer();
          retire(idx);
        }
      }
      break;
    }

    size_t processed = 0;
    live->advance_to(t);
    for (const net::SharedLink::Completion& completion : live->completions_sorted()) {
      ++processed;
      size_t idx = transfer_owner[completion.id];
      engines[idx]->complete_transfer(completion.finish_s);
      if (engines[idx]->done()) {
        events.update(idx, kInf);
        retire(idx);
      } else {
        events.update(idx, engines[idx]->next_event_time());
      }
    }
    live->clear_completions();

    while (have_pending && pending.start_s <= t) {
      size_t idx = admit(pending);
      events.update(idx, engines[idx]->next_event_time());
      have_pending = gen.next(&pending);
      ++processed;
    }

    while (!events.empty() && events.min_time() <= t) {
      size_t idx = events.min_index();
      engines[idx]->advance_to(t);
      ++processed;
      events.update(idx, engines[idx]->next_event_time());
      if (engines[idx]->done()) {
        retire(idx);
      } else {
        record_join(idx);
      }
    }

    // Cell failover, processed at the end of its instant: completions and
    // transitions that land exactly at the failure time still resolve on
    // the primary; everything live afterwards re-homes to the fallback
    // (in-flight attempts are aborted and charged by the engine, idle
    // sessions just repoint) and re-enters the heap at its new event time.
    if (fail_at_s <= t) {
      ++processed;
      for (size_t idx = 0; idx < engines.size(); ++idx) {
        if (engines[idx] != nullptr && policies[idx] != nullptr &&
            !engines[idx]->done()) {
          engines[idx]->rehome(*fallback_link, faults.reconnect_delay_s, t);
          events.update(idx, engines[idx]->next_event_time());
        }
      }
      live = &*fallback_link;
      fail_at_s = kInf;
    }

    // Livelock sentinel, as in sim::Simulator: one no-op instant is legal
    // (an epsilon-short completion estimate), two in a row can never resolve.
    if (processed == 0 && prev_was_noop && t == prev_t) {
      size_t stuck = engines.size();
      for (size_t idx = 0; idx < engines.size(); ++idx) {
        if (engines[idx] != nullptr && policies[idx] != nullptr &&
            !engines[idx]->done()) {
          stuck = idx;
          break;
        }
      }
      throw LivelockError("fleet cell " + std::to_string(cell), stuck, t);
    }
    prev_was_noop = processed == 0;
    prev_t = t;
  }

  // Detach the shared planning tables before the batch dies with the cell.
  for (auto& pool : policy_pool) {
    for (auto& policy : pool) policy->attach_plan_batch(nullptr);
  }
  return agg;
}

}  // namespace sensei::sim
