// Fleet simulator: a sharded multi-bottleneck topology of independent
// SharedLink cells, sized for million-session populations.
//
// Topology. A CDN-scale deployment is not one bottleneck with N viewers —
// it is thousands of edge bottlenecks (a cell: one last-mile/edge link)
// each contending among the handful-to-hundreds of viewers behind it. A
// FleetSimulator run is `num_cells` such cells; each cell owns a seeded
// workload stream (sim/workload.h), its own generated bottleneck trace, and
// its own discrete-event loop (the sim::Simulator loop plus arrivals), all
// derived from ExperimentRunner::task_seed(seed, cell) — a cell is a pure
// function of (config, videos, cell index).
//
// Scale discipline (what makes a million sessions fit):
//  - engines are pooled: a finished session's SessionEngine is reset() to
//    the next arrival instead of destroyed — with record_timeline off, the
//    steady-state event loop performs zero allocations (pinned by
//    tests/test_fleet_alloc.cpp);
//  - policies are pooled per unique canonical registry spec the same way
//    (begin_session resets; mix entries denoting the same configuration
//    share one pool);
//  - the link recycles transfer ids (SharedLink recycle_ids), so all
//    per-cell state is bounded by *peak concurrency*, not session count;
//  - no per-session results are retained: each finished session folds into
//    streaming aggregates (util::stats MergeableAccumulator/QuantileSketch)
//    and is gone.
//
// Determinism. Cells are sharded across ExperimentRunner threads as
// contiguous blocks; per-cell aggregates are written at their cell index
// and folded serially in cell order after the fan-out. Thread and shard
// counts therefore change only which worker computes a cell, never any
// cell's content nor the merge order — fleet aggregates are bit-identical
// across --threads and --shards (pinned by tests/test_fleet.cpp and CI
// diffs on bench_fleet).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "media/encoder.h"
#include "net/fault.h"
#include "sim/player.h"
#include "sim/workload.h"
#include "util/stats.h"

namespace sensei::core {
class ExperimentRunner;
}

namespace sensei::sim {

class SessionEngine;

// Streaming fleet aggregates: everything the fleet reports, in O(1) memory
// per cell. Mergeable — merge() order must be fixed (the fleet folds in
// cell order) for bit-identical totals.
struct FleetAggregates {
  size_t cells = 0;
  size_t sessions = 0;
  size_t chunks = 0;
  size_t outages = 0;
  size_t abandoned = 0;  // completed early via the viewer's chunk limit
  // Sessions per unique canonical policy spec, parallel to
  // FleetSimulator::policy_specs(). Empty until a run fills it; merge()
  // grows it to the larger operand. completed/abandoned split the same
  // per-policy counts by how the session ended (outages are the remainder:
  // sessions - completed - abandoned).
  std::vector<size_t> sessions_by_policy;
  std::vector<size_t> completed_by_policy;
  std::vector<size_t> abandoned_by_policy;

  // --- resilience counters (all 0 when faults and timeouts are off) -------
  size_t timeouts = 0;          // request attempts that missed their deadline
  size_t retries = 0;           // retry attempts issued after a timeout
  size_t timeout_outages = 0;   // outages caused by retry-budget exhaustion
  size_t failovers = 0;         // sessions re-homed by a cell failover
  size_t failed_cells = 0;      // cells whose bottleneck hard-failed
  // A session is *disrupted* when it hit >= 1 timeout or failover, and
  // *recovered* when it was disrupted yet did not end in an outage — the
  // recovery rate bench_resilience sweeps is recovered / disrupted.
  size_t disrupted_sessions = 0;
  size_t recovered_sessions = 0;
  // Largest number of simultaneously active sessions in any one cell — the
  // quantity all per-cell memory is bounded by.
  size_t peak_concurrent = 0;

  // Per-session metrics (sessions with at least one chunk): mean per-chunk
  // QoE under the default qoe::ChunkQualityParams, mean bitrate, total
  // rebuffer, startup delay.
  util::MergeableAccumulator session_qoe;
  util::MergeableAccumulator session_bitrate_kbps;
  util::MergeableAccumulator session_rebuffer_s;
  util::MergeableAccumulator startup_delay_s;
  // Distribution of per-session mean QoE (P50/P90/P99 in the bench JSON).
  util::QuantileSketch qoe_sketch;

  void merge(const FleetAggregates& other);
};

// Fleet-level fault model. Everything is disabled by default — a default-
// constructed FleetFaultConfig reproduces pre-fault aggregates bit for bit
// (no extra RNG draws, no trace rebuilds). Per-cell realizations derive
// from task_seed(seed, cell) with fixed salts, so they are identical across
// --threads / --shards.
struct FleetFaultConfig {
  // Seeded trace faults per cell (outages / capacity collapses / RTT
  // spikes). All-zero mean counts (the default) inject nothing.
  net::RandomFaultSpec trace_faults;
  // Fraction of cells whose primary bottleneck hard-fails at a seeded time
  // drawn uniformly from [0, cell_failure_window_s) — 0 reuses the
  // workload's arrival window. Live sessions re-home to a fallback link
  // (the clean cell trace scaled by fallback_scale) after reconnect_delay_s.
  double cell_failure_fraction = 0.0;
  double cell_failure_window_s = 0.0;
  double reconnect_delay_s = 2.0;
  double fallback_scale = 0.5;

  bool any() const { return !trace_faults.empty() || cell_failure_fraction > 0.0; }
};

struct FleetConfig {
  WorkloadConfig workload;  // per-cell arrival/abandonment/policy/trace model
  size_t num_cells = 1;
  uint64_t seed = 1;
  // Fault injection + failover (disabled by default; see FleetFaultConfig).
  FleetFaultConfig faults;
  // Session mechanics. record_timeline defaults *off* here — the fleet
  // never reads timelines and keeping them would allocate per session.
  PlayerConfig player = [] {
    PlayerConfig c;
    c.record_timeline = false;
    return c;
  }();
  // Cell bottleneck capacity = generated trace * link_scale. 0 (default)
  // sizes it automatically to the workload's expected concurrency
  // (arrival rate x mean video duration, Little's law), so the per-viewer
  // share stays in the generated trace's band as the workload scales.
  double link_scale = 0.0;
  // Observation hook, called once per finished session *from the worker
  // thread running its cell*, before the engine is recycled. Must be
  // thread-safe across cells; keep it cheap. Tests use it to capture
  // per-session data the fleet itself deliberately does not retain.
  std::function<void(size_t cell, const SessionArrival&, const SessionEngine&)>
      on_session_done;
};

class FleetSimulator {
 public:
  explicit FleetSimulator(FleetConfig config);

  const FleetConfig& config() const { return config_; }

  // The unique canonical policy specs of the workload mix, in first-
  // occurrence order: FleetAggregates::sessions_by_policy[i] counts the
  // sessions that ran policy_specs()[i]. Mix entries that canonicalize to
  // the same spec share one pool slot (and one count).
  const std::vector<std::string>& policy_specs() const { return pool_specs_; }

  // Runs every cell to completion and returns the fleet-wide aggregates.
  // `videos` is the shared pool arrivals draw from (workload.num_videos is
  // overridden to its size); all pointers must outlive the call. Cells are
  // grouped into `num_shards` contiguous blocks fanned out over `runner`
  // (0 = one shard per cell). Aggregates are bit-identical for any thread
  // and shard count.
  FleetAggregates run(const std::vector<const media::EncodedVideo*>& videos,
                      const core::ExperimentRunner& runner, size_t num_shards = 0) const;

 private:
  FleetAggregates run_cell(size_t cell,
                           const std::vector<const media::EncodedVideo*>& videos) const;

  FleetConfig config_;
  // Policy pooling tables, precomputed from the workload mix via the
  // registry: mix entry i runs the policy pool mix_to_pool_[i] keys.
  std::vector<std::string> pool_specs_;
  std::vector<size_t> mix_to_pool_;
};

}  // namespace sensei::sim
