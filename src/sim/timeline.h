// Exact event-driven session timeline.
//
// The timeline engine is the simulator's single source of truth for *when*
// things happen in a streaming session: every download, stall, scheduled
// pause, buffer-cap idle, and RTT wait is an explicit, ordered, exactly
// placed span of wall clock. It replaces the ad-hoc per-chunk accounting
// the legacy `Player::stream` loop carried, and fixes its two timing bugs
// by construction:
//
//  * RTT is request dead time — it burns wall clock *before* the first
//    byte and consumes no trace capacity, so goodput estimates exclude it
//    (the legacy loop folded RTT into the transfer, biasing every
//    throughput sample low on small chunks).
//  * Zero-throughput stretches yield unbounded stalls or a typed
//    `SessionOutcome::kOutage`, never a silently faked completion (the
//    legacy trace walk gave up after 10,000 intervals and reported the
//    chunk as downloaded).
//
// Timing model (pinned by tests/test_timeline.cpp; see README "Timing
// model"):
//
//  * startup   — the first chunk's download (plus any scheduled pre-roll
//                wait) is join latency, not a stall.
//  * stall     — the playout buffer empties mid-download: playback freezes
//                from `arrival - stall` until the chunk arrives.
//  * scheduled pause — an ABR-initiated pause (SENSEI §5). Downloads
//                continue while playback is frozen, which in buffer terms
//                credits the pause length to the buffer; the pause is
//                charged to the next chunk's stall time.
//  * idle      — the buffer would exceed its cap: the client stops
//                requesting while playback drains the excess in real time.
//
// On well-behaved traces (no outage) with rtt_s = 0 the engine is
// bit-identical to the legacy accounting, field for field — the
// equivalence gate in tests/test_timeline.cpp enforces it on a seeded
// (video × trace × policy) grid at 1 and 4 runner threads.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "media/encoder.h"
#include "net/trace.h"
#include "sim/session.h"

namespace sensei::sim {

class AbrPolicy;     // sim/player.h
struct PlayerConfig; // sim/player.h

// Exact per-chunk timing decomposition. All wall-clock fields are seconds
// since the session began (the first request is issued at 0).
struct ChunkTrajectory {
  size_t chunk = 0;
  size_t level = 0;                 // rung actually delivered (after any retry drop)
  double request_wall_s = 0.0;      // first download request issued
  // Wall clock burnt by failed attempts: each timed-out (or failed-over)
  // attempt's RTT + partial transfer. 0 unless resilience fired.
  double retry_wasted_s = 0.0;
  // Backoff waits between attempts (exponential backoff and/or failover
  // reconnection delay). 0 unless resilience fired.
  double backoff_s = 0.0;
  size_t retries = 0;               // failed attempts that were retried
  double rtt_s = 0.0;               // request dead time of the delivering attempt
  double transfer_s = 0.0;          // bytes on the wire (delivering attempt)
  double arrival_wall_s = 0.0;      // request + retry_wasted + backoff + rtt + transfer
  double stall_s = 0.0;             // unscheduled stall during this download
  double stall_start_wall_s = 0.0;  // arrival - stall (only meaningful when stall_s > 0)
  double scheduled_pause_s = 0.0;   // ABR-scheduled pause credited to the buffer
  double idle_s = 0.0;              // buffer-cap idle after arrival
  double buffer_before_s = 0.0;     // playout buffer at request time
  double buffer_after_s = 0.0;      // after arrival, credits, and the cap
  double playhead_before_s = 0.0;   // media seconds rendered at request time
  double playhead_after_s = 0.0;    // media seconds rendered at the next request
  // Scheduled-pause seconds not yet served at the end of this chunk's
  // window. A pause is credited to the buffer at decision time (SENSEI §5)
  // but the viewer serves it across the *following* download windows, so
  // the credited buffer holds stored media plus this debt and the exact
  // conservation law is
  //   playhead + buffer - pause_debt == media arrived.
  double pause_debt_after_s = 0.0;
  double goodput_kbps = 0.0;        // size * 8 / transfer — RTT excluded
};

// One span on the session timeline, expanded from the trajectories.
//
// kRttWait / kTransfer / kIdle partition each chunk's wall-clock download
// window. kStall and kScheduledPause are playback-state overlays: a stall
// occupies the tail of its chunk's download window (the buffer ran dry
// before the bytes landed), and a scheduled pause overlaps the *following*
// download window (downloads continue while playback is frozen — the
// buffer-credit model of SENSEI §5). kStartupWait covers join latency.
// kRetryWait / kBackoff cover resilience recoveries: the wall clock burnt
// by failed request attempts and the backoff waits between them. The
// trajectory stores per-chunk totals, not per-attempt spans, so events()
// renders them as one consolidated span each (waste first, then backoff)
// between the request and the delivering attempt's RTT — exact in total
// duration, consolidated in ordering.
enum class TimelineEventKind {
  kStartupWait,
  kRttWait,
  kTransfer,
  kStall,
  kScheduledPause,
  kIdle,
  kRetryWait,
  kBackoff,
};

const char* to_string(TimelineEventKind kind);

struct TimelineEvent {
  TimelineEventKind kind = TimelineEventKind::kTransfer;
  size_t chunk = 0;
  double start_s = 0.0;       // wall clock
  double duration_s = 0.0;
  double buffer_start_s = 0.0;
  double buffer_end_s = 0.0;
};

// The full playhead/buffer trajectory of one session.
class SessionTimeline {
 public:
  SessionTimeline() = default;
  SessionTimeline(double chunk_duration_s, double rtt_s);

  const std::vector<ChunkTrajectory>& chunks() const { return chunks_; }
  double chunk_duration_s() const { return chunk_duration_s_; }
  double rtt_s() const { return rtt_s_; }

  SessionOutcome outcome() const { return outcome_; }
  // Valid when outcome() == kOutage: the chunk whose download never
  // completed, and the wall clock at which its doomed request was issued.
  size_t outage_chunk() const { return outage_chunk_; }
  double outage_wall_s() const { return outage_wall_s_; }

  double startup_delay_s() const { return startup_delay_s_; }
  // Wall clock when the last completed chunk's window closed (arrival +
  // idle); 0 for an empty timeline.
  double duration_s() const;

  double total_stall_s() const;             // unscheduled + scheduled
  double total_unscheduled_stall_s() const;
  double total_scheduled_pause_s() const;
  double total_idle_s() const;
  // Wall clock of the first unscheduled stall's onset, or -1 if none.
  double first_stall_wall_s() const;

  // Expands the trajectories into ordered timeline events (zero-length
  // spans are skipped). Within a chunk: startup-wait / rtt / transfer /
  // stall overlay / scheduled-pause overlay / idle.
  std::vector<TimelineEvent> events() const;

  // Cross-checks the trajectory invariants (continuity of buffer, playhead,
  // and wall clock; non-negative spans; cap respected). Returns false and
  // fills `why` (when non-null) on the first violation. Exercised by the
  // test suite after every engine change.
  bool check_invariants(std::string* why = nullptr) const;

  // --- engine-side mutation (used by stream_timeline) ---------------------
  // Pre-sizes the trajectory store so the per-chunk push never reallocates
  // on the session hot path.
  void reserve(size_t num_chunks) { chunks_.reserve(num_chunks); }
  void push_chunk(const ChunkTrajectory& t) { chunks_.push_back(t); }
  void set_startup_delay(double s) { startup_delay_s_ = s; }
  void mark_outage(size_t chunk, double wall_s);

 private:
  std::vector<ChunkTrajectory> chunks_;
  double chunk_duration_s_ = 4.0;
  double rtt_s_ = 0.0;
  double startup_delay_s_ = 0.0;
  SessionOutcome outcome_ = SessionOutcome::kCompleted;
  size_t outage_chunk_ = 0;
  double outage_wall_s_ = 0.0;
};

// The event-driven engine: streams `video` over `trace` under `policy`,
// producing the SessionResult (with the timeline attached — see
// SessionResult::timeline()) and the exact trajectory. On an outage the
// session truncates at the doomed chunk and the result/timeline are marked
// SessionOutcome::kOutage. Implemented by driving a sim::SessionEngine
// (sim/session_engine.h) to completion — the resumable state machine a
// sim::Simulator interleaves for multi-session runs.
SessionResult stream_timeline(const PlayerConfig& config, const media::EncodedVideo& video,
                              const net::ThroughputTrace& trace, AbrPolicy& policy,
                              const std::vector<double>& weights);

}  // namespace sensei::sim
