#include "sim/render.h"

#include <stdexcept>

namespace sensei::sim {

RenderedVideo::RenderedVideo(std::string name, double chunk_duration_s,
                             std::vector<RenderedChunk> chunks,
                             std::vector<media::ChunkContent> content, double startup_delay_s)
    : name_(std::move(name)),
      chunk_duration_s_(chunk_duration_s),
      chunks_(std::move(chunks)),
      content_(std::move(content)),
      startup_delay_s_(startup_delay_s) {
  if (chunks_.size() != content_.size())
    throw std::runtime_error("rendered video: chunk/content size mismatch");
}

RenderedVideo RenderedVideo::pristine(const media::EncodedVideo& video, const std::string& name) {
  const size_t top = video.ladder().level_count() - 1;
  std::vector<RenderedChunk> chunks;
  chunks.reserve(video.num_chunks());
  for (size_t i = 0; i < video.num_chunks(); ++i) {
    const auto& rep = video.rep(i, top);
    chunks.push_back({top, rep.bitrate_kbps, rep.visual_quality, 0.0});
  }
  return RenderedVideo(name.empty() ? video.source().name() + "-pristine" : name,
                       video.chunk_duration_s(), std::move(chunks),
                       video.source().chunks(), 0.0);
}

RenderedVideo RenderedVideo::with_rebuffering(size_t chunk, double seconds) const {
  RenderedVideo out = *this;
  out.chunks_.at(chunk).rebuffer_s += seconds;
  out.name_ = name_ + "+rebuf" + std::to_string(static_cast<int>(seconds)) + "s@" +
              std::to_string(chunk);
  return out;
}

RenderedVideo RenderedVideo::with_bitrate_drop(size_t first_chunk, size_t num_chunks,
                                               size_t level,
                                               const media::EncodedVideo& video) const {
  RenderedVideo out = *this;
  for (size_t i = first_chunk; i < first_chunk + num_chunks && i < out.chunks_.size(); ++i) {
    const auto& rep = video.rep(i, level);
    out.chunks_[i].level = level;
    out.chunks_[i].bitrate_kbps = rep.bitrate_kbps;
    out.chunks_[i].visual_quality = rep.visual_quality;
  }
  out.name_ = name_ + "+drop@" + std::to_string(first_chunk);
  return out;
}

RenderedVideo RenderedVideo::with_startup_delay(double seconds) const {
  RenderedVideo out = *this;
  out.startup_delay_s_ = seconds;
  return out;
}

double RenderedVideo::total_rebuffer_s() const {
  double total = 0.0;
  for (const auto& c : chunks_) total += c.rebuffer_s;
  return total;
}

double RenderedVideo::playback_duration_s() const {
  return chunk_duration_s_ * static_cast<double>(chunks_.size());
}

double RenderedVideo::mean_bitrate_kbps() const {
  if (chunks_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& c : chunks_) total += c.bitrate_kbps;
  return total / static_cast<double>(chunks_.size());
}

size_t RenderedVideo::switch_count() const {
  size_t n = 0;
  for (size_t i = 1; i < chunks_.size(); ++i) {
    if (chunks_[i].level != chunks_[i - 1].level) ++n;
  }
  return n;
}

double RenderedVideo::total_quality_switch_magnitude() const {
  double total = 0.0;
  for (size_t i = 1; i < chunks_.size(); ++i) {
    double d = chunks_[i].visual_quality - chunks_[i - 1].visual_quality;
    total += d < 0 ? -d : d;
  }
  return total;
}

std::vector<RenderedVideo> rebuffer_series(const media::EncodedVideo& video, double seconds) {
  RenderedVideo base = RenderedVideo::pristine(video);
  std::vector<RenderedVideo> series;
  series.reserve(video.num_chunks());
  for (size_t i = 0; i < video.num_chunks(); ++i) {
    series.push_back(base.with_rebuffering(i, seconds));
  }
  return series;
}

std::vector<RenderedVideo> bitrate_drop_series(const media::EncodedVideo& video,
                                               size_t drop_level, size_t drop_chunks) {
  RenderedVideo base = RenderedVideo::pristine(video);
  std::vector<RenderedVideo> series;
  series.reserve(video.num_chunks());
  for (size_t i = 0; i < video.num_chunks(); ++i) {
    series.push_back(base.with_bitrate_drop(i, drop_chunks, drop_level, video));
  }
  return series;
}

}  // namespace sensei::sim
