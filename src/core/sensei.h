// SENSEI façade: the public entry point tying the system together (§3).
//
// Typical use:
//   crowd::GroundTruthQoE oracle;                 // stands in for real users
//   core::Sensei sensei(oracle);
//   auto profiled = sensei.profile(encoded_video);  // crowdsourced weights
//   auto abr = core::Sensei::make_sensei_fugu(profiled.profile.weights);
//   sim::Player player;
//   auto session = player.stream(encoded_video, trace, *abr,
//                                profiled.profile.weights);
//
// The SENSEI ABR variants are thin deltas on the base algorithms (§5.2):
//  - SENSEI-Fugu: Fugu's MPC with the weighted objective (Eq. 4) and
//    scheduled-rebuffering options {0,1,2} s for the next chunk.
//  - SENSEI-Pensieve: Pensieve with weights in the state, rebuffer actions,
//    and sensitivity-weighted rewards; must be (re)trained before use.
#pragma once

#include <memory>

#include "abr/fugu.h"
#include "abr/pensieve.h"
#include "core/pipeline.h"

namespace sensei::core {

class Sensei {
 public:
  explicit Sensei(const crowd::GroundTruthQoE& oracle,
                  crowd::SchedulerConfig scheduler_config = crowd::SchedulerConfig(),
                  uint64_t seed = 0x5E15E1);

  // Profiles a video: runs the crowdsourcing pipeline, returns weights +
  // manifest (see ProfilingPipeline).
  ProfileOutput profile(const media::EncodedVideo& video) const;

  // --- ABR factory helpers -------------------------------------------------
  //
  // The Fugu factories take the lookahead engine as a parameter: the
  // memoized DP by default, or the reference exhaustive recursion for
  // equivalence/regression runs. Both yield identical decisions (see
  // tests/test_planner_equivalence.cpp).

  // Vanilla baselines.
  static std::unique_ptr<abr::FuguAbr> make_fugu(
      qoe::ChunkQualityParams params = {},
      abr::PlannerKind planner = abr::PlannerKind::kDp);
  static std::unique_ptr<abr::PensieveAbr> make_pensieve(uint64_t seed = 41,
                                                         qoe::ChunkQualityParams params = {});

  // SENSEI variants. Weights reach the ABR through the player's observation
  // (sourced from the manifest), so these need no weight vector at build time.
  static std::unique_ptr<abr::FuguAbr> make_sensei_fugu(
      qoe::ChunkQualityParams params = {},
      abr::PlannerKind planner = abr::PlannerKind::kDp);
  // `bitrate_adaptation_only` disables the scheduled-rebuffering action while
  // keeping the weighted objective (the Figure 18b middle bar).
  static std::unique_ptr<abr::FuguAbr> make_sensei_fugu_bitrate_only(
      qoe::ChunkQualityParams params = {},
      abr::PlannerKind planner = abr::PlannerKind::kDp);
  static std::unique_ptr<abr::PensieveAbr> make_sensei_pensieve(
      uint64_t seed = 42, qoe::ChunkQualityParams params = {});

 private:
  ProfilingPipeline pipeline_;
};

}  // namespace sensei::core
