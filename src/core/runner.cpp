#include "core/runner.h"

#include <atomic>
#include <exception>
#include <memory>

namespace sensei::core {

// A published batch of tasks. `cursor` is the dynamic scheduler: each worker
// (and the calling thread) claims the next unclaimed index until the range is
// exhausted. `done` counts finished tasks so completion can be signalled
// exactly once. Jobs are shared_ptr-owned: a worker that wakes late keeps the
// job alive until it observes the exhausted cursor, even if the caller has
// already returned from for_each.
struct ExperimentRunner::Job {
  size_t num_tasks = 0;
  const std::function<void(size_t)>* fn = nullptr;
  std::atomic<size_t> cursor{0};
  std::atomic<size_t> done{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
};

namespace {

// splitmix64 finalizer — decorrelates consecutive task indices into
// independent seeds (the recommended seeder for xoshiro streams).
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t ExperimentRunner::task_seed(uint64_t base_seed, size_t task_index) {
  return mix64(base_seed ^ mix64(static_cast<uint64_t>(task_index)));
}

ExperimentRunner::ExperimentRunner(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  num_threads_ = num_threads;
  // The calling thread participates in draining the job, so spawn one fewer
  // worker than the requested parallelism; N==1 needs no pool at all.
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ExperimentRunner::~ExperimentRunner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  job_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ExperimentRunner::execute(Job& job) const {
  while (true) {
    size_t i = job.cursor.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.num_tasks) break;
    try {
      (*job.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.first_error) job.first_error = std::current_exception();
    }
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.num_tasks) {
      // Last task overall: wake the caller (which may be parked in for_each).
      std::lock_guard<std::mutex> lock(mutex_);
      job_done_.notify_all();
    }
  }
}

void ExperimentRunner::worker_loop() {
  uint64_t seen_generation = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_ready_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && job_generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = job_generation_;
      job = job_;
    }
    execute(*job);
  }
}

void ExperimentRunner::for_each(size_t num_tasks,
                                const std::function<void(size_t)>& fn) const {
  if (num_tasks == 0) return;

  auto job = std::make_shared<Job>();
  job->num_tasks = num_tasks;
  job->fn = &fn;

  if (workers_.empty()) {
    // Serial baseline: no publication, no synchronization beyond the atomics.
    execute(*job);
  } else {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = job;
      ++job_generation_;
    }
    job_ready_.notify_all();
    // The caller helps drain the queue rather than idling.
    execute(*job);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_done_.wait(lock, [&] {
        return job->done.load(std::memory_order_acquire) == job->num_tasks;
      });
      // Un-publish so late-waking workers never pick this job up again; their
      // shared_ptr copies keep it alive while they observe the empty cursor.
      job_.reset();
    }
  }

  if (job->first_error) std::rethrow_exception(job->first_error);
}

void ExperimentRunner::for_each_seeded(
    size_t num_tasks, uint64_t base_seed,
    const std::function<void(size_t, util::Rng&)>& fn) const {
  for_each(num_tasks, [&](size_t i) {
    util::Rng rng(task_seed(base_seed, i));
    fn(i, rng);
  });
}

}  // namespace sensei::core
