// Deterministic thread-pooled fan-out for the evaluation grids of §7.1.
//
// The (video × trace × policy) sweeps behind every figure are embarrassingly
// parallel: each cell is an independent, deterministic session simulation.
// ExperimentRunner owns a persistent pool of workers and distributes task
// indices dynamically (atomic cursor), while results are always written at
// their task index — so the output of a parallel run is bit-identical to a
// serial run regardless of scheduling, worker count, or machine.
//
// Rules for bit-identical parallelism:
//  - a task may only write state owned by its own index (the runner's map/
//    for_each contract);
//  - any randomness must come from the task-seeded Rng of for_each_seeded
//    (derived from (base_seed, task_index), never from the worker); and
//  - shared inputs (videos, traces, trained policies) are read-only; per-task
//    mutable collaborators (policies, players) are constructed inside the
//    task. Experiments::run_grid encodes this via a policy factory.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace sensei::core {

class ExperimentRunner {
 public:
  // num_threads == 0 picks std::thread::hardware_concurrency() (at least 1).
  // With num_threads == 1 tasks run inline on the calling thread: the serial
  // baseline that parallel runs must match bit-for-bit.
  explicit ExperimentRunner(size_t num_threads = 0);
  ~ExperimentRunner();

  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;

  size_t num_threads() const { return num_threads_; }

  // Executes fn(i) for every i in [0, num_tasks), blocking until all tasks
  // finish. Tasks are claimed dynamically, so long tasks do not straggle
  // behind short ones. If any task throws, the first exception (in completion
  // order) is rethrown here after every worker has drained.
  void for_each(size_t num_tasks, const std::function<void(size_t)>& fn) const;

  // Seeded variant: task i receives an Rng whose stream depends only on
  // (base_seed, i) — never on the executing worker — so stochastic tasks
  // stay reproducible under any schedule.
  void for_each_seeded(size_t num_tasks, uint64_t base_seed,
                       const std::function<void(size_t, util::Rng&)>& fn) const;

  // out[i] = fn(i). The per-index write is the only shared-state mutation,
  // which is what makes parallel output order-independent.
  template <typename Fn>
  auto map(size_t num_tasks, Fn&& fn) const
      -> std::vector<decltype(fn(static_cast<size_t>(0)))> {
    std::vector<decltype(fn(static_cast<size_t>(0)))> out(num_tasks);
    for_each(num_tasks, [&](size_t i) { out[i] = fn(i); });
    return out;
  }

  // The seed handed to task `task_index` under `base_seed` (splitmix64 mix;
  // exposed so tests can pin the exact stream).
  static uint64_t task_seed(uint64_t base_seed, size_t task_index);

 private:
  struct Job;

  void worker_loop();
  void execute(Job& job) const;

  size_t num_threads_ = 1;
  std::vector<std::thread> workers_;

  // One job at a time: for_each publishes it, workers drain it, the caller
  // blocks until the last worker signals completion.
  mutable std::mutex mutex_;
  mutable std::condition_variable job_ready_;
  mutable std::condition_variable job_done_;
  mutable std::shared_ptr<Job> job_;
  mutable uint64_t job_generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace sensei::core
