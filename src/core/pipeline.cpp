#include "core/pipeline.h"

namespace sensei::core {

ProfilingPipeline::ProfilingPipeline(const crowd::GroundTruthQoE& oracle,
                                     crowd::SchedulerConfig scheduler_config, uint64_t seed)
    : oracle_(oracle), scheduler_config_(scheduler_config), seed_(seed) {}

ProfileOutput ProfilingPipeline::run(const media::EncodedVideo& video) const {
  crowd::Scheduler scheduler(oracle_, scheduler_config_, seed_);
  ProfileOutput out;
  out.profile = scheduler.profile(video);

  out.manifest.video_name = video.source().name();
  out.manifest.chunk_duration_s = video.chunk_duration_s();
  out.manifest.num_chunks = video.num_chunks();
  out.manifest.bitrates_kbps = video.ladder().levels_kbps();
  out.manifest.weights = out.profile.weights;
  return out;
}

qoe::SenseiQoeModel ProfilingPipeline::make_qoe_model(const ProfileOutput& output,
                                                      qoe::ChunkQualityParams params) {
  return qoe::SenseiQoeModel(output.profile.weights, params);
}

}  // namespace sensei::core
