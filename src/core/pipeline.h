// End-to-end QoE profiling pipeline (paper Figure 8).
//
// Input: a source video (plus budget-shaping scheduler parameters).
// Output: a per-chunk sensitivity profile, the SENSEI QoE model built on it,
// and the sensitivity-augmented DASH manifest to distribute to players.
#pragma once

#include <memory>

#include "crowd/scheduler.h"
#include "media/encoder.h"
#include "qoe/sensei_qoe.h"
#include "sim/manifest.h"

namespace sensei::core {

struct ProfileOutput {
  crowd::SensitivityProfile profile;
  sim::Manifest manifest;
};

class ProfilingPipeline {
 public:
  ProfilingPipeline(const crowd::GroundTruthQoE& oracle,
                    crowd::SchedulerConfig scheduler_config = crowd::SchedulerConfig(),
                    uint64_t seed = 0xF10E);

  // Runs the two-step crowdsourced profiling and packages the results.
  ProfileOutput run(const media::EncodedVideo& video) const;

  // Builds the SENSEI QoE model from a finished profile.
  static qoe::SenseiQoeModel make_qoe_model(const ProfileOutput& output,
                                            qoe::ChunkQualityParams params = {});

 private:
  const crowd::GroundTruthQoE& oracle_;
  crowd::SchedulerConfig scheduler_config_;
  uint64_t seed_;
};

}  // namespace sensei::core
