#include "core/experiments.h"

#include <cmath>
#include <stdexcept>

#include "abr/registry.h"
#include "qoe/ksqi.h"

namespace sensei::core {

const std::vector<media::EncodedVideo>& Experiments::videos() {
  static const std::vector<media::EncodedVideo> kVideos = [] {
    media::Encoder encoder;
    std::vector<media::EncodedVideo> out;
    for (const auto& source : media::Dataset::test_set()) {
      out.push_back(encoder.encode(source));
    }
    return out;
  }();
  return kVideos;
}

const std::vector<net::ThroughputTrace>& Experiments::traces() {
  static const std::vector<net::ThroughputTrace> kTraces = net::TraceGenerator::test_set();
  return kTraces;
}

const std::vector<net::ThroughputTrace>& Experiments::train_traces() {
  static const std::vector<net::ThroughputTrace> kTraces = [] {
    // Disjoint seeds/means from the evaluation set so RL never trains on an
    // evaluation trace.
    std::vector<net::ThroughputTrace> out;
    out.push_back(net::TraceGenerator::cellular("train-cell-1", 600, 700.0, 901));
    out.push_back(net::TraceGenerator::cellular("train-cell-2", 1000, 700.0, 902));
    out.push_back(net::TraceGenerator::cellular("train-cell-3", 1700, 700.0, 903));
    out.push_back(net::TraceGenerator::cellular("train-cell-4", 2600, 700.0, 904));
    out.push_back(net::TraceGenerator::broadband("train-bb-1", 1300, 700.0, 905));
    out.push_back(net::TraceGenerator::broadband("train-bb-2", 2100, 700.0, 906));
    out.push_back(net::TraceGenerator::broadband("train-bb-3", 3200, 700.0, 907));
    out.push_back(net::TraceGenerator::broadband("train-bb-4", 4500, 700.0, 908));
    return out;
  }();
  return kTraces;
}

const crowd::GroundTruthQoE& Experiments::oracle() {
  static const crowd::GroundTruthQoE kOracle;
  return kOracle;
}

const std::vector<ProfileOutput>& Experiments::profiles() {
  static const std::vector<ProfileOutput> kProfiles = [] {
    Sensei sensei(oracle());
    std::vector<ProfileOutput> out;
    out.reserve(videos().size());
    for (const auto& video : videos()) out.push_back(sensei.profile(video));
    return out;
  }();
  return kProfiles;
}

const std::vector<std::vector<double>>& Experiments::weights() {
  static const std::vector<std::vector<double>> kWeights = [] {
    std::vector<std::vector<double>> out;
    out.reserve(profiles().size());
    for (const auto& p : profiles()) out.push_back(p.profile.weights);
    return out;
  }();
  return kWeights;
}

namespace {

// Trains candidate policies with different RL seeds and keeps the one the
// system's own QoE model scores best on the *training* traces. Policy
// gradients on small nets are seed-sensitive; validation selection is the
// standard remedy and uses no evaluation data.
abr::PensieveAbr* train_selected(bool sensei_mode,
                                 const std::vector<std::vector<double>>& weight_set,
                                 std::initializer_list<uint64_t> seeds) {
  abr::PensieveAbr* best = nullptr;
  double best_score = -1e18;
  for (uint64_t seed : seeds) {
    auto policy = (sensei_mode ? Sensei::make_sensei_pensieve(seed)
                               : Sensei::make_pensieve(seed))
                      .release();
    abr::PensieveTrainer::Options options;
    options.episodes = 6000;
    options.seed = seed * 31 + 7;
    abr::PensieveTrainer::train(*policy, Experiments::videos(), Experiments::train_traces(),
                                weight_set, options);

    // Validation: the system's own model scores sessions over the training
    // traces (weighted model for SENSEI mode, plain KSQI otherwise).
    double score = 0.0;
    sim::Player player;
    const std::vector<double> none;
    for (size_t v = 0; v < Experiments::videos().size(); ++v) {
      const std::vector<double>& w = weight_set.empty() ? none : weight_set[v];
      for (size_t t = 0; t < Experiments::train_traces().size(); t += 2) {
        auto session = player.stream(Experiments::videos()[v],
                                     Experiments::train_traces()[t], *policy, w);
        auto rendered = session.to_rendered(Experiments::videos()[v]);
        if (sensei_mode) {
          score += qoe::SenseiQoeModel(weight_set[v]).raw_score(rendered);
        } else {
          score += qoe::KsqiModel().raw_score(rendered);
        }
      }
    }
    if (score > best_score) {
      delete best;
      best_score = score;
      best = policy;
    } else {
      delete policy;
    }
  }
  return best;
}

}  // namespace

abr::PensieveAbr& Experiments::pensieve() {
  static abr::PensieveAbr* kPolicy = train_selected(false, {}, {41, 141, 241});
  return *kPolicy;
}

abr::PensieveAbr& Experiments::sensei_pensieve() {
  static abr::PensieveAbr* kPolicy = train_selected(true, weights(), {42, 142, 242});
  return *kPolicy;
}

Experiments::PolicyFactory Experiments::policy_factory(const std::string& spec) {
  const abr::PolicyRegistry& registry = abr::PolicyRegistry::instance();
  abr::PolicySpec canonical = registry.canonicalize(abr::PolicySpec::parse(spec));
  if (canonical.name == "pensieve" || canonical.name == "sensei-pensieve") {
    // Trained-net overlay: the registry builds a freshly seeded, untrained
    // net, but grid callers want the cached trained one. The cache exists
    // only at the default configuration, so non-default keys are an error
    // rather than silently ignored.
    abr::PolicySpec defaults;
    defaults.name = canonical.name;
    if (!(canonical == registry.canonicalize(defaults))) {
      throw std::runtime_error("policy spec \"" + spec + "\": trained " + canonical.name +
                               " is cached at default keys only");
    }
    bool sensei_mode = canonical.name == "sensei-pensieve";
    return [sensei_mode]() -> std::unique_ptr<sim::AbrPolicy> {
      return std::make_unique<abr::PensieveAbr>(sensei_mode ? sensei_pensieve() : pensieve());
    };
  }
  return [canonical, &registry] { return registry.make(canonical); };
}

Experiments::RunResult Experiments::run(const media::EncodedVideo& video,
                                        const net::ThroughputTrace& trace,
                                        sim::AbrPolicy& policy,
                                        const std::vector<double>& weights) {
  sim::Player player;
  RunResult result{player.stream(video, trace, policy, weights), 0.0};
  result.true_qoe = oracle().score(result.session.to_rendered(video));
  return result;
}

std::vector<Experiments::RunResult> Experiments::run_grid(
    const std::vector<media::EncodedVideo>& videos,
    const std::vector<net::ThroughputTrace>& traces, const PolicyFactory& make_policy,
    const std::vector<std::vector<double>>& weights_per_video,
    const ExperimentRunner& runner) {
  if (!weights_per_video.empty() && weights_per_video.size() != videos.size()) {
    throw std::invalid_argument("run_grid: weights_per_video must be empty or match videos");
  }
  // Touch every lazy singleton a task might need *before* fanning out:
  // function-local statics are initialization-thread-safe, but warming them
  // serially keeps the expensive builds (encoding, profiling) off the
  // workers and the task costs uniform.
  oracle();

  const std::vector<double> none;
  std::vector<RunResult> out(videos.size() * traces.size());
  runner.for_each(out.size(), [&](size_t i) {
    size_t v = i / traces.size();
    size_t t = i % traces.size();
    auto policy = make_policy();
    const std::vector<double>& w = weights_per_video.empty() ? none : weights_per_video[v];
    out[i] = run(videos[v], traces[t], *policy, w);
  });
  return out;
}

std::vector<Experiments::RunResult> Experiments::run_grid(const PolicyFactory& make_policy,
                                                          bool use_weights,
                                                          const ExperimentRunner& runner) {
  return run_grid(videos(), traces(), make_policy,
                  use_weights ? weights() : std::vector<std::vector<double>>{}, runner);
}

std::vector<std::vector<sim::MultiSessionResult>> Experiments::run_multisession_grid(
    const std::vector<MultiSessionCell>& cells, const PolicyFactory& make_policy,
    bool use_weights, const ExperimentRunner& runner, const sim::PlayerConfig& config) {
  const auto& video_set = videos();
  const auto& trace_set = traces();
  for (const MultiSessionCell& cell : cells) {
    if (cell.trace_index >= trace_set.size())
      throw std::invalid_argument("run_multisession_grid: trace index out of range");
    if (cell.num_sessions == 0)
      throw std::invalid_argument("run_multisession_grid: empty cell");
    if (!std::isfinite(cell.stagger_s) || cell.stagger_s < 0.0)
      throw std::invalid_argument("run_multisession_grid: stagger must be finite and >= 0");
  }
  if (use_weights) weights();  // warm the profiling cache off the workers

  // The video/weight pools are shared read-only state: build the pointer
  // views once, outside the workers.
  std::vector<const media::EncodedVideo*> video_ptrs;
  video_ptrs.reserve(video_set.size());
  for (const auto& v : video_set) video_ptrs.push_back(&v);
  std::vector<const std::vector<double>*> weight_ptrs;
  if (use_weights) {
    for (const auto& w : weights()) weight_ptrs.push_back(&w);
  }

  std::vector<std::vector<sim::MultiSessionResult>> out(cells.size());
  runner.for_each(cells.size(), [&](size_t c) {
    const MultiSessionCell& cell = cells[c];
    // Per-session mutable collaborators are built inside the task, like
    // run_grid: one policy instance per concurrent viewer.
    std::vector<std::unique_ptr<sim::AbrPolicy>> policies;
    policies.reserve(cell.num_sessions);
    std::vector<sim::AbrPolicy*> policy_ptrs;
    policy_ptrs.reserve(cell.num_sessions);
    for (size_t k = 0; k < cell.num_sessions; ++k) {
      policies.push_back(make_policy());
      policy_ptrs.push_back(policies.back().get());
    }
    auto specs = sim::StaggeredSpecs{video_ptrs, policy_ptrs, weight_ptrs,
                                     cell.num_sessions, cell.stagger_s}
                     .build();
    out[c] = sim::Simulator(config).run(specs, trace_set[cell.trace_index], cell.mode);
  });
  return out;
}

size_t Experiments::video_index(const std::string& name) {
  const auto& vs = videos();
  for (size_t i = 0; i < vs.size(); ++i) {
    if (vs[i].source().name() == name) return i;
  }
  throw std::runtime_error("experiments: unknown video " + name);
}

}  // namespace sensei::core
