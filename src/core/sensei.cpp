#include "core/sensei.h"

namespace sensei::core {

Sensei::Sensei(const crowd::GroundTruthQoE& oracle, crowd::SchedulerConfig scheduler_config,
               uint64_t seed)
    : pipeline_(oracle, scheduler_config, seed) {}

ProfileOutput Sensei::profile(const media::EncodedVideo& video) const {
  return pipeline_.run(video);
}

std::unique_ptr<abr::FuguAbr> Sensei::make_fugu(qoe::ChunkQualityParams params,
                                                abr::PlannerKind planner) {
  abr::FuguConfig cfg;
  cfg.chunk = params;
  cfg.use_weights = false;
  cfg.rebuffer_options = {0.0};
  cfg.planner = planner;
  return std::make_unique<abr::FuguAbr>(cfg);
}

std::unique_ptr<abr::PensieveAbr> Sensei::make_pensieve(uint64_t seed,
                                                        qoe::ChunkQualityParams params) {
  abr::PensieveConfig cfg;
  cfg.sensei_mode = false;
  cfg.chunk = params;
  return std::make_unique<abr::PensieveAbr>(cfg, seed);
}

std::unique_ptr<abr::FuguAbr> Sensei::make_sensei_fugu(qoe::ChunkQualityParams params,
                                                       abr::PlannerKind planner) {
  abr::FuguConfig cfg;
  cfg.chunk = params;
  cfg.use_weights = true;
  cfg.rebuffer_options = {0.0, 1.0, 2.0};
  cfg.planner = planner;
  return std::make_unique<abr::FuguAbr>(cfg);
}

std::unique_ptr<abr::FuguAbr> Sensei::make_sensei_fugu_bitrate_only(
    qoe::ChunkQualityParams params, abr::PlannerKind planner) {
  abr::FuguConfig cfg;
  cfg.chunk = params;
  cfg.use_weights = true;
  cfg.rebuffer_options = {0.0};
  cfg.planner = planner;
  return std::make_unique<abr::FuguAbr>(cfg);
}

std::unique_ptr<abr::PensieveAbr> Sensei::make_sensei_pensieve(
    uint64_t seed, qoe::ChunkQualityParams params) {
  abr::PensieveConfig cfg;
  cfg.sensei_mode = true;
  cfg.chunk = params;
  return std::make_unique<abr::PensieveAbr>(cfg, seed);
}

}  // namespace sensei::core
