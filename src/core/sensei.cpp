#include "core/sensei.h"

#include "abr/registry.h"

namespace sensei::core {

Sensei::Sensei(const crowd::GroundTruthQoE& oracle, crowd::SchedulerConfig scheduler_config,
               uint64_t seed)
    : pipeline_(oracle, scheduler_config, seed) {}

ProfileOutput Sensei::profile(const media::EncodedVideo& video) const {
  return pipeline_.run(video);
}

// The factories below are thin wrappers over abr::PolicyRegistry: they
// translate their typed arguments into a spec and let the registry build the
// policy, so there is exactly one construction path per policy name
// (registry-vs-direct bit-identity is pinned by tests/test_registry.cpp).
// The typed FuguAbr/PensieveAbr return types are preserved for callers that
// reach past sim::AbrPolicy (the Pensieve trainer, planner introspection),
// so the registry's base pointer is downcast — safe because the named
// factory registered for each spec name constructs exactly that type.
namespace {

const char* planner_text(abr::PlannerKind planner) {
  switch (planner) {
    case abr::PlannerKind::kExhaustive:
      return "exhaustive";
    case abr::PlannerKind::kVi:
      return "vi";
    case abr::PlannerKind::kDp:
      break;
  }
  return "dp";
}

void add_chunk_keys(abr::PolicySpec& spec, const qoe::ChunkQualityParams& params) {
  spec.kv.emplace_back("beta_rebuf", abr::format_spec_double(params.beta_rebuf));
  spec.kv.emplace_back("rebuf_saturation", abr::format_spec_double(params.rebuf_saturation));
  spec.kv.emplace_back("beta_switch", abr::format_spec_double(params.beta_switch));
  spec.kv.emplace_back("floor", abr::format_spec_double(params.floor));
}

std::unique_ptr<abr::FuguAbr> fugu_from_registry(const char* name,
                                                 const qoe::ChunkQualityParams& params,
                                                 abr::PlannerKind planner) {
  abr::PolicySpec spec;
  spec.name = name;
  add_chunk_keys(spec, params);
  spec.kv.emplace_back("planner", planner_text(planner));
  auto policy = abr::PolicyRegistry::instance().make(spec);
  return std::unique_ptr<abr::FuguAbr>(static_cast<abr::FuguAbr*>(policy.release()));
}

std::unique_ptr<abr::PensieveAbr> pensieve_from_registry(const char* name, uint64_t seed,
                                                         const qoe::ChunkQualityParams& params) {
  abr::PolicySpec spec;
  spec.name = name;
  add_chunk_keys(spec, params);
  spec.kv.emplace_back("seed", std::to_string(seed));
  auto policy = abr::PolicyRegistry::instance().make(spec);
  return std::unique_ptr<abr::PensieveAbr>(static_cast<abr::PensieveAbr*>(policy.release()));
}

}  // namespace

std::unique_ptr<abr::FuguAbr> Sensei::make_fugu(qoe::ChunkQualityParams params,
                                                abr::PlannerKind planner) {
  return fugu_from_registry("fugu", params, planner);
}

std::unique_ptr<abr::PensieveAbr> Sensei::make_pensieve(uint64_t seed,
                                                        qoe::ChunkQualityParams params) {
  return pensieve_from_registry("pensieve", seed, params);
}

std::unique_ptr<abr::FuguAbr> Sensei::make_sensei_fugu(qoe::ChunkQualityParams params,
                                                       abr::PlannerKind planner) {
  return fugu_from_registry("sensei-fugu", params, planner);
}

std::unique_ptr<abr::FuguAbr> Sensei::make_sensei_fugu_bitrate_only(
    qoe::ChunkQualityParams params, abr::PlannerKind planner) {
  return fugu_from_registry("sensei-fugu-bitrate-only", params, planner);
}

std::unique_ptr<abr::PensieveAbr> Sensei::make_sensei_pensieve(
    uint64_t seed, qoe::ChunkQualityParams params) {
  return pensieve_from_registry("sensei-pensieve", seed, params);
}

}  // namespace sensei::core
