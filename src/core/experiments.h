// Shared evaluation fixtures (§7.1) used by the bench harness and the
// integration tests: the encoded Table-1 video set, the 10-trace network set,
// the ground-truth oracle, per-video sensitivity profiles, and trained
// Pensieve policies. Everything is deterministic and lazily cached, so bench
// binaries stay independent yet cheap.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "abr/bba.h"
#include "abr/fugu.h"
#include "abr/pensieve.h"
#include "core/runner.h"
#include "core/sensei.h"
#include "crowd/ground_truth.h"
#include "media/dataset.h"
#include "net/trace_gen.h"
#include "sim/player.h"
#include "sim/simulator.h"

namespace sensei::core {

class Experiments {
 public:
  // The 16 encoded source videos of Table 1.
  static const std::vector<media::EncodedVideo>& videos();
  // The 10 evaluation traces of §7.1 (ordered by mean throughput).
  static const std::vector<net::ThroughputTrace>& traces();
  // Separate trace set for RL training (never evaluated on).
  static const std::vector<net::ThroughputTrace>& train_traces();
  // The ground-truth "user" oracle.
  static const crowd::GroundTruthQoE& oracle();
  // Crowdsourced sensitivity weights per video (cached profiling runs).
  static const std::vector<std::vector<double>>& weights();
  // Profiling outputs (weights + cost bookkeeping) per video.
  static const std::vector<ProfileOutput>& profiles();

  // Trained policies (trained once, then shared; call-site must not mutate
  // training mode).
  static abr::PensieveAbr& pensieve();
  static abr::PensieveAbr& sensei_pensieve();

  // Streams `video` with `policy` and returns the oracle QoE of the outcome.
  struct RunResult {
    sim::SessionResult session;
    double true_qoe = 0.0;
  };
  static RunResult run(const media::EncodedVideo& video, const net::ThroughputTrace& trace,
                       sim::AbrPolicy& policy, const std::vector<double>& weights);

  // Index of a video inside videos() by name; throws if absent.
  static size_t video_index(const std::string& name);

  // --- Parallel evaluation grids (§7.1 sweeps) -----------------------------

  // Builds one policy instance per grid cell. Policies carry per-session
  // mutable state (Pensieve episodes, Fugu predictors), so they must never be
  // shared across workers; the factory makes the per-task ownership explicit.
  // For trained policies, return a copy: e.g.
  //   [] { return std::make_unique<abr::PensieveAbr>(Experiments::pensieve()); }
  using PolicyFactory = std::function<std::unique_ptr<sim::AbrPolicy>()>;

  // A PolicyFactory from a registry spec string ("bba", "fugu:planner=vi",
  // "whittle:safety=0.85" — see abr/registry.h for the grammar). The spec
  // is validated eagerly, so a bad name/key/value throws at the call site
  // rather than inside a worker. Two names are overlaid: "pensieve" and
  // "sensei-pensieve" yield copies of the cached *trained* instances above
  // (the registry alone builds untrained nets) and therefore accept only
  // default keys.
  static PolicyFactory policy_factory(const std::string& spec);

  // Fans the (video × trace) product over `runner` and returns results in
  // row-major order: cell (v, t) lands at index v * traces.size() + t,
  // bit-identical to the serial double loop regardless of thread count.
  // `weights_per_video` is either empty (weight-unaware ABRs) or one
  // sensitivity vector per video.
  static std::vector<RunResult> run_grid(
      const std::vector<media::EncodedVideo>& videos,
      const std::vector<net::ThroughputTrace>& traces, const PolicyFactory& make_policy,
      const std::vector<std::vector<double>>& weights_per_video,
      const ExperimentRunner& runner);

  // Convenience overload over the full evaluation sets: videos() × traces(),
  // with use_weights selecting the profiled weights() or none.
  static std::vector<RunResult> run_grid(const PolicyFactory& make_policy,
                                         bool use_weights, const ExperimentRunner& runner);

  // --- multi-session contention grids (shared-bottleneck scenarios) --------

  // One multi-session scenario: `num_sessions` viewers arriving staggered
  // (session k's first request at k * stagger_s) on traces()[trace_index],
  // either all contending on one net::SharedLink (kShared) or each on a
  // private copy of the trace (kDedicated — the no-contention control).
  // Videos (and their weights, when enabled) cycle round-robin over the
  // evaluation set; every session gets its own policy instance.
  struct MultiSessionCell {
    size_t trace_index = 0;
    size_t num_sessions = 1;
    double stagger_s = 0.0;
    sim::LinkMode mode = sim::LinkMode::kShared;
  };

  // Simulates every cell through sim::Simulator, fanning cells over
  // `runner`. results[c] holds cell c's per-session results in arrival
  // order, bit-identical to a serial run regardless of thread count (each
  // cell is an independent, deterministic event-loop run — the same
  // contract run_grid's single-session cells obey).
  static std::vector<std::vector<sim::MultiSessionResult>> run_multisession_grid(
      const std::vector<MultiSessionCell>& cells, const PolicyFactory& make_policy,
      bool use_weights, const ExperimentRunner& runner,
      const sim::PlayerConfig& config = sim::PlayerConfig());
};

}  // namespace sensei::core
