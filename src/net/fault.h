// Deterministic fault injection for traces and links.
//
// A FaultPlan is a schedule of network faults — hard outages, capacity
// collapses, RTT spikes — on the absolute simulation clock (trace time 0 ==
// session/fleet cell time 0). Plans are either scripted (add()) or drawn
// from a RandomFaultSpec with a caller-supplied seed; fleet cells derive
// that seed from task_seed(seed, cell), so a realization is a pure function
// of (config, seed) and bit-identical across --threads / --shards.
//
// Capacity faults are *materialized* onto the trace up front
// (apply_to_trace) rather than intercepted per-transfer: the base trace is
// unrolled over enough whole periods to cover the fault horizon and the
// per-interval samples inside each fault window are scaled (min factor wins
// where windows overlap). The result is an ordinary ThroughputTrace — the
// cumulative-capacity index, TraceCursor warm starts, and SharedLink all
// work unchanged, and determinism is free because nothing stochastic
// survives into the hot path. RTT spikes cannot ride on the trace (request
// dead time consumes no trace capacity), so engines query rtt_extra_s() at
// each request instant instead.
#pragma once

#include <cstdint>
#include <vector>

#include "net/trace.h"

namespace sensei::net {

enum class FaultKind {
  kOutage,            // link delivers nothing for the window
  kCapacityCollapse,  // capacity multiplied by `magnitude` (in (0, 1))
  kRttSpike,          // requests issued in the window pay +`magnitude` seconds
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kOutage;
  double start_s = 0.0;
  double duration_s = 0.0;
  // kCapacityCollapse: capacity multiplier in (0, 1). kRttSpike: extra
  // request dead time in seconds. kOutage: ignored (treated as factor 0).
  double magnitude = 0.0;

  double end_s() const { return start_s + duration_s; }
};

// Mean event counts + shapes for seeded-random plans. All-zero means (the
// default) produce an empty plan. Counts are Poisson draws over the horizon;
// starts are uniform in [0, horizon); durations are exponential.
struct RandomFaultSpec {
  double horizon_s = 600.0;

  double mean_outages = 0.0;
  double outage_mean_duration_s = 4.0;

  double mean_collapses = 0.0;
  double collapse_mean_duration_s = 20.0;
  double collapse_factor = 0.15;

  double mean_rtt_spikes = 0.0;
  double rtt_spike_mean_duration_s = 10.0;
  double rtt_spike_extra_s = 0.5;

  bool empty() const {
    return mean_outages <= 0.0 && mean_collapses <= 0.0 && mean_rtt_spikes <= 0.0;
  }
  // Returns a copy with every mean event count multiplied by `intensity`
  // (the knob bench_resilience sweeps); shapes are left untouched.
  RandomFaultSpec scaled(double intensity) const;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  // Appends a scripted event. Validates: finite non-negative start, finite
  // positive duration, and a sane magnitude for the kind (collapse factor in
  // (0, 1), RTT extra >= 0).
  void add(const FaultEvent& event);

  // Draws a plan from `spec` deterministically in `seed`: per-kind Poisson
  // counts, then (start, duration) pairs, in a fixed order. Events are
  // sorted by (start, kind, duration, magnitude) so the realization is
  // independent of draw bookkeeping.
  static FaultPlan random(const RandomFaultSpec& spec, uint64_t seed);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  // End of the last capacity-affecting window (outage/collapse); 0 when the
  // plan has none. This is how far apply_to_trace must unroll.
  double capacity_horizon_s() const;

  // Extra request dead time at absolute time t: the max over active RTT
  // spikes (max, not sum — overlapping spikes describe the same congested
  // resolver, they don't stack).
  double rtt_extra_s(double t_s) const;

  // Capacity multiplier at absolute time t: min over active outage/collapse
  // windows, 1.0 outside all of them.
  double capacity_factor_at(double t_s) const;

  // Materializes the plan's capacity faults onto `base`: the samples are
  // unrolled over ceil(capacity_horizon / period) whole periods (so looping
  // semantics are preserved — the faulted trace still loops, with the longer
  // period; a finite trace stays finite) and every interval overlapping a
  // fault window is scaled by the window's factor, min factor where windows
  // overlap. An interval is affected if any part of it intersects the
  // window (faults snap outward to the interval grid). The trace name is
  // preserved so downstream results keep their trace labels.
  ThroughputTrace apply_to_trace(const ThroughputTrace& base) const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace sensei::net
