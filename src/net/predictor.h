// Throughput predictors used by the MPC-style ABR algorithms.
//
// Fugu's controller (paper Eq. 3) needs a *probabilistic* forecast: a small
// discrete distribution over near-future throughput. We provide a harmonic-
// mean point predictor (MPC classic), an EWMA predictor, and a discrete
// scenario predictor that wraps a point estimate with low/expected/high
// scenarios weighted by recent prediction-error statistics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sensei::net {

// Fixed-capacity window over the most recent observations, oldest first.
// Replaces the std::deque the predictors used to hold their history: a
// deque's head marches through heap blocks as the window slides, so every
// session kept allocating on the per-chunk observe() path; the ring is a
// single vector sized once. Iteration order (index 0 = oldest) matches the
// deque it replaced, so all accumulations are bit-identical.
class SampleWindow {
 public:
  explicit SampleWindow(size_t capacity)
      : data_(capacity > 0 ? capacity : 1), capacity_(capacity) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // i = 0 is the oldest retained sample.
  double operator[](size_t i) const { return data_[(head_ + i) % data_.size()]; }

  // Appends a sample, evicting the oldest when full. A zero-capacity
  // window retains nothing (the deque-with-immediate-evict behavior).
  void push(double v) {
    if (capacity_ == 0) return;
    if (size_ < capacity_) {
      data_[(head_ + size_) % data_.size()] = v;
      ++size_;
    } else {
      data_[head_] = v;
      head_ = (head_ + 1) % data_.size();
    }
    ++generation_;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
    ++generation_;
  }

  // Monotonic stamp bumped by every retained-content change (push into a
  // nonzero-capacity window, clear). Two reads with equal generations saw
  // bit-identical window contents, so callers — e.g. the ScenarioPredictor
  // scenario cache — can detect "window unchanged" in O(1) instead of
  // hashing or copying the samples.
  uint64_t generation() const { return generation_; }

 private:
  std::vector<double> data_;
  size_t capacity_ = 0;
  size_t head_ = 0;  // index of the oldest sample
  size_t size_ = 0;
  uint64_t generation_ = 0;
};

// One throughput scenario: value (Kbps) with probability.
struct ThroughputScenario {
  double kbps = 0.0;
  double probability = 0.0;
};

// Synthesizes a discrete scenario fan centered on `center_kbps` with
// relative spread `cv`: positions spread over [-cv, +cv], triangular
// probability profile (normalized), 30 Kbps floor. Used by planner tests
// and benches to generate forecast distributions of arbitrary width.
std::vector<ThroughputScenario> triangular_scenarios(size_t count, double center_kbps,
                                                     double cv);

class ThroughputPredictor {
 public:
  virtual ~ThroughputPredictor() = default;

  // Records an observed chunk download. The sample is the RTT-free goodput
  // (bytes over wire time) the timeline engine measures — folding request
  // dead time into the estimate would bias it low on small chunks.
  virtual void observe(double kbps) = 0;

  // Point estimate for the next chunks (Kbps).
  virtual double predict_kbps() const = 0;

  // Discrete distribution, written into a caller-provided buffer (cleared
  // first). MPC controllers call this every decide(); reusing one buffer
  // keeps the hot path free of heap allocation. Defaults to a single point
  // scenario.
  virtual void scenarios_into(std::vector<ThroughputScenario>& out) const;

  // Convenience wrapper returning a fresh vector.
  std::vector<ThroughputScenario> scenarios() const {
    std::vector<ThroughputScenario> out;
    scenarios_into(out);
    return out;
  }

  virtual void reset() = 0;
};

// Harmonic mean of the last `window` observations — robust to outliers and
// the standard choice in MPC ABR.
class HarmonicMeanPredictor : public ThroughputPredictor {
 public:
  explicit HarmonicMeanPredictor(size_t window = 5, double initial_kbps = 1000.0);
  void observe(double kbps) override;
  double predict_kbps() const override;
  void reset() override;

  // Change stamp of the retained observation window (see
  // SampleWindow::generation).
  uint64_t window_generation() const { return history_.generation(); }

 private:
  double initial_kbps_;
  SampleWindow history_;
};

class EwmaPredictor : public ThroughputPredictor {
 public:
  explicit EwmaPredictor(double alpha = 0.3, double initial_kbps = 1000.0);
  void observe(double kbps) override;
  double predict_kbps() const override;
  void reset() override;

 private:
  double alpha_;
  double initial_kbps_;
  double estimate_;
  bool seeded_ = false;
};

// Fugu-style probabilistic predictor: harmonic-mean point estimate spread
// into {low, expected, high} scenarios whose spread tracks the coefficient of
// variation of recent observations.
class ScenarioPredictor : public ThroughputPredictor {
 public:
  explicit ScenarioPredictor(size_t window = 8, double initial_kbps = 1000.0);
  void observe(double kbps) override;
  double predict_kbps() const override;
  void scenarios_into(std::vector<ThroughputScenario>& out) const override;
  void reset() override;

 private:
  HarmonicMeanPredictor point_;
  SampleWindow history_;
  // scenarios_into() memo: the fan is a pure function of the two sample
  // windows (and the fixed initial estimate), so when neither window
  // changed since the last call — keyed by their combined generation
  // stamps — the three cached scenarios are replayed bit-for-bit instead
  // of recomputing the mean/variance/sqrt spread. observe() and reset()
  // bump the stamps, so no explicit invalidation is needed, and the key
  // check is O(1) rather than a rehash of both windows per call.
  mutable uint64_t cache_point_gen_ = 0;
  mutable uint64_t cache_history_gen_ = 0;
  mutable bool cache_valid_ = false;
  mutable double cache_kbps_[3] = {0.0, 0.0, 0.0};
  mutable double cache_prob_[3] = {0.0, 0.0, 0.0};
};

}  // namespace sensei::net
