// Throughput predictors used by the MPC-style ABR algorithms.
//
// Fugu's controller (paper Eq. 3) needs a *probabilistic* forecast: a small
// discrete distribution over near-future throughput. We provide a harmonic-
// mean point predictor (MPC classic), an EWMA predictor, and a discrete
// scenario predictor that wraps a point estimate with low/expected/high
// scenarios weighted by recent prediction-error statistics.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace sensei::net {

// One throughput scenario: value (Kbps) with probability.
struct ThroughputScenario {
  double kbps = 0.0;
  double probability = 0.0;
};

// Synthesizes a discrete scenario fan centered on `center_kbps` with
// relative spread `cv`: positions spread over [-cv, +cv], triangular
// probability profile (normalized), 30 Kbps floor. Used by planner tests
// and benches to generate forecast distributions of arbitrary width.
std::vector<ThroughputScenario> triangular_scenarios(size_t count, double center_kbps,
                                                     double cv);

class ThroughputPredictor {
 public:
  virtual ~ThroughputPredictor() = default;

  // Records an observed chunk download. The sample is the RTT-free goodput
  // (bytes over wire time) the timeline engine measures — folding request
  // dead time into the estimate would bias it low on small chunks.
  virtual void observe(double kbps) = 0;

  // Point estimate for the next chunks (Kbps).
  virtual double predict_kbps() const = 0;

  // Discrete distribution, written into a caller-provided buffer (cleared
  // first). MPC controllers call this every decide(); reusing one buffer
  // keeps the hot path free of heap allocation. Defaults to a single point
  // scenario.
  virtual void scenarios_into(std::vector<ThroughputScenario>& out) const;

  // Convenience wrapper returning a fresh vector.
  std::vector<ThroughputScenario> scenarios() const {
    std::vector<ThroughputScenario> out;
    scenarios_into(out);
    return out;
  }

  virtual void reset() = 0;
};

// Harmonic mean of the last `window` observations — robust to outliers and
// the standard choice in MPC ABR.
class HarmonicMeanPredictor : public ThroughputPredictor {
 public:
  explicit HarmonicMeanPredictor(size_t window = 5, double initial_kbps = 1000.0);
  void observe(double kbps) override;
  double predict_kbps() const override;
  void reset() override;

 private:
  size_t window_;
  double initial_kbps_;
  std::deque<double> history_;
};

class EwmaPredictor : public ThroughputPredictor {
 public:
  explicit EwmaPredictor(double alpha = 0.3, double initial_kbps = 1000.0);
  void observe(double kbps) override;
  double predict_kbps() const override;
  void reset() override;

 private:
  double alpha_;
  double initial_kbps_;
  double estimate_;
  bool seeded_ = false;
};

// Fugu-style probabilistic predictor: harmonic-mean point estimate spread
// into {low, expected, high} scenarios whose spread tracks the coefficient of
// variation of recent observations.
class ScenarioPredictor : public ThroughputPredictor {
 public:
  explicit ScenarioPredictor(size_t window = 8, double initial_kbps = 1000.0);
  void observe(double kbps) override;
  double predict_kbps() const override;
  void scenarios_into(std::vector<ThroughputScenario>& out) const override;
  void reset() override;

 private:
  HarmonicMeanPredictor point_;
  std::deque<double> history_;
  size_t window_;
};

}  // namespace sensei::net
