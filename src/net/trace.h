// Network throughput traces.
//
// A trace is a step function: samples[i] holds the link throughput (Kbps)
// over [i * interval_s, (i+1) * interval_s). By default traces *loop* when a
// session outlives them, following common practice in ABR simulators; a
// trace can instead be marked *finite*, in which case the link is dead
// (0 Kbps) past `duration_s()` — finite traces model outages, captured
// real-world files, and live sessions that end.
//
// Transfers are integrated exactly by `advance()` against a cumulative-
// capacity index built at construction (prefix sums of each interval's bits
// over one period). Both integration modes evaluate the *same* monotone
// predicate "capacity consumed through interval k >= bits remaining", so
// they are bit-identical by construction:
//
//  - kIndexed (default): binary search for the finishing interval inside
//    the current period, whole periods consumed in O(1) each, dead links
//    classified in O(1). A transfer costs O(log n + periods spanned)
//    regardless of how many intervals it crosses.
//  - kWalker: the retained reference — a linear interval-by-interval scan
//    of the identical predicate, O(intervals spanned), kept behind the mode
//    flag (mirroring FuguConfig::planner / PlayerConfig::engine) purely as
//    the equivalence baseline for tests/test_trace_index.cpp.
//
// Either way a transfer completes exactly or reports an *outage* — the link
// has no capacity left, ever (an all-zero looping trace, or a finite trace
// exhausted mid-transfer). There is no walk cap that could silently fake a
// completed download.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace sensei::net {

// Outcome of integrating one transfer over the trace step function.
struct TransferResult {
  // Wall-clock seconds from transfer start until the last byte. On an
  // outage this is +infinity (the stall never ends).
  double elapsed_s = 0.0;
  // False when the link died: every remaining instant of the trace has zero
  // capacity (all-zero looping trace or exhausted finite trace).
  bool completed = true;
};

// Which integration engine advance()/download_time_s() use. The two are
// bit-identical (same elapsed_s, same dead-link classification); only the
// complexity differs.
enum class TraceIntegration {
  kIndexed,  // binary search over the cumulative-capacity index (default)
  kWalker,   // linear reference scan of the same predicate
};

// Process-wide default mode. Set once at startup (e.g. from a bench's
// `--trace-integration indexed|walker` flag); every call that does not pass
// an explicit mode reads it.
TraceIntegration default_trace_integration();
void set_default_trace_integration(TraceIntegration mode);

// Cumulative-capacity index over one period of the step function, built at
// construction (traces are immutable and shared across ExperimentRunner
// workers, so laziness would need synchronization for no gain; construction
// already walks the samples once to validate them).
struct TraceIndex {
  // prefix_bits[k] = bits deliverable by intervals [0, k), accumulated
  // left-to-right in double precision — the scan order both integration
  // modes share. Monotone nondecreasing; prefix_bits[n] is the capacity of
  // one full period.
  std::vector<double> prefix_bits;
};

class TraceCursor;

class ThroughputTrace {
 public:
  ThroughputTrace() = default;
  ThroughputTrace(std::string name, std::vector<double> samples_kbps, double interval_s = 1.0,
                  bool finite = false);

  const std::string& name() const { return name_; }
  double interval_s() const { return interval_s_; }
  size_t sample_count() const { return samples_.size(); }
  const std::vector<double>& samples_kbps() const { return samples_; }
  double duration_s() const { return interval_s_ * static_cast<double>(samples_.size()); }

  // Finite traces do not loop: throughput past duration_s() is 0 and a
  // transfer still in flight there is an outage.
  bool finite() const { return finite_; }
  // Returns a copy of this trace with finite (non-looping) semantics.
  ThroughputTrace as_finite() const;

  // Instantaneous throughput at time t (wraps past the end unless finite).
  double throughput_at(double t_s) const;

  // Mean and population stddev over all samples.
  double mean_kbps() const;
  double stddev_kbps() const;

  // Exact event integrator: simulates transferring `bytes` starting at
  // `start_s`, locating the last byte (or an outage) on the step function.
  // RTT is *not* included — request dead time consumes wall clock but no
  // trace capacity, so callers place it before the transfer start.
  TransferResult advance(double bytes, double start_s,
                         TraceIntegration mode = default_trace_integration()) const;

  // Convenience wrapper: rtt_s of request dead time, then the transfer
  // (starting at start_s + rtt_s). Returns total elapsed seconds, or
  // +infinity if the transfer hits an outage.
  double download_time_s(double bytes, double start_s, double rtt_s = 0.08,
                         TraceIntegration mode = default_trace_integration()) const;

  // The cumulative-capacity index (shared between plain copies since it
  // depends only on the samples). Throws on a default-constructed trace,
  // which has no samples and therefore no index.
  const TraceIndex& index() const;

  // Returns a copy scaled by `factor` (used for the bandwidth-ratio sweeps).
  ThroughputTrace scaled(double factor, const std::string& new_name = "") const;

  // Returns a copy with zero-mean Gaussian noise of stddev `sigma_kbps` added
  // to every sample (floored at `floor_kbps`), as in Figure 17's variance
  // sweep. Deterministic in `seed`.
  ThroughputTrace with_noise(double sigma_kbps, uint64_t seed,
                             double floor_kbps = 50.0) const;

  // CSV persistence: one "time_s,kbps" row per sample. from_csv validates
  // the file: timestamps must be strictly increasing and uniformly spaced,
  // cells must parse as numbers; violations raise with the 1-based line
  // number. Blank lines and '#' comments are skipped.
  std::string to_csv() const;
  static ThroughputTrace from_csv(const std::string& name, const std::string& csv);

 private:
  friend class TraceCursor;

  // The shared integration core. `hint` (nullable) is a cursor's warm-start
  // phase for the finishing-interval search; it only affects speed, never
  // the result.
  TransferResult integrate(double bytes, double start_s, TraceIntegration mode,
                           size_t* hint) const;

  std::string name_;
  std::vector<double> samples_;  // Kbps
  double interval_s_ = 1.0;
  bool finite_ = false;
  // Immutable once built; shared across plain copies of the trace.
  std::shared_ptr<const TraceIndex> index_;
};

// Stateful integration handle for a session's (mostly) monotonically
// advancing wall clock: remembers the phase where the previous transfer
// finished and gallops from it, so consecutive chunk downloads locate their
// finishing interval in O(1) amortized instead of O(log n) each. Results
// are bit-identical to ThroughputTrace::advance — the hint changes only
// where the search starts, and the predicate it brackets is monotone.
// Cheap to construct (two words); keep one per session.
class TraceCursor {
 public:
  TraceCursor() = default;
  explicit TraceCursor(const ThroughputTrace& trace,
                       TraceIntegration mode = default_trace_integration())
      : trace_(&trace), mode_(mode) {}

  TransferResult advance(double bytes, double start_s);
  double download_time_s(double bytes, double start_s, double rtt_s = 0.08);

  const ThroughputTrace* trace() const { return trace_; }

 private:
  const ThroughputTrace* trace_ = nullptr;
  TraceIntegration mode_ = TraceIntegration::kIndexed;
  size_t hint_ = 1;  // phase (prefix index) of the last finishing interval
};

}  // namespace sensei::net
