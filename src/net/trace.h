// Network throughput traces.
//
// A trace is a step function: samples[i] holds the link throughput (Kbps)
// over [i * interval_s, (i+1) * interval_s). Traces wrap around when a
// session outlives them, following common practice in ABR simulators.
#pragma once

#include <string>
#include <vector>

namespace sensei::net {

class ThroughputTrace {
 public:
  ThroughputTrace() = default;
  ThroughputTrace(std::string name, std::vector<double> samples_kbps, double interval_s = 1.0);

  const std::string& name() const { return name_; }
  double interval_s() const { return interval_s_; }
  size_t sample_count() const { return samples_.size(); }
  const std::vector<double>& samples_kbps() const { return samples_; }
  double duration_s() const { return interval_s_ * static_cast<double>(samples_.size()); }

  // Instantaneous throughput at time t (wraps past the end).
  double throughput_at(double t_s) const;

  // Mean and population stddev over all samples.
  double mean_kbps() const;
  double stddev_kbps() const;

  // Simulates downloading `bytes` starting at `start_s`; returns the elapsed
  // seconds, integrating the step function exactly (plus a fixed RTT).
  double download_time_s(double bytes, double start_s, double rtt_s = 0.08) const;

  // Returns a copy scaled by `factor` (used for the bandwidth-ratio sweeps).
  ThroughputTrace scaled(double factor, const std::string& new_name = "") const;

  // Returns a copy with zero-mean Gaussian noise of stddev `sigma_kbps` added
  // to every sample (floored at `floor_kbps`), as in Figure 17's variance
  // sweep. Deterministic in `seed`.
  ThroughputTrace with_noise(double sigma_kbps, uint64_t seed,
                             double floor_kbps = 50.0) const;

  // CSV persistence: one "time_s,kbps" row per sample.
  std::string to_csv() const;
  static ThroughputTrace from_csv(const std::string& name, const std::string& csv);

 private:
  std::string name_;
  std::vector<double> samples_;  // Kbps
  double interval_s_ = 1.0;
};

}  // namespace sensei::net
