// Network throughput traces.
//
// A trace is a step function: samples[i] holds the link throughput (Kbps)
// over [i * interval_s, (i+1) * interval_s). By default traces *loop* when a
// session outlives them, following common practice in ABR simulators; a
// trace can instead be marked *finite*, in which case the link is dead
// (0 Kbps) past `duration_s()` — finite traces model outages, captured
// real-world files, and live sessions that end.
//
// Transfers are integrated exactly by `advance()`: it walks the step
// function interval by interval and either completes, or reports an
// *outage* — the link has no capacity left, ever (an all-zero looping
// trace, or a finite trace exhausted mid-transfer). There is no walk cap
// that could silently fake a completed download.
#pragma once

#include <string>
#include <vector>

namespace sensei::net {

// Outcome of integrating one transfer over the trace step function.
struct TransferResult {
  // Wall-clock seconds from transfer start until the last byte. On an
  // outage this is +infinity (the stall never ends).
  double elapsed_s = 0.0;
  // False when the link died: every remaining instant of the trace has zero
  // capacity (all-zero looping trace or exhausted finite trace).
  bool completed = true;
};

class ThroughputTrace {
 public:
  ThroughputTrace() = default;
  ThroughputTrace(std::string name, std::vector<double> samples_kbps, double interval_s = 1.0,
                  bool finite = false);

  const std::string& name() const { return name_; }
  double interval_s() const { return interval_s_; }
  size_t sample_count() const { return samples_.size(); }
  const std::vector<double>& samples_kbps() const { return samples_; }
  double duration_s() const { return interval_s_ * static_cast<double>(samples_.size()); }

  // Finite traces do not loop: throughput past duration_s() is 0 and a
  // transfer still in flight there is an outage.
  bool finite() const { return finite_; }
  // Returns a copy of this trace with finite (non-looping) semantics.
  ThroughputTrace as_finite() const;

  // Instantaneous throughput at time t (wraps past the end unless finite).
  double throughput_at(double t_s) const;

  // Mean and population stddev over all samples.
  double mean_kbps() const;
  double stddev_kbps() const;

  // Exact event integrator: simulates transferring `bytes` starting at
  // `start_s`, walking the step function until the last byte or an outage.
  // RTT is *not* included — request dead time consumes wall clock but no
  // trace capacity, so callers place it before the transfer start.
  TransferResult advance(double bytes, double start_s) const;

  // Convenience wrapper: rtt_s of request dead time, then the transfer
  // (starting at start_s + rtt_s). Returns total elapsed seconds, or
  // +infinity if the transfer hits an outage.
  double download_time_s(double bytes, double start_s, double rtt_s = 0.08) const;

  // Returns a copy scaled by `factor` (used for the bandwidth-ratio sweeps).
  ThroughputTrace scaled(double factor, const std::string& new_name = "") const;

  // Returns a copy with zero-mean Gaussian noise of stddev `sigma_kbps` added
  // to every sample (floored at `floor_kbps`), as in Figure 17's variance
  // sweep. Deterministic in `seed`.
  ThroughputTrace with_noise(double sigma_kbps, uint64_t seed,
                             double floor_kbps = 50.0) const;

  // CSV persistence: one "time_s,kbps" row per sample. from_csv validates
  // the file: timestamps must be strictly increasing and uniformly spaced,
  // cells must parse as numbers; violations raise with the 1-based line
  // number. Blank lines and '#' comments are skipped.
  std::string to_csv() const;
  static ThroughputTrace from_csv(const std::string& name, const std::string& csv);

 private:
  std::string name_;
  std::vector<double> samples_;  // Kbps
  double interval_s_ = 1.0;
  bool finite_ = false;
};

}  // namespace sensei::net
