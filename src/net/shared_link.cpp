#include "net/shared_link.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sensei::net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// A transfer completes when its remaining bits fall within one bit of zero.
// The slack absorbs the rounding drift between the credit accumulator and
// the trace integrator (both exact to ~1e-4 bits at session scale); one bit
// is sub-microsecond timing error at any realistic bandwidth, and far below
// any real chunk, so it can never complete a transfer spuriously early.
constexpr double kFinishEpsBits = 1.0;

}  // namespace

SharedLink::SharedLink(const ThroughputTrace& trace, bool recycle_ids)
    : trace_(&trace), recycle_ids_(recycle_ids) {
  trace.index();  // fail fast on a default-constructed trace
}

// Min-heap ordering: std::push_heap/pop_heap build a max-heap under the
// comparator, so reversing Credit's operator< puts the smallest
// (finish_credit, id) at the front — completions pop in exactly the order
// the previous sorted-set code produced, join order breaking ties.
namespace {
constexpr auto kCreditAfter = [](const auto& a, const auto& b) { return b < a; };
}  // namespace

void SharedLink::pop_min_credit() {
  std::pop_heap(credits_.begin(), credits_.end(), kCreditAfter);
  credits_.pop_back();
}

double SharedLink::cumulative_bits(double t) const {
  const std::vector<double>& prefix = trace_->index().prefix_bits;
  const size_t n = trace_->sample_count();
  const double period_bits = prefix[n];
  if (!(t > 0.0)) return 0.0;
  // t = +inf: a finite trace caps at one period; a looping trace delivers
  // without bound — unless its period carries nothing (dead link: 0).
  if (!std::isfinite(t)) {
    if (trace_->finite() || period_bits <= 0.0) return period_bits;
    return kInf;
  }
  const double interval = trace_->interval_s();
  const double period_s = interval * static_cast<double>(n);
  if (trace_->finite() && t >= period_s) return period_bits;
  double whole = std::floor(t / period_s);
  double rem = t - whole * period_s;
  auto idx = static_cast<size_t>(rem / interval);
  if (idx >= n) idx = n - 1;  // fp guard at the period boundary
  double span = rem - static_cast<double>(idx) * interval;
  if (span > interval) span = interval;
  return whole * period_bits + prefix[idx] + trace_->samples_kbps()[idx] * 1000.0 * span;
}

size_t SharedLink::begin(double bytes, double start_s) {
  if (!(bytes > 0.0)) throw std::runtime_error("shared link: transfer must carry bytes");
  // Joins happen at the link's current instant: the driver advances the link
  // to each event time before letting sessions act at it.
  if (std::abs(start_s - now_s_) > 1e-9 * std::max(1.0, std::abs(now_s_))) {
    throw std::runtime_error("shared link: transfer must join at the link's current instant");
  }
  Transfer transfer;
  transfer.total_bits = bytes * 8.0;
  transfer.joined_drained_bits = drained_bits_;
  transfer.finish_credit = transfer.total_bits + drained_bits_;
  size_t id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
    transfers_[id] = transfer;
  } else {
    id = transfers_.size();
    transfers_.push_back(transfer);
    // With recycling, clear_completions pushes onto free_ids_ long after the
    // growth phase; give it its worst-case capacity (every id free) now so
    // the release path never allocates in steady state.
    if (recycle_ids_) free_ids_.reserve(transfers_.size());
  }
  credits_.push_back({transfer.finish_credit, id});
  std::push_heap(credits_.begin(), credits_.end(), kCreditAfter);
  return id;
}

double SharedLink::next_completion_s() const {
  if (credits_.empty()) return kInf;
  double min_remaining = min_credit().finish_credit - drained_bits_;
  if (min_remaining <= kFinishEpsBits) return now_s_;
  // Equal split: everyone drains at capacity / n, so the next finisher needs
  // the link to deliver its remaining bits times the active count.
  double bits_needed = min_remaining * static_cast<double>(credits_.size());
  TransferResult r = trace_->advance(bits_needed / 8.0, now_s_);
  if (!r.completed) return kInf;
  return now_s_ + r.elapsed_s;
}

void SharedLink::advance_to(double t) {
  // Engine event times are start + accumulated per-chunk deltas, so they can
  // land an ulp before the link's absolutely-indexed clock. Tolerate the
  // same relative drift begin() accepts; a real backwards step still throws.
  if (t < now_s_) {
    if (now_s_ - t > 1e-9 * std::max(1.0, std::abs(now_s_))) {
      throw std::runtime_error("shared link: time may not run backwards");
    }
    t = now_s_;
  }
  // Overshoot: when t lands beyond the next completion instant, realize the
  // completions one at a time at their exact times — each leaver frees its
  // share for the remainder of the advance, and its finish_s is the true
  // instant, not t. Drivers that advance to next_completion_s() exactly
  // never take this branch (finish_s == t), so their single-delta
  // arithmetic — and with it every pinned result — is bit-identical.
  while (t > now_s_ && !credits_.empty()) {
    double finish_s = next_completion_s();
    if (!(finish_s < t)) break;
    if (finish_s > now_s_) {
      double delta_bits = cumulative_bits(finish_s) - cumulative_bits(now_s_);
      drained_bits_ += delta_bits / static_cast<double>(credits_.size());
      now_s_ = finish_s;
    }
    bool popped = false;
    while (!credits_.empty() &&
           min_credit().finish_credit - drained_bits_ <= kFinishEpsBits) {
      size_t id = min_credit().id;
      pop_min_credit();
      transfers_[id].finished = true;
      transfers_[id].finish_s = now_s_;
      completions_.push_back({id, now_s_});
      popped = true;
    }
    if (!popped) {
      // The drain landed an epsilon short of the prediction; the remaining
      // bits are sub-bit, so complete the predicted finisher rather than
      // re-deriving the same instant forever.
      size_t id = min_credit().id;
      pop_min_credit();
      transfers_[id].finished = true;
      transfers_[id].finish_s = now_s_;
      completions_.push_back({id, now_s_});
    }
  }
  if (t > now_s_) {
    if (!credits_.empty()) {
      double delta_bits = cumulative_bits(t) - cumulative_bits(now_s_);
      drained_bits_ += delta_bits / static_cast<double>(credits_.size());
    }
    now_s_ = t;
  }
  while (!credits_.empty() && min_credit().finish_credit - drained_bits_ <= kFinishEpsBits) {
    size_t id = min_credit().id;
    pop_min_credit();
    transfers_[id].finished = true;
    transfers_[id].finish_s = now_s_;
    completions_.push_back({id, now_s_});
  }
}

void SharedLink::abort(size_t id) {
  if (id >= transfers_.size()) throw std::runtime_error("shared link: unknown transfer id");
  Transfer& transfer = transfers_[id];
  if (transfer.finished || transfer.aborted) {
    throw std::runtime_error("shared link: cannot abort a transfer that is not active");
  }
  bool found = false;
  for (size_t k = 0; k < credits_.size(); ++k) {
    if (credits_[k].id == id) {
      credits_[k] = credits_.back();
      credits_.pop_back();
      found = true;
      break;
    }
  }
  if (!found) throw std::runtime_error("shared link: aborted transfer has no active credit");
  // Rebuilding the heap is O(active); aborts only happen on timeouts and
  // failovers, so this never touches the steady-state join/complete path.
  std::make_heap(credits_.begin(), credits_.end(), kCreditAfter);
  transfer.aborted = true;
  transfer.aborted_granted_bits = std::min(
      transfer.total_bits, std::max(0.0, drained_bits_ - transfer.joined_drained_bits));
  transfer.finish_s = now_s_;
  // The id never reaches completions_, so release it here when recycling.
  if (recycle_ids_) free_ids_.push_back(id);
}

const std::vector<SharedLink::Completion>& SharedLink::completions_sorted() {
  std::sort(completions_.begin(), completions_.end(),
            [](const Completion& a, const Completion& b) { return a.id < b.id; });
  return completions_;
}

void SharedLink::clear_completions() {
  if (recycle_ids_) {
    for (const Completion& c : completions_) free_ids_.push_back(c.id);
  }
  completions_.clear();
}

std::vector<SharedLink::Completion> SharedLink::take_completions() {
  std::vector<Completion> out = completions_sorted();
  clear_completions();
  return out;
}

SharedLink::TransferView SharedLink::view(size_t id) const {
  if (id >= transfers_.size()) throw std::runtime_error("shared link: unknown transfer id");
  const Transfer& transfer = transfers_[id];
  TransferView view;
  view.total_bits = transfer.total_bits;
  view.finished = transfer.finished;
  view.aborted = transfer.aborted;
  view.finish_s = transfer.finish_s;
  if (transfer.finished) {
    view.granted_bits = transfer.total_bits;
  } else if (transfer.aborted) {
    view.granted_bits = transfer.aborted_granted_bits;
  } else {
    view.granted_bits = std::min(transfer.total_bits,
                                 std::max(0.0, drained_bits_ - transfer.joined_drained_bits));
  }
  return view;
}

}  // namespace sensei::net
