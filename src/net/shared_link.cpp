#include "net/shared_link.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sensei::net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// A transfer completes when its remaining bits fall within one bit of zero.
// The slack absorbs the rounding drift between the credit accumulator and
// the trace integrator (both exact to ~1e-4 bits at session scale); one bit
// is sub-microsecond timing error at any realistic bandwidth, and far below
// any real chunk, so it can never complete a transfer spuriously early.
constexpr double kFinishEpsBits = 1.0;

}  // namespace

SharedLink::SharedLink(const ThroughputTrace& trace) : trace_(&trace) {
  trace.index();  // fail fast on a default-constructed trace
}

double SharedLink::cumulative_bits(double t) const {
  const std::vector<double>& prefix = trace_->index().prefix_bits;
  const size_t n = trace_->sample_count();
  const double period_bits = prefix[n];
  if (!(t > 0.0)) return 0.0;
  // t = +inf: a finite trace caps at one period; a looping trace delivers
  // without bound — unless its period carries nothing (dead link: 0).
  if (!std::isfinite(t)) {
    if (trace_->finite() || period_bits <= 0.0) return period_bits;
    return kInf;
  }
  const double interval = trace_->interval_s();
  const double period_s = interval * static_cast<double>(n);
  if (trace_->finite() && t >= period_s) return period_bits;
  double whole = std::floor(t / period_s);
  double rem = t - whole * period_s;
  auto idx = static_cast<size_t>(rem / interval);
  if (idx >= n) idx = n - 1;  // fp guard at the period boundary
  double span = rem - static_cast<double>(idx) * interval;
  if (span > interval) span = interval;
  return whole * period_bits + prefix[idx] + trace_->samples_kbps()[idx] * 1000.0 * span;
}

size_t SharedLink::begin(double bytes, double start_s) {
  if (!(bytes > 0.0)) throw std::runtime_error("shared link: transfer must carry bytes");
  // Joins happen at the link's current instant: the driver advances the link
  // to each event time before letting sessions act at it.
  if (std::abs(start_s - now_s_) > 1e-9 * std::max(1.0, std::abs(now_s_))) {
    throw std::runtime_error("shared link: transfer must join at the link's current instant");
  }
  Transfer transfer;
  transfer.total_bits = bytes * 8.0;
  transfer.joined_drained_bits = drained_bits_;
  transfer.finish_credit = transfer.total_bits + drained_bits_;
  size_t id = transfers_.size();
  transfers_.push_back(transfer);
  credits_.insert({transfer.finish_credit, id});
  return id;
}

double SharedLink::next_completion_s() const {
  if (credits_.empty()) return kInf;
  double min_remaining = credits_.begin()->finish_credit - drained_bits_;
  if (min_remaining <= kFinishEpsBits) return now_s_;
  // Equal split: everyone drains at capacity / n, so the next finisher needs
  // the link to deliver its remaining bits times the active count.
  double bits_needed = min_remaining * static_cast<double>(credits_.size());
  TransferResult r = trace_->advance(bits_needed / 8.0, now_s_);
  if (!r.completed) return kInf;
  return now_s_ + r.elapsed_s;
}

void SharedLink::advance_to(double t) {
  if (t < now_s_) throw std::runtime_error("shared link: time may not run backwards");
  if (t > now_s_) {
    if (!credits_.empty()) {
      double delta_bits = cumulative_bits(t) - cumulative_bits(now_s_);
      drained_bits_ += delta_bits / static_cast<double>(credits_.size());
    }
    now_s_ = t;
  }
  while (!credits_.empty() &&
         credits_.begin()->finish_credit - drained_bits_ <= kFinishEpsBits) {
    size_t id = credits_.begin()->id;
    credits_.erase(credits_.begin());
    transfers_[id].finished = true;
    transfers_[id].finish_s = now_s_;
    completions_.push_back({id, now_s_});
  }
}

std::vector<SharedLink::Completion> SharedLink::take_completions() {
  std::vector<Completion> out = std::move(completions_);
  completions_.clear();
  std::sort(out.begin(), out.end(),
            [](const Completion& a, const Completion& b) { return a.id < b.id; });
  return out;
}

SharedLink::TransferView SharedLink::view(size_t id) const {
  if (id >= transfers_.size()) throw std::runtime_error("shared link: unknown transfer id");
  const Transfer& transfer = transfers_[id];
  TransferView view;
  view.total_bits = transfer.total_bits;
  view.finished = transfer.finished;
  view.finish_s = transfer.finish_s;
  view.granted_bits = transfer.finished
                          ? transfer.total_bits
                          : std::min(transfer.total_bits,
                                     std::max(0.0, drained_bits_ - transfer.joined_drained_bits));
  return view;
}

}  // namespace sensei::net
