// Synthetic throughput-trace generators shaped like the paper's two sources:
//  - FCC broadband: relatively stable around a mean with occasional dips.
//  - 3G/HSDPA (Riiser et al.): bursty cellular links with multi-state
//    Markov level changes on a seconds timescale.
//
// The paper randomly selects 10 traces with means in [0.2, 6] Mbps; the
// test_set() here reproduces that mix (5 cellular + 5 broadband, means
// spread over the range, ordered by increasing average throughput as in
// Figure 14).
#pragma once

#include <cstdint>
#include <vector>

#include "net/trace.h"

namespace sensei::net {

class TraceGenerator {
 public:
  // Markov-modulated cellular-like trace: states are throughput levels around
  // `mean_kbps`; dwell times are exponential; deep fades occur occasionally.
  static ThroughputTrace cellular(const std::string& name, double mean_kbps,
                                  double duration_s, uint64_t seed);

  // Broadband-like trace: AR(1) wander around the mean plus rare short dips.
  static ThroughputTrace broadband(const std::string& name, double mean_kbps,
                                   double duration_s, uint64_t seed);

  // The 10-trace evaluation set (§7.1), ordered by increasing mean throughput.
  static std::vector<ThroughputTrace> test_set(double duration_s = 700.0);

  // The 7-trace set used in §2.2's motivation study.
  static std::vector<ThroughputTrace> motivation_set(double duration_s = 700.0);
};

}  // namespace sensei::net
