#include "net/fault.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace sensei::net {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kOutage:
      return "outage";
    case FaultKind::kCapacityCollapse:
      return "capacity_collapse";
    case FaultKind::kRttSpike:
      return "rtt_spike";
  }
  return "unknown";
}

RandomFaultSpec RandomFaultSpec::scaled(double intensity) const {
  if (!(intensity >= 0.0) || !std::isfinite(intensity)) {
    throw std::invalid_argument("fault spec: intensity must be finite and non-negative");
  }
  RandomFaultSpec out = *this;
  out.mean_outages *= intensity;
  out.mean_collapses *= intensity;
  out.mean_rtt_spikes *= intensity;
  return out;
}

void FaultPlan::add(const FaultEvent& event) {
  if (!std::isfinite(event.start_s) || event.start_s < 0.0) {
    throw std::invalid_argument("fault plan: event start must be finite and non-negative");
  }
  if (!std::isfinite(event.duration_s) || event.duration_s <= 0.0) {
    throw std::invalid_argument("fault plan: event duration must be finite and positive");
  }
  switch (event.kind) {
    case FaultKind::kOutage:
      break;
    case FaultKind::kCapacityCollapse:
      if (!(event.magnitude > 0.0) || !(event.magnitude < 1.0)) {
        throw std::invalid_argument("fault plan: collapse factor must be in (0, 1)");
      }
      break;
    case FaultKind::kRttSpike:
      if (!std::isfinite(event.magnitude) || event.magnitude < 0.0) {
        throw std::invalid_argument("fault plan: rtt spike extra must be finite and non-negative");
      }
      break;
  }
  events_.push_back(event);
}

FaultPlan FaultPlan::random(const RandomFaultSpec& spec, uint64_t seed) {
  if (!(spec.horizon_s > 0.0) || !std::isfinite(spec.horizon_s)) {
    throw std::invalid_argument("fault spec: horizon must be finite and positive");
  }
  FaultPlan plan;
  util::Rng rng(seed);
  // Fixed draw order: counts per kind first, then (start, duration) pairs
  // per event — adding a kind to the spec never perturbs earlier draws.
  const size_t n_outages = rng.poisson(spec.mean_outages);
  const size_t n_collapses = rng.poisson(spec.mean_collapses);
  const size_t n_spikes = rng.poisson(spec.mean_rtt_spikes);
  for (size_t i = 0; i < n_outages; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kOutage;
    e.start_s = rng.uniform(0.0, spec.horizon_s);
    e.duration_s = rng.exponential(spec.outage_mean_duration_s);
    plan.add(e);
  }
  for (size_t i = 0; i < n_collapses; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kCapacityCollapse;
    e.start_s = rng.uniform(0.0, spec.horizon_s);
    e.duration_s = rng.exponential(spec.collapse_mean_duration_s);
    e.magnitude = spec.collapse_factor;
    plan.add(e);
  }
  for (size_t i = 0; i < n_spikes; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kRttSpike;
    e.start_s = rng.uniform(0.0, spec.horizon_s);
    e.duration_s = rng.exponential(spec.rtt_spike_mean_duration_s);
    e.magnitude = spec.rtt_spike_extra_s;
    plan.add(e);
  }
  std::sort(plan.events_.begin(), plan.events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.start_s != b.start_s) return a.start_s < b.start_s;
              if (a.kind != b.kind) return static_cast<int>(a.kind) < static_cast<int>(b.kind);
              if (a.duration_s != b.duration_s) return a.duration_s < b.duration_s;
              return a.magnitude < b.magnitude;
            });
  return plan;
}

double FaultPlan::capacity_horizon_s() const {
  double horizon = 0.0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kRttSpike) continue;
    horizon = std::max(horizon, e.end_s());
  }
  return horizon;
}

double FaultPlan::rtt_extra_s(double t_s) const {
  double extra = 0.0;
  for (const FaultEvent& e : events_) {
    if (e.kind != FaultKind::kRttSpike) continue;
    if (t_s >= e.start_s && t_s < e.end_s()) extra = std::max(extra, e.magnitude);
  }
  return extra;
}

double FaultPlan::capacity_factor_at(double t_s) const {
  double factor = 1.0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kRttSpike) continue;
    if (t_s >= e.start_s && t_s < e.end_s()) {
      factor = std::min(factor, e.kind == FaultKind::kOutage ? 0.0 : e.magnitude);
    }
  }
  return factor;
}

ThroughputTrace FaultPlan::apply_to_trace(const ThroughputTrace& base) const {
  const double horizon = capacity_horizon_s();
  if (horizon <= 0.0) return base;
  if (base.sample_count() == 0) {
    throw std::invalid_argument("fault plan: cannot apply to an empty trace");
  }
  const double dt = base.interval_s();
  const double period_s = base.duration_s();
  // Unroll whole periods so the faulted trace keeps looping seamlessly past
  // the horizon (a finite trace is never extended — faults beyond its end
  // change nothing, the link is already dead there).
  size_t periods = static_cast<size_t>(std::ceil(horizon / period_s));
  if (periods < 1) periods = 1;
  if (base.finite()) periods = 1;
  const size_t n = base.sample_count();
  std::vector<double> samples;
  samples.reserve(n * periods);
  for (size_t p = 0; p < periods; ++p) {
    samples.insert(samples.end(), base.samples_kbps().begin(), base.samples_kbps().end());
  }
  // Scale every interval overlapping a fault window; min factor wins where
  // windows overlap (applying factors multiplicatively would double-count a
  // window scripted twice).
  std::vector<double> factor(samples.size(), 1.0);
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kRttSpike) continue;
    const double f = e.kind == FaultKind::kOutage ? 0.0 : e.magnitude;
    size_t first = static_cast<size_t>(std::floor(e.start_s / dt));
    size_t last = static_cast<size_t>(std::ceil(e.end_s() / dt));
    last = std::min(last, samples.size());
    for (size_t i = first; i < last; ++i) factor[i] = std::min(factor[i], f);
  }
  for (size_t i = 0; i < samples.size(); ++i) samples[i] *= factor[i];
  return ThroughputTrace(base.name(), std::move(samples), dt, base.finite());
}

}  // namespace sensei::net
