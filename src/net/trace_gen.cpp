#include "net/trace_gen.h"

#include <cmath>

#include "util/rng.h"
#include "util/stats.h"

namespace sensei::net {

using util::Rng;

ThroughputTrace TraceGenerator::cellular(const std::string& name, double mean_kbps,
                                         double duration_s, uint64_t seed) {
  Rng rng(seed);
  auto n = static_cast<size_t>(std::ceil(duration_s));
  std::vector<double> samples;
  samples.reserve(n);

  // Multi-state Markov: levels are multiples of the mean; fades are rare but
  // deep, mirroring HSDPA commute traces.
  const std::vector<double> level_factor = {0.25, 0.55, 0.9, 1.3, 1.8};
  const std::vector<double> level_weight = {0.10, 0.22, 0.33, 0.25, 0.10};
  size_t state = 2;
  double dwell_left = rng.exponential(6.0);
  while (samples.size() < n) {
    if (dwell_left <= 0.0) {
      state = rng.weighted_index(level_weight);
      dwell_left = rng.exponential(6.0);
    }
    double base = mean_kbps * level_factor[state];
    double jitter = rng.normal(0.0, 0.12 * base);
    samples.push_back(std::max(30.0, base + jitter));
    dwell_left -= 1.0;
  }
  return ThroughputTrace(name, std::move(samples), 1.0);
}

ThroughputTrace TraceGenerator::broadband(const std::string& name, double mean_kbps,
                                          double duration_s, uint64_t seed) {
  Rng rng(seed);
  auto n = static_cast<size_t>(std::ceil(duration_s));
  std::vector<double> samples;
  samples.reserve(n);

  double level = mean_kbps;
  int dip_left = 0;
  for (size_t i = 0; i < n; ++i) {
    // AR(1) wander with slow reversion to the mean.
    level = 0.92 * level + 0.08 * mean_kbps + rng.normal(0.0, 0.05 * mean_kbps);
    double value = level;
    if (dip_left > 0) {
      value *= 0.35;
      --dip_left;
    } else if (rng.chance(0.02)) {
      dip_left = rng.uniform_int(2, 6);
    }
    samples.push_back(std::max(50.0, value));
  }
  return ThroughputTrace(name, std::move(samples), 1.0);
}

std::vector<ThroughputTrace> TraceGenerator::test_set(double duration_s) {
  // 5 cellular + 5 broadband, means spanning 0.4..5.2 Mbps, ordered by mean.
  std::vector<ThroughputTrace> traces;
  traces.push_back(cellular("hsdpa-01", 450, duration_s, 101));
  traces.push_back(cellular("hsdpa-02", 800, duration_s, 102));
  traces.push_back(broadband("fcc-01", 1100, duration_s, 103));
  traces.push_back(cellular("hsdpa-03", 1500, duration_s, 104));
  traces.push_back(broadband("fcc-02", 1900, duration_s, 105));
  traces.push_back(cellular("hsdpa-04", 2300, duration_s, 106));
  traces.push_back(broadband("fcc-03", 2800, duration_s, 107));
  traces.push_back(cellular("hsdpa-05", 3400, duration_s, 108));
  traces.push_back(broadband("fcc-04", 4200, duration_s, 109));
  traces.push_back(broadband("fcc-05", 5200, duration_s, 110));
  return traces;
}

std::vector<ThroughputTrace> TraceGenerator::motivation_set(double duration_s) {
  std::vector<ThroughputTrace> traces;
  traces.push_back(cellular("moto-cell-1", 600, duration_s, 201));
  traces.push_back(cellular("moto-cell-2", 1200, duration_s, 202));
  traces.push_back(cellular("moto-cell-3", 2100, duration_s, 203));
  traces.push_back(broadband("moto-bb-1", 1600, duration_s, 204));
  traces.push_back(broadband("moto-bb-2", 2600, duration_s, 205));
  traces.push_back(broadband("moto-bb-3", 3800, duration_s, 206));
  traces.push_back(broadband("moto-bb-4", 5000, duration_s, 207));
  return traces;
}

}  // namespace sensei::net
