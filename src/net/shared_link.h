// Shared bottleneck link: one trace's capacity split across concurrent
// transfers.
//
// Model: at any instant the link's capacity (the trace step function) is
// divided *equally* among the active transfers — the fluid limit of
// per-connection fair queueing on a common bottleneck, the standard
// contention model in multi-client ABR studies. Consequences the tests pin
// down (tests/test_simulator.cpp):
//
//  * conservation — over any span the bits granted across all transfers sum
//    to exactly the trace capacity of that span (no transfer ever rides
//    capacity the trace did not deliver, none is wasted while anyone is
//    active);
//  * fairness — symmetric transfers progress identically and finish
//    together;
//  * work conservation — when all but one transfer leave, the survivor gets
//    the full link from that instant on.
//
// Mechanically the link rides the same cumulative-capacity prefix sums as
// ThroughputTrace::advance (net::TraceIndex): equal split means every active
// transfer drains at the same bits/s, so the relative order of their
// remaining bits never changes between membership events. Each transfer is
// therefore booked once, at join time, as a *finish credit* (bits remaining
// + bits already drained per transfer); a credit min-heap plus one global
// drained-bits accumulator answer "who finishes next" and "how much has
// everyone received" in O(log n) per event, with no per-transfer update on
// the hot path and no allocation once the backing vectors reach the link's
// peak concurrency.
//
// The link is a passive integrator: a driver (sim::Simulator) advances it
// through time with advance_to(), never past next_completion_s(), and joins
// transfers only at the link's current instant — which is exactly how the
// event loop produces its times, so the contract costs the driver nothing.
#pragma once

#include <cstddef>
#include <vector>

#include "net/trace.h"

namespace sensei::net {

class SharedLink {
 public:
  // `trace` must outlive the link. Time 0 of the link is time 0 of the trace.
  // With `recycle_ids` the link reuses the ids of transfers whose completion
  // has been drained (take_completions / clear_completions), so per-transfer
  // bookkeeping is bounded by peak concurrency instead of total transfer
  // count — the fleet-scale memory model. view(id) then describes the id's
  // *current* occupant, so diagnostics that read finished transfers after
  // the fact should leave recycling off (the default).
  explicit SharedLink(const ThroughputTrace& trace, bool recycle_ids = false);

  const ThroughputTrace& trace() const { return *trace_; }
  double now_s() const { return now_s_; }
  size_t active_count() const { return credits_.size(); }

  // Registers a transfer of `bytes` (> 0) starting at `start_s`, which must
  // be the link's current instant (the driver advances the link to an event
  // time, then lets sessions join at it). Returns the transfer's id.
  size_t begin(double bytes, double start_s);

  // Earliest absolute time at which an active transfer completes if the
  // active set stays fixed; +infinity when there is no active transfer or
  // the link can never deliver the remaining bits (dead link — all-zero
  // looping trace or exhausted finite trace).
  double next_completion_s() const;

  // Drains shared capacity up to absolute time `t` (>= now, and not past
  // next_completion_s() + the completion instant itself): every active
  // transfer receives an equal share of the trace capacity over [now, t].
  // Transfers whose remaining bits reach zero at `t` complete and leave the
  // link.
  void advance_to(double t);

  // Removes an *active* transfer from the link at its current instant — the
  // resilience path for a timed-out request or a cell failover, where the
  // session walks away mid-download. The bits granted so far are frozen in
  // the transfer's view (marked aborted); the remaining active transfers
  // split the full capacity from this instant on, exactly as if the transfer
  // had completed. Throws for an unknown id or one that is not active
  // (already finished or aborted) — drivers deliver completions before
  // session events at the same instant, so a session can never race its own
  // completion here. O(active) for the credit removal; aborts ride the rare
  // fault path, never the steady-state one.
  void abort(size_t id);

  // Completions recorded since the last drain, in join (id) order.
  struct Completion {
    size_t id = 0;
    double finish_s = 0.0;
  };
  // Allocation-free drain pair for event-loop drivers: the returned view is
  // valid until the next advance_to/begin/clear_completions, and the clear
  // keeps the buffer's capacity (and, with recycle_ids, frees the drained
  // ids for reuse).
  const std::vector<Completion>& completions_sorted();
  void clear_completions();
  // Convenience drain returning an owned copy (clears, as above).
  std::vector<Completion> take_completions();

  // Per-transfer accounting for tests and diagnostics.
  struct TransferView {
    double total_bits = 0.0;
    double granted_bits = 0.0;  // delivered so far (== total once finished)
    bool finished = false;
    bool aborted = false;
    double finish_s = 0.0;  // valid when finished or aborted (abort instant)
  };
  TransferView view(size_t id) const;

  // Trace capacity (bits) deliverable over [0, t): the link-wide budget the
  // conservation tests compare grants against. Looping traces accumulate
  // period capacity forever; finite traces cap at their duration.
  double cumulative_bits(double t) const;

 private:
  // Remaining bits of an active transfer = credit - drained_bits_: the
  // credit is fixed at join, the accumulator advances for everyone at once.
  // Kept in a binary min-heap over (finish_credit, id) — same completion
  // order a sorted set would give (ties pop in join order), but the backing
  // vector's capacity is reused, so the per-join hot path never allocates
  // once the link has seen its peak concurrency.
  struct Credit {
    double finish_credit = 0.0;
    size_t id = 0;
    bool operator<(const Credit& other) const {
      if (finish_credit != other.finish_credit) return finish_credit < other.finish_credit;
      return id < other.id;
    }
  };

  struct Transfer {
    double total_bits = 0.0;
    double joined_drained_bits = 0.0;  // drained_bits_ at join
    double finish_credit = 0.0;
    bool finished = false;
    bool aborted = false;
    double aborted_granted_bits = 0.0;  // grants frozen at the abort instant
    double finish_s = 0.0;
  };

  const Credit& min_credit() const { return credits_.front(); }
  void pop_min_credit();

  const ThroughputTrace* trace_ = nullptr;
  bool recycle_ids_ = false;
  double now_s_ = 0.0;
  // Per-transfer share of capacity drained since the link began (bits).
  double drained_bits_ = 0.0;
  std::vector<Credit> credits_;      // binary min-heap, next finisher at front
  std::vector<Transfer> transfers_;  // indexed by id (bounded when recycling)
  std::vector<size_t> free_ids_;     // drained ids awaiting reuse (recycle_ids_)
  std::vector<Completion> completions_;
};

}  // namespace sensei::net
