// Shared bottleneck link: one trace's capacity split across concurrent
// transfers.
//
// Model: at any instant the link's capacity (the trace step function) is
// divided *equally* among the active transfers — the fluid limit of
// per-connection fair queueing on a common bottleneck, the standard
// contention model in multi-client ABR studies. Consequences the tests pin
// down (tests/test_simulator.cpp):
//
//  * conservation — over any span the bits granted across all transfers sum
//    to exactly the trace capacity of that span (no transfer ever rides
//    capacity the trace did not deliver, none is wasted while anyone is
//    active);
//  * fairness — symmetric transfers progress identically and finish
//    together;
//  * work conservation — when all but one transfer leave, the survivor gets
//    the full link from that instant on.
//
// Mechanically the link rides the same cumulative-capacity prefix sums as
// ThroughputTrace::advance (net::TraceIndex): equal split means every active
// transfer drains at the same bits/s, so the relative order of their
// remaining bits never changes between membership events. Each transfer is
// therefore booked once, at join time, as a *finish credit* (bits remaining
// + bits already drained per transfer); the ordered credit set plus one
// global drained-bits accumulator answer "who finishes next" and "how much
// has everyone received" in O(log n) per event, with no per-transfer update
// on the hot path.
//
// The link is a passive integrator: a driver (sim::Simulator) advances it
// through time with advance_to(), never past next_completion_s(), and joins
// transfers only at the link's current instant — which is exactly how the
// event loop produces its times, so the contract costs the driver nothing.
#pragma once

#include <cstddef>
#include <set>
#include <vector>

#include "net/trace.h"

namespace sensei::net {

class SharedLink {
 public:
  // `trace` must outlive the link. Time 0 of the link is time 0 of the trace.
  explicit SharedLink(const ThroughputTrace& trace);

  const ThroughputTrace& trace() const { return *trace_; }
  double now_s() const { return now_s_; }
  size_t active_count() const { return credits_.size(); }

  // Registers a transfer of `bytes` (> 0) starting at `start_s`, which must
  // be the link's current instant (the driver advances the link to an event
  // time, then lets sessions join at it). Returns the transfer's id.
  size_t begin(double bytes, double start_s);

  // Earliest absolute time at which an active transfer completes if the
  // active set stays fixed; +infinity when there is no active transfer or
  // the link can never deliver the remaining bits (dead link — all-zero
  // looping trace or exhausted finite trace).
  double next_completion_s() const;

  // Drains shared capacity up to absolute time `t` (>= now, and not past
  // next_completion_s() + the completion instant itself): every active
  // transfer receives an equal share of the trace capacity over [now, t].
  // Transfers whose remaining bits reach zero at `t` complete and leave the
  // link.
  void advance_to(double t);

  // Completions recorded since the last call, in join (id) order.
  struct Completion {
    size_t id = 0;
    double finish_s = 0.0;
  };
  std::vector<Completion> take_completions();

  // Per-transfer accounting for tests and diagnostics.
  struct TransferView {
    double total_bits = 0.0;
    double granted_bits = 0.0;  // delivered so far (== total once finished)
    bool finished = false;
    double finish_s = 0.0;  // valid when finished
  };
  TransferView view(size_t id) const;

  // Trace capacity (bits) deliverable over [0, t): the link-wide budget the
  // conservation tests compare grants against. Looping traces accumulate
  // period capacity forever; finite traces cap at their duration.
  double cumulative_bits(double t) const;

 private:
  // Remaining bits of an active transfer = credit - drained_bits_: the
  // credit is fixed at join, the accumulator advances for everyone at once.
  struct Credit {
    double finish_credit = 0.0;
    size_t id = 0;
    bool operator<(const Credit& other) const {
      if (finish_credit != other.finish_credit) return finish_credit < other.finish_credit;
      return id < other.id;
    }
  };

  struct Transfer {
    double total_bits = 0.0;
    double joined_drained_bits = 0.0;  // drained_bits_ at join
    double finish_credit = 0.0;
    bool finished = false;
    double finish_s = 0.0;
  };

  const ThroughputTrace* trace_ = nullptr;
  double now_s_ = 0.0;
  // Per-transfer share of capacity drained since the link began (bits).
  double drained_bits_ = 0.0;
  std::set<Credit> credits_;         // active transfers, next finisher first
  std::vector<Transfer> transfers_;  // all transfers ever, indexed by id
  std::vector<Completion> completions_;
};

}  // namespace sensei::net
