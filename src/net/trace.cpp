#include "net/trace.h"

#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"
#include "util/stats.h"

namespace sensei::net {

namespace {

std::atomic<int> g_default_integration{static_cast<int>(TraceIntegration::kIndexed)};

TransferResult dead_link() {
  TransferResult result;
  result.completed = false;
  result.elapsed_s = std::numeric_limits<double>::infinity();
  return result;
}

// Smallest k in (p, n] with prefix[k] - prefix[p] >= target, given that
// k = n satisfies it. The predicate is monotone in k (prefix is
// nondecreasing and rounding is order-preserving), so the linear reference
// scan and the bracketed binary search provably return the same k — this
// single shared expression is what makes the two integration modes
// bit-identical. `hint` (a phase from a cursor's previous finish) only
// seeds the gallop that brackets the answer.
// Chunk-scale transfers finish within a few intervals of their start, where
// a cache-hot linear scan beats binary search; session-scale transfers and
// long fades span thousands, where binary search wins by orders of
// magnitude. The indexed mode scans this many intervals exactly before
// switching — the hybrid returns the same minimal k either way, so the
// constant is pure tuning, never semantics.
constexpr size_t kLinearScanSpan = 64;

size_t find_finish(const std::vector<double>& prefix, size_t p, size_t n, double target,
                   TraceIntegration mode, size_t* hint) {
  auto consumed_reaches = [&](size_t k) { return prefix[k] - prefix[p] >= target; };

  if (mode == TraceIntegration::kWalker) {
    size_t k = p + 1;
    while (!consumed_reaches(k)) ++k;
    return k;
  }

  // Short exact linear scan first (the common chunk-download case).
  size_t linear_end = n - p > kLinearScanSpan ? p + kLinearScanSpan : n;
  for (size_t k = p + 1; k <= linear_end; ++k) {
    if (consumed_reaches(k)) return k;
  }

  // Bracket (lo, hi]: predicate false at lo, true at hi (pred(n) holds by
  // the caller's window check). A cursor's hint from the previous finish
  // splits the bracket once before the binary search.
  size_t lo = linear_end;
  size_t hi = n;
  if (hint != nullptr && *hint > lo && *hint < hi) {
    if (consumed_reaches(*hint)) {
      hi = *hint;
    } else {
      lo = *hint;
    }
  }
  while (hi - lo > 1) {
    size_t mid = lo + (hi - lo) / 2;
    if (consumed_reaches(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace

TraceIntegration default_trace_integration() {
  return static_cast<TraceIntegration>(g_default_integration.load(std::memory_order_relaxed));
}

void set_default_trace_integration(TraceIntegration mode) {
  g_default_integration.store(static_cast<int>(mode), std::memory_order_relaxed);
}

ThroughputTrace::ThroughputTrace(std::string name, std::vector<double> samples_kbps,
                                 double interval_s, bool finite)
    : name_(std::move(name)),
      samples_(std::move(samples_kbps)),
      interval_s_(interval_s),
      finite_(finite) {
  if (samples_.empty()) throw std::runtime_error("trace: no samples");
  if (!std::isfinite(interval_s_) || interval_s_ <= 0.0)
    throw std::runtime_error("trace: interval must be finite and > 0");
  for (double s : samples_) {
    // !(s >= 0) also rejects NaN, which every ordinary comparison lets through.
    if (!std::isfinite(s) || !(s >= 0.0))
      throw std::runtime_error("trace: throughput must be finite and >= 0");
  }
  // Cumulative-capacity index: one left-to-right pass, the accumulation
  // order every integration below reuses.
  auto index = std::make_shared<TraceIndex>();
  index->prefix_bits.resize(samples_.size() + 1);
  index->prefix_bits[0] = 0.0;
  for (size_t k = 0; k < samples_.size(); ++k) {
    double capacity_bits = samples_[k] * 1000.0 * interval_s_;
    index->prefix_bits[k + 1] = index->prefix_bits[k] + capacity_bits;
  }
  index_ = std::move(index);
}

ThroughputTrace ThroughputTrace::as_finite() const {
  return ThroughputTrace(name_, samples_, interval_s_, true);
}

const TraceIndex& ThroughputTrace::index() const {
  if (!index_) throw std::runtime_error("trace: default-constructed trace has no index");
  return *index_;
}

double ThroughputTrace::throughput_at(double t_s) const {
  // A non-finite clock (e.g. the +inf wall time an outage produces) has no
  // sample; casting it to an index would be UB. The link reads as dead.
  if (!std::isfinite(t_s)) return 0.0;
  if (t_s < 0.0) t_s = 0.0;
  if (finite_ && t_s >= duration_s()) return 0.0;
  auto idx = static_cast<size_t>(t_s / interval_s_);
  return samples_[idx % samples_.size()];
}

double ThroughputTrace::mean_kbps() const { return util::mean(samples_); }

double ThroughputTrace::stddev_kbps() const { return util::stddev(samples_); }

TransferResult ThroughputTrace::integrate(double bytes, double start_s, TraceIntegration mode,
                                          size_t* hint) const {
  TransferResult result;
  if (bytes <= 0.0) return result;
  // A transfer "started" at non-finite time (downstream of an earlier
  // outage) can never complete; index arithmetic from it would be UB.
  if (!std::isfinite(start_s)) return dead_link();
  if (start_s < 0.0) start_s = 0.0;
  // A start so far out that interval indices exceed the exactly-representable
  // integer range cannot be located reliably; such a clock only arises
  // downstream of an earlier unbounded stall, so the link reads as dead.
  if (start_s / interval_s_ >= 9.0e15) return dead_link();
  if (!index_) return dead_link();  // default-constructed empty trace

  const size_t n = samples_.size();
  const std::vector<double>& prefix = index_->prefix_bits;
  double remaining_bits = bytes * 8.0;

  // --- the (possibly partial) interval the transfer starts in -------------
  auto idx = static_cast<size_t>(start_s / interval_s_);
  double span;
  while (true) {
    if (finite_ && idx >= n) return dead_link();
    double interval_end = static_cast<double>(idx + 1) * interval_s_;
    span = interval_end - start_s;
    if (span > 0.0) break;
    // The start rounded onto (or past) this interval's end: a zero-width
    // sliver with no capacity to consume.
    ++idx;
  }
  double kbps = samples_[idx % n];
  if (kbps > 0.0) {
    double bps = kbps * 1000.0;
    double capacity_bits = bps * span;
    if (capacity_bits >= remaining_bits) {
      result.elapsed_s = remaining_bits / bps;
      return result;
    }
    remaining_bits -= capacity_bits;
  }

  // --- full intervals, one period window at a time -------------------------
  // The finishing interval is the smallest k with "capacity consumed since
  // the window's phase >= bits remaining" — evaluated from the shared prefix
  // sums, so the walker's linear scan and the indexed binary search agree
  // exactly. Looping traces consume whole periods in O(1) between windows.
  const size_t b = idx + 1;  // absolute index of the first full interval
  const double period_bits = prefix[n];
  size_t base;   // absolute index of the current window's phase 0
  size_t phase;  // prefix index the window starts at
  if (finite_) {
    base = 0;
    phase = b;
  } else {
    phase = b % n;
    base = b - phase;
    if (period_bits > 0.0) {
      // A transfer that would finish beyond the exactly-representable
      // interval range cannot be timed reliably (the start_s guard's twin);
      // classify it as dead instead of marching periods toward it. The
      // bound overestimates capacity, so any transfer it rejects would
      // finish past index ~9e15.
      if (remaining_bits > period_bits * (9.0e15 / static_cast<double>(n))) {
        return dead_link();
      }
    }
  }
  while (true) {
    if (finite_ && phase >= n) return dead_link();
    double window_bits = prefix[n] - prefix[phase];
    if (window_bits >= remaining_bits) {
      size_t k = find_finish(prefix, phase, n, remaining_bits, mode, hint);
      if (hint != nullptr) *hint = k;
      size_t finish = base + k - 1;  // absolute finishing interval
      double r = remaining_bits - (prefix[k - 1] - prefix[phase]);
      double bps = samples_[k - 1] * 1000.0;
      double interval_start = static_cast<double>(finish) * interval_s_;
      result.elapsed_s = (interval_start - start_s) + r / bps;
      return result;
    }
    if (finite_) return dead_link();
    // A zero-capacity period can never deliver the rest: the link is dead
    // (an all-zero looping trace — prefix[n] > 0 whenever any sample is).
    if (period_bits <= 0.0) return dead_link();
    double next_remaining = remaining_bits - window_bits;
    // No numeric progress (the period's capacity is below the remaining
    // bits' rounding grain): the transfer can never be timed; treat the
    // link as dead rather than looping forever.
    if (!(next_remaining < remaining_bits)) return dead_link();
    remaining_bits = next_remaining;
    base += n;
    phase = 0;
  }
}

TransferResult ThroughputTrace::advance(double bytes, double start_s,
                                        TraceIntegration mode) const {
  return integrate(bytes, start_s, mode, nullptr);
}

double ThroughputTrace::download_time_s(double bytes, double start_s, double rtt_s,
                                        TraceIntegration mode) const {
  // RTT is request dead time: it burns wall clock *before* the first byte
  // and consumes no trace capacity, so the transfer integrates from
  // start_s + rtt_s (not from start_s, which would let the request "use"
  // link capacity it never touched).
  if (bytes <= 0.0) return rtt_s;
  TransferResult transfer = advance(bytes, start_s + rtt_s, mode);
  if (!transfer.completed) return std::numeric_limits<double>::infinity();
  return rtt_s + transfer.elapsed_s;
}

TransferResult TraceCursor::advance(double bytes, double start_s) {
  return trace_->integrate(bytes, start_s, mode_, &hint_);
}

double TraceCursor::download_time_s(double bytes, double start_s, double rtt_s) {
  if (bytes <= 0.0) return rtt_s;
  TransferResult transfer = advance(bytes, start_s + rtt_s);
  if (!transfer.completed) return std::numeric_limits<double>::infinity();
  return rtt_s + transfer.elapsed_s;
}

ThroughputTrace ThroughputTrace::scaled(double factor, const std::string& new_name) const {
  if (factor < 0.0) throw std::runtime_error("trace: negative scale factor");
  std::vector<double> scaled_samples(samples_.size());
  for (size_t i = 0; i < samples_.size(); ++i) scaled_samples[i] = samples_[i] * factor;
  return ThroughputTrace(new_name.empty() ? name_ + "-x" + std::to_string(factor) : new_name,
                         std::move(scaled_samples), interval_s_, finite_);
}

ThroughputTrace ThroughputTrace::with_noise(double sigma_kbps, uint64_t seed,
                                            double floor_kbps) const {
  util::Rng rng(seed);
  std::vector<double> noisy(samples_.size());
  for (size_t i = 0; i < samples_.size(); ++i) {
    noisy[i] = std::max(floor_kbps, samples_[i] + rng.normal(0.0, sigma_kbps));
  }
  return ThroughputTrace(name_ + "+noise", std::move(noisy), interval_s_, finite_);
}

std::string ThroughputTrace::to_csv() const {
  std::ostringstream os;
  os << "time_s,throughput_kbps\n";
  for (size_t i = 0; i < samples_.size(); ++i) {
    os << static_cast<double>(i) * interval_s_ << ',' << samples_[i] << '\n';
  }
  return os.str();
}

namespace {

// Parses one numeric cell or throws with the trace name, 1-based line
// number, and the offending text.
double parse_cell(const std::string& name, size_t line_no, const std::string& text,
                  const char* what) {
  try {
    size_t consumed = 0;
    double value = std::stod(text, &consumed);
    // Trailing garbage after the number ("1.5abc") is malformed too.
    while (consumed < text.size() &&
           (text[consumed] == ' ' || text[consumed] == '\t')) {
      ++consumed;
    }
    if (consumed != text.size()) throw std::invalid_argument("trailing characters");
    // std::stod happily parses "nan" and "inf"; both poison trace timing
    // silently (NaN passes every ordered comparison downstream).
    if (!std::isfinite(value)) throw std::invalid_argument("non-finite value");
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("trace csv (" + name + ") line " + std::to_string(line_no) +
                             ": malformed " + what + " '" + text + "'");
  }
}

}  // namespace

ThroughputTrace ThroughputTrace::from_csv(const std::string& name, const std::string& csv) {
  std::istringstream is(csv);
  std::string line;
  std::vector<double> times;
  std::vector<double> samples;
  std::vector<size_t> line_of_row;
  size_t line_no = 0;
  auto fail = [&](const std::string& what) -> void {
    throw std::runtime_error("trace csv (" + name + ") line " + std::to_string(line_no) +
                             ": " + what);
  };
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;                         // blank
    if (line[first] == '#') continue;                                 // comment
    if (line.find("time_s") != std::string::npos) continue;           // header
    auto comma = line.find(',');
    if (comma == std::string::npos) fail("expected 'time_s,throughput_kbps'");
    double t = parse_cell(name, line_no, line.substr(0, comma), "timestamp");
    double kbps = parse_cell(name, line_no, line.substr(comma + 1), "throughput");
    if (kbps < 0.0) fail("negative throughput " + std::to_string(kbps));
    if (!times.empty() && t <= times.back()) {
      fail("non-monotonic timestamp " + std::to_string(t) + " after " +
           std::to_string(times.back()));
    }
    times.push_back(t);
    samples.push_back(kbps);
    line_of_row.push_back(line_no);
  }
  if (samples.empty()) throw std::runtime_error("trace: empty csv");
  double interval = 1.0;
  if (times.size() >= 2) {
    interval = times[1] - times[0];
    // The step-function model needs uniform spacing; a single irregular gap
    // would silently mistime every later sample, so reject it loudly.
    for (size_t i = 2; i < times.size(); ++i) {
      double gap = times[i] - times[i - 1];
      if (std::abs(gap - interval) > 1e-6 * std::max(1.0, std::abs(interval))) {
        line_no = line_of_row[i];
        fail("non-uniform timestamp spacing " + std::to_string(gap) + " (expected " +
             std::to_string(interval) + ")");
      }
    }
  }
  return ThroughputTrace(name, std::move(samples), interval);
}

}  // namespace sensei::net
