#include "net/trace.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"
#include "util/stats.h"

namespace sensei::net {

ThroughputTrace::ThroughputTrace(std::string name, std::vector<double> samples_kbps,
                                 double interval_s)
    : name_(std::move(name)), samples_(std::move(samples_kbps)), interval_s_(interval_s) {
  if (samples_.empty()) throw std::runtime_error("trace: no samples");
  if (interval_s_ <= 0.0) throw std::runtime_error("trace: interval must be > 0");
  for (double s : samples_) {
    if (s < 0.0) throw std::runtime_error("trace: negative throughput");
  }
}

double ThroughputTrace::throughput_at(double t_s) const {
  if (t_s < 0.0) t_s = 0.0;
  auto idx = static_cast<size_t>(t_s / interval_s_);
  return samples_[idx % samples_.size()];
}

double ThroughputTrace::mean_kbps() const { return util::mean(samples_); }

double ThroughputTrace::stddev_kbps() const { return util::stddev(samples_); }

double ThroughputTrace::download_time_s(double bytes, double start_s, double rtt_s) const {
  if (bytes <= 0.0) return rtt_s;
  double remaining_bits = bytes * 8.0;
  double t = start_s;
  // Integrate the step function; guard against an all-zero trace stretch by
  // capping the walk at 10,000 intervals (treat as stalled-forever).
  for (int guard = 0; guard < 10000; ++guard) {
    double kbps = throughput_at(t);
    double interval_end = (std::floor(t / interval_s_) + 1.0) * interval_s_;
    double span = interval_end - t;
    double capacity_bits = kbps * 1000.0 * span;
    if (kbps > 0.0 && capacity_bits >= remaining_bits) {
      return (t - start_s) + remaining_bits / (kbps * 1000.0) + rtt_s;
    }
    remaining_bits -= capacity_bits;
    t = interval_end;
  }
  return (t - start_s) + rtt_s;
}

ThroughputTrace ThroughputTrace::scaled(double factor, const std::string& new_name) const {
  if (factor < 0.0) throw std::runtime_error("trace: negative scale factor");
  std::vector<double> scaled_samples(samples_.size());
  for (size_t i = 0; i < samples_.size(); ++i) scaled_samples[i] = samples_[i] * factor;
  return ThroughputTrace(new_name.empty() ? name_ + "-x" + std::to_string(factor) : new_name,
                         std::move(scaled_samples), interval_s_);
}

ThroughputTrace ThroughputTrace::with_noise(double sigma_kbps, uint64_t seed,
                                            double floor_kbps) const {
  util::Rng rng(seed);
  std::vector<double> noisy(samples_.size());
  for (size_t i = 0; i < samples_.size(); ++i) {
    noisy[i] = std::max(floor_kbps, samples_[i] + rng.normal(0.0, sigma_kbps));
  }
  return ThroughputTrace(name_ + "+noise", std::move(noisy), interval_s_);
}

std::string ThroughputTrace::to_csv() const {
  std::ostringstream os;
  os << "time_s,throughput_kbps\n";
  for (size_t i = 0; i < samples_.size(); ++i) {
    os << static_cast<double>(i) * interval_s_ << ',' << samples_[i] << '\n';
  }
  return os.str();
}

ThroughputTrace ThroughputTrace::from_csv(const std::string& name, const std::string& csv) {
  std::istringstream is(csv);
  std::string line;
  std::vector<double> times;
  std::vector<double> samples;
  while (std::getline(is, line)) {
    if (line.empty() || line.find("time_s") != std::string::npos) continue;
    auto comma = line.find(',');
    if (comma == std::string::npos) continue;
    times.push_back(std::stod(line.substr(0, comma)));
    samples.push_back(std::stod(line.substr(comma + 1)));
  }
  if (samples.empty()) throw std::runtime_error("trace: empty csv");
  double interval = times.size() >= 2 ? times[1] - times[0] : 1.0;
  if (interval <= 0.0) interval = 1.0;
  return ThroughputTrace(name, std::move(samples), interval);
}

}  // namespace sensei::net
