#include "net/trace.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"
#include "util/stats.h"

namespace sensei::net {

ThroughputTrace::ThroughputTrace(std::string name, std::vector<double> samples_kbps,
                                 double interval_s, bool finite)
    : name_(std::move(name)),
      samples_(std::move(samples_kbps)),
      interval_s_(interval_s),
      finite_(finite) {
  if (samples_.empty()) throw std::runtime_error("trace: no samples");
  if (!std::isfinite(interval_s_) || interval_s_ <= 0.0)
    throw std::runtime_error("trace: interval must be finite and > 0");
  for (double s : samples_) {
    // !(s >= 0) also rejects NaN, which every ordinary comparison lets through.
    if (!std::isfinite(s) || !(s >= 0.0))
      throw std::runtime_error("trace: throughput must be finite and >= 0");
  }
}

ThroughputTrace ThroughputTrace::as_finite() const {
  return ThroughputTrace(name_, samples_, interval_s_, true);
}

double ThroughputTrace::throughput_at(double t_s) const {
  // A non-finite clock (e.g. the +inf wall time an outage produces) has no
  // sample; casting it to an index would be UB. The link reads as dead.
  if (!std::isfinite(t_s)) return 0.0;
  if (t_s < 0.0) t_s = 0.0;
  if (finite_ && t_s >= duration_s()) return 0.0;
  auto idx = static_cast<size_t>(t_s / interval_s_);
  return samples_[idx % samples_.size()];
}

double ThroughputTrace::mean_kbps() const { return util::mean(samples_); }

double ThroughputTrace::stddev_kbps() const { return util::stddev(samples_); }

TransferResult ThroughputTrace::advance(double bytes, double start_s) const {
  TransferResult result;
  if (bytes <= 0.0) return result;
  // A transfer "started" at non-finite time (downstream of an earlier
  // outage) can never complete; walking from it would be UB in the index
  // arithmetic below.
  if (!std::isfinite(start_s)) {
    result.completed = false;
    result.elapsed_s = std::numeric_limits<double>::infinity();
    return result;
  }
  if (start_s < 0.0) start_s = 0.0;
  // A start so far out that interval indices exceed the exactly-representable
  // integer range cannot be walked reliably; such a clock only arises
  // downstream of an earlier unbounded stall, so the link reads as dead.
  if (start_s / interval_s_ >= 9.0e15) {
    result.completed = false;
    result.elapsed_s = std::numeric_limits<double>::infinity();
    return result;
  }
  double remaining_bits = bytes * 8.0;
  double t = start_s;
  // Integrate the step function interval by interval, walking an *integer*
  // interval index (recomputing floor(t / interval) each step can reach a
  // floating-point fixpoint for non-dyadic intervals — span 0, no progress,
  // infinite loop). The walk terminates exactly: either some interval
  // finishes the transfer, or the link is provably dead — a finite trace
  // ran out, or a looping trace produced a full period of zero-capacity
  // intervals (consecutive intervals cover every sample once per period,
  // so a zero period means an all-zero trace).
  auto idx = static_cast<size_t>(t / interval_s_);
  size_t zero_intervals = 0;
  while (true) {
    if (finite_ && idx >= samples_.size()) {
      result.completed = false;
      result.elapsed_s = std::numeric_limits<double>::infinity();
      return result;
    }
    double interval_end = static_cast<double>(idx + 1) * interval_s_;
    double span = interval_end - t;
    if (span > 0.0) {
      double kbps = samples_[idx % samples_.size()];
      double capacity_bits = kbps * 1000.0 * span;
      if (kbps > 0.0 && capacity_bits >= remaining_bits) {
        result.elapsed_s = (t - start_s) + remaining_bits / (kbps * 1000.0);
        return result;
      }
      if (kbps > 0.0) {
        zero_intervals = 0;
      } else if (++zero_intervals >= samples_.size() && !finite_) {
        result.completed = false;
        result.elapsed_s = std::numeric_limits<double>::infinity();
        return result;
      }
      remaining_bits -= capacity_bits;
      t = interval_end;
    }
    // span <= 0 happens only when the start landed at (or rounded past) an
    // interval boundary: consume nothing and move to the next interval.
    ++idx;
  }
}

double ThroughputTrace::download_time_s(double bytes, double start_s, double rtt_s) const {
  // RTT is request dead time: it burns wall clock *before* the first byte
  // and consumes no trace capacity, so the transfer integrates from
  // start_s + rtt_s (not from start_s, which would let the request "use"
  // link capacity it never touched).
  if (bytes <= 0.0) return rtt_s;
  TransferResult transfer = advance(bytes, start_s + rtt_s);
  if (!transfer.completed) return std::numeric_limits<double>::infinity();
  return rtt_s + transfer.elapsed_s;
}

ThroughputTrace ThroughputTrace::scaled(double factor, const std::string& new_name) const {
  if (factor < 0.0) throw std::runtime_error("trace: negative scale factor");
  std::vector<double> scaled_samples(samples_.size());
  for (size_t i = 0; i < samples_.size(); ++i) scaled_samples[i] = samples_[i] * factor;
  return ThroughputTrace(new_name.empty() ? name_ + "-x" + std::to_string(factor) : new_name,
                         std::move(scaled_samples), interval_s_, finite_);
}

ThroughputTrace ThroughputTrace::with_noise(double sigma_kbps, uint64_t seed,
                                            double floor_kbps) const {
  util::Rng rng(seed);
  std::vector<double> noisy(samples_.size());
  for (size_t i = 0; i < samples_.size(); ++i) {
    noisy[i] = std::max(floor_kbps, samples_[i] + rng.normal(0.0, sigma_kbps));
  }
  return ThroughputTrace(name_ + "+noise", std::move(noisy), interval_s_, finite_);
}

std::string ThroughputTrace::to_csv() const {
  std::ostringstream os;
  os << "time_s,throughput_kbps\n";
  for (size_t i = 0; i < samples_.size(); ++i) {
    os << static_cast<double>(i) * interval_s_ << ',' << samples_[i] << '\n';
  }
  return os.str();
}

namespace {

// Parses one numeric cell or throws with the trace name, 1-based line
// number, and the offending text.
double parse_cell(const std::string& name, size_t line_no, const std::string& text,
                  const char* what) {
  try {
    size_t consumed = 0;
    double value = std::stod(text, &consumed);
    // Trailing garbage after the number ("1.5abc") is malformed too.
    while (consumed < text.size() &&
           (text[consumed] == ' ' || text[consumed] == '\t')) {
      ++consumed;
    }
    if (consumed != text.size()) throw std::invalid_argument("trailing characters");
    // std::stod happily parses "nan" and "inf"; both poison trace timing
    // silently (NaN passes every ordered comparison downstream).
    if (!std::isfinite(value)) throw std::invalid_argument("non-finite value");
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("trace csv (" + name + ") line " + std::to_string(line_no) +
                             ": malformed " + what + " '" + text + "'");
  }
}

}  // namespace

ThroughputTrace ThroughputTrace::from_csv(const std::string& name, const std::string& csv) {
  std::istringstream is(csv);
  std::string line;
  std::vector<double> times;
  std::vector<double> samples;
  std::vector<size_t> line_of_row;
  size_t line_no = 0;
  auto fail = [&](const std::string& what) -> void {
    throw std::runtime_error("trace csv (" + name + ") line " + std::to_string(line_no) +
                             ": " + what);
  };
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;                         // blank
    if (line[first] == '#') continue;                                 // comment
    if (line.find("time_s") != std::string::npos) continue;           // header
    auto comma = line.find(',');
    if (comma == std::string::npos) fail("expected 'time_s,throughput_kbps'");
    double t = parse_cell(name, line_no, line.substr(0, comma), "timestamp");
    double kbps = parse_cell(name, line_no, line.substr(comma + 1), "throughput");
    if (kbps < 0.0) fail("negative throughput " + std::to_string(kbps));
    if (!times.empty() && t <= times.back()) {
      fail("non-monotonic timestamp " + std::to_string(t) + " after " +
           std::to_string(times.back()));
    }
    times.push_back(t);
    samples.push_back(kbps);
    line_of_row.push_back(line_no);
  }
  if (samples.empty()) throw std::runtime_error("trace: empty csv");
  double interval = 1.0;
  if (times.size() >= 2) {
    interval = times[1] - times[0];
    // The step-function model needs uniform spacing; a single irregular gap
    // would silently mistime every later sample, so reject it loudly.
    for (size_t i = 2; i < times.size(); ++i) {
      double gap = times[i] - times[i - 1];
      if (std::abs(gap - interval) > 1e-6 * std::max(1.0, std::abs(interval))) {
        line_no = line_of_row[i];
        fail("non-uniform timestamp spacing " + std::to_string(gap) + " (expected " +
             std::to_string(interval) + ")");
      }
    }
  }
  return ThroughputTrace(name, std::move(samples), interval);
}

}  // namespace sensei::net
