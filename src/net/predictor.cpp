#include "net/predictor.h"

#include <algorithm>
#include <cmath>

#include "util/kernels.h"
#include "util/stats.h"

namespace sensei::net {

std::vector<ThroughputScenario> triangular_scenarios(size_t count, double center_kbps,
                                                     double cv) {
  std::vector<ThroughputScenario> out(count);
  if (count == 0) return out;
  // Vector fill of the (unnormalized) fan, sequential total, then one
  // normalization pass — the same per-element expressions and the same
  // left-to-right accumulation as the scalar loop this replaces.
  std::vector<double> kbps(count), prob(count);
  util::kernels::triangular_fan(count, center_kbps, cv, 30.0, kbps.data(), prob.data());
  const double total = util::kernels::sum_row(prob.data(), count);
  util::kernels::div_scalar_row(prob.data(), count, total, prob.data());
  for (size_t i = 0; i < count; ++i) out[i] = {kbps[i], prob[i]};
  return out;
}

void ThroughputPredictor::scenarios_into(std::vector<ThroughputScenario>& out) const {
  out.clear();
  out.push_back({predict_kbps(), 1.0});
}

HarmonicMeanPredictor::HarmonicMeanPredictor(size_t window, double initial_kbps)
    : initial_kbps_(initial_kbps), history_(window) {}

void HarmonicMeanPredictor::observe(double kbps) {
  if (kbps <= 0.0) kbps = 1.0;
  history_.push(kbps);
}

double HarmonicMeanPredictor::predict_kbps() const {
  if (history_.empty()) return initial_kbps_;
  double inv_sum = 0.0;
  for (size_t i = 0; i < history_.size(); ++i) inv_sum += 1.0 / history_[i];
  return static_cast<double>(history_.size()) / inv_sum;
}

void HarmonicMeanPredictor::reset() { history_.clear(); }

EwmaPredictor::EwmaPredictor(double alpha, double initial_kbps)
    : alpha_(alpha), initial_kbps_(initial_kbps), estimate_(initial_kbps) {}

void EwmaPredictor::observe(double kbps) {
  if (kbps <= 0.0) kbps = 1.0;
  if (!seeded_) {
    estimate_ = kbps;
    seeded_ = true;
  } else {
    estimate_ = alpha_ * kbps + (1.0 - alpha_) * estimate_;
  }
}

double EwmaPredictor::predict_kbps() const { return estimate_; }

void EwmaPredictor::reset() {
  estimate_ = initial_kbps_;
  seeded_ = false;
}

ScenarioPredictor::ScenarioPredictor(size_t window, double initial_kbps)
    : point_(window, initial_kbps), history_(window) {}

void ScenarioPredictor::observe(double kbps) {
  point_.observe(kbps);
  history_.push(std::max(1.0, kbps));
}

double ScenarioPredictor::predict_kbps() const { return point_.predict_kbps(); }

void ScenarioPredictor::scenarios_into(std::vector<ThroughputScenario>& out) const {
  // Both windows key the memo: point_ retains the raw (clamped-at-observe)
  // kbps driving the harmonic mean, history_ the max(1, kbps) samples
  // driving the spread — they differ, so both must be unchanged to replay.
  out.clear();
  if (cache_valid_ && point_.window_generation() == cache_point_gen_ &&
      history_.generation() == cache_history_gen_) {
    for (size_t i = 0; i < 3; ++i) out.push_back({cache_kbps_[i], cache_prob_[i]});
    return;
  }

  double center = point_.predict_kbps();
  // Coefficient of variation of recent samples decides the scenario spread.
  // Computed directly over the history window (same oldest-first
  // accumulation order as util::mean/stddev over a copy, so the result is
  // bit-identical) to keep the per-decision path allocation-free.
  double cv = 0.25;
  if (history_.size() >= 3) {
    double sum = 0.0;
    for (size_t i = 0; i < history_.size(); ++i) sum += history_[i];
    double m = sum / static_cast<double>(history_.size());
    if (m > 0.0) {
      double acc = 0.0;
      for (size_t i = 0; i < history_.size(); ++i) {
        double x = history_[i];
        acc += (x - m) * (x - m);
      }
      double sd = std::sqrt(acc / static_cast<double>(history_.size()));
      cv = util::clamp(sd / m, 0.05, 0.8);
    }
  }
  out.push_back({std::max(30.0, center * (1.0 - cv)), 0.25});
  out.push_back({center, 0.5});
  out.push_back({center * (1.0 + cv), 0.25});
  for (size_t i = 0; i < 3; ++i) {
    cache_kbps_[i] = out[i].kbps;
    cache_prob_[i] = out[i].probability;
  }
  cache_point_gen_ = point_.window_generation();
  cache_history_gen_ = history_.generation();
  cache_valid_ = true;
}

void ScenarioPredictor::reset() {
  point_.reset();
  history_.clear();
}

}  // namespace sensei::net
