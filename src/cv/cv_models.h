// Appendix-D baselines: computer-vision models repurposed to predict quality
// sensitivity. The paper tests AMVM, DSN and Video2GIF and finds their
// importance scores do not track the user study.
//
// Our reproductions capture each model's *inductive bias* over the content
// features our substrate exposes (motion, objectness, complexity):
//  - AMVM-like: attention follows motion-weighted visual activity.
//  - DSN-like: summarization via diversity + representativeness of chunks.
//  - Video2GIF-like: highlightness ~ salient objects in dynamic scenes.
// All three reward "information-rich, dynamic" chunks — which, by the
// paper's key observation, is precisely what fails on replays (dynamic, low
// sensitivity) and scoreboards (static, high sensitivity).
#pragma once

#include <string>
#include <vector>

#include "media/video.h"

namespace sensei::cv {

// Per-chunk importance scores normalized to [0, 1].
std::vector<double> amvm_scores(const media::SourceVideo& video);
std::vector<double> dsn_scores(const media::SourceVideo& video);
std::vector<double> video2gif_scores(const media::SourceVideo& video);

struct CvModelResult {
  std::string model;
  std::vector<double> scores;
};

// Runs all three models.
std::vector<CvModelResult> run_all(const media::SourceVideo& video);

}  // namespace sensei::cv
