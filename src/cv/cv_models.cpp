#include "cv/cv_models.h"

#include <cmath>

#include "util/stats.h"

namespace sensei::cv {

namespace {

std::vector<double> normalize(std::vector<double> v) { return util::normalize01(v); }

// Feature vector used by the DSN-like diversity term.
std::vector<double> chunk_feature(const media::ChunkContent& c) {
  return {c.motion, c.complexity, c.objectness};
}

double feature_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(acc);
}

}  // namespace

std::vector<double> amvm_scores(const media::SourceVideo& video) {
  // Attention-modulated visual activity: motion dominates, modulated by
  // spatial complexity (texture attracts gaze).
  std::vector<double> scores;
  scores.reserve(video.num_chunks());
  for (const auto& c : video.chunks()) {
    scores.push_back(0.7 * c.motion + 0.3 * c.complexity);
  }
  return normalize(scores);
}

std::vector<double> dsn_scores(const media::SourceVideo& video) {
  // Diversity-representativeness: a chunk is important when it is far from
  // its neighbours (diverse) yet close to the global centroid
  // (representative) — the DSN reward structure.
  const size_t n = video.num_chunks();
  std::vector<std::vector<double>> features;
  features.reserve(n);
  for (const auto& c : video.chunks()) features.push_back(chunk_feature(c));

  std::vector<double> centroid(3, 0.0);
  for (const auto& f : features) {
    for (size_t k = 0; k < 3; ++k) centroid[k] += f[k];
  }
  for (auto& v : centroid) v /= static_cast<double>(n ? n : 1);

  std::vector<double> scores(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double diversity = 0.0;
    size_t count = 0;
    for (size_t j = i >= 2 ? i - 2 : 0; j < std::min(n, i + 3); ++j) {
      if (j == i) continue;
      diversity += feature_distance(features[i], features[j]);
      ++count;
    }
    if (count) diversity /= static_cast<double>(count);
    double representativeness = 1.0 / (1.0 + feature_distance(features[i], centroid));
    scores[i] = 0.5 * diversity + 0.5 * representativeness;
  }
  return normalize(scores);
}

std::vector<double> video2gif_scores(const media::SourceVideo& video) {
  // Highlightness: salient objects moving fast make good GIFs.
  std::vector<double> scores;
  scores.reserve(video.num_chunks());
  for (const auto& c : video.chunks()) {
    scores.push_back(c.objectness * (0.4 + 0.6 * c.motion));
  }
  return normalize(scores);
}

std::vector<CvModelResult> run_all(const media::SourceVideo& video) {
  return {
      {"AMVM", amvm_scores(video)},
      {"DSN", dsn_scores(video)},
      {"video2gif", video2gif_scores(video)},
  };
}

}  // namespace sensei::cv
