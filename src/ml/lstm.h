// Single-layer LSTM with a linear regression head over the *mean* hidden
// state, trained by backpropagation through time. Powers the LSTM-QoE
// baseline (Eswara et al.), which maps a per-chunk feature sequence to an
// overall quality score. Mean pooling (rather than last-state readout) keeps
// gradients alive on the 50-150 step sequences our videos produce.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace sensei::ml {

class LstmRegressor {
 public:
  LstmRegressor() = default;
  LstmRegressor(size_t input_dim, size_t hidden_dim, util::Rng& rng);

  size_t input_dim() const { return input_dim_; }
  size_t hidden_dim() const { return hidden_dim_; }

  // Runs the sequence and returns the scalar prediction from the final
  // hidden state.
  double predict(const std::vector<std::vector<double>>& sequence) const;

  // One SGD step on a single (sequence, target) pair with squared loss.
  // Returns the loss before the update.
  double train_step(const std::vector<std::vector<double>>& sequence, double target,
                    double lr);

  // Convenience: epochs over a dataset (shuffled each epoch). Returns final
  // mean loss.
  double fit(const std::vector<std::vector<std::vector<double>>>& sequences,
             const std::vector<double>& targets, int epochs, double lr, util::Rng& rng);

 private:
  struct Gates {
    std::vector<double> i, f, o, g;  // post-activation gate values
    std::vector<double> c, h;        // cell and hidden states after the step
  };

  // Forward over the sequence collecting per-step caches.
  std::vector<Gates> forward_cached(const std::vector<std::vector<double>>& seq) const;

  size_t input_dim_ = 0;
  size_t hidden_dim_ = 0;
  // Gate weight matrices, each (hidden x (input + hidden)), and biases.
  std::vector<double> wi_, wf_, wo_, wg_;
  std::vector<double> bi_, bf_, bo_, bg_;
  // Regression head.
  std::vector<double> head_w_;
  double head_b_ = 0.0;
  // Shared all-zero initial state: the forward and backward passes bind the
  // step-0 h/c references here instead of materializing a temporary zero
  // vector (the old mixed lvalue/temporary ternary copied a full state
  // every BPTT step).
  std::vector<double> zero_state_;
};

}  // namespace sensei::ml
