#include "ml/lstm.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sensei::ml {

namespace {
double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

LstmRegressor::LstmRegressor(size_t input_dim, size_t hidden_dim, util::Rng& rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  size_t cols = input_dim + hidden_dim;
  double scale = std::sqrt(1.0 / static_cast<double>(cols));
  auto init = [&](std::vector<double>& w) {
    w.resize(hidden_dim * cols);
    for (auto& v : w) v = rng.normal(0.0, scale);
  };
  init(wi_);
  init(wf_);
  init(wo_);
  init(wg_);
  bi_.assign(hidden_dim, 0.0);
  bf_.assign(hidden_dim, 1.0);  // forget-gate bias 1: standard trick
  bo_.assign(hidden_dim, 0.0);
  bg_.assign(hidden_dim, 0.0);
  head_w_.resize(hidden_dim);
  for (auto& v : head_w_) v = rng.normal(0.0, scale);
  zero_state_.assign(hidden_dim, 0.0);
}

std::vector<LstmRegressor::Gates> LstmRegressor::forward_cached(
    const std::vector<std::vector<double>>& seq) const {
  std::vector<Gates> cache;
  cache.reserve(seq.size());
  // Pointers into the previous step's cached state (the shared zero vector
  // for step 0): the old `h = g.h; c = g.c` copied both states every step.
  // cache is reserved above, so push_back never invalidates them.
  const std::vector<double>* h = &zero_state_;
  const std::vector<double>* c = &zero_state_;
  size_t cols = input_dim_ + hidden_dim_;
  for (const auto& x : seq) {
    if (x.size() != input_dim_) throw std::runtime_error("lstm: bad feature dim");
    Gates g;
    g.i.resize(hidden_dim_);
    g.f.resize(hidden_dim_);
    g.o.resize(hidden_dim_);
    g.g.resize(hidden_dim_);
    g.c.resize(hidden_dim_);
    g.h.resize(hidden_dim_);
    for (size_t u = 0; u < hidden_dim_; ++u) {
      double zi = bi_[u], zf = bf_[u], zo = bo_[u], zg = bg_[u];
      const double* ri = &wi_[u * cols];
      const double* rf = &wf_[u * cols];
      const double* ro = &wo_[u * cols];
      const double* rg = &wg_[u * cols];
      for (size_t k = 0; k < input_dim_; ++k) {
        zi += ri[k] * x[k];
        zf += rf[k] * x[k];
        zo += ro[k] * x[k];
        zg += rg[k] * x[k];
      }
      for (size_t k = 0; k < hidden_dim_; ++k) {
        zi += ri[input_dim_ + k] * (*h)[k];
        zf += rf[input_dim_ + k] * (*h)[k];
        zo += ro[input_dim_ + k] * (*h)[k];
        zg += rg[input_dim_ + k] * (*h)[k];
      }
      g.i[u] = sigmoid(zi);
      g.f[u] = sigmoid(zf);
      g.o[u] = sigmoid(zo);
      g.g[u] = std::tanh(zg);
      g.c[u] = g.f[u] * (*c)[u] + g.i[u] * g.g[u];
      g.h[u] = g.o[u] * std::tanh(g.c[u]);
    }
    cache.push_back(std::move(g));
    h = &cache.back().h;
    c = &cache.back().c;
  }
  return cache;
}

double LstmRegressor::predict(const std::vector<std::vector<double>>& sequence) const {
  if (sequence.empty()) return head_b_;
  auto cache = forward_cached(sequence);
  std::vector<double> h_mean(hidden_dim_, 0.0);
  for (const auto& step : cache) {
    for (size_t u = 0; u < hidden_dim_; ++u) h_mean[u] += step.h[u];
  }
  double y = head_b_;
  for (size_t u = 0; u < hidden_dim_; ++u) {
    y += head_w_[u] * h_mean[u] / static_cast<double>(cache.size());
  }
  return y;
}

double LstmRegressor::train_step(const std::vector<std::vector<double>>& seq, double target,
                                 double lr) {
  if (seq.empty()) return 0.0;
  auto cache = forward_cached(seq);
  const size_t T = seq.size();
  const size_t cols = input_dim_ + hidden_dim_;

  // Mean-pooled readout: y = head . mean_t(h_t) + b.
  std::vector<double> h_mean(hidden_dim_, 0.0);
  for (const auto& step : cache) {
    for (size_t u = 0; u < hidden_dim_; ++u) h_mean[u] += step.h[u];
  }
  for (size_t u = 0; u < hidden_dim_; ++u) h_mean[u] /= static_cast<double>(T);
  double y = head_b_;
  for (size_t u = 0; u < hidden_dim_; ++u) y += head_w_[u] * h_mean[u];
  double err = y - target;
  double loss = 0.5 * err * err;

  // Every step's hidden state receives err*head_w/T from the pooled head;
  // the seed for the last step starts the backward recursion.
  std::vector<double> dh_seed(hidden_dim_, 0.0);
  for (size_t u = 0; u < hidden_dim_; ++u) {
    dh_seed[u] = err * head_w_[u] / static_cast<double>(T);
  }
  std::vector<double> dh = dh_seed, dc(hidden_dim_, 0.0);
  // Backward-state buffers reused across the whole BPTT sweep (assign()
  // keeps capacity), swapped with dh/dc at each step.
  std::vector<double> dh_prev(hidden_dim_, 0.0), dc_prev(hidden_dim_, 0.0);

  std::vector<double> gwi(wi_.size(), 0.0), gwf(wf_.size(), 0.0), gwo(wo_.size(), 0.0),
      gwg(wg_.size(), 0.0);
  std::vector<double> gbi(hidden_dim_, 0.0), gbf(hidden_dim_, 0.0), gbo(hidden_dim_, 0.0),
      gbg(hidden_dim_, 0.0);

  for (size_t t = T; t-- > 0;) {
    const Gates& g = cache[t];
    // Both ternary arms are lvalues of the same type, so these bind without
    // copying (the old mixed lvalue/temporary form materialized a full copy
    // of h and c every step).
    const std::vector<double>& h_prev = t > 0 ? cache[t - 1].h : zero_state_;
    const std::vector<double>& c_prev = t > 0 ? cache[t - 1].c : zero_state_;
    const auto& x = seq[t];

    dh_prev.assign(hidden_dim_, 0.0);
    dc_prev.assign(hidden_dim_, 0.0);
    for (size_t u = 0; u < hidden_dim_; ++u) {
      double tanh_c = std::tanh(g.c[u]);
      double do_u = dh[u] * tanh_c;
      double dc_u = dc[u] + dh[u] * g.o[u] * (1.0 - tanh_c * tanh_c);
      double di_u = dc_u * g.g[u];
      double dg_u = dc_u * g.i[u];
      double df_u = dc_u * c_prev[u];
      dc_prev[u] = dc_u * g.f[u];

      // Pre-activation gradients.
      double zi = di_u * g.i[u] * (1.0 - g.i[u]);
      double zf = df_u * g.f[u] * (1.0 - g.f[u]);
      double zo = do_u * g.o[u] * (1.0 - g.o[u]);
      double zg = dg_u * (1.0 - g.g[u] * g.g[u]);

      gbi[u] += zi;
      gbf[u] += zf;
      gbo[u] += zo;
      gbg[u] += zg;
      double* rwi = &gwi[u * cols];
      double* rwf = &gwf[u * cols];
      double* rwo = &gwo[u * cols];
      double* rwg = &gwg[u * cols];
      for (size_t k = 0; k < input_dim_; ++k) {
        rwi[k] += zi * x[k];
        rwf[k] += zf * x[k];
        rwo[k] += zo * x[k];
        rwg[k] += zg * x[k];
      }
      for (size_t k = 0; k < hidden_dim_; ++k) {
        rwi[input_dim_ + k] += zi * h_prev[k];
        rwf[input_dim_ + k] += zf * h_prev[k];
        rwo[input_dim_ + k] += zo * h_prev[k];
        rwg[input_dim_ + k] += zg * h_prev[k];
        dh_prev[k] += zi * wi_[u * cols + input_dim_ + k] +
                      zf * wf_[u * cols + input_dim_ + k] +
                      zo * wo_[u * cols + input_dim_ + k] +
                      zg * wg_[u * cols + input_dim_ + k];
      }
    }
    // The previous step's hidden state also feeds the pooled head directly.
    for (size_t u = 0; u < hidden_dim_; ++u) dh_prev[u] += dh_seed[u];
    std::swap(dh, dh_prev);
    std::swap(dc, dc_prev);
  }

  // Gradient clipping keeps tiny-dataset BPTT stable.
  auto clip = [](double v) { return v > 5.0 ? 5.0 : (v < -5.0 ? -5.0 : v); };
  for (size_t i = 0; i < wi_.size(); ++i) {
    wi_[i] -= lr * clip(gwi[i]);
    wf_[i] -= lr * clip(gwf[i]);
    wo_[i] -= lr * clip(gwo[i]);
    wg_[i] -= lr * clip(gwg[i]);
  }
  for (size_t u = 0; u < hidden_dim_; ++u) {
    bi_[u] -= lr * clip(gbi[u]);
    bf_[u] -= lr * clip(gbf[u]);
    bo_[u] -= lr * clip(gbo[u]);
    bg_[u] -= lr * clip(gbg[u]);
    head_w_[u] -= lr * clip(err * h_mean[u]);
  }
  head_b_ -= lr * clip(err);
  return loss;
}

double LstmRegressor::fit(const std::vector<std::vector<std::vector<double>>>& sequences,
                          const std::vector<double>& targets, int epochs, double lr,
                          util::Rng& rng) {
  if (sequences.size() != targets.size()) throw std::runtime_error("lstm: dataset mismatch");
  std::vector<size_t> order(sequences.size());
  std::iota(order.begin(), order.end(), size_t{0});
  double last_mean_loss = 0.0;
  for (int e = 0; e < epochs; ++e) {
    rng.shuffle(order);
    double acc = 0.0;
    for (size_t idx : order) acc += train_step(sequences[idx], targets[idx], lr);
    last_mean_loss = sequences.empty() ? 0.0 : acc / static_cast<double>(sequences.size());
  }
  return last_mean_loss;
}

}  // namespace sensei::ml
