#include "ml/mlp.h"

#include <cmath>
#include <stdexcept>

namespace sensei::ml {

std::vector<double> softmax(const std::vector<double>& logits) {
  if (logits.empty()) return {};
  double max_logit = logits[0];
  for (double v : logits) max_logit = std::max(max_logit, v);
  std::vector<double> out(logits.size());
  double sum = 0.0;
  for (size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - max_logit);
    sum += out[i];
  }
  for (double& v : out) v /= sum;
  return out;
}

Mlp::Mlp(size_t input_dim, std::vector<LayerSpec> layers, util::Rng& rng)
    : input_dim_(input_dim) {
  if (layers.empty()) throw std::runtime_error("mlp: no layers");
  size_t in = input_dim;
  for (size_t li = 0; li < layers.size(); ++li) {
    const auto& spec = layers[li];
    if (spec.activation == Activation::kSoftmax && li + 1 != layers.size())
      throw std::runtime_error("mlp: softmax must be the last layer");
    Layer l;
    l.in = in;
    l.out = spec.units;
    l.activation = spec.activation;
    l.w.resize(l.in * l.out);
    l.b.assign(l.out, 0.0);
    // He/Xavier-ish init scaled by fan-in.
    double scale = std::sqrt(2.0 / static_cast<double>(l.in));
    for (auto& w : l.w) w = rng.normal(0.0, scale);
    l.gw.assign(l.w.size(), 0.0);
    l.gb.assign(l.out, 0.0);
    l.mw.assign(l.w.size(), 0.0);
    l.vw.assign(l.w.size(), 0.0);
    l.mb.assign(l.out, 0.0);
    l.vb.assign(l.out, 0.0);
    layers_.push_back(std::move(l));
    in = spec.units;
  }
}

size_t Mlp::output_dim() const { return layers_.empty() ? 0 : layers_.back().out; }

std::vector<double> Mlp::activate(const std::vector<double>& z, Activation a) const {
  switch (a) {
    case Activation::kLinear:
      return z;
    case Activation::kReLU: {
      std::vector<double> out(z.size());
      for (size_t i = 0; i < z.size(); ++i) out[i] = z[i] > 0 ? z[i] : 0.0;
      return out;
    }
    case Activation::kTanh: {
      std::vector<double> out(z.size());
      for (size_t i = 0; i < z.size(); ++i) out[i] = std::tanh(z[i]);
      return out;
    }
    case Activation::kSoftmax:
      return softmax(z);
  }
  return z;
}

std::vector<double> Mlp::forward(const std::vector<double>& x) const {
  if (x.size() != input_dim_) throw std::runtime_error("mlp: bad input size");
  std::vector<double> h = x;
  for (const auto& l : layers_) {
    std::vector<double> z(l.out, 0.0);
    for (size_t o = 0; o < l.out; ++o) {
      double acc = l.b[o];
      const double* row = &l.w[o * l.in];
      for (size_t i = 0; i < l.in; ++i) acc += row[i] * h[i];
      z[o] = acc;
    }
    h = activate(z, l.activation);
  }
  return h;
}

void Mlp::accumulate_gradient(const std::vector<double>& x,
                              const std::vector<double>& dloss_doutput) {
  if (x.size() != input_dim_) throw std::runtime_error("mlp: bad input size");
  // Forward with caches.
  std::vector<std::vector<double>> inputs;   // input to each layer
  std::vector<std::vector<double>> zs;       // pre-activation
  std::vector<double> h = x;
  for (const auto& l : layers_) {
    inputs.push_back(h);
    std::vector<double> z(l.out, 0.0);
    for (size_t o = 0; o < l.out; ++o) {
      double acc = l.b[o];
      const double* row = &l.w[o * l.in];
      for (size_t i = 0; i < l.in; ++i) acc += row[i] * h[i];
      z[o] = acc;
    }
    zs.push_back(z);
    h = activate(z, l.activation);
  }

  // Backward.
  std::vector<double> delta = dloss_doutput;  // dL/dz for softmax; dL/dh otherwise
  for (size_t li = layers_.size(); li-- > 0;) {
    Layer& l = layers_[li];
    const auto& z = zs[li];
    // Fold activation derivative into delta (softmax handled by caller).
    if (l.activation == Activation::kReLU) {
      for (size_t o = 0; o < l.out; ++o)
        if (z[o] <= 0.0) delta[o] = 0.0;
    } else if (l.activation == Activation::kTanh) {
      for (size_t o = 0; o < l.out; ++o) {
        double t = std::tanh(z[o]);
        delta[o] *= 1.0 - t * t;
      }
    }
    const auto& in = inputs[li];
    for (size_t o = 0; o < l.out; ++o) {
      l.gb[o] += delta[o];
      double* grow = &l.gw[o * l.in];
      for (size_t i = 0; i < l.in; ++i) grow[i] += delta[o] * in[i];
    }
    if (li > 0) {
      std::vector<double> prev(l.in, 0.0);
      for (size_t o = 0; o < l.out; ++o) {
        const double* row = &l.w[o * l.in];
        for (size_t i = 0; i < l.in; ++i) prev[i] += row[i] * delta[o];
      }
      delta = std::move(prev);
    }
  }
}

void Mlp::apply_adam(double lr, size_t batch) {
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
  ++adam_t_;
  double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(adam_t_));
  double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(adam_t_));
  double inv_batch = batch > 0 ? 1.0 / static_cast<double>(batch) : 1.0;
  for (auto& l : layers_) {
    for (size_t i = 0; i < l.w.size(); ++i) {
      double g = l.gw[i] * inv_batch;
      l.mw[i] = kBeta1 * l.mw[i] + (1 - kBeta1) * g;
      l.vw[i] = kBeta2 * l.vw[i] + (1 - kBeta2) * g * g;
      l.w[i] -= lr * (l.mw[i] / bc1) / (std::sqrt(l.vw[i] / bc2) + kEps);
    }
    for (size_t i = 0; i < l.b.size(); ++i) {
      double g = l.gb[i] * inv_batch;
      l.mb[i] = kBeta1 * l.mb[i] + (1 - kBeta1) * g;
      l.vb[i] = kBeta2 * l.vb[i] + (1 - kBeta2) * g * g;
      l.b[i] -= lr * (l.mb[i] / bc1) / (std::sqrt(l.vb[i] / bc2) + kEps);
    }
  }
  zero_gradients();
}

void Mlp::zero_gradients() {
  for (auto& l : layers_) {
    std::fill(l.gw.begin(), l.gw.end(), 0.0);
    std::fill(l.gb.begin(), l.gb.end(), 0.0);
  }
}

double Mlp::parameter_norm() const {
  double acc = 0.0;
  for (const auto& l : layers_) {
    for (double w : l.w) acc += w * w;
    for (double b : l.b) acc += b * b;
  }
  return std::sqrt(acc);
}

size_t Mlp::parameter_count() const {
  size_t n = 0;
  for (const auto& l : layers_) n += l.w.size() + l.b.size();
  return n;
}

}  // namespace sensei::ml
