#include "ml/forest.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sensei::ml {

namespace {

double subset_mean(const std::vector<double>& y, const std::vector<size_t>& rows) {
  if (rows.empty()) return 0.0;
  double acc = 0.0;
  for (size_t r : rows) acc += y[r];
  return acc / static_cast<double>(rows.size());
}

double subset_sse(const std::vector<double>& y, const std::vector<size_t>& rows) {
  double m = subset_mean(y, rows);
  double acc = 0.0;
  for (size_t r : rows) acc += (y[r] - m) * (y[r] - m);
  return acc;
}

}  // namespace

int RegressionTree::build(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y, std::vector<size_t> rows,
                          size_t depth, const ForestConfig& cfg, util::Rng& rng) {
  Node node;
  node.value = subset_mean(y, rows);
  int index = static_cast<int>(nodes_.size());
  nodes_.push_back(node);

  if (depth >= cfg.max_depth || rows.size() < 2 * cfg.min_leaf) return index;

  const size_t num_features = x[0].size();
  size_t k = cfg.features_per_split
                 ? cfg.features_per_split
                 : std::max<size_t>(1, static_cast<size_t>(std::sqrt(num_features)));

  // Sample k distinct candidate features.
  std::vector<size_t> all(num_features);
  std::iota(all.begin(), all.end(), size_t{0});
  rng.shuffle(all);
  all.resize(std::min(k, num_features));

  double parent_sse = subset_sse(y, rows);
  double best_gain = 1e-9;
  int best_feature = -1;
  double best_threshold = 0.0;
  std::vector<size_t> best_left, best_right;

  for (size_t f : all) {
    std::vector<double> values;
    values.reserve(rows.size());
    for (size_t r : rows) values.push_back(x[r][f]);
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (values.size() < 2) continue;

    // Try up to 8 quantile thresholds.
    size_t trials = std::min<size_t>(8, values.size() - 1);
    for (size_t t = 1; t <= trials; ++t) {
      size_t pos = t * (values.size() - 1) / (trials + 1);
      double thr = (values[pos] + values[pos + 1]) / 2.0;
      std::vector<size_t> left, right;
      for (size_t r : rows) (x[r][f] <= thr ? left : right).push_back(r);
      if (left.size() < cfg.min_leaf || right.size() < cfg.min_leaf) continue;
      double gain = parent_sse - subset_sse(y, left) - subset_sse(y, right);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = thr;
        best_left = std::move(left);
        best_right = std::move(right);
      }
    }
  }

  if (best_feature < 0) return index;

  int left = build(x, y, std::move(best_left), depth + 1, cfg, rng);
  int right = build(x, y, std::move(best_right), depth + 1, cfg, rng);
  nodes_[index].feature = best_feature;
  nodes_[index].threshold = best_threshold;
  nodes_[index].left = left;
  nodes_[index].right = right;
  return index;
}

void RegressionTree::fit(const std::vector<std::vector<double>>& x,
                         const std::vector<double>& y, const std::vector<size_t>& rows,
                         const ForestConfig& cfg, util::Rng& rng) {
  nodes_.clear();
  if (x.empty() || rows.empty()) {
    nodes_.push_back(Node{});
    return;
  }
  build(x, y, rows, 0, cfg, rng);
}

double RegressionTree::predict(const std::vector<double>& features) const {
  if (nodes_.empty()) return 0.0;
  int idx = 0;
  while (nodes_[static_cast<size_t>(idx)].feature >= 0) {
    const Node& n = nodes_[static_cast<size_t>(idx)];
    idx = features[static_cast<size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<size_t>(idx)].value;
}

RandomForest::RandomForest(ForestConfig cfg) : cfg_(cfg) {}

void RandomForest::fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y,
                       util::Rng& rng) {
  if (x.size() != y.size() || x.empty()) throw std::runtime_error("forest: bad dataset");
  trees_.assign(cfg_.num_trees, RegressionTree());
  auto boot = static_cast<size_t>(cfg_.bootstrap_fraction * static_cast<double>(x.size()));
  boot = std::max<size_t>(boot, 1);
  for (auto& tree : trees_) {
    std::vector<size_t> rows(boot);
    for (auto& r : rows) r = static_cast<size_t>(rng.uniform_int(0, static_cast<int>(x.size()) - 1));
    tree.fit(x, y, rows, cfg_, rng);
  }
}

double RandomForest::predict(const std::vector<double>& features) const {
  if (trees_.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& tree : trees_) acc += tree.predict(features);
  return acc / static_cast<double>(trees_.size());
}

}  // namespace sensei::ml
