// Minimal multi-layer perceptron with manual backprop and Adam.
//
// Serves two consumers: the Pensieve-style actor-critic policy (softmax head
// with policy-gradient updates) and small regression heads. Deliberately
// dependency-free and deterministic under a seeded Rng.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace sensei::ml {

enum class Activation { kReLU, kTanh, kLinear, kSoftmax };

struct LayerSpec {
  size_t units = 0;
  Activation activation = Activation::kReLU;
};

class Mlp {
 public:
  Mlp() = default;
  // `input_dim` features in; layers as specified (softmax only valid last).
  Mlp(size_t input_dim, std::vector<LayerSpec> layers, util::Rng& rng);

  size_t input_dim() const { return input_dim_; }
  size_t output_dim() const;

  // Forward pass.
  std::vector<double> forward(const std::vector<double>& x) const;

  // Backward pass for a single example. `dloss_doutput` is dL/d(output) —
  // for a softmax layer pass dL/d(logits) directly (caller folds the softmax
  // Jacobian, which for cross-entropy-style losses is `p - onehot`).
  // Accumulates gradients internally; call `apply_adam` to update.
  void accumulate_gradient(const std::vector<double>& x,
                           const std::vector<double>& dloss_doutput);

  // Adam step over accumulated gradients (averaged over `batch` examples),
  // then clears the accumulator.
  void apply_adam(double lr, size_t batch = 1);

  void zero_gradients();

  // L2 norm of parameters (for tests / debugging).
  double parameter_norm() const;

  size_t parameter_count() const;

 private:
  struct Layer {
    size_t in = 0, out = 0;
    Activation activation = Activation::kLinear;
    std::vector<double> w;   // out x in, row-major
    std::vector<double> b;   // out
    std::vector<double> gw;  // gradient accumulators
    std::vector<double> gb;
    std::vector<double> mw, vw, mb, vb;  // Adam moments
  };

  std::vector<double> activate(const std::vector<double>& z, Activation a) const;

  size_t input_dim_ = 0;
  std::vector<Layer> layers_;
  size_t adam_t_ = 0;
};

// Softmax over arbitrary logits (numerically stable); exposed for reuse.
std::vector<double> softmax(const std::vector<double>& logits);

}  // namespace sensei::ml
