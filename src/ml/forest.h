// CART regression trees and a bagged random forest.
//
// Stands in for the random-forest core of the P.1203 QoE model (Robitza et
// al.), which combines codec-level features with quality-incident metrics.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace sensei::ml {

struct ForestConfig {
  size_t num_trees = 30;
  size_t max_depth = 6;
  size_t min_leaf = 3;
  // Number of candidate features per split; 0 = sqrt(num_features).
  size_t features_per_split = 0;
  // Fraction of rows bootstrapped per tree.
  double bootstrap_fraction = 0.8;
};

class RegressionTree {
 public:
  void fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y,
           const std::vector<size_t>& rows, const ForestConfig& cfg, util::Rng& rng);
  double predict(const std::vector<double>& features) const;
  size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    int feature = -1;      // -1 = leaf
    double threshold = 0;  // go left if x[feature] <= threshold
    double value = 0;      // leaf prediction
    int left = -1, right = -1;
  };

  int build(const std::vector<std::vector<double>>& x, const std::vector<double>& y,
            std::vector<size_t> rows, size_t depth, const ForestConfig& cfg, util::Rng& rng);

  std::vector<Node> nodes_;
};

class RandomForest {
 public:
  explicit RandomForest(ForestConfig cfg = ForestConfig());

  void fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y,
           util::Rng& rng);
  double predict(const std::vector<double>& features) const;
  bool trained() const { return !trees_.empty(); }
  size_t tree_count() const { return trees_.size(); }

 private:
  ForestConfig cfg_;
  std::vector<RegressionTree> trees_;
};

}  // namespace sensei::ml
