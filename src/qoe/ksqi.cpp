#include "qoe/ksqi.h"

#include "util/regression.h"
#include "util/stats.h"

namespace sensei::qoe {

KsqiModel::KsqiModel(ChunkQualityParams params) : params_(params) {}

double KsqiModel::raw_score(const sim::RenderedVideo& video) const {
  if (video.num_chunks() == 0) return 0.0;
  const std::vector<double>& q =
      thread_local_chunk_quality_cache().qualities(video, params_);
  double base = util::mean(q);
  return base - startup_weight_ * stall_penalty(video.startup_delay_s(), params_);
}

double KsqiModel::predict(const sim::RenderedVideo& video) const {
  return util::clamp(scale_ * raw_score(video) + offset_, 0.0, 1.0);
}

void KsqiModel::train(const std::vector<sim::RenderedVideo>& videos,
                      const std::vector<double>& mos) {
  if (videos.size() != mos.size() || videos.size() < 3) return;
  // Affine calibration raw -> MOS by OLS on [raw, 1].
  std::vector<std::vector<double>> rows;
  rows.reserve(videos.size());
  for (const auto& v : videos) rows.push_back({raw_score(v), 1.0});
  auto fit = util::fit_least_squares(rows, mos, 1e-6);
  if (fit.coefficients.size() == 2 && fit.coefficients[0] > 0.0) {
    scale_ = fit.coefficients[0];
    offset_ = fit.coefficients[1];
  }
}

}  // namespace sensei::qoe
