#include "qoe/p1203.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace sensei::qoe {

P1203Model::P1203Model(ml::ForestConfig config, uint64_t seed)
    : forest_(config), seed_(seed) {}

std::vector<double> P1203Model::features(const sim::RenderedVideo& video) {
  const size_t n = video.num_chunks();
  std::vector<double> vq, stalls, bitrates;
  vq.reserve(n);
  size_t stall_events = 0;
  double max_stall = 0.0, total_stall = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const auto& c = video.chunk(i);
    vq.push_back(c.visual_quality);
    bitrates.push_back(c.bitrate_kbps);
    if (c.rebuffer_s > 0.0) {
      ++stall_events;
      max_stall = std::max(max_stall, c.rebuffer_s);
      total_stall += c.rebuffer_s;
      stalls.push_back(c.rebuffer_s);
    }
  }
  double playback = video.playback_duration_s();
  double low_fraction = 0.0;
  for (double b : bitrates) {
    if (b < 800.0) low_fraction += 1.0;
  }
  if (n) low_fraction /= static_cast<double>(n);

  return {
      util::mean(vq),
      util::min_of(vq),
      util::stddev(vq),
      playback > 0 ? total_stall / (playback + total_stall) : 0.0,  // stall ratio
      static_cast<double>(stall_events) / std::max<size_t>(n, 1),
      max_stall,
      static_cast<double>(video.switch_count()) / std::max<size_t>(n, 1),
      video.total_quality_switch_magnitude() / std::max<size_t>(n, 1),
      util::mean(bitrates) / 2850.0,
      low_fraction,
      stall_penalty(video.startup_delay_s()),
  };
}

double P1203Model::predict(const sim::RenderedVideo& video) const {
  if (!forest_.trained()) return fallback_;
  return util::clamp(forest_.predict(features(video)), 0.0, 1.0);
}

void P1203Model::train(const std::vector<sim::RenderedVideo>& videos,
                       const std::vector<double>& mos) {
  if (videos.size() != mos.size() || videos.size() < 5) return;
  std::vector<std::vector<double>> x;
  x.reserve(videos.size());
  for (const auto& v : videos) x.push_back(features(v));
  util::Rng rng(seed_);
  forest_.fit(x, mos, rng);
}

}  // namespace sensei::qoe
