#include "qoe/metrics.h"

#include <algorithm>

#include "sim/timeline.h"
#include "util/stats.h"

namespace sensei::qoe {

ModelAccuracy evaluate_model(const QoeModel& model,
                             const std::vector<sim::RenderedVideo>& videos,
                             const std::vector<double>& truth) {
  ModelAccuracy acc;
  acc.model_name = model.name();
  std::vector<double> pred = model.predict_all(videos);
  acc.mean_relative_error = util::mean_relative_error(pred, truth);
  acc.plcc = util::pearson(pred, truth);
  acc.srcc = util::spearman(pred, truth);
  acc.rmse = util::rmse(pred, truth);
  return acc;
}

double discordant_pair_fraction(const std::vector<AbrRankingCell>& cells) {
  size_t discordant = 0, comparable = 0;
  for (const auto& cell : cells) {
    const auto& t = cell.true_qoe;
    const auto& p = cell.predicted_qoe;
    if (t.size() != p.size()) continue;
    for (size_t i = 0; i < t.size(); ++i) {
      for (size_t j = i + 1; j < t.size(); ++j) {
        double dt = t[i] - t[j], dp = p[i] - p[j];
        if (dt == 0.0 || dp == 0.0) continue;
        ++comparable;
        if ((dt > 0) != (dp > 0)) ++discordant;
      }
    }
  }
  return comparable ? static_cast<double>(discordant) / static_cast<double>(comparable) : 0.0;
}

StallProfile stall_profile(const sim::SessionTimeline& timeline) {
  StallProfile profile;
  profile.per_chunk_stall_s.reserve(timeline.chunks().size());
  for (const auto& c : timeline.chunks()) {
    profile.per_chunk_stall_s.push_back(c.stall_s + c.scheduled_pause_s);
    profile.unscheduled_stall_s += c.stall_s;
    profile.scheduled_pause_s += c.scheduled_pause_s;
    if (c.stall_s > 0.0) {
      ++profile.stall_event_count;
      profile.longest_stall_s = std::max(profile.longest_stall_s, c.stall_s);
      if (profile.first_stall_wall_s < 0.0) profile.first_stall_wall_s = c.stall_start_wall_s;
    }
  }
  profile.total_stall_s = profile.unscheduled_stall_s + profile.scheduled_pause_s;
  profile.ended_in_outage = timeline.outcome() == sim::SessionOutcome::kOutage;
  return profile;
}

}  // namespace sensei::qoe
