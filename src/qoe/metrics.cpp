#include "qoe/metrics.h"

#include "util/stats.h"

namespace sensei::qoe {

ModelAccuracy evaluate_model(const QoeModel& model,
                             const std::vector<sim::RenderedVideo>& videos,
                             const std::vector<double>& truth) {
  ModelAccuracy acc;
  acc.model_name = model.name();
  std::vector<double> pred = model.predict_all(videos);
  acc.mean_relative_error = util::mean_relative_error(pred, truth);
  acc.plcc = util::pearson(pred, truth);
  acc.srcc = util::spearman(pred, truth);
  acc.rmse = util::rmse(pred, truth);
  return acc;
}

double discordant_pair_fraction(const std::vector<AbrRankingCell>& cells) {
  size_t discordant = 0, comparable = 0;
  for (const auto& cell : cells) {
    const auto& t = cell.true_qoe;
    const auto& p = cell.predicted_qoe;
    if (t.size() != p.size()) continue;
    for (size_t i = 0; i < t.size(); ++i) {
      for (size_t j = i + 1; j < t.size(); ++j) {
        double dt = t[i] - t[j], dp = p[i] - p[j];
        if (dt == 0.0 || dp == 0.0) continue;
        ++comparable;
        if ((dt > 0) != (dp > 0)) ++discordant;
      }
    }
  }
  return comparable ? static_cast<double>(discordant) / static_cast<double>(comparable) : 0.0;
}

}  // namespace sensei::qoe
