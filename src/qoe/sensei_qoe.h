// SENSEI's QoE model: an existing additive model reweighted by per-chunk
// sensitivity (paper Eq. 2):
//
//   Q = sum_i w_i * q_i / sum_i w_i
//
// where q_i comes from the shared chunk-quality model (the same one KSQI
// uses) and w_i is the inferred sensitivity weight of chunk i. The weight
// vector is produced by the crowdsourcing pipeline (src/crowd) and is
// normalized to mean 1, so an all-ones vector makes this coincide with KSQI.
#pragma once

#include <vector>

#include "qoe/chunk_quality.h"
#include "qoe/qoe_model.h"

namespace sensei::qoe {

class SenseiQoeModel : public QoeModel {
 public:
  SenseiQoeModel(std::vector<double> weights,
                 ChunkQualityParams params = ChunkQualityParams());

  std::string name() const override { return "SENSEI"; }
  double predict(const sim::RenderedVideo& video) const override;

  // Affine calibration against MOS, like the other trainable models.
  void train(const std::vector<sim::RenderedVideo>& videos,
             const std::vector<double>& mos) override;

  // Weighted mean of per-chunk qualities before affine calibration.
  double raw_score(const sim::RenderedVideo& video) const;

  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;
  ChunkQualityParams params_;
  double scale_ = 1.0;
  double offset_ = 0.0;
  double startup_weight_ = 0.05;
};

}  // namespace sensei::qoe
