// P.1203-style QoE model (Robitza et al., ITU-T P.1203 candidate).
//
// The original feeds codec-level features (QP) and quality-incident metrics
// into a random forest. We reproduce the model class: a bagged regression
// forest over session summary features. Like the original, it has no notion
// of *where* in the content an incident lands.
#pragma once

#include "ml/forest.h"
#include "qoe/chunk_quality.h"
#include "qoe/qoe_model.h"

namespace sensei::qoe {

class P1203Model : public QoeModel {
 public:
  explicit P1203Model(ml::ForestConfig config = ml::ForestConfig(), uint64_t seed = 1203);

  std::string name() const override { return "P.1203"; }
  double predict(const sim::RenderedVideo& video) const override;
  void train(const std::vector<sim::RenderedVideo>& videos,
             const std::vector<double>& mos) override;

  // Session summary feature vector (exposed for tests).
  static std::vector<double> features(const sim::RenderedVideo& video);

 private:
  ml::RandomForest forest_;
  uint64_t seed_;
  double fallback_ = 0.6;  // prediction before training
};

}  // namespace sensei::qoe
