// KSQI-style QoE model (Duanmu et al.).
//
// The original combines VMAF, rebuffering and quality-switch terms in a
// knowledge-constrained linear model. Our reproduction is additive over
// chunks (paper Eq. 1): Q = mean_i q_i, with q_i from the shared chunk
// quality model, plus a startup-delay term, passed through trainable affine
// calibration (fit by OLS against MOS). Content-position-agnostic by design —
// this is the property SENSEI's reweighting (Eq. 2) fixes.
#pragma once

#include "qoe/chunk_quality.h"
#include "qoe/qoe_model.h"

namespace sensei::qoe {

class KsqiModel : public QoeModel {
 public:
  explicit KsqiModel(ChunkQualityParams params = ChunkQualityParams());

  std::string name() const override { return "KSQI"; }
  double predict(const sim::RenderedVideo& video) const override;
  void train(const std::vector<sim::RenderedVideo>& videos,
             const std::vector<double>& mos) override;

  // Mean over the shared per-chunk quality, before affine calibration.
  double raw_score(const sim::RenderedVideo& video) const;

  const ChunkQualityParams& params() const { return params_; }
  double scale() const { return scale_; }
  double offset() const { return offset_; }

 private:
  ChunkQualityParams params_;
  double scale_ = 1.0;
  double offset_ = 0.0;
  double startup_weight_ = 0.05;
};

}  // namespace sensei::qoe
