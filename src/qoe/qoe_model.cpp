#include "qoe/qoe_model.h"

namespace sensei::qoe {

std::vector<double> QoeModel::predict_all(const std::vector<sim::RenderedVideo>& videos) const {
  std::vector<double> out;
  out.reserve(videos.size());
  for (const auto& v : videos) out.push_back(predict(v));
  return out;
}

}  // namespace sensei::qoe
