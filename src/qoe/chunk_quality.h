// Per-chunk quality contribution q(b, t) shared across the stack.
//
// This is the "simplified model of KSQI" the paper plugs into Fugu's
// objective (Eq. 3) and the q_i term of SENSEI's reweighted QoE (Eq. 2):
//   q_i = vq_i - beta_rebuf * pen(t_i) - beta_switch * |vq_i - vq_{i-1}|
// with a saturating stall penalty pen(t) = t / (1 + sat * t) reflecting the
// diminishing marginal annoyance of longer stalls, and a floor so one
// catastrophic chunk cannot dominate an entire session unboundedly.
//
// stall_penalty/chunk_quality are defined inline: the MPC planners evaluate
// them at every node of every lookahead, and the call must fold into the
// surrounding loop rather than cross a translation unit.
#pragma once

#include <algorithm>
#include <cmath>

#include "sim/render.h"

namespace sensei::qoe {

struct ChunkQualityParams {
  double beta_rebuf = 1.1;   // stall penalty scale
  double rebuf_saturation = 0.30;
  double beta_switch = 0.40;  // smoothness penalty scale
  double floor = -0.5;        // per-chunk quality floor
};

// Saturating stall penalty.
inline double stall_penalty(double stall_s, const ChunkQualityParams& p = ChunkQualityParams()) {
  if (stall_s <= 0.0) return 0.0;
  return stall_s / (1.0 + p.rebuf_saturation * stall_s);
}

// Quality contribution of a chunk given its visual quality, the stall before
// it, and the previous chunk's visual quality (pass vq itself for chunk 0).
inline double chunk_quality(double visual_quality, double stall_s, double prev_visual_quality,
                            const ChunkQualityParams& p = ChunkQualityParams()) {
  double q = visual_quality - p.beta_rebuf * stall_penalty(stall_s, p) -
             p.beta_switch * std::abs(visual_quality - prev_visual_quality);
  return std::max(p.floor, q);
}

// Per-chunk qualities written into a caller-provided buffer (cleared
// first). Scoring paths call this once per prediction; reusing one buffer
// keeps them free of heap allocation (the scenarios_into precedent).
void chunk_qualities_into(const sim::RenderedVideo& video, const ChunkQualityParams& p,
                          std::vector<double>& out);

// Vector of q_i over a rendered video (allocating convenience wrapper).
std::vector<double> chunk_qualities(const sim::RenderedVideo& video,
                                    const ChunkQualityParams& p = ChunkQualityParams());

// Reusable per-chunk-quality workspace. QoE models and the weight-inference
// pipeline evaluate chunk-quality vectors once per rendering scored; holding
// one cache per thread (or per batch loop) pins those evaluations to a
// single grow-only buffer instead of a fresh vector per call.
class ChunkQualityCache {
 public:
  // Computes q_i for `video` into the internal buffer and returns it. The
  // reference is invalidated by the next qualities() call on this cache.
  const std::vector<double>& qualities(const sim::RenderedVideo& video,
                                       const ChunkQualityParams& p) {
    chunk_qualities_into(video, p, q_);
    return q_;
  }

 private:
  std::vector<double> q_;
};

// The per-thread cache the scoring paths share. QoE models and the
// ground-truth oracle are process-wide objects scored concurrently by
// ExperimentRunner workers, so their reusable scratch lives per thread —
// and in one place, so every model on a thread grows the same buffer.
ChunkQualityCache& thread_local_chunk_quality_cache();

}  // namespace sensei::qoe
