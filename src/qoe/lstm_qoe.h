// LSTM-QoE-style model (Eswara et al.).
//
// The original feeds per-chunk STRRED and quality-incident signals into an
// LSTM to capture the "memory effect" of past incidents. Our reproduction
// feeds per-chunk [visual quality, stall penalty, quality switch, motion,
// complexity] into our own LstmRegressor. Because it sees motion, it can
// learn the "dynamic scenes matter more" heuristic — which, as the paper
// shows (§2.3), correlates poorly with true sensitivity (replays and ads are
// dynamic but insensitive).
#pragma once

#include "ml/lstm.h"
#include "qoe/chunk_quality.h"
#include "qoe/qoe_model.h"

namespace sensei::qoe {

class LstmQoeModel : public QoeModel {
 public:
  explicit LstmQoeModel(size_t hidden_dim = 12, int epochs = 60, double lr = 0.01,
                        uint64_t seed = 26);

  std::string name() const override { return "LSTM-QoE"; }
  double predict(const sim::RenderedVideo& video) const override;
  void train(const std::vector<sim::RenderedVideo>& videos,
             const std::vector<double>& mos) override;

  // Per-chunk feature sequence (exposed for tests).
  static std::vector<std::vector<double>> features(const sim::RenderedVideo& video);

  bool trained() const { return trained_; }

 private:
  size_t hidden_dim_;
  int epochs_;
  double lr_;
  uint64_t seed_;
  ml::LstmRegressor lstm_;
  bool trained_ = false;
};

}  // namespace sensei::qoe
