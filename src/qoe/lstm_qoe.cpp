#include "qoe/lstm_qoe.h"

#include <cmath>

#include "util/stats.h"

namespace sensei::qoe {

LstmQoeModel::LstmQoeModel(size_t hidden_dim, int epochs, double lr, uint64_t seed)
    : hidden_dim_(hidden_dim), epochs_(epochs), lr_(lr), seed_(seed) {}

std::vector<std::vector<double>> LstmQoeModel::features(const sim::RenderedVideo& video) {
  std::vector<std::vector<double>> seq;
  seq.reserve(video.num_chunks());
  for (size_t i = 0; i < video.num_chunks(); ++i) {
    const auto& c = video.chunk(i);
    const auto& content = video.content(i);
    double prev_vq = i > 0 ? video.chunk(i - 1).visual_quality : c.visual_quality;
    seq.push_back({
        c.visual_quality,
        stall_penalty(c.rebuffer_s),
        std::abs(c.visual_quality - prev_vq),
        content.motion,      // "dynamicness" of the scene
        content.complexity,  // STRRED-like spatial signal
    });
  }
  return seq;
}

double LstmQoeModel::predict(const sim::RenderedVideo& video) const {
  if (!trained_) return 0.6;
  return util::clamp(lstm_.predict(features(video)), 0.0, 1.0);
}

void LstmQoeModel::train(const std::vector<sim::RenderedVideo>& videos,
                         const std::vector<double>& mos) {
  if (videos.size() != mos.size() || videos.size() < 5) return;
  util::Rng rng(seed_);
  lstm_ = ml::LstmRegressor(5, hidden_dim_, rng);
  std::vector<std::vector<std::vector<double>>> sequences;
  sequences.reserve(videos.size());
  for (const auto& v : videos) sequences.push_back(features(v));
  lstm_.fit(sequences, mos, epochs_, lr_, rng);
  trained_ = true;
}

}  // namespace sensei::qoe
