// Common interface of all QoE models evaluated in the paper (§2.1, §7.3).
//
// A QoE model maps a rendered video to a predicted QoE in [0, 1]. Trainable
// models fit themselves to (rendered video, MOS) pairs, mirroring how the
// paper retrains the open-source baselines on its own dataset (§2.2).
#pragma once

#include <string>
#include <vector>

#include "sim/render.h"

namespace sensei::qoe {

class QoeModel {
 public:
  virtual ~QoeModel() = default;
  virtual std::string name() const = 0;

  // Predicted QoE in [0, 1].
  virtual double predict(const sim::RenderedVideo& video) const = 0;

  // Fits the model to ground-truth MOS values; default is non-trainable.
  virtual void train(const std::vector<sim::RenderedVideo>& videos,
                     const std::vector<double>& mos) {
    (void)videos;
    (void)mos;
  }

  // Batch prediction helper.
  std::vector<double> predict_all(const std::vector<sim::RenderedVideo>& videos) const;
};

}  // namespace sensei::qoe
