// Evaluation metrics for QoE models: prediction accuracy (relative error,
// PLCC, SRCC, RMSE) and the discordant-pair rate for ABR ranking (Figure 2).
#pragma once

#include <string>
#include <vector>

#include "qoe/qoe_model.h"

namespace sensei::qoe {

struct ModelAccuracy {
  std::string model_name;
  double mean_relative_error = 0.0;
  double plcc = 0.0;
  double srcc = 0.0;
  double rmse = 0.0;
};

// Evaluates a model's predictions against ground-truth MOS on a test set.
ModelAccuracy evaluate_model(const QoeModel& model,
                             const std::vector<sim::RenderedVideo>& videos,
                             const std::vector<double>& truth);

// One (source video, trace) cell of the §2.2 ranking study: the true and
// predicted QoE of each ABR algorithm streamed under identical conditions.
struct AbrRankingCell {
  std::vector<double> true_qoe;       // per ABR algorithm
  std::vector<double> predicted_qoe;  // per ABR algorithm (same order)
};

// Fraction of discordant ABR pairs across all cells: for each cell, every
// unordered pair of ABRs whose true ordering differs from the predicted
// ordering counts as discordant (ties skipped), as in Figure 2's y-axis.
double discordant_pair_fraction(const std::vector<AbrRankingCell>& cells);

}  // namespace sensei::qoe
