// Evaluation metrics for QoE models: prediction accuracy (relative error,
// PLCC, SRCC, RMSE), the discordant-pair rate for ABR ranking (Figure 2),
// and stall attribution over the exact session timeline.
#pragma once

#include <string>
#include <vector>

#include "qoe/qoe_model.h"

namespace sensei::sim {
class SessionTimeline;  // sim/timeline.h
}

namespace sensei::qoe {

struct ModelAccuracy {
  std::string model_name;
  double mean_relative_error = 0.0;
  double plcc = 0.0;
  double srcc = 0.0;
  double rmse = 0.0;
};

// Evaluates a model's predictions against ground-truth MOS on a test set.
ModelAccuracy evaluate_model(const QoeModel& model,
                             const std::vector<sim::RenderedVideo>& videos,
                             const std::vector<double>& truth);

// One (source video, trace) cell of the §2.2 ranking study: the true and
// predicted QoE of each ABR algorithm streamed under identical conditions.
struct AbrRankingCell {
  std::vector<double> true_qoe;       // per ABR algorithm
  std::vector<double> predicted_qoe;  // per ABR algorithm (same order)
};

// Fraction of discordant ABR pairs across all cells: for each cell, every
// unordered pair of ABRs whose true ordering differs from the predicted
// ordering counts as discordant (ties skipped), as in Figure 2's y-axis.
double discordant_pair_fraction(const std::vector<AbrRankingCell>& cells);

// Per-chunk stall attribution read off the exact session timeline. SENSEI's
// premise is that QoE hinges on *where* a stall lands; this is the
// chunk-accurate ground truth the weighted models consume — each stall is
// attributed to the chunk whose download starved the buffer, with its exact
// wall-clock onset preserved.
struct StallProfile {
  // One entry per completed chunk: unscheduled stall + scheduled pause
  // charged before that chunk plays (== RenderedChunk::rebuffer_s).
  std::vector<double> per_chunk_stall_s;
  double total_stall_s = 0.0;        // unscheduled + scheduled
  double unscheduled_stall_s = 0.0;
  double scheduled_pause_s = 0.0;
  size_t stall_event_count = 0;      // chunks with any unscheduled stall
  double longest_stall_s = 0.0;      // longest single unscheduled stall
  double first_stall_wall_s = -1.0;  // onset of the first unscheduled stall
  bool ended_in_outage = false;      // session truncated by a dead link
};

StallProfile stall_profile(const sim::SessionTimeline& timeline);

}  // namespace sensei::qoe
