#include "qoe/chunk_quality.h"

#include <algorithm>
#include <cmath>

namespace sensei::qoe {

double stall_penalty(double stall_s, const ChunkQualityParams& p) {
  if (stall_s <= 0.0) return 0.0;
  return stall_s / (1.0 + p.rebuf_saturation * stall_s);
}

double chunk_quality(double visual_quality, double stall_s, double prev_visual_quality,
                     const ChunkQualityParams& p) {
  double q = visual_quality - p.beta_rebuf * stall_penalty(stall_s, p) -
             p.beta_switch * std::abs(visual_quality - prev_visual_quality);
  return std::max(p.floor, q);
}

std::vector<double> chunk_qualities(const sim::RenderedVideo& video,
                                    const ChunkQualityParams& p) {
  std::vector<double> q;
  q.reserve(video.num_chunks());
  for (size_t i = 0; i < video.num_chunks(); ++i) {
    const auto& c = video.chunk(i);
    double prev_vq = i > 0 ? video.chunk(i - 1).visual_quality : c.visual_quality;
    q.push_back(chunk_quality(c.visual_quality, c.rebuffer_s, prev_vq, p));
  }
  return q;
}

}  // namespace sensei::qoe
