#include "qoe/chunk_quality.h"

namespace sensei::qoe {

std::vector<double> chunk_qualities(const sim::RenderedVideo& video,
                                    const ChunkQualityParams& p) {
  std::vector<double> q;
  q.reserve(video.num_chunks());
  for (size_t i = 0; i < video.num_chunks(); ++i) {
    const auto& c = video.chunk(i);
    double prev_vq = i > 0 ? video.chunk(i - 1).visual_quality : c.visual_quality;
    q.push_back(chunk_quality(c.visual_quality, c.rebuffer_s, prev_vq, p));
  }
  return q;
}

}  // namespace sensei::qoe
