#include "qoe/chunk_quality.h"

namespace sensei::qoe {

void chunk_qualities_into(const sim::RenderedVideo& video, const ChunkQualityParams& p,
                          std::vector<double>& out) {
  out.clear();
  out.reserve(video.num_chunks());
  for (size_t i = 0; i < video.num_chunks(); ++i) {
    const auto& c = video.chunk(i);
    double prev_vq = i > 0 ? video.chunk(i - 1).visual_quality : c.visual_quality;
    out.push_back(chunk_quality(c.visual_quality, c.rebuffer_s, prev_vq, p));
  }
}

std::vector<double> chunk_qualities(const sim::RenderedVideo& video,
                                    const ChunkQualityParams& p) {
  std::vector<double> q;
  chunk_qualities_into(video, p, q);
  return q;
}

ChunkQualityCache& thread_local_chunk_quality_cache() {
  static thread_local ChunkQualityCache cache;
  return cache;
}

}  // namespace sensei::qoe
