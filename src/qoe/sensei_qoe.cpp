#include "qoe/sensei_qoe.h"

#include <stdexcept>

#include "util/regression.h"
#include "util/stats.h"

namespace sensei::qoe {

SenseiQoeModel::SenseiQoeModel(std::vector<double> weights, ChunkQualityParams params)
    : weights_(std::move(weights)), params_(params) {
  if (weights_.empty()) throw std::runtime_error("sensei qoe: empty weight vector");
}

double SenseiQoeModel::raw_score(const sim::RenderedVideo& video) const {
  const size_t n = video.num_chunks();
  if (n == 0) return 0.0;
  const std::vector<double>& q =
      thread_local_chunk_quality_cache().qualities(video, params_);
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < n; ++i) {
    // A rendering may be a clip shorter than the profiled video; weights past
    // the end fall back to 1 (mean weight).
    double w = i < weights_.size() ? weights_[i] : 1.0;
    num += w * q[i];
    den += w;
  }
  double base = den > 0.0 ? num / den : 0.0;
  return base - startup_weight_ * stall_penalty(video.startup_delay_s(), params_);
}

double SenseiQoeModel::predict(const sim::RenderedVideo& video) const {
  return util::clamp(scale_ * raw_score(video) + offset_, 0.0, 1.0);
}

void SenseiQoeModel::train(const std::vector<sim::RenderedVideo>& videos,
                           const std::vector<double>& mos) {
  if (videos.size() != mos.size() || videos.size() < 3) return;
  std::vector<std::vector<double>> rows;
  rows.reserve(videos.size());
  for (const auto& v : videos) rows.push_back({raw_score(v), 1.0});
  auto fit = util::fit_least_squares(rows, mos, 1e-6);
  if (fit.coefficients.size() == 2 && fit.coefficients[0] > 0.0) {
    scale_ = fit.coefficients[0];
    offset_ = fit.coefficients[1];
  }
}

}  // namespace sensei::qoe
