// Synthetic rater model for the MTurk substitution.
//
// Each rater has a persistent bias (lenient/harsh), per-rating noise, and a
// small probability of being a spammer. Spammers either rate at random or
// skip through videos without watching — the behaviours the paper's quality
// controls (§B) are designed to catch: rating a degraded video above the
// pristine reference, and not watching a video in full.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace sensei::crowd {

struct RaterConfig {
  double bias_stddev = 0.05;    // persistent offset on the [0,1] scale
  double noise_stddev = 0.08;   // per-rating noise on the [0,1] scale
  double spammer_fraction = 0.08;
  double partial_watch_fraction = 0.05;  // non-spammers who skip a video
};

struct Rater {
  uint64_t id = 0;
  double bias = 0.0;
  bool spammer = false;
};

struct Rating {
  uint64_t rater_id = 0;
  int stars = 3;          // Likert scale 1..5
  bool watched_full = true;
};

class RaterPool {
 public:
  explicit RaterPool(RaterConfig config = RaterConfig(), uint64_t seed = 0xA11CE);

  // Draws a fresh rater (the paper finds most Turkers participate once).
  Rater recruit();

  // Produces a rating for a video of true QoE `true_qoe` in [0,1].
  Rating rate(const Rater& rater, double true_qoe);

  // Converts a star rating (1..5) to the normalized [0,1] scale and back.
  static double stars_to_unit(double stars) { return (stars - 1.0) / 4.0; }
  static int unit_to_stars(double unit);

  const RaterConfig& config() const { return config_; }
  util::Rng& rng() { return rng_; }

 private:
  RaterConfig config_;
  util::Rng rng_;
  uint64_t next_id_ = 1;
};

}  // namespace sensei::crowd
