#include "crowd/ground_truth.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace sensei::crowd {

GroundTruthQoE::GroundTruthQoE(GroundTruthParams params) : params_(params) {}

double GroundTruthQoE::weighted_mean_of(const sim::RenderedVideo& video,
                                        const std::vector<double>& q) const {
  const size_t n = video.num_chunks();
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double s = video.content(i).sensitivity;
    num += s * q[i];
    den += s;
  }
  return den > 0.0 ? num / den : 0.0;
}

double GroundTruthQoE::worst_memory_of(const sim::RenderedVideo& video,
                                       const std::vector<double>& q) const {
  const size_t n = video.num_chunks();
  double worst = 1.0;
  for (size_t i = 0; i < n; ++i) {
    double s = video.content(i).sensitivity;
    worst = std::min(worst, 1.0 - s * (1.0 - q[i]));
  }
  return worst;
}

double GroundTruthQoE::weighted_mean(const sim::RenderedVideo& video) const {
  if (video.num_chunks() == 0) return 0.0;
  return weighted_mean_of(
      video, qoe::thread_local_chunk_quality_cache().qualities(video, params_.chunk));
}

double GroundTruthQoE::worst_memory(const sim::RenderedVideo& video) const {
  if (video.num_chunks() == 0) return 0.0;
  return worst_memory_of(
      video, qoe::thread_local_chunk_quality_cache().qualities(video, params_.chunk));
}

double GroundTruthQoE::score(const sim::RenderedVideo& video) const {
  double m = 0.0, w = 0.0;
  if (video.num_chunks() > 0) {
    // One chunk-quality evaluation feeds both components.
    const std::vector<double>& q =
        qoe::thread_local_chunk_quality_cache().qualities(video, params_.chunk);
    m = weighted_mean_of(video, q);
    w = worst_memory_of(video, q);
  }
  double startup = params_.startup_weight * qoe::stall_penalty(video.startup_delay_s(),
                                                               params_.chunk);
  double q = params_.mean_weight * m + (1.0 - params_.mean_weight) * w - startup;
  return util::clamp(q, 0.0, 1.0);
}

}  // namespace sensei::crowd
