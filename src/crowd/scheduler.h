// Two-step rendered-video scheduler (§4.3) — SENSEI's cost pruning.
//
// Step 1: publish N renderings, each with a single 1-second rebuffering event
// at a different chunk, rated by M1 participants each; infer provisional
// weights.
// Step 2: keep only the N' chunks whose provisional weight deviates from the
// mean by at least alpha; re-render those chunks with B extra bitrate levels
// and F rebuffering durations, rated by M2 participants each; re-infer.
//
// The exhaustive (no-pruning) alternative renders every chunk x bitrate x
// rebuffering combination at full rating depth — the paper's cost baseline in
// Figure 12c.
#pragma once

#include <cstdint>
#include <vector>

#include "crowd/campaign.h"
#include "crowd/weights.h"
#include "media/encoder.h"

namespace sensei::crowd {

struct SchedulerConfig {
  size_t m1 = 10;          // raters per rendering, step 1
  size_t m2 = 5;           // raters per rendering, step 2
  double alpha = 0.06;     // relative deviation threshold for step-2 chunks
  size_t bitrate_levels = 2;      // B: extra bitrate-drop levels in step 2
  size_t rebuffer_levels = 1;     // F: extra rebuffering durations in step 2
  double step1_rebuffer_s = 1.0;  // incident used in step 1
  RaterConfig rater;
  CampaignConfig campaign;
  WeightInferenceConfig inference;
};

struct SensitivityProfile {
  std::vector<double> weights;     // mean-1 normalized, one per chunk
  double cost_usd = 0.0;
  double elapsed_minutes = 0.0;
  size_t renderings_rated = 0;
  size_t ratings_collected = 0;
  size_t participants = 0;
  size_t step2_chunks = 0;  // N'
};

class Scheduler {
 public:
  Scheduler(const GroundTruthQoE& oracle, SchedulerConfig config = SchedulerConfig(),
            uint64_t seed = 0x5EED);

  // Runs the full two-step profiling pipeline on an encoded video.
  SensitivityProfile profile(const media::EncodedVideo& video);

  // Cost baseline: no pruning — all chunks x all incident combinations at
  // `ratings_per_video` depth (Figure 12c "w/o cost pruning").
  SensitivityProfile profile_exhaustive(const media::EncodedVideo& video,
                                        size_t ratings_per_video = 30);

 private:
  const GroundTruthQoE& oracle_;
  SchedulerConfig config_;
  uint64_t seed_;
};

}  // namespace sensei::crowd
