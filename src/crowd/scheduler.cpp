#include "crowd/scheduler.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace sensei::crowd {

Scheduler::Scheduler(const GroundTruthQoE& oracle, SchedulerConfig config, uint64_t seed)
    : oracle_(oracle), config_(config), seed_(seed) {}

SensitivityProfile Scheduler::profile(const media::EncodedVideo& video) {
  const size_t n = video.num_chunks();
  SensitivityProfile out;
  if (n == 0) {
    out.weights.assign(n, 1.0);
    return out;
  }

  sim::RenderedVideo reference = sim::RenderedVideo::pristine(video);

  // ---- Step 1: one 1-second rebuffering per chunk, M1 ratings each. ----
  std::vector<sim::RenderedVideo> step1 =
      sim::rebuffer_series(video, config_.step1_rebuffer_s);
  Campaign campaign1(oracle_, config_.rater, config_.campaign, seed_);
  CampaignResult res1 = campaign1.run(step1, reference, config_.m1);

  std::vector<sim::RenderedVideo> rated = step1;
  std::vector<double> mos = res1.mos;
  double reference_mos = res1.reference_mos;

  std::vector<double> w =
      infer_weights(rated, mos, reference, reference_mos, n, config_.inference);

  out.cost_usd += res1.cost_usd;
  out.elapsed_minutes += res1.elapsed_minutes;
  out.renderings_rated += step1.size();
  out.participants += res1.participants_recruited;
  for (size_t c : res1.rating_counts) out.ratings_collected += c;

  // ---- Step 2: refine only chunks whose provisional weight is alpha-far
  //      from the mean, with B bitrate drops and F rebuffering durations. ----
  std::vector<size_t> focus;
  for (size_t i = 0; i < n; ++i) {
    if (std::abs(w[i] - 1.0) >= config_.alpha) focus.push_back(i);
  }
  out.step2_chunks = focus.size();

  if (!focus.empty() && (config_.bitrate_levels > 0 || config_.rebuffer_levels > 0)) {
    std::vector<sim::RenderedVideo> step2;
    sim::RenderedVideo base = sim::RenderedVideo::pristine(video);
    const size_t top = video.ladder().level_count() - 1;
    for (size_t chunk : focus) {
      // B bitrate-drop levels, from the lowest rung upward.
      for (size_t b = 0; b < config_.bitrate_levels && b < top; ++b) {
        step2.push_back(base.with_bitrate_drop(chunk, 1, b, video));
      }
      // F extra rebuffering durations: 2s, 3s, ... (step 1 already did 1s).
      for (size_t f = 0; f < config_.rebuffer_levels; ++f) {
        step2.push_back(base.with_rebuffering(chunk, config_.step1_rebuffer_s + 1.0 +
                                                         static_cast<double>(f)));
      }
    }
    Campaign campaign2(oracle_, config_.rater, config_.campaign, seed_ ^ 0xBEEF);
    CampaignResult res2 = campaign2.run(step2, reference, config_.m2);

    for (size_t j = 0; j < step2.size(); ++j) {
      rated.push_back(step2[j]);
      mos.push_back(res2.mos[j]);
    }
    // Both campaigns rated the same reference; pool their estimates.
    reference_mos = 0.5 * (reference_mos + res2.reference_mos);
    w = infer_weights(rated, mos, reference, reference_mos, n, config_.inference);

    out.cost_usd += res2.cost_usd;
    out.elapsed_minutes += res2.elapsed_minutes;
    out.renderings_rated += step2.size();
    out.participants += res2.participants_recruited;
    for (size_t c : res2.rating_counts) out.ratings_collected += c;
  }

  out.weights = std::move(w);
  return out;
}

SensitivityProfile Scheduler::profile_exhaustive(const media::EncodedVideo& video,
                                                 size_t ratings_per_video) {
  const size_t n = video.num_chunks();
  SensitivityProfile out;
  if (n == 0) {
    out.weights.assign(n, 1.0);
    return out;
  }

  sim::RenderedVideo reference = sim::RenderedVideo::pristine(video);
  sim::RenderedVideo base = sim::RenderedVideo::pristine(video);
  const size_t top = video.ladder().level_count() - 1;

  // Every chunk x {all lower bitrates} x {1..5 s rebuffering}.
  std::vector<sim::RenderedVideo> renderings;
  for (size_t chunk = 0; chunk < n; ++chunk) {
    for (size_t level = 0; level < top; ++level) {
      renderings.push_back(base.with_bitrate_drop(chunk, 1, level, video));
    }
    for (int secs = 1; secs <= 5; ++secs) {
      renderings.push_back(base.with_rebuffering(chunk, static_cast<double>(secs)));
    }
  }

  Campaign campaign(oracle_, config_.rater, config_.campaign, seed_ ^ 0xFFFF);
  CampaignResult res = campaign.run(renderings, reference, ratings_per_video);

  out.weights = infer_weights(renderings, res.mos, reference, res.reference_mos, n,
                              config_.inference);
  out.cost_usd = res.cost_usd;
  out.elapsed_minutes = res.elapsed_minutes;
  out.renderings_rated = renderings.size();
  out.participants = res.participants_recruited;
  for (size_t c : res.rating_counts) out.ratings_collected += c;
  out.step2_chunks = n;
  return out;
}

}  // namespace sensei::crowd
