// MTurk campaign simulator (§4.1, §6, Appendix B).
//
// Simulates publishing a set of rendered videos and collecting the requested
// number of accepted ratings per video, with the paper's quality controls:
//   - every survey includes the pristine reference video; a participant who
//     rates any degraded rendering above the reference is rejected;
//   - a participant who does not watch every video in full is rejected;
//   - viewing order is randomized per participant;
//   - participants are paid a fixed hourly rate ($10/h) proportional to the
//     total video length in their survey; rejected participants are not paid.
//
// Cost is therefore proportional to accepted watched minutes; elapsed time is
// dominated by participant sign-up latency, modeled per the paper's
// observation (~tens of minutes for 100 participants).
#pragma once

#include <vector>

#include "crowd/ground_truth.h"
#include "crowd/rater.h"
#include "sim/render.h"

namespace sensei::crowd {

struct CampaignConfig {
  size_t videos_per_participant = 6;   // K, including the reference
  double hourly_rate_usd = 10.0;
  double signup_latency_s_mean = 45.0;  // mean gap between sign-ups
  size_t max_participants = 100000;     // safety valve
};

struct CampaignResult {
  std::vector<double> mos;             // normalized [0,1], one per input video
  std::vector<size_t> rating_counts;   // accepted ratings per video
  double reference_mos = 1.0;          // measured MOS of the pristine reference
  size_t participants_recruited = 0;
  size_t participants_rejected = 0;
  double cost_usd = 0.0;
  double elapsed_minutes = 0.0;
  double watched_video_minutes = 0.0;  // accepted watch time (paid)
};

class Campaign {
 public:
  Campaign(const GroundTruthQoE& oracle, RaterConfig rater_config = RaterConfig(),
           CampaignConfig config = CampaignConfig(), uint64_t seed = 0xCA3Fu);

  // Collects at least `ratings_per_video` accepted ratings for each video.
  // `reference` must be the pristine rendering of the same source.
  CampaignResult run(const std::vector<sim::RenderedVideo>& videos,
                     const sim::RenderedVideo& reference, size_t ratings_per_video);

 private:
  const GroundTruthQoE& oracle_;
  RaterPool pool_;
  CampaignConfig config_;
  util::Rng rng_;
};

}  // namespace sensei::crowd
