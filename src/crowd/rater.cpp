#include "crowd/rater.h"

#include <cmath>

#include "util/stats.h"

namespace sensei::crowd {

RaterPool::RaterPool(RaterConfig config, uint64_t seed) : config_(config), rng_(seed) {}

int RaterPool::unit_to_stars(double unit) {
  int stars = static_cast<int>(std::lround(1.0 + 4.0 * util::clamp(unit, 0.0, 1.0)));
  return stars < 1 ? 1 : (stars > 5 ? 5 : stars);
}

Rater RaterPool::recruit() {
  Rater r;
  r.id = next_id_++;
  r.bias = rng_.normal(0.0, config_.bias_stddev);
  r.spammer = rng_.chance(config_.spammer_fraction);
  return r;
}

Rating RaterPool::rate(const Rater& rater, double true_qoe) {
  Rating rating;
  rating.rater_id = rater.id;
  if (rater.spammer) {
    // Spammers click through: random stars, frequently without watching.
    rating.stars = rng_.uniform_int(1, 5);
    rating.watched_full = rng_.chance(0.4);
    return rating;
  }
  double perceived = true_qoe + rater.bias + rng_.normal(0.0, config_.noise_stddev);
  rating.stars = unit_to_stars(perceived);
  rating.watched_full = !rng_.chance(config_.partial_watch_fraction);
  return rating;
}

}  // namespace sensei::crowd
