#include "crowd/weights.h"

#include <cmath>
#include <stdexcept>

#include "util/regression.h"
#include "util/stats.h"

namespace sensei::crowd {

std::vector<double> infer_weights(const std::vector<sim::RenderedVideo>& videos,
                                  const std::vector<double>& mos,
                                  const sim::RenderedVideo& reference, double reference_mos,
                                  size_t num_chunks, const WeightInferenceConfig& config) {
  if (videos.size() != mos.size()) throw std::runtime_error("weights: dataset mismatch");
  if (videos.empty() || num_chunks == 0) return std::vector<double>(num_chunks, 1.0);

  std::vector<double> q_ref;
  qoe::chunk_qualities_into(reference, config.chunk, q_ref);
  if (q_ref.size() < num_chunks)
    throw std::runtime_error("weights: reference shorter than weight vector");

  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  rows.reserve(videos.size());
  targets.reserve(videos.size());
  // One quality buffer refilled per rated rendering: profiling campaigns
  // rate hundreds of clips per video, and the per-clip vector churn was the
  // dominant allocation of weight inference.
  std::vector<double> q;
  for (size_t j = 0; j < videos.size(); ++j) {
    qoe::chunk_qualities_into(videos[j], config.chunk, q);
    std::vector<double> row(num_chunks, 0.0);
    size_t covered = std::min(num_chunks, q.size());
    bool any = false;
    for (size_t i = 0; i < covered; ++i) {
      double delta = q_ref[i] - q[i];
      if (std::abs(delta) > 1e-12) {
        row[i] = delta;
        any = true;
      }
    }
    if (!any) continue;  // identical to the reference: no information
    rows.push_back(std::move(row));
    // MOS drops are scaled per covered chunk to match sum_i w_i delta_i,
    // which for an average-of-chunks QoE carries a 1/N factor.
    targets.push_back((reference_mos - mos[j]) * static_cast<double>(covered));
  }
  if (rows.empty()) return std::vector<double>(num_chunks, 1.0);

  std::vector<double> w = util::fit_nonnegative_least_squares(rows, targets,
                                                              config.ridge_lambda,
                                                              config.iterations);
  if (w.size() != num_chunks) w.assign(num_chunks, 1.0);

  // Chunks untouched by every incident carry no signal; give them the mean
  // weight of the constrained chunks before normalizing.
  std::vector<bool> touched(num_chunks, false);
  for (const auto& row : rows) {
    for (size_t i = 0; i < num_chunks; ++i) {
      if (row[i] != 0.0) touched[i] = true;
    }
  }
  double touched_sum = 0.0;
  size_t touched_count = 0;
  for (size_t i = 0; i < num_chunks; ++i) {
    if (touched[i]) {
      touched_sum += w[i];
      ++touched_count;
    }
  }
  double fill = touched_count ? touched_sum / static_cast<double>(touched_count) : 1.0;
  for (size_t i = 0; i < num_chunks; ++i) {
    if (!touched[i]) w[i] = fill;
  }

  normalize_mean_one(w);
  return w;
}

void normalize_mean_one(std::vector<double>& weights) {
  if (weights.empty()) return;
  double m = util::mean(weights);
  if (m <= 1e-12) {
    weights.assign(weights.size(), 1.0);
    return;
  }
  for (double& w : weights) w /= m;
}

}  // namespace sensei::crowd
