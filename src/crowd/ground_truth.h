// Ground-truth user QoE oracle — the stand-in for real viewers.
//
// Substitution rationale (DESIGN.md §1): the paper's experiments only consume
// MOS values; what matters is that the latent rating process (a) weights
// incidents by the content's hidden per-chunk sensitivity, (b) is largely
// agnostic to incident type given position (§2.3), and (c) is *not* exactly
// representable by SENSEI's linear model class, so model accuracies stay
// realistic rather than saturating at 1.0.
//
// The oracle scores a rendered video as a blend of
//   M: the sensitivity-weighted mean of per-chunk qualities, and
//   W: an attention-discounted "worst memory" — the peak-end effect:
//        W = min_i (1 - s_i * (1 - q_i))
//      A ruined chunk (low q_i) craters W only when the viewer was paying
//      attention (high s_i); low quality during a boring stretch is barely
//      remembered. This keeps single-incident MOS drops large even in long
//      videos (as the paper's Figures 1/3 show) without diluting with length.
// minus a small startup term:  Q = mu*M + (1-mu)*W - st.
//
// The per-chunk quality q_i reuses qoe::chunk_quality, so incident type only
// enters through a scalar penalty — making sensitivity rankings
// incident-agnostic by construction, with rater noise added on top by the
// campaign simulator.
#pragma once

#include "qoe/chunk_quality.h"
#include "sim/render.h"

namespace sensei::crowd {

struct GroundTruthParams {
  qoe::ChunkQualityParams chunk;   // shared chunk-quality shape
  double mean_weight = 0.85;       // mu: blend of mean vs worst-memory
  double startup_weight = 0.04;
};

class GroundTruthQoE {
 public:
  explicit GroundTruthQoE(GroundTruthParams params = GroundTruthParams());

  // True QoE in [0, 1] for a rendered video (deterministic; rater noise is
  // layered on by RaterPool/Campaign).
  double score(const sim::RenderedVideo& video) const;

  // Components, exposed for tests.
  double weighted_mean(const sim::RenderedVideo& video) const;
  double worst_memory(const sim::RenderedVideo& video) const;

  const GroundTruthParams& params() const { return params_; }

 private:
  // Component math over an already-computed per-chunk quality vector:
  // score() evaluates the qualities once (into a per-thread reusable
  // buffer) and feeds both components, instead of each component
  // allocating and recomputing its own vector.
  double weighted_mean_of(const sim::RenderedVideo& video,
                          const std::vector<double>& q) const;
  double worst_memory_of(const sim::RenderedVideo& video,
                         const std::vector<double>& q) const;

  GroundTruthParams params_;
};

}  // namespace sensei::crowd
